// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// table/figure; each reports results in the paper's units as custom
// metrics (model-ms/op response times, req/model-s throughput) computed
// by dividing wall-clock measurements by the TimeScale.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// For the full-size paper-style tables, use cmd/mspr-bench instead.
package mspr_test

import (
	"sync"
	"testing"
	"time"

	"mspr/internal/bench"
	"mspr/internal/metrics"
	"mspr/internal/workload"
)

// benchScale is the model-to-wall time factor used by the benchmarks.
const benchScale = 0.02

// benchRequests drives b.N end-client requests through a system and
// reports response time in model milliseconds.
func benchRequests(b *testing.B, p workload.Params, clients int) {
	b.Helper()
	sys, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if clients <= 1 {
		cs := sys.NewSession()
		// Warm up: one request to establish the session.
		if _, err := sys.Do(cs); err != nil {
			b.Fatal(err)
		}
		var series metrics.Series
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			lat, err := sys.Do(cs)
			if err != nil {
				b.Fatal(err)
			}
			series.Record(lat)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(metrics.ModelMS(series.Mean(), p.TimeScale), "model-ms/op")
		b.ReportMetric(metrics.ModelMS(series.Max(), p.TimeScale), "max-model-ms")
		b.ReportMetric(metrics.ThroughputPerModelSecond(series.Count(), elapsed, p.TimeScale), "req/model-s")
		return
	}
	// Multi-client: spread b.N requests over the client sessions.
	var wg sync.WaitGroup
	var series metrics.Series
	per := b.N / clients
	if per == 0 {
		per = 1
	}
	errs := make(chan error, clients)
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := sys.NewSession()
			for i := 0; i < per; i++ {
				lat, err := sys.Do(cs)
				if err != nil {
					errs <- err
					return
				}
				series.Record(lat)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(metrics.ModelMS(series.Mean(), p.TimeScale), "model-ms/op")
	b.ReportMetric(metrics.ThroughputPerModelSecond(series.Count(), elapsed, p.TimeScale), "req/model-s")
}

// BenchmarkE1ResponseTime reproduces the Fig. 14 table: the average
// response time of an end-client request in each of the five system
// configurations (m = 1). Paper ordering: NoLog < StateServer <
// LoOptimistic < Pessimistic < Psession, with LoOptimistic ≈ 30 % faster
// than Pessimistic.
func BenchmarkE1ResponseTime(b *testing.B) {
	for _, mode := range bench.AllModes {
		b.Run(mode.String(), func(b *testing.B) {
			benchRequests(b, workload.NewParams(mode, benchScale), 1)
		})
	}
}

// BenchmarkE2CallsSweep reproduces the Fig. 14 chart: response time as
// ServiceMethod1 calls ServiceMethod2 m times. Pessimistic logging pays
// two extra flushes per call; locally optimistic logging only the round
// trip; StateServer crosses LoOptimistic near m = 4.
func BenchmarkE2CallsSweep(b *testing.B) {
	for _, mode := range bench.AllModes {
		for _, m := range []int{1, 2, 4} {
			p := workload.NewParams(mode, benchScale)
			p.Calls = m
			b.Run(mode.String()+"/m="+itoa(m), func(b *testing.B) {
				benchRequests(b, p, 1)
			})
		}
	}
}

// BenchmarkE3CheckpointOverhead reproduces Fig. 15(a): session
// checkpointing's impact on throughput at different thresholds
// (LoOptimistic). A 64 KB threshold costs a few percent; 4 MB is
// indistinguishable from no checkpointing.
func BenchmarkE3CheckpointOverhead(b *testing.B) {
	for _, th := range []int64{64 << 10, 1 << 20, 4 << 20, 0} {
		p := workload.NewParams(workload.LoOptimistic, benchScale)
		p.SessionCkptThreshold = th
		name := "none"
		if th > 0 {
			name = itoa(int(th>>10)) + "KB"
		}
		b.Run(name, func(b *testing.B) {
			benchRequests(b, p, 1)
		})
	}
}

// BenchmarkE4CrashRate reproduces Fig. 15(b): throughput under injected
// MSP2 crashes for both logging methods. Locally optimistic logging
// keeps its lead; throughput decreases as the crash rate grows (the
// LoOptimistic decrease is larger — it also pays SE1's orphan recovery).
func BenchmarkE4CrashRate(b *testing.B) {
	for _, mode := range []workload.Mode{workload.LoOptimistic, workload.Pessimistic} {
		for _, every := range []int{0, 200, 100} {
			p := workload.NewParams(mode, benchScale)
			p.CrashEvery = every
			name := mode.String() + "/crash=" + rateLabel(every)
			b.Run(name, func(b *testing.B) {
				benchRequests(b, p, 1)
			})
		}
	}
}

// BenchmarkE5MaxResponse reproduces the Fig. 16 table: the maximum
// response time, dominated by recovery when crashes are injected
// (LoOptimistic's max exceeds Pessimistic's — SE1's orphan recovery
// replays logged requests on top of MSP2's crash recovery).
func BenchmarkE5MaxResponse(b *testing.B) {
	cases := []struct {
		name       string
		mode       workload.Mode
		crashEvery int
		threshold  int64
	}{
		{"LoOptimistic/Crash", workload.LoOptimistic, 150, 1 << 20},
		{"LoOptimistic/NoCrash", workload.LoOptimistic, 0, 1 << 20},
		{"LoOptimistic/NoCp", workload.LoOptimistic, 0, 0},
		{"Pessimistic/Crash", workload.Pessimistic, 150, 1 << 20},
		{"Pessimistic/NoCrash", workload.Pessimistic, 0, 1 << 20},
		{"Pessimistic/NoCp", workload.Pessimistic, 0, 0},
	}
	for _, c := range cases {
		p := workload.NewParams(c.mode, benchScale)
		p.CrashEvery = c.crashEvery
		p.SessionCkptThreshold = c.threshold
		b.Run(c.name, func(b *testing.B) {
			benchRequests(b, p, 1)
		})
	}
}

// BenchmarkE6OptimalThreshold reproduces the Fig. 16 chart: with a fixed
// crash rate, the checkpointing threshold has an interior optimum — low
// thresholds pay checkpoint overhead, high thresholds pay long
// orphan-recovery replays.
func BenchmarkE6OptimalThreshold(b *testing.B) {
	for _, th := range []int64{64 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20} {
		p := workload.NewParams(workload.LoOptimistic, benchScale)
		p.CrashEvery = 150
		p.SessionCkptThreshold = th
		b.Run(itoa(int(th>>10))+"KB", func(b *testing.B) {
			benchRequests(b, p, 1)
		})
	}
}

// BenchmarkE7MultiClient reproduces Fig. 17: throughput and response
// time versus the number of concurrent end clients, with and without
// batch flushing. Batch flushing helps pessimistic logging (~30 % in the
// paper) much more than locally optimistic logging (~8 %), which needs
// fewer flushes to begin with.
func BenchmarkE7MultiClient(b *testing.B) {
	for _, mode := range []workload.Mode{workload.Pessimistic, workload.LoOptimistic} {
		for _, batch := range []bool{false, true} {
			for _, clients := range []int{1, 4, 8} {
				p := workload.NewParams(mode, benchScale)
				name := mode.String()
				if batch {
					p.BatchFlushTimeout = 8 * time.Millisecond
					name += "/batch"
				} else {
					name += "/nobatch"
				}
				name += "/clients=" + itoa(clients)
				b.Run(name, func(b *testing.B) {
					benchRequests(b, p, clients)
				})
			}
		}
	}
}

// BenchmarkAblationParallelRecovery quantifies the paper's parallel-
// recovery claim (§1.3, §4.3): with per-request CPU re-executed during
// replay, recovering N sessions in parallel overlaps their work, while
// the serial ablation pays the sum.
func BenchmarkAblationParallelRecovery(b *testing.B) {
	for _, serial := range []bool{false, true} {
		name := "parallel"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunAblationRecovery(
					bench.Options{TimeScale: benchScale}, 8, 12, 2*time.Millisecond, serial)
				if err != nil {
					b.Fatal(err)
				}
				total += res.RecoveryMS
			}
			b.ReportMetric(total/float64(b.N), "recovery-model-ms")
		})
	}
}

// BenchmarkAblationSharedSize quantifies value logging's dependence on
// shared-state size (§3.3): the paper's regime (128 B) logs little; at
// tens of kilobytes per value, logging every read by value dominates.
func BenchmarkAblationSharedSize(b *testing.B) {
	for _, size := range []int{128, 8 << 10, 32 << 10} {
		b.Run(itoa(size)+"B", func(b *testing.B) {
			p := workload.NewParams(workload.LoOptimistic, benchScale)
			p.SharedSize = size
			benchRequests(b, p, 1)
		})
	}
}

// BenchmarkAblationDomainSize quantifies dependency-vector growth with
// service-domain size (§3.1): a request relayed through K chained MSPs
// carries a K-entry DV, growing message and log-record overhead — the
// reason optimistic logging stays confined to small service domains.
func BenchmarkAblationDomainSize(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run("depth="+itoa(depth), func(b *testing.B) {
			var mean, logBytes float64
			runs := 0
			for i := 0; i < b.N; i += 50 {
				rows, err := bench.RunAblationDomainSize(
					bench.Options{TimeScale: benchScale, Requests: 50}, []int{depth})
				if err != nil {
					b.Fatal(err)
				}
				mean += rows[0].MeanMS
				logBytes += rows[0].LogBytesPerOp
				runs++
			}
			b.ReportMetric(mean/float64(runs), "model-ms/op")
			b.ReportMetric(logBytes/float64(runs), "log-B/op")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func rateLabel(every int) string {
	if every == 0 {
		return "none"
	}
	return "1per" + itoa(every)
}
