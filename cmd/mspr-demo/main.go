// Command mspr-demo narrates the recovery infrastructure end to end: it
// runs the paper's two-MSP configuration, crashes both MSPs in turn, and
// shows the log records, checkpoints and recovery actions involved —
// finishing with a human-readable dump of MSP1's physical log.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"mspr"
	"mspr/internal/logdump"
	"mspr/internal/simdisk"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func main() {
	dump := flag.Bool("dump", true, "dump MSP1's physical log at the end")
	requests := flag.Int("requests", 6, "requests per phase")
	flag.Parse()

	sim := mspr.NewSim(0.02)
	dom := sim.NewDomain("demo")

	def2 := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"tally": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("count")
				if err != nil {
					return nil, err
				}
				n := asU64(v) + 1
				if err := ctx.WriteShared("count", u64(n)); err != nil {
					return nil, err
				}
				return u64(n), nil
			},
		},
		Shared: []mspr.SharedDef{{Name: "count", Initial: u64(0)}},
	}
	// killMSP2, when armed, crashes msp2 at the §5.4 injection point:
	// right after msp1 receives the tally reply, so msp2's buffered log
	// records (including that reply's state) are lost and msp1's session
	// becomes an orphan.
	var killMSP2 func()
	var armed bool
	def1 := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"order": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				tally, err := ctx.Call("msp2", "tally", arg)
				if err != nil {
					return nil, err
				}
				if armed {
					armed = false
					go killMSP2()
				}
				mine := asU64(ctx.GetVar("orders")) + 1
				ctx.SetVar("orders", u64(mine))
				return []byte(fmt.Sprintf("order %d (global tally %d)", mine, asU64(tally))), nil
			},
		},
	}

	cfg1 := sim.NewConfig("msp1", dom, def1)
	cfg2 := sim.NewConfig("msp2", dom, def2)
	msp1, err := mspr.Start(cfg1)
	if err != nil {
		log.Fatal(err)
	}
	msp2, err := mspr.Start(cfg2)
	if err != nil {
		log.Fatal(err)
	}
	client := sim.NewClient("client")
	defer client.Close()
	sess := client.Session("msp1")

	phase := func(title string) { fmt.Printf("\n=== %s ===\n", title) }
	run := func() {
		for i := 0; i < *requests; i++ {
			out, err := sess.Call("order", []byte("demo"))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s\n", out)
		}
	}
	report := func(name string, s *mspr.Server, disk *simdisk.Disk) {
		st := s.Stats()
		d := disk.Stats()
		fmt.Printf("  %s: served=%d replayed=%d sessionCkpts=%d svCkpts=%d mspCkpts=%d recoveries=%d flushes=%d (disk writes=%d, wasted=%dB)\n",
			name, st.RequestsServed.Load(), st.RequestsReplayed.Load(), st.SessionCkpts.Load(),
			st.SVCkpts.Load(), st.MSPCkpts.Load(), st.OrphanRecoveries.Load(),
			st.DistFlushes.Load(), d.Writes, d.WastedBytes)
	}

	phase("normal execution: locally optimistic logging inside the domain")
	run()
	report("msp1", msp1, cfg1.Disk)
	report("msp2", msp2, cfg2.Disk)

	phase("crash msp2 mid-request (§5.4): msp1's session becomes an orphan and recovers")
	done := make(chan struct{})
	killMSP2 = func() {
		defer close(done)
		msp2.Crash()
		var kerr error
		msp2, kerr = mspr.Start(cfg2)
		if kerr != nil {
			log.Fatal(kerr)
		}
	}
	armed = true
	run()
	<-done
	report("msp1", msp1, cfg1.Disk)
	report("msp2", msp2, cfg2.Disk)

	phase("crash msp1 (caller): full MSP crash recovery, parallel session replay")
	msp1.Crash()
	msp1, err = mspr.Start(cfg1)
	if err != nil {
		log.Fatal(err)
	}
	run()
	report("msp1", msp1, cfg1.Disk)
	report("msp2", msp2, cfg2.Disk)

	if *dump {
		phase("msp1 physical log (analysis-scan view)")
		dumpLog(cfg1.Disk)
	}
	fmt.Println("\nevery order executed exactly once across both crashes")
}

// dumpLog prints a one-line summary of every record in msp1's log.
func dumpLog(disk *simdisk.Disk) {
	sum, err := logdump.Dump(disk, "msp1.log", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  record counts: %v\n", sum.ByType)
}
