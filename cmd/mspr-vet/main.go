// Command mspr-vet runs the protocol-invariant static analysis suite
// over the module: the paper's recovery-correctness rules (flush-before-
// send pessimism, dependency-vector ownership, log-record codec parity,
// failpoint registry hygiene, simulated-time discipline, durability
// error handling) as compile-time checks, plus the CFG/dataflow
// concurrency-protocol analyzers (lockorder: the declared mutex lattice
// and no-blocking-under-noblock-locks; guardedby: //mspr:guarded-by
// fields only touched with their mutex held on every path; phasestate:
// session-phase stores follow the declared //mspr:phase-next machine).
// flushed-by is path-sensitive: a flush must cover EVERY path to an
// emit, and findings name an unflushed witness path.
//
// Usage:
//
//	mspr-vet [-json] [-run analyzer,...] [patterns...]
//
// -run validates its names: an unknown analyzer is a usage error (exit
// 2) listing the known set. The pseudo-name "directives" selects no
// analyzer and just runs the always-on //mspr: hygiene pass. Findings
// carry file:line:col and sort by (file, line, col, analyzer, message),
// so -json output is byte-stable across runs.
//
// Patterns default to ./... and are resolved against the working
// directory. Exit status: 0 clean, 1 findings reported, 2 load or usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mspr/internal/invariants"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		runList = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range invariants.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := invariants.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspr-vet:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspr-vet:", err)
		return 2
	}
	loader, err := invariants.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspr-vet:", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspr-vet:", err)
		return 2
	}

	findings := invariants.Run(loader, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []invariants.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "mspr-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mspr-vet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
