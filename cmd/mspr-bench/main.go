// Command mspr-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated testbed.
//
// Usage:
//
//	mspr-bench [-scale 0.02] [-requests 2000] [e1|e2|e3|e4|e5|e6|e7|hotpath|recovery|all ...]
//
// Results are reported in model milliseconds: wall-clock time divided by
// the time scale, directly comparable to the paper's numbers in shape
// (orderings, ratios, crossovers), though not in absolute value — the
// substrate is a simulator, not the authors' testbed.
//
// The hotpath experiment additionally emits machine-readable results:
// with -hotpath-out FILE, the run (labelled via -label) is appended to
// FILE's run list, building the repository's performance trajectory
// (BENCH_hotpath.json). The recovery experiment does the same via
// -recovery-out (BENCH_recovery.json): time-to-first-reply and
// full-drain time after a crash versus session count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mspr/internal/bench"
)

// hotpathRun is one labelled entry of the BENCH_hotpath.json trajectory.
type hotpathRun struct {
	Label     string                  `json:"label"`
	Date      string                  `json:"date"`
	TimeScale float64                 `json:"time_scale"`
	Requests  int                     `json:"requests"`
	ServePath []bench.ServePathAllocs `json:"serve_path"`
	Points    []bench.HotpathPoint    `json:"points"`
}

type hotpathFile struct {
	Comment string       `json:"comment"`
	Runs    []hotpathRun `json:"runs"`
}

func appendHotpathRun(path string, run hotpathRun) error {
	var f hotpathFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not a hotpath trajectory: %w", path, err)
		}
	}
	if f.Comment == "" {
		f.Comment = "mspr hot-path performance trajectory; regenerate with: go run ./cmd/mspr-bench -hotpath-out BENCH_hotpath.json -label <label> hotpath"
	}
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// recoveryRun is one labelled entry of the BENCH_recovery.json trajectory.
type recoveryRun struct {
	Label     string                `json:"label"`
	Date      string                `json:"date"`
	TimeScale float64               `json:"time_scale"`
	Points    []bench.RecoveryPoint `json:"points"`
}

type recoveryFile struct {
	Comment string        `json:"comment"`
	Runs    []recoveryRun `json:"runs"`
}

func appendRecoveryRun(path string, run recoveryRun) error {
	var f recoveryFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not a recovery trajectory: %w", path, err)
		}
	}
	if f.Comment == "" {
		f.Comment = "mspr instant-recovery latency trajectory; regenerate with: go run ./cmd/mspr-bench -recovery-out BENCH_recovery.json -label <label> recovery"
	}
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	scale := flag.Float64("scale", 0.02, "model-to-wall-clock time scale (1.0 = paper wall-clock)")
	requests := flag.Int("requests", 2000, "end-client requests per configuration")
	crashEvery := flag.Int("crash-every", 500, "crash injection interval for E5/E6 (requests per crash)")
	hotpathOut := flag.String("hotpath-out", "", "append the hotpath run to this JSON trajectory file")
	recoveryOut := flag.String("recovery-out", "", "append the recovery run to this JSON trajectory file")
	recoveryCounts := flag.String("recovery-counts", "", "comma-separated session counts for the recovery experiment (default 100,1000,10000)")
	label := flag.String("label", "dev", "label for a run in a JSON trajectory file")
	flag.Parse()

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	run := make(map[string]bool)
	for _, e := range experiments {
		if e == "all" {
			for _, k := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "ablations"} {
				run[k] = true
			}
			continue
		}
		run[e] = true
	}

	o := bench.Options{TimeScale: *scale, Requests: *requests, W: os.Stdout}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mspr-bench:", err)
		os.Exit(1)
	}

	if run["e1"] {
		if _, err := bench.RunE1(o); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e2"] {
		if _, err := bench.RunE2(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e3"] {
		if _, err := bench.RunE3(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e4"] {
		if _, err := bench.RunE4(o, []int{0, *crashEvery * 2, *crashEvery * 3 / 2, *crashEvery}); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e5"] {
		if _, err := bench.RunE5(o, *crashEvery); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e6"] {
		if _, err := bench.RunE6(o, *crashEvery, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e7"] {
		if _, err := bench.RunE7(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["hotpath"] {
		servePath, err := bench.RunServePathAllocs(o)
		if err != nil {
			fail(err)
		}
		fmt.Println()
		points, err := bench.RunHotpath(o, nil)
		if err != nil {
			fail(err)
		}
		if *hotpathOut != "" {
			hr := hotpathRun{
				Label:     *label,
				Date:      time.Now().UTC().Format("2006-01-02"), //mspr:wallclock run timestamp for the committed trajectory file
				TimeScale: *scale,
				Requests:  *requests,
				ServePath: servePath,
				Points:    points,
			}
			if err := appendHotpathRun(*hotpathOut, hr); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
	if run["recovery"] {
		counts, err := parseCounts(*recoveryCounts)
		if err != nil {
			fail(err)
		}
		points, err := bench.RunRecoveryLatency(o, counts)
		if err != nil {
			fail(err)
		}
		if *recoveryOut != "" {
			rr := recoveryRun{
				Label:     *label,
				Date:      time.Now().UTC().Format("2006-01-02"), //mspr:wallclock run timestamp for the committed trajectory file
				TimeScale: *scale,
				Points:    points,
			}
			if err := appendRecoveryRun(*recoveryOut, rr); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
	if run["ablations"] {
		if _, _, err := bench.RunAblationParallelRecovery(o, 16, 25); err != nil {
			fail(err)
		}
		fmt.Println()
		if _, err := bench.RunAblationSharedSize(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
		abo := o
		abo.Requests = o.Requests / 4
		if _, err := bench.RunAblationDomainSize(abo, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
}
