// Command mspr-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated testbed.
//
// Usage:
//
//	mspr-bench [-scale 0.02] [-requests 2000] [e1|e2|e3|e4|e5|e6|e7|hotpath|all ...]
//
// Results are reported in model milliseconds: wall-clock time divided by
// the time scale, directly comparable to the paper's numbers in shape
// (orderings, ratios, crossovers), though not in absolute value — the
// substrate is a simulator, not the authors' testbed.
//
// The hotpath experiment additionally emits machine-readable results:
// with -hotpath-out FILE, the run (labelled via -label) is appended to
// FILE's run list, building the repository's performance trajectory
// (BENCH_hotpath.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mspr/internal/bench"
)

// hotpathRun is one labelled entry of the BENCH_hotpath.json trajectory.
type hotpathRun struct {
	Label     string                  `json:"label"`
	Date      string                  `json:"date"`
	TimeScale float64                 `json:"time_scale"`
	Requests  int                     `json:"requests"`
	ServePath []bench.ServePathAllocs `json:"serve_path"`
	Points    []bench.HotpathPoint    `json:"points"`
}

type hotpathFile struct {
	Comment string       `json:"comment"`
	Runs    []hotpathRun `json:"runs"`
}

func appendHotpathRun(path string, run hotpathRun) error {
	var f hotpathFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s is not a hotpath trajectory: %w", path, err)
		}
	}
	if f.Comment == "" {
		f.Comment = "mspr hot-path performance trajectory; regenerate with: go run ./cmd/mspr-bench -hotpath-out BENCH_hotpath.json -label <label> hotpath"
	}
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	scale := flag.Float64("scale", 0.02, "model-to-wall-clock time scale (1.0 = paper wall-clock)")
	requests := flag.Int("requests", 2000, "end-client requests per configuration")
	crashEvery := flag.Int("crash-every", 500, "crash injection interval for E5/E6 (requests per crash)")
	hotpathOut := flag.String("hotpath-out", "", "append the hotpath run to this JSON trajectory file")
	label := flag.String("label", "dev", "label for the hotpath run in the JSON trajectory")
	flag.Parse()

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	run := make(map[string]bool)
	for _, e := range experiments {
		if e == "all" {
			for _, k := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "ablations"} {
				run[k] = true
			}
			continue
		}
		run[e] = true
	}

	o := bench.Options{TimeScale: *scale, Requests: *requests, W: os.Stdout}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mspr-bench:", err)
		os.Exit(1)
	}

	if run["e1"] {
		if _, err := bench.RunE1(o); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e2"] {
		if _, err := bench.RunE2(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e3"] {
		if _, err := bench.RunE3(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e4"] {
		if _, err := bench.RunE4(o, []int{0, *crashEvery * 2, *crashEvery * 3 / 2, *crashEvery}); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e5"] {
		if _, err := bench.RunE5(o, *crashEvery); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e6"] {
		if _, err := bench.RunE6(o, *crashEvery, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e7"] {
		if _, err := bench.RunE7(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["hotpath"] {
		servePath, err := bench.RunServePathAllocs(o)
		if err != nil {
			fail(err)
		}
		fmt.Println()
		points, err := bench.RunHotpath(o, nil)
		if err != nil {
			fail(err)
		}
		if *hotpathOut != "" {
			hr := hotpathRun{
				Label:     *label,
				Date:      time.Now().UTC().Format("2006-01-02"), //mspr:wallclock run timestamp for the committed trajectory file
				TimeScale: *scale,
				Requests:  *requests,
				ServePath: servePath,
				Points:    points,
			}
			if err := appendHotpathRun(*hotpathOut, hr); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
	if run["ablations"] {
		if _, _, err := bench.RunAblationParallelRecovery(o, 16, 25); err != nil {
			fail(err)
		}
		fmt.Println()
		if _, err := bench.RunAblationSharedSize(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
		abo := o
		abo.Requests = o.Requests / 4
		if _, err := bench.RunAblationDomainSize(abo, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
}
