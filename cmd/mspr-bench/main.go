// Command mspr-bench regenerates the paper's evaluation tables and
// figures (§5) on the simulated testbed.
//
// Usage:
//
//	mspr-bench [-scale 0.02] [-requests 2000] [e1|e2|e3|e4|e5|e6|e7|all ...]
//
// Results are reported in model milliseconds: wall-clock time divided by
// the time scale, directly comparable to the paper's numbers in shape
// (orderings, ratios, crossovers), though not in absolute value — the
// substrate is a simulator, not the authors' testbed.
package main

import (
	"flag"
	"fmt"
	"os"

	"mspr/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.02, "model-to-wall-clock time scale (1.0 = paper wall-clock)")
	requests := flag.Int("requests", 2000, "end-client requests per configuration")
	crashEvery := flag.Int("crash-every", 500, "crash injection interval for E5/E6 (requests per crash)")
	flag.Parse()

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	run := make(map[string]bool)
	for _, e := range experiments {
		if e == "all" {
			for _, k := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "ablations"} {
				run[k] = true
			}
			continue
		}
		run[e] = true
	}

	o := bench.Options{TimeScale: *scale, Requests: *requests, W: os.Stdout}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mspr-bench:", err)
		os.Exit(1)
	}

	if run["e1"] {
		if _, err := bench.RunE1(o); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e2"] {
		if _, err := bench.RunE2(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e3"] {
		if _, err := bench.RunE3(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e4"] {
		if _, err := bench.RunE4(o, []int{0, *crashEvery * 2, *crashEvery * 3 / 2, *crashEvery}); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e5"] {
		if _, err := bench.RunE5(o, *crashEvery); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e6"] {
		if _, err := bench.RunE6(o, *crashEvery, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["e7"] {
		if _, err := bench.RunE7(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if run["ablations"] {
		if _, _, err := bench.RunAblationParallelRecovery(o, 16, 25); err != nil {
			fail(err)
		}
		fmt.Println()
		if _, err := bench.RunAblationSharedSize(o, nil); err != nil {
			fail(err)
		}
		fmt.Println()
		abo := o
		abo.Requests = o.Requests / 4
		if _, err := bench.RunAblationDomainSize(abo, nil); err != nil {
			fail(err)
		}
		fmt.Println()
	}
}
