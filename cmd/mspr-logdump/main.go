// Command mspr-logdump runs a small recoverable workload and prints the
// resulting physical log, decoded record by record — a convenient way to
// see exactly what the recovery infrastructure writes for a given
// interaction pattern.
//
// Because the simulation is in-process, the tool builds the scenario
// itself (flags choose the shape) and then dumps the named MSP's log.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mspr"
	"mspr/internal/logdump"
)

func main() {
	requests := flag.Int("requests", 4, "requests to run before dumping")
	sessions := flag.Int("sessions", 2, "concurrent client sessions")
	withCrash := flag.Bool("crash", true, "crash and restart the MSP mid-way")
	segSize := flag.Int64("segment-size", 0, "log segment data capacity in bytes (0 = 4 MB default); small values show rotation in the dump")
	flag.Parse()

	sim := mspr.NewSim(0.02)
	dom := sim.NewDomain("dump")
	def := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"work": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("counter")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("counter", append(v, 'x')); err != nil {
					return nil, err
				}
				ctx.SetVar("last", arg)
				return v, nil
			},
		},
		Shared: []mspr.SharedDef{{Name: "counter", Initial: nil}},
	}
	cfg := sim.NewConfig("target", dom, def)
	cfg.WalSegmentSize = *segSize
	srv, err := mspr.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := sim.NewClient("client")
	defer client.Close()

	runAll := func() {
		for s := 0; s < *sessions; s++ {
			sess := client.Session("target")
			for i := 0; i < *requests; i++ {
				if _, err := sess.Call("work", []byte{byte(i)}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	runAll()
	if *withCrash {
		srv.Crash()
		if srv, err = mspr.Start(cfg); err != nil {
			log.Fatal(err)
		}
		runAll()
	}
	if err := srv.Shutdown(); err != nil {
		log.Fatal(err)
	}

	sum, err := logdump.Dump(cfg.Disk, "target.log", os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d records in [%d, %d]; by type: %v\n", sum.Records, sum.FirstLSN, sum.LastLSN, sum.ByType)
}
