// Command mspr-chaos storm-tests the full stack: the paper's two-MSP
// service-domain workload plus a transactional resource manager, under
// randomized crash-restarts of all three processes and a lossy,
// duplicating network. It verifies the recovery infrastructure's
// promises end to end:
//
//   - every session's operation counter advances exactly once per op,
//   - the shared in-memory total equals the number of operations,
//   - the durable transactional ledger equals the number of operations.
//
// Exit status is non-zero on any violation.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"mspr/internal/chaos"
	"mspr/internal/core"
	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/sdb"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/txmsp"
	"mspr/internal/wal"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func main() {
	actors := flag.Int("actors", 6, "concurrent client sessions")
	ops := flag.Int("ops", 40, "operations per actor")
	faultEvery := flag.Int("fault-every", 30, "operations between crash-restarts (0 = none)")
	seed := flag.Int64("seed", 1, "deterministic storm seed")
	loss := flag.Float64("loss", 0.03, "network loss rate")
	dup := flag.Float64("dup", 0.03, "network duplication rate")
	scale := flag.Float64("scale", 0.005, "time scale")
	failpoints := flag.Bool("failpoints", false,
		"arm the injected crash surface: torn log writes, anchor corruption, crashes inside recovery, mid-commit store crashes")
	partitions := flag.Bool("partitions", false,
		"arm the partition surface: split the service domain, crash-restart MSPs while split (recovery broadcasts lost), heal and let anti-entropy converge")
	flag.Parse()

	net := simnet.New(simnet.Config{
		OneWay: 1798 * time.Microsecond, TimeScale: *scale,
		LossRate: *loss, DupRate: *dup, Seed: *seed,
	})

	// Per-process failpoint registries (inert until -failpoints arms them).
	fpFront := failpoint.New(*seed + 101)
	fpBack := failpoint.New(*seed + 102)
	fpLedger := failpoint.New(*seed + 103)

	// The transactional resource manager (durable ledger).
	rmCfg := txmsp.Config{ID: "ledger", Net: net,
		Disk: simdisk.NewDisk(simdisk.DefaultModel(*scale)), TimeScale: *scale}
	rmCfg.Disk.SetFailpoints(fpLedger)
	rm, err := txmsp.Start(rmCfg)
	if err != nil {
		log.Fatal(err)
	}

	// front calls back (intra-domain, optimistic logging) and records the
	// op in the durable ledger (cross-domain, pessimistic + testable tx).
	dom := core.NewDomain("storm", 1798*time.Microsecond, *scale)
	backDef := core.Definition{
		Methods: map[string]core.Handler{
			"mark": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				tot, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				n := asU64(tot) + 1
				return u64(n), ctx.WriteShared("total", u64(n))
			},
			"total": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
		},
		Shared: []core.SharedDef{{Name: "total", Initial: u64(0)}},
	}
	frontDef := core.Definition{
		Methods: map[string]core.Handler{
			"op": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				if _, err := ctx.Call("back", "mark", nil); err != nil {
					return nil, err
				}
				if _, err := txmsp.Exec(ctx, "ledger", txmsp.Tx{Ops: []txmsp.Op{
					{Kind: txmsp.OpAdd, Key: "count", Value: u64(1)},
				}}); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	mkCfg := func(id string, def core.Definition, fp *failpoint.Registry) core.Config {
		cfg := core.NewConfig(id, dom, simdisk.NewDisk(simdisk.DefaultModel(*scale)), net, def)
		cfg.SessionCkptThreshold = 64 << 10
		cfg.TimeScale = *scale
		cfg.Failpoints = fp
		if *partitions {
			// A partition storm loses recovery broadcasts; the periodic
			// knowledge pull guarantees orphan detection converges after
			// the heal even on a quiet link.
			cfg.AntiEntropyEvery = 200 * time.Millisecond
		}
		return cfg
	}
	backCfg := mkCfg("back", backDef, fpBack)
	frontCfg := mkCfg("front", frontDef, fpFront)
	back, err := core.Start(backCfg)
	if err != nil {
		log.Fatal(err)
	}
	front, err := core.Start(frontCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Clients in a failpoint storm use the capped exponential backoff so
	// a recovering server sees a spread-out retry wave; the plain storm
	// keeps the paper's fixed 100 ms backoff.
	copts := rpc.DefaultCallOptions(*scale)
	if *failpoints || *partitions {
		copts = rpc.BackoffCallOptions(*scale, *seed)
	}
	client := core.NewClient("storm-client", net, copts)
	defer client.Close()

	var procMu sync.Mutex
	// On a failed Start (an armed point crashed recovery itself) the old
	// pointer is kept: its Crash is idempotent, so the fault's retry can
	// crash-restart again.
	restartFront := func() error {
		front.Crash()
		s, err := core.Start(frontCfg)
		if err == nil {
			front = s
		}
		return err
	}
	restartBack := func() error {
		back.Crash()
		s, err := core.Start(backCfg)
		if err == nil {
			back = s
		}
		return err
	}
	restartLedger := func() error {
		rm.Crash()
		r, err := txmsp.Start(rmCfg)
		if err == nil {
			rm = r
		}
		return err
	}
	faults := []chaos.Fault{
		chaos.RestartFault("crash-front", &procMu, restartFront),
		chaos.RestartFault("crash-back", &procMu, restartBack),
		chaos.RestartFault("crash-ledger", &procMu, restartLedger),
	}
	if *failpoints {
		faults = append(faults,
			// Torn log writes and anchor corruption land inside the next
			// incarnation's recovery checkpoint; the core.FPRecovery*
			// points crash the recovery machinery itself.
			chaos.CrashPointFault("torn-front-log", &procMu, fpFront,
				simdisk.FPWriteTorn+":front.log", restartFront),
			chaos.CrashPointFault("front-crash-mid-scan", &procMu, fpFront,
				core.FPRecoveryMidScan, restartFront),
			chaos.CrashPointFault("back-torn-anchor", &procMu, fpBack,
				wal.FPAnchorCrash, restartBack),
			chaos.CrashPointFault("back-crash-mid-replay", &procMu, fpBack,
				core.FPReplayMidSession, restartBack),
			// The ledger fault wedges a commit mid-flight (journal record
			// durable, acknowledgement lost) and then restarts the store;
			// testable transactions must absorb the client's resend.
			chaos.Fault{Name: "wedge-ledger", Fire: func() error {
				before := fpLedger.Hits(sdb.FPCommitCrash)
				fpLedger.Enable(sdb.FPCommitCrash, failpoint.Times(1))
				deadline := time.Now().Add(2 * time.Second)
				for fpLedger.Hits(sdb.FPCommitCrash) == before && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				procMu.Lock()
				defer procMu.Unlock()
				fpLedger.Disable(sdb.FPCommitCrash)
				return restartLedger()
			}},
		)
	}
	if *partitions {
		split := [][]simnet.Addr{{"front"}, {"back"}}
		hold := 100 * time.Millisecond
		faults = append(faults,
			// A plain split: workers blocked on the far side degrade the
			// end client to Busy until the heal.
			chaos.PartitionFault("partition", &procMu, net, split, hold, nil),
			// Crash-restart an MSP while the domain is split: its recovery
			// broadcast cannot cross the partition, so the far side must
			// learn the new epoch afterwards via piggybacked knowledge and
			// anti-entropy, then sweep the orphans it was left holding.
			chaos.PartitionFault("partition-crash-front", &procMu, net, split, hold, restartFront),
			chaos.PartitionFault("partition-crash-back", &procMu, net, split, hold, restartBack),
		)
	}

	w := chaos.Workload{
		Actors:      *actors,
		OpsPerActor: *ops,
		NewActor: func(i int) (func(int) error, func()) {
			sess := client.Session("front")
			return func(n int) error {
				out, err := sess.Call("op", nil)
				if err != nil {
					return err
				}
				if asU64(out) != uint64(n) {
					return fmt.Errorf("session counter %d, want %d", asU64(out), n)
				}
				return nil
			}, nil
		},
		FinalCheck: func() error {
			want := uint64(*actors * *ops)
			sess := client.Session("front")
			// Shared in-memory total at the back MSP.
			out, err := sess.Call("op", nil) // one extra op to flush pipelines
			if err != nil {
				return err
			}
			_ = out
			audit := client.Session("back")
			tot, err := audit.Call("total", nil)
			if err != nil {
				return err
			}
			if asU64(tot) != want+1 {
				return fmt.Errorf("shared total %d, want %d", asU64(tot), want+1)
			}
			procMu.Lock()
			ledger, _ := rm.Read("count")
			procMu.Unlock()
			if asU64(ledger) != want+1 {
				return fmt.Errorf("durable ledger %d, want %d", asU64(ledger), want+1)
			}
			return nil
		},
	}

	rep := chaos.Run(w, faults, chaos.Options{Seed: *seed, FaultEvery: *faultEvery})
	fmt.Println(rep)
	n := &metrics.Net
	fmt.Printf("net: reqQueueDrops=%d partitionDrops=%d blockedDrops=%d lossDrops=%d\n",
		n.RequestQueueDrops.Load(), n.PartitionDrops.Load(), n.BlockedDrops.Load(), n.LossDrops.Load())
	fmt.Printf("ctl: dups=%d flushDeadlines=%d peerDown=%d antiEntropyPulls=%d broadcastMissed=%d\n",
		n.CtlDuplicates.Load(), n.FlushDeadlinesExceeded.Load(), n.PeerDownEvents.Load(),
		n.AntiEntropyPulls.Load(), n.BroadcastPeersMissed.Load())
	for _, err := range rep.Errors {
		fmt.Fprintln(os.Stderr, " -", err)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}
