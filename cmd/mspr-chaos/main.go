// Command mspr-chaos storm-tests the full stack: the paper's two-MSP
// service-domain workload plus a transactional resource manager, under
// randomized crash-restarts of all three processes and a lossy,
// duplicating network. It verifies the recovery infrastructure's
// promises end to end:
//
//   - every session's operation counter advances exactly once per op,
//   - the shared in-memory total equals the number of operations,
//   - the durable transactional ledger equals the number of operations.
//
// Exit status is non-zero on any violation.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"mspr/internal/chaos"
	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/txmsp"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func main() {
	actors := flag.Int("actors", 6, "concurrent client sessions")
	ops := flag.Int("ops", 40, "operations per actor")
	faultEvery := flag.Int("fault-every", 30, "operations between crash-restarts (0 = none)")
	seed := flag.Int64("seed", 1, "deterministic storm seed")
	loss := flag.Float64("loss", 0.03, "network loss rate")
	dup := flag.Float64("dup", 0.03, "network duplication rate")
	scale := flag.Float64("scale", 0.005, "time scale")
	flag.Parse()

	net := simnet.New(simnet.Config{
		OneWay: 1798 * time.Microsecond, TimeScale: *scale,
		LossRate: *loss, DupRate: *dup, Seed: *seed,
	})

	// The transactional resource manager (durable ledger).
	rmCfg := txmsp.Config{ID: "ledger", Net: net,
		Disk: simdisk.NewDisk(simdisk.DefaultModel(*scale)), TimeScale: *scale}
	rm, err := txmsp.Start(rmCfg)
	if err != nil {
		log.Fatal(err)
	}

	// front calls back (intra-domain, optimistic logging) and records the
	// op in the durable ledger (cross-domain, pessimistic + testable tx).
	dom := core.NewDomain("storm", 1798*time.Microsecond, *scale)
	backDef := core.Definition{
		Methods: map[string]core.Handler{
			"mark": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				tot, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				n := asU64(tot) + 1
				return u64(n), ctx.WriteShared("total", u64(n))
			},
			"total": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
		},
		Shared: []core.SharedDef{{Name: "total", Initial: u64(0)}},
	}
	frontDef := core.Definition{
		Methods: map[string]core.Handler{
			"op": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				if _, err := ctx.Call("back", "mark", nil); err != nil {
					return nil, err
				}
				if _, err := txmsp.Exec(ctx, "ledger", txmsp.Tx{Ops: []txmsp.Op{
					{Kind: txmsp.OpAdd, Key: "count", Value: u64(1)},
				}}); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	mkCfg := func(id string, def core.Definition) core.Config {
		cfg := core.NewConfig(id, dom, simdisk.NewDisk(simdisk.DefaultModel(*scale)), net, def)
		cfg.SessionCkptThreshold = 64 << 10
		cfg.TimeScale = *scale
		return cfg
	}
	backCfg := mkCfg("back", backDef)
	frontCfg := mkCfg("front", frontDef)
	back, err := core.Start(backCfg)
	if err != nil {
		log.Fatal(err)
	}
	front, err := core.Start(frontCfg)
	if err != nil {
		log.Fatal(err)
	}

	client := core.NewClient("storm-client", net, rpc.DefaultCallOptions(*scale))
	defer client.Close()

	var procMu sync.Mutex
	faults := []chaos.Fault{
		chaos.RestartFault("crash-front", &procMu, func() error {
			front.Crash()
			var err error
			front, err = core.Start(frontCfg)
			return err
		}),
		chaos.RestartFault("crash-back", &procMu, func() error {
			back.Crash()
			var err error
			back, err = core.Start(backCfg)
			return err
		}),
		chaos.RestartFault("crash-ledger", &procMu, func() error {
			rm.Crash()
			var err error
			rm, err = txmsp.Start(rmCfg)
			return err
		}),
	}

	w := chaos.Workload{
		Actors:      *actors,
		OpsPerActor: *ops,
		NewActor: func(i int) (func(int) error, func()) {
			sess := client.Session("front")
			return func(n int) error {
				out, err := sess.Call("op", nil)
				if err != nil {
					return err
				}
				if asU64(out) != uint64(n) {
					return fmt.Errorf("session counter %d, want %d", asU64(out), n)
				}
				return nil
			}, nil
		},
		FinalCheck: func() error {
			want := uint64(*actors * *ops)
			sess := client.Session("front")
			// Shared in-memory total at the back MSP.
			out, err := sess.Call("op", nil) // one extra op to flush pipelines
			if err != nil {
				return err
			}
			_ = out
			audit := client.Session("back")
			tot, err := audit.Call("total", nil)
			if err != nil {
				return err
			}
			if asU64(tot) != want+1 {
				return fmt.Errorf("shared total %d, want %d", asU64(tot), want+1)
			}
			procMu.Lock()
			ledger, _ := rm.Read("count")
			procMu.Unlock()
			if asU64(ledger) != want+1 {
				return fmt.Errorf("durable ledger %d, want %d", asU64(ledger), want+1)
			}
			return nil
		},
	}

	rep := chaos.Run(w, faults, chaos.Options{Seed: *seed, FaultEvery: *faultEvery})
	fmt.Println(rep)
	for _, err := range rep.Errors {
		fmt.Fprintln(os.Stderr, " -", err)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}
