// Command mspr-chaos storm-tests the full stack: the paper's two-MSP
// service-domain workload plus a transactional resource manager, under
// randomized crash-restarts of all three processes and a lossy,
// duplicating network. It verifies the recovery infrastructure's
// promises end to end:
//
//   - every session's operation counter advances exactly once per op,
//   - the shared in-memory total equals the number of operations,
//   - the durable transactional ledger equals the number of operations.
//
// With -oracle the storm additionally records a full client/server event
// history and runs the four correctness checkers (exactly-once, session
// monotonicity, shared-state explainability, no-orphan-reply) over it —
// see internal/oracle.
//
// Failing storms are reproducible: -trace writes the seed and the exact
// ordered fault schedule as JSON, -replay re-fires a recorded schedule
// verbatim, and -minimize shrinks a failing storm to the smallest
// schedule and workload that still reproduce before writing the trace.
//
// Exit status is non-zero on any violation.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"mspr/internal/chaos"
	"mspr/internal/core"
	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/oracle"
	"mspr/internal/rpc"
	"mspr/internal/sdb"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/txmsp"
	"mspr/internal/wal"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// stormConfig is everything needed to build one pristine storm system —
// the minimizer rebuilds from it for every candidate execution.
type stormConfig struct {
	actors, ops int
	seed        int64
	loss, dup   float64
	scale       float64
	batch       time.Duration
	segSize     int64
	failpoints  bool
	partitions  bool
	oracle      bool
	breakDedup  bool
}

// storm is one built system: workload, fault set, the recorder (nil
// without -oracle) and a teardown.
type storm struct {
	w        chaos.Workload
	faults   []chaos.Fault
	rec      *oracle.Recorder
	restarts *chaos.RestartTimes
	ttfr     *chaos.DurationSeries
	close    func()
}

// buildStorm assembles the fresh system: network, ledger, back and front
// MSPs, client, fault plane, and (optionally) the oracle taps.
func buildStorm(c stormConfig) (*storm, error) {
	net := simnet.New(simnet.Config{
		OneWay: 1798 * time.Microsecond, TimeScale: c.scale,
		LossRate: c.loss, DupRate: c.dup, Seed: c.seed,
	})

	var rec *oracle.Recorder
	if c.oracle {
		rec = oracle.NewRecorder()
	}

	// Per-process failpoint registries (inert until -failpoints arms them).
	fpFront := failpoint.New(c.seed + 101)
	fpBack := failpoint.New(c.seed + 102)
	fpLedger := failpoint.New(c.seed + 103)
	if c.breakDedup {
		// Sabotage for demonstrating the oracle: every duplicate request
		// the front MSP receives re-executes instead of being absorbed.
		fpFront.Enable(core.FPDedupSkip, failpoint.Times(-1))
	}

	// The transactional resource manager (durable ledger).
	rmCfg := txmsp.Config{ID: "ledger", Net: net,
		Disk: simdisk.NewDisk(simdisk.DefaultModel(c.scale)), TimeScale: c.scale}
	rmCfg.Disk.SetFailpoints(fpLedger)
	if rec != nil {
		rmCfg.Tap = rec
	}
	rm, err := txmsp.Start(rmCfg)
	if err != nil {
		return nil, err
	}

	// front calls back (intra-domain, optimistic logging) and records the
	// op in the durable ledger (cross-domain, pessimistic + testable tx).
	dom := core.NewDomain("storm", 1798*time.Microsecond, c.scale)
	backDef := core.Definition{
		Methods: map[string]core.Handler{
			"mark": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				tot, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				n := asU64(tot) + 1
				return u64(n), ctx.WriteShared("total", u64(n))
			},
			"total": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
		},
		Shared: []core.SharedDef{{Name: "total", Initial: u64(0)}},
	}
	frontDef := core.Definition{
		Methods: map[string]core.Handler{
			"op": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				if _, err := ctx.Call("back", "mark", nil); err != nil {
					return nil, err
				}
				if _, err := txmsp.Exec(ctx, "ledger", txmsp.Tx{Ops: []txmsp.Op{
					{Kind: txmsp.OpAdd, Key: "count", Value: u64(1)},
				}}); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	mkCfg := func(id string, def core.Definition, fp *failpoint.Registry) core.Config {
		cfg := core.NewConfig(id, dom, simdisk.NewDisk(simdisk.DefaultModel(c.scale)), net, def)
		cfg.SessionCkptThreshold = 64 << 10
		cfg.TimeScale = c.scale
		cfg.BatchFlushTimeout = c.batch
		cfg.Failpoints = fp
		if c.segSize > 0 {
			// A bounded-disk storm: tiny segments force frequent rotation,
			// and checkpoint cadence scaled to the segment size keeps
			// truncation reclaiming them (a checkpoint every ~4 segments of
			// log, sessions refreshed every ~2), so the live log stays a
			// small multiple of the segment size throughout.
			cfg.WalSegmentSize = c.segSize
			cfg.MSPCkptEvery = 4 * c.segSize
			cfg.SessionCkptThreshold = 2 * c.segSize
		}
		if rec != nil {
			cfg.Tap = rec
		}
		if c.partitions {
			// A partition storm loses recovery broadcasts; the periodic
			// knowledge pull guarantees orphan detection converges after
			// the heal even on a quiet link.
			cfg.AntiEntropyEvery = 200 * time.Millisecond
		}
		return cfg
	}
	backCfg := mkCfg("back", backDef, fpBack)
	frontCfg := mkCfg("front", frontDef, fpFront)
	back, err := core.Start(backCfg)
	if err != nil {
		return nil, err
	}
	front, err := core.Start(frontCfg)
	if err != nil {
		return nil, err
	}

	// Clients in a failpoint storm use the capped exponential backoff so
	// a recovering server sees a spread-out retry wave; the plain storm
	// keeps the paper's fixed 100 ms backoff.
	copts := rpc.DefaultCallOptions(c.scale)
	if c.failpoints || c.partitions {
		copts = rpc.BackoffCallOptions(c.scale, c.seed)
	}
	client := core.NewClient("storm-client", net, copts)
	if rec != nil {
		client.SetTap(rec)
	}

	var procMu sync.Mutex
	restarts := &chaos.RestartTimes{}
	ttfr := &chaos.DurationSeries{}
	// An incarnation's time-to-first-reply is harvested lazily — when it
	// is next crashed, or at teardown — so the restart path never waits
	// for the measurement's first reply to happen.
	harvestTTFR := func(s *core.Server) {
		if d := s.TimeToFirstReply(); d > 0 {
			ttfr.Observe(d)
		}
	}
	// On a failed Start (an armed point crashed recovery itself) the old
	// pointer is kept: its Crash is idempotent, so the fault's retry can
	// crash-restart again. Successful restarts record their crash-to-ready
	// wall-clock duration, so the storm report bounds recovery time.
	restartFront := func() error {
		t0 := time.Now()
		harvestTTFR(front)
		front.Crash()
		s, err := core.Start(frontCfg)
		if err == nil {
			front = s
			restarts.Observe(time.Since(t0))
		}
		return err
	}
	restartBack := func() error {
		t0 := time.Now()
		harvestTTFR(back)
		back.Crash()
		s, err := core.Start(backCfg)
		if err == nil {
			back = s
			restarts.Observe(time.Since(t0))
		}
		return err
	}
	restartLedger := func() error {
		rm.Crash()
		r, err := txmsp.Start(rmCfg)
		if err == nil {
			rm = r
		}
		return err
	}
	faults := []chaos.Fault{
		chaos.RestartFault("crash-front", &procMu, restartFront),
		chaos.RestartFault("crash-back", &procMu, restartBack),
		chaos.RestartFault("crash-ledger", &procMu, restartLedger),
	}
	if c.failpoints {
		faults = append(faults,
			// Torn log writes and anchor corruption land inside the next
			// incarnation's recovery checkpoint; the core.FPRecovery*
			// points crash the recovery machinery itself.
			chaos.CrashPointFault("torn-front-log", &procMu, fpFront,
				simdisk.FPWriteTorn+":front.log", restartFront),
			chaos.CrashPointFault("front-crash-mid-scan", &procMu, fpFront,
				core.FPRecoveryMidScan, restartFront),
			chaos.CrashPointFault("back-torn-anchor", &procMu, fpBack,
				wal.FPAnchorCrash, restartBack),
			chaos.CrashPointFault("back-crash-mid-replay", &procMu, fpBack,
				core.FPReplayMidSession, restartBack),
			// The instant-recovery window: crash between the analysis pass
			// and the first reply, during a lazy (first-touch) session
			// replay, and inside the background sweep.
			chaos.CrashPointFault("front-crash-before-serve", &procMu, fpFront,
				core.FPRecoveryBeforeServe, restartFront),
			chaos.CrashPointFault("front-crash-lazy-replay", &procMu, fpFront,
				core.FPLazyReplay, restartFront),
			chaos.CrashPointFault("back-crash-mid-sweep", &procMu, fpBack,
				core.FPSweepMid, restartBack),
			// The ledger fault wedges a commit mid-flight (journal record
			// durable, acknowledgement lost) and then restarts the store;
			// testable transactions must absorb the client's resend.
			// Rotation and truncation crash points: crash the log's segment
			// machinery at each step of its protocol (before the new segment
			// file exists, between create and anchor update, after the
			// anchor, and between truncation's segment deletions). With a
			// small -segment-size every step is reached constantly.
			chaos.CrashPointFault("front-crash-rotate-pre-create", &procMu, fpFront,
				wal.FPRotateBeforeCreate, restartFront),
			chaos.CrashPointFault("front-crash-rotate-orphan", &procMu, fpFront,
				wal.FPRotateAfterCreate, restartFront),
			chaos.CrashPointFault("back-crash-rotate-post-anchor", &procMu, fpBack,
				wal.FPRotateAfterAnchor, restartBack),
			chaos.CrashPointFault("front-crash-mid-truncate", &procMu, fpFront,
				wal.FPTruncateCrash, restartFront),
			chaos.CrashPointFault("back-crash-mid-truncate", &procMu, fpBack,
				wal.FPTruncateCrash, restartBack),
			chaos.Fault{Name: "wedge-ledger", Fire: func() error {
				before := fpLedger.Hits(sdb.FPCommitCrash)
				fpLedger.Enable(sdb.FPCommitCrash, failpoint.Times(1))
				deadline := time.Now().Add(2 * time.Second)
				for fpLedger.Hits(sdb.FPCommitCrash) == before && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				procMu.Lock()
				defer procMu.Unlock()
				fpLedger.Disable(sdb.FPCommitCrash)
				return restartLedger()
			}},
		)
	}
	if c.partitions {
		split := [][]simnet.Addr{{"front"}, {"back"}}
		hold := 100 * time.Millisecond
		faults = append(faults,
			// A plain split: workers blocked on the far side degrade the
			// end client to Busy until the heal.
			chaos.PartitionFault("partition", &procMu, net, split, hold, nil),
			// Crash-restart an MSP while the domain is split: its recovery
			// broadcast cannot cross the partition, so the far side must
			// learn the new epoch afterwards via piggybacked knowledge and
			// anti-entropy, then sweep the orphans it was left holding.
			chaos.PartitionFault("partition-crash-front", &procMu, net, split, hold, restartFront),
			chaos.PartitionFault("partition-crash-back", &procMu, net, split, hold, restartBack),
		)
	}

	declare := func(session string, seq uint64) {
		if rec != nil {
			// Each op adds one to the back MSP's shared total and one to
			// the ledger; the explainability checker balances these
			// declarations against the finals below.
			rec.DeclareEffect(session, seq, "back/total", 1)
			rec.DeclareEffect(session, seq, "ledger/count", 1)
		}
	}
	w := chaos.Workload{
		Actors:      c.actors,
		OpsPerActor: c.ops,
		NewActor: func(i int) (func(int) error, func()) {
			sess := client.Session("front")
			return func(n int) error {
				declare(sess.ID(), uint64(n))
				out, err := sess.Call("op", nil)
				if err != nil {
					return err
				}
				if asU64(out) != uint64(n) {
					return fmt.Errorf("session counter %d, want %d", asU64(out), n)
				}
				return nil
			}, nil
		},
		FinalCheck: func() error {
			// Collect every failure rather than stopping at the first, so
			// a broken storm shows both the audit mismatch and the
			// oracle's checker verdicts.
			var errs []string
			want := uint64(c.actors * c.ops)
			sess := client.Session("front")
			declare(sess.ID(), 1)
			if _, err := sess.Call("op", nil); err != nil { // one extra op to flush pipelines
				return err
			}
			audit := client.Session("back")
			tot, err := audit.Call("total", nil)
			if err != nil {
				return err
			}
			if asU64(tot) != want+1 {
				errs = append(errs, fmt.Sprintf("shared total %d, want %d", asU64(tot), want+1))
			}
			procMu.Lock()
			ledger, _ := rm.Read("count")
			if rec != nil {
				rm.Digest("final")
			}
			procMu.Unlock()
			if asU64(ledger) != want+1 {
				errs = append(errs, fmt.Sprintf("durable ledger %d, want %d", asU64(ledger), want+1))
			}
			if rec != nil {
				rec.FinalState("back/total", int64(asU64(tot)))
				rec.FinalState("ledger/count", int64(asU64(ledger)))
				if vs := rec.Check(); len(vs) != 0 {
					for _, v := range vs {
						fmt.Fprintln(os.Stderr, " oracle:", v)
					}
					errs = append(errs, fmt.Sprintf("oracle: %d violations (%d events recorded)", len(vs), rec.Len()))
				}
			}
			if len(errs) > 0 {
				return fmt.Errorf("%s", strings.Join(errs, "; "))
			}
			return nil
		},
	}
	st := &storm{w: w, faults: faults, rec: rec, restarts: restarts, ttfr: ttfr}
	st.close = func() {
		procMu.Lock()
		harvestTTFR(front)
		harvestTTFR(back)
		front.Crash()
		back.Crash()
		rm.Crash()
		procMu.Unlock()
		client.Close()
	}
	return st, nil
}

func writeTrace(path string, tr chaos.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	actors := flag.Int("actors", 6, "concurrent client sessions")
	ops := flag.Int("ops", 40, "operations per actor")
	faultEvery := flag.Int("fault-every", 30, "operations between crash-restarts (0 = none)")
	seed := flag.Int64("seed", 1, "deterministic storm seed")
	loss := flag.Float64("loss", 0.03, "network loss rate")
	dup := flag.Float64("dup", 0.03, "network duplication rate")
	scale := flag.Float64("scale", 0.005, "time scale")
	batchFlush := flag.Duration("batch-flush", 8*time.Millisecond,
		"group-commit batch window in model time (0 = flush each record immediately)")
	segSize := flag.Int64("segment-size", 0,
		"log segment data capacity in bytes (0 = the 4 MB default); a small value forces constant rotation and truncation, and scales the checkpoint cadence to match")
	failpoints := flag.Bool("failpoints", false,
		"arm the injected crash surface: torn log writes, anchor corruption, crashes inside recovery, mid-commit store crashes")
	partitions := flag.Bool("partitions", false,
		"arm the partition surface: split the service domain, crash-restart MSPs while split (recovery broadcasts lost), heal and let anti-entropy converge")
	useOracle := flag.Bool("oracle", false,
		"record the full client/server event history and run the correctness checkers over it")
	breakDedup := flag.Bool("break-dedup", false,
		"sabotage request deduplication at the front MSP (demonstrates the oracle catching a duplicate execution)")
	overloadStorm := flag.Bool("overload", false,
		"run the saturation storm instead: measure closed-loop capacity, flood open-loop at -overload-x times it with bursty Zipf-keyed arrivals, crash-restart mid-saturation, and oracle-check the history")
	overloadX := flag.Float64("overload-x", 4, "offered load as a multiple of the measured closed-loop capacity")
	overloadDur := flag.Duration("overload-duration", 2*time.Second, "wall-clock open-loop flood window")
	overloadKeys := flag.Int("overload-keys", 16, "Zipf key-space size for the flood")
	overloadBurst := flag.Int("overload-burst", 8, "arrivals per open-loop burst")
	overloadCrashes := flag.Int("overload-crashes", 2, "crash-restarts fired during the flood")
	overloadQueue := flag.Int("overload-queue", 512, "normal-lane admission queue capacity for the flooded server")
	tracePath := flag.String("trace", "", "write the storm's replayable JSON trace to this file")
	replayPath := flag.String("replay", "", "replay the fault schedule from this JSON trace instead of generating one")
	minimize := flag.Bool("minimize", false,
		"on failure, shrink the storm to a minimal failing trace (written to -trace, default storm-min.json)")
	flag.Parse()

	if *overloadStorm {
		os.Exit(runOverloadStorm(overloadConfig{
			seed: *seed, scale: *scale, loss: *loss, dup: *dup,
			factor: *overloadX, duration: *overloadDur,
			keys: *overloadKeys, burst: *overloadBurst,
			crashes: *overloadCrashes, queueDepth: *overloadQueue,
		}))
	}

	cfg := stormConfig{
		actors: *actors, ops: *ops, seed: *seed,
		loss: *loss, dup: *dup, scale: *scale,
		batch: *batchFlush, segSize: *segSize,
		failpoints: *failpoints, partitions: *partitions,
		oracle: *useOracle, breakDedup: *breakDedup,
	}
	// build sizes a fresh system to the candidate trace: the workload's
	// final check compares counters against actors × ops, so a shrunken
	// replay must get a system that expects the shrunken shape.
	build := func(tr chaos.Trace) (chaos.Workload, []chaos.Fault, func()) {
		c := cfg
		if tr.Actors > 0 {
			c.actors = tr.Actors
		}
		if tr.OpsPerActor > 0 {
			c.ops = tr.OpsPerActor
		}
		if tr.Seed != 0 {
			// The trace's seed drives the rebuilt system too (network
			// loss/duplication, failpoint draws) — replaying someone
			// else's trace must not depend on matching their -seed flag.
			c.seed = tr.Seed
		}
		st, err := buildStorm(c)
		if err != nil {
			log.Fatal(err)
		}
		return st.w, st.faults, st.close
	}

	opts := chaos.Options{Seed: *seed, FaultEvery: *faultEvery}
	var rep chaos.Report
	var st *storm
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := chaos.DecodeTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %s: %d faults over %d actors x %d ops (seed %d)\n",
			*replayPath, len(tr.Schedule), tr.Actors, tr.OpsPerActor, tr.Seed)
		if tr.Actors > 0 {
			cfg.actors = tr.Actors
		}
		if tr.OpsPerActor > 0 {
			cfg.ops = tr.OpsPerActor
		}
		if tr.Seed != 0 {
			cfg.seed = tr.Seed
		}
		if st, err = buildStorm(cfg); err != nil {
			log.Fatal(err)
		}
		rep = chaos.Replay(st.w, st.faults, tr)
		opts = tr.Options()
	} else {
		var err error
		if st, err = buildStorm(cfg); err != nil {
			log.Fatal(err)
		}
		rep = chaos.Run(st.w, st.faults, opts)
	}
	st.close()

	fmt.Println(rep)
	n := &metrics.Net
	fmt.Printf("net: reqQueueDrops=%d partitionDrops=%d blockedDrops=%d lossDrops=%d\n",
		n.RequestQueueDrops.Load(), n.PartitionDrops.Load(), n.BlockedDrops.Load(), n.LossDrops.Load())
	fmt.Printf("ctl: dups=%d flushDeadlines=%d peerDown=%d antiEntropyPulls=%d broadcastMissed=%d\n",
		n.CtlDuplicates.Load(), n.FlushDeadlinesExceeded.Load(), n.PeerDownEvents.Load(),
		n.AntiEntropyPulls.Load(), n.BroadcastPeersMissed.Load())
	w := &metrics.Wal
	if batches := w.GroupCommitBatches.Load(); batches > 0 {
		fmt.Printf("wal: groupCommitBatches=%d waitersPerBatch=%.2f windowsHeld=%d waits=%d\n",
			batches, float64(w.GroupCommitBatchWaiters.Load())/float64(batches),
			w.GroupCommitWindows.Load(), w.GroupCommitWaits.Load())
	}
	fmt.Printf("wal: rotations=%d segmentsLive=%d segmentsReclaimed=%d liveLogBytes=%d peakLiveBytes=%d\n",
		w.Rotations.Load(), w.SegmentsLive.Load(), w.SegmentsReclaimed.Load(),
		w.LiveLogBytes.Load(), w.PeakLiveBytes.Load())
	if n, avg, max := st.restarts.Summary(); n > 0 {
		fmt.Printf("recovery: restarts=%d avg=%v max=%v\n", n, avg.Round(time.Millisecond), max.Round(time.Millisecond))
	}
	if st.ttfr.Count() > 0 {
		fmt.Printf("recovery: timeToFirstReply p50=%v max=%v (%d incarnations)\n",
			st.ttfr.Percentile(50).Round(time.Millisecond), st.ttfr.Max().Round(time.Millisecond), st.ttfr.Count())
	}
	r := &metrics.Recovery
	fmt.Printf("recovery: lazyReplays=%d sweepReplays=%d pendingSessions=%d pendingShared=%d\n",
		r.LazyReplays.Load(), r.SweepReplays.Load(), r.PendingSessions.Load(), r.PendingShared.Load())
	printOverloadMetrics()
	if st.rec != nil {
		fmt.Printf("oracle: %d events recorded\n", st.rec.Len())
	}
	for _, err := range rep.Errors {
		fmt.Fprintln(os.Stderr, " -", err)
	}

	tr := chaos.NewTrace(st.w, opts, rep)
	if rep.Failed() && *minimize {
		fmt.Println("minimizing failing storm...")
		min, stats := chaos.Minimize(build, tr)
		if stats.Reproduced {
			min.Note = fmt.Sprintf("minimized in %d attempts from a %d-fault schedule", stats.Attempts, len(tr.Schedule))
			tr = min
			fmt.Printf("minimized to %d faults over %d actors x %d ops (%d attempts)\n",
				len(min.Schedule), min.Actors, min.OpsPerActor, stats.Attempts)
		} else {
			fmt.Println("storm did not reproduce on re-execution; keeping the original trace")
		}
		if *tracePath == "" {
			*tracePath = "storm-min.json"
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}
