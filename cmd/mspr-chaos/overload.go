package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mspr/internal/chaos"
	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/oracle"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/workload"
)

// The -overload storm saturates one MSP on purpose. The closed-loop
// storms can never overload anything — each actor waits for its reply,
// so offered load tracks capacity — so this storm first MEASURES the
// closed-loop capacity, then floods the server open-loop at a multiple
// of it with bursty arrivals and Zipf-skewed keys, crash-restarting the
// server mid-saturation. Every flooded call carries a deadline, draws on
// a shared retry budget, and trips a per-server circuit breaker; the
// server sheds at the admission gate and at the pre-append check. The
// oracle records the whole history, and the storm asserts:
//
//   - zero correctness violations (exactly-once survives shedding:
//     a shed request never owns a logged execution),
//   - queue depth stayed bounded by the configured lane capacities,
//   - time-to-shed stayed bounded (sheds fail fast; they do not hang),
//   - the flood actually shed (otherwise the ≥4x claim tested nothing).
type overloadConfig struct {
	seed       int64
	scale      float64
	loss, dup  float64
	factor     float64       // offered load as a multiple of measured capacity
	duration   time.Duration // wall-clock flood window
	keys       int           // Zipf key-space size
	burst      int           // arrivals per open-loop burst
	crashes    int           // crash-restarts fired during the flood
	queueDepth int           // normal-lane admission queue capacity
}

// overloadOutcomes tallies the client-visible endings of flooded calls.
type overloadOutcomes struct {
	ok, appErr, overloaded, circuitOpen, deadline, other atomic.Int64
}

func (o *overloadOutcomes) record(err error) {
	switch {
	case err == nil:
		o.ok.Add(1)
	case err == rpc.ErrOverloaded:
		o.overloaded.Add(1)
	case err == rpc.ErrCircuitOpen:
		o.circuitOpen.Add(1)
	case err == rpc.ErrDeadlineExceeded:
		o.deadline.Add(1)
	default:
		if _, ok := err.(*rpc.AppError); ok {
			o.appErr.Add(1)
		} else {
			o.other.Add(1)
		}
	}
}

func keyName(k int) string { return fmt.Sprintf("key-%d", k) }

// runOverloadStorm builds the system, measures capacity, floods, audits,
// and returns the process exit code.
func runOverloadStorm(c overloadConfig) int {
	net := simnet.New(simnet.Config{
		OneWay: 1798 * time.Microsecond, TimeScale: c.scale,
		LossRate: c.loss, DupRate: c.dup, Seed: c.seed,
	})
	rec := oracle.NewRecorder()

	shared := make([]core.SharedDef, c.keys)
	for i := range shared {
		shared[i] = core.SharedDef{Name: keyName(i), Initial: u64(0)}
	}
	def := core.Definition{
		Methods: map[string]core.Handler{
			// mark(key): the contended write — Zipf skew concentrates
			// these on the hot keys.
			"mark": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				name := keyName(int(asU64(arg)))
				v, err := ctx.ReadShared(name)
				if err != nil {
					return nil, err
				}
				n := asU64(v) + 1
				return u64(n), ctx.WriteShared(name, u64(n))
			},
			"get": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared(keyName(int(asU64(arg))))
			},
		},
		Shared: shared,
	}
	dom := core.NewDomain("overload", 1798*time.Microsecond, c.scale)
	cfg := core.NewConfig("msp", dom, simdisk.NewDisk(simdisk.DefaultModel(c.scale)), net, def)
	cfg.TimeScale = c.scale
	cfg.Tap = rec
	// A deliberately shallow normal lane: at factor x capacity the
	// backlog must hit the wall and shed, not absorb the whole flood.
	cfg.RequestQueueDepth = c.queueDepth
	srv, err := core.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overload: start:", err)
		return 1
	}
	var procMu sync.Mutex

	overload0 := snapshotOverload()

	// Phase 1: measure closed-loop capacity — paper-style actors, no
	// deadlines, no budgets, each waiting for its reply.
	const measureActors = 4
	measureWindow := 600 * time.Millisecond
	capClient := core.NewClient("cap-client", net, rpc.DefaultCallOptions(c.scale))
	capClient.SetTap(rec)
	var measured atomic.Int64
	var wg sync.WaitGroup
	stopMeasure := make(chan struct{})
	for a := 0; a < measureActors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			zipf := workload.NewZipfKeys(workload.ZipfParams{Keys: c.keys, Skew: 1.2, Seed: c.seed + int64(a)})
			sess := capClient.Session("msp")
			for seq := uint64(1); ; seq++ {
				select {
				case <-stopMeasure:
					return
				default:
				}
				k := zipf.Next()
				rec.DeclareEffect(sess.ID(), seq, "msp/"+keyName(k), 1)
				if _, err := sess.Call("mark", u64(uint64(k))); err != nil {
					return
				}
				measured.Add(1)
			}
		}(a)
	}
	t0 := time.Now()
	time.Sleep(measureWindow)
	close(stopMeasure)
	wg.Wait()
	elapsed := time.Since(t0)
	capacity := float64(measured.Load()) / elapsed.Seconds()
	if capacity <= 0 {
		fmt.Fprintln(os.Stderr, "overload: measured zero closed-loop capacity")
		return 1
	}
	floodRate := capacity * c.factor
	fmt.Printf("overload: closed-loop capacity %.0f ops/s (%d actors, %v); flooding open-loop at %.0f ops/s (%.1fx) for %v\n",
		capacity, measureActors, elapsed.Round(time.Millisecond), floodRate, c.factor, c.duration)

	// Phase 2: the open-loop flood. One call per session, abandoned on
	// any non-terminal outcome — a shed request's sequence number is
	// never reused with different arguments. All sessions toward the
	// server share one retry budget and one circuit breaker.
	floodOpts := rpc.DefaultCallOptions(c.scale)
	floodOpts.TimeScale = c.scale
	// Model time; ~30 ms wall at the default scale — comparable to the
	// time a full normal lane takes to drain, so a slice of admitted
	// requests expires in the queue and exercises the pre-append shed.
	floodOpts.Timeout = 6 * time.Second
	floodOpts.Budget = rpc.NewRetryBudget(64, 0.5)
	floodOpts.Breaker = rpc.NewBreaker(32, 25*time.Millisecond)
	floodClient := core.NewClient("flood-client", net, floodOpts)
	floodClient.SetTap(rec)

	arrivals := workload.NewArrivals(workload.ArrivalParams{Rate: floodRate, Burst: c.burst, Seed: c.seed + 1000})
	zipf := workload.NewZipfKeys(workload.ZipfParams{Keys: c.keys, Skew: 1.2, Seed: c.seed + 2000})
	var outcomes overloadOutcomes
	shedLat := &chaos.DurationSeries{}
	var offered int64

	// Crash-restarts mid-saturation, spread across the flood window.
	restartErrs := make(chan error, c.crashes)
	var crashWg sync.WaitGroup
	if c.crashes > 0 {
		crashWg.Add(1)
		go func() {
			defer crashWg.Done()
			gap := c.duration / time.Duration(c.crashes+1)
			for i := 0; i < c.crashes; i++ {
				time.Sleep(gap)
				procMu.Lock()
				srv.Crash()
				s, err := core.Start(cfg)
				if err == nil {
					srv = s
				} else {
					restartErrs <- err
				}
				procMu.Unlock()
			}
		}()
	}

	// Absolute-time pacing: each arrival is scheduled at the previous
	// arrival time plus the generated gap, and the loop only sleeps when
	// ahead of schedule. Falling behind (goroutine spawn overhead, sleep
	// granularity) self-corrects by firing late arrivals back-to-back, so
	// the achieved rate tracks the target instead of silently sagging.
	floodStart := time.Now()
	floodEnd := floodStart.Add(c.duration)
	next := floodStart
	var callWg sync.WaitGroup
	for time.Now().Before(floodEnd) {
		next = next.Add(arrivals.Next())
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		k := zipf.Next()
		offered++
		callWg.Add(1)
		go func(k int) {
			defer callWg.Done()
			sess := floodClient.Session("msp")
			rec.DeclareEffect(sess.ID(), 1, "msp/"+keyName(k), 1)
			start := time.Now()
			_, err := sess.Call("mark", u64(uint64(k)))
			outcomes.record(err)
			if err == rpc.ErrOverloaded || err == rpc.ErrCircuitOpen || err == rpc.ErrDeadlineExceeded {
				shedLat.Observe(time.Since(start))
			}
		}(k)
	}
	floodElapsed := time.Since(floodStart)
	callWg.Wait()
	crashWg.Wait()
	close(restartErrs)
	achieved := float64(offered) / floodElapsed.Seconds()

	// Phase 3: drain and audit. A closed-loop client (no deadline) reads
	// every key once the backlog clears; the oracle balances declared
	// effects against these finals.
	auditClient := core.NewClient("audit-client", net, rpc.DefaultCallOptions(c.scale))
	auditClient.SetTap(rec)
	audit := auditClient.Session("msp")
	var failures []string
	for k := 0; k < c.keys; k++ {
		v, err := audit.Call("get", u64(uint64(k)))
		if err != nil {
			failures = append(failures, fmt.Sprintf("audit read %s: %v", keyName(k), err))
			break
		}
		rec.FinalState("msp/"+keyName(k), int64(asU64(v)))
	}

	procMu.Lock()
	srv.Crash()
	procMu.Unlock()
	capClient.Close()
	floodClient.Close()
	auditClient.Close()

	// The report.
	delta := snapshotOverload().sub(overload0)
	fmt.Printf("overload: offered=%d (%.0f ops/s achieved, %.1fx capacity) ok=%d overloaded=%d circuitOpen=%d deadline=%d appErr=%d other=%d\n",
		offered, achieved, achieved/capacity, outcomes.ok.Load(), outcomes.overloaded.Load(),
		outcomes.circuitOpen.Load(), outcomes.deadline.Load(), outcomes.appErr.Load(), outcomes.other.Load())
	printOverloadMetrics()
	if shedLat.Count() > 0 {
		fmt.Printf("overload: timeToShed p50=%v p95=%v max=%v (%d sheds client-side)\n",
			shedLat.Percentile(50).Round(time.Millisecond), shedLat.Percentile(95).Round(time.Millisecond),
			shedLat.Max().Round(time.Millisecond), shedLat.Count())
	}
	fmt.Printf("oracle: %d events recorded\n", rec.Len())

	// The assertions.
	for err := range restartErrs {
		failures = append(failures, fmt.Sprintf("crash-restart mid-saturation failed: %v", err))
	}
	if vs := rec.Check(); len(vs) != 0 {
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, " oracle:", v)
		}
		failures = append(failures, fmt.Sprintf("oracle: %d violations under saturation", len(vs)))
	}
	bound := int64(c.queueDepth) + int64(core.DefaultPriorityQueueDepth)
	if peak := metrics.Overload.QueueDepthPeak.Load(); peak > bound {
		failures = append(failures, fmt.Sprintf("queue depth peaked at %d, above the %d lane capacity", peak, bound))
	}
	if serverSheds := delta.shedAtAdmission + delta.shedExpired; serverSheds == 0 {
		failures = append(failures, "the flood never shed: offered load did not exceed capacity, the storm proved nothing")
	}
	// A shed must fail fast: budget-bounded retries sleep at most a few
	// RetryAfter hints (capped at 2s each), never the whole storm.
	if maxShed := shedLat.Max(); maxShed > 10*time.Second {
		failures = append(failures, fmt.Sprintf("slowest shed took %v: sheds must fail fast", maxShed))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, " -", f)
		}
		fmt.Println("OVERLOAD STORM FAILED")
		return 1
	}
	fmt.Println("OVERLOAD STORM PASSED")
	return 0
}

// overloadSnapshot captures the process-wide overload counters so the
// storm can report deltas (tests in the same process may have moved them).
type overloadSnapshot struct {
	admitted, admittedPriority, priorityOverflow, shedAtAdmission, shedExpired int64
	budgetExhausted, breakerOpens                                              int64
}

func snapshotOverload() overloadSnapshot {
	o := &metrics.Overload
	return overloadSnapshot{
		admitted:         o.Admitted.Load(),
		admittedPriority: o.AdmittedPriority.Load(),
		priorityOverflow: o.PriorityOverflow.Load(),
		shedAtAdmission:  o.ShedAtAdmission.Load(),
		shedExpired:      o.ShedExpired.Load(),
		budgetExhausted:  o.RetryBudgetExhausted.Load(),
		breakerOpens:     o.BreakerOpens.Load(),
	}
}

func (s overloadSnapshot) sub(t overloadSnapshot) overloadSnapshot {
	return overloadSnapshot{
		admitted:         s.admitted - t.admitted,
		admittedPriority: s.admittedPriority - t.admittedPriority,
		priorityOverflow: s.priorityOverflow - t.priorityOverflow,
		shedAtAdmission:  s.shedAtAdmission - t.shedAtAdmission,
		shedExpired:      s.shedExpired - t.shedExpired,
		budgetExhausted:  s.budgetExhausted - t.budgetExhausted,
		breakerOpens:     s.breakerOpens - t.breakerOpens,
	}
}

// printOverloadMetrics prints the overload-control counters; every storm
// summary includes it so admission behaviour is visible even in the
// closed-loop storms (where sheds should be rare to absent).
func printOverloadMetrics() {
	o := &metrics.Overload
	fmt.Printf("overload: admitted=%d admittedPriority=%d priorityOverflow=%d shedAtAdmission=%d shedExpired=%d retryBudgetExhausted=%d breakerOpens=%d\n",
		o.Admitted.Load(), o.AdmittedPriority.Load(), o.PriorityOverflow.Load(), o.ShedAtAdmission.Load(),
		o.ShedExpired.Load(), o.RetryBudgetExhausted.Load(), o.BreakerOpens.Load())
	fmt.Printf("overload: queueDepthPeak=%d priorityDepthPeak=%d\n",
		o.QueueDepthPeak.Load(), o.PriorityDepthPeak.Load())
}
