package mspr_test

import (
	"fmt"
	"log"

	"mspr"
)

// Example shows the minimal lifecycle: define a service, start it, call
// it, crash it, restart it — and observe that state survives with
// exactly-once semantics.
func Example() {
	sim := mspr.NewSim(0) // TimeScale 0: no modelled latencies (demo speed)
	dom := sim.NewDomain("example")
	def := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"append": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				l := append(ctx.GetVar("list"), arg...)
				ctx.SetVar("list", l)
				return l, nil
			},
		},
	}
	cfg := sim.NewConfig("svc", dom, def)
	srv, err := mspr.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := sim.NewClient("client")
	defer client.Close()
	sess := client.Session("svc")

	out, _ := sess.Call("append", []byte("a"))
	fmt.Println(string(out))

	srv.Crash() // all in-memory state lost...
	if _, err := mspr.Start(cfg); err != nil {
		log.Fatal(err)
	}

	out, _ = sess.Call("append", []byte("b")) // ...and recovered
	fmt.Println(string(out))
	// Output:
	// a
	// ab
}

// ExampleDefinition_sharedState shows shared in-memory state: value-logged,
// recoverable, consistent across sessions.
func ExampleDefinition_sharedState() {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("example")
	def := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"visit": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				n, err := ctx.ReadShared("visits")
				if err != nil {
					return nil, err
				}
				n = append(n, 'x')
				return n, ctx.WriteShared("visits", n)
			},
		},
		Shared: []mspr.SharedDef{{Name: "visits", Initial: nil}},
	}
	cfg := sim.NewConfig("svc", dom, def)
	srv, err := mspr.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := sim.NewClient("client")
	defer client.Close()

	alice := client.Session("svc")
	bob := client.Session("svc")
	alice.Call("visit", nil)
	bob.Call("visit", nil)

	srv.Crash()
	if _, err := mspr.Start(cfg); err != nil {
		log.Fatal(err)
	}
	out, _ := alice.Call("visit", nil)
	fmt.Printf("%d visits survived\n", len(out))
	// Output:
	// 3 visits survived
}

// ExampleSim_NewDurableClient shows client-side durability: a restarted
// client resumes its sessions without duplicating requests.
func ExampleSim_NewDurableClient() {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("example")
	def := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"count": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				n := append(ctx.GetVar("n"), '+')
				ctx.SetVar("n", n)
				return n, nil
			},
		},
	}
	if _, err := mspr.Start(sim.NewConfig("svc", dom, def)); err != nil {
		log.Fatal(err)
	}
	clientDisk := sim.NewDisk()
	dc, err := sim.NewDurableClient("dc", clientDisk)
	if err != nil {
		log.Fatal(err)
	}
	sess, _ := dc.Session("svc")
	sess.Call("count", nil)
	sess.Call("count", nil)
	id := sess.ID()
	dc.Crash() // the client itself dies...

	dc2, err := sim.NewDurableClient("dc", clientDisk) // ...and comes back
	if err != nil {
		log.Fatal(err)
	}
	defer dc2.Close()
	out, _ := dc2.Sessions()[id].Call("count", nil)
	fmt.Println(string(out))
	// Output:
	// +++
}
