// Tests of the public API facade: everything a downstream user would do
// — define services, start servers, crash and restart them — exercised
// through package mspr only.
package mspr_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mspr"
)

func kvService() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"put": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				i := bytes.IndexByte(arg, '=')
				if i < 0 {
					return nil, errors.New("want key=value")
				}
				ctx.SetVar(string(arg[:i]), arg[i+1:])
				return []byte("ok"), nil
			},
			"get": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				return ctx.GetVar(string(arg)), nil
			},
			"publish": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				return nil, ctx.WriteShared("board", arg)
			},
			"board": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared("board")
			},
		},
		Shared: []mspr.SharedDef{{Name: "board", Initial: []byte("empty")}},
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("t")
	cfg := sim.NewConfig("kv", dom, kvService())
	srv, err := mspr.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Crash()
	client := sim.NewClient("c")
	defer client.Close()
	sess := client.Session("kv")
	if _, err := sess.Call("put", []byte("name=gopher")); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Call("get", []byte("name"))
	if err != nil || string(got) != "gopher" {
		t.Fatalf("get = (%q, %v)", got, err)
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("t")
	cfg := sim.NewConfig("kv", dom, kvService())
	srv, err := mspr.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := sim.NewClient("c")
	defer client.Close()
	sess := client.Session("kv")
	if _, err := sess.Call("put", []byte("k=v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Call("publish", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	srv, err = mspr.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Crash()
	got, err := sess.Call("get", []byte("k"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("session state after crash = (%q, %v)", got, err)
	}
	board, err := sess.Call("board", nil)
	if err != nil || string(board) != "hello" {
		t.Fatalf("shared state after crash = (%q, %v)", board, err)
	}
}

func TestPublicAPIAppError(t *testing.T) {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("t")
	srv, err := mspr.Start(sim.NewConfig("kv", dom, kvService()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Crash()
	client := sim.NewClient("c")
	defer client.Close()
	sess := client.Session("kv")
	_, err = sess.Call("put", []byte("malformed"))
	var ae *mspr.AppError
	if !errors.As(err, &ae) {
		t.Fatalf("expected *mspr.AppError, got %v", err)
	}
}

func TestPublicAPITwoDomains(t *testing.T) {
	sim := mspr.NewSim(0)
	front := sim.NewDomain("front")
	backDom := sim.NewDomain("back")
	backDef := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"echo": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				return arg, nil
			},
		},
	}
	frontDef := mspr.Definition{
		Methods: map[string]mspr.Handler{
			"relay": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				return ctx.Call("backend", "echo", arg)
			},
		},
	}
	f, err := mspr.Start(sim.NewConfig("frontend", front, frontDef))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Crash()
	b, err := mspr.Start(sim.NewConfig("backend", backDom, backDef))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Crash()
	client := sim.NewClient("c")
	defer client.Close()
	sess := client.Session("frontend")
	out, err := sess.Call("relay", []byte("across domains"))
	if err != nil || string(out) != "across domains" {
		t.Fatalf("relay = (%q, %v)", out, err)
	}
}

func TestPublicAPIConcurrentSessions(t *testing.T) {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("t")
	srv, err := mspr.Start(sim.NewConfig("kv", dom, kvService()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Crash()
	client := sim.NewClient("c")
	defer client.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := client.Session("kv")
			want := fmt.Sprintf("v%d", i)
			if _, err := sess.Call("put", []byte("k="+want)); err != nil {
				errs <- err
				return
			}
			got, err := sess.Call("get", []byte("k"))
			if err != nil || string(got) != want {
				errs <- fmt.Errorf("session %d: got %q, %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPublicAPIStatsExposed(t *testing.T) {
	sim := mspr.NewSim(0)
	dom := sim.NewDomain("t")
	srv, err := mspr.Start(sim.NewConfig("kv", dom, kvService()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Crash()
	client := sim.NewClient("c")
	defer client.Close()
	sess := client.Session("kv")
	for i := 0; i < 5; i++ {
		if _, err := sess.Call("put", []byte("k=v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().RequestsServed.Load(); got != 5 {
		t.Fatalf("RequestsServed = %d", got)
	}
	if srv.Epoch() != 1 {
		t.Fatalf("fresh server epoch = %d, want 1", srv.Epoch())
	}
	if srv.ID() != "kv" {
		t.Fatalf("ID = %q", srv.ID())
	}
}
