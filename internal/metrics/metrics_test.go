package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("zero-value series not empty")
	}
	s.Record(10 * time.Millisecond)
	s.Record(20 * time.Millisecond)
	s.Record(30 * time.Millisecond)
	if s.Count() != 3 {
		t.Fatalf("count %d", s.Count())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Max() != 30*time.Millisecond {
		t.Fatalf("max %v", s.Max())
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Record(time.Duration(i) * time.Millisecond)
	}
	if p := s.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(100); p != 100*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
	if p := s.Percentile(1); p != 1*time.Millisecond {
		t.Fatalf("p1 = %v", p)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	prop := func(samples []int16, p uint8) bool {
		var s Series
		var min, max time.Duration
		for i, v := range samples {
			d := time.Duration(int(v)&0x7FFF) * time.Microsecond
			s.Record(d)
			if i == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if len(samples) == 0 {
			return s.Percentile(50) == 0
		}
		pct := float64(p%100) + 1
		got := s.Percentile(pct)
		return got >= min && got <= max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelMS(t *testing.T) {
	// At scale 0.02, a 1 ms wall measurement is 50 model ms.
	if got := ModelMS(time.Millisecond, 0.02); got < 49.9 || got > 50.1 {
		t.Fatalf("ModelMS = %v", got)
	}
	// Scale 0 means wall time is model time.
	if got := ModelMS(5*time.Millisecond, 0); got != 5 {
		t.Fatalf("unscaled ModelMS = %v", got)
	}
}

func TestThroughputPerModelSecond(t *testing.T) {
	// 100 requests in 1 wall second at scale 0.1 = 10 model seconds of
	// work → 10 req/model-second.
	got := ThroughputPerModelSecond(100, time.Second, 0.1)
	if got < 9.9 || got > 10.1 {
		t.Fatalf("throughput = %v", got)
	}
	if ThroughputPerModelSecond(10, 0, 1) != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}
