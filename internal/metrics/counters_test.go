package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	c.Add(5)
	if c.Load() != 8005 {
		t.Fatalf("counter = %d after Add(5)", c.Load())
	}
}

func TestRecoveryCountersZeroValueReady(t *testing.T) {
	before := Recovery.EOSWritten.Load()
	Recovery.EOSWritten.Inc()
	if Recovery.EOSWritten.Load() != before+1 {
		t.Fatal("global recovery counter did not advance")
	}
}
