// Package metrics collects the response-time and throughput measurements
// the experiments report. All raw samples are wall-clock durations; the
// reporting helpers rescale them by the experiment's TimeScale so results
// read in the paper's model milliseconds.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// Series accumulates duration samples.
type Series struct {
	mu      sync.Mutex
	samples []time.Duration
	sum     time.Duration
	max     time.Duration
}

// Record adds a sample.
func (s *Series) Record(d time.Duration) {
	s.mu.Lock()
	s.samples = append(s.samples, d)
	s.sum += d
	if d > s.max {
		s.max = d
	}
	s.mu.Unlock()
}

// Count returns the number of samples.
func (s *Series) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean returns the mean sample.
func (s *Series) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / time.Duration(len(s.samples))
}

// Max returns the largest sample.
func (s *Series) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (s *Series) Percentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ModelMS converts a measured wall-clock duration into model
// milliseconds given the experiment's time scale.
func ModelMS(d time.Duration, timeScale float64) float64 {
	if timeScale <= 0 {
		return float64(d) / float64(time.Millisecond)
	}
	return float64(d) / float64(time.Millisecond) / timeScale
}

// ThroughputPerModelSecond converts a request count over a wall-clock
// elapsed time into requests per model second.
func ThroughputPerModelSecond(count int, elapsed time.Duration, timeScale float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	perWallSecond := float64(count) / elapsed.Seconds()
	if timeScale <= 0 {
		return perWallSecond
	}
	return perWallSecond * timeScale
}
