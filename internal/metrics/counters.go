package metrics

import "sync/atomic"

// Counter is a monotonically increasing event counter, safe for
// concurrent use. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrent up/down level indicator (e.g. live segment
// count). The zero value is ready. Layers maintaining a gauge apply
// deltas for durable state changes only, so a process restart (which
// re-opens the same disk state) does not double-count.
type Gauge struct{ v atomic.Int64 }

// Add applies a delta (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge tracks the maximum value ever observed. The zero value is
// ready.
type MaxGauge struct{ v atomic.Int64 }

// Observe records v if it exceeds the current maximum.
func (m *MaxGauge) Observe(v int64) {
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (m *MaxGauge) Load() int64 { return m.v.Load() }

// RecoveryCounters is the observability surface of the recovery and
// fault-tolerance machinery: how often recovery ran, what it replayed
// and skipped, and which storage faults the log layer absorbed. The
// counters are process-wide totals; tests snapshot before/after deltas.
type RecoveryCounters struct {
	// RecoveriesCompleted counts finished MSP crash recoveries (Fig. 12
	// runs that reached the post-recovery checkpoint).
	RecoveriesCompleted Counter
	// SessionsReplayed counts sessions whose replay (§4.1/§4.3) ran to
	// completion.
	SessionsReplayed Counter
	// OrphanRecordsSkipped counts log records made invisible by orphan
	// recovery — records between an orphan record and its EOS record.
	OrphanRecordsSkipped Counter
	// EOSWritten counts end-of-stable records appended when an orphan
	// recovery skipped the orphaned suffix of a session's log (§4.1).
	EOSWritten Counter
	// AnchorFallbacks counts log-anchor reads that found the most recent
	// anchor slot torn or corrupt and fell back to the previous slot.
	AnchorFallbacks Counter
	// CorruptTailTruncations counts recovery scans that found a torn or
	// corrupt log tail with no valid records after it and truncated it —
	// the benign half of satellite corruption handling: the lost records
	// were never acknowledged durable.
	CorruptTailTruncations Counter
	// MidLogCorruptions counts recovery scans that found corruption
	// *followed by valid records* — acknowledged data damaged in place.
	// This is surfaced as a hard error, never silently skipped.
	MidLogCorruptions Counter
	// TransientWriteRetries counts log flushes that retried after a
	// transient disk write error and succeeded.
	TransientWriteRetries Counter

	// PendingSessions tracks sessions known from the crash-recovery
	// analysis scan but not yet replayed (instant recovery: the server is
	// serving while these drain). Marked up when recovery publishes the
	// unrecovered set, down as lazy replay, the background sweep, or the
	// owning incarnation's teardown retires each unit.
	PendingSessions Gauge
	// PendingShared tracks shared variables whose value has not been
	// re-materialized from the log since the crash.
	PendingShared Gauge
	// LazyReplays counts recovery units restored on demand: a session
	// replayed because a request touched it before the sweep reached it,
	// or a shared variable materialized on its first post-crash access.
	LazyReplays Counter
	// SweepReplays counts recovery units drained by the background sweep
	// (including shared variables materialized by the stale-checkpoint
	// forcing path).
	SweepReplays Counter
	// TimeToFirstReply accumulates, in microseconds, each crash
	// recovery's time from restart to the first non-Busy reply the new
	// incarnation sent — the instant-recovery headline number.
	TimeToFirstReply Counter
}

// Recovery holds the process-wide recovery counters.
var Recovery RecoveryCounters

// NetCounters is the observability surface of the simulated network and
// the intra-domain control plane that runs over it: what the fault plane
// dropped, what the servers shed under overload, and how the control
// plane coped with an unreliable message layer.
type NetCounters struct {
	// RequestQueueDrops counts requests discarded because a server's
	// bounded request queue was full (the client resends; previously
	// these drops were silent).
	RequestQueueDrops Counter
	// PartitionDrops counts messages dropped by an active network
	// partition.
	PartitionDrops Counter
	// BlockedDrops counts messages dropped by a Blocked per-link fault
	// override.
	BlockedDrops Counter
	// LossDrops counts messages dropped by random loss (global rate or a
	// per-link override).
	LossDrops Counter
	// CtlDuplicates counts intra-domain control requests answered from
	// the server-side dedup cache (a retransmitted flush request or
	// recovery broadcast whose first copy already arrived).
	CtlDuplicates Counter
	// FlushDeadlinesExceeded counts distributed-flush peer calls that
	// gave up at their deadline because the peer stayed unreachable; the
	// end client sees Busy instead of a hang.
	FlushDeadlinesExceeded Counter
	// PeerDownEvents counts transitions of a peer MSP from reachable to
	// unreachable in some server's health table.
	PeerDownEvents Counter
	// AntiEntropyPulls counts knowledge-pull requests issued to catch up
	// on recovery broadcasts missed during a partition or downtime.
	AntiEntropyPulls Counter
	// BroadcastPeersMissed counts peers a recovery broadcast could not
	// reach before its deadline (they catch up via anti-entropy).
	BroadcastPeersMissed Counter
}

// Net holds the process-wide network and control-plane counters.
var Net NetCounters

// WalCounters is the observability surface of the log layer's group
// commit (§5.5): how often the persistent flusher ran, how many flush
// requests each write served, and how often the adaptive batch window
// was held open. Coalescing effectiveness is
// GroupCommitBatchWaiters / GroupCommitBatches (average requests per
// physical write).
type WalCounters struct {
	// GroupCommitWaits counts Flush calls that entered the group-commit
	// path (batching enabled, records not yet durable).
	GroupCommitWaits Counter
	// GroupCommitBatches counts physical flushes issued by the persistent
	// flusher loop.
	GroupCommitBatches Counter
	// GroupCommitBatchWaiters sums the number of waiters observed at each
	// flusher-issued flush — the batch sizes.
	GroupCommitBatchWaiters Counter
	// GroupCommitWindows counts flushes that held the adaptive batch
	// window open because more than one waiter was queued; a lone waiter
	// is flushed immediately and never pays the window as latency.
	GroupCommitWindows Counter

	// Rotations counts log rotations: a flush that would overfill the
	// active segment sealed it and opened the next segment file.
	Rotations Counter
	// SegmentsReclaimed counts whole segment files physically deleted by
	// checkpoint-anchored truncation (every record strictly below the
	// anchor head).
	SegmentsReclaimed Counter
	// SegmentsLive tracks the number of segment files currently on disk
	// across all logs. Maintained by durable-state deltas (create +1,
	// reclaim -1), so crash-reopens do not double-count.
	SegmentsLive Gauge
	// LiveLogBytes tracks durable log-record bytes on disk across all
	// logs (flushed block bytes added, reclaimed segment bytes
	// subtracted).
	LiveLogBytes Gauge
	// PeakLiveBytes is the largest live span (durable minus head) any
	// single log ever reached — the bounded-disk headline number: under
	// steady checkpointing it stays flat however long the storm runs.
	PeakLiveBytes MaxGauge
}

// Wal holds the process-wide log-layer counters.
var Wal WalCounters

// OverloadCounters is the observability surface of the overload-control
// plane: what the admission gate accepted and shed, how deep the queues
// ran, and how the client-side retry budgets and circuit breakers
// reacted. The counters are process-wide totals; storms print them in
// the chaos summary and tests snapshot before/after deltas.
type OverloadCounters struct {
	// Admitted counts requests accepted into an admission lane (either
	// lane; AdmittedPriority is the priority-lane subset).
	Admitted Counter
	// AdmittedPriority counts requests admitted into the priority lane:
	// lazy-replay claims and traffic addressed to a still-recovering
	// server, which must not starve behind the new-work flood.
	AdmittedPriority Counter
	// ShedAtAdmission counts requests shed with StatusOverloaded because
	// both admission lanes were full at enqueue time.
	ShedAtAdmission Counter
	// PriorityOverflow counts priority-classified requests that found the
	// priority lane full and fell back to the tail of the normal lane:
	// still admitted, but queued behind up to a full normal lane of new
	// work — exactly the priority the lane exists to provide, lost. A
	// rising count under load is the priority-starvation signal the chaos
	// gate watches for.
	PriorityOverflow Counter
	// ShedExpired counts requests shed because their propagated deadline
	// had already passed — at admission or at the pre-append check —
	// before any durable effect was taken on their behalf.
	ShedExpired Counter
	// RetryBudgetExhausted counts calls that gave up because the client's
	// token-bucket retry budget was empty when a shed asked for a resend.
	RetryBudgetExhausted Counter
	// BreakerOpens counts closed→open (and half-open→open) transitions of
	// client-side circuit breakers.
	BreakerOpens Counter
	// QueueDepthPeak is the deepest combined admission-queue backlog
	// (normal + priority lane) any server observed at enqueue time — the
	// bounded-queue headline number: it can never exceed the configured
	// lane capacities however hard the flood runs.
	QueueDepthPeak MaxGauge
	// PriorityDepthPeak is the deepest priority-lane backlog observed.
	PriorityDepthPeak MaxGauge
}

// Overload holds the process-wide overload-control counters.
var Overload OverloadCounters
