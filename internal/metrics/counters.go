package metrics

import "sync/atomic"

// Counter is a monotonically increasing event counter, safe for
// concurrent use. The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// RecoveryCounters is the observability surface of the recovery and
// fault-tolerance machinery: how often recovery ran, what it replayed
// and skipped, and which storage faults the log layer absorbed. The
// counters are process-wide totals; tests snapshot before/after deltas.
type RecoveryCounters struct {
	// RecoveriesCompleted counts finished MSP crash recoveries (Fig. 12
	// runs that reached the post-recovery checkpoint).
	RecoveriesCompleted Counter
	// SessionsReplayed counts sessions whose replay (§4.1/§4.3) ran to
	// completion.
	SessionsReplayed Counter
	// OrphanRecordsSkipped counts log records made invisible by orphan
	// recovery — records between an orphan record and its EOS record.
	OrphanRecordsSkipped Counter
	// EOSWritten counts end-of-stable records appended when an orphan
	// recovery skipped the orphaned suffix of a session's log (§4.1).
	EOSWritten Counter
	// AnchorFallbacks counts log-anchor reads that found the most recent
	// anchor slot torn or corrupt and fell back to the previous slot.
	AnchorFallbacks Counter
	// CorruptTailTruncations counts recovery scans that found a torn or
	// corrupt log tail with no valid records after it and truncated it —
	// the benign half of satellite corruption handling: the lost records
	// were never acknowledged durable.
	CorruptTailTruncations Counter
	// MidLogCorruptions counts recovery scans that found corruption
	// *followed by valid records* — acknowledged data damaged in place.
	// This is surfaced as a hard error, never silently skipped.
	MidLogCorruptions Counter
	// TransientWriteRetries counts log flushes that retried after a
	// transient disk write error and succeeded.
	TransientWriteRetries Counter
}

// Recovery holds the process-wide recovery counters.
var Recovery RecoveryCounters
