package wal

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/simdisk"
)

// tinySegLog opens a log with a tiny segment size so a handful of
// single-sector flushes forces rotations.
func tinySegLog(t *testing.T, seed int64, segSize int64) (*simdisk.Disk, *failpoint.Registry, *Log) {
	t.Helper()
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	fp := failpoint.New(seed)
	disk.SetFailpoints(fp)
	l, err := Open(disk, "log", Config{SegmentSize: segSize})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return disk, fp, l
}

// appendFlushN appends n individually flushed records ("rec-0000", …);
// each flush lands one sector, so segSize/512 flushes fill a segment.
func appendFlushN(t *testing.T, l *Log, start, n int) []LSN {
	t.Helper()
	lsns := make([]LSN, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(1, []byte(fmt.Sprintf("rec-%04d", start+i)))
		if err != nil {
			t.Fatalf("append %d: %v", start+i, err)
		}
		if err := l.Flush(lsn); err != nil {
			t.Fatalf("flush %d: %v", start+i, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func scanPayloads(t *testing.T, l *Log, from LSN) []string {
	t.Helper()
	var got []string
	if _, err := l.Scan(from, func(_ LSN, _ byte, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("scan from %d: %v", from, err)
	}
	return got
}

// Rotation is invisible to the logical log: LSNs stay global byte
// offsets, reads and scans cross segment boundaries seamlessly, and a
// reopen reassembles the same record sequence from the segment chain.
func TestRotationCrossSegmentScanAndRead(t *testing.T) {
	disk, _, l := tinySegLog(t, 21, 2048)
	rotBefore := metrics.Wal.Rotations.Load()
	lsns := appendFlushN(t, l, 0, 40)

	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("40 sector flushes in 2 KB segments produced only %d segments", len(segs))
	}
	if got := metrics.Wal.Rotations.Load() - rotBefore; got != int64(len(segs)-1) {
		t.Fatalf("Rotations advanced by %d, want %d", got, len(segs)-1)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i-1].End != segs[i].Base {
			t.Fatalf("segment chain broken: %+v then %+v", segs[i-1], segs[i])
		}
	}
	if got := scanPayloads(t, l, 0); len(got) != 40 || got[0] != "rec-0000" || got[39] != "rec-0039" {
		t.Fatalf("cross-segment scan saw %d records (%v...)", len(got), got[:1])
	}
	// Random access across every boundary, through the read-ahead cache.
	l.InvalidateCache()
	for i, lsn := range lsns {
		_, p, err := l.ReadRecord(lsn)
		if err != nil || string(p) != fmt.Sprintf("rec-%04d", i) {
			t.Fatalf("ReadRecord(%d) = %q, %v", lsn, p, err)
		}
	}

	l.Close()
	l2, err := Open(disk, "log", Config{SegmentSize: 2048})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := scanPayloads(t, l2, 0); len(got) != 40 {
		t.Fatalf("post-reopen scan saw %d records, want 40", len(got))
	}
	// Appends continue in the final segment exactly where the tail ended.
	lsn, err := l2.Append(1, []byte("after-reopen"))
	if err != nil || lsn <= lsns[39] {
		t.Fatalf("append after reopen: %d, %v", lsn, err)
	}
	if err := l2.Flush(lsn); err != nil {
		t.Fatalf("flush after reopen: %v", err)
	}
	if _, p, err := l2.ReadRecord(lsn); err != nil || string(p) != "after-reopen" {
		t.Fatalf("record after reopen: %q, %v", p, err)
	}
}

// An anchor whose head points into a middle segment round-trips across a
// reopen: the segments below it are reclaimable, the ones at or after it
// are not, and the post-reopen scan starts exactly at the head.
func TestAnchorMidSegmentRoundTripAcrossReopen(t *testing.T) {
	disk, _, l := tinySegLog(t, 22, 2048)
	lsns := appendFlushN(t, l, 0, 40)
	head := lsns[20]
	want := Anchor{Epoch: 7, CheckpointLSN: head, Head: head}
	if err := l.WriteAnchor(want); err != nil {
		t.Fatalf("write anchor: %v", err)
	}
	segs := l.Segments()
	if head < segs[1].Base || head >= segs[len(segs)-1].Base {
		t.Fatalf("test defeated: head %d not in a middle segment (%+v)", head, segs)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{SegmentSize: 2048})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	a, ok, err := l2.ReadAnchor()
	if err != nil || !ok || a != want {
		t.Fatalf("anchor after reopen: %+v %v %v, want %+v", a, ok, err, want)
	}
	if got := scanPayloads(t, l2, a.Head); len(got) != 20 || got[0] != "rec-0020" {
		t.Fatalf("scan from mid-segment head saw %d records, first %q", len(got), got[0])
	}
	// Truncation deletes exactly the segments wholly below the head.
	if err := l2.TruncateHead(a.Head); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	after := l2.Segments()
	if len(after) >= len(segs) {
		t.Fatalf("truncation deleted no segments (%d before, %d after)", len(segs), len(after))
	}
	if after[0].Base > a.Head || (after[0].End != 0 && after[0].End <= a.Head) {
		t.Fatalf("first live segment %+v does not cover the head %d", after[0], a.Head)
	}
	if got := scanPayloads(t, l2, 0); len(got) != 20 || got[0] != "rec-0020" {
		t.Fatalf("post-truncation scan saw %d records, first %q", len(got), got[0])
	}
}

// A rotation crashed before the new segment file exists leaves nothing
// behind: the log wedges, and the next incarnation re-rotates from
// scratch on its first overfull flush.
func TestRotationCrashBeforeCreate(t *testing.T) {
	disk, fp, l := tinySegLog(t, 23, 1024)
	appendFlushN(t, l, 0, 2) // exactly fills segment 1

	fp.Enable(FPRotateBeforeCreate)
	lsn, _ := l.Append(1, []byte("doomed"))
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected rotation crash", err)
	}
	// The crash is sticky and no segment file was created.
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("second flush err = %v, want sticky injected error", err)
	}
	if files := disk.List("log.0"); len(files) != 1 {
		t.Fatalf("crashed pre-create rotation left files: %v", files)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := scanPayloads(t, l2, 0); len(got) != 2 {
		t.Fatalf("recovered %d records, want the 2 acknowledged ones", len(got))
	}
	// Re-rotation from scratch now succeeds.
	appendFlushN(t, l2, 2, 2)
	if segs := l2.Segments(); len(segs) != 2 {
		t.Fatalf("re-rotation produced %d segments, want 2", len(segs))
	}
	if got := scanPayloads(t, l2, 0); len(got) != 4 || got[3] != "rec-0003" {
		t.Fatalf("scan after re-rotation: %v", got)
	}
}

// A rotation crashed after the segment create but before the anchor
// update leaves an orphan segment the directory does not know; the next
// incarnation adopts it (it is exactly index maxDir+1).
func TestRotationCrashAfterCreateAdoptsOrphan(t *testing.T) {
	disk, fp, l := tinySegLog(t, 24, 1024)
	lsns := appendFlushN(t, l, 0, 2)
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: lsns[0], Head: lsns[0]}); err != nil {
		t.Fatalf("write anchor: %v", err)
	}

	fp.Enable(FPRotateAfterCreate)
	lsn, _ := l.Append(1, []byte("doomed"))
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected rotation crash", err)
	}
	if files := disk.List("log.0"); len(files) != 2 {
		t.Fatalf("orphan segment missing after post-create crash: %v", files)
	}
	l.Close()

	liveBefore := metrics.Wal.SegmentsLive.Load()
	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen must adopt the orphan: %v", err)
	}
	if metrics.Wal.SegmentsLive.Load() != liveBefore {
		t.Fatal("adopting an existing segment must not change SegmentsLive")
	}
	segs := l2.Segments()
	if len(segs) != 2 || segs[1].End != 0 || segs[1].Bytes != 512 {
		t.Fatalf("adopted segment table wrong: %+v", segs)
	}
	// The never-acknowledged record died with the buffer; new appends land
	// in the adopted segment.
	if got := scanPayloads(t, l2, 0); len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	appendFlushN(t, l2, 2, 1)
	if got := scanPayloads(t, l2, 0); len(got) != 3 || got[2] != "rec-0002" {
		t.Fatalf("scan after adoption: %v", got)
	}
}

// A rotation crashed after the anchor update leaves an empty final
// segment that the durable directory already names; reopening finds it
// consistent and continues appending into it.
func TestRotationCrashAfterAnchorOpensEmptyFinal(t *testing.T) {
	disk, fp, l := tinySegLog(t, 25, 1024)
	lsns := appendFlushN(t, l, 0, 2)
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: lsns[0], Head: lsns[0]}); err != nil {
		t.Fatalf("write anchor: %v", err)
	}

	fp.Enable(FPRotateAfterAnchor)
	lsn, _ := l.Append(1, []byte("doomed"))
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected rotation crash", err)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	segs := l2.Segments()
	if len(segs) != 2 || segs[1].Bytes != 512 {
		t.Fatalf("directory-named empty final segment not opened: %+v", segs)
	}
	appendFlushN(t, l2, 2, 1)
	if got := scanPayloads(t, l2, 0); len(got) != 3 || got[2] != "rec-0002" {
		t.Fatalf("scan after anchored-rotation crash: %v", got)
	}
}

// A torn write of a new segment's header leaves a file whose header does
// not validate; Open deletes it (it is the file a crashed rotation was
// creating) and the next rotation recreates it.
func TestTornSegmentHeaderDeletedAtReopen(t *testing.T) {
	disk, fp, l := tinySegLog(t, 26, 1024)
	appendFlushN(t, l, 0, 2)

	fp.Enable(simdisk.FPWriteTorn+":log.000002", failpoint.Arg(10))
	lsn, _ := l.Append(1, []byte("doomed"))
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected torn header", err)
	}
	if files := disk.List("log.0"); len(files) != 2 {
		t.Fatalf("torn segment create left files: %v", files)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen with torn segment header: %v", err)
	}
	if files := disk.List("log.0"); len(files) != 1 {
		t.Fatalf("torn-header file not deleted at reopen: %v", files)
	}
	appendFlushN(t, l2, 2, 2) // rotates again, recreating segment 2
	if got := scanPayloads(t, l2, 0); len(got) != 4 {
		t.Fatalf("scan after header-tear recovery saw %d records, want 4", len(got))
	}
}

// Open refuses to start when a segment holding records at or after the
// anchor head is missing: recovery would silently skip acknowledged
// records.
func TestOpenRefusesMissingNeededSegment(t *testing.T) {
	disk, _, l := tinySegLog(t, 27, 1024)
	lsns := appendFlushN(t, l, 0, 6) // three segments
	head := lsns[0]
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: head, Head: head}); err != nil {
		t.Fatalf("write anchor: %v", err)
	}
	l.Close()

	disk.Remove("log.000002") // needed: it holds records at/after the head
	_, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("open with missing needed segment: %v, want refusal", err)
	}
}

// A truncation crashed between segment deletions is finished
// idempotently by the next incarnation's re-truncation, and Open
// tolerates directory entries for segments already reclaimed.
func TestTruncateCrashFinishedIdempotently(t *testing.T) {
	disk, fp, l := tinySegLog(t, 28, 1024)
	lsns := appendFlushN(t, l, 0, 8) // four segments
	head := lsns[6]                  // last segment holds lsns[6..7]
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: head, Head: head}); err != nil {
		t.Fatalf("write anchor: %v", err)
	}
	before := len(l.Segments())
	if before < 4 {
		t.Fatalf("only %d segments", before)
	}

	// Crash after the first victim is deleted, before the second.
	fp.Enable(FPTruncateCrash, failpoint.SkipFirst(1))
	err := l.TruncateHead(head)
	if !failpoint.IsInjected(err) {
		t.Fatalf("truncate err = %v, want injected", err)
	}
	if got := len(disk.List("log.0")); got != before-1 {
		t.Fatalf("%d segment files after interrupted truncation, want %d", got, before-1)
	}
	// The interrupted truncation wedges the log like any mid-protocol crash.
	wedged, _ := l.Append(1, []byte("wedged"))
	if ferr := l.Flush(wedged); !failpoint.IsInjected(ferr) {
		t.Fatalf("flush after truncation crash = %v, want sticky injected error", ferr)
	}
	l.Close()

	reclBefore := metrics.Wal.SegmentsReclaimed.Load()
	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen after interrupted truncation: %v", err)
	}
	a, ok, err := l2.ReadAnchor()
	if err != nil || !ok || a.Head != head {
		t.Fatalf("anchor after reopen: %+v %v %v", a, ok, err)
	}
	// Recovery re-truncates to the anchored head, finishing the job.
	if err := l2.TruncateHead(a.Head); err != nil {
		t.Fatalf("re-truncation: %v", err)
	}
	segs := l2.Segments()
	if len(segs) != 1 || segs[0].Base > head {
		t.Fatalf("re-truncation left %+v", segs)
	}
	if got := len(disk.List("log.0")); got != 1 {
		t.Fatalf("%d segment files after re-truncation, want 1", got)
	}
	if metrics.Wal.SegmentsReclaimed.Load() <= reclBefore {
		t.Fatal("SegmentsReclaimed did not advance across the re-truncation")
	}
	if got := scanPayloads(t, l2, a.Head); len(got) != 2 || got[0] != "rec-0006" {
		t.Fatalf("scan after re-truncation: %v", got)
	}
}

// An unparsable frame in a sealed segment is corruption even when no
// valid record follows it: everything in a sealed segment was
// acknowledged durable before the seal, so a "torn tail" there is
// in-place damage, never repairable.
func TestSealedSegmentTearIsCorrupt(t *testing.T) {
	disk, fp, l := tinySegLog(t, 29, 1024)
	lsns := appendFlushN(t, l, 0, 2)
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: lsns[0], Head: lsns[0]}); err != nil {
		t.Fatalf("write anchor: %v", err)
	}
	// Crash the rotation after the anchor update: segment 2 exists, is in
	// the directory, and is empty — so nothing follows segment 1's data.
	fp.Enable(FPRotateAfterAnchor)
	lsn, _ := l.Append(1, []byte("doomed"))
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected", err)
	}
	l.Close()

	// Scribble the sealed segment's last record (CRC now fails there).
	disk.OpenFile("log.000001").WriteAt([]byte{0xFF}, int64(lsns[1])+6)

	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	before := metrics.Recovery.MidLogCorruptions.Load()
	_, err = l2.Scan(0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over sealed-segment tear = %v, want ErrCorrupt", err)
	}
	if metrics.Recovery.MidLogCorruptions.Load() != before+1 {
		t.Fatal("MidLogCorruptions did not advance")
	}
	if l2.RepairTail() {
		t.Fatal("RepairTail must refuse sealed-segment damage")
	}
}

// Rotation before the first checkpoint anchor exists must not write an
// anchor (it would invent a checkpoint at LSN 0); recovery accepts every
// contiguous segment of an anchorless log.
func TestAnchorlessRotationLeavesNoAnchor(t *testing.T) {
	disk, _, l := tinySegLog(t, 30, 1024)
	appendFlushN(t, l, 0, 6)
	if len(l.Segments()) < 3 {
		t.Fatalf("rotation never happened: %+v", l.Segments())
	}
	if size := disk.OpenFile("log.anchor").Size(); size != 0 {
		t.Fatalf("anchorless rotation wrote %d anchor bytes", size)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{SegmentSize: 1024})
	if err != nil {
		t.Fatalf("reopen anchorless multi-segment log: %v", err)
	}
	if _, ok, err := l2.ReadAnchor(); ok || err != nil {
		t.Fatalf("ReadAnchor on anchorless log: ok=%v err=%v", ok, err)
	}
	if got := scanPayloads(t, l2, 0); len(got) != 6 {
		t.Fatalf("anchorless recovery scan saw %d records, want 6", len(got))
	}
}

// LiveLogBytes tracks the durable live region across flushes and
// truncations; PeakLiveBytes records the high-water mark.
func TestSegmentMetricsTrackLiveBytes(t *testing.T) {
	_, _, l := tinySegLog(t, 31, 1024)
	liveBefore := metrics.Wal.LiveLogBytes.Load()
	lsns := appendFlushN(t, l, 0, 8)
	grown := metrics.Wal.LiveLogBytes.Load() - liveBefore
	if grown != 8*512 {
		t.Fatalf("LiveLogBytes grew by %d, want %d", grown, 8*512)
	}
	if peak := metrics.Wal.PeakLiveBytes.Load(); peak < 8*512 {
		t.Fatalf("PeakLiveBytes = %d, want >= %d", peak, 8*512)
	}
	if err := l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: lsns[6], Head: lsns[6]}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateHead(lsns[6]); err != nil {
		t.Fatal(err)
	}
	shrunk := metrics.Wal.LiveLogBytes.Load() - liveBefore
	if shrunk >= grown || shrunk < 0 {
		t.Fatalf("LiveLogBytes after truncation = %+d, want shrunk from %d", shrunk, grown)
	}
}
