package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mspr/internal/simdisk"
)

func newTestLog(t *testing.T, cfg Config) (*Log, *simdisk.Disk) {
	t.Helper()
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, err := Open(disk, "test.log", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, disk
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(1, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= prev {
			t.Fatalf("LSN %d not after %d", lsn, prev)
		}
		prev = lsn
	}
}

func TestReadRecordFromBuffer(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	lsn, err := l.Append(7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := l.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 7 || string(payload) != "hello" {
		t.Fatalf("got (%d, %q)", typ, payload)
	}
}

func TestFlushMakesDurable(t *testing.T) {
	l, disk := newTestLog(t, Config{})
	lsn, _ := l.Append(1, []byte("abc"))
	if l.Durable() > lsn {
		t.Fatal("record durable before flush")
	}
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Durable() <= lsn {
		t.Fatalf("durable frontier %d does not cover %d", l.Durable(), lsn)
	}
	st := disk.Stats()
	if st.Writes != 1 {
		t.Fatalf("expected 1 disk write, got %d", st.Writes)
	}
}

func TestFlushIsIdempotent(t *testing.T) {
	l, disk := newTestLog(t, Config{})
	lsn, _ := l.Append(1, []byte("abc"))
	for i := 0; i < 5; i++ {
		if err := l.Flush(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := disk.Stats().Writes; got != 1 {
		t.Fatalf("idempotent flush wrote %d times", got)
	}
}

func TestSectorAlignmentAndWaste(t *testing.T) {
	l, disk := newTestLog(t, Config{})
	lsn, _ := l.Append(1, make([]byte, 100)) // 109 bytes framed
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	if st.SectorsOut != 1 {
		t.Fatalf("expected 1 sector, got %d", st.SectorsOut)
	}
	if st.WastedBytes != 512-109 {
		t.Fatalf("expected %d wasted bytes, got %d", 512-109, st.WastedBytes)
	}
	// The next append starts at a sector boundary.
	lsn2, _ := l.Append(1, []byte("x"))
	if int64(lsn2)%simdisk.SectorSize != 0 {
		t.Fatalf("post-flush append at %d, not sector aligned", lsn2)
	}
}

func TestCrashLosesBufferedRecords(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l.Append(1, []byte("durable"))
	if err := l.Flush(a); err != nil {
		t.Fatal(err)
	}
	b, _ := l.Append(1, []byte("volatile"))
	_ = b
	l.Close() // crash: buffer discarded

	l2, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	last, err := l2.Scan(0, func(lsn LSN, typ byte, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("after crash scan returned %q", got)
	}
	if last != a {
		t.Fatalf("recovered state number %d, want %d", last, a)
	}
}

func TestScanSeesAllFlushedRecords(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var want []string
	var lastLSN LSN
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("rec-%d", i)
		want = append(want, p)
		lsn, err := l.Append(byte(1+i%5), []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
		if i%17 == 0 { // interleave flushes to create sector padding
			if err := l.Flush(lsn); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Flush(lastLSN); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := l.Scan(0, func(lsn LSN, typ byte, payload []byte) error {
		got = append(got, string(payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestScanFromMiddle(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var lsns []LSN
	for i := 0; i < 50; i++ {
		lsn, _ := l.Append(1, []byte{byte(i)})
		lsns = append(lsns, lsn)
	}
	_ = l.Flush(lsns[len(lsns)-1])
	var got []byte
	if _, err := l.Scan(lsns[20], func(lsn LSN, typ byte, payload []byte) error {
		got = append(got, payload[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 || got[0] != 20 {
		t.Fatalf("scan from middle got %d records starting %d", len(got), got[0])
	}
}

func TestReadRecordAfterReopen(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, _ := Open(disk, "log", Config{})
	lsn, _ := l.Append(3, []byte("persisted"))
	_ = l.Flush(lsn)
	l.Close()

	l2, _ := Open(disk, "log", Config{})
	typ, payload, err := l2.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 3 || string(payload) != "persisted" {
		t.Fatalf("got (%d, %q)", typ, payload)
	}
}

func TestAnchorRoundTrip(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if _, ok, err := l.ReadAnchor(); err != nil || ok {
		t.Fatalf("fresh log anchor: ok=%v err=%v", ok, err)
	}
	want := Anchor{Epoch: 7, CheckpointLSN: 12345}
	if err := l.WriteAnchor(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.ReadAnchor()
	if err != nil || !ok {
		t.Fatalf("anchor read: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("anchor = %+v, want %+v", got, want)
	}
}

func TestAnchorSurvivesReopen(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, _ := Open(disk, "log", Config{})
	_ = l.WriteAnchor(Anchor{Epoch: 2, CheckpointLSN: 999})
	l.Close()
	l2, _ := Open(disk, "log", Config{})
	got, ok, _ := l2.ReadAnchor()
	if !ok || got.Epoch != 2 || got.CheckpointLSN != 999 {
		t.Fatalf("anchor after reopen: ok=%v %+v", ok, got)
	}
}

func TestBatchFlushCombinesWrites(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, err := Open(disk, "log", Config{BatchTimeout: 8 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	// Append everything first, then release all flush requests at once:
	// the test measures the group-commit window's combining, not the
	// scheduler's luck in overlapping appends with flushes.
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(1, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		go func(lsn LSN) {
			start.Wait()
			errs <- l.Flush(lsn)
		}(lsn)
	}
	start.Done()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := disk.Stats()
	if st.Writes >= n {
		t.Fatalf("batch flushing did not combine: %d writes for %d flush requests", st.Writes, n)
	}
}

func TestAppendWhileFlushInFlight(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			lsn, err := l.Append(1, []byte("concurrent"))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if i%50 == 0 {
				if err := l.Flush(lsn); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		lsn, err := l.Append(2, []byte("other"))
		if err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			if err := l.Flush(lsn); err != nil {
				t.Fatal(err)
			}
		}
	}
	<-done
	last := l.LastAppended()
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := l.Scan(0, func(LSN, byte, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 700 {
		t.Fatalf("scan found %d records, want 700", count)
	}
}

func TestMaxBufferForcesFlush(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, err := Open(disk, "log", Config{MaxBuffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(1, make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if disk.Stats().Writes == 0 {
		t.Fatal("full buffer never forced a flush")
	}
}

func TestRecordTypeZeroRejected(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if _, err := l.Append(0, nil); err == nil {
		t.Fatal("append of type 0 should fail")
	}
}

// TestDurablePrefixProperty is the WAL's core invariant: after any random
// sequence of appends, flushes and crashes, reopening the log yields
// exactly the records appended before the last flush preceding the crash,
// in order.
func TestDurablePrefixProperty(t *testing.T) {
	prop := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		disk := simdisk.NewDisk(simdisk.DefaultModel(0))
		l, err := Open(disk, "log", Config{})
		if err != nil {
			return false
		}
		type rec struct {
			payload []byte
			lsn     LSN
		}
		var appended []rec // records appended in the current incarnation
		var durable []rec  // records known durable
		next := 0
		for _, op := range opsRaw {
			switch op % 4 {
			case 0, 1: // append
				p := []byte(fmt.Sprintf("r%d-%d", next, rng.Intn(1000)))
				next++
				lsn, err := l.Append(1, p)
				if err != nil {
					return false
				}
				appended = append(appended, rec{p, lsn})
			case 2: // flush everything appended so far
				if len(appended) > 0 {
					if err := l.Flush(appended[len(appended)-1].lsn); err != nil {
						return false
					}
					durable = append(durable, appended...)
					appended = nil
				}
			case 3: // crash and reopen
				l.Close()
				l, err = Open(disk, "log", Config{})
				if err != nil {
					return false
				}
				appended = nil
			}
		}
		// Crash and verify the durable prefix.
		l.Close()
		l, err = Open(disk, "log", Config{})
		if err != nil {
			return false
		}
		var got []rec
		if _, err := l.Scan(0, func(lsn LSN, typ byte, payload []byte) error {
			got = append(got, rec{append([]byte(nil), payload...), lsn})
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(durable) {
			return false
		}
		for i := range durable {
			if !bytes.Equal(got[i].payload, durable[i].payload) || got[i].lsn != durable[i].lsn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScanMatchesReadRecord: every record reported by Scan must be
// readable at its reported LSN with identical content.
func TestScanMatchesReadRecord(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		disk := simdisk.NewDisk(simdisk.DefaultModel(0))
		l, err := Open(disk, "log", Config{})
		if err != nil {
			return false
		}
		var last LSN
		for i, p := range payloads {
			lsn, err := l.Append(byte(1+i%250), p)
			if err != nil {
				return false
			}
			last = lsn
			if i%3 == 0 {
				if err := l.Flush(lsn); err != nil {
					return false
				}
			}
		}
		if len(payloads) > 0 {
			if err := l.Flush(last); err != nil {
				return false
			}
		}
		ok := true
		n := 0
		_, err = l.Scan(0, func(lsn LSN, typ byte, payload []byte) error {
			t2, p2, err := l.ReadRecord(lsn)
			if err != nil || t2 != typ || !bytes.Equal(p2, payload) {
				ok = false
			}
			n++
			return nil
		})
		return err == nil && ok && n == len(payloads)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
