package wal

import (
	"bytes"
	"errors"
	"testing"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/simdisk"
)

func faultyLog(t *testing.T, seed int64) (*simdisk.Disk, *failpoint.Registry, *Log) {
	t.Helper()
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	fp := failpoint.New(seed)
	disk.SetFailpoints(fp)
	l, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return disk, fp, l
}

func mustAppendFlush(t *testing.T, l *Log, payloads ...[]byte) (last LSN) {
	t.Helper()
	for _, p := range payloads {
		lsn, err := l.Append(1, p)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		last = lsn
	}
	if err := l.Flush(last); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return last
}

// A torn flush block must not strand records appended after recovery:
// Scan finds the tear, RepairTail truncates it, and new appends land
// where future scans can see them.
func TestTornTailRepairAndReappend(t *testing.T) {
	disk, fp, l := faultyLog(t, 11)
	goodLast := mustAppendFlush(t, l, []byte("alpha"), []byte("beta"))

	fp.Enable(simdisk.FPWriteTorn+":log", failpoint.Arg(3))
	if _, err := l.Append(1, []byte("doomed")); err != nil {
		t.Fatalf("append: %v", err)
	}
	err := l.Flush(l.LastAppended())
	if !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected", err)
	}
	l.Close()

	before := metrics.Recovery.CorruptTailTruncations.Load()
	l2, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var seen [][]byte
	last, err := l2.Scan(0, func(_ LSN, _ byte, p []byte) error {
		seen = append(seen, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan over torn tail: %v", err)
	}
	if last != goodLast || len(seen) != 2 {
		t.Fatalf("scan saw %d records, last=%d; want 2 records, last=%d", len(seen), last, goodLast)
	}
	if !l2.RepairTail() {
		t.Fatal("RepairTail found nothing to repair")
	}
	if metrics.Recovery.CorruptTailTruncations.Load() != before+1 {
		t.Fatal("CorruptTailTruncations did not advance")
	}
	// Without the repair this append would be invisible to future scans.
	mustAppendFlush(t, l2, []byte("gamma"))
	l2.InvalidateCache()
	seen = nil
	if _, err := l2.Scan(0, func(_ LSN, _ byte, p []byte) error {
		seen = append(seen, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("rescan: %v", err)
	}
	if len(seen) != 3 || !bytes.Equal(seen[2], []byte("gamma")) {
		t.Fatalf("rescan saw %q, want alpha/beta/gamma", seen)
	}
}

// RepairTail with no tear recorded is a no-op.
func TestRepairTailNoop(t *testing.T) {
	_, _, l := faultyLog(t, 12)
	mustAppendFlush(t, l, []byte("x"))
	if _, err := l.Scan(0, nil); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if l.RepairTail() {
		t.Fatal("RepairTail repaired a healthy log")
	}
}

// Damage inside acknowledged data — with valid records after it — is a
// hard error, never a silent truncation.
func TestMidLogCorruptionIsHardError(t *testing.T) {
	disk, _, l := faultyLog(t, 13)
	first := mustAppendFlush(t, l, []byte("first block"))
	mustAppendFlush(t, l, []byte("second block"))

	// Scribble one byte of the first (acknowledged) record's payload. The
	// first segment's base is headerSize, so its file offsets equal LSNs.
	disk.OpenFile("log.000001").WriteAt([]byte{0xFF}, int64(first)+6)
	l.InvalidateCache()

	before := metrics.Recovery.MidLogCorruptions.Load()
	_, err := l.Scan(0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan err = %v, want ErrCorrupt", err)
	}
	if metrics.Recovery.MidLogCorruptions.Load() != before+1 {
		t.Fatal("MidLogCorruptions did not advance")
	}
	if l.RepairTail() {
		t.Fatal("RepairTail must refuse mid-log corruption")
	}
}

// A torn anchor write falls back to the previous anchor slot.
func TestAnchorTornWriteFallsBack(t *testing.T) {
	disk, fp, l := faultyLog(t, 14)
	good := Anchor{Epoch: 3, CheckpointLSN: 4096, Head: 1024}
	if err := l.WriteAnchor(good); err != nil {
		t.Fatalf("write anchor: %v", err)
	}

	fp.Enable(FPAnchorCrash)
	err := l.WriteAnchor(Anchor{Epoch: 4, CheckpointLSN: 8192, Head: 2048})
	if !failpoint.IsInjected(err) {
		t.Fatalf("anchor write err = %v, want injected", err)
	}

	before := metrics.Recovery.AnchorFallbacks.Load()
	l2, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	a, ok, err := l2.ReadAnchor()
	if err != nil || !ok {
		t.Fatalf("read anchor: ok=%v err=%v", ok, err)
	}
	if a != good {
		t.Fatalf("anchor = %+v, want fallback to %+v", a, good)
	}
	if metrics.Recovery.AnchorFallbacks.Load() != before+1 {
		t.Fatal("AnchorFallbacks did not advance")
	}

	// The next successful write repairs the torn slot and wins again.
	repaired := Anchor{Epoch: 5, CheckpointLSN: 9000, Head: 2048}
	if err := l2.WriteAnchor(repaired); err != nil {
		t.Fatalf("repairing anchor write: %v", err)
	}
	if a, ok, _ := l2.ReadAnchor(); !ok || a != repaired {
		t.Fatalf("anchor after repair = %+v ok=%v, want %+v", a, ok, repaired)
	}
}

// Anchor updates alternate slots, so one write never destroys the only
// valid anchor.
func TestAnchorAlternatesSlots(t *testing.T) {
	disk, _, l := faultyLog(t, 15)
	for e := uint32(1); e <= 4; e++ {
		if err := l.WriteAnchor(Anchor{Epoch: e, CheckpointLSN: LSN(e) * 512}); err != nil {
			t.Fatalf("write anchor %d: %v", e, err)
		}
	}
	f := disk.OpenFile("log.anchor")
	if f.Size() <= anchorSlotStride {
		t.Fatalf("anchor file size = %d, want both slots written (stride %d)", f.Size(), anchorSlotStride)
	}
	a, ok, err := l.ReadAnchor()
	if err != nil || !ok || a.Epoch != 4 {
		t.Fatalf("anchor = %+v ok=%v err=%v, want epoch 4", a, ok, err)
	}
}

// A flush crash loses the buffered records, acknowledges nothing, and
// wedges the log until the process restarts.
func TestFlushCrashWedgesLog(t *testing.T) {
	disk, fp, l := faultyLog(t, 16)
	kept := mustAppendFlush(t, l, []byte("kept"))

	durableBefore := l.Durable()
	fp.Enable(FPFlushCrash)
	lsn, err := l.Append(1, []byte("lost"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("flush err = %v, want injected", err)
	}
	if l.Durable() != durableBefore {
		t.Fatalf("durable frontier moved across a crashed flush: %d -> %d (kept record at %d)",
			durableBefore, l.Durable(), kept)
	}
	// The crash is sticky even though the failpoint was one-shot.
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("second flush err = %v, want sticky injected error", err)
	}
	l.Close()

	l2, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var payloads [][]byte
	if _, err := l2.Scan(0, func(_ LSN, _ byte, p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(payloads) != 1 || !bytes.Equal(payloads[0], []byte("kept")) {
		t.Fatalf("recovered %q, want only the flushed record", payloads)
	}
}

// A transient write error is retried inside the flush and succeeds.
func TestTransientFlushErrorRetries(t *testing.T) {
	_, fp, l := faultyLog(t, 17)
	before := metrics.Recovery.TransientWriteRetries.Load()
	fp.Enable(simdisk.FPWriteError + ":log")
	mustAppendFlush(t, l, []byte("resilient"))
	if metrics.Recovery.TransientWriteRetries.Load() != before+1 {
		t.Fatal("TransientWriteRetries did not advance")
	}
	if typ, p, err := l.ReadRecord(headerSize); err != nil || typ != 1 || !bytes.Equal(p, []byte("resilient")) {
		t.Fatalf("record after retried flush: typ=%d p=%q err=%v", typ, p, err)
	}
}

// Three consecutive transient failures exhaust the retry budget.
func TestTransientFlushErrorExhaustsRetries(t *testing.T) {
	_, fp, l := faultyLog(t, 18)
	fp.Enable(simdisk.FPWriteError+":log", failpoint.Times(3))
	lsn, _ := l.Append(1, []byte("x"))
	if err := l.Flush(lsn); !errors.Is(err, simdisk.ErrTransientWrite) {
		t.Fatalf("flush err = %v, want ErrTransientWrite after retries", err)
	}
}
