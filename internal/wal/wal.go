// Package wal implements the single physical log that every MSP shares
// among all of its sessions and shared variables (§1.3, §3).
//
// The log is an append-only sequence of typed records identified by their
// LSN (byte offset). Appends go to a volatile buffer; a flush writes the
// whole buffer as one sector-aligned log block, so "flush up to LSN n" may
// make more than n durable — which is always safe. Because log blocks are
// aligned at sector boundaries and a block's last sector may not be full,
// on average half a sector is wasted per flush (§5.2); the padding is
// charged to the simulated disk and accounted in its statistics.
//
// Physically the log is a sequence of segment files ("name.000001",
// "name.000002", …), each holding a contiguous LSN range after a
// one-sector header. A flush that would overfill the active segment
// first rotates: it creates the next segment file, seals the current
// one, and re-persists the anchor so the durable segment directory
// names every live segment. Checkpoint-anchored truncation
// (TruncateHead) physically deletes whole segments strictly below the
// anchor head, keeping disk usage and recovery time flat under
// sustained traffic. LSNs remain global byte offsets, so rotation is
// invisible to every layer above.
//
// Batch flushing (§5.5, "group commit") is supported: with a non-zero
// BatchTimeout, a flush request is not executed immediately but after the
// timeout, giving concurrent requests the chance to be satisfied by a
// single larger write.
//
// Crash semantics follow the paper exactly: a crash loses the volatile
// buffer; only flushed records survive. Simulated crashes discard the Log
// object and re-Open the same disk files, then scan to find the largest
// persistent LSN (the recovered state number broadcast in §4.3).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/simdisk"
	"mspr/internal/simtime"
)

// LSN is a log sequence number: the byte offset of a record in the
// logical log, spanning every segment file. LSN 0 is never a valid
// record (the first segment's header occupies the offsets below
// headerSize), so the zero value safely means "none".
type LSN int64

// headerSize is the reserved header of every segment file (one sector).
// The first segment's data starts at LSN headerSize, and within any
// segment the file offset of LSN x is x - base + headerSize.
const headerSize = simdisk.SectorSize

// Segment header layout (one sector at file offset 0):
// [magic:8][index:u64][base:u64][crc32 over the first 24 bytes].
var segMagic = [8]byte{'M', 'S', 'P', 'R', 'S', 'E', 'G', '1'}

const segHeaderLen = 8 + 8 + 8 + 4

// Record framing: [type:1][payloadLen:u32][payload][crc32:u32] where the
// CRC covers type byte and payload. Type 0 marks sector padding.
const frameOverhead = 1 + 4 + 4

// FrameOverhead is the on-log framing cost of one record beyond its
// payload. Consumers that account log consumption per record (the
// crash-recovery analysis scan, session checkpoint thresholds) add it to
// the payload length instead of duplicating the framing layout.
const FrameOverhead = frameOverhead

// ErrNotFound is returned by ReadRecord for an LSN that does not hold a
// valid record.
var ErrNotFound = errors.New("wal: record not found")

// ErrTruncated is returned when reading below the log head: the record
// was discarded after a checkpoint made it unnecessary (§3.2, §3.4).
var ErrTruncated = errors.New("wal: record truncated (below log head)")

// ErrCorrupt is returned by Scan when it finds an unparsable record with
// valid records *after* it, or any unparsable record in a sealed
// (non-final) segment: acknowledged-durable data was damaged in place.
// Unlike a torn tail of the final segment (which only loses
// never-acknowledged records and is repairable with RepairTail),
// mid-log corruption cannot be repaired without violating the
// durability contract, so it is surfaced as a hard error.
var ErrCorrupt = errors.New("wal: log corrupted")

// Failpoints evaluated by the log layer, armed through the registry
// attached to the backing disk (simdisk.Disk.SetFailpoints).
const (
	// FPFlushCrash crashes a flush after records were appended to the
	// volatile buffer but before the block write — the window between
	// buffer append and sync. Nothing reaches the disk; the flush
	// reports failpoint.ErrInjected and the log wedges (sticky flushErr)
	// until the simulated process restarts.
	FPFlushCrash = "wal.flush.crash"
	// FPAnchorCrash tears an anchor-slot write (a seeded-random prefix
	// of the slot is persisted) and reports failpoint.ErrInjected,
	// exercising the double-buffered anchor fallback path.
	FPAnchorCrash = "wal.anchor.crash"
	// FPRotateBeforeCreate crashes a rotation before the new segment
	// file exists: the next incarnation re-rotates from scratch.
	FPRotateBeforeCreate = "wal.rotate.before-create"
	// FPRotateAfterCreate crashes a rotation after the new segment file
	// (and its header) is durable but before the anchor's segment
	// directory is rewritten: recovery must adopt the orphan segment.
	FPRotateAfterCreate = "wal.rotate.after-create"
	// FPRotateAfterAnchor crashes a rotation after the anchor update,
	// before any block lands in the new segment: recovery opens an
	// empty final segment named by the directory.
	FPRotateAfterAnchor = "wal.rotate.after-anchor"
	// FPTruncateCrash crashes a head truncation between segment-file
	// deletions: recovery's re-truncation must finish the job
	// idempotently.
	FPTruncateCrash = "wal.truncate.crash"
)

// Config controls a Log's flushing behaviour.
type Config struct {
	// BatchTimeout, if non-zero, delays every flush request by this model
	// duration so that several requests can share one disk write (§5.5).
	// The paper's experiments use 8 ms, roughly one log-write time.
	BatchTimeout time.Duration
	// MaxBuffer bounds the volatile buffer; an Append that would exceed it
	// triggers a flush of the buffered records first. The paper's log
	// blocks vary from 1 to 128 sectors; the default is 128 sectors.
	MaxBuffer int
	// ReadAhead is the size of recovery-time log reads. The paper uses
	// 128 sectors (64 KB) so that one read serves many replayed records.
	ReadAhead int
	// SegmentSize is the data capacity (bytes, excluding the one-sector
	// header) of one segment file. A flush that would exceed it rotates
	// to a new segment first; TruncateHead physically deletes whole
	// segments below the head. The default is 4 MB. A single flush
	// block larger than SegmentSize still fits (a segment holds at
	// least one block).
	SegmentSize int64
}

func (c Config) withDefaults() Config {
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 128 * simdisk.SectorSize
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = 128 * simdisk.SectorSize
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 4 << 20
	}
	if c.SegmentSize < 2*simdisk.SectorSize {
		c.SegmentSize = 2 * simdisk.SectorSize
	}
	return c
}

// segment is one physical segment file covering the LSN range
// [base, end); end is 0 while the segment is active (still appended to).
// Fields are guarded by Log.segMu; readers take copies (segView).
type segment struct {
	index uint64
	base  LSN
	end   LSN
	file  *simdisk.File
}

// segView is a point-in-time copy of a segment's coordinates, safe to
// use without holding segMu (the file handle itself is concurrency-safe
// and never mutated after creation; end only transitions 0 → sealed).
type segView struct {
	index uint64
	base  LSN
	end   LSN
	file  *simdisk.File
}

// dirEntry is one anchor segment-directory entry.
type dirEntry struct {
	index uint64
	base  LSN
}

// cacheKey addresses one read-ahead block: a segment plus the
// block-aligned offset within its file.
type cacheKey struct {
	seg uint64
	off int64
}

// Log is an MSP's physical log. It is safe for concurrent use by the
// MSP's worker threads.
type Log struct {
	cfg    Config
	disk   *simdisk.Disk
	name   string
	anchor *simdisk.File

	mu sync.Mutex
	// head: records below it have been discarded.
	head LSN //mspr:guarded-by mu
	// cond broadcasts when durable advances or batch state changes.
	cond *sync.Cond
	// buf is the volatile buffer: records appended since bufStart.
	buf []byte //mspr:guarded-by mu
	// bufStart: LSN of buf[0]; always sector-aligned.
	bufStart LSN //mspr:guarded-by mu
	// nextLSN: the LSN the next Append will receive.
	nextLSN LSN //mspr:guarded-by mu
	// durable: exclusive durable frontier.
	durable LSN //mspr:guarded-by mu
	// pending: region being written by an in-flight flush.
	pending []byte //mspr:guarded-by mu
	// pendStart: LSN of pending[0].
	pendStart LSN //mspr:guarded-by mu
	// spare: retired append buffer, reused by the next Append.
	spare []byte //mspr:guarded-by mu
	// flushGen increments when a flush completes.
	flushGen int64 //mspr:guarded-by mu
	// waiters: Flush calls waiting on the durable frontier.
	waiters int  //mspr:guarded-by mu
	closed  bool //mspr:guarded-by mu
	// flushErr records a sticky flush failure.
	flushErr error //mspr:guarded-by mu
	// appendSeal rejects appends (tests simulating a wedged log).
	appendSeal bool //mspr:guarded-by mu

	// flushReq wakes the persistent group-commit flusher (flusherLoop).
	// Buffered with capacity 1: a send coalesces with an already-pending
	// wakeup, and the channel is never closed (Close signals through it
	// and the loop exits on the closed flag).
	flushReq chan struct{}

	// tornFrom: LSN of a torn tail found by the last Scan (0 = none).
	tornFrom int64 //mspr:guarded-by mu

	// flushMu serializes physical flushes and rotations.
	flushMu sync.Mutex
	// block is flush scratch: the padded sector-aligned write block.
	block []byte //mspr:guarded-by flushMu

	// segMu guards segs and segment end fields.
	segMu sync.RWMutex
	// segs is ascending by index; the last one is active.
	segs []*segment //mspr:guarded-by segMu

	// anchorMu guards the anchor bookkeeping and anchor-slot writes.
	anchorMu sync.Mutex
	// anchorSeq: sequence number of the newest valid anchor slot.
	anchorSeq uint64 //mspr:guarded-by anchorMu
	// lastAnchor: the newest durable anchor (rotation re-persists it
	// with a wider directory).
	lastAnchor Anchor //mspr:guarded-by anchorMu
	// hasAnchor: lastAnchor is valid (an anchor was written or read).
	hasAnchor bool //mspr:guarded-by anchorMu

	// readMu guards the read-ahead cache.
	readMu     sync.Mutex
	cache      map[cacheKey][]byte //mspr:guarded-by readMu
	cacheOrder []cacheKey          //mspr:guarded-by readMu
}

// readCacheBlocks bounds the read-ahead cache (per log). Parallel session
// recovery (§4.3) interleaves reads from several log regions; a handful
// of cached blocks keeps each replaying session's locality intact.
const readCacheBlocks = 8

// segFileName names segment idx of the named log ("name.000001", …;
// the width grows naturally past 999999).
func segFileName(name string, idx uint64) string {
	return fmt.Sprintf("%s.%06d", name, idx)
}

// parseSegIndex extracts the segment index from a file name of the form
// name.NNNNNN; ok is false for any other name (e.g. the anchor file).
func parseSegIndex(name, fileName string) (uint64, bool) {
	suffix, found := strings.CutPrefix(fileName, name+".")
	if !found || len(suffix) < 6 {
		return 0, false
	}
	var idx uint64
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(c-'0')
	}
	return idx, true
}

func encodeSegHeader(idx uint64, base LSN) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], idx)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(base))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(hdr[:24]))
	return hdr
}

// readSegHeader validates a segment file's header sector (a mount-time
// peek, not a modelled I/O).
func readSegHeader(f *simdisk.File) (idx uint64, base LSN, ok bool) {
	hdr := make([]byte, segHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, 0, false
	}
	if [8]byte(hdr[:8]) != segMagic {
		return 0, 0, false
	}
	if crc32.ChecksumIEEE(hdr[:24]) != binary.LittleEndian.Uint32(hdr[24:]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(hdr[8:]), LSN(binary.LittleEndian.Uint64(hdr[16:])), true
}

// Open opens (creating if necessary) the named log on disk. It
// enumerates the segment files, validates them against the anchor's
// segment directory, adopts the single orphan segment a crashed
// rotation may have left, deletes a torn segment-create leftover, and
// refuses to start when a segment at or after the anchor head is
// missing. After a crash, Open alone does not determine the durable
// frontier precisely; the recovery scan (Scan) reports the last valid
// record so the caller can learn the recovered state number.
//
//mspr:guardedby mount-time initialization: the Log is not yet published
func Open(disk *simdisk.Disk, name string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	l := &Log{
		cfg:    cfg,
		disk:   disk,
		name:   name,
		anchor: disk.OpenFile(name + ".anchor"),
		cache:  make(map[cacheKey][]byte),
	}
	l.cond = sync.NewCond(&l.mu)

	// Learn the newest anchor slot: its sequence number (so the first
	// WriteAnchor of this incarnation keeps alternating slots), the last
	// durable anchor, and the segment directory. This is a mount-time
	// peek, not a modelled I/O; ReadAnchor charges the read.
	var dir []dirEntry
	for slot := int64(0); slot < 2; slot++ {
		buf := make([]byte, anchorSlotStride)
		if _, err := l.anchor.ReadAt(buf, slot*anchorSlotStride); err != nil {
			return nil, fmt.Errorf("wal: reading anchor slot: %w", err)
		}
		if a, d, seq, ok := parseAnchorSlot(buf); ok && seq > l.anchorSeq {
			l.anchorSeq = seq
			l.lastAnchor, l.hasAnchor = a, true
			dir = d
		}
	}

	if err := l.openSegments(dir); err != nil {
		return nil, err
	}
	final := l.segs[len(l.segs)-1]
	frontier := final.base + LSN(alignUp(final.file.Size()-headerSize))
	l.bufStart = frontier
	l.nextLSN = frontier
	l.durable = frontier
	l.head = l.segs[0].base

	if cfg.BatchTimeout > 0 {
		l.flushReq = make(chan struct{}, 1)
		go l.flusherLoop()
	}
	return l, nil
}

// openSegments enumerates, validates and reconciles the segment files
// against the anchor's segment directory (nil when no anchor exists).
//
//mspr:guardedby mount-time initialization: the Log is not yet published
func (l *Log) openSegments(dir []dirEntry) error {
	var segs []*segment
	var broken []string // files with a torn or invalid header
	for _, fn := range l.disk.List(l.name + ".") {
		idx, ok := parseSegIndex(l.name, fn)
		if !ok {
			continue // the anchor file, or unrelated
		}
		f := l.disk.OpenFile(fn)
		hIdx, base, ok := readSegHeader(f)
		if !ok || hIdx != idx {
			broken = append(broken, fn)
			continue
		}
		segs = append(segs, &segment{index: idx, base: base, file: f})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })

	if len(segs) == 0 {
		if len(broken) > 0 {
			return fmt.Errorf("wal: %q has no valid segment (torn: %v)", l.name, broken)
		}
		if l.hasAnchor {
			return fmt.Errorf("wal: %q has an anchor but no segment files", l.name)
		}
		seg, err := l.createSegment(1, headerSize, false)
		if err != nil {
			return err
		}
		l.segs = []*segment{seg}
		return nil
	}

	// A broken header is tolerable only on the file a crashed rotation
	// was creating (index one past the newest valid segment): delete it;
	// the next rotation recreates it. Anywhere else it is corruption.
	maxIdx := segs[len(segs)-1].index
	for _, fn := range broken {
		idx, _ := parseSegIndex(l.name, fn)
		if idx != maxIdx+1 {
			return fmt.Errorf("wal: segment %q has a corrupt header", fn)
		}
		l.disk.Remove(fn) // torn segment create; never counted live
	}

	// Contiguity: each segment must start exactly where its predecessor
	// ends, with no index gaps. Sealed ends derive from file sizes
	// (every sealed write was sector-aligned).
	for i := 1; i < len(segs); i++ {
		prev, s := segs[i-1], segs[i]
		if s.index != prev.index+1 {
			return fmt.Errorf("wal: %q segment %06d missing (found %06d then %06d)",
				l.name, prev.index+1, prev.index, s.index)
		}
		prevEnd := prev.base + LSN(alignUp(prev.file.Size()-headerSize))
		if s.base != prevEnd {
			return fmt.Errorf("wal: segment %q starts at LSN %d, want %d (sealed predecessor ends there)",
				s.file.Name(), s.base, prevEnd)
		}
		prev.end = prevEnd
	}

	if l.hasAnchor && len(dir) > 0 {
		byIdx := make(map[uint64]*segment, len(segs))
		for _, s := range segs {
			byIdx[s.index] = s
		}
		for i, e := range dir {
			entEnd := LSN(math.MaxInt64)
			if i+1 < len(dir) {
				entEnd = dir[i+1].base
			}
			s, ok := byIdx[e.index]
			if !ok {
				if entEnd > l.lastAnchor.Head {
					return fmt.Errorf("wal: %q refuses to open: segment %06d holds records at or after the anchor head %d but is missing",
						l.name, e.index, l.lastAnchor.Head)
				}
				continue // wholly below the head: reclaimed (possibly by an interrupted truncation)
			}
			if s.base != e.base {
				return fmt.Errorf("wal: segment %q starts at LSN %d but the anchor directory says %d",
					s.file.Name(), s.base, e.base)
			}
		}
		// A file unknown to the directory is adoptable only if it is the
		// next segment after the directory's newest entry — the orphan of
		// a rotation that crashed between segment create and anchor
		// update. Anything else is inconsistent.
		inDir := make(map[uint64]bool, len(dir))
		for _, e := range dir {
			inDir[e.index] = true
		}
		maxDir := dir[len(dir)-1].index
		for _, s := range segs {
			if !inDir[s.index] && s.index != maxDir+1 {
				return fmt.Errorf("wal: segment %q is not in the anchor directory", s.file.Name())
			}
		}
	}

	l.segs = segs
	return nil
}

// createSegment creates segment file idx with its header durable.
// charge selects whether the header write is charged to the disk
// (rotation) or not (mount-time creation of a fresh log, mirroring the
// historical header write).
func (l *Log) createSegment(idx uint64, base LSN, charge bool) (*segment, error) {
	fn := segFileName(l.name, idx)
	if l.disk.OpenFile(fn).Size() != 0 {
		// Leftover from an earlier crashed rotation (never adopted, so
		// never counted live): recreate from scratch.
		l.disk.Remove(fn)
	}
	f := l.disk.OpenFile(fn)
	if _, err := f.WriteAt(encodeSegHeader(idx, base), 0); err != nil {
		return nil, fmt.Errorf("wal: writing header of %q: %w", fn, err)
	}
	if charge {
		l.disk.ChargeWrite(1, 0)
	}
	metrics.Wal.SegmentsLive.Add(1)
	return &segment{index: idx, base: base, file: f}, nil
}

// fp returns the fault-injection registry shared through the backing
// disk; nil (injection off) is safe to Eval.
func (l *Log) fp() *failpoint.Registry { return l.disk.Failpoints() }

func alignUp(n int64) int64 {
	const s = simdisk.SectorSize
	return (n + s - 1) / s * s
}

// activeSeg returns a view of the newest (appendable) segment.
func (l *Log) activeSeg() segView {
	l.segMu.RLock()
	defer l.segMu.RUnlock()
	s := l.segs[len(l.segs)-1]
	return segView{s.index, s.base, s.end, s.file}
}

// segAt returns a view of the segment covering the given LSN offset.
func (l *Log) segAt(off int64) (segView, bool) {
	l.segMu.RLock()
	defer l.segMu.RUnlock()
	for i := len(l.segs) - 1; i >= 0; i-- {
		s := l.segs[i]
		if LSN(off) >= s.base && (s.end == 0 || LSN(off) < s.end) {
			return segView{s.index, s.base, s.end, s.file}, true
		}
	}
	return segView{}, false
}

// Append adds a record to the volatile buffer and returns its LSN. The
// record is not durable until a Flush covering its LSN completes.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) Append(typ byte, payload []byte) (LSN, error) {
	if typ == 0 {
		return 0, errors.New("wal: record type 0 is reserved for padding")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	if len(l.buf)+len(payload)+frameOverhead > l.cfg.MaxBuffer && len(l.buf) > 0 {
		// Buffer full: force a flush of what we have, then append.
		upTo := l.nextLSN - 1
		l.mu.Unlock()
		if err := l.flushNow(upTo); err != nil {
			return 0, err
		}
		l.mu.Lock()
	}
	lsn := l.nextLSN
	if l.buf == nil && l.spare != nil {
		// Reuse the buffer retired by the last completed flush instead of
		// growing a fresh one from nil.
		l.buf = l.spare
		l.spare = nil
	}
	l.buf = appendFrame(l.buf, typ, payload)
	l.nextLSN += LSN(len(payload) + frameOverhead)
	l.mu.Unlock()
	return lsn, nil
}

func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	// crc32.Update avoids allocating a hasher per record on the append
	// hot path (the type-byte slice stays on the stack).
	crc := crc32.Update(0, crc32.IEEETable, []byte{typ})
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// Durable returns the exclusive durable frontier: every record with
// LSN < Durable() survives a crash.
func (l *Log) Durable() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Next returns the LSN the next Append will be assigned.
func (l *Log) Next() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastAppended returns the LSN of the most recently appended record, or 0
// if nothing has been appended since the log was opened.
func (l *Log) LastAppended() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN == l.bufStart && len(l.pending) == 0 {
		return 0
	}
	return l.nextLSN - 1 // any LSN within the last record identifies it for flushing
}

// Flush makes every record with LSN ≤ upTo durable. With batch flushing
// enabled the request is handed to the persistent group-commit flusher so
// concurrent requests share a single write; otherwise the flush is issued
// immediately on the caller.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	if upTo < l.durable {
		l.mu.Unlock()
		return nil
	}
	if l.cfg.BatchTimeout <= 0 {
		l.mu.Unlock()
		return l.flushNow(upTo)
	}
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed during flush")
	}
	// Group commit: register as a waiter, wake the flusher, and wait until
	// the durable frontier covers us (or the log dies under us). The
	// flusher is a long-lived goroutine, so a request arriving while a
	// flush is in flight is picked up as soon as that flush completes —
	// there is no re-arm window during which a waiter can oversleep.
	l.waiters++
	select {
	case l.flushReq <- struct{}{}:
	default: // a wakeup is already pending; it will cover us
	}
	metrics.Wal.GroupCommitWaits.Inc()
	for l.durable <= upTo && l.flushErr == nil && !l.closed {
		l.cond.Wait()
	}
	l.waiters--
	err := l.flushErr
	closed := l.closed && l.durable <= upTo
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return errors.New("wal: log closed during flush")
	}
	return nil
}

// flusherLoop is the persistent group-commit flusher: one long-lived
// goroutine per log that serves every batched Flush. The batch window is
// adaptive (§5.5): a lone waiter is flushed immediately (an idle system
// should not pay the window as latency), while concurrent waiters hold
// the window open so their records share one sector-aligned write. Errors
// reach waiters through the sticky flushErr set inside flushNow; Close
// wakes the loop through flushReq and it exits on the closed flag.
func (l *Log) flusherLoop() {
	scaled := time.Duration(float64(l.cfg.BatchTimeout) * l.disk.Model().TimeScale)
	if scaled <= 0 {
		// Batching is a behavioural delay, not a modelled disk latency:
		// keep a small window even at TimeScale 0 so requests can combine.
		scaled = 100 * time.Microsecond
	}
	// loaded records that the previous flush left waiters behind (or more
	// arrived during it): the burst is still going, so the next batch
	// holds the window open even if only one waiter has registered yet.
	loaded := false
	for range l.flushReq {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		contended := loaded || l.waiters > 1
		l.mu.Unlock()
		if contended {
			metrics.Wal.GroupCommitWindows.Inc()
			simtime.Sleep(scaled)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		upTo := l.nextLSN - 1
		served := int64(l.waiters)
		l.mu.Unlock()
		metrics.Wal.GroupCommitBatches.Inc()
		metrics.Wal.GroupCommitBatchWaiters.Add(served)
		// flushNow's error is delivered to waiters via the sticky flushErr
		// (set and broadcast inside); the loop keeps draining wakeups so
		// late waiters observe the error instead of hanging.
		//mspr:walerr error is sticky in flushErr and observed by every waiter
		_ = l.flushNow(upTo)
		l.mu.Lock()
		loaded = l.waiters > 0
		l.mu.Unlock()
	}
}

// flushNow writes the buffered records (all of them, padded to a sector
// boundary) and advances the durable frontier, rotating to a new segment
// first when the block would overfill the active one. Concurrent appends
// proceed while the simulated write is in flight; their records form the
// next block.
func (l *Log) flushNow(upTo LSN) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed")
	}
	if l.flushErr != nil {
		// A previous flush failed; the log is wedged until the process
		// restarts and recovers, exactly like a dead log device.
		err := l.flushErr
		l.mu.Unlock()
		return err
	}
	if upTo < l.durable || len(l.buf) == 0 {
		// A racing flush already covered this request.
		l.mu.Unlock()
		return nil
	}
	if _, ok := l.fp().Eval(FPFlushCrash); ok {
		// Crash between buffer append and sync: nothing reaches the disk
		// and no caller was ever told the records were durable. The error
		// is sticky, like a real dead process's log.
		err := fmt.Errorf("wal: flush of %q crashed before write: %w", l.name, failpoint.ErrInjected)
		l.flushErr = err
		l.cond.Broadcast()
		l.mu.Unlock()
		return err
	}
	data := l.buf
	start := l.bufStart
	padded := alignUp(int64(start) + int64(len(data)))
	waste := int(padded - int64(start) - int64(len(data)))
	// The write block is scratch reused across flushes (flushMu is held
	// throughout): the disk copies it during WriteAt, so only the pad
	// region needs explicit zeroing.
	need := int(padded - int64(start))
	if cap(l.block) < need {
		l.block = make([]byte, need)
	}
	block := l.block[:need]
	for i := copy(block, data); i < need; i++ {
		block[i] = 0
	}
	l.pending = data
	l.pendStart = start
	l.buf = nil
	l.bufStart = LSN(padded)
	l.nextLSN = LSN(padded)
	l.mu.Unlock()

	// Rotation: if this block would overfill the active segment (and the
	// segment already holds at least one block — a segment always
	// accepts its first block, however large), seal it and open the
	// next. Rotation failures are sticky like any flush failure: the
	// crash landed mid-protocol and only a restart may proceed.
	seg := l.activeSeg()
	segOff := int64(start) - int64(seg.base) + headerSize
	if segOff > headerSize && segOff-headerSize+int64(need) > l.cfg.SegmentSize {
		if rerr := l.rotate(start); rerr != nil {
			l.mu.Lock()
			l.flushErr = rerr
			l.cond.Broadcast()
			l.mu.Unlock()
			return rerr
		}
		seg = l.activeSeg()
		segOff = headerSize
	}

	var werr error
	for attempt := 0; ; attempt++ {
		if _, werr = seg.file.WriteAt(block, segOff); werr == nil {
			break
		}
		if attempt >= 2 || !errors.Is(werr, simdisk.ErrTransientWrite) {
			break
		}
		metrics.Recovery.TransientWriteRetries.Inc()
	}
	if werr != nil {
		l.mu.Lock()
		l.flushErr = werr
		l.cond.Broadcast()
		l.mu.Unlock()
		return werr
	}
	sectors := len(block) / simdisk.SectorSize
	l.disk.ChargeWrite(sectors, waste)

	l.mu.Lock()
	l.durable = LSN(padded)
	l.pending = nil
	// The retired append buffer becomes the spare: no reader can reach it
	// once pending is cleared (ReadRecord copies payloads under l.mu).
	l.spare = data[:0]
	l.flushGen++
	l.cond.Broadcast()
	liveSpan := int64(l.durable - l.head)
	l.mu.Unlock()
	metrics.Wal.LiveLogBytes.Add(int64(need))
	metrics.Wal.PeakLiveBytes.Observe(liveSpan)
	// Cached read-ahead blocks covering the just-written region hold
	// stale zeros (read before this flush); drop them.
	l.readMu.Lock()
	ra := int64(l.cfg.ReadAhead)
	kept := l.cacheOrder[:0]
	for _, key := range l.cacheOrder {
		if key.seg == seg.index && key.off+ra > segOff {
			delete(l.cache, key)
		} else {
			kept = append(kept, key)
		}
	}
	l.cacheOrder = kept
	l.readMu.Unlock()
	return nil
}

// rotate seals the active segment at base (the next block's LSN) and
// opens the next segment file. Called with flushMu held, before the
// block write. The protocol is: create the new segment file with its
// header, publish it in the in-memory table, then re-persist the anchor
// so the durable segment directory names the new segment. A crash
// between create and anchor update leaves an orphan segment that Open
// adopts; a crash before create leaves nothing (re-rotation is from
// scratch); a torn header write leaves a file Open deletes.
func (l *Log) rotate(base LSN) error {
	fp := l.fp()
	if _, ok := fp.Eval(FPRotateBeforeCreate); ok {
		return fmt.Errorf("wal: rotation of %q crashed before segment create: %w", l.name, failpoint.ErrInjected)
	}
	old := l.activeSeg()
	seg, err := l.createSegment(old.index+1, base, true)
	if err != nil {
		return fmt.Errorf("wal: rotating %q: %w", l.name, err)
	}
	if _, ok := fp.Eval(FPRotateAfterCreate); ok {
		return fmt.Errorf("wal: rotation of %q crashed after segment create, before anchor update: %w", l.name, failpoint.ErrInjected)
	}
	l.segMu.Lock()
	l.segs[len(l.segs)-1].end = base
	l.segs = append(l.segs, seg)
	l.segMu.Unlock()
	metrics.Wal.Rotations.Inc()
	// Re-persist the anchor so its segment directory includes the new
	// segment. Before the first checkpoint anchor exists there is
	// nothing to rewrite — and writing a zero anchor would invent a
	// checkpoint at LSN 0 — so recovery instead accepts every contiguous
	// segment of an anchorless log.
	l.anchorMu.Lock()
	if l.hasAnchor {
		if aerr := l.writeAnchorLocked(l.lastAnchor); aerr != nil {
			l.anchorMu.Unlock()
			return fmt.Errorf("wal: rotating %q: %w", l.name, aerr)
		}
	}
	l.anchorMu.Unlock()
	if _, ok := fp.Eval(FPRotateAfterAnchor); ok {
		return fmt.Errorf("wal: rotation of %q crashed after anchor update: %w", l.name, failpoint.ErrInjected)
	}
	return nil
}

// ReadRecord returns the record at lsn. Records still in the volatile
// buffer are served from memory; durable records are read through the
// 64 KB read-ahead cache (ascending replay reads therefore amortize to
// one disk read per 128 sectors, as in §5.4).
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) ReadRecord(lsn LSN) (typ byte, payload []byte, err error) {
	if lsn < headerSize {
		return 0, nil, ErrNotFound
	}
	l.mu.Lock()
	if lsn < l.head {
		l.mu.Unlock()
		return 0, nil, ErrTruncated
	}
	if lsn >= l.bufStart {
		off := int(lsn - l.bufStart)
		if off >= len(l.buf) {
			l.mu.Unlock()
			return 0, nil, ErrNotFound
		}
		typ, payload, _, err = parseFrame(l.buf[off:])
		if err == nil {
			payload = append([]byte(nil), payload...)
		}
		l.mu.Unlock()
		return typ, payload, err
	}
	if lsn >= l.pendStart && l.pending != nil {
		off := int(lsn - l.pendStart)
		if off < len(l.pending) {
			typ, payload, _, err = parseFrame(l.pending[off:])
			if err == nil {
				payload = append([]byte(nil), payload...)
			}
			l.mu.Unlock()
			return typ, payload, err
		}
	}
	l.mu.Unlock()
	return l.readDurable(lsn)
}

// readDurable reads a record from the device via the read-ahead cache.
func (l *Log) readDurable(lsn LSN) (byte, []byte, error) {
	hdr, err := l.cachedBytes(int64(lsn), 5)
	if err != nil {
		return 0, nil, err
	}
	typ := hdr[0]
	if typ == 0 {
		return 0, nil, ErrNotFound
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	frame, err := l.cachedBytes(int64(lsn), int(n)+frameOverhead)
	if err != nil {
		return 0, nil, err
	}
	typ, payload, _, err := parseFrame(frame)
	if err != nil {
		return 0, nil, err
	}
	return typ, append([]byte(nil), payload...), nil
}

// cachedBytes returns n bytes starting at logical offset off, reading
// through the per-segment read-ahead cache. A range crossing a sealed
// segment's end continues seamlessly in the next segment (records never
// span segments, but probe reads may).
func (l *Log) cachedBytes(off int64, n int) ([]byte, error) {
	l.readMu.Lock()
	defer l.readMu.Unlock()
	var out []byte
	ra := int64(l.cfg.ReadAhead)
	for n > 0 {
		seg, ok := l.segAt(off)
		if !ok {
			return nil, fmt.Errorf("wal: LSN %d is below the first live segment of %q", off, l.name)
		}
		fileOff := off - int64(seg.base) + headerSize
		blockOff := fileOff / ra * ra
		key := cacheKey{seg.index, blockOff}
		block, ok := l.cache[key]
		if !ok {
			// Clamp the read to a sealed segment's data end so bytes past
			// the seal never masquerade as zeros of this segment.
			readLen := ra
			if seg.end != 0 {
				segFileEnd := int64(seg.end-seg.base) + headerSize
				if blockOff+readLen > segFileEnd {
					readLen = segFileEnd - blockOff
				}
			}
			buf := make([]byte, readLen)
			if _, err := seg.file.ReadAt(buf, blockOff); err != nil {
				return nil, err
			}
			l.disk.ChargeRead(int((readLen + simdisk.SectorSize - 1) / simdisk.SectorSize))
			if len(l.cacheOrder) >= readCacheBlocks {
				evict := l.cacheOrder[0]
				l.cacheOrder = l.cacheOrder[1:]
				delete(l.cache, evict)
			}
			l.cache[key] = buf
			l.cacheOrder = append(l.cacheOrder, key)
			block = buf
		}
		i := int(fileOff - blockOff)
		take := len(block) - i
		if take > n {
			take = n
		}
		if out == nil && take == n {
			// The whole range lies inside one cached block: return a
			// subslice without copying. Cached blocks are immutable once
			// loaded (eviction only drops the reference), so the subslice
			// stays valid; callers must treat it as read-only. This is the
			// analysis scan's hot path — one allocation per 64 KB block
			// instead of three per record.
			return block[i : i+take : i+take], nil
		}
		out = append(out, block[i:i+take]...)
		off += int64(take)
		n -= take
	}
	return out, nil
}

// InvalidateCache drops the read-ahead cache. Tests use it to force
// re-reads; recovery calls it after reopening a log.
func (l *Log) InvalidateCache() {
	l.readMu.Lock()
	l.cache = make(map[cacheKey][]byte)
	l.cacheOrder = nil
	l.readMu.Unlock()
}

func parseFrame(b []byte) (typ byte, payload []byte, size int, err error) {
	if len(b) < frameOverhead {
		return 0, nil, 0, ErrNotFound
	}
	typ = b[0]
	if typ == 0 {
		return 0, nil, 0, ErrNotFound
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < frameOverhead+n {
		return 0, nil, 0, ErrNotFound
	}
	payload = b[5 : 5+n]
	want := binary.LittleEndian.Uint32(b[5+n : 5+n+4])
	crc := crc32.Update(0, crc32.IEEETable, b[:1])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != want {
		return 0, nil, 0, fmt.Errorf("wal: bad crc at record")
	}
	return typ, payload, frameOverhead + n, nil
}

// Scan calls fn for every valid durable record with LSN ≥ from, in log
// order across all segments, and returns the LSN of the last valid
// record seen (0 if none). It charges sequential 64 KB reads, as the
// analysis scan of §4.3 does.
//
// An unparsable frame ends the scan one of two ways. If no valid record
// follows it AND it lies in the final segment, the damage is a torn
// tail — only records that were never acknowledged durable are lost.
// Scan records the tear point (see RepairTail) and returns normally;
// Scan itself never mutates the log, so read-only consumers (logdump)
// stay safe. If valid records *do* follow, or the unparsable frame lies
// in a sealed segment (whose contents were all acknowledged durable
// before the seal), acknowledged data was damaged in place and Scan
// returns ErrCorrupt.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) Scan(from LSN, fn func(lsn LSN, typ byte, payload []byte) error) (last LSN, err error) {
	if from < headerSize {
		from = headerSize
	}
	if h := l.Head(); from < h {
		from = h
	}
	l.mu.Lock()
	l.tornFrom = 0
	l.mu.Unlock()
	end := l.Durable()
	off := int64(from)
	for off < int64(end) {
		// One probe read covers both the padding check and the length
		// field; clamped at the durable end, where a partial header can
		// only be padding or a torn tail.
		hn := 5
		if int64(end)-off < 5 {
			hn = int(int64(end) - off)
		}
		hdr, err := l.cachedBytes(off, hn)
		if err != nil {
			return last, err
		}
		if hdr[0] == 0 {
			// Padding: skip to the next sector boundary.
			next := alignUp(off + 1)
			if next == off {
				next = off + simdisk.SectorSize
			}
			off = next
			continue
		}
		bad := hn < 5 // no room for a frame header before the durable end
		var n int
		if !bad {
			n = int(binary.LittleEndian.Uint32(hdr[1:5]))
			bad = int64(n) > int64(end)-off // length field runs past the durable end
		}
		var typ byte
		var payload []byte
		var size int
		if !bad {
			frame, err := l.cachedBytes(off, n+frameOverhead)
			if err != nil {
				return last, err
			}
			var perr error
			typ, payload, size, perr = parseFrame(frame)
			bad = perr != nil
		}
		if bad {
			valid, perr := l.probeValidAfter(off, int64(end))
			if perr != nil {
				return last, perr
			}
			if valid {
				metrics.Recovery.MidLogCorruptions.Inc()
				return last, fmt.Errorf("wal: unparsable record at LSN %d with valid records after it: %w", off, ErrCorrupt)
			}
			if seg, ok := l.segAt(off); !ok || seg.end != 0 {
				// A tear is only repairable in the final segment: a sealed
				// segment holds exclusively acknowledged-durable data, so
				// an unparsable frame there is in-place damage even when
				// the segments after it are empty.
				metrics.Recovery.MidLogCorruptions.Inc()
				return last, fmt.Errorf("wal: unparsable record at LSN %d in sealed segment: %w", off, ErrCorrupt)
			}
			l.mu.Lock()
			l.tornFrom = off
			l.mu.Unlock()
			break // torn tail: only never-acknowledged records lost
		}
		if fn != nil {
			if err := fn(LSN(off), typ, payload); err != nil {
				return last, err
			}
		}
		last = LSN(off)
		off += int64(size)
	}
	return last, nil
}

// probeValidAfter reports whether any fully valid record starts at a
// sector boundary after off. Flush blocks always start at sector
// boundaries, so a later block's first record is found here; garbage
// inside the damaged block itself fails the CRC and is skipped. The
// probe spans segment boundaries (cachedBytes follows the chain), so a
// valid record in a later segment convicts damage in an earlier one.
func (l *Log) probeValidAfter(off, end int64) (bool, error) {
	for p := alignUp(off + 1); p < end; p += simdisk.SectorSize {
		hdr, err := l.cachedBytes(p, 5)
		if err != nil {
			return false, err
		}
		if hdr[0] == 0 {
			continue
		}
		n := int(binary.LittleEndian.Uint32(hdr[1:5]))
		if int64(n) > end-p {
			continue
		}
		frame, err := l.cachedBytes(p, n+frameOverhead)
		if err != nil {
			return false, err
		}
		if _, _, _, perr := parseFrame(frame); perr == nil {
			return true, nil
		}
	}
	return false, nil
}

// RepairTail truncates the torn tail found by the most recent Scan, if
// any, and reports whether it did. The append and durable frontiers are
// pulled back to the tear's sector; without this, Open's frontier
// (placed past the garbage by file size) would strand every later
// append behind the unparsable region, invisible to all future scans.
// Recovery must call it after its analysis scan and before appending.
// The tear always lies in the final segment (Scan rejects sealed-segment
// damage as ErrCorrupt), so the repair is a tail truncation of that
// segment's file.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) RepairTail() bool {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	off := l.tornFrom
	l.tornFrom = 0
	if off == 0 || len(l.buf) > 0 || l.pending != nil {
		// Nothing torn, or appends already landed past the tear — the
		// caller broke the scan-then-repair protocol; refuse.
		l.mu.Unlock()
		return false
	}
	seg, ok := l.segAt(off)
	if !ok || seg.end != 0 {
		// Defensive: a tear below the final segment is corruption, not a
		// repairable tail; Scan should never record one.
		l.mu.Unlock()
		return false
	}
	aligned := alignUp(off)
	l.bufStart = LSN(aligned)
	l.nextLSN = LSN(aligned)
	if l.durable > LSN(aligned) {
		l.durable = LSN(aligned)
	}
	l.mu.Unlock()
	//mspr:walerr best-effort repair: a failed truncate leaves the torn tail for the next scan to re-detect
	seg.file.Truncate(off - int64(seg.base) + headerSize) // the [off, aligned) gap reads as zeros: padding
	l.InvalidateCache()
	metrics.Recovery.CorruptTailTruncations.Inc()
	return true
}

// Anchor is the content of the log anchor block (§3.4): the location of
// the most recent MSP checkpoint, the MSP's current epoch number, and
// the log head (records below it have been discarded). The physical
// anchor slot additionally carries the segment directory — every live
// segment's index and base LSN — maintained internally by the log
// (rotation widens it, truncation shrinks it at the next write).
type Anchor struct {
	Epoch         uint32
	CheckpointLSN LSN
	Head          LSN
}

// The anchor file holds two fixed-stride slots, written alternately and
// stamped with a monotone sequence number. A crash tearing the slot
// being written leaves the other slot — holding the previous anchor —
// intact, so an anchor update is never a single point of failure.
// Slot layout: [magic:4][seq:u64][epoch:u32][ckptLSN:u64][head:u64]
// [nseg:u32][nseg × (index:u64, base:u64)][crc32 over everything
// before it], zero-padded to a sector multiple.
var anchorMagic = [4]byte{'A', 'N', 'C', '3'}

const (
	anchorFixedLen   = 4 + 8 + 4 + 8 + 8 + 4
	anchorEntryLen   = 16
	anchorSlotStride = 4 * simdisk.SectorSize
	// maxDirEntries bounds the segment directory to what a slot holds.
	// 125 live segments means truncation has stalled for an entire
	// checkpoint-interval × 125 of traffic; surfacing the overflow as an
	// error beats silently growing the anchor.
	maxDirEntries = (anchorSlotStride - anchorFixedLen - 4) / anchorEntryLen
)

func encodeAnchorSlot(a Anchor, seq uint64, dir []dirEntry) []byte {
	used := anchorFixedLen + len(dir)*anchorEntryLen + 4
	buf := make([]byte, alignUp(int64(used)))
	copy(buf, anchorMagic[:])
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[12:], a.Epoch)
	binary.LittleEndian.PutUint64(buf[16:], uint64(a.CheckpointLSN))
	binary.LittleEndian.PutUint64(buf[24:], uint64(a.Head))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(dir)))
	off := anchorFixedLen
	for _, e := range dir {
		binary.LittleEndian.PutUint64(buf[off:], e.index)
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.base))
		off += anchorEntryLen
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

func parseAnchorSlot(buf []byte) (a Anchor, dir []dirEntry, seq uint64, ok bool) {
	if len(buf) < anchorFixedLen+4 || [4]byte(buf[:4]) != anchorMagic {
		return Anchor{}, nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(buf[32:]))
	end := anchorFixedLen + n*anchorEntryLen
	if n > maxDirEntries || end+4 > len(buf) {
		return Anchor{}, nil, 0, false
	}
	if crc32.ChecksumIEEE(buf[:end]) != binary.LittleEndian.Uint32(buf[end:]) {
		return Anchor{}, nil, 0, false
	}
	seq = binary.LittleEndian.Uint64(buf[4:])
	a.Epoch = binary.LittleEndian.Uint32(buf[12:])
	a.CheckpointLSN = LSN(binary.LittleEndian.Uint64(buf[16:]))
	a.Head = LSN(binary.LittleEndian.Uint64(buf[24:]))
	dir = make([]dirEntry, n)
	off := anchorFixedLen
	for i := range dir {
		dir[i] = dirEntry{
			index: binary.LittleEndian.Uint64(buf[off:]),
			base:  LSN(binary.LittleEndian.Uint64(buf[off+8:])),
		}
		off += anchorEntryLen
	}
	return a, dir, seq, true
}

// WriteAnchor durably records the anchor together with the current
// segment directory, charging the slot write. The write goes to the
// slot NOT holding the newest valid anchor, so the previous anchor
// survives until the new one is fully on disk.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) WriteAnchor(a Anchor) error {
	l.anchorMu.Lock()
	defer l.anchorMu.Unlock()
	return l.writeAnchorLocked(a)
}

// writeAnchorLocked is WriteAnchor's body; the caller holds anchorMu
// (rotation calls it while already persisting the widened directory).
//
//mspr:holds anchorMu
func (l *Log) writeAnchorLocked(a Anchor) error {
	l.segMu.RLock()
	dir := make([]dirEntry, len(l.segs))
	for i, s := range l.segs {
		dir[i] = dirEntry{s.index, s.base}
	}
	l.segMu.RUnlock()
	if len(dir) > maxDirEntries {
		return fmt.Errorf("wal: %d live segments exceed the anchor directory capacity of %d (truncation stalled?)",
			len(dir), maxDirEntries)
	}
	seq := l.anchorSeq + 1
	buf := encodeAnchorSlot(a, seq, dir)
	used := anchorFixedLen + len(dir)*anchorEntryLen + 4
	off := int64(seq%2) * anchorSlotStride
	if hit, ok := l.fp().Eval(FPAnchorCrash); ok {
		// Tear the slot write: persist a prefix long enough to damage the
		// stored sequence number (so the slot cannot masquerade as its
		// old self) but never the whole encoded slot (the CRC stays
		// incomplete). Arg pins the prefix length.
		keep := 5 + int(hit.R%int64(used-5))
		if hit.Arg > 0 && hit.Arg < int64(used) {
			keep = int(hit.Arg)
		}
		l.anchor.WriteAt(buf[:keep], off) //mspr:walerr deliberately torn injected write; ErrInjected is returned below regardless
		l.disk.ChargeWrite(1, 0)
		return fmt.Errorf("wal: anchor write of %q torn at %d bytes: %w", l.anchor.Name(), keep, failpoint.ErrInjected)
	}
	if _, err := l.anchor.WriteAt(buf, off); err != nil {
		return err
	}
	l.disk.ChargeWrite(len(buf)/simdisk.SectorSize, 0)
	l.anchorSeq = seq
	l.lastAnchor = a
	l.hasAnchor = true
	return nil
}

// ReadAnchor returns the newest valid stored anchor, or ok=false if none
// was ever written. When the newest slot is torn or corrupt but the
// other slot holds a valid (older) anchor, that anchor is returned and
// the fallback is counted; recovery then proceeds from the previous
// checkpoint, which is always safe (the log below it was not yet
// discarded — TruncateHead runs only after the anchor write succeeds,
// and a rotation's anchor rewrite reuses the previous head unchanged).
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) ReadAnchor() (a Anchor, ok bool, err error) {
	l.anchorMu.Lock()
	defer l.anchorMu.Unlock()
	if l.anchor.Size() == 0 {
		return Anchor{}, false, nil
	}
	buf := make([]byte, 2*anchorSlotStride)
	if _, err := l.anchor.ReadAt(buf, 0); err != nil {
		return Anchor{}, false, err
	}
	l.disk.ChargeRead(2 * anchorSlotStride / simdisk.SectorSize)
	var best Anchor
	var bestSeq uint64
	found, damaged := false, false
	for slot := 0; slot < 2; slot++ {
		sb := buf[slot*anchorSlotStride:][:anchorSlotStride]
		if sa, _, seq, sok := parseAnchorSlot(sb); sok {
			if !found || seq > bestSeq {
				best, bestSeq = sa, seq
			}
			found = true
		} else if !allZero(sb) {
			damaged = true // a slot was written but does not validate
		}
	}
	if !found {
		if damaged {
			return Anchor{}, false, fmt.Errorf("wal: no valid anchor slot in %q", l.anchor.Name())
		}
		return Anchor{}, false, nil
	}
	if damaged {
		metrics.Recovery.AnchorFallbacks.Inc()
	}
	l.anchorSeq = bestSeq
	l.lastAnchor = best
	l.hasAnchor = true
	return best, true, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Head returns the log head: the smallest LSN that may still hold a
// readable record.
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head < headerSize {
		return headerSize
	}
	return l.head
}

// TruncateHead discards every record with LSN < before and physically
// deletes every sealed segment wholly below the new head. The caller
// must have durably recorded the new head (WriteAnchor) first, so a
// crash never leaves an anchor pointing below a discarded region; a
// crash between segment deletions (FPTruncateCrash) is repaired by the
// next incarnation's re-truncation, which deletes the remaining
// segments idempotently. The anchor's stored directory may briefly
// list deleted segments; Open tolerates missing segments wholly below
// the head, and the next anchor write persists the pruned directory.
//
//mspr:blocking performs (or waits on) disk I/O
func (l *Log) TruncateHead(before LSN) error {
	l.mu.Lock()
	if before > l.durable {
		before = l.durable
	}
	if before <= l.head {
		l.mu.Unlock()
		return nil
	}
	l.head = before
	l.mu.Unlock()
	freed := false
	for {
		l.segMu.RLock()
		var victim *segment
		if len(l.segs) > 1 {
			if s := l.segs[0]; s.end != 0 && s.end <= before {
				victim = s
			}
		}
		l.segMu.RUnlock()
		if victim == nil {
			break
		}
		if _, ok := l.fp().Eval(FPTruncateCrash); ok {
			err := fmt.Errorf("wal: truncation of %q crashed between segment deletions: %w", l.name, failpoint.ErrInjected)
			l.mu.Lock()
			if l.flushErr == nil {
				l.flushErr = err
			}
			l.cond.Broadcast()
			l.mu.Unlock()
			return err
		}
		size := victim.file.Size()
		l.disk.Remove(victim.file.Name())
		l.disk.ChargeWrite(1, 0) // directory metadata update
		l.segMu.Lock()
		if len(l.segs) > 0 && l.segs[0] == victim {
			l.segs = l.segs[1:]
		}
		l.segMu.Unlock()
		freed = true
		metrics.Wal.SegmentsReclaimed.Inc()
		metrics.Wal.SegmentsLive.Add(-1)
		metrics.Wal.LiveLogBytes.Add(-(size - headerSize))
	}
	if freed {
		l.InvalidateCache()
	}
	return nil
}

// SegmentInfo describes one live segment file for observability
// (logdump, tests, the chaos report).
type SegmentInfo struct {
	Index uint64
	Name  string
	Base  LSN   // LSN of the segment's first data byte
	End   LSN   // exclusive sealed end; 0 while the segment is active
	Bytes int64 // current file size, including the one-sector header
}

// Segments returns a snapshot of the live segment table, ascending.
func (l *Log) Segments() []SegmentInfo {
	l.segMu.RLock()
	defer l.segMu.RUnlock()
	out := make([]SegmentInfo, len(l.segs))
	for i, s := range l.segs {
		out[i] = SegmentInfo{s.index, s.file.Name(), s.base, s.end, s.file.Size()}
	}
	return out
}

// Name returns the log's base name on its disk (segment files append a
// numeric suffix to it).
func (l *Log) Name() string { return l.name }

// Close marks the log closed. Buffered (unflushed) records are discarded,
// exactly as a crash would; call Flush first for a clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.flushReq != nil {
		// Wake the group-commit flusher so it observes closed and exits.
		// The channel is buffered: if a wakeup is already pending the
		// flusher is about to run anyway, and it re-checks closed.
		select {
		case l.flushReq <- struct{}{}:
		default:
		}
	}
	return nil
}

// Disk returns the simulated disk backing this log.
func (l *Log) Disk() *simdisk.Disk { return l.disk }
