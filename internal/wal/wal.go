// Package wal implements the single physical log that every MSP shares
// among all of its sessions and shared variables (§1.3, §3).
//
// The log is an append-only sequence of typed records identified by their
// LSN (byte offset). Appends go to a volatile buffer; a flush writes the
// whole buffer as one sector-aligned log block, so "flush up to LSN n" may
// make more than n durable — which is always safe. Because log blocks are
// aligned at sector boundaries and a block's last sector may not be full,
// on average half a sector is wasted per flush (§5.2); the padding is
// charged to the simulated disk and accounted in its statistics.
//
// Batch flushing (§5.5, "group commit") is supported: with a non-zero
// BatchTimeout, a flush request is not executed immediately but after the
// timeout, giving concurrent requests the chance to be satisfied by a
// single larger write.
//
// Crash semantics follow the paper exactly: a crash loses the volatile
// buffer; only flushed records survive. Simulated crashes discard the Log
// object and re-Open the same disk file, then scan to find the largest
// persistent LSN (the recovered state number broadcast in §4.3).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/simdisk"
	"mspr/internal/simtime"
)

// LSN is a log sequence number: the byte offset of a record in the
// physical log. LSN 0 is never a valid record (the first sector of the
// log file holds a header), so the zero value safely means "none".
type LSN int64

// headerSize is the reserved prefix of the log file (one sector).
const headerSize = simdisk.SectorSize

var logMagic = [8]byte{'M', 'S', 'P', 'R', 'L', 'O', 'G', '1'}

// Record framing: [type:1][payloadLen:u32][payload][crc32:u32] where the
// CRC covers type byte and payload. Type 0 marks sector padding.
const frameOverhead = 1 + 4 + 4

// ErrNotFound is returned by ReadRecord for an LSN that does not hold a
// valid record.
var ErrNotFound = errors.New("wal: record not found")

// ErrTruncated is returned when reading below the log head: the record
// was discarded after a checkpoint made it unnecessary (§3.2, §3.4).
var ErrTruncated = errors.New("wal: record truncated (below log head)")

// ErrCorrupt is returned by Scan when it finds an unparsable record with
// valid records *after* it: acknowledged-durable data was damaged in
// place. Unlike a torn tail (which only loses never-acknowledged
// records and is repairable with RepairTail), mid-log corruption cannot
// be repaired without violating the durability contract, so it is
// surfaced as a hard error.
var ErrCorrupt = errors.New("wal: log corrupted")

// Failpoints evaluated by the log layer, armed through the registry
// attached to the backing disk (simdisk.Disk.SetFailpoints).
const (
	// FPFlushCrash crashes a flush after records were appended to the
	// volatile buffer but before the block write — the window between
	// buffer append and sync. Nothing reaches the disk; the flush
	// reports failpoint.ErrInjected and the log wedges (sticky flushErr)
	// until the simulated process restarts.
	FPFlushCrash = "wal.flush.crash"
	// FPAnchorCrash tears an anchor-slot write (a seeded-random prefix
	// of the slot is persisted) and reports failpoint.ErrInjected,
	// exercising the double-buffered anchor fallback path.
	FPAnchorCrash = "wal.anchor.crash"
)

// Config controls a Log's flushing behaviour.
type Config struct {
	// BatchTimeout, if non-zero, delays every flush request by this model
	// duration so that several requests can share one disk write (§5.5).
	// The paper's experiments use 8 ms, roughly one log-write time.
	BatchTimeout time.Duration
	// MaxBuffer bounds the volatile buffer; an Append that would exceed it
	// triggers a flush of the buffered records first. The paper's log
	// blocks vary from 1 to 128 sectors; the default is 128 sectors.
	MaxBuffer int
	// ReadAhead is the size of recovery-time log reads. The paper uses
	// 128 sectors (64 KB) so that one read serves many replayed records.
	ReadAhead int
}

func (c Config) withDefaults() Config {
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = 128 * simdisk.SectorSize
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = 128 * simdisk.SectorSize
	}
	return c
}

// Log is an MSP's physical log. It is safe for concurrent use by the
// MSP's worker threads.
type Log struct {
	cfg    Config
	disk   *simdisk.Disk
	file   *simdisk.File
	anchor *simdisk.File

	mu         sync.Mutex
	head       LSN        // records below head have been discarded
	cond       *sync.Cond // broadcast when durable advances or batch state changes
	buf        []byte     // volatile buffer: records appended since bufStart
	bufStart   LSN        // LSN of buf[0]; always sector-aligned
	nextLSN    LSN        // LSN the next Append will receive
	durable    LSN        // exclusive durable frontier
	pending    []byte     // region being written by an in-flight flush
	pendStart  LSN        // LSN of pending[0]
	spare      []byte     // retired append buffer, reused by the next Append
	flushGen   int64      // increments when a flush completes
	waiters    int        // Flush calls waiting on the durable frontier
	closed     bool
	flushErr   error
	appendSeal bool // reject appends (used only by tests simulating a wedged log)

	// flushReq wakes the persistent group-commit flusher (flusherLoop).
	// Buffered with capacity 1: a send coalesces with an already-pending
	// wakeup, and the channel is never closed (Close signals through it
	// and the loop exits on the closed flag).
	flushReq chan struct{}

	tornFrom int64 // device offset of a torn tail found by the last Scan (0 = none)

	flushMu sync.Mutex // serializes physical flushes
	block   []byte     // flush scratch: the padded sector-aligned write block (guarded by flushMu)

	anchorMu  sync.Mutex // guards anchorSeq and anchor-slot writes
	anchorSeq uint64     // sequence number of the newest valid anchor slot

	readMu     sync.Mutex       // guards the read-ahead cache
	cache      map[int64][]byte // read-ahead blocks by device offset
	cacheOrder []int64          // FIFO eviction order
}

// readCacheBlocks bounds the read-ahead cache (per log). Parallel session
// recovery (§4.3) interleaves reads from several log regions; a handful
// of cached blocks keeps each replaying session's locality intact.
const readCacheBlocks = 8

// Open opens (creating if necessary) the named log on disk. After a crash,
// Open alone does not determine the durable frontier precisely; the
// recovery scan (Scan) reports the last valid record so the caller can
// learn the recovered state number.
func Open(disk *simdisk.Disk, name string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	l := &Log{
		cfg:    cfg,
		disk:   disk,
		file:   disk.OpenFile(name),
		anchor: disk.OpenFile(name + ".anchor"),
		cache:  make(map[int64][]byte),
	}
	l.cond = sync.NewCond(&l.mu)
	size := l.file.Size()
	switch {
	case size == 0:
		hdr := make([]byte, headerSize)
		copy(hdr, logMagic[:])
		if _, err := l.file.WriteAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
		size = headerSize
	case l.file.DiscardedPrefix() >= headerSize:
		// Head truncation discarded the header sector along with the dead
		// records; the anchor (validated separately) vouches for the log.
		l.head = LSN(l.file.DiscardedPrefix())
	default:
		hdr := make([]byte, len(logMagic))
		if _, err := l.file.ReadAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("wal: reading header: %w", err)
		}
		if [8]byte(hdr) != logMagic {
			return nil, fmt.Errorf("wal: %q is not a log file", name)
		}
	}
	end := alignUp(size)
	l.bufStart = LSN(end)
	l.nextLSN = LSN(end)
	l.durable = LSN(end)
	// Learn the newest anchor-slot sequence number so the first
	// WriteAnchor of this incarnation keeps alternating slots. This is a
	// mount-time peek, not a modelled I/O; ReadAnchor charges the read.
	for slot := int64(0); slot < 2; slot++ {
		buf := make([]byte, anchorSlotLen)
		if _, err := l.anchor.ReadAt(buf, slot*simdisk.SectorSize); err != nil {
			return nil, fmt.Errorf("wal: reading anchor slot: %w", err)
		}
		if _, seq, ok := parseAnchorSlot(buf); ok && seq > l.anchorSeq {
			l.anchorSeq = seq
		}
	}
	if cfg.BatchTimeout > 0 {
		l.flushReq = make(chan struct{}, 1)
		go l.flusherLoop()
	}
	return l, nil
}

// fp returns the fault-injection registry shared through the backing
// disk; nil (injection off) is safe to Eval.
func (l *Log) fp() *failpoint.Registry { return l.disk.Failpoints() }

func alignUp(n int64) int64 {
	const s = simdisk.SectorSize
	return (n + s - 1) / s * s
}

// Append adds a record to the volatile buffer and returns its LSN. The
// record is not durable until a Flush covering its LSN completes.
func (l *Log) Append(typ byte, payload []byte) (LSN, error) {
	if typ == 0 {
		return 0, errors.New("wal: record type 0 is reserved for padding")
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log closed")
	}
	if len(l.buf)+len(payload)+frameOverhead > l.cfg.MaxBuffer && len(l.buf) > 0 {
		// Buffer full: force a flush of what we have, then append.
		upTo := l.nextLSN - 1
		l.mu.Unlock()
		if err := l.flushNow(upTo); err != nil {
			return 0, err
		}
		l.mu.Lock()
	}
	lsn := l.nextLSN
	if l.buf == nil && l.spare != nil {
		// Reuse the buffer retired by the last completed flush instead of
		// growing a fresh one from nil.
		l.buf = l.spare
		l.spare = nil
	}
	l.buf = appendFrame(l.buf, typ, payload)
	l.nextLSN += LSN(len(payload) + frameOverhead)
	l.mu.Unlock()
	return lsn, nil
}

func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	// crc32.Update avoids allocating a hasher per record on the append
	// hot path (the type-byte slice stays on the stack).
	crc := crc32.Update(0, crc32.IEEETable, []byte{typ})
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// Durable returns the exclusive durable frontier: every record with
// LSN < Durable() survives a crash.
func (l *Log) Durable() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Next returns the LSN the next Append will be assigned.
func (l *Log) Next() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastAppended returns the LSN of the most recently appended record, or 0
// if nothing has been appended since the log was opened.
func (l *Log) LastAppended() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN == l.bufStart && len(l.pending) == 0 {
		return 0
	}
	return l.nextLSN - 1 // any LSN within the last record identifies it for flushing
}

// Flush makes every record with LSN ≤ upTo durable. With batch flushing
// enabled the request is handed to the persistent group-commit flusher so
// concurrent requests share a single write; otherwise the flush is issued
// immediately on the caller.
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	if upTo < l.durable {
		l.mu.Unlock()
		return nil
	}
	if l.cfg.BatchTimeout <= 0 {
		l.mu.Unlock()
		return l.flushNow(upTo)
	}
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed during flush")
	}
	// Group commit: register as a waiter, wake the flusher, and wait until
	// the durable frontier covers us (or the log dies under us). The
	// flusher is a long-lived goroutine, so a request arriving while a
	// flush is in flight is picked up as soon as that flush completes —
	// there is no re-arm window during which a waiter can oversleep.
	l.waiters++
	select {
	case l.flushReq <- struct{}{}:
	default: // a wakeup is already pending; it will cover us
	}
	metrics.Wal.GroupCommitWaits.Inc()
	for l.durable <= upTo && l.flushErr == nil && !l.closed {
		l.cond.Wait()
	}
	l.waiters--
	err := l.flushErr
	closed := l.closed && l.durable <= upTo
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return errors.New("wal: log closed during flush")
	}
	return nil
}

// flusherLoop is the persistent group-commit flusher: one long-lived
// goroutine per log that serves every batched Flush. The batch window is
// adaptive (§5.5): a lone waiter is flushed immediately (an idle system
// should not pay the window as latency), while concurrent waiters hold
// the window open so their records share one sector-aligned write. Errors
// reach waiters through the sticky flushErr set inside flushNow; Close
// wakes the loop through flushReq and it exits on the closed flag.
func (l *Log) flusherLoop() {
	scaled := time.Duration(float64(l.cfg.BatchTimeout) * l.disk.Model().TimeScale)
	if scaled <= 0 {
		// Batching is a behavioural delay, not a modelled disk latency:
		// keep a small window even at TimeScale 0 so requests can combine.
		scaled = 100 * time.Microsecond
	}
	// loaded records that the previous flush left waiters behind (or more
	// arrived during it): the burst is still going, so the next batch
	// holds the window open even if only one waiter has registered yet.
	loaded := false
	for range l.flushReq {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		contended := loaded || l.waiters > 1
		l.mu.Unlock()
		if contended {
			metrics.Wal.GroupCommitWindows.Inc()
			simtime.Sleep(scaled)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		upTo := l.nextLSN - 1
		served := int64(l.waiters)
		l.mu.Unlock()
		metrics.Wal.GroupCommitBatches.Inc()
		metrics.Wal.GroupCommitBatchWaiters.Add(served)
		// flushNow's error is delivered to waiters via the sticky flushErr
		// (set and broadcast inside); the loop keeps draining wakeups so
		// late waiters observe the error instead of hanging.
		//mspr:walerr error is sticky in flushErr and observed by every waiter
		_ = l.flushNow(upTo)
		l.mu.Lock()
		loaded = l.waiters > 0
		l.mu.Unlock()
	}
}

// flushNow writes the buffered records (all of them, padded to a sector
// boundary) and advances the durable frontier. Concurrent appends proceed
// while the simulated write is in flight; their records form the next
// block.
func (l *Log) flushNow(upTo LSN) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("wal: log closed")
	}
	if l.flushErr != nil {
		// A previous flush failed; the log is wedged until the process
		// restarts and recovers, exactly like a dead log device.
		err := l.flushErr
		l.mu.Unlock()
		return err
	}
	if upTo < l.durable || len(l.buf) == 0 {
		// A racing flush already covered this request.
		l.mu.Unlock()
		return nil
	}
	if _, ok := l.fp().Eval(FPFlushCrash); ok {
		// Crash between buffer append and sync: nothing reaches the disk
		// and no caller was ever told the records were durable. The error
		// is sticky, like a real dead process's log.
		err := fmt.Errorf("wal: flush of %q crashed before write: %w", l.file.Name(), failpoint.ErrInjected)
		l.flushErr = err
		l.cond.Broadcast()
		l.mu.Unlock()
		return err
	}
	data := l.buf
	start := l.bufStart
	padded := alignUp(int64(start) + int64(len(data)))
	waste := int(padded - int64(start) - int64(len(data)))
	// The write block is scratch reused across flushes (flushMu is held
	// throughout): the disk copies it during WriteAt, so only the pad
	// region needs explicit zeroing.
	need := int(padded - int64(start))
	if cap(l.block) < need {
		l.block = make([]byte, need)
	}
	block := l.block[:need]
	for i := copy(block, data); i < need; i++ {
		block[i] = 0
	}
	l.pending = data
	l.pendStart = start
	l.buf = nil
	l.bufStart = LSN(padded)
	l.nextLSN = LSN(padded)
	l.mu.Unlock()

	var werr error
	for attempt := 0; ; attempt++ {
		if _, werr = l.file.WriteAt(block, int64(start)); werr == nil {
			break
		}
		if attempt >= 2 || !errors.Is(werr, simdisk.ErrTransientWrite) {
			break
		}
		metrics.Recovery.TransientWriteRetries.Inc()
	}
	if werr != nil {
		l.mu.Lock()
		l.flushErr = werr
		l.cond.Broadcast()
		l.mu.Unlock()
		return werr
	}
	sectors := len(block) / simdisk.SectorSize
	l.disk.ChargeWrite(sectors, waste)

	l.mu.Lock()
	l.durable = LSN(padded)
	l.pending = nil
	// The retired append buffer becomes the spare: no reader can reach it
	// once pending is cleared (ReadRecord copies payloads under l.mu).
	l.spare = data[:0]
	l.flushGen++
	l.cond.Broadcast()
	l.mu.Unlock()
	// Cached read-ahead blocks covering the just-written region hold
	// stale zeros (read before this flush); drop them.
	l.readMu.Lock()
	ra := int64(l.cfg.ReadAhead)
	kept := l.cacheOrder[:0]
	for _, base := range l.cacheOrder {
		if base+ra > int64(start) {
			delete(l.cache, base)
		} else {
			kept = append(kept, base)
		}
	}
	l.cacheOrder = kept
	l.readMu.Unlock()
	return nil
}

// ReadRecord returns the record at lsn. Records still in the volatile
// buffer are served from memory; durable records are read through the
// 64 KB read-ahead cache (ascending replay reads therefore amortize to
// one disk read per 128 sectors, as in §5.4).
func (l *Log) ReadRecord(lsn LSN) (typ byte, payload []byte, err error) {
	if lsn < headerSize {
		return 0, nil, ErrNotFound
	}
	l.mu.Lock()
	if lsn < l.head {
		l.mu.Unlock()
		return 0, nil, ErrTruncated
	}
	if lsn >= l.bufStart {
		off := int(lsn - l.bufStart)
		if off >= len(l.buf) {
			l.mu.Unlock()
			return 0, nil, ErrNotFound
		}
		typ, payload, _, err = parseFrame(l.buf[off:])
		if err == nil {
			payload = append([]byte(nil), payload...)
		}
		l.mu.Unlock()
		return typ, payload, err
	}
	if lsn >= l.pendStart && l.pending != nil {
		off := int(lsn - l.pendStart)
		if off < len(l.pending) {
			typ, payload, _, err = parseFrame(l.pending[off:])
			if err == nil {
				payload = append([]byte(nil), payload...)
			}
			l.mu.Unlock()
			return typ, payload, err
		}
	}
	l.mu.Unlock()
	return l.readDurable(lsn)
}

// readDurable reads a record from the device via the read-ahead cache.
func (l *Log) readDurable(lsn LSN) (byte, []byte, error) {
	hdr, err := l.cachedBytes(int64(lsn), 5)
	if err != nil {
		return 0, nil, err
	}
	typ := hdr[0]
	if typ == 0 {
		return 0, nil, ErrNotFound
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	frame, err := l.cachedBytes(int64(lsn), int(n)+frameOverhead)
	if err != nil {
		return 0, nil, err
	}
	typ, payload, _, err := parseFrame(frame)
	if err != nil {
		return 0, nil, err
	}
	return typ, append([]byte(nil), payload...), nil
}

// cachedBytes returns n bytes starting at device offset off, reading
// through the read-ahead cache.
func (l *Log) cachedBytes(off int64, n int) ([]byte, error) {
	l.readMu.Lock()
	defer l.readMu.Unlock()
	out := make([]byte, 0, n)
	ra := int64(l.cfg.ReadAhead)
	for n > 0 {
		base := off / ra * ra
		block, ok := l.cache[base]
		if !ok {
			buf := make([]byte, ra)
			if _, err := l.file.ReadAt(buf, base); err != nil {
				return nil, err
			}
			l.disk.ChargeRead(l.cfg.ReadAhead / simdisk.SectorSize)
			if len(l.cacheOrder) >= readCacheBlocks {
				evict := l.cacheOrder[0]
				l.cacheOrder = l.cacheOrder[1:]
				delete(l.cache, evict)
			}
			l.cache[base] = buf
			l.cacheOrder = append(l.cacheOrder, base)
			block = buf
		}
		i := int(off - base)
		take := len(block) - i
		if take > n {
			take = n
		}
		out = append(out, block[i:i+take]...)
		off += int64(take)
		n -= take
	}
	return out, nil
}

// InvalidateCache drops the read-ahead cache. Tests use it to force
// re-reads; recovery calls it after reopening a log.
func (l *Log) InvalidateCache() {
	l.readMu.Lock()
	l.cache = make(map[int64][]byte)
	l.cacheOrder = nil
	l.readMu.Unlock()
}

func parseFrame(b []byte) (typ byte, payload []byte, size int, err error) {
	if len(b) < frameOverhead {
		return 0, nil, 0, ErrNotFound
	}
	typ = b[0]
	if typ == 0 {
		return 0, nil, 0, ErrNotFound
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	if len(b) < frameOverhead+n {
		return 0, nil, 0, ErrNotFound
	}
	payload = b[5 : 5+n]
	want := binary.LittleEndian.Uint32(b[5+n : 5+n+4])
	crc := crc32.Update(0, crc32.IEEETable, b[:1])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != want {
		return 0, nil, 0, fmt.Errorf("wal: bad crc at record")
	}
	return typ, payload, frameOverhead + n, nil
}

// Scan calls fn for every valid durable record with LSN ≥ from, in log
// order, and returns the LSN of the last valid record seen (0 if none).
// It charges sequential 64 KB reads, as the analysis scan of §4.3 does.
//
// An unparsable frame ends the scan one of two ways. If no valid record
// follows it, the damage is a torn tail — only records that were never
// acknowledged durable are lost. Scan records the tear point (see
// RepairTail) and returns normally; Scan itself never mutates the log,
// so read-only consumers (logdump) stay safe. If valid records *do*
// follow, acknowledged data was damaged in place and Scan returns
// ErrCorrupt.
func (l *Log) Scan(from LSN, fn func(lsn LSN, typ byte, payload []byte) error) (last LSN, err error) {
	if from < headerSize {
		from = headerSize
	}
	if h := l.Head(); from < h {
		from = h
	}
	l.mu.Lock()
	l.tornFrom = 0
	l.mu.Unlock()
	end := l.Durable()
	off := int64(from)
	for off < int64(end) {
		hdr, err := l.cachedBytes(off, 1)
		if err != nil {
			return last, err
		}
		if hdr[0] == 0 {
			// Padding: skip to the next sector boundary.
			next := alignUp(off + 1)
			if next == off {
				next = off + simdisk.SectorSize
			}
			off = next
			continue
		}
		lenb, err := l.cachedBytes(off, 5)
		if err != nil {
			return last, err
		}
		n := int(binary.LittleEndian.Uint32(lenb[1:5]))
		bad := int64(n) > int64(end)-off // length field runs past the durable end
		var typ byte
		var payload []byte
		var size int
		if !bad {
			frame, err := l.cachedBytes(off, n+frameOverhead)
			if err != nil {
				return last, err
			}
			var perr error
			typ, payload, size, perr = parseFrame(frame)
			bad = perr != nil
		}
		if bad {
			valid, perr := l.probeValidAfter(off, int64(end))
			if perr != nil {
				return last, perr
			}
			if valid {
				metrics.Recovery.MidLogCorruptions.Inc()
				return last, fmt.Errorf("wal: unparsable record at LSN %d with valid records after it: %w", off, ErrCorrupt)
			}
			l.mu.Lock()
			l.tornFrom = off
			l.mu.Unlock()
			break // torn tail: only never-acknowledged records lost
		}
		if fn != nil {
			if err := fn(LSN(off), typ, payload); err != nil {
				return last, err
			}
		}
		last = LSN(off)
		off += int64(size)
	}
	return last, nil
}

// probeValidAfter reports whether any fully valid record starts at a
// sector boundary after off. Flush blocks always start at sector
// boundaries, so a later block's first record is found here; garbage
// inside the damaged block itself fails the CRC and is skipped.
func (l *Log) probeValidAfter(off, end int64) (bool, error) {
	for p := alignUp(off + 1); p < end; p += simdisk.SectorSize {
		hdr, err := l.cachedBytes(p, 5)
		if err != nil {
			return false, err
		}
		if hdr[0] == 0 {
			continue
		}
		n := int(binary.LittleEndian.Uint32(hdr[1:5]))
		if int64(n) > end-p {
			continue
		}
		frame, err := l.cachedBytes(p, n+frameOverhead)
		if err != nil {
			return false, err
		}
		if _, _, _, perr := parseFrame(frame); perr == nil {
			return true, nil
		}
	}
	return false, nil
}

// RepairTail truncates the torn tail found by the most recent Scan, if
// any, and reports whether it did. The append and durable frontiers are
// pulled back to the tear's sector; without this, Open's frontier
// (placed past the garbage by file size) would strand every later
// append behind the unparsable region, invisible to all future scans.
// Recovery must call it after its analysis scan and before appending.
func (l *Log) RepairTail() bool {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	off := l.tornFrom
	l.tornFrom = 0
	if off == 0 || len(l.buf) > 0 || l.pending != nil {
		// Nothing torn, or appends already landed past the tear — the
		// caller broke the scan-then-repair protocol; refuse.
		l.mu.Unlock()
		return false
	}
	aligned := alignUp(off)
	l.bufStart = LSN(aligned)
	l.nextLSN = LSN(aligned)
	if l.durable > LSN(aligned) {
		l.durable = LSN(aligned)
	}
	l.mu.Unlock()
	//mspr:walerr best-effort repair: a failed truncate leaves the torn tail for the next scan to re-detect
	l.file.Truncate(off) // the [off, aligned) gap reads as zeros: padding
	l.InvalidateCache()
	metrics.Recovery.CorruptTailTruncations.Inc()
	return true
}

// Anchor is the content of the log anchor block (§3.4): the location of
// the most recent MSP checkpoint, the MSP's current epoch number, and
// the log head (records below it have been discarded).
type Anchor struct {
	Epoch         uint32
	CheckpointLSN LSN
	Head          LSN
}

// The anchor file holds two sector-sized slots, written alternately and
// stamped with a monotone sequence number. A crash tearing the slot
// being written leaves the other slot — holding the previous anchor —
// intact, so an anchor update is never a single point of failure.
// Slot layout: [magic:4][seq:u64][epoch:u32][ckptLSN:u64][head:u64]
// [crc32 over the first 32 bytes].
var anchorMagic = [4]byte{'A', 'N', 'C', '2'}

const anchorSlotLen = 4 + 8 + 4 + 8 + 8 + 4

func encodeAnchorSlot(a Anchor, seq uint64) []byte {
	buf := make([]byte, simdisk.SectorSize)
	copy(buf, anchorMagic[:])
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[12:], a.Epoch)
	binary.LittleEndian.PutUint64(buf[16:], uint64(a.CheckpointLSN))
	binary.LittleEndian.PutUint64(buf[24:], uint64(a.Head))
	binary.LittleEndian.PutUint32(buf[32:], crc32.ChecksumIEEE(buf[:32]))
	return buf
}

func parseAnchorSlot(buf []byte) (a Anchor, seq uint64, ok bool) {
	if len(buf) < anchorSlotLen || [4]byte(buf[:4]) != anchorMagic {
		return Anchor{}, 0, false
	}
	if crc32.ChecksumIEEE(buf[:32]) != binary.LittleEndian.Uint32(buf[32:]) {
		return Anchor{}, 0, false
	}
	seq = binary.LittleEndian.Uint64(buf[4:])
	a.Epoch = binary.LittleEndian.Uint32(buf[12:])
	a.CheckpointLSN = LSN(binary.LittleEndian.Uint64(buf[16:]))
	a.Head = LSN(binary.LittleEndian.Uint64(buf[24:]))
	return a, seq, true
}

// WriteAnchor durably records the anchor, charging a one-sector write.
// The write goes to the slot NOT holding the newest valid anchor, so
// the previous anchor survives until the new one is fully on disk.
func (l *Log) WriteAnchor(a Anchor) error {
	l.anchorMu.Lock()
	defer l.anchorMu.Unlock()
	seq := l.anchorSeq + 1
	buf := encodeAnchorSlot(a, seq)
	off := int64(seq%2) * simdisk.SectorSize
	if hit, ok := l.fp().Eval(FPAnchorCrash); ok {
		// Tear the slot write: persist a prefix long enough to damage the
		// stored sequence number (so the slot cannot masquerade as its
		// old self) but never the whole slot. Arg pins the prefix length.
		keep := 5 + int(hit.R%int64(anchorSlotLen-5))
		if hit.Arg > 0 && hit.Arg < int64(anchorSlotLen) {
			keep = int(hit.Arg)
		}
		l.anchor.WriteAt(buf[:keep], off) //mspr:walerr deliberately torn injected write; ErrInjected is returned below regardless
		l.disk.ChargeWrite(1, 0)
		return fmt.Errorf("wal: anchor write of %q torn at %d bytes: %w", l.anchor.Name(), keep, failpoint.ErrInjected)
	}
	if _, err := l.anchor.WriteAt(buf, off); err != nil {
		return err
	}
	l.disk.ChargeWrite(1, 0)
	l.anchorSeq = seq
	return nil
}

// ReadAnchor returns the newest valid stored anchor, or ok=false if none
// was ever written. When the newest slot is torn or corrupt but the
// other slot holds a valid (older) anchor, that anchor is returned and
// the fallback is counted; recovery then proceeds from the previous
// checkpoint, which is always safe (the log below it was not yet
// discarded — TruncateHead runs only after the anchor write succeeds).
func (l *Log) ReadAnchor() (a Anchor, ok bool, err error) {
	l.anchorMu.Lock()
	defer l.anchorMu.Unlock()
	if l.anchor.Size() == 0 {
		return Anchor{}, false, nil
	}
	buf := make([]byte, 2*simdisk.SectorSize)
	if _, err := l.anchor.ReadAt(buf, 0); err != nil {
		return Anchor{}, false, err
	}
	l.disk.ChargeRead(2)
	var best Anchor
	var bestSeq uint64
	found, damaged := false, false
	for slot := 0; slot < 2; slot++ {
		sb := buf[slot*simdisk.SectorSize:][:anchorSlotLen]
		if sa, seq, sok := parseAnchorSlot(sb); sok {
			if !found || seq > bestSeq {
				best, bestSeq = sa, seq
			}
			found = true
		} else if !allZero(sb) {
			damaged = true // a slot was written but does not validate
		}
	}
	if !found {
		if damaged {
			return Anchor{}, false, fmt.Errorf("wal: no valid anchor slot in %q", l.anchor.Name())
		}
		return Anchor{}, false, nil
	}
	if damaged {
		metrics.Recovery.AnchorFallbacks.Inc()
	}
	l.anchorSeq = bestSeq
	return best, true, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Head returns the log head: the smallest LSN that may still hold a
// readable record.
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head < headerSize {
		return headerSize
	}
	return l.head
}

// TruncateHead discards every record with LSN < before. The caller must
// have durably recorded the new head (WriteAnchor) first, so a crash
// never leaves an anchor pointing below a discarded region. The freed
// prefix's memory is released (whole sectors only).
func (l *Log) TruncateHead(before LSN) {
	l.mu.Lock()
	if before > l.durable {
		before = l.durable
	}
	if before <= l.head {
		l.mu.Unlock()
		return
	}
	l.head = before
	l.mu.Unlock()
	// Free whole sectors below the head; the head's own sector may hold
	// the head record's first bytes, keep it.
	l.file.Discard(int64(before) / simdisk.SectorSize * simdisk.SectorSize)
	l.InvalidateCache()
}

// Close marks the log closed. Buffered (unflushed) records are discarded,
// exactly as a crash would; call Flush first for a clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.flushReq != nil {
		// Wake the group-commit flusher so it observes closed and exits.
		// The channel is buffered: if a wakeup is already pending the
		// flusher is about to run anyway, and it re-checks closed.
		select {
		case l.flushReq <- struct{}{}:
		default:
		}
	}
	return nil
}

// Disk returns the simulated disk backing this log.
func (l *Log) Disk() *simdisk.Disk { return l.disk }
