package wal

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/simdisk"
)

// collectFlushErrs runs n concurrent Append+Flush pairs against l and
// returns their Flush results, failing the test if any of them hangs
// past the deadline.
func collectFlushErrs(t *testing.T, l *Log, n int, barrier *sync.WaitGroup) []error {
	t.Helper()
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			lsn, err := l.Append(1, []byte{byte(i)})
			if err != nil {
				errCh <- err
				return
			}
			if barrier != nil {
				barrier.Wait()
			}
			errCh <- l.Flush(lsn)
		}(i)
	}
	if barrier != nil {
		barrier.Done()
	}
	errs := make([]error, 0, n)
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-errCh:
			errs = append(errs, err)
		case <-deadline:
			t.Fatalf("flush waiter hung: %d of %d never returned", n-i, n)
		}
	}
	return errs
}

// TestGroupCommitCloseDuringWait: closing the log while batched Flush
// calls are queued must wake every waiter. Each waiter either had its
// records made durable before the close (nil) or gets the closed error —
// never a hang. Regression: with the per-batch armed flusher goroutine,
// a waiter arriving after the batch timer was disarmed but before the
// flush completed could sleep an extra window behind flushMu; a close in
// that window raced with the error/closed delivery.
func TestGroupCommitCloseDuringWait(t *testing.T) {
	for round := 0; round < 20; round++ {
		l, _ := newTestLog(t, Config{BatchTimeout: 8 * time.Millisecond})
		var barrier sync.WaitGroup
		barrier.Add(1)
		done := make(chan []error, 1)
		go func() {
			done <- collectFlushErrs(t, l, 16, &barrier)
		}()
		// Close while the waiters race into the batched-flush path.
		l.Close()
		for _, err := range <-done {
			if err == nil {
				continue
			}
			if !strings.Contains(err.Error(), "closed") {
				t.Fatalf("waiter got %v, want nil or a closed error", err)
			}
		}
	}
}

// TestGroupCommitErrorReachesAllWaiters: when the physical flush dies,
// every queued waiter — including waiters that arrive after the error is
// already sticky — gets the error instead of waiting forever.
func TestGroupCommitErrorReachesAllWaiters(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	fp := failpoint.New(3)
	disk.SetFailpoints(fp)
	l, err := Open(disk, "log", Config{BatchTimeout: 8 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fp.Enable(FPFlushCrash, failpoint.Arg(0))
	var barrier sync.WaitGroup
	barrier.Add(1)
	for _, err := range collectFlushErrs(t, l, 16, &barrier) {
		if !failpoint.IsInjected(err) {
			t.Fatalf("waiter got %v, want the injected flush error", err)
		}
	}
	// A straggler arriving long after the error is sticky must see it
	// immediately, not re-arm a batch that never completes.
	lsn, err := l.Append(1, []byte("late"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn); !failpoint.IsInjected(err) {
		t.Fatalf("late waiter got %v, want the sticky flush error", err)
	}
	l.Close()
}
