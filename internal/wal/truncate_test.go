package wal

import (
	"errors"
	"fmt"
	"testing"

	"mspr/internal/simdisk"
)

func fillLog(t *testing.T, l *Log, n int) []LSN {
	t.Helper()
	lsns := make([]LSN, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(1, []byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	if err := l.Flush(lsns[n-1]); err != nil {
		t.Fatal(err)
	}
	return lsns
}

func TestTruncateHeadHidesOldRecords(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	lsns := fillLog(t, l, 100)
	head := lsns[40]
	l.TruncateHead(head)
	if l.Head() != head {
		t.Fatalf("head = %d, want %d", l.Head(), head)
	}
	if _, _, err := l.ReadRecord(lsns[10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read below head: %v", err)
	}
	if _, payload, err := l.ReadRecord(lsns[40]); err != nil || string(payload) != "record-0040" {
		t.Fatalf("read at head: (%q, %v)", payload, err)
	}
	if _, payload, err := l.ReadRecord(lsns[99]); err != nil || string(payload) != "record-0099" {
		t.Fatalf("read above head: (%q, %v)", payload, err)
	}
}

func TestTruncateHeadScanStartsAtHead(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	lsns := fillLog(t, l, 50)
	l.TruncateHead(lsns[20])
	var got []string
	if _, err := l.Scan(0, func(lsn LSN, typ byte, payload []byte) error {
		got = append(got, string(payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 || got[0] != "record-0020" {
		t.Fatalf("scan after truncation: %d records, first %q", len(got), got[0])
	}
}

func TestTruncateHeadFreesMemory(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, err := Open(disk, "log", Config{SegmentSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var last LSN
	for i := 0; i < 100; i++ {
		last, _ = l.Append(1, make([]byte, 4096))
		_ = l.Flush(last)
	}
	before := len(l.Segments())
	if before < 2 {
		t.Fatalf("only %d segments; rotation never happened", before)
	}
	if err := l.TruncateHead(last); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if len(segs) >= before {
		t.Fatalf("truncation deleted no segments (%d before, %d after)", before, len(segs))
	}
	if segs[0].Base > last {
		t.Fatalf("first live segment starts at %d, beyond head %d", segs[0].Base, last)
	}
	// The deleted segment files are really gone from the disk.
	if got := len(disk.List("log.0")); got != len(segs) {
		t.Fatalf("%d segment files on disk, want %d", got, len(segs))
	}
}

func TestTruncateHeadIsMonotonic(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	lsns := fillLog(t, l, 30)
	l.TruncateHead(lsns[20])
	l.TruncateHead(lsns[5]) // regression attempt: ignored
	if l.Head() != lsns[20] {
		t.Fatalf("head regressed to %d", l.Head())
	}
}

func TestTruncateHeadCappedAtDurable(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	lsns := fillLog(t, l, 10)
	volatileLSN, _ := l.Append(1, []byte("unflushed"))
	l.TruncateHead(volatileLSN + 10_000)
	if l.Head() > l.Durable() {
		t.Fatalf("head %d beyond durable %d", l.Head(), l.Durable())
	}
	_ = lsns
}

func TestReopenAfterTruncation(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	l, _ := Open(disk, "log", Config{})
	var lsns []LSN
	for i := 0; i < 60; i++ {
		lsn, _ := l.Append(1, []byte(fmt.Sprintf("r%d", i)))
		lsns = append(lsns, lsn)
	}
	_ = l.Flush(lsns[59])
	_ = l.WriteAnchor(Anchor{Epoch: 1, CheckpointLSN: lsns[30], Head: lsns[30]})
	l.TruncateHead(lsns[30])
	l.Close()

	l2, err := Open(disk, "log", Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, ok, err := l2.ReadAnchor()
	if err != nil || !ok || a.Head != lsns[30] {
		t.Fatalf("anchor after reopen: %+v %v %v", a, ok, err)
	}
	l2.TruncateHead(a.Head)
	count := 0
	last, err := l2.Scan(a.Head, func(LSN, byte, []byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 30 || last != lsns[59] {
		t.Fatalf("post-reopen scan: %d records, last %d (want 30, %d)", count, last, lsns[59])
	}
	// New appends continue beyond the old tail.
	lsn, err := l2.Append(2, []byte("new"))
	if err != nil || lsn <= lsns[59] {
		t.Fatalf("append after reopen: %d, %v", lsn, err)
	}
}

func TestAnchorHeadRoundTrip(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	want := Anchor{Epoch: 3, CheckpointLSN: 777, Head: 512}
	if err := l.WriteAnchor(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.ReadAnchor()
	if err != nil || !ok || got != want {
		t.Fatalf("anchor round trip: %+v %v %v", got, ok, err)
	}
}
