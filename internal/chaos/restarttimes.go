package chaos

import (
	"sync"
	"time"
)

// RestartTimes aggregates crash-recovery durations observed by a storm
// harness: each successful restart's wall-clock time from crash to a
// ready incarnation. The harness measures the durations itself (this
// package never reads the clock) and feeds them through Observe; the
// end-of-storm report prints the Summary, making recovery time a
// first-class bounded quantity next to log size.
type RestartTimes struct {
	mu    sync.Mutex
	n     int
	total time.Duration
	max   time.Duration
}

// Observe records one restart's duration.
func (r *RestartTimes) Observe(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	r.total += d
	if d > r.max {
		r.max = d
	}
}

// Summary returns the count, mean and maximum of the observed restarts;
// zeroes if none were recorded.
func (r *RestartTimes) Summary() (n int, avg, max time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0, 0, 0
	}
	return r.n, r.total / time.Duration(r.n), r.max
}
