package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestScheduleDeterminism is the reproducibility acceptance check: the
// same seed over the same workload yields a byte-identical fault
// schedule across independent runs, and replaying the recorded trace
// fires the identical sequence again.
func TestScheduleDeterminism(t *testing.T) {
	storm := func() Report {
		ts := newTestSystem(t)
		defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
		defer ts.client.Close()
		var faultMu sync.Mutex
		faults := []Fault{
			RestartFault("crash-a", &faultMu, ts.restart),
			RestartFault("crash-b", &faultMu, ts.restart),
		}
		return Run(ts.workload(3, 20), faults, Options{Seed: 42, FaultEvery: 10})
	}
	r1, r2 := storm(), storm()
	if r1.Failed() || r2.Failed() {
		t.Fatalf("storms failed: %v / %v", r1.Errors, r2.Errors)
	}
	if len(r1.Schedule) == 0 {
		t.Fatal("storm recorded no schedule")
	}
	if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", r1.Schedule, r2.Schedule)
	}
	if r1.DroppedTriggers != 0 {
		// Determinism only holds when nothing was dropped; this workload
		// is small enough that it never is.
		t.Fatalf("dropped %d triggers", r1.DroppedTriggers)
	}
	if r1.Seed != 42 {
		t.Fatalf("report seed = %d, want 42", r1.Seed)
	}

	// Round-trip through the JSON trace and replay: identical schedule.
	tr := NewTrace(Workload{Actors: 3, OpsPerActor: 20}, Options{Seed: 42, FaultEvery: 10}, r1)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Fatalf("trace round trip mismatch:\n%+v\n%+v", tr, back)
	}
	ts := newTestSystem(t)
	defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
	defer ts.client.Close()
	var faultMu sync.Mutex
	faults := []Fault{
		RestartFault("crash-a", &faultMu, ts.restart),
		RestartFault("crash-b", &faultMu, ts.restart),
	}
	r3 := Replay(ts.workload(3, 20), faults, back)
	if r3.Failed() {
		t.Fatalf("replay failed: %v", r3.Errors)
	}
	if !reflect.DeepEqual(r3.Schedule, r1.Schedule) {
		t.Fatalf("replay fired a different schedule:\n%v\n%v", r3.Schedule, r1.Schedule)
	}
}

// TestFaultErrorContinues pins the fix for the silent-stop bug: a fault
// whose Fire errors used to shut down all further injection without a
// trace. Now the error is recorded and the storm keeps firing.
func TestFaultErrorContinues(t *testing.T) {
	w := Workload{
		Actors:      1,
		OpsPerActor: 40,
		NewActor: func(int) (func(int) error, func()) {
			return func(int) error { return nil }, nil
		},
	}
	faults := []Fault{
		{Name: "sick", Fire: func() error { return errors.New("injector broken") }},
		{Name: "good", Fire: func() error { return nil }},
	}
	rep := Run(w, faults, Options{Seed: 5, FaultEvery: 1})
	if rep.FaultErrors == 0 {
		t.Fatal("sick fault never drawn — pick another seed")
	}
	if rep.FaultsFired["good"] == 0 {
		t.Fatal("good fault never drawn — pick another seed")
	}
	// The load is trivially fast, so the drain guarantees every trigger
	// is consumed: the schedule must cover all 40, past every error.
	if len(rep.Schedule) != 40 {
		t.Fatalf("schedule has %d attempts, want 40 (injection stopped early)", len(rep.Schedule))
	}
	firstSick := -1
	for i, name := range rep.Schedule {
		if name == "sick" {
			firstSick = i
			break
		}
	}
	goodAfter := false
	for _, name := range rep.Schedule[firstSick+1:] {
		if name == "good" {
			goodAfter = true
			break
		}
	}
	if !goodAfter {
		t.Fatalf("no fault fired after the first error; schedule: %v", rep.Schedule)
	}
	if !rep.Failed() {
		t.Fatal("fault errors must still fail the storm")
	}
	if got := fmt.Sprint(rep); !bytes.Contains([]byte(got), []byte("fault errors")) {
		t.Fatalf("report does not surface fault errors: %s", got)
	}
}

// TestDroppedTriggersCounted makes the fast-workload trigger drop
// visible: while one Fire blocks, the workload races far ahead and the
// overflow must land in the report instead of vanishing.
func TestDroppedTriggersCounted(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	w := Workload{
		Actors:      1,
		OpsPerActor: 600,
		NewActor: func(int) (func(int) error, func()) {
			return func(n int) error {
				if n == 600 {
					once.Do(func() { close(release) })
				}
				return nil
			}, nil
		},
	}
	var first sync.Once
	faults := []Fault{{Name: "slow", Fire: func() error {
		blocked := false
		first.Do(func() { blocked = true })
		if blocked {
			<-release
		}
		return nil
	}}}
	rep := Run(w, faults, Options{Seed: 1, FaultEvery: 1})
	if rep.Failed() {
		t.Fatalf("storm failed: %v", rep.Errors)
	}
	if rep.DroppedTriggers == 0 {
		t.Fatal("overflowed triggers were not counted")
	}
	if got := fmt.Sprint(rep); !bytes.Contains([]byte(got), []byte("triggers dropped")) {
		t.Fatalf("report does not surface dropped triggers: %s", got)
	}
}

// TestReplayEmptyScheduleFiresNothing: a non-nil empty schedule is the
// minimizer's "no faults at all" probe and must suppress injection even
// with faults available.
func TestReplayEmptyScheduleFiresNothing(t *testing.T) {
	w := Workload{
		Actors:      1,
		OpsPerActor: 10,
		NewActor: func(int) (func(int) error, func()) {
			return func(int) error { return nil }, nil
		},
	}
	fired := false
	faults := []Fault{{Name: "f", Fire: func() error { fired = true; return nil }}}
	rep := Run(w, faults, Options{Seed: 1, FaultEvery: 1, Schedule: []string{}})
	if rep.Failed() {
		t.Fatalf("storm failed: %v", rep.Errors)
	}
	if fired || len(rep.Schedule) != 0 {
		t.Fatalf("empty schedule fired faults: %v", rep.Schedule)
	}
}

// TestReplayUnknownFault: a schedule naming a fault the builder no
// longer provides is a loud error, and the rest of the schedule still
// replays.
func TestReplayUnknownFault(t *testing.T) {
	w := Workload{
		Actors:      1,
		OpsPerActor: 10,
		NewActor: func(int) (func(int) error, func()) {
			return func(int) error { return nil }, nil
		},
	}
	faults := []Fault{{Name: "known", Fire: func() error { return nil }}}
	rep := Run(w, faults, Options{Seed: 1, FaultEvery: 1, Schedule: []string{"ghost", "known"}})
	if !rep.Failed() {
		t.Fatal("unknown fault name not reported")
	}
	if rep.FaultsFired["known"] != 1 {
		t.Fatalf("schedule did not continue past the unknown name: %v", rep.FaultsFired)
	}
}

// minSystem is a synthetic system for exercising the minimizer: the
// "bad" fault plants a defect that the final check then detects, and
// "noise" faults do nothing. Each build starts pristine.
type minSystem struct{ broken bool }

func (m *minSystem) build(Trace) (Workload, []Fault, func()) {
	m.broken = false
	w := Workload{
		Actors:      4,
		OpsPerActor: 8,
		NewActor: func(int) (func(int) error, func()) {
			return func(int) error { return nil }, nil
		},
		FinalCheck: func() error {
			if m.broken {
				return errors.New("defect planted")
			}
			return nil
		},
	}
	faults := []Fault{
		{Name: "noise", Fire: func() error { return nil }},
		{Name: "bad", Fire: func() error { m.broken = true; return nil }},
	}
	return w, faults, nil
}

// TestMinimize shrinks a noisy failing trace to the single fault that
// matters and the smallest workload that still triggers it.
func TestMinimize(t *testing.T) {
	m := &minSystem{}
	orig := Trace{
		Seed:        9,
		Actors:      4,
		OpsPerActor: 8,
		FaultEvery:  1,
		Schedule:    []string{"noise", "noise", "bad", "noise", "noise"},
	}
	min, stats := Minimize(m.build, orig)
	if !stats.Reproduced {
		t.Fatal("original trace did not reproduce")
	}
	if !reflect.DeepEqual(min.Schedule, []string{"bad"}) {
		t.Fatalf("minimized schedule = %v, want [bad]", min.Schedule)
	}
	if min.Actors != 1 || min.OpsPerActor != 1 {
		t.Fatalf("minimized workload = %d actors × %d ops, want 1×1", min.Actors, min.OpsPerActor)
	}
	if stats.Attempts < 5 {
		t.Fatalf("suspiciously few attempts: %d", stats.Attempts)
	}
	// The minimized trace must itself still reproduce.
	w, faults, _ := m.build(min)
	if rep := Replay(w, faults, min); !rep.Failed() {
		t.Fatal("minimized trace does not reproduce")
	}
}

// TestMinimizeNonFailing: a passing trace is returned untouched with
// Reproduced=false — the minimizer never "shrinks" a storm that does
// not fail.
func TestMinimizeNonFailing(t *testing.T) {
	m := &minSystem{}
	orig := Trace{Actors: 2, OpsPerActor: 2, FaultEvery: 1, Schedule: []string{"noise"}}
	min, stats := Minimize(m.build, orig)
	if stats.Reproduced {
		t.Fatal("passing trace reported as reproduced")
	}
	if stats.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", stats.Attempts)
	}
	if !reflect.DeepEqual(min, orig) {
		t.Fatalf("passing trace was modified: %+v", min)
	}
}
