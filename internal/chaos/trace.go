package chaos

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is the portable, replayable description of one storm: the
// workload shape plus the exact ordered fault schedule. A failing storm
// serialized to a Trace reproduces on another machine or another day —
// the schedule replays verbatim, no seed re-derivation involved.
type Trace struct {
	// Seed is carried for provenance (and drives any residual seeded
	// choices inside the workload itself); the fault sequence comes from
	// Schedule, not the seed.
	Seed        int64    `json:"seed"`
	Actors      int      `json:"actors"`
	OpsPerActor int      `json:"ops_per_actor"`
	FaultEvery  int      `json:"fault_every"`
	Schedule    []string `json:"schedule"`
	// Note is free-form provenance ("minimized from storm-7.json", the
	// failing checker, ...).
	Note string `json:"note,omitempty"`
}

// NewTrace captures a finished storm as a replayable trace.
func NewTrace(w Workload, o Options, rep Report) Trace {
	sched := append([]string{}, rep.Schedule...)
	return Trace{
		Seed:        o.Seed,
		Actors:      w.Actors,
		OpsPerActor: w.OpsPerActor,
		FaultEvery:  o.FaultEvery,
		Schedule:    sched,
	}
}

// Options converts the trace into replay-mode storm options.
func (t Trace) Options() Options {
	sched := t.Schedule
	if sched == nil {
		sched = []string{}
	}
	return Options{Seed: t.Seed, FaultEvery: t.FaultEvery, Schedule: sched}
}

// Encode writes the trace as indented JSON.
func (t Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// DecodeTrace reads a JSON trace.
func DecodeTrace(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("chaos: decode trace: %w", err)
	}
	return t, nil
}

// Replay re-executes a recorded storm: the trace's workload shape
// overrides w's (when set), and the trace's schedule fires verbatim.
func Replay(w Workload, faults []Fault, t Trace) Report {
	if t.Actors > 0 {
		w.Actors = t.Actors
	}
	if t.OpsPerActor > 0 {
		w.OpsPerActor = t.OpsPerActor
	}
	return Run(w, faults, t.Options())
}

// Builder constructs a fresh system for one storm execution of the given
// trace: the workload, the fault set, and a cleanup to tear the system
// down. The minimizer re-executes the storm many times with shrinking
// workload shapes, and every execution must start from pristine state
// sized to the candidate — final checks that compare counters against
// actors × ops must take the shape from t, not from the original flags.
type Builder func(t Trace) (Workload, []Fault, func())

// MinimizeStats describes a minimization run.
type MinimizeStats struct {
	// Attempts is the number of storm executions the minimizer spent.
	Attempts int
	// Reproduced reports whether the original trace failed when
	// re-executed; when false the returned trace is the input, untouched
	// (a storm that no longer reproduces cannot be shrunk).
	Reproduced bool
}

// Minimize shrinks a failing trace to a smaller one that still fails:
// first it drops faults from the schedule one at a time (greedy, from
// the back, with an empty-schedule fast path), then it halves the
// per-actor operation count, then the actor count. Every candidate runs
// against a fresh system from build, and is kept only when it fails
// TWICE in a row: storms over a scaled-time network are not perfectly
// deterministic, and a candidate that fails one run in thirty must not
// displace a robust reproducer. The result is the smallest
// reliably-failing trace found.
func Minimize(build Builder, t Trace) (Trace, MinimizeStats) {
	stats := MinimizeStats{}
	runOnce := func(cand Trace) bool {
		stats.Attempts++
		w, faults, done := build(cand)
		if done != nil {
			defer done()
		}
		return Replay(w, faults, cand).Failed()
	}
	fails := func(cand Trace) bool {
		return runOnce(cand) && runOnce(cand)
	}
	if !runOnce(t) {
		return t, stats
	}
	stats.Reproduced = true
	best := t
	if best.Schedule == nil {
		best.Schedule = []string{}
	}

	// Fast path: does it fail with no faults at all? Then the defect is
	// in the workload (or the system), not the fault schedule.
	if len(best.Schedule) > 0 {
		cand := best
		cand.Schedule = []string{}
		if fails(cand) {
			best = cand
		}
	}
	// Greedy single-fault drops, from the back (later faults are the
	// likeliest to be past the point of no return).
	for i := len(best.Schedule) - 1; i >= 0; i-- {
		cand := best
		cand.Schedule = append(append([]string{}, best.Schedule[:i]...), best.Schedule[i+1:]...)
		if fails(cand) {
			best = cand
		}
	}
	// Shrink the workload: halve ops, then actors, while it still fails.
	for best.OpsPerActor > 1 {
		cand := best
		cand.OpsPerActor = best.OpsPerActor / 2
		if !fails(cand) {
			break
		}
		best = cand
	}
	for best.Actors > 1 {
		cand := best
		cand.Actors = best.Actors / 2
		if !fails(cand) {
			break
		}
		best = cand
	}
	return best, stats
}
