package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mspr/internal/core"
	"mspr/internal/failpoint"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// testSystem is a single recoverable MSP with a per-session counter and a
// shared grand total.
type testSystem struct {
	net    *simnet.Network
	cfg    core.Config
	mu     sync.Mutex
	srv    *core.Server
	client *core.Client
}

func newTestSystem(t *testing.T) *testSystem {
	return newTestSystemSeeded(t, 7, rpc.DefaultCallOptions(0))
}

// newTestSystemSeeded builds the system with a seeded failpoint registry
// attached (no points armed: inert until a fault arms one) and the given
// client call options.
func newTestSystemSeeded(t *testing.T, seed int64, copts rpc.CallOptions) *testSystem {
	ts := &testSystem{net: simnet.New(simnet.Config{TimeScale: 0})}
	def := core.Definition{
		Methods: map[string]core.Handler{
			"bump": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				tot, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("total", u64(asU64(tot)+1)); err != nil {
					return nil, err
				}
				return u64(n), nil
			},
			"total": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
		},
		Shared: []core.SharedDef{{Name: "total", Initial: u64(0)}},
	}
	dom := core.NewDomain("chaos", 0, 0)
	ts.cfg = core.NewConfig("sut", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), ts.net, def)
	ts.cfg.SessionCkptThreshold = 16 << 10
	ts.cfg.Failpoints = failpoint.New(seed)
	srv, err := core.Start(ts.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts.srv = srv
	ts.client = core.NewClient("chaos-client", ts.net, copts)
	return ts
}

func (ts *testSystem) restart() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.srv.Crash()
	srv, err := core.Start(ts.cfg)
	if err != nil {
		return err
	}
	ts.srv = srv
	return nil
}

func (ts *testSystem) workload(actors, ops int) Workload {
	return Workload{
		Actors:      actors,
		OpsPerActor: ops,
		NewActor: func(i int) (func(int) error, func()) {
			sess := ts.client.Session("sut")
			return func(n int) error {
				out, err := sess.Call("bump", nil)
				if err != nil {
					return err
				}
				if asU64(out) != uint64(n) {
					return fmt.Errorf("counter %d, want %d (exactly-once violated)", asU64(out), n)
				}
				return nil
			}, nil
		},
		FinalCheck: func() error {
			sess := ts.client.Session("sut")
			out, err := sess.Call("total", nil)
			if err != nil {
				return err
			}
			want := uint64(actors * ops)
			if asU64(out) != want {
				return fmt.Errorf("shared total %d, want %d", asU64(out), want)
			}
			return nil
		},
	}
}

func TestStormWithoutFaultsPasses(t *testing.T) {
	ts := newTestSystem(t)
	defer ts.srv.Crash()
	defer ts.client.Close()
	rep := Run(ts.workload(4, 10), nil, Options{})
	if rep.Failed() {
		t.Fatalf("clean storm failed: %v", rep.Errors)
	}
	if rep.Ops != 40 {
		t.Fatalf("ops = %d, want 40", rep.Ops)
	}
}

func TestStormWithCrashRestartsPasses(t *testing.T) {
	ts := newTestSystem(t)
	defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
	defer ts.client.Close()
	var faultMu sync.Mutex
	faults := []Fault{RestartFault("crash-sut", &faultMu, ts.restart)}
	rep := Run(ts.workload(4, 20), faults, Options{Seed: 1, FaultEvery: 15})
	if rep.Failed() {
		t.Fatalf("storm failed: %v\n%s", rep.Errors, rep)
	}
	if rep.FaultsFired["crash-sut"] == 0 {
		t.Fatal("no faults fired")
	}
}

func TestStormDetectsViolations(t *testing.T) {
	// A deliberately broken workload must be reported, not masked.
	w := Workload{
		Actors:      2,
		OpsPerActor: 3,
		NewActor: func(i int) (func(int) error, func()) {
			return func(n int) error {
				if n == 2 {
					return errors.New("synthetic violation")
				}
				return nil
			}, nil
		},
	}
	rep := Run(w, nil, Options{})
	if !rep.Failed() {
		t.Fatal("storm masked a violation")
	}
	if rep.String()[:4] != "FAIL" {
		t.Fatalf("report string: %s", rep)
	}
}

func TestStormRejectsEmptyWorkload(t *testing.T) {
	rep := Run(Workload{}, nil, Options{})
	if !rep.Failed() {
		t.Fatal("empty workload accepted")
	}
}

func TestStormMaxFaultsBound(t *testing.T) {
	ts := newTestSystem(t)
	defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
	defer ts.client.Close()
	var faultMu sync.Mutex
	faults := []Fault{RestartFault("crash-sut", &faultMu, ts.restart)}
	rep := Run(ts.workload(2, 30), faults, Options{Seed: 2, FaultEvery: 5, MaxFaults: 2})
	if rep.Failed() {
		t.Fatalf("storm failed: %v", rep.Errors)
	}
	if got := rep.FaultsFired["crash-sut"]; got != 2 {
		t.Fatalf("fired %d faults, want exactly 2", got)
	}
}

func TestReportStringPass(t *testing.T) {
	rep := Report{Ops: 10, FaultsFired: map[string]int{}}
	if rep.String()[:4] != "PASS" {
		t.Fatalf("report: %s", rep)
	}
}

// TestStormManySeeds runs a battery of small deterministic storms — the
// `go test` version of cmd/mspr-chaos. Each seed produces a different
// crash schedule; all must preserve exactly-once execution and
// shared-state consistency. (This battery is what first exposed the
// epoch-collision and lost-update bugs described in EXPERIMENTS.md.)
func TestStormManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("storm battery skipped in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ts := newTestSystem(t)
			defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
			defer ts.client.Close()
			var faultMu sync.Mutex
			faults := []Fault{RestartFault("crash-sut", &faultMu, ts.restart)}
			rep := Run(ts.workload(3, 15), faults, Options{Seed: seed, FaultEvery: 10})
			if rep.Failed() {
				t.Fatalf("%s\n%v", rep, rep.Errors)
			}
		})
	}
}

// crashSurfaceFaults is the full injected crash surface for the test
// system: torn WAL writes, a torn anchor, a flush crash, and crashes
// planted at the recovery machinery's own crash points (including
// mid-replay, which kills the incarnation *after* Start returned).
func crashSurfaceFaults(ts *testSystem, mu *sync.Mutex) ([]Fault, []string) {
	reg := ts.cfg.Failpoints
	points := []struct{ name, point string }{
		{"torn-flush", simdisk.FPWriteTorn + ":sut.log"},
		{"torn-anchor", wal.FPAnchorCrash},
		{"flush-crash", wal.FPFlushCrash},
		{"crash-before-scan", core.FPRecoveryBeforeScan},
		{"crash-mid-scan", core.FPRecoveryMidScan},
		{"crash-before-broadcast", core.FPRecoveryBeforeBroadcast},
		{"crash-mid-replay", core.FPReplayMidSession},
		{"crash-ckpt-anchor", core.FPCkptBeforeAnchor},
	}
	faults := []Fault{RestartFault("crash", mu, ts.restart)}
	names := make([]string, 0, len(points))
	for _, p := range points {
		faults = append(faults, CrashPointFault(p.name, mu, reg, p.point, ts.restart))
		names = append(names, p.point)
	}
	return faults, names
}

// TestStormCrashSurface is the headline robustness storm: a seeded
// schedule of torn writes, anchor corruption and crashes injected into
// recovery itself, with exactly-once session counters and shared-state
// consistency verified after every incarnation change. Clients use the
// capped-exponential backoff so a recovering server sees a spread-out
// retry wave.
func TestStormCrashSurface(t *testing.T) {
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ts := newTestSystemSeeded(t, seed, rpc.BackoffCallOptions(0, seed))
			defer func() { ts.mu.Lock(); ts.srv.Crash(); ts.mu.Unlock() }()
			defer ts.client.Close()
			var faultMu sync.Mutex
			faults, points := crashSurfaceFaults(ts, &faultMu)
			rep := Run(ts.workload(4, 25), faults, Options{Seed: seed, FaultEvery: 12})
			t.Log(rep)
			if rep.Failed() {
				t.Fatalf("%s\n%v", rep, rep.Errors)
			}
			total := 0
			for _, n := range rep.FaultsFired {
				total += n
			}
			if total == 0 {
				t.Fatal("storm fired no faults")
			}
			// The armed points must actually have been hit — a storm
			// whose failpoints were all disarmed unconsumed exercised
			// nothing but plain restarts.
			var hits int64
			for _, p := range points {
				hits += ts.cfg.Failpoints.Hits(p)
			}
			if hits == 0 {
				t.Fatal("no failpoint was ever consumed")
			}
		})
	}
}
