package chaos

import (
	"sort"
	"sync"
	"time"
)

// DurationSeries keeps every duration a storm harness observes so the
// end-of-storm report can print percentiles, not just an aggregate. It is
// the sample-keeping sibling of RestartTimes, used where the distribution
// matters — per-restart time-to-first-reply, whose p50 is the
// instant-recovery headline (the max is dominated by the one restart that
// had to lazily replay the hottest session). The harness measures the
// durations itself; this package never reads the clock.
type DurationSeries struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one duration.
func (d *DurationSeries) Observe(v time.Duration) {
	d.mu.Lock()
	d.samples = append(d.samples, v)
	d.mu.Unlock()
}

// Count returns how many durations were observed.
func (d *DurationSeries) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.samples)
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of the observed
// durations by nearest-rank, or 0 if none were recorded.
func (d *DurationSeries) Percentile(p int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// Max returns the largest observed duration, or 0 if none were recorded.
func (d *DurationSeries) Max() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	var m time.Duration
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}
