package chaos

import (
	"testing"
	"time"
)

func TestRestartTimesSummary(t *testing.T) {
	var r RestartTimes
	if n, avg, max := r.Summary(); n != 0 || avg != 0 || max != 0 {
		t.Fatalf("empty summary = %d %v %v", n, avg, max)
	}
	r.Observe(10 * time.Millisecond)
	r.Observe(30 * time.Millisecond)
	r.Observe(20 * time.Millisecond)
	n, avg, max := r.Summary()
	if n != 3 || avg != 20*time.Millisecond || max != 30*time.Millisecond {
		t.Fatalf("summary = %d %v %v, want 3 20ms 30ms", n, avg, max)
	}
}
