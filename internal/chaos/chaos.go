// Package chaos is a reusable fault-injection harness for recoverable
// systems built on this repository: it drives a concurrent workload of
// actors while firing crash-restart faults on the system's processes,
// then verifies the survivor invariants (exactly-once execution,
// shared-state consistency) that the recovery infrastructure promises.
//
// The examples and integration tests each hand-rolled a variant of this
// loop; the package extracts it so new services can be storm-tested in a
// few lines (see cmd/mspr-chaos).
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Workload describes the load to apply.
type Workload struct {
	// Actors is the number of concurrent actors (each typically owning
	// one session).
	Actors int
	// OpsPerActor is how many operations each actor performs.
	OpsPerActor int
	// NewActor builds actor i: op runs the n-th (1-based) operation and
	// returns an error on any correctness violation; done (optional)
	// releases the actor's resources.
	NewActor func(i int) (op func(n int) error, done func())
	// FinalCheck (optional) verifies global invariants after the storm —
	// e.g. that a shared total equals the sum of all actors' operations.
	FinalCheck func() error
}

// Fault is one injectable fault: typically "crash process X and restart
// it". Fire blocks until the fault has been fully applied (the restart
// may still be recovering in the background — that is the point).
type Fault struct {
	Name string
	Fire func() error
}

// Options tunes the storm.
type Options struct {
	// Seed drives fault selection and spacing (deterministic storms).
	Seed int64
	// FaultEvery fires one fault per this many completed operations
	// (0 disables fault injection).
	FaultEvery int
	// MaxFaults bounds the total faults (0 = unbounded).
	MaxFaults int
}

// Report summarizes a storm.
type Report struct {
	Ops         int64
	FaultsFired map[string]int
	Errors      []error
	Elapsed     time.Duration
}

// Failed reports whether the storm uncovered any violation.
func (r Report) Failed() bool { return len(r.Errors) > 0 }

// String renders a one-line summary.
func (r Report) String() string {
	total := 0
	for _, n := range r.FaultsFired {
		total += n
	}
	status := "PASS"
	if r.Failed() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Errors))
	}
	return fmt.Sprintf("%s: %d ops, %d faults %v in %v", status, r.Ops, total, r.FaultsFired, r.Elapsed)
}

// Run executes the workload under fault injection and returns the report.
func Run(w Workload, faults []Fault, o Options) Report {
	start := time.Now()
	rep := Report{FaultsFired: make(map[string]int)}
	if w.Actors <= 0 || w.OpsPerActor <= 0 || w.NewActor == nil {
		rep.Errors = append(rep.Errors, fmt.Errorf("chaos: workload needs actors, ops and a factory"))
		return rep
	}
	var (
		ops     atomic.Int64
		mu      sync.Mutex
		errs    []error
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		faultWG sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// The fault injector: watches the op counter and fires a random fault
	// each time it crosses a FaultEvery boundary.
	if o.FaultEvery > 0 && len(faults) > 0 {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			rng := rand.New(rand.NewSource(o.Seed + 1))
			next := int64(o.FaultEvery)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ops.Load() >= next {
					next += int64(o.FaultEvery)
					f := faults[rng.Intn(len(faults))]
					if err := f.Fire(); err != nil {
						fail(fmt.Errorf("chaos: fault %s: %w", f.Name, err))
						return
					}
					mu.Lock()
					rep.FaultsFired[f.Name]++
					total := 0
					for _, n := range rep.FaultsFired {
						total += n
					}
					mu.Unlock()
					if o.MaxFaults > 0 && total >= o.MaxFaults {
						return
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	for i := 0; i < w.Actors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op, done := w.NewActor(i)
			if done != nil {
				defer done()
			}
			for n := 1; n <= w.OpsPerActor; n++ {
				if err := op(n); err != nil {
					fail(fmt.Errorf("chaos: actor %d op %d: %w", i, n, err))
					return
				}
				ops.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	faultWG.Wait()

	if w.FinalCheck != nil {
		if err := w.FinalCheck(); err != nil {
			fail(fmt.Errorf("chaos: final check: %w", err))
		}
	}
	rep.Ops = ops.Load()
	rep.Errors = errs
	rep.Elapsed = time.Since(start)
	return rep
}

// RestartFault builds the common crash-and-restart fault: crash() must
// kill the process and restart() must bring a fresh incarnation up
// (running its recovery). The mutex serializes faults against each other.
func RestartFault(name string, mu *sync.Mutex, crashAndRestart func() error) Fault {
	return Fault{
		Name: name,
		Fire: func() error {
			mu.Lock()
			defer mu.Unlock()
			return crashAndRestart()
		},
	}
}
