// Package chaos is a reusable fault-injection harness for recoverable
// systems built on this repository: it drives a concurrent workload of
// actors while firing crash-restart faults on the system's processes,
// then verifies the survivor invariants (exactly-once execution,
// shared-state consistency) that the recovery infrastructure promises.
//
// The examples and integration tests each hand-rolled a variant of this
// loop; the package extracts it so new services can be storm-tested in a
// few lines (see cmd/mspr-chaos).
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/simnet"
)

// Workload describes the load to apply.
type Workload struct {
	// Actors is the number of concurrent actors (each typically owning
	// one session).
	Actors int
	// OpsPerActor is how many operations each actor performs.
	OpsPerActor int
	// NewActor builds actor i: op runs the n-th (1-based) operation and
	// returns an error on any correctness violation; done (optional)
	// releases the actor's resources.
	NewActor func(i int) (op func(n int) error, done func())
	// FinalCheck (optional) verifies global invariants after the storm —
	// e.g. that a shared total equals the sum of all actors' operations.
	FinalCheck func() error
}

// Fault is one injectable fault: typically "crash process X and restart
// it". Fire blocks until the fault has been fully applied (the restart
// may still be recovering in the background — that is the point).
type Fault struct {
	Name string
	Fire func() error
}

// Options tunes the storm.
type Options struct {
	// Seed drives fault selection and spacing (deterministic storms).
	Seed int64
	// FaultEvery fires one fault per this many completed operations
	// (0 disables fault injection).
	FaultEvery int
	// MaxFaults bounds the total fault attempts (0 = unbounded).
	MaxFaults int
	// Schedule, when non-nil, switches the scheduler to replay mode: the
	// named faults fire verbatim in order, one per trigger, instead of
	// being drawn from the seeded generator, and injection stops when the
	// schedule is exhausted. A non-nil empty schedule fires nothing —
	// that is how the minimizer tests "does it still fail with no
	// faults". Record a schedule with Run (Report.Schedule) or load one
	// from a Trace.
	Schedule []string
}

// Report summarizes a storm.
type Report struct {
	Ops int64
	// Seed echoes the storm's fault-selection seed, so a report is
	// self-describing for reproduction.
	Seed int64
	// Schedule is the ordered list of fault names the scheduler
	// attempted, exactly as drawn (or replayed). Same seed + same
	// workload → byte-identical schedule; feed it to Options.Schedule or
	// a Trace to re-fire the identical sequence.
	Schedule    []string
	FaultsFired map[string]int
	// FaultErrors counts faults whose Fire returned an error. Each error
	// is also in Errors, but injection continues past it — one sick
	// fault must not silently shut the whole storm's fault plane off.
	FaultErrors int
	// DroppedTriggers counts fault triggers dropped because the workload
	// outran the scheduler's buffer. Nonzero means the storm fired fewer
	// faults than ops/FaultEvery promises — visible, not silent.
	DroppedTriggers int64
	Errors          []error
	Elapsed         time.Duration
}

// Failed reports whether the storm uncovered any violation.
func (r Report) Failed() bool { return len(r.Errors) > 0 }

// String renders a summary.
func (r Report) String() string {
	total := 0
	for _, n := range r.FaultsFired {
		total += n
	}
	status := "PASS"
	if r.Failed() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Errors))
	}
	s := fmt.Sprintf("%s: %d ops, %d faults %v in %v (seed %d)",
		status, r.Ops, total, r.FaultsFired, r.Elapsed, r.Seed)
	if r.FaultErrors > 0 {
		s += fmt.Sprintf(", %d fault errors", r.FaultErrors)
	}
	if r.DroppedTriggers > 0 {
		s += fmt.Sprintf(", %d triggers dropped", r.DroppedTriggers)
	}
	s += fmt.Sprintf("\n  schedule: %v", r.Schedule)
	return s
}

// Run executes the workload under fault injection and returns the report.
func Run(w Workload, faults []Fault, o Options) Report {
	start := time.Now() //mspr:wallclock storm reports measure real elapsed time
	rep := Report{FaultsFired: make(map[string]int), Seed: o.Seed, Schedule: []string{}}
	if w.Actors <= 0 || w.OpsPerActor <= 0 || w.NewActor == nil {
		rep.Errors = append(rep.Errors, fmt.Errorf("chaos: workload needs actors, ops and a factory"))
		return rep
	}
	var (
		ops     atomic.Int64
		dropped atomic.Int64
		mu      sync.Mutex
		errs    []error
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		trigger = make(chan struct{}, 256)
		faultWG sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	// The seeded fault scheduler: each FaultEvery-th completed operation
	// enqueues a trigger; the scheduler fires a seeded-random fault per
	// trigger and drains pending triggers before Run returns, so a storm
	// fires a deterministic min(MaxFaults, ops/FaultEvery) faults no
	// matter how fast the workload outruns it. With Options.Schedule set
	// the seeded draw is replaced by the recorded names, in order.
	replaying := o.Schedule != nil
	byName := make(map[string]Fault, len(faults))
	for _, f := range faults {
		byName[f.Name] = f
	}
	injecting := o.FaultEvery > 0 && (replaying && len(o.Schedule) > 0 || !replaying && len(faults) > 0)
	if injecting {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			rng := rand.New(rand.NewSource(o.Seed + 1))
			fired := 0
			fire := func() bool {
				var f Fault
				if replaying {
					if fired >= len(o.Schedule) {
						return false // schedule exhausted
					}
					name := o.Schedule[fired]
					var ok bool
					if f, ok = byName[name]; !ok {
						fail(fmt.Errorf("chaos: replay schedule names unknown fault %q", name))
						fired++
						mu.Lock()
						rep.Schedule = append(rep.Schedule, name)
						mu.Unlock()
						return o.MaxFaults <= 0 || fired < o.MaxFaults
					}
				} else {
					f = faults[rng.Intn(len(faults))]
				}
				fired++
				mu.Lock()
				rep.Schedule = append(rep.Schedule, f.Name)
				mu.Unlock()
				if err := f.Fire(); err != nil {
					// Record the error and keep injecting: one sick fault
					// must not silently disable the rest of the storm's
					// fault plane (it used to — every later fault was
					// skipped without a trace).
					fail(fmt.Errorf("chaos: fault %s: %w", f.Name, err))
					mu.Lock()
					rep.FaultErrors++
					mu.Unlock()
				} else {
					mu.Lock()
					rep.FaultsFired[f.Name]++
					mu.Unlock()
				}
				return o.MaxFaults <= 0 || fired < o.MaxFaults
			}
			for {
				select {
				case <-trigger:
					if !fire() {
						return
					}
				case <-stop:
					for { // workload done: drain pending triggers
						select {
						case <-trigger:
							if !fire() {
								return
							}
						default:
							return
						}
					}
				}
			}
		}()
	}

	for i := 0; i < w.Actors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op, done := w.NewActor(i)
			if done != nil {
				defer done()
			}
			for n := 1; n <= w.OpsPerActor; n++ {
				if err := op(n); err != nil {
					fail(fmt.Errorf("chaos: actor %d op %d: %w", i, n, err))
					return
				}
				if total := ops.Add(1); injecting && total%int64(o.FaultEvery) == 0 {
					select {
					case trigger <- struct{}{}:
					default:
						// Scheduler far behind: drop rather than block the
						// load, but count it so the report shows the storm
						// fired fewer faults than promised.
						dropped.Add(1)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	faultWG.Wait()

	if w.FinalCheck != nil {
		if err := w.FinalCheck(); err != nil {
			fail(fmt.Errorf("chaos: final check: %w", err))
		}
	}
	rep.Ops = ops.Load()
	rep.DroppedTriggers = dropped.Load()
	rep.Errors = errs
	rep.Elapsed = time.Since(start) //mspr:wallclock storm reports measure real elapsed time
	return rep
}

// RestartFault builds the common crash-and-restart fault: crash() must
// kill the process and restart() must bring a fresh incarnation up
// (running its recovery). The mutex serializes faults against each other.
func RestartFault(name string, mu *sync.Mutex, crashAndRestart func() error) Fault {
	return Fault{
		Name: name,
		Fire: func() error {
			mu.Lock()
			defer mu.Unlock()
			return crashAndRestart()
		},
	}
}

// PartitionFault splits the network into the given groups, optionally
// fires during() while the split is in force (typically a crash-restart,
// so a process recovers while its domain peers are unreachable and its
// recovery broadcast is lost), holds the partition for hold, then heals.
// Addresses not named in any group — end clients, cross-domain
// processes — keep reaching everyone; only the named processes are cut
// off from each other.
//
// The mutex serializes the fault against other faults and against any
// final check that touches the processes; the network is always healed
// before Fire returns, even when during() fails.
func PartitionFault(name string, mu *sync.Mutex, net *simnet.Network, groups [][]simnet.Addr, hold time.Duration, during func() error) Fault {
	return Fault{
		Name: name,
		Fire: func() error {
			mu.Lock()
			defer mu.Unlock()
			net.Partition(groups...)
			defer net.Heal()
			var err error
			if during != nil {
				err = during()
			}
			time.Sleep(hold) //mspr:wallclock the partition must straddle real control-plane deadlines, which are wall-clock floored
			return err
		},
	}
}

// CrashPointFault arms a one-shot failpoint in reg and crash-restarts
// the process, so the point fires inside the next incarnation — torn
// writes and flush crashes land in recovery's own checkpoint, and the
// core.FPRecovery*/FPReplay* points crash recovery itself. Fire keeps
// restarting while Start dies at the injected point: the incarnation
// that finally comes up has recovered from a crash *during* recovery.
//
// Points planted in asynchronous recovery work (background session
// replay) fire only after Start has returned, killing the apparently
// healthy incarnation; Fire therefore waits briefly for the armed point
// to be consumed and restarts once more when it is. A point no schedule
// reaches is disarmed before returning so it cannot leak into a later,
// unrelated fault.
func CrashPointFault(name string, mu *sync.Mutex, reg *failpoint.Registry, point string, crashAndRestart func() error) Fault {
	return Fault{
		Name: name,
		Fire: func() error {
			mu.Lock()
			defer mu.Unlock()
			reg.Enable(point, failpoint.Times(1))
			for tries := 0; ; tries++ {
				before := reg.Hits(point)
				err := crashAndRestart()
				if err != nil {
					if failpoint.IsInjected(err) && tries < 16 {
						continue // nested crash during recovery: go again
					}
					reg.Disable(point)
					return err
				}
				fired := reg.Hits(point) > before
				if !fired && reg.Armed(point) {
					deadline := time.Now().Add(time.Second)               //mspr:wallclock bounded wait for asynchronous replay goroutines, which run on OS scheduling
					for reg.Armed(point) && time.Now().Before(deadline) { //mspr:wallclock bounded wait for asynchronous replay goroutines
						time.Sleep(time.Millisecond) //mspr:wallclock bounded wait for asynchronous replay goroutines
					}
					fired = reg.Hits(point) > before
				}
				if fired && tries < 16 {
					continue // the fresh incarnation was killed: once more
				}
				reg.Disable(point)
				return nil
			}
		},
	}
}
