package rpc

import (
	"sync"
	"time"

	"mspr/internal/metrics"
)

// Client-side overload control: the retry budget and the per-server
// circuit breaker that Call consults through CallOptions. Both exist to
// turn a saturated server's shed replies into *less* offered load
// instead of more — the unbounded Busy-resend loop the paper's §5.4
// client uses is correct for transient recovery pauses but amplifies a
// genuine overload (every shed mints a future resend), so budgeted
// retries and breaker-metered probing replace it whenever a harness
// opts in.

// RetryBudget is a token bucket bounding shed-triggered resends. Every
// Busy/Overloaded retry spends one token; every terminal outcome (OK,
// application error, rejection) earns a fraction of a token back, so
// the sustainable retry rate is proportional to the success rate rather
// than to the offered load. The bucket starts full. Safe for concurrent
// use; share one per client↔server pair.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewRetryBudget returns a full bucket holding max tokens that earns
// earnPerSuccess tokens back per terminal outcome (capped at max).
// A typical shape is NewRetryBudget(10, 0.1): bursts of up to ten
// retries, sustained at one retry per ten successes.
func NewRetryBudget(max, earnPerSuccess float64) *RetryBudget {
	return &RetryBudget{tokens: max, max: max, earn: earnPerSuccess}
}

// Spend takes one token for a retry, reporting false (and counting the
// exhaustion) when less than a whole token remains.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		metrics.Overload.RetryBudgetExhausted.Inc()
		return false
	}
	b.tokens--
	return true
}

// Earn credits the per-success fraction back into the bucket.
func (b *RetryBudget) Earn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.earn
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Clone returns a fresh, full bucket with the same parameters — how
// core.Client derives a per-server budget from a configured template.
func (b *RetryBudget) Clone() *RetryBudget {
	b.mu.Lock()
	defer b.mu.Unlock()
	return NewRetryBudget(b.max, b.earn)
}

// Tokens returns the current balance (for tests and reports).
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes all traffic; consecutive sheds are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails all calls fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe call through; its outcome
	// closes the breaker again or re-opens it for another cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-server circuit breaker. It opens after Threshold
// consecutive sheds (Busy/Overloaded replies), fails calls fast for a
// wall-clock Cooldown, then half-opens: one probe call is admitted, and
// its outcome decides between closing and re-opening. Safe for
// concurrent use; share one per target server.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock (tests); time.Now otherwise
	state     BreakerState
	sheds     int // consecutive sheds while closed
	openedAt  time.Time
	probe     uint64 // nonzero: token of the half-open probe in flight
	probeSeq  uint64 // last granted probe token
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive sheds and half-opens cooldown (wall-clock) later. The
// cooldown is wall-clock for the same reason deadlines are: it meters
// real retry work, which the simulation realizes as scaled wall time.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 50 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now} //mspr:wallclock breaker cooldown meters real retry work, like RetryAfter hints
}

// Clone returns a fresh, closed breaker with the same parameters — how
// core.Client derives a per-server breaker from a configured template.
func (b *Breaker) Clone() *Breaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := NewBreaker(b.threshold, b.cooldown)
	c.now = b.now
	return c
}

// Allow reports whether a call may be sent now. While open it returns
// false until the cooldown elapses, then transitions to half-open and
// admits a single probe; further calls fail fast until that probe
// settles through Success or Shed, or is released by ProbeAborted.
//
// The second result is nonzero when the caller was admitted AS the
// probe. A probe-holder must not re-consult Allow for resends of the
// same call (the resends are the probe), and must hand the token back
// through ProbeAborted if the call ends without settling — otherwise
// the slot leaks and the breaker wedges half-open, refusing every
// future call.
func (b *Breaker) Allow() (ok bool, probe uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown { //mspr:wallclock breaker cooldown meters real retry work, like RetryAfter hints
			return false, 0
		}
		b.state = BreakerHalfOpen
		return true, b.grantProbe()
	default: // BreakerHalfOpen
		if b.probe != 0 {
			return false, 0
		}
		return true, b.grantProbe()
	}
}

// grantProbe hands out the half-open probe slot under b.mu, returning a
// fresh token. Tokens are never reused, so a stale ProbeAborted from a
// call whose slot has since been settled or re-granted cannot release
// someone else's probe.
func (b *Breaker) grantProbe() uint64 {
	b.probeSeq++
	b.probe = b.probeSeq
	return b.probe
}

// ProbeAborted releases the half-open probe slot identified by probe
// without recording an outcome: the probing call was abandoned (client
// deadline, attempt bound, closed reply stream) before any reply
// settled it. The breaker stays half-open and the next Allow admits a
// fresh probe. Stale or zero tokens are ignored.
func (b *Breaker) ProbeAborted(probe uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe != 0 && b.state == BreakerHalfOpen && b.probe == probe {
		b.probe = 0
	}
}

// Success records a terminal outcome: the breaker closes and the shed
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.sheds = 0
	b.probe = 0
}

// Shed records a Busy/Overloaded reply. In the closed state it counts
// toward the threshold; a shed probe re-opens the breaker for another
// cooldown.
func (b *Breaker) Shed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.sheds++
		if b.sheds >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	}
}

// open transitions to the open state; callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now() //mspr:wallclock breaker cooldown meters real retry work, like RetryAfter hints
	b.sheds = 0
	b.probe = 0
	metrics.Overload.BreakerOpens.Inc()
}

// State returns the breaker's current position (for tests and reports).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
