// Package rpc defines the request/reply message envelopes exchanged
// between clients and MSPs, the request-sequence-number discipline that
// makes duplicate and out-of-order messages detectable (§3.1), and the
// client-side resend machinery that, combined with the server buffering
// the latest reply per session, yields exactly-once execution semantics.
//
// Over each session, the client maintains a next available request
// sequence number and the MSP a next expected one. The client resends a
// request (same sequence number) until its reply is received; the MSP
// re-sends the buffered reply for an already-executed request and ignores
// anything else out of order.
package rpc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"mspr/internal/dv"
	"mspr/internal/simnet"
	"mspr/internal/simtime"
)

// Status is the outcome class carried in a Reply.
type Status byte

// Reply statuses.
const (
	// StatusOK means the method executed and Payload is its result.
	StatusOK Status = iota
	// StatusAppError means the method returned an application error;
	// Payload is the error text. Errors are results too: they are
	// buffered and deduplicated exactly like successes.
	StatusAppError
	// StatusBusy means the server is checkpointing or recovering; the
	// client should sleep briefly and resend the same request (§5.4:
	// "it sleeps for 100ms and resends the request").
	StatusBusy
	// StatusRejected means the request can never succeed (unknown method
	// or session); resending is pointless.
	StatusRejected
	// StatusOverloaded means the server shed the request before doing any
	// work on it — its admission queue was full, or the request's deadline
	// had already expired. Unlike Busy (a transient server-side condition
	// the client waits out), Overloaded is an explicit back-pressure
	// signal: the reply carries a RetryAfter hint derived from the
	// server's queue depth and service rate, and the client's retry
	// budget, not its patience, decides whether to resend.
	StatusOverloaded
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusAppError:
		return "AppError"
	case StatusBusy:
		return "Busy"
	case StatusRejected:
		return "Rejected"
	case StatusOverloaded:
		return "Overloaded"
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Request is a service-method invocation over a session.
type Request struct {
	Session    string
	Seq        uint64
	Method     string
	Arg        []byte
	NewSession bool // first request on the session: create it server-side
	EndSession bool // ends the session after this request
	// HasDV marks an intra-domain message carrying the sending session's
	// dependency vector (Fig. 7). Cross-domain and end-client requests
	// carry none (the sender performed a distributed log flush instead).
	HasDV bool
	DV    dv.Vector
	From  simnet.Addr // reply-to address
	// Deadline, when non-zero, is the wall-clock instant after which the
	// client no longer wants the result. The server checks it twice — at
	// admission and again immediately before the receive log append — and
	// sheds expired work with StatusOverloaded *before* any durable
	// effect, so an expired request never owns a logged execution. It is
	// wall-clock (not model time) because it bounds real work: every
	// model latency the request would pay is realized as scaled wall
	// sleeps on the same clock.
	Deadline time.Time
}

// Reply answers a Request; (Session, Seq) match the request.
type Reply struct {
	Session string
	Seq     uint64
	Status  Status
	Payload []byte
	HasDV   bool
	DV      dv.Vector
	// RetryAfter, on a StatusOverloaded reply, is the server's wall-clock
	// hint for how long the client should wait before resending: queue
	// backlog times the observed per-request service rate. Zero means the
	// server offered no hint (the client falls back to its busy backoff).
	RetryAfter time.Duration
}

// ErrRejected is returned by Call when the server permanently rejects the
// request.
var ErrRejected = errors.New("rpc: request rejected by server")

// Overload-control outcomes of Call. All three are NON-terminal: the
// request may or may not have executed server-side, so the caller must
// not advance the session's sequence number — a later Call under the
// same sequence number either resends the identical request or fetches
// the buffered reply through the duplicate path.
var (
	// ErrOverloaded means the server shed the request (or kept answering
	// Busy) and the client's retry budget ran out of tokens.
	ErrOverloaded = errors.New("rpc: server overloaded and retry budget exhausted")
	// ErrCircuitOpen means the per-server circuit breaker is open after
	// consecutive sheds: the call failed fast without touching the network.
	ErrCircuitOpen = errors.New("rpc: circuit breaker open")
	// ErrDeadlineExceeded means the request's deadline passed client-side
	// before a terminal reply arrived.
	ErrDeadlineExceeded = errors.New("rpc: request deadline exceeded")
)

// Intra-domain control-plane envelopes. The domain control plane —
// distributed flush requests, recovery broadcasts, anti-entropy
// knowledge pulls — travels over the same unreliable simnet as client
// traffic, so every control request carries a sender-unique ID: the
// sender retransmits under the same ID until a reply arrives or its
// deadline passes, and the server dedups by (From, ID), answering a
// retransmission from its reply cache instead of re-executing.

// CtlCode is the outcome class of a control reply.
type CtlCode byte

// Control reply codes.
const (
	// CtlOK means the operation succeeded.
	CtlOK CtlCode = iota
	// CtlOrphan means the flushed dependency refers to state lost in a
	// crash: the caller is an orphan.
	CtlOrphan
	// CtlUnavailable means the peer is down, recovering, or otherwise
	// unable to serve the operation now; the caller retries.
	CtlUnavailable
)

// FlushRequest asks a peer MSP to make its state up to SID durable
// (one leg of a distributed log flush, §3.1).
type FlushRequest struct {
	ID   uint64
	From simnet.Addr
	SID  dv.StateID
}

// FlushReply answers a FlushRequest. Known piggybacks the replier's
// knowledge of recovered state numbers, so every flush doubles as a
// passive anti-entropy exchange.
type FlushReply struct {
	ID    uint64
	Code  CtlCode
	Known []dv.RecoveryInfo
}

// RecoveryBroadcast announces a recovered state number to a domain peer
// (§4.3). Delivery is best-effort: unreachable peers catch up through
// anti-entropy after they become reachable again.
type RecoveryBroadcast struct {
	ID   uint64
	From simnet.Addr
	Info dv.RecoveryInfo
}

// RecoveryAck acknowledges a RecoveryBroadcast, returning the replier's
// knowledge snapshot so the recovering MSP learns about crashes it slept
// through.
type RecoveryAck struct {
	ID    uint64
	Known []dv.RecoveryInfo
}

// KnowledgePull asks a peer for its full knowledge of recovered state
// numbers — the active half of anti-entropy, issued when a peer that was
// unreachable becomes reachable again (or periodically, if configured).
type KnowledgePull struct {
	ID   uint64
	From simnet.Addr
}

// KnowledgeReply answers a KnowledgePull.
type KnowledgeReply struct {
	ID    uint64
	Known []dv.RecoveryInfo
}

// Backoff produces capped exponential retry delays with seeded jitter:
// Base, 2·Base, 4·Base … up to Max, each multiplied by a factor drawn
// uniformly from [1-Jitter, 1+Jitter]. The zero Jitter disables jitter;
// a Max at or below Base disables growth. Not safe for concurrent use —
// create one per retry loop.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Jitter float64

	attempt int
	rng     *rand.Rand
}

// NewBackoff returns a Backoff seeded deterministically from seed.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	return &Backoff{Base: base, Max: max, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the upcoming retry and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	for i := 0; i < b.attempt && d < b.Max; i++ {
		d *= 2
	}
	if b.Max > b.Base && d > b.Max {
		d = b.Max
	}
	b.attempt++
	if b.Jitter > 0 && b.rng != nil {
		d = time.Duration(float64(d) * (1 + b.Jitter*(2*b.rng.Float64()-1)))
	}
	return d
}

// Reset restarts the backoff from Base.
func (b *Backoff) Reset() { b.attempt = 0 }

// CallOptions tunes the resend loop.
type CallOptions struct {
	// ResendAfter is the model time to wait for a reply before resending
	// the same request. It should comfortably exceed a round trip plus
	// service time.
	ResendAfter time.Duration
	// BusyBackoff is the model time to sleep after a StatusBusy reply
	// before resending (100 ms in the paper).
	BusyBackoff time.Duration
	// BusyBackoffMax, when larger than BusyBackoff, caps an exponential
	// backoff: each consecutive Busy reply doubles the sleep, from
	// BusyBackoff up to this cap; any other outcome resets the streak.
	// Zero keeps the paper's fixed backoff (the experiment default).
	BusyBackoffMax time.Duration
	// BusyJitter is the fraction of random jitter applied to each busy
	// sleep: the model duration is multiplied by a factor drawn uniformly
	// from [1-BusyJitter, 1+BusyJitter]. It de-synchronizes clients that
	// went Busy together (a recovering server sees a spread-out retry
	// wave, not a thundering herd). Zero disables jitter.
	BusyJitter float64
	// Seed perturbs the jitter's deterministic random source. The source
	// is always additionally derived from the call's session and sequence
	// number, so concurrent callers jitter differently even with the same
	// Seed, and the same call under the same Seed replays identically.
	Seed int64
	// TimeScale converts model durations to wall-clock sleeps.
	TimeScale float64
	// MaxAttempts bounds the total sends (0 = unlimited). Exactly-once
	// semantics require unlimited resends; bounded attempts exist for
	// tests that want to observe unreachable servers.
	MaxAttempts int
	// Timeout, when positive, is the model-time deadline for the whole
	// call: Call stamps Request.Deadline with now + scaled(Timeout) so
	// the server can shed the request once it expires, and returns
	// ErrDeadlineExceeded once it passes client-side. Zero propagates no
	// deadline (the pre-overload-control behaviour).
	Timeout time.Duration
	// Budget, when non-nil, is the token-bucket retry budget consulted
	// before every resend triggered by a Busy or Overloaded reply: each
	// such resend spends one token, each terminal outcome earns a
	// fraction back, and an empty bucket turns the shed into
	// ErrOverloaded instead of an unbounded retry storm. Budgets are
	// shared: point every call at the same bucket per client↔server pair.
	// Nil keeps the paper's unlimited Busy retries.
	Budget *RetryBudget
	// Breaker, when non-nil, is the per-server circuit breaker: Call
	// consults it before every send (failing fast with ErrCircuitOpen
	// while open), reports each shed and each terminal outcome to it,
	// and lets its half-open state meter probe traffic after a cooldown.
	// Share one breaker per target server across the client's sessions.
	Breaker *Breaker
}

// DefaultCallOptions returns the options used throughout the experiments:
// the paper's fixed 100 ms busy backoff, no growth, no jitter.
func DefaultCallOptions(timeScale float64) CallOptions {
	return CallOptions{
		ResendAfter: 500 * time.Millisecond,
		BusyBackoff: 100 * time.Millisecond,
		TimeScale:   timeScale,
	}
}

// BackoffCallOptions returns DefaultCallOptions plus capped exponential
// busy backoff (100 ms doubling to 800 ms) with ±20% seeded jitter —
// the tuning chaos clients use so that storms of Busy replies from a
// recovering server do not resend in lockstep.
func BackoffCallOptions(timeScale float64, seed int64) CallOptions {
	o := DefaultCallOptions(timeScale)
	o.BusyBackoffMax = 800 * time.Millisecond
	o.BusyJitter = 0.2
	o.Seed = seed
	return o
}

// busyDelay returns the scaled sleep after the streak-th consecutive
// Busy reply (streak 0 = first).
func (o CallOptions) busyDelay(streak int, rng *rand.Rand) time.Duration {
	d := o.BusyBackoff
	if o.BusyBackoffMax > d {
		for i := 0; i < streak && d < o.BusyBackoffMax; i++ {
			d *= 2
		}
		if d > o.BusyBackoffMax {
			d = o.BusyBackoffMax
		}
	}
	if o.BusyJitter > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 + o.BusyJitter*(2*rng.Float64()-1)))
	}
	return o.scaled(d)
}

// jitterSource builds the deterministic random source for one call's
// jitter, mixing the configured Seed with the call's identity.
func (o CallOptions) jitterSource(session string, seq uint64) *rand.Rand {
	if o.BusyJitter <= 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(session))
	var b [8]byte
	for i := range b {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	return rand.New(rand.NewSource(o.Seed ^ int64(h.Sum64())))
}

func (o CallOptions) scaled(d time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.TimeScale)
	if s <= 0 {
		// Even at TimeScale 0 (unit tests), resend timers keep a small
		// floor so clients do not busy-spin resending.
		s = time.Millisecond
	}
	return s
}

// Call sends req via send and waits for the matching reply on replies,
// resending until a non-Busy terminal reply arrives. Duplicate and stale
// replies are discarded by sequence number. It returns the reply payload
// or an error for StatusAppError/StatusRejected.
func Call(send func(Request), replies <-chan Reply, req Request, opts CallOptions) ([]byte, error) {
	attempts := 0
	busyStreak := 0
	rng := opts.jitterSource(req.Session, req.Seq)
	if opts.Timeout > 0 && req.Deadline.IsZero() {
		req.Deadline = time.Now().Add(opts.scaled(opts.Timeout)) //mspr:wallclock deadlines bound real (scaled) work; server and client shed against the same clock
	}
	// Every exit settles the overload-control bookkeeping exactly once,
	// in one of three classes: terminal (OK/AppError/Rejected — earns
	// budget back, closes the breaker), shed (Busy/Overloaded — feeds the
	// breaker's shed count), or abandoned (attempt bound, client
	// deadline, malformed reply, closed stream — no server outcome was
	// learned, so no budget or shed accounting applies, but a held
	// half-open probe slot MUST be handed back or the breaker wedges
	// half-open, refusing every future call to this target).
	var probeTok uint64
	settle := func(terminal bool) {
		probeTok = 0 // Success/Shed release the slot breaker-side
		opts.settle(terminal)
	}
	abandon := func() {
		if probeTok != 0 {
			opts.Breaker.ProbeAborted(probeTok)
			probeTok = 0
		}
	}
	for {
		attempts++
		if opts.MaxAttempts > 0 && attempts > opts.MaxAttempts {
			abandon()
			return nil, fmt.Errorf("rpc: no reply to %s/%d after %d attempts", req.Session, req.Seq, opts.MaxAttempts)
		}
		if !req.Deadline.IsZero() && time.Now().After(req.Deadline) { //mspr:wallclock deadline expiry check mirrors the server's shed points
			abandon()
			return nil, ErrDeadlineExceeded
		}
		// While this call holds the half-open probe slot its resends ARE
		// the probe: it must not re-consult Allow, which would refuse the
		// call on account of its own in-flight probe.
		if opts.Breaker != nil && probeTok == 0 {
			ok, probe := opts.Breaker.Allow()
			if !ok {
				return nil, ErrCircuitOpen
			}
			probeTok = probe
		}
		send(req)
		deadline := simtime.NewTimer(opts.scaled(opts.ResendAfter))
	waiting:
		for {
			select {
			case rep, ok := <-replies:
				if !ok {
					deadline.Stop()
					abandon()
					return nil, errors.New("rpc: reply channel closed")
				}
				if rep.Session != req.Session || rep.Seq != req.Seq {
					continue // duplicate or stale reply: ignore
				}
				deadline.Stop()
				switch rep.Status {
				case StatusOK:
					settle(true)
					return rep.Payload, nil
				case StatusAppError:
					settle(true)
					return nil, &AppError{Msg: string(rep.Payload)}
				case StatusBusy, StatusOverloaded:
					settle(false)
					if opts.Budget != nil && !opts.Budget.Spend() {
						return nil, ErrOverloaded
					}
					d := opts.busyDelay(busyStreak, rng)
					if rep.Status == StatusOverloaded && rep.RetryAfter > d {
						// The server's hint is a wall-clock estimate of when
						// queue space frees up; honor it when it exceeds the
						// client's own backoff.
						d = rep.RetryAfter
					}
					sleep(d)
					busyStreak++
					break waiting // resend same request
				case StatusRejected:
					settle(true)
					return nil, ErrRejected
				default:
					abandon()
					return nil, fmt.Errorf("rpc: unknown reply status %v", rep.Status)
				}
			case <-deadline.C:
				busyStreak = 0 // no Busy reply this round: streak over
				break waiting  // timed out: resend the same request
			}
		}
	}
}

// settle reports a call outcome to the attached overload-control state:
// terminal outcomes earn retry-budget tokens back and close the breaker;
// sheds feed the breaker's consecutive-shed count.
func (o CallOptions) settle(terminal bool) {
	if terminal {
		if o.Budget != nil {
			o.Budget.Earn()
		}
		if o.Breaker != nil {
			o.Breaker.Success()
		}
		return
	}
	if o.Breaker != nil {
		o.Breaker.Shed()
	}
}

// sleep is a package-level indirection over simtime.Sleep so tests can
// observe the delays Call chooses instead of asserting on wall-clock
// elapsed time.
var sleep = simtime.Sleep

// AppError is an application-level error returned by a service method and
// transported in a reply.
type AppError struct{ Msg string }

func (e *AppError) Error() string { return "service error: " + e.Msg }

// SeqTracker implements the server side of the sequence-number discipline
// for one session: it classifies an incoming sequence number as new,
// duplicate (resend buffered reply) or ignorable.
type SeqTracker struct {
	mu   sync.Mutex
	next uint64 // next expected request sequence number
}

// NewSeqTracker returns a tracker expecting first.
func NewSeqTracker(first uint64) *SeqTracker {
	return &SeqTracker{next: first}
}

// Classification of an incoming request sequence number.
type Classification int

// Classification values.
const (
	// SeqNew is the expected next request: execute it.
	SeqNew Classification = iota
	// SeqDuplicate re-delivers the previous request: resend the buffered
	// reply.
	SeqDuplicate
	// SeqIgnore is anything else (ancient duplicate or from the future —
	// impossible for a correct client, possible for a reordered network).
	SeqIgnore
)

// Classify returns how to treat an incoming request with sequence seq.
func (t *SeqTracker) Classify(seq uint64) Classification {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case seq == t.next:
		return SeqNew
	case seq+1 == t.next:
		return SeqDuplicate
	default:
		return SeqIgnore
	}
}

// Advance moves to the next expected sequence number after executing the
// request with sequence seq.
func (t *SeqTracker) Advance(seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq+1 > t.next {
		t.next = seq + 1
	}
}

// Next returns the next expected sequence number.
func (t *SeqTracker) Next() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// SetNext restores the tracker (checkpoint reload or replay).
func (t *SeqTracker) SetNext(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next = n
}
