package rpc

import (
	"testing"
	"time"
)

// The default options reproduce the paper's fixed 100 ms backoff: no
// growth, no jitter, regardless of the busy streak.
func TestDefaultBusyBackoffIsFixed(t *testing.T) {
	o := DefaultCallOptions(1.0)
	for streak := 0; streak < 6; streak++ {
		if d := o.busyDelay(streak, o.jitterSource("s", 1)); d != 100*time.Millisecond {
			t.Fatalf("streak %d: delay = %v, want fixed 100ms", streak, d)
		}
	}
}

func TestBusyBackoffDoublesToCap(t *testing.T) {
	o := DefaultCallOptions(1.0)
	o.BusyBackoffMax = 800 * time.Millisecond
	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for streak, w := range want {
		if d := o.busyDelay(streak, nil); d != w*time.Millisecond {
			t.Fatalf("streak %d: delay = %v, want %v", streak, d, w*time.Millisecond)
		}
	}
}

func TestBusyJitterBoundedAndSeeded(t *testing.T) {
	o := BackoffCallOptions(1.0, 42)
	base := 100 * time.Millisecond
	lo := time.Duration(float64(base) * (1 - o.BusyJitter))
	hi := time.Duration(float64(base) * (1 + o.BusyJitter))
	r1 := o.jitterSource("sess", 7)
	var first []time.Duration
	for i := 0; i < 16; i++ {
		d := o.busyDelay(0, r1)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		first = append(first, d)
	}
	// Same seed and call identity: identical sequence.
	r2 := o.jitterSource("sess", 7)
	for i, w := range first {
		if d := o.busyDelay(0, r2); d != w {
			t.Fatalf("replay diverged at %d: %v vs %v", i, d, w)
		}
	}
	// A different session draws a different sequence.
	r3 := o.jitterSource("other", 7)
	same := true
	for _, w := range first {
		if o.busyDelay(0, r3) != w {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different sessions produced identical jitter sequences")
	}
}

func TestBusyBackoffThroughCall(t *testing.T) {
	o := DefaultCallOptions(0) // TimeScale 0: scaled() floors at 1ms
	o.BusyBackoffMax = 800 * time.Millisecond
	o.MaxAttempts = 4
	replies := make(chan Reply, 8)
	busy := 0
	send := func(req Request) {
		busy++
		replies <- Reply{Session: req.Session, Seq: req.Seq, Status: StatusBusy}
	}
	req := Request{Session: "s", Seq: 1}
	if _, err := Call(send, replies, req, o); err == nil {
		t.Fatal("expected exhaustion error from all-busy server")
	}
	if busy != 4 {
		t.Fatalf("sent %d times, want MaxAttempts=4", busy)
	}
}

func TestBackoffDoublesToCapNoJitter(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 0, 1)
	wants := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range wants {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("Next #%d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset Next = %v, want 10ms", got)
	}
}

func TestBackoffJitterBoundedAndSeeded(t *testing.T) {
	b1 := NewBackoff(10*time.Millisecond, 160*time.Millisecond, 0.2, 7)
	b2 := NewBackoff(10*time.Millisecond, 160*time.Millisecond, 0.2, 7)
	base := 10 * time.Millisecond
	for i := 0; i < 8; i++ {
		d1, d2 := b1.Next(), b2.Next()
		if d1 != d2 {
			t.Fatalf("same seed diverged at #%d: %v vs %v", i, d1, d2)
		}
		nominal := base
		for j := 0; j < i && nominal < 160*time.Millisecond; j++ {
			nominal *= 2
		}
		if nominal > 160*time.Millisecond {
			nominal = 160 * time.Millisecond
		}
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if d1 < lo || d1 > hi {
			t.Fatalf("jitter #%d out of bounds: %v not in [%v, %v]", i, d1, lo, hi)
		}
	}
}
