package rpc

import (
	"errors"
	"testing"
	"time"
)

func TestRetryBudgetSpendAndEarn(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Spend() || !b.Spend() {
		t.Fatal("a full bucket of 2 must cover two retries")
	}
	if b.Spend() {
		t.Fatal("third retry must fail on an empty bucket")
	}
	b.Earn()
	if b.Spend() {
		t.Fatal("half a token must not cover a retry")
	}
	b.Earn()
	if !b.Spend() {
		t.Fatal("two earns (0.5 each) must restore one retry")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("earning past the cap left %v tokens; want the max of 2", got)
	}
}

func TestRetryBudgetClone(t *testing.T) {
	b := NewRetryBudget(1, 0.1)
	if !b.Spend() || b.Spend() {
		t.Fatal("setup: bucket must be empty now")
	}
	c := b.Clone()
	if !c.Spend() {
		t.Fatal("a clone must start full, independent of the template's balance")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, 20*time.Millisecond)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("a new breaker must be closed and allowing")
	}
	b.Shed()
	if b.State() != BreakerClosed {
		t.Fatal("one shed below the threshold must not open the breaker")
	}
	b.Shed()
	if b.State() != BreakerOpen {
		t.Fatal("two consecutive sheds must open the breaker")
	}
	if b.Allow() {
		t.Fatal("an open breaker must fail calls fast during the cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("after the cooldown one probe must be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("breaker is %v after the cooldown; want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe may be in flight in half-open")
	}
	b.Shed() // the probe was shed: re-open
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("a shed probe must re-open the breaker")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("the next cooldown must admit another probe")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("a successful probe must close the breaker")
	}
	// A success resets the shed streak: one shed no longer opens it.
	b.Shed()
	if b.State() != BreakerClosed {
		t.Fatal("the shed streak must reset on success")
	}
}

// shedServer answers every delivery with the given status via the reply
// channel, simulating a saturated server.
func shedServer(t *testing.T, status Status, retryAfter time.Duration) (func(Request), chan Reply, *int) {
	t.Helper()
	replies := make(chan Reply, 16)
	sends := new(int)
	send := func(r Request) {
		*sends++
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: status, RetryAfter: retryAfter}
	}
	return send, replies, sends
}

func TestCallBudgetExhaustionReturnsErrOverloaded(t *testing.T) {
	send, replies, sends := shedServer(t, StatusOverloaded, time.Millisecond)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Budget = NewRetryBudget(2, 0)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v; want ErrOverloaded once the budget drains", err)
	}
	// First send plus two budgeted retries; the third shed had no token.
	if *sends != 3 {
		t.Fatalf("server saw %d sends; want 3 (1 initial + 2 budgeted retries)", *sends)
	}
}

func TestCallBusyAlsoSpendsBudget(t *testing.T) {
	send, replies, _ := shedServer(t, StatusBusy, 0)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Budget = NewRetryBudget(1, 0)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v; want ErrOverloaded: Busy retries draw from the same budget", err)
	}
}

func TestCallWithoutBudgetKeepsRetrying(t *testing.T) {
	replies := make(chan Reply, 16)
	n := 0
	send := func(r Request) {
		n++
		st := StatusOverloaded
		if n > 5 {
			st = StatusOK
		}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: st, Payload: []byte("done")}
	}
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	out, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if err != nil || string(out) != "done" {
		t.Fatalf("nil budget must preserve unbounded retries: got %q, %v", out, err)
	}
}

func TestCallBreakerOpensAndFailsFast(t *testing.T) {
	send, replies, sends := shedServer(t, StatusOverloaded, 0)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Breaker = NewBreaker(2, time.Hour)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v; want ErrCircuitOpen after consecutive sheds", err)
	}
	if *sends != 2 {
		t.Fatalf("server saw %d sends; want 2 before the breaker opened", *sends)
	}
	// Subsequent calls fail fast without touching the network.
	_, err = Call(send, replies, Request{Session: "s", Seq: 2}, opts)
	if !errors.Is(err, ErrCircuitOpen) || *sends != 2 {
		t.Fatalf("got %v after %d sends; want a fast ErrCircuitOpen with no new send", err, *sends)
	}
}

func TestCallHonorsRetryAfterHint(t *testing.T) {
	const hint = 40 * time.Millisecond
	replies := make(chan Reply, 16)
	n := 0
	send := func(r Request) {
		n++
		st := StatusOverloaded
		if n > 1 {
			st = StatusOK
		}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: st, RetryAfter: hint}
	}
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond // far below the hint
	start := time.Now()
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("call completed in %v; want at least the %v RetryAfter hint honored", elapsed, hint)
	}
}

func TestCallDeadlineExceededClientSide(t *testing.T) {
	// A server that never answers: the deadline, not the resend loop,
	// must end the call.
	send := func(Request) {}
	replies := make(chan Reply)
	opts := DefaultCallOptions(0)
	opts.ResendAfter = time.Millisecond
	opts.Timeout = 5 * time.Millisecond
	opts.TimeScale = 1
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v; want ErrDeadlineExceeded", err)
	}
}

func TestCallStampsDeadlineFromTimeout(t *testing.T) {
	var got Request
	replies := make(chan Reply, 1)
	send := func(r Request) {
		got = r
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK}
	}
	opts := DefaultCallOptions(0)
	opts.Timeout = time.Second
	opts.TimeScale = 1
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); err != nil {
		t.Fatal(err)
	}
	if got.Deadline.IsZero() {
		t.Fatal("Timeout must stamp Request.Deadline for server-side shedding")
	}
	// Without a Timeout the envelope carries no deadline.
	if _, err := Call(send, replies, Request{Session: "s", Seq: 2}, DefaultCallOptions(0)); err != nil {
		t.Fatal(err)
	}
	if !got.Deadline.IsZero() {
		t.Fatal("a call without Timeout must not stamp a deadline")
	}
}

func TestStatusOverloadedString(t *testing.T) {
	if s := StatusOverloaded.String(); s != "Overloaded" {
		t.Fatalf("StatusOverloaded.String() = %q", s)
	}
}
