package rpc

import (
	"errors"
	"testing"
	"time"
)

func TestRetryBudgetSpendAndEarn(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Spend() || !b.Spend() {
		t.Fatal("a full bucket of 2 must cover two retries")
	}
	if b.Spend() {
		t.Fatal("third retry must fail on an empty bucket")
	}
	b.Earn()
	if b.Spend() {
		t.Fatal("half a token must not cover a retry")
	}
	b.Earn()
	if !b.Spend() {
		t.Fatal("two earns (0.5 each) must restore one retry")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("earning past the cap left %v tokens; want the max of 2", got)
	}
}

func TestRetryBudgetClone(t *testing.T) {
	b := NewRetryBudget(1, 0.1)
	if !b.Spend() || b.Spend() {
		t.Fatal("setup: bucket must be empty now")
	}
	c := b.Clone()
	if !c.Spend() {
		t.Fatal("a clone must start full, independent of the template's balance")
	}
}

// fakeClock pins a Breaker to a manually advanced clock so state-machine
// tests assert transitions without real sleeps (which flake on loaded
// runners: a descheduled goroutine can outlast a 20 ms cooldown between
// Shed and Allow).
func fakeClock(b *Breaker) *time.Time {
	now := time.Unix(1_000_000, 0)
	b.now = func() time.Time { return now }
	return &now
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, 20*time.Millisecond)
	now := fakeClock(b)
	allow := func() bool { ok, _ := b.Allow(); return ok }
	if b.State() != BreakerClosed || !allow() {
		t.Fatal("a new breaker must be closed and allowing")
	}
	b.Shed()
	if b.State() != BreakerClosed {
		t.Fatal("one shed below the threshold must not open the breaker")
	}
	b.Shed()
	if b.State() != BreakerOpen {
		t.Fatal("two consecutive sheds must open the breaker")
	}
	if allow() {
		t.Fatal("an open breaker must fail calls fast during the cooldown")
	}
	*now = now.Add(25 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || probe == 0 {
		t.Fatal("after the cooldown one probe must be admitted, with a token")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("breaker is %v after the cooldown; want half-open", b.State())
	}
	if allow() {
		t.Fatal("only one probe may be in flight in half-open")
	}
	b.Shed() // the probe was shed: re-open
	if b.State() != BreakerOpen || allow() {
		t.Fatal("a shed probe must re-open the breaker")
	}
	*now = now.Add(25 * time.Millisecond)
	if !allow() {
		t.Fatal("the next cooldown must admit another probe")
	}
	b.Success()
	if b.State() != BreakerClosed || !allow() {
		t.Fatal("a successful probe must close the breaker")
	}
	// A success resets the shed streak: one shed no longer opens it.
	b.Shed()
	if b.State() != BreakerClosed {
		t.Fatal("the shed streak must reset on success")
	}
}

func TestBreakerProbeAbortedReleasesSlot(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	now := fakeClock(b)
	b.Shed() // open
	*now = now.Add(25 * time.Millisecond)
	_, probe := b.Allow()
	if probe == 0 {
		t.Fatal("setup: the post-cooldown call must hold the probe")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("setup: the probe slot must be taken")
	}
	b.ProbeAborted(probe)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("breaker is %v after an aborted probe; want still half-open", b.State())
	}
	ok, probe2 := b.Allow()
	if !ok || probe2 == 0 {
		t.Fatal("an aborted probe must free the slot for the next caller to probe")
	}
}

func TestBreakerProbeAbortedIgnoresStaleToken(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	now := fakeClock(b)
	b.Shed()
	*now = now.Add(25 * time.Millisecond)
	_, stale := b.Allow()
	b.Success() // the probe settles; breaker closes
	b.ProbeAborted(stale)
	if b.State() != BreakerClosed {
		t.Fatalf("breaker is %v; a stale abort must not disturb a settled breaker", b.State())
	}
	// Open again and grant a NEW probe: the old token must not release it.
	b.Shed()
	*now = now.Add(25 * time.Millisecond)
	if ok, probe := b.Allow(); !ok || probe == 0 {
		t.Fatal("setup: a fresh probe must be granted")
	}
	b.ProbeAborted(stale)
	if ok, _ := b.Allow(); ok {
		t.Fatal("a stale token must not release another call's live probe")
	}
}

// shedServer answers every delivery with the given status via the reply
// channel, simulating a saturated server.
func shedServer(t *testing.T, status Status, retryAfter time.Duration) (func(Request), chan Reply, *int) {
	t.Helper()
	replies := make(chan Reply, 16)
	sends := new(int)
	send := func(r Request) {
		*sends++
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: status, RetryAfter: retryAfter}
	}
	return send, replies, sends
}

func TestCallBudgetExhaustionReturnsErrOverloaded(t *testing.T) {
	send, replies, sends := shedServer(t, StatusOverloaded, time.Millisecond)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Budget = NewRetryBudget(2, 0)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v; want ErrOverloaded once the budget drains", err)
	}
	// First send plus two budgeted retries; the third shed had no token.
	if *sends != 3 {
		t.Fatalf("server saw %d sends; want 3 (1 initial + 2 budgeted retries)", *sends)
	}
}

func TestCallBusyAlsoSpendsBudget(t *testing.T) {
	send, replies, _ := shedServer(t, StatusBusy, 0)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Budget = NewRetryBudget(1, 0)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v; want ErrOverloaded: Busy retries draw from the same budget", err)
	}
}

func TestCallWithoutBudgetKeepsRetrying(t *testing.T) {
	replies := make(chan Reply, 16)
	n := 0
	send := func(r Request) {
		n++
		st := StatusOverloaded
		if n > 5 {
			st = StatusOK
		}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: st, Payload: []byte("done")}
	}
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	out, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if err != nil || string(out) != "done" {
		t.Fatalf("nil budget must preserve unbounded retries: got %q, %v", out, err)
	}
}

func TestCallBreakerOpensAndFailsFast(t *testing.T) {
	send, replies, sends := shedServer(t, StatusOverloaded, 0)
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond
	opts.Breaker = NewBreaker(2, time.Hour)
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("got %v; want ErrCircuitOpen after consecutive sheds", err)
	}
	if *sends != 2 {
		t.Fatalf("server saw %d sends; want 2 before the breaker opened", *sends)
	}
	// Subsequent calls fail fast without touching the network.
	_, err = Call(send, replies, Request{Session: "s", Seq: 2}, opts)
	if !errors.Is(err, ErrCircuitOpen) || *sends != 2 {
		t.Fatalf("got %v after %d sends; want a fast ErrCircuitOpen with no new send", err, *sends)
	}
}

func TestCallHonorsRetryAfterHint(t *testing.T) {
	// Capture the delays Call chooses instead of timing real sleeps:
	// asserting on wall-clock elapsed flakes on loaded runners, and the
	// contract under test is the CHOSEN delay, not the scheduler.
	var slept []time.Duration
	defer func(prev func(time.Duration)) { sleep = prev }(sleep)
	sleep = func(d time.Duration) { slept = append(slept, d) }
	const hint = 40 * time.Millisecond
	replies := make(chan Reply, 16)
	n := 0
	send := func(r Request) {
		n++
		st := StatusOverloaded
		if n > 1 {
			st = StatusOK
		}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: st, RetryAfter: hint}
	}
	opts := DefaultCallOptions(0)
	opts.BusyBackoff = time.Millisecond // far below the hint
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] < hint {
		t.Fatalf("call slept %v; want one backoff of at least the %v RetryAfter hint", slept, hint)
	}
}

// halfOpenBreaker returns a breaker one Allow away from granting the
// half-open probe (threshold 1, cooldown elapsed on its fake clock).
func halfOpenBreaker() *Breaker {
	b := NewBreaker(1, 20*time.Millisecond)
	now := fakeClock(b)
	b.Shed() // open
	*now = now.Add(25 * time.Millisecond)
	return b
}

func TestCallProbeSurvivesLostReply(t *testing.T) {
	// The half-open probe's first reply is lost; the resend loop must
	// treat the resend as part of the same probe, not re-consult Allow
	// and be refused by its own in-flight probe (which would both fail
	// the call and leak the slot, wedging the breaker half-open forever).
	b := halfOpenBreaker()
	replies := make(chan Reply, 16)
	n := 0
	send := func(r Request) {
		n++
		if n == 1 {
			return // probe reply lost
		}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK, Payload: []byte("ok")}
	}
	opts := DefaultCallOptions(0)
	opts.ResendAfter = time.Millisecond
	opts.Breaker = b
	out, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if err != nil || string(out) != "ok" {
		t.Fatalf("probe resend got %q, %v; want success", out, err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker is %v after the probe finally succeeded; want closed", b.State())
	}
}

func TestCallReleasesProbeOnMaxAttempts(t *testing.T) {
	// A probe abandoned by the attempt bound (server never answers) must
	// hand its slot back so the breaker can probe again.
	b := halfOpenBreaker()
	send := func(Request) {}
	replies := make(chan Reply)
	opts := DefaultCallOptions(0)
	opts.ResendAfter = time.Millisecond
	opts.MaxAttempts = 2
	opts.Breaker = b
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); err == nil {
		t.Fatal("setup: the call must fail after MaxAttempts")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("breaker is %v; want half-open after its probe was abandoned", b.State())
	}
	if ok, probe := b.Allow(); !ok || probe == 0 {
		t.Fatal("the abandoned probe must release its slot: the next call probes afresh")
	}
}

func TestCallReleasesProbeOnClientDeadline(t *testing.T) {
	// Same leak via the client-side deadline exit.
	b := halfOpenBreaker()
	send := func(Request) {}
	replies := make(chan Reply)
	opts := DefaultCallOptions(0)
	opts.ResendAfter = time.Millisecond
	opts.Timeout = 5 * time.Millisecond
	opts.TimeScale = 1
	opts.Breaker = b
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("setup: got %v; want ErrDeadlineExceeded", err)
	}
	if ok, probe := b.Allow(); !ok || probe == 0 {
		t.Fatal("a deadline-abandoned probe must release its slot")
	}
}

func TestCallDeadlineExceededClientSide(t *testing.T) {
	// A server that never answers: the deadline, not the resend loop,
	// must end the call.
	send := func(Request) {}
	replies := make(chan Reply)
	opts := DefaultCallOptions(0)
	opts.ResendAfter = time.Millisecond
	opts.Timeout = 5 * time.Millisecond
	opts.TimeScale = 1
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v; want ErrDeadlineExceeded", err)
	}
}

func TestCallStampsDeadlineFromTimeout(t *testing.T) {
	var got Request
	replies := make(chan Reply, 1)
	send := func(r Request) {
		got = r
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK}
	}
	opts := DefaultCallOptions(0)
	opts.Timeout = time.Second
	opts.TimeScale = 1
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts); err != nil {
		t.Fatal(err)
	}
	if got.Deadline.IsZero() {
		t.Fatal("Timeout must stamp Request.Deadline for server-side shedding")
	}
	// Without a Timeout the envelope carries no deadline.
	if _, err := Call(send, replies, Request{Session: "s", Seq: 2}, DefaultCallOptions(0)); err != nil {
		t.Fatal(err)
	}
	if !got.Deadline.IsZero() {
		t.Fatal("a call without Timeout must not stamp a deadline")
	}
}

func TestStatusOverloadedString(t *testing.T) {
	if s := StatusOverloaded.String(); s != "Overloaded" {
		t.Fatalf("StatusOverloaded.String() = %q", s)
	}
}
