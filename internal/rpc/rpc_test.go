package rpc

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func opts() CallOptions {
	return CallOptions{ResendAfter: 20 * time.Millisecond, BusyBackoff: time.Millisecond, TimeScale: 1}
}

func TestCallHappyPath(t *testing.T) {
	replies := make(chan Reply, 1)
	send := func(r Request) {
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK, Payload: []byte("pong")}
	}
	out, err := Call(send, replies, Request{Session: "s", Seq: 1, Method: "ping"}, opts())
	if err != nil || string(out) != "pong" {
		t.Fatalf("got (%q, %v)", out, err)
	}
}

func TestCallResendsUntilReply(t *testing.T) {
	replies := make(chan Reply, 1)
	var sends atomic.Int64
	send := func(r Request) {
		if sends.Add(1) >= 3 { // first two sends are "lost"
			replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK}
		}
	}
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts())
	if err != nil {
		t.Fatal(err)
	}
	if sends.Load() < 3 {
		t.Fatalf("expected ≥3 sends, got %d", sends.Load())
	}
}

func TestCallIgnoresStaleReplies(t *testing.T) {
	replies := make(chan Reply, 4)
	send := func(r Request) {
		replies <- Reply{Session: r.Session, Seq: r.Seq - 1, Status: StatusOK, Payload: []byte("stale")}
		replies <- Reply{Session: "other", Seq: r.Seq, Status: StatusOK, Payload: []byte("wrong session")}
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK, Payload: []byte("right")}
	}
	out, err := Call(send, replies, Request{Session: "s", Seq: 5}, opts())
	if err != nil || string(out) != "right" {
		t.Fatalf("got (%q, %v)", out, err)
	}
}

func TestCallBusyBacksOffAndRetries(t *testing.T) {
	replies := make(chan Reply, 1)
	var n atomic.Int64
	send := func(r Request) {
		if n.Add(1) == 1 {
			replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusBusy}
		} else {
			replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusOK}
		}
	}
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("expected 2 sends, got %d", n.Load())
	}
}

func TestCallAppError(t *testing.T) {
	replies := make(chan Reply, 1)
	send := func(r Request) {
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusAppError, Payload: []byte("boom")}
	}
	_, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts())
	var ae *AppError
	if !errors.As(err, &ae) || ae.Msg != "boom" {
		t.Fatalf("got %v", err)
	}
}

func TestCallRejected(t *testing.T) {
	replies := make(chan Reply, 1)
	send := func(r Request) {
		replies <- Reply{Session: r.Session, Seq: r.Seq, Status: StatusRejected}
	}
	if _, err := Call(send, replies, Request{Session: "s", Seq: 1}, opts()); !errors.Is(err, ErrRejected) {
		t.Fatalf("got %v", err)
	}
}

func TestCallMaxAttempts(t *testing.T) {
	replies := make(chan Reply)
	o := opts()
	o.ResendAfter = time.Millisecond
	o.MaxAttempts = 3
	var sends atomic.Int64
	_, err := Call(func(Request) { sends.Add(1) }, replies, Request{Session: "s", Seq: 1}, o)
	if err == nil {
		t.Fatal("expected failure after max attempts")
	}
	if sends.Load() != 3 {
		t.Fatalf("sent %d times, want 3", sends.Load())
	}
}

func TestSeqTrackerClassification(t *testing.T) {
	tr := NewSeqTracker(5)
	if c := tr.Classify(5); c != SeqNew {
		t.Fatalf("expected SeqNew, got %v", c)
	}
	if c := tr.Classify(4); c != SeqDuplicate {
		t.Fatalf("expected SeqDuplicate, got %v", c)
	}
	if c := tr.Classify(3); c != SeqIgnore {
		t.Fatalf("expected SeqIgnore for ancient, got %v", c)
	}
	if c := tr.Classify(9); c != SeqIgnore {
		t.Fatalf("expected SeqIgnore for future, got %v", c)
	}
	tr.Advance(5)
	if tr.Next() != 6 {
		t.Fatalf("next = %d", tr.Next())
	}
	if c := tr.Classify(5); c != SeqDuplicate {
		t.Fatalf("executed request should classify duplicate, got %v", c)
	}
}

func TestSeqTrackerAdvanceNeverRegresses(t *testing.T) {
	tr := NewSeqTracker(10)
	tr.Advance(3) // stale advance must not move next backwards
	if tr.Next() != 10 {
		t.Fatalf("next regressed to %d", tr.Next())
	}
}

// Property: a tracker that advances through an arbitrary in-order request
// stream classifies exactly one sequence as new at each step, the
// previous one as duplicate, and everything else as ignore.
func TestSeqTrackerProperty(t *testing.T) {
	prop := func(steps uint8) bool {
		tr := NewSeqTracker(1)
		for seq := uint64(1); seq <= uint64(steps%40); seq++ {
			if tr.Classify(seq) != SeqNew {
				return false
			}
			tr.Advance(seq)
			if seq >= 1 && tr.Classify(seq) != SeqDuplicate {
				return false
			}
			if seq >= 2 && tr.Classify(seq-1) != SeqIgnore {
				return false
			}
			if tr.Classify(seq+2) != SeqIgnore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusAppError, StatusBusy, StatusRejected} {
		if s.String() == "" {
			t.Fatalf("status %d has no name", s)
		}
	}
}

func TestSeqTrackerSetNext(t *testing.T) {
	tr := NewSeqTracker(1)
	tr.SetNext(9)
	if tr.Next() != 9 {
		t.Fatalf("SetNext ignored: %d", tr.Next())
	}
}

func TestAppErrorMessage(t *testing.T) {
	err := &AppError{Msg: "boom"}
	if err.Error() != "service error: boom" {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestDefaultCallOptions(t *testing.T) {
	o := DefaultCallOptions(0.5)
	if o.TimeScale != 0.5 || o.ResendAfter <= 0 || o.BusyBackoff <= 0 {
		t.Fatalf("defaults: %+v", o)
	}
}
