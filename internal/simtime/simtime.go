// Package simtime provides precise short sleeps for the simulation
// layers. The experiments scale the paper's millisecond-class latencies
// (disk flushes, message round trips) down by a TimeScale factor, which
// produces sleeps in the tens-to-hundreds of microseconds — far below
// the timer granularity of many kernels (observed ≈1.1 ms on the
// development host). A plain time.Sleep would round every modelled
// latency up to the granularity and destroy the ratios the experiments
// depend on.
//
// Sleep therefore uses the OS timer only for the coarse bulk of a wait
// and spin-yields for the tail, giving microsecond-class precision at
// the cost of some CPU — an acceptable trade in a simulator whose
// "latencies" are the product being measured.
package simtime

import (
	"runtime"
	"time"
)

// coarse is the assumed worst-case OS timer granularity. Sleeps shorter
// than this are fully spin-waited; longer sleeps use the OS timer for
// all but the last coarse period.
const coarse = 2 * time.Millisecond

// Sleep pauses the calling goroutine for d with microsecond-class
// precision. Non-positive durations return immediately.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > coarse {
		time.Sleep(d - coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// After runs f after d, using a goroutine with a precise Sleep rather
// than a coarse runtime timer.
func After(d time.Duration, f func()) {
	if d <= 0 {
		f()
		return
	}
	go func() {
		Sleep(d)
		f()
	}()
}
