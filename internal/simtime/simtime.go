// Package simtime provides precise short sleeps for the simulation
// layers. The experiments scale the paper's millisecond-class latencies
// (disk flushes, message round trips) down by a TimeScale factor, which
// produces sleeps in the tens-to-hundreds of microseconds — far below
// the timer granularity of many kernels (observed ≈1.1 ms on the
// development host). A plain time.Sleep would round every modelled
// latency up to the granularity and destroy the ratios the experiments
// depend on.
//
// Sleep therefore uses the OS timer only for the coarse bulk of a wait
// and spin-yields for the tail, giving microsecond-class precision at
// the cost of some CPU — an acceptable trade in a simulator whose
// "latencies" are the product being measured.
package simtime

import (
	"runtime"
	"sync"
	"time"
)

// coarse is the assumed worst-case OS timer granularity. Sleeps shorter
// than this are fully spin-waited; longer sleeps use the OS timer for
// all but the last coarse period.
const coarse = 2 * time.Millisecond

// Sleep pauses the calling goroutine for d with microsecond-class
// precision. Non-positive durations return immediately.
//
//mspr:blocking pauses the caller for the full duration
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > coarse {
		time.Sleep(d - coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// After runs f after d, using a goroutine with a precise Sleep rather
// than a coarse runtime timer.
func After(d time.Duration, f func()) {
	if d <= 0 {
		f()
		return
	}
	go func() {
		Sleep(d)
		f()
	}()
}

// Timer is a cancellable one-shot timer with simtime's precision: the
// coarse bulk of the wait uses an interruptible OS timer, the tail is
// spin-yielded. C receives exactly one value when the timer fires; a
// stopped timer never fires.
type Timer struct {
	// C fires once at the deadline.
	C <-chan struct{}

	stop chan struct{}
	once sync.Once
}

// NewTimer starts a timer that fires on C after d. Non-positive
// durations fire immediately.
func NewTimer(d time.Duration) *Timer {
	c := make(chan struct{}, 1)
	t := &Timer{C: c, stop: make(chan struct{})}
	if d <= 0 {
		c <- struct{}{}
		return t
	}
	go func() {
		deadline := time.Now().Add(d)
		if d > coarse {
			bulk := time.NewTimer(d - coarse)
			select {
			case <-bulk.C:
			case <-t.stop:
				bulk.Stop()
				return
			}
		}
		for time.Now().Before(deadline) {
			select {
			case <-t.stop:
				return
			default:
				runtime.Gosched()
			}
		}
		c <- struct{}{}
	}()
	return t
}

// Stop cancels the timer and releases its goroutine. Safe to call more
// than once and after the timer fired; it does not drain C.
func (t *Timer) Stop() {
	t.once.Do(func() { close(t.stop) })
}
