package simtime

import (
	"testing"
	"time"
)

func TestTimerFires(t *testing.T) {
	tm := NewTimer(3 * time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestTimerZeroFiresImmediately(t *testing.T) {
	tm := NewTimer(0)
	select {
	case <-tm.C:
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestTimerStop(t *testing.T) {
	tm := NewTimer(50 * time.Millisecond)
	tm.Stop()
	tm.Stop() // idempotent
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}
