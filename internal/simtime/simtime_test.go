package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestSleepZeroReturnsImmediately(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > time.Millisecond {
		t.Fatal("non-positive sleeps should be immediate")
	}
}

func TestSleepPrecisionShort(t *testing.T) {
	// A 100 µs sleep must not round up to the kernel timer granularity
	// (which can exceed 1 ms); allow generous-but-bounded overshoot.
	for _, d := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond} {
		start := time.Now()
		Sleep(d)
		got := time.Since(start)
		if got < d {
			t.Fatalf("Sleep(%v) returned after %v (too early)", d, got)
		}
		if got > d+500*time.Microsecond {
			t.Fatalf("Sleep(%v) took %v (coarse-timer rounding not avoided)", d, got)
		}
	}
}

func TestSleepLong(t *testing.T) {
	start := time.Now()
	Sleep(5 * time.Millisecond)
	got := time.Since(start)
	if got < 5*time.Millisecond || got > 9*time.Millisecond {
		t.Fatalf("Sleep(5ms) took %v", got)
	}
}

func TestConcurrentSleepsOverlap(t *testing.T) {
	// N concurrent sleeps of d must take ≈ d, not N·d, even on one CPU.
	const n = 8
	const d = 2 * time.Millisecond
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Sleep(d)
		}()
	}
	wg.Wait()
	if got := time.Since(start); got > 4*d {
		t.Fatalf("%d concurrent sleeps of %v took %v (serialized?)", n, d, got)
	}
}

func TestAfterFires(t *testing.T) {
	ch := make(chan time.Time, 1)
	start := time.Now()
	After(300*time.Microsecond, func() { ch <- time.Now() })
	select {
	case at := <-ch:
		if at.Sub(start) < 300*time.Microsecond {
			t.Fatal("After fired early")
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestAfterZeroRunsInline(t *testing.T) {
	ran := false
	After(0, func() { ran = true })
	if !ran {
		t.Fatal("After(0) should run synchronously")
	}
}
