package txmsp

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func TestTxCodecRoundTrip(t *testing.T) {
	tx := Tx{Ops: []Op{
		{Kind: OpPut, Key: "a", Value: []byte("1")},
		{Kind: OpGet, Key: "a"},
		{Kind: OpAdd, Key: "n", Value: u64(5)},
		{Kind: OpDelete, Key: "old"},
	}}
	got, err := DecodeTx(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 4 || got.Ops[0].Key != "a" || got.Ops[2].Kind != OpAdd ||
		!bytes.Equal(got.Ops[2].Value, u64(5)) {
		t.Fatalf("round trip: %+v", got)
	}
	res := Result{Values: [][]byte{[]byte("x"), nil, []byte("z")}}
	gotR, err := DecodeResult(res.Encode())
	if err != nil || len(gotR.Values) != 3 || string(gotR.Values[2]) != "z" {
		t.Fatalf("result round trip: %+v %v", gotR, err)
	}
}

func TestTxCodecTruncation(t *testing.T) {
	full := Tx{Ops: []Op{{Kind: OpPut, Key: "key", Value: []byte("value")}}}.Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeTx(full[:cut]); err == nil && cut > 0 {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// txEnv is an application MSP (logging on) calling a transactional
// resource manager.
type txEnv struct {
	t       *testing.T
	net     *simnet.Network
	rm      *Server
	rmCfg   Config
	app     *core.Server
	appCfg  core.Config
	appDisk *simdisk.Disk
	client  *core.Client
	mu      sync.Mutex
}

func newTxEnv(t *testing.T) *txEnv {
	e := &txEnv{t: t, net: simnet.New(simnet.Config{TimeScale: 0})}
	e.rmCfg = Config{ID: "ledger-db", Net: e.net, Disk: simdisk.NewDisk(simdisk.DefaultModel(0))}
	rm, err := Start(e.rmCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.rm = rm

	e.appDisk = simdisk.NewDisk(simdisk.DefaultModel(0))
	dom := core.NewDomain("app", 0, 0)
	def := core.Definition{
		Methods: map[string]core.Handler{
			// deposit adds the amount to the durable balance and returns
			// the per-session operation count.
			"deposit": func(ctx *core.Ctx, amount []byte) ([]byte, error) {
				if _, err := Exec(ctx, "ledger-db", Tx{Ops: []Op{{Kind: OpAdd, Key: "balance", Value: amount}}}); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("ops")) + 1
				ctx.SetVar("ops", u64(n))
				return u64(n), nil
			},
			"balance": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				res, err := Exec(ctx, "ledger-db", Tx{Ops: []Op{{Kind: OpGet, Key: "balance"}}})
				if err != nil {
					return nil, err
				}
				return res.Values[0], nil
			},
		},
	}
	e.appCfg = core.NewConfig("app", dom, e.appDisk, e.net, def)
	app, err := core.Start(e.appCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.app = app
	e.client = core.NewClient("teller", e.net, rpc.DefaultCallOptions(0))
	return e
}

func (e *txEnv) cleanup() {
	e.app.Crash()
	e.rm.Crash()
	e.client.Close()
}

func (e *txEnv) restartApp() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.app.Crash()
	app, err := core.Start(e.appCfg)
	if err != nil {
		e.t.Fatal(err)
	}
	e.app = app
}

func (e *txEnv) restartRM() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rm.Crash()
	rm, err := Start(e.rmCfg)
	if err != nil {
		e.t.Fatal(err)
	}
	e.rm = rm
}

func (e *txEnv) deposit(cs *core.ClientSession, amount, wantOps uint64) {
	e.t.Helper()
	out, err := cs.Call("deposit", u64(amount))
	if err != nil {
		e.t.Fatalf("deposit: %v", err)
	}
	if asU64(out) != wantOps {
		e.t.Fatalf("deposit ops = %d, want %d", asU64(out), wantOps)
	}
}

func (e *txEnv) balance(cs *core.ClientSession) uint64 {
	e.t.Helper()
	out, err := cs.Call("balance", nil)
	if err != nil {
		e.t.Fatalf("balance: %v", err)
	}
	return asU64(out)
}

func TestExactlyOnceTransactions(t *testing.T) {
	e := newTxEnv(t)
	defer e.cleanup()
	cs := e.client.Session("app")
	for i := uint64(1); i <= 5; i++ {
		e.deposit(cs, 10, i)
	}
	if got := e.balance(cs); got != 50 {
		t.Fatalf("balance = %d, want 50", got)
	}
}

func TestTransactionsSurviveRMCrash(t *testing.T) {
	e := newTxEnv(t)
	defer e.cleanup()
	cs := e.client.Session("app")
	e.deposit(cs, 100, 1)
	e.restartRM()
	e.deposit(cs, 100, 2)
	if got := e.balance(cs); got != 200 {
		t.Fatalf("balance after RM crash = %d, want 200", got)
	}
}

// TestAppReplayDoesNotReexecuteTransactions is the heart of the
// integration: the application MSP crashes and replays its sessions; the
// logged transaction replies replay from the log and the durable balance
// is unchanged — no transaction runs twice.
func TestAppReplayDoesNotReexecuteTransactions(t *testing.T) {
	e := newTxEnv(t)
	defer e.cleanup()
	cs := e.client.Session("app")
	for i := uint64(1); i <= 4; i++ {
		e.deposit(cs, 25, i)
	}
	e.restartApp()
	// The session replays its four deposits from the log; a fifth runs
	// live. Exactly-once means the balance is 5 × 25.
	e.deposit(cs, 25, 5)
	if got := e.balance(cs); got != 125 {
		t.Fatalf("balance after app crash = %d, want 125 (transactions re-executed or lost)", got)
	}
	if v, ok := e.rm.Read("balance"); !ok || asU64(v) != 125 {
		t.Fatalf("store audit: %v %v", v, ok)
	}
}

func TestBothCrashesInterleaved(t *testing.T) {
	e := newTxEnv(t)
	defer e.cleanup()
	cs := e.client.Session("app")
	want := uint64(0)
	ops := uint64(0)
	for round := 0; round < 3; round++ {
		ops++
		want += 7
		e.deposit(cs, 7, ops)
		e.restartApp()
		ops++
		want += 7
		e.deposit(cs, 7, ops)
		e.restartRM()
	}
	if got := e.balance(cs); got != want {
		t.Fatalf("balance = %d, want %d", got, want)
	}
}

func TestDuplicateDeliveryDedupedByStore(t *testing.T) {
	// A lossy, duplicating network delivers transaction requests twice;
	// the testable-transaction records must absorb them.
	net := simnet.New(simnet.Config{TimeScale: 0, DupRate: 0.5, LossRate: 0.1, Seed: 3})
	rmCfg := Config{ID: "db", Net: net, Disk: simdisk.NewDisk(simdisk.DefaultModel(0))}
	rm, err := Start(rmCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Crash()
	dom := core.NewDomain("app", 0, 0)
	def := core.Definition{
		Methods: map[string]core.Handler{
			"bump": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				res, err := Exec(ctx, "db", Tx{Ops: []Op{
					{Kind: OpAdd, Key: "n", Value: u64(1)},
					{Kind: OpGet, Key: "n"},
				}})
				if err != nil {
					return nil, err
				}
				return res.Values[0], nil
			},
		},
	}
	app, err := core.Start(core.NewConfig("app", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), net, def))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Crash()
	client := core.NewClient("c", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	cs := client.Session("app")
	for i := uint64(1); i <= 20; i++ {
		out, err := cs.Call("bump", nil)
		if err != nil {
			t.Fatalf("bump %d: %v", i, err)
		}
		if asU64(out) != i {
			t.Fatalf("bump %d returned %d (duplicate transaction executed)", i, asU64(out))
		}
	}
}

func TestStatelessSessionsAcceptAnySeq(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	rm, err := Start(Config{ID: "db", Net: net, Disk: simdisk.NewDisk(simdisk.DefaultModel(0))})
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Crash()
	// Talk to the RM directly with raw envelopes at arbitrary sequence
	// numbers — as a restarted caller would.
	ep := net.Endpoint("raw")
	tx := Tx{Ops: []Op{{Kind: OpAdd, Key: "x", Value: u64(1)}}}
	send := func(seq uint64) {
		ep.Send("db", rpc.Request{Session: "ghost", Seq: seq, Method: "exec",
			Arg: tx.Encode(), From: ep.Addr()})
	}
	recv := func(seq uint64) {
		t.Helper()
		for {
			m := <-ep.Recv()
			if rep, ok := m.Payload.(rpc.Reply); ok && rep.Seq == seq {
				if rep.Status != rpc.StatusOK {
					t.Fatalf("seq %d: %v %s", seq, rep.Status, rep.Payload)
				}
				return
			}
		}
	}
	send(7) // no NewSession flag, arbitrary seq: accepted
	recv(7)
	send(3) // out of order: accepted, executes (different tx id)
	recv(3)
	send(7) // duplicate: accepted, deduplicated by the store
	recv(7)
	if v, ok := rm.Read("x"); !ok || asU64(v) != 2 {
		t.Fatalf("x = %v %v, want 2 (seq 7 executed twice or seq 3 dropped)", v, ok)
	}
}
