// Package txmsp integrates MSPs with back-end transactional systems —
// the paper's stated follow-on work (§7: "we handle middleware server
// interactions with transactional systems within our recovery
// infrastructure"), realized with the testable-transaction technique of
// the Phoenix/App line of work the paper builds on ([1], [2]).
//
// A txmsp.Server is a transactional resource manager exposed as a plain
// MSP: sessions of other MSPs call its Exec method through Ctx.Call.
// Because the resource manager lives outside every application service
// domain, those calls are logged pessimistically — the caller performs a
// distributed log flush before the request leaves its domain, so the
// request is never an orphan, and the logged reply replays without
// re-contacting the store.
//
// The hard problem is the other direction: the *store's* state must not
// see a transaction twice when the caller retries (message loss, BUSY
// backoff) or when the resource manager itself crashes after committing
// but before replying. Exec therefore makes every transaction testable:
// its idempotency key (the caller's session ID and request sequence
// number, stable across replay thanks to Ctx.RequestSeq) and its reply
// are committed atomically with the data. A re-delivered transaction
// finds the recorded reply and returns it without re-executing.
package txmsp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mspr/internal/core"
	"mspr/internal/failpoint"
	"mspr/internal/sdb"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// OpKind is a transaction operation type.
type OpKind byte

// Transaction operation kinds.
const (
	// OpGet reads a key; its result is returned in the reply.
	OpGet OpKind = iota
	// OpPut writes a key.
	OpPut
	// OpAdd interprets the key's value as a big-endian uint64 and adds
	// the operation's Value (also 8-byte big-endian) to it. The canonical
	// "debit/credit" shape that makes duplicate execution observable.
	OpAdd
	// OpDelete removes a key.
	OpDelete
)

// Op is one operation inside a transaction.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// Tx is a transaction: a batch of operations executed atomically, in
// order. Reads observe earlier writes of the same transaction.
type Tx struct {
	Ops []Op
}

// Result carries the values read by a transaction's OpGet operations, in
// operation order.
type Result struct {
	Values [][]byte
}

// Encode serializes a transaction for transport through Ctx.Call.
func (t Tx) Encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(t.Ops)))
	for _, op := range t.Ops {
		b = append(b, byte(op.Kind))
		b = binary.AppendUvarint(b, uint64(len(op.Key)))
		b = append(b, op.Key...)
		b = binary.AppendUvarint(b, uint64(len(op.Value)))
		b = append(b, op.Value...)
	}
	return b
}

// DecodeTx parses an encoded transaction.
func DecodeTx(p []byte) (Tx, error) {
	var t Tx
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return t, errors.New("txmsp: bad op count")
	}
	p = p[k:]
	for i := uint64(0); i < n; i++ {
		if len(p) < 1 {
			return t, errors.New("txmsp: truncated op")
		}
		var op Op
		op.Kind = OpKind(p[0])
		p = p[1:]
		l, k := binary.Uvarint(p)
		if k <= 0 || uint64(len(p)-k) < l {
			return t, errors.New("txmsp: bad key")
		}
		op.Key = string(p[k : k+int(l)])
		p = p[k+int(l):]
		l, k = binary.Uvarint(p)
		if k <= 0 || uint64(len(p)-k) < l {
			return t, errors.New("txmsp: bad value")
		}
		op.Value = append([]byte(nil), p[k:k+int(l)]...)
		p = p[k+int(l):]
		t.Ops = append(t.Ops, op)
	}
	return t, nil
}

// Encode serializes a result.
func (r Result) Encode() []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(r.Values)))
	for _, v := range r.Values {
		b = binary.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return b
}

// DecodeResult parses an encoded result.
func DecodeResult(p []byte) (Result, error) {
	var r Result
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return r, errors.New("txmsp: bad result count")
	}
	p = p[k:]
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(p)
		if k <= 0 || uint64(len(p)-k) < l {
			return r, errors.New("txmsp: bad result value")
		}
		r.Values = append(r.Values, append([]byte(nil), p[k:k+int(l)]...))
		p = p[k+int(l):]
	}
	return r, nil
}

// dataKey namespaces application keys away from the idempotency records.
func dataKey(k string) string { return "d/" + k }

// txKey is the durable idempotency record for one executed transaction.
func txKey(session string, seq uint64) string {
	return fmt.Sprintf("t/%s/%d", session, seq)
}

// Config assembles a transactional resource manager.
type Config struct {
	// ID is the resource manager's process identifier / network address.
	ID string
	// Net is the simulated network.
	Net *simnet.Network
	// Disk hosts the durable store (the "DBMS disk").
	Disk *simdisk.Disk
	// TimeScale matches the rest of the simulation.
	TimeScale float64
	// Tap, when non-nil, attaches the correctness oracle's observation
	// tap (see internal/oracle). Transactions report epoch 0 / LSN 0:
	// their durability is the store's commit, not a session log position,
	// so no MSP recovery event ever rolls them back.
	Tap core.Tap
}

// Server is a transactional resource manager: a NoLog MSP whose only
// durable state is its sdb store. Exactly-once transaction execution is
// provided by testable transactions, not by request logging — this is
// precisely the "interaction contract" division of labour: the MSP
// recovery infrastructure guarantees the *callers* replay
// deterministically, and the resource manager guarantees duplicate
// transactions are detected against its own durable state.
type Server struct {
	cfg   Config
	srv   *core.Server
	store *sdb.Store
}

// Start launches the resource manager. Restarting after a crash reopens
// the store; committed transactions (and their idempotency records)
// survive, uncommitted ones vanish atomically.
func Start(cfg Config) (*Server, error) {
	if cfg.Disk == nil {
		return nil, errors.New("txmsp: config needs a Disk")
	}
	store, err := sdb.Open(cfg.Disk, cfg.ID+".db", sdb.Options{})
	if err != nil {
		return nil, err
	}
	t := &Server{cfg: cfg, store: store}
	dom := core.NewDomain("txdom-"+cfg.ID, 0, cfg.TimeScale)
	ccfg := core.NewConfig(cfg.ID, dom, nil, cfg.Net, core.Definition{
		Methods: map[string]core.Handler{"exec": t.exec},
	})
	ccfg.Logging = false          // durability lives in the store, not a log
	ccfg.StatelessSessions = true // duplicates are detected by testable transactions
	ccfg.TimeScale = cfg.TimeScale
	srv, err := core.Start(ccfg)
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return t, nil
}

// storeFailed converts a store error into the right failure mode: an
// injected crash (the store's process died mid-commit, or mid-write)
// means the outcome is UNKNOWN to the caller — replying with an
// application error would turn a maybe-committed transaction into a
// definite failure and break exactly-once. Those abort with no reply;
// the client's resend is deduplicated by the idempotency record. Plain
// errors (decode failures etc.) are deterministic and reply normally.
func storeFailed(ctx *core.Ctx, err error) error {
	if failpoint.IsInjected(err) || errors.Is(err, sdb.ErrWedged) {
		ctx.AbortNoReply(err)
	}
	return err
}

// exec runs one transaction exactly once. The idempotency key is the
// calling session and request sequence number; key and reply commit
// atomically with the data.
func (t *Server) exec(ctx *core.Ctx, arg []byte) ([]byte, error) {
	id := txKey(ctx.SessionID(), ctx.RequestSeq())
	tx, err := DecodeTx(arg)
	if err != nil {
		return nil, err
	}
	st := t.store.Begin(true)
	// The duplicate check runs inside the (single-writer) transaction so
	// concurrent deliveries of the same request serialize against it.
	if prior, ok, err := st.Get(id); err != nil {
		st.Abort()
		return nil, storeFailed(ctx, err)
	} else if ok {
		st.Abort()
		// Already executed: return the recorded reply. Reported as a
		// replayed execution — it regenerates nothing and must not count
		// toward the request's execution tally.
		if tap := t.cfg.Tap; tap != nil {
			tap.RequestExecuted(t.cfg.ID, ctx.SessionID(), ctx.RequestSeq(), 0, 0, prior, true)
		}
		return prior, nil
	}
	var res Result
	for _, op := range tx.Ops {
		switch op.Kind {
		case OpGet:
			v, _, err := st.Get(dataKey(op.Key))
			if err != nil {
				st.Abort()
				return nil, storeFailed(ctx, err)
			}
			res.Values = append(res.Values, v)
		case OpPut:
			if err := st.Put(dataKey(op.Key), op.Value); err != nil {
				st.Abort()
				return nil, err
			}
		case OpAdd:
			cur, _, err := st.Get(dataKey(op.Key))
			if err != nil {
				st.Abort()
				return nil, storeFailed(ctx, err)
			}
			var base uint64
			if len(cur) >= 8 {
				base = binary.BigEndian.Uint64(cur)
			}
			var delta uint64
			if len(op.Value) >= 8 {
				delta = binary.BigEndian.Uint64(op.Value)
			}
			out := make([]byte, 8)
			binary.BigEndian.PutUint64(out, base+delta)
			if err := st.Put(dataKey(op.Key), out); err != nil {
				st.Abort()
				return nil, err
			}
		case OpDelete:
			if err := st.Delete(dataKey(op.Key)); err != nil {
				st.Abort()
				return nil, err
			}
		default:
			st.Abort()
			return nil, fmt.Errorf("txmsp: unknown op kind %d", op.Kind)
		}
	}
	reply := res.Encode()
	// The testable part: the idempotency record commits with the data.
	if err := st.Put(id, reply); err != nil {
		st.Abort()
		return nil, err
	}
	if err := st.Commit(); err != nil {
		// No tap event on a failed commit: an injected crash means the
		// outcome is unknown (the resend will find — or not find — the
		// idempotency record), and reporting a fresh execution here would
		// plant false duplicates in the history.
		return nil, storeFailed(ctx, err)
	}
	if tap := t.cfg.Tap; tap != nil {
		tap.RequestExecuted(t.cfg.ID, ctx.SessionID(), ctx.RequestSeq(), 0, 0, reply, false)
	}
	return reply, nil
}

// Crash kills the resource manager process (the durable store survives).
func (t *Server) Crash() { t.srv.Crash() }

// Read returns a committed value directly from the store (audit hook).
func (t *Server) Read(key string) ([]byte, bool) {
	return t.store.Get(dataKey(key))
}

// Digest returns the store's committed-state digest (see sdb.Digest) and
// reports it to the attached tap under the given scope, so a storm can
// snapshot the resource manager's state at its boundaries.
func (t *Server) Digest(scope string) uint64 {
	d := t.store.Digest()
	if tap := t.cfg.Tap; tap != nil {
		tap.StateDigest(t.cfg.ID, scope, 0, 0, d)
	}
	return d
}

// Exec is the client-side helper MSP methods use: it runs tx on the
// resource manager rm exactly once, via the calling session's outgoing
// session. During replay the logged reply is returned without touching
// the network or the store.
func Exec(ctx *core.Ctx, rm string, tx Tx) (Result, error) {
	out, err := ctx.Call(rm, "exec", tx.Encode())
	if err != nil {
		return Result{}, err
	}
	return DecodeResult(out)
}
