// Package baselines implements the paper's comparison configurations
// (§5.2):
//
//   - NoLog — no logging and recovery infrastructure at all (run the core
//     engine with Logging disabled; no wrapper needed).
//   - Psession — persistent sessions: the server stores session state in
//     a local DBMS, fetching it with a read transaction before each
//     request and writing it back with a write transaction afterwards.
//   - StateServer — session states held in memory by a state server on a
//     different computer: one fetch round trip and one store round trip
//     per request, no disk.
//
// Both commercial approaches recover (or survive) session state only;
// they support neither shared in-memory state nor exactly-once execution
// across a crash — which is exactly the gap the paper's log-based
// recovery closes.
package baselines

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"mspr/internal/core"
	"mspr/internal/sdb"
	"mspr/internal/simnet"
	"mspr/internal/simtime"
)

// encodeVars serializes a session-variable map deterministically.
func encodeVars(m map[string][]byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(keys)))
	for _, k := range keys {
		out = binary.AppendUvarint(out, uint64(len(k)))
		out = append(out, k...)
		out = binary.AppendUvarint(out, uint64(len(m[k])))
		out = append(out, m[k]...)
	}
	return out
}

// decodeVars parses encodeVars output; corrupt input yields an empty map
// (a baseline has no better recovery story than starting fresh).
func decodeVars(b []byte) map[string][]byte {
	m := make(map[string][]byte)
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return m
	}
	b = b[k:]
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b)-k) < l {
			return m
		}
		key := string(b[k : k+int(l)])
		b = b[k+int(l):]
		l, k = binary.Uvarint(b)
		if k <= 0 || uint64(len(b)-k) < l {
			return m
		}
		m[key] = append([]byte(nil), b[k:k+int(l)]...)
		b = b[k+int(l):]
	}
	return m
}

// WrapPsession returns a Definition whose methods persist session state
// in store: a read transaction fetches it before the handler runs and a
// write transaction stores it afterwards — two database transactions per
// request, the cost structure of the paper's Psession configuration.
func WrapPsession(def core.Definition, store *sdb.Store) core.Definition {
	wrapped := core.Definition{
		Methods: make(map[string]core.Handler, len(def.Methods)),
		Shared:  def.Shared,
	}
	for name, h := range def.Methods {
		h := h
		wrapped.Methods[name] = func(ctx *core.Ctx, arg []byte) ([]byte, error) {
			key := "sess/" + ctx.SessionID()
			rt := store.Begin(false)
			blob, ok, err := rt.Get(key)
			if err != nil {
				return nil, fmt.Errorf("psession read txn: %w", err)
			}
			_ = rt.Commit()
			if ok {
				ctx.ReplaceVars(decodeVars(blob))
			}
			out, herr := h(ctx, arg)
			wt := store.Begin(true)
			if err := wt.Put(key, encodeVars(ctx.VarsSnapshot())); err != nil {
				return nil, fmt.Errorf("psession write txn: %w", err)
			}
			if err := wt.Commit(); err != nil {
				return nil, fmt.Errorf("psession commit: %w", err)
			}
			return out, herr
		}
	}
	return wrapped
}

// ssOp is the state-server wire protocol operation.
type ssOp byte

const (
	ssFetch ssOp = iota
	ssStore
)

// ssRequest and ssReply are the state-server protocol envelopes.
type ssRequest struct {
	ID      uint64
	Op      ssOp
	Session string
	Blob    []byte
	From    simnet.Addr
}

type ssReply struct {
	ID   uint64
	Blob []byte
}

// StateServer holds session states in memory on behalf of MSPs, like the
// commercial web-server configurations of §5.2. It provides no
// durability: if the state server itself crashes, the states are gone
// (the paper makes the same observation).
type StateServer struct {
	ep   *simnet.Endpoint
	stop chan struct{}

	mu   sync.Mutex
	data map[string][]byte
}

// NewStateServer starts a state server at addr.
func NewStateServer(addr string, net *simnet.Network) *StateServer {
	ss := &StateServer{
		ep:   net.Endpoint(simnet.Addr(addr)),
		stop: make(chan struct{}),
		data: make(map[string][]byte),
	}
	go ss.serve()
	return ss
}

func (ss *StateServer) serve() {
	for {
		select {
		case <-ss.stop:
			return
		case m := <-ss.ep.Recv():
			req, ok := m.Payload.(ssRequest)
			if !ok {
				continue
			}
			rep := ssReply{ID: req.ID}
			ss.mu.Lock()
			switch req.Op {
			case ssFetch:
				rep.Blob = append([]byte(nil), ss.data[req.Session]...)
			case ssStore:
				ss.data[req.Session] = append([]byte(nil), req.Blob...)
			}
			ss.mu.Unlock()
			ss.ep.Send(req.From, rep) //mspr:flushed-by none (StateServer baseline keeps states in memory only — §5.2, the gap log-based recovery closes)
		}
	}
}

// Len returns the number of stored session states.
func (ss *StateServer) Len() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.data)
}

// Close stops the state server.
func (ss *StateServer) Close() { close(ss.stop) }

// StateClient is an MSP's connection to a StateServer. It is safe for
// concurrent use by the MSP's worker threads.
type StateClient struct {
	ep        *simnet.Endpoint
	server    simnet.Addr
	timeScale float64
	stop      chan struct{}

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan ssReply
}

// NewStateClient creates a client at addr talking to the state server.
func NewStateClient(addr, server string, net *simnet.Network, timeScale float64) *StateClient {
	c := &StateClient{
		ep:        net.Endpoint(simnet.Addr(addr)),
		server:    simnet.Addr(server),
		timeScale: timeScale,
		stop:      make(chan struct{}),
		pending:   make(map[uint64]chan ssReply),
	}
	go c.dispatch()
	return c
}

func (c *StateClient) dispatch() {
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.ep.Recv():
			rep, ok := m.Payload.(ssReply)
			if !ok {
				continue
			}
			c.mu.Lock()
			ch := c.pending[rep.ID]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- rep:
				default:
				}
			}
		}
	}
}

// Close stops the client's dispatcher.
func (c *StateClient) Close() { close(c.stop) }

// roundTrip performs one request/reply exchange, resending on timeout.
func (c *StateClient) roundTrip(req ssRequest) ssReply {
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	ch := make(chan ssReply, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
	}()
	req.From = c.ep.Addr()
	resend := time.Duration(float64(500*time.Millisecond) * c.timeScale)
	if resend <= 0 {
		resend = time.Millisecond
	}
	for {
		c.ep.Send(c.server, req) //mspr:flushed-by none (baseline fetch/store round trip: the baselines have no log)
		timer := simtime.NewTimer(resend)
		select {
		case rep := <-ch:
			timer.Stop()
			return rep
		case <-timer.C:
		}
	}
}

// Fetch retrieves a session's state from the state server.
func (c *StateClient) Fetch(session string) map[string][]byte {
	rep := c.roundTrip(ssRequest{Op: ssFetch, Session: session})
	return decodeVars(rep.Blob)
}

// Store saves a session's state to the state server, waiting for the
// acknowledgement.
func (c *StateClient) Store(session string, vars map[string][]byte) {
	c.roundTrip(ssRequest{Op: ssStore, Session: session, Blob: encodeVars(vars)})
}

// StoreAsync saves a session's state without waiting for the
// acknowledgement — the replication style of the commercial web servers
// the paper compares against, and the behaviour that reproduces the
// paper's measured StateServer response times (≈ NoLog plus one fetch
// round trip per MSP).
func (c *StateClient) StoreAsync(session string, vars map[string][]byte) {
	//mspr:flushed-by none (fire-and-forget store is the measured behaviour of the commercial baselines)
	c.ep.Send(c.server, ssRequest{Op: ssStore, Session: session, Blob: encodeVars(vars), From: c.ep.Addr()})
}

// WrapStateServer returns a Definition whose methods fetch session state
// from the state server before running and store it back afterwards —
// two message round trips per request and no disk, the cost structure of
// the paper's StateServer configuration.
func WrapStateServer(def core.Definition, sc *StateClient) core.Definition {
	wrapped := core.Definition{
		Methods: make(map[string]core.Handler, len(def.Methods)),
		Shared:  def.Shared,
	}
	for name, h := range def.Methods {
		h := h
		wrapped.Methods[name] = func(ctx *core.Ctx, arg []byte) ([]byte, error) {
			st := sc.Fetch(ctx.SessionID())
			if len(st) > 0 {
				ctx.ReplaceVars(st)
			}
			out, herr := h(ctx, arg)
			sc.StoreAsync(ctx.SessionID(), ctx.VarsSnapshot())
			return out, herr
		}
	}
	return wrapped
}
