package baselines

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/sdb"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func counterDef() core.Definition {
	return core.Definition{
		Methods: map[string]core.Handler{
			"inc": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
}

func TestEncodeDecodeVarsRoundTrip(t *testing.T) {
	prop := func(keys []string, vals [][]byte) bool {
		m := make(map[string][]byte)
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			m[k] = append([]byte(nil), v...)
		}
		got := decodeVars(encodeVars(m))
		if len(got) != len(m) {
			return false
		}
		for k, v := range m {
			if !bytes.Equal(got[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVarsCorruptYieldsEmpty(t *testing.T) {
	if m := decodeVars([]byte{0xFF, 0xFF, 0xFF}); len(m) > 1 {
		t.Fatalf("corrupt input decoded to %v", m)
	}
	if m := decodeVars(nil); len(m) != 0 {
		t.Fatalf("nil input decoded to %v", m)
	}
}

// startBaselineMSP runs a NoLog core server with the given definition.
func startBaselineMSP(t *testing.T, net *simnet.Network, id string, def core.Definition) *core.Server {
	t.Helper()
	dom := core.NewDomain("dom-"+id, 0, 0)
	cfg := core.NewConfig(id, dom, simdisk.NewDisk(simdisk.DefaultModel(0)), net, def)
	cfg.Logging = false
	s, err := core.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPsessionPersistsSessionStateAcrossMSPRestart(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	dbDisk := simdisk.NewDisk(simdisk.DefaultModel(0))
	db, err := sdb.Open(dbDisk, "db", sdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	def := WrapPsession(counterDef(), db)
	s := startBaselineMSP(t, net, "msp", def)
	client := core.NewClient("c", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	cs := client.Session("msp")
	for want := uint64(1); want <= 3; want++ {
		out, err := cs.Call("inc", nil)
		if err != nil || asU64(out) != want {
			t.Fatalf("inc: (%v, %v), want %d", asU64(out), err, want)
		}
	}
	// Restart the MSP without any log: the in-memory session is gone, but
	// the DB state survives. A new session resuming the same session ID
	// is not possible (no recovery infrastructure), so a fresh session
	// starts — its state is independent, demonstrating Psession's
	// per-session persistence boundary.
	s.Crash()
	db2, err := sdb.Open(dbDisk, "db", sdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = startBaselineMSP(t, net, "msp", WrapPsession(counterDef(), db2))
	if db2.Len() == 0 {
		t.Fatal("DB lost the session state")
	}
}

func TestPsessionTwoTransactionsPerRequest(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	dbDisk := simdisk.NewDisk(simdisk.DefaultModel(0))
	db, _ := sdb.Open(dbDisk, "db", sdb.Options{})
	def := WrapPsession(counterDef(), db)
	_ = startBaselineMSP(t, net, "msp", def)
	client := core.NewClient("c", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	cs := client.Session("msp")
	before := dbDisk.Stats()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := cs.Call("inc", nil); err != nil {
			t.Fatal(err)
		}
	}
	after := dbDisk.Stats()
	if w := after.Writes - before.Writes; w != n {
		t.Fatalf("expected %d write transactions, got %d", n, w)
	}
	if r := after.Reads - before.Reads; r != n {
		t.Fatalf("expected %d read transactions, got %d", n, r)
	}
}

func TestStateServerRoundTrip(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	ss := NewStateServer("ss", net)
	defer ss.Close()
	sc := NewStateClient("cli", "ss", net, 0)
	defer sc.Close()
	sc.Store("sess1", map[string][]byte{"k": []byte("v")})
	got := sc.Fetch("sess1")
	if string(got["k"]) != "v" {
		t.Fatalf("fetch = %v", got)
	}
	if len(sc.Fetch("missing")) != 0 {
		t.Fatal("missing session should be empty")
	}
}

func TestStateServerWrappedMSP(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	ss := NewStateServer("ss", net)
	defer ss.Close()
	sc := NewStateClient("msp-sscli", "ss", net, 0)
	defer sc.Close()
	def := WrapStateServer(counterDef(), sc)
	_ = startBaselineMSP(t, net, "msp", def)
	client := core.NewClient("c", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	cs := client.Session("msp")
	for want := uint64(1); want <= 5; want++ {
		out, err := cs.Call("inc", nil)
		if err != nil || asU64(out) != want {
			t.Fatalf("inc = (%d, %v), want %d", asU64(out), err, want)
		}
	}
	if ss.Len() != 1 {
		t.Fatalf("state server holds %d sessions, want 1", ss.Len())
	}
}

func TestStateServerConcurrentClients(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	ss := NewStateServer("ss", net)
	defer ss.Close()
	sc := NewStateClient("cli", "ss", net, 0)
	defer sc.Close()
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			id := string(rune('a' + i))
			for j := 0; j < 20; j++ {
				sc.Store(id, map[string][]byte{"v": {byte(j)}})
				got := sc.Fetch(id)
				if got["v"][0] != byte(j) {
					done <- false
					return
				}
			}
			done <- true
		}(i)
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent state-server access corrupted state")
		}
	}
}
