package failpoint

import (
	"sync"
	"testing"
)

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	if _, ok := r.Eval("anything"); ok {
		t.Fatal("nil registry fired")
	}
	if r.Armed("anything") || r.Hits("anything") != 0 {
		t.Fatal("nil registry reports state")
	}
	r.Disable("anything") // must not panic
	r.DisableAll()
}

func TestDefaultEnableFiresOnce(t *testing.T) {
	r := New(1)
	r.Enable("p")
	if !r.Armed("p") {
		t.Fatal("not armed after Enable")
	}
	if _, ok := r.Eval("p"); !ok {
		t.Fatal("armed point did not fire")
	}
	if r.Armed("p") {
		t.Fatal("one-shot point still armed after firing")
	}
	if _, ok := r.Eval("p"); ok {
		t.Fatal("one-shot point fired twice")
	}
	if r.Hits("p") != 1 {
		t.Fatalf("hits = %d, want 1", r.Hits("p"))
	}
}

func TestTimesAndSkipFirst(t *testing.T) {
	r := New(2)
	r.Enable("p", Times(2), SkipFirst(3))
	fired := 0
	for i := 0; i < 10; i++ {
		if _, ok := r.Eval("p"); ok {
			fired++
			if i < 3 {
				t.Fatalf("fired at evaluation %d despite SkipFirst(3)", i)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestArgDelivered(t *testing.T) {
	r := New(3)
	r.Enable("p", Arg(42))
	h, ok := r.Eval("p")
	if !ok || h.Arg != 42 {
		t.Fatalf("hit = %+v ok=%v, want Arg 42", h, ok)
	}
	if h.R < 0 {
		t.Fatalf("per-hit random value %d is negative", h.R)
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		r := New(seed)
		r.Enable("p", Prob(0.3), Times(-1))
		var fires []int
		for i := 0; i < 200; i++ {
			if _, ok := r.Eval("p"); ok {
				fires = append(fires, i)
			}
		}
		return fires
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("Prob(0.3) fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestUnlimitedTimes(t *testing.T) {
	r := New(4)
	r.Enable("p", Times(-1))
	for i := 0; i < 50; i++ {
		if _, ok := r.Eval("p"); !ok {
			t.Fatalf("unlimited point stopped firing at %d", i)
		}
	}
	r.Disable("p")
	if _, ok := r.Eval("p"); ok {
		t.Fatal("fired after Disable")
	}
	if r.Hits("p") != 50 {
		t.Fatalf("hits = %d, want 50 (preserved across Disable)", r.Hits("p"))
	}
}

func TestReEnableReplaces(t *testing.T) {
	r := New(5)
	r.Enable("p", Times(100))
	r.Enable("p") // replaces: back to one shot
	r.Eval("p")
	if _, ok := r.Eval("p"); ok {
		t.Fatal("re-enable did not replace the old arming")
	}
}

func TestConcurrentEval(t *testing.T) {
	r := New(6)
	r.Enable("p", Times(10))
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, ok := r.Eval("p"); ok {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 10 {
		t.Fatalf("Times(10) fired %d times under concurrency", fired)
	}
}

func TestIsInjected(t *testing.T) {
	if !IsInjected(ErrInjected) {
		t.Fatal("ErrInjected not recognized")
	}
	if IsInjected(nil) {
		t.Fatal("nil recognized as injected")
	}
}
