// Package failpoint is a deterministic fault-injection framework in the
// spirit of etcd's gofail, but pure Go and registry-scoped: no code
// generation, no global state. A Registry holds named failpoints; code
// under test evaluates a point by name at the places where a crash or
// I/O fault is most dangerous (mid-flush, mid-checkpoint, mid-recovery),
// and a test or chaos harness arms the points it wants to fire.
//
// Design rules:
//
//   - Disabled is free. Evaluating against a nil *Registry is a single
//     nil check, so production paths carry no cost and no behaviour
//     change when fault injection is off.
//   - Deterministic. All randomness (probabilistic activation, per-hit
//     random arguments such as torn-write lengths) comes from the
//     registry's seeded generator, so a storm with a given seed always
//     injects the same faults at the same evaluation points.
//   - Scoped. Each test builds its own Registry and attaches it to the
//     layers it exercises; parallel tests cannot interfere.
package failpoint

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrInjected is the sentinel returned (wrapped or bare) by operations
// killed by an injected crash. Harnesses use IsInjected to distinguish
// "the fault fired as scheduled" from a real failure.
var ErrInjected = errors.New("failpoint: injected crash")

// IsInjected reports whether err originates from an injected crash.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Hit carries the activation context of a fired failpoint.
type Hit struct {
	// Arg is the value set with the Arg option (mode-specific: e.g. a
	// torn-write length hint). Zero when unset.
	Arg int64
	// R is a non-negative deterministic random value drawn from the
	// registry's seeded generator at fire time; injection sites use it
	// to pick torn lengths, flipped bits, etc.
	R int64
}

// point is one armed failpoint.
type point struct {
	remaining int     // fires left; < 0 means unlimited
	skip      int     // evaluations to ignore before the first fire
	prob      float64 // activation probability per evaluation (1 = always)
	arg       int64
}

// Registry is a set of named failpoints with a seeded random source.
// The zero value is not usable; use New. A nil *Registry is valid for
// evaluation and never fires.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
	hits   map[string]int64
}

// New creates an empty registry whose probabilistic decisions and
// per-hit random values are driven by seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*point),
		hits:   make(map[string]int64),
	}
}

// Option configures an armed failpoint.
type Option func(*point)

// Times limits the point to n fires, after which it disarms itself.
func Times(n int) Option { return func(p *point) { p.remaining = n } }

// SkipFirst ignores the first n evaluations before the point may fire.
func SkipFirst(n int) Option { return func(p *point) { p.skip = n } }

// Prob fires the point on each evaluation with probability pr (drawn
// from the registry's seeded generator).
func Prob(pr float64) Option { return func(p *point) { p.prob = pr } }

// Arg attaches a mode-specific argument delivered in the Hit.
func Arg(v int64) Option { return func(p *point) { p.arg = v } }

// Enable arms the named failpoint. Without options it fires exactly once
// (the common "crash here next time" case). Re-enabling replaces any
// previous arming of the same name.
func (r *Registry) Enable(name string, opts ...Option) {
	p := &point{remaining: 1, prob: 1}
	for _, o := range opts {
		o(p)
	}
	r.mu.Lock()
	r.points[name] = p
	r.mu.Unlock()
}

// Disable disarms the named failpoint. Its hit count is preserved.
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.points, name)
	r.mu.Unlock()
}

// DisableAll disarms every failpoint, preserving hit counts.
func (r *Registry) DisableAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.points = make(map[string]*point)
	r.mu.Unlock()
}

// Armed reports whether the named failpoint is currently armed.
func (r *Registry) Armed(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.points[name]
	return ok
}

// Hits returns how many times the named failpoint has fired.
func (r *Registry) Hits(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[name]
}

// Eval evaluates the named failpoint at an injection site. It reports
// whether the point fires now and, if so, its activation context. A nil
// registry never fires.
func (r *Registry) Eval(name string) (Hit, bool) {
	if r == nil {
		return Hit{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		return Hit{}, false
	}
	if p.skip > 0 {
		p.skip--
		return Hit{}, false
	}
	if p.prob < 1 && r.rng.Float64() >= p.prob {
		return Hit{}, false
	}
	if p.remaining == 0 {
		delete(r.points, name)
		return Hit{}, false
	}
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			delete(r.points, name)
		}
	}
	r.hits[name]++
	return Hit{Arg: p.arg, R: r.rng.Int63()}, true
}
