package dv

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStateIDOrdering(t *testing.T) {
	cases := []struct {
		a, b StateID
		less bool
	}{
		{StateID{1, 10}, StateID{1, 20}, true},
		{StateID{1, 20}, StateID{1, 10}, false},
		{StateID{1, 100}, StateID{2, 1}, true}, // epoch dominates
		{StateID{2, 1}, StateID{1, 100}, false},
		{StateID{1, 10}, StateID{1, 10}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestVectorMergeTakesMax(t *testing.T) {
	a := Vector{{"p1", 1}: 10, {"p2", 1}: 20}
	b := Vector{{"p1", 1}: 15, {"p3", 2}: 5}
	m := a.Clone().Merge(b)
	want := Vector{{"p1", 1}: 15, {"p2", 1}: 20, {"p3", 2}: 5}
	if !m.Equal(want) {
		t.Fatalf("merge = %v, want %v", m, want)
	}
}

func TestMergeIntoNil(t *testing.T) {
	var a Vector
	a = a.Merge(Vector{{"p", 1}: 1})
	if a[Entry{"p", 1}] != 1 {
		t.Fatalf("merge into nil: %v", a)
	}
}

func TestSetKeepsLater(t *testing.T) {
	v := Vector{}.Set("p", StateID{1, 10})
	v = v.Set("p", StateID{1, 5}) // earlier: ignored
	if v[Entry{"p", 1}] != 10 {
		t.Fatalf("set regressed: %v", v)
	}
	v = v.Set("p", StateID{2, 1}) // later epoch: separate entry
	if v[Entry{"p", 2}] != 1 || v[Entry{"p", 1}] != 10 {
		t.Fatalf("set collapsed epochs: %v", v)
	}
}

// TestMergeKeepsCrossEpochEntries is the regression for the masked-orphan
// bug: a dependency on an older epoch of a process must survive a merge
// into a vector that already depends on a newer epoch — the newer epoch's
// state does not transitively include the older epoch's lost suffix, so
// collapsing the entries would drop a live orphan dependency.
func TestMergeKeepsCrossEpochEntries(t *testing.T) {
	a := Vector{{"front", 2}: 9216}
	a = a.Merge(Vector{{"front", 1}: 10240})
	if a[Entry{"front", 1}] != 10240 || a[Entry{"front", 2}] != 9216 {
		t.Fatalf("cross-epoch merge lost an entry: %v", a)
	}
	k := NewKnowledge()
	k.Record(RecoveryInfo{Process: "front", CrashedEpoch: 1, Recovered: 9728})
	who, orphan := k.OrphanIn(a)
	if !orphan || who != "front" {
		t.Fatalf("masked orphan not detected: (%v, %v) in %v", who, orphan, a)
	}
}

// randomVector builds a vector from fuzz input.
func randomVector(rng *rand.Rand) Vector {
	n := rng.Intn(5)
	v := Vector{}
	names := []ProcessID{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		v = v.Set(names[rng.Intn(len(names))], StateID{Epoch: uint32(rng.Intn(3) + 1), LSN: int64(rng.Intn(100))})
	}
	return v
}

func TestMergePropertyCommutativeIdempotentAssociative(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomVector(rng), randomVector(rng), randomVector(rng)
		// Commutative
		ab := a.Clone().Merge(b)
		ba := b.Clone().Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		// Idempotent
		aa := a.Clone().Merge(a)
		if !aa.Equal(a) && len(a) > 0 {
			return false
		}
		// Associative
		abc1 := a.Clone().Merge(b).Merge(c)
		abc2 := a.Clone().Merge(b.Clone().Merge(c))
		return abc1.Equal(abc2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorBinaryRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVector(rng)
		buf := v.AppendBinary([]byte("prefix")[6:]) // empty slice with cap
		got, rest, err := DecodeVector(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(v) == 0 {
			return len(got) == 0
		}
		return got.Equal(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorDecodeTrailing(t *testing.T) {
	v := Vector{{"p", 1}: 42}
	buf := v.AppendBinary(nil)
	buf = append(buf, 0xAB, 0xCD)
	got, rest, err := DecodeVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) || len(rest) != 2 {
		t.Fatalf("got %v, rest %x", got, rest)
	}
}

func TestDecodeVectorCorrupt(t *testing.T) {
	if _, _, err := DecodeVector(nil); err == nil {
		t.Fatal("decoding empty buffer should fail")
	}
	v := Vector{{"process-name", 3}: 999}
	buf := v.AppendBinary(nil)
	if _, _, err := DecodeVector(buf[:len(buf)/2]); err == nil {
		t.Fatal("decoding truncated buffer should fail")
	}
}

func TestKnowledgeOrphanPredicate(t *testing.T) {
	k := NewKnowledge()
	// p crashed ending epoch 1 having persisted up to 100.
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 100})

	if k.IsOrphan("p", StateID{1, 100}) {
		t.Fatal("state at recovered LSN is not an orphan")
	}
	if !k.IsOrphan("p", StateID{1, 101}) {
		t.Fatal("state beyond recovered LSN is an orphan")
	}
	if k.IsOrphan("p", StateID{2, 500}) {
		t.Fatal("new-epoch state is not an orphan")
	}
	if k.IsOrphan("q", StateID{1, 101}) {
		t.Fatal("other processes unaffected")
	}
}

func TestKnowledgePerEpoch(t *testing.T) {
	k := NewKnowledge()
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 100})
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 2, Recovered: 300})
	// Epoch-1 state beyond 100 stays an orphan even though epoch 2
	// recovered to 300 (the LSNs were reused by different content).
	if !k.IsOrphan("p", StateID{1, 150}) {
		t.Fatal("old-epoch orphan forgotten after later recovery")
	}
	if k.IsOrphan("p", StateID{2, 250}) {
		t.Fatal("epoch-2 durable state misjudged")
	}
	if !k.IsOrphan("p", StateID{2, 301}) {
		t.Fatal("epoch-2 lost state not orphan")
	}
}

func TestKnowledgeRecordIdempotent(t *testing.T) {
	k := NewKnowledge()
	info := RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 100}
	if !k.Record(info) {
		t.Fatal("first record should be new")
	}
	if k.Record(info) {
		t.Fatal("second record should not be new")
	}
}

func TestOrphanIn(t *testing.T) {
	k := NewKnowledge()
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 100})
	v := Vector{{"q", 1}: 999, {"p", 1}: 50}
	if _, orphan := k.OrphanIn(v); orphan {
		t.Fatal("vector without lost deps misjudged")
	}
	v = v.Set("p", StateID{1, 200})
	who, orphan := k.OrphanIn(v)
	if !orphan || who != "p" {
		t.Fatalf("OrphanIn = (%v, %v)", who, orphan)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	k := NewKnowledge()
	k.Record(RecoveryInfo{Process: "b", CrashedEpoch: 2, Recovered: 7})
	k.Record(RecoveryInfo{Process: "a", CrashedEpoch: 1, Recovered: 3})
	k.Record(RecoveryInfo{Process: "a", CrashedEpoch: 2, Recovered: 9})
	snap := k.Snapshot()
	want := []RecoveryInfo{
		{Process: "a", CrashedEpoch: 1, Recovered: 3},
		{Process: "a", CrashedEpoch: 2, Recovered: 9},
		{Process: "b", CrashedEpoch: 2, Recovered: 7},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %v", snap)
	}
	k2 := NewKnowledge()
	k2.Restore(snap)
	if !reflect.DeepEqual(k2.Snapshot(), want) {
		t.Fatalf("restore mismatch: %v", k2.Snapshot())
	}
}

func TestVectorStringDeterministic(t *testing.T) {
	v := Vector{{"z", 1}: 1, {"a", 2}: 3}
	if got := v.String(); got != "[a:2:3 z:1:1]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestStateIDMax(t *testing.T) {
	a, b := StateID{1, 10}, StateID{2, 3}
	if a.Max(b) != b || b.Max(a) != b {
		t.Fatal("Max should pick the later state")
	}
	if a.Max(a) != a {
		t.Fatal("Max of equal states")
	}
	if got := a.String(); got != "1:10" {
		t.Fatalf("String = %q", got)
	}
}

func TestKnowledgeLookup(t *testing.T) {
	k := NewKnowledge()
	if _, ok := k.Lookup("p", 1); ok {
		t.Fatal("empty knowledge should have no entry")
	}
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 42})
	r, ok := k.Lookup("p", 1)
	if !ok || r != 42 {
		t.Fatalf("Lookup = (%d, %v)", r, ok)
	}
	// Record never overwrites: the recovered state number of an epoch is
	// determined once.
	k.Record(RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 99})
	if r, _ := k.Lookup("p", 1); r != 42 {
		t.Fatalf("Lookup after re-record = %d, want 42", r)
	}
}
