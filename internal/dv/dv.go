// Package dv implements the dependency-tracking machinery of optimistic
// message logging as used by the paper (§3.1): state identifiers, per-
// session dependency vectors, and each MSP's knowledge of its peers'
// recovered state numbers.
//
// A process's state identifier is (epoch, state number); its state number
// is the LSN of its most recent log record and its epoch number identifies
// a failure-free period, incremented after each crash recovery. A
// dependency vector (DV) maps each process the owner transitively depends
// on to a state identifier, and is merged item-wise (maximization) when a
// message or shared-variable value is received.
//
// Orphan detection: after MSP p recovers from a crash that ended its epoch
// e, it broadcasts the recovered state number r_e — the largest LSN that
// survived on disk. Any dependency on (p, epoch e, LSN n) with n > r_e is
// an orphan: it reflects state p can no longer reconstruct. Knowledge is
// kept per epoch because a later epoch reuses LSNs beyond r_e: a
// dependency (e=1, n) with n > r_1 is an orphan even if a subsequent
// epoch's recovered state number exceeds n (the Fig. 11 multi-crash
// scenarios rely on this distinction).
package dv

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ProcessID identifies an MSP (a crash unit).
type ProcessID string

// StateID identifies a point in a process's execution: the epoch (failure-
// free period) and the LSN of the process's most recent log record within
// that epoch.
type StateID struct {
	Epoch uint32
	LSN   int64
}

// Less reports whether s precedes t: an earlier epoch always precedes a
// later one; within an epoch, a smaller LSN precedes a larger one.
func (s StateID) Less(t StateID) bool {
	if s.Epoch != t.Epoch {
		return s.Epoch < t.Epoch
	}
	return s.LSN < t.LSN
}

// Max returns the later of s and t.
func (s StateID) Max(t StateID) StateID {
	if s.Less(t) {
		return t
	}
	return s
}

func (s StateID) String() string {
	return fmt.Sprintf("%d:%d", s.Epoch, s.LSN)
}

// Entry names one dependency slot of a vector: a process and one of its
// epochs. Dependencies are kept per (process, epoch), not per process: a
// state of a later epoch does not transitively include an earlier epoch's
// states beyond that crash's recovered state number, so collapsing a
// vector to one entry per process could mask an orphan dependency behind
// a newer, unrelated epoch (e.g. a shared value written before a peer's
// crash, read after the restarted peer has already been heard from).
type Entry struct {
	Process ProcessID
	Epoch   uint32
}

// Vector is a dependency vector: for each (process, epoch) the owner
// transitively depends on, the largest LSN depended upon. The zero value
// (nil) is an empty vector. Vector is not safe for concurrent use;
// sessions and shared variables guard their vectors with their own locks.
type Vector map[Entry]int64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	for e, lsn := range v {
		c[e] = lsn
	}
	return c
}

// CloneWith returns an independent copy of v with the dependency e set to
// at least lsn. It is Clone followed by Set, but sizes the copy for the
// extra entry up front so the hot path (a session's vector plus its own
// current state) costs a single allocation.
func (v Vector) CloneWith(e Entry, lsn int64) Vector {
	c := make(Vector, len(v)+1)
	for k, x := range v {
		c[k] = x
	}
	if cur, ok := c[e]; !ok || cur < lsn {
		c[e] = lsn
	}
	return c
}

// Merge folds other into v by item-wise maximization and returns the
// (possibly newly allocated) result. The receiver is modified in place
// when non-nil.
func (v Vector) Merge(other Vector) Vector {
	if len(other) == 0 {
		return v
	}
	if v == nil {
		v = make(Vector, len(other))
	}
	for e, lsn := range other {
		if cur, ok := v[e]; !ok || cur < lsn {
			v[e] = lsn
		}
	}
	return v
}

// Set records the dependency on p at state s, keeping the larger of s.LSN
// and any existing entry for that epoch, and returns the (possibly newly
// allocated) vector.
func (v Vector) Set(p ProcessID, s StateID) Vector {
	if v == nil {
		v = make(Vector, 1)
	}
	e := Entry{Process: p, Epoch: s.Epoch}
	if cur, ok := v[e]; !ok || cur < s.LSN {
		v[e] = s.LSN
	}
	return v
}

// Equal reports whether v and other contain exactly the same entries.
func (v Vector) Equal(other Vector) bool {
	if len(v) != len(other) {
		return false
	}
	for e, lsn := range v {
		if o, ok := other[e]; !ok || o != lsn {
			return false
		}
	}
	return true
}

// sorted returns v's entries ordered by process, then epoch.
func (v Vector) sorted() []Entry {
	es := make([]Entry, 0, len(v))
	for e := range v {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Process != es[j].Process {
			return es[i].Process < es[j].Process
		}
		return es[i].Epoch < es[j].Epoch
	})
	return es
}

// String renders the vector deterministically, e.g. "[MSP1:1:10 MSP2:1:20]".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range v.sorted() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d:%d", e.Process, e.Epoch, v[e])
	}
	b.WriteByte(']')
	return b.String()
}

// AppendBinary encodes v onto buf in a deterministic, self-delimiting
// format and returns the extended buffer.
func (v Vector) AppendBinary(buf []byte) []byte {
	es := v.sorted()
	buf = binary.AppendUvarint(buf, uint64(len(es)))
	for _, e := range es {
		buf = binary.AppendUvarint(buf, uint64(len(e.Process)))
		buf = append(buf, e.Process...)
		buf = binary.AppendUvarint(buf, uint64(e.Epoch))
		buf = binary.AppendVarint(buf, v[e])
	}
	return buf
}

// DecodeVector decodes a vector produced by AppendBinary from the front of
// buf, returning the vector and the remaining bytes.
func DecodeVector(buf []byte) (Vector, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, fmt.Errorf("dv: bad vector length")
	}
	buf = buf[k:]
	var v Vector
	if n > 0 {
		v = make(Vector, n)
	}
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(buf)
		if k <= 0 || uint64(len(buf)-k) < l {
			return nil, nil, fmt.Errorf("dv: bad process id")
		}
		id := ProcessID(buf[k : k+int(l)])
		buf = buf[k+int(l):]
		e, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, fmt.Errorf("dv: bad epoch")
		}
		buf = buf[k:]
		lsn, k := binary.Varint(buf)
		if k <= 0 {
			return nil, nil, fmt.Errorf("dv: bad lsn")
		}
		buf = buf[k:]
		ent := Entry{Process: id, Epoch: uint32(e)}
		if cur, ok := v[ent]; !ok || cur < lsn {
			v[ent] = lsn
		}
	}
	return v, buf, nil
}

// RecoveryInfo is the content of a recovery message: after recovering from
// a crash that ended CrashedEpoch, Process was able to restore state up to
// Recovered (its recovered state number — the largest LSN persistent
// before the crash).
type RecoveryInfo struct {
	Process      ProcessID
	CrashedEpoch uint32
	Recovered    int64
}

// Knowledge is an MSP's accumulated knowledge of peer recovered state
// numbers, kept per (process, epoch). It is safe for concurrent use.
type Knowledge struct {
	mu  sync.RWMutex
	rec map[ProcessID]map[uint32]int64
}

// NewKnowledge returns an empty knowledge table.
func NewKnowledge() *Knowledge {
	return &Knowledge{rec: make(map[ProcessID]map[uint32]int64)}
}

// Record stores a recovery message's content. It returns true if the
// information was new (not already known).
func (k *Knowledge) Record(info RecoveryInfo) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	m := k.rec[info.Process]
	if m == nil {
		m = make(map[uint32]int64)
		k.rec[info.Process] = m
	}
	if _, ok := m[info.CrashedEpoch]; ok {
		return false
	}
	m[info.CrashedEpoch] = info.Recovered
	return true
}

// Lookup returns the recovered state number recorded for p's epoch, if
// any. A re-run of an interrupted recovery uses it to rebroadcast the
// same number it announced the first time — the recovered state number of
// an epoch is determined once, forever.
func (k *Knowledge) Lookup(p ProcessID, epoch uint32) (int64, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	r, ok := k.rec[p][epoch]
	return r, ok
}

// IsOrphan reports whether a dependency on process p at state s refers to
// state that p lost in a crash: p's epoch s.Epoch is known to have ended
// with a recovered state number smaller than s.LSN.
func (k *Knowledge) IsOrphan(p ProcessID, s StateID) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	r, ok := k.rec[p][s.Epoch]
	return ok && s.LSN > r
}

// OrphanIn returns the first process in v whose entry is an orphan
// dependency, or ("", false) if v contains none.
func (k *Knowledge) OrphanIn(v Vector) (ProcessID, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	for e, lsn := range v {
		if r, ok := k.rec[e.Process][e.Epoch]; ok && lsn > r {
			return e.Process, true
		}
	}
	return "", false
}

// Snapshot returns all recorded recovery information, sorted
// deterministically (by process, then epoch), for inclusion in an MSP
// checkpoint.
func (k *Knowledge) Snapshot() []RecoveryInfo {
	k.mu.RLock()
	defer k.mu.RUnlock()
	var out []RecoveryInfo
	for p, m := range k.rec {
		for e, r := range m {
			out = append(out, RecoveryInfo{Process: p, CrashedEpoch: e, Recovered: r})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Process != out[j].Process {
			return out[i].Process < out[j].Process
		}
		return out[i].CrashedEpoch < out[j].CrashedEpoch
	})
	return out
}

// Restore loads previously snapshotted recovery information (checkpoint
// contents or logged recovery-info records) into the table.
func (k *Knowledge) Restore(infos []RecoveryInfo) {
	for _, info := range infos {
		k.Record(info)
	}
}
