package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mspr/internal/dv"
	"mspr/internal/failpoint"
	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

// Named crash points of the recovery machinery (see Config.Failpoints).
// Each halts the MSP exactly as a process death at that instant would:
// volatile state is abandoned, the endpoint goes down, and the log's
// buffered records are lost. Recovery must be re-enterable from any of
// them.
const (
	// FPRecoveryBeforeScan crashes after the anchor and MSP checkpoint
	// were read but before the analysis scan (Fig. 12 step 2) starts.
	FPRecoveryBeforeScan = "core.recovery.before-scan"
	// FPRecoveryMidScan crashes inside the analysis scan, between two
	// scanned records (use failpoint.SkipFirst to pick which).
	FPRecoveryMidScan = "core.recovery.mid-scan"
	// FPRecoveryAfterScan crashes after the scan, before the recovered
	// state number is made durable.
	FPRecoveryAfterScan = "core.recovery.after-scan"
	// FPRecoveryBeforeBroadcast crashes after the recovered state number
	// is durable but before the recovery broadcast (§4.3): peers learn
	// the crash only from the next incarnation, which must announce the
	// same number.
	FPRecoveryBeforeBroadcast = "core.recovery.before-broadcast"
	// FPRecoveryAfterBroadcast crashes after peers heard the broadcast
	// but before the post-recovery checkpoint.
	FPRecoveryAfterBroadcast = "core.recovery.after-broadcast"
	// FPCkptBeforeAnchor crashes a fuzzy MSP checkpoint (§3.4) after the
	// checkpoint record is durable but before the anchor points at it.
	FPCkptBeforeAnchor = "core.ckpt.before-anchor"
	// FPCkptBeforeTruncate crashes after the anchor update but before
	// the old log prefix is discarded.
	FPCkptBeforeTruncate = "core.ckpt.before-truncate"
	// FPReplayMidSession crashes session replay (§4.1) between two
	// replayed records.
	FPReplayMidSession = "core.replay.mid-session"
	// FPRecoveryBeforeServe crashes in the instant-recovery window
	// between the end of the analysis pass (unrecovered set published,
	// post-recovery checkpoint durable) and the first reply the new
	// incarnation sends.
	FPRecoveryBeforeServe = "core.recovery.before-serve"
	// FPLazyReplay crashes a lazy (on-demand) session replay: a request
	// touched an unrecovered session, the session was claimed, and the
	// crash hits before its replay starts.
	FPLazyReplay = "core.recovery.lazy-replay"
	// FPSweepMid crashes the background recovery sweep between two
	// recovery units (use failpoint.SkipFirst to pick which).
	FPSweepMid = "core.recovery.mid-sweep"
	// FPDedupSkip does not crash anything: while armed, a request
	// classified as a duplicate is executed as if it were new —
	// deliberately broken duplicate detection. It exists so the
	// correctness oracle's exactly-once checker can be demonstrated to
	// fail (and a failing storm minimized) against a known-broken server;
	// nothing arms it outside tests and cmd/mspr-chaos -break-dedup.
	FPDedupSkip = "core.dedup.skip"
)

// Sentinel errors used across the recovery protocol.
var (
	// errOrphanDep reports that a distributed log flush failed because a
	// dependency refers to state lost in a crash: the flushing session or
	// shared variable is an orphan (§3.1, §4.1).
	errOrphanDep = errors.New("core: dependency is an orphan")
	// errUnavailable reports that a peer MSP is down or still recovering.
	errUnavailable = errors.New("core: peer unavailable")
)

// orphanAbort is panicked through a service method when an interception
// point finds the executing session to be an orphan; the request
// dispatcher recovers it and initiates session orphan recovery.
type orphanAbort struct{}

// crashAbort is panicked through a service method when the server crashes
// underneath it (log closed); the request is abandoned.
type crashAbort struct{ err error }

// replayRestart is panicked through a replaying method when mid-replay
// knowledge updates reveal the session became an orphan at an
// already-replayed record; replay restarts from the checkpoint (multiple
// concurrent crashes, §4.1).
type replayRestart struct{}

type serverState int32

const (
	stateRecovering serverState = iota
	stateRunning
	stateCrashed
)

// Server is a Middleware Server Process (MSP): a crash unit hosting many
// sessions (the recovery units) and shared variables, all logging to one
// physical log.
type Server struct {
	cfg Config
	ep  *simnet.Endpoint
	log *wal.Log

	know  *dv.Knowledge
	epoch atomic.Uint32 // current epoch (failure-free period)

	// state is read on every request (hot path) and so kept atomic;
	// stateMu serializes transitions with goBackground's WaitGroup
	// increment (see goBackground) — it is never taken on the hot path.
	// Root of the lattice (taken before any stripe or session lock),
	// and noblock: its critical sections are a handful of instructions.
	stateMu sync.Mutex   //mspr:lock-level 10 noblock
	state   atomic.Int32 // serverState

	// sessions is lock-striped (see shards.go); shared is immutable
	// after Start (built from Def.Shared before any worker runs), each
	// variable carrying its own lock.
	sessions sessionTable
	shared   map[string]*SharedVar

	// Admission lanes (see admission.go): reqCh is the bounded normal
	// lane for new client work, prioCh the small priority lane for
	// recovery-critical traffic. Workers drain prioCh first.
	reqCh  chan rpc.Request
	prioCh chan rpc.Request
	stop   chan struct{}
	wg     sync.WaitGroup

	// svcEWMA is the exponentially weighted moving average of wall-clock
	// request service time, in nanoseconds — the drain-rate estimate the
	// RetryAfter hint on shed replies is derived from.
	svcEWMA atomic.Int64

	pending pendingCalls

	// Control plane (see ctlplane.go): outgoing control-call IDs and
	// reply routing, the server-side dedup cache, and per-peer health.
	ctlID    atomic.Uint64
	ctl      pendingCtl
	ctlDedup *ctlCache
	health   *peerHealth

	bytesSinceCkpt atomic.Int64
	ckptRunning    atomic.Bool
	lastMSPCkpt    wal.LSN

	// Instant-recovery time-to-first-reply: recoverT0 is when this
	// incarnation's crash recovery began; ttfrPending arms the one-shot
	// measurement in reply(); ttfr holds the measured duration in
	// nanoseconds (0 = no crash recovery, or no reply sent yet).
	recoverT0   time.Time
	ttfrPending atomic.Bool
	ttfr        atomic.Int64

	stats ServerStats
}

// ServerStats counts recovery-infrastructure activity.
type ServerStats struct {
	RequestsServed   atomic.Int64
	RequestsReplayed atomic.Int64
	SessionCkpts     atomic.Int64
	SVCkpts          atomic.Int64
	MSPCkpts         atomic.Int64
	OrphanRecoveries atomic.Int64
	SVRollbacks      atomic.Int64
	DistFlushes      atomic.Int64
	BusyReplies      atomic.Int64
	// OverloadedReplies counts requests shed with StatusOverloaded —
	// admission-queue overflow plus expired-deadline sheds.
	OverloadedReplies atomic.Int64
}

// Start creates and starts an MSP. If the configured disk holds a log
// with an anchor from a previous incarnation, Start performs full MSP
// crash recovery (§4.3) before accepting requests: sessions recover in
// parallel while new sessions are already being served.
func Start(cfg Config) (*Server, error) {
	if cfg.ID == "" {
		return nil, errors.New("core: config needs an ID")
	}
	if cfg.Domain == nil {
		return nil, errors.New("core: config needs a Domain")
	}
	if cfg.Net == nil {
		return nil, errors.New("core: config needs a Net")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.FlushDeadline <= 0 {
		cfg.FlushDeadline = 2 * time.Second
	}
	if cfg.CtlRetransmit <= 0 {
		cfg.CtlRetransmit = 20 * time.Millisecond
	}
	if cfg.BroadcastDeadline <= 0 {
		cfg.BroadcastDeadline = 500 * time.Millisecond
	}
	if cfg.PeerProbeEvery <= 0 {
		cfg.PeerProbeEvery = 100 * time.Millisecond
	}
	if cfg.RequestQueueDepth <= 0 {
		cfg.RequestQueueDepth = DefaultRequestQueueDepth
	}
	if cfg.PriorityQueueDepth <= 0 {
		cfg.PriorityQueueDepth = DefaultPriorityQueueDepth
	}
	s := &Server{
		cfg:    cfg,
		know:   dv.NewKnowledge(),
		shared: make(map[string]*SharedVar),
		reqCh:  make(chan rpc.Request, cfg.RequestQueueDepth),
		prioCh: make(chan rpc.Request, cfg.PriorityQueueDepth),
		stop:   make(chan struct{}),
	}
	s.state.Store(int32(stateRecovering))
	s.sessions.init()
	if cfg.Failpoints != nil && cfg.Disk != nil {
		cfg.Disk.SetFailpoints(cfg.Failpoints)
	}
	s.epoch.Store(1) // epoch 1 is the first failure-free period
	s.pending.m = make(map[string]chan rpc.Reply)
	s.ctlDedup = newCtlCache(1024)
	s.health = newPeerHealth()
	for _, def := range cfg.Def.Shared {
		s.shared[def.Name] = newSharedVar(s, def)
	}
	s.ep = cfg.Net.Endpoint(simnet.Addr(cfg.ID))
	s.ep.SetDown(false)
	s.registerWithDomain()

	// The receive loop and worker pool start before crash recovery runs:
	// a recovering MSP answers clients with Busy and serves domain
	// control traffic — its own recovery broadcast needs the acks routed
	// back to it — instead of dead-dropping everything until recovery
	// ends. handleRequest degrades to Busy while the state is not
	// Running.
	s.wg.Add(1)
	go s.receiveLoop()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}

	var recoveredSessions []*Session
	if cfg.Logging {
		if cfg.Disk == nil {
			s.halt()
			return nil, errors.New("core: logging requires a Disk")
		}
		lg, err := wal.Open(cfg.Disk, cfg.ID+".log", wal.Config{
			BatchTimeout: cfg.BatchFlushTimeout,
			SegmentSize:  cfg.WalSegmentSize,
		})
		if err != nil {
			s.halt()
			return nil, err
		}
		s.log = lg
		anchor, ok, err := lg.ReadAnchor()
		if err != nil {
			s.halt()
			return nil, fmt.Errorf("core: %s: %w", cfg.ID, err)
		}
		if ok {
			s.recoverT0 = time.Now() //mspr:wallclock time-to-first-reply is a measured latency, not simulated model time
			recoveredSessions, err = s.recoverFromCrash(anchor)
			if err != nil {
				// Leave the carcass exactly as a crash would: endpoint
				// down, log closed. A later Start recovers from disk.
				// Units already published on the pending gauges by the
				// interrupted recovery belong to this dead incarnation;
				// retire them so the gauges track live work only.
				s.halt()
				s.releasePendingUnits()
				return nil, fmt.Errorf("core: %s: crash recovery: %w", cfg.ID, err)
			}
			s.ttfrPending.Store(true)
		} else {
			// Fresh start: persist an initial MSP checkpoint and anchor so
			// the very first crash already finds a recovery starting point.
			if err := s.writeMSPCheckpoint(); err != nil {
				s.halt()
				return nil, err
			}
		}
	}

	s.setState(stateRunning)
	if cfg.Logging && cfg.AntiEntropyEvery > 0 {
		s.goBackground(s.antiEntropyLoop)
	}
	// Instant recovery (§4.3 + REDO-only instant restart): the server is
	// already serving — a request touching an unrecovered session claims
	// and replays just that session — while the background sweep drains
	// the remaining units at low priority. NoRecoverySweep leaves the
	// drain entirely to first touch (tests, TTFR benches).
	if len(recoveredSessions) > 0 && !cfg.NoRecoverySweep {
		s.goBackground(func() { s.recoverySweep(recoveredSessions) })
	}
	return s, nil
}

// sweepConcurrency bounds how many sessions the background sweep replays
// at once. A bounded pool (instead of one goroutine per session) keeps a
// 10k-session restart from stampeding the scheduler and the WAL against
// live traffic — serving during replay is the whole point — while still
// draining a large directory in a few passes.
const sweepConcurrency = 4

// recoverySweep drains the unrecovered units left by the analysis pass:
// sessions are claimed and replayed by a small worker pool (a single
// worker under SerialRecovery), then shared variables are materialized in
// place. Units claimed first by a request (lazy replay) are skipped. The
// workers yield between units so live traffic keeps priority.
func (s *Server) recoverySweep(sessions []*Session) {
	workers := sweepConcurrency
	if s.cfg.SerialRecovery {
		workers = 1
	}
	if workers > len(sessions) {
		workers = len(sessions)
	}
	var next atomic.Int64
	var stop atomic.Bool // a crash (real or injected) ends the sweep
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		if !s.goBackground(func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(sessions) {
					return
				}
				if s.getState() == stateCrashed {
					stop.Store(true)
					return
				}
				if err := s.evalCrashPoint(FPSweepMid); err != nil {
					stop.Store(true)
					return
				}
				sess := sessions[i]
				if !sess.claimForReplay() {
					continue // lazily replayed (or ended) already
				}
				metrics.Recovery.SweepReplays.Inc()
				s.runSessionRecovery(sess)
				runtime.Gosched() // low priority: let workers claim the next units
			}
		}) {
			wg.Done() // server already crashed; no worker was spawned
			return
		}
	}
	wg.Wait()
	if stop.Load() {
		return
	}
	for _, sv := range s.shared {
		if s.getState() == stateCrashed {
			return
		}
		if err := s.evalCrashPoint(FPSweepMid); err != nil {
			return
		}
		if restored, err := sv.sweepRestore(); err == nil && restored {
			metrics.Recovery.SweepReplays.Inc()
		}
		runtime.Gosched()
	}
}

// releasePendingUnits retires every unit still on the pending-recovery
// gauges. Called after a teardown (Crash, or a failed recovery's halt):
// the units belong to the dead incarnation — the next Start republishes
// whatever its own analysis pass finds.
func (s *Server) releasePendingUnits() {
	s.sessions.forEach(func(sess *Session) { sess.clearPending() })
	for _, sv := range s.shared {
		sv.clearPending()
	}
}

// RecoveringSessions reports how many sessions still owe a replay —
// actively replaying or not yet claimed since the crash. Experiment
// harnesses poll it to time the full recovery drain.
func (s *Server) RecoveringSessions() int {
	n := 0
	s.sessions.forEach(func(sess *Session) {
		if sess.pendingReplay() {
			n++
		}
	})
	return n
}

// TimeToFirstReply reports how long this incarnation took from the start
// of crash recovery to its first state-bearing reply (0 until the first
// reply is sent, and always 0 for an incarnation that did not crash-
// recover). This is the instant-recovery headline latency: it covers the
// analysis pass plus at most one session's replay, independent of total
// state size.
func (s *Server) TimeToFirstReply() time.Duration {
	return time.Duration(s.ttfr.Load())
}

// goBackground runs f on a tracked goroutine unless the server has
// crashed; the state check and WaitGroup increment are atomic with
// respect to Crash, so Crash's Wait never races an Add.
func (s *Server) goBackground(f func()) bool {
	s.stateMu.Lock()
	if s.getState() == stateCrashed {
		s.stateMu.Unlock()
		return false
	}
	s.wg.Add(1)
	s.stateMu.Unlock()
	go func() {
		defer s.wg.Done()
		f()
	}()
	return true
}

// ID returns the MSP's process identifier.
func (s *Server) ID() string { return s.cfg.ID }

// Epoch returns the MSP's current epoch number.
func (s *Server) Epoch() uint32 { return s.epoch.Load() }

// Stats exposes the server's activity counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// Log exposes the server's physical log (nil when logging is disabled).
// Tests and experiment harnesses use it to inspect durability.
func (s *Server) Log() *wal.Log { return s.log }

func (s *Server) setState(st serverState) {
	s.stateMu.Lock()
	s.state.Store(int32(st))
	s.stateMu.Unlock()
}

func (s *Server) getState() serverState {
	return serverState(s.state.Load())
}

// halt marks the MSP dead at this instant: the network endpoint goes
// down, the stop channel closes, and the log is closed (discarding the
// volatile buffer, like a real crash). It does not wait for workers —
// an injected crash point halts from inside a worker or the recovery
// path, where waiting on itself would deadlock. Idempotent.
func (s *Server) halt() {
	s.stateMu.Lock()
	if s.getState() == stateCrashed {
		s.stateMu.Unlock()
		return
	}
	s.state.Store(int32(stateCrashed))
	s.stateMu.Unlock()
	s.ep.SetDown(true)
	close(s.stop)
	if s.log != nil {
		s.log.Close() //mspr:walerr halt models a crash: the buffered log tail is meant to be lost
	}
}

// fp returns the MSP's fault-injection registry (nil when injection is
// off — safe to Eval either way).
func (s *Server) fp() *failpoint.Registry {
	if s.cfg.Failpoints != nil {
		return s.cfg.Failpoints
	}
	if s.cfg.Disk != nil {
		return s.cfg.Disk.Failpoints()
	}
	return nil
}

// evalCrashPoint fires a named crash failpoint: when armed, the MSP
// halts as if the process died at that instant and the injected error
// is returned for the caller to propagate.
func (s *Server) evalCrashPoint(name string) error {
	if _, ok := s.fp().Eval(name); !ok {
		return nil
	}
	s.halt()
	return fmt.Errorf("core: %s: crash point %s: %w", s.cfg.ID, name, failpoint.ErrInjected)
}

// Crash kills the MSP: the network endpoint goes down, workers stop, and
// every volatile structure — including the log buffer and all session,
// shared-variable and dependency state — is abandoned. Only data flushed
// to the disk survives into the next Start. Crash also collects an MSP
// already halted by an injected crash point, so harnesses can always
// tear down with Crash before restarting.
func (s *Server) Crash() {
	s.halt()
	s.wg.Wait()
	// With all workers and the sweep stopped, retire this incarnation's
	// units from the pending gauges: the next incarnation's analysis pass
	// republishes its own set.
	s.releasePendingUnits()
}

// Shutdown stops the MSP cleanly: the log is flushed first so a
// subsequent Start recovers the complete state. A flush failure is
// returned — the disk kept records the caller believed durable, and a
// restart will recover only what actually reached it.
func (s *Server) Shutdown() error {
	var err error
	if s.log != nil {
		if last := s.log.LastAppended(); last != 0 {
			err = s.log.Flush(last)
		}
	}
	s.Crash()
	return err
}

// registerWithDomain adds this MSP to its domain's membership and gives
// the links to every existing member the domain's model one-way latency
// (the paper's MSP↔MSP RTT is distinct from the client↔MSP RTT).
func (s *Server) registerWithDomain() {
	others := s.cfg.Domain.Members()
	s.cfg.Domain.register(s.cfg.ID)
	ow := s.cfg.Domain.OneWay()
	if ow <= 0 {
		return
	}
	self := simnet.Addr(s.cfg.ID)
	for _, m := range others {
		if m != s.cfg.ID {
			s.cfg.Net.SetLinkLatency(self, simnet.Addr(m), ow)
		}
	}
}

// receiveLoop dispatches network messages: requests to the worker pool,
// replies to waiting outgoing calls, control-plane requests to handler
// goroutines (a flush can block on the disk) and control replies to the
// waiting control calls.
func (s *Server) receiveLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case m := <-s.ep.Recv():
			s.noteContact(m.From)
			switch p := m.Payload.(type) {
			case rpc.Request:
				s.admit(p)
			case rpc.Reply:
				s.pending.resolve(p)
			case rpc.FlushRequest:
				req := p
				s.goBackground(func() { s.handleFlushRequest(req) })
			case rpc.RecoveryBroadcast:
				b := p
				s.goBackground(func() { s.handleRecoveryBroadcast(b) })
			case rpc.KnowledgePull:
				pull := p
				s.goBackground(func() { s.handleKnowledgePull(pull) })
			case rpc.FlushReply:
				s.ctl.resolve(p.ID, p)
			case rpc.RecoveryAck:
				s.ctl.resolve(p.ID, p)
			case rpc.KnowledgeReply:
				s.ctl.resolve(p.ID, p)
			}
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Drain the priority lane first: lazy-replay claims and
		// recovery-window traffic must not starve behind a flood of new
		// work filling the normal lane.
		select {
		case <-s.stop:
			return
		case req := <-s.prioCh:
			s.handleRequest(req)
			continue
		default:
		}
		select {
		case <-s.stop:
			return
		case req := <-s.prioCh:
			s.handleRequest(req)
		case req := <-s.reqCh:
			s.handleRequest(req)
		}
	}
}

// reply sends a reply envelope to addr.
func (s *Server) reply(addr simnet.Addr, rep rpc.Reply) {
	if s.ttfrPending.Load() && rep.Status != rpc.StatusBusy && rep.Status != rpc.StatusRejected &&
		rep.Status != rpc.StatusOverloaded &&
		s.ttfrPending.CompareAndSwap(true, false) {
		// First state-bearing reply since crash recovery began: the
		// instant-recovery time-to-first-reply measurement.
		d := time.Since(s.recoverT0) //mspr:wallclock time-to-first-reply is a measured latency, not simulated model time
		s.ttfr.Store(int64(d))
		metrics.Recovery.TimeToFirstReply.Add(d.Microseconds())
	}
	s.ep.Send(addr, rep) //mspr:flushed-by sendReply (state-bearing replies flush there; Busy/Rejected envelopes carry no state)
}

func (s *Server) replyBusy(req rpc.Request) {
	s.stats.BusyReplies.Add(1)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, Status: rpc.StatusBusy})
}

// handleRequest implements the server side of Fig. 7 plus session
// dispatch: duplicate detection, orphan interception, receive logging,
// method execution, reply buffering and the logging action appropriate to
// the client's locality.
func (s *Server) handleRequest(req rpc.Request) {
	if s.getState() != stateRunning {
		s.replyBusy(req)
		return
	}
	if _, ok := s.cfg.Def.Methods[req.Method]; !ok && !req.EndSession {
		s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, Status: rpc.StatusRejected,
			Payload: []byte("unknown method " + req.Method)})
		return
	}

	sess, status := s.lookupOrCreateSession(req)
	switch status {
	case sessionRejected:
		s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, Status: rpc.StatusRejected,
			Payload: []byte("unknown session")})
		return
	case sessionBusyNow:
		// Recovering, checkpointing or already executing: the client
		// backs off and resends (§5.4).
		s.replyBusy(req)
		return
	case sessionUnrecovered:
		// Instant recovery's lazy restore: this request touched a session
		// not yet replayed since the crash and won the claim. Replay it
		// here — the request blocks only on THIS session's replay — then
		// serve against the restored state.
		if err := s.evalCrashPoint(FPLazyReplay); err != nil {
			sess.finishRecovery() // claimed but never replayed; next incarnation redoes it
			return
		}
		metrics.Recovery.LazyReplays.Inc()
		s.runSessionRecovery(sess)
		if s.getState() != stateRunning || !sess.tryAcquire() {
			s.replyBusy(req)
			return
		}
	}
	s.serveAcquired(sess, req)
}

// serveAcquired serves one request against an exclusively held session
// (Fig. 7's receive-execute-reply body plus checkpoint scheduling).
func (s *Server) serveAcquired(sess *Session, req rpc.Request) {
	defer sess.release()
	t0 := time.Now() //mspr:wallclock service-time EWMA feeds the wall-clock RetryAfter hint
	defer func() {
		s.noteServiceTime(time.Since(t0)) //mspr:wallclock service-time EWMA feeds the wall-clock RetryAfter hint
	}()

	classification := sess.seq.Classify(req.Seq)
	if s.cfg.StatelessSessions {
		// Duplicate detection happens below this layer (idempotent
		// handlers over durable state); execute every delivery.
		classification = rpc.SeqNew
	}
	if classification == rpc.SeqDuplicate {
		if _, ok := s.fp().Eval(FPDedupSkip); ok {
			classification = rpc.SeqNew // armed: broken dedup re-executes
		}
	}
	switch classification {
	case rpc.SeqIgnore:
		return
	case rpc.SeqDuplicate:
		// The buffered reply may have been lost in the network or in a
		// client crash; resend it (§3.1). If its flush is blocked on an
		// unreachable peer, tell the client Busy so it backs off instead
		// of timing out.
		if rep, ok := sess.bufferedReplyEnvelope(); ok {
			//mspr:flushed-by sendReply
			if err := s.sendReply(sess, req.From, rep); err != nil && !errors.Is(err, errOrphanDep) {
				s.replyBusy(req)
			}
		}
		return
	}

	// Second deadline shed point, immediately before the receive append:
	// queueing delay may have eaten the deadline since admission, and a
	// shed must precede any durable effect — an execution logged for a
	// client that already gave up wastes a flush now and a replay after
	// the next crash. (Duplicates are exempt above: answering from the
	// reply buffer costs no append.)
	if s.shedIfExpired(req) {
		return
	}

	// Interception point: has this session become an orphan?
	var reqLSN wal.LSN
	if s.cfg.Logging {
		if _, orphan := s.know.OrphanIn(sess.vecLocked()); orphan {
			s.replyBusy(req)
			sess.releaseToRecovery()
			s.runSessionRecovery(sess)
			return
		}
		// Fig. 7, after-receive action for intra-domain messages: if the
		// attached DV shows the message is an orphan, discard it.
		if req.HasDV {
			if _, orphan := s.know.OrphanIn(req.DV); orphan {
				return
			}
		}
		rec := logrec.ReqReceive{Session: sess.id, Seq: req.Seq, Method: req.Method,
			Arg: req.Arg, HasDV: req.HasDV, DV: req.DV}
		lsn, n := s.mustAppend(logrec.TReqReceive, rec.Encode())
		sess.noteReceive(lsn, n, req.DV)
		reqLSN = lsn
	}

	if req.EndSession {
		s.finishEndSession(sess, req)
		return
	}

	out, appErr, aborted := s.invoke(sess, req.Method, req.Seq, req.Arg)
	if aborted {
		// The session was found to be an orphan (or the server crashed)
		// mid-method. No reply: the client resends after recovery.
		if s.getState() == stateCrashed {
			return
		}
		sess.releaseToRecovery()
		s.runSessionRecovery(sess)
		return
	}

	rep := rpc.Reply{Session: sess.id, Seq: req.Seq, Status: rpc.StatusOK, Payload: out}
	if appErr != nil {
		rep.Status = rpc.StatusAppError
		rep.Payload = []byte(appErr.Error())
	}
	sess.bufferReply(rep)
	sess.seq.Advance(req.Seq)
	if tap := s.cfg.Tap; tap != nil {
		// The execution is reported before the reply is sent: whether the
		// client ever sees the reply is the client history's business.
		tap.RequestExecuted(s.cfg.ID, sess.id, req.Seq, s.epoch.Load(), uint64(reqLSN), rep.Payload, false)
	}
	//mspr:flushed-by sendReply
	if err := s.sendReply(sess, req.From, rep); err != nil {
		if errors.Is(err, errOrphanDep) {
			sess.releaseToRecovery()
			s.runSessionRecovery(sess)
			return
		}
		// A dependency's peer is unreachable (partitioned or down past
		// the flush deadline): degrade to Busy. The request executed and
		// its reply is buffered; the client's resend fetches it through
		// the duplicate path once the peer is reachable again.
		s.replyBusy(req) //mspr:shedbeforelog not a shed: the request executed and its reply is buffered; Busy only defers delivery to the dedup resend
		return
	}
	s.stats.RequestsServed.Add(1)

	// Between requests: session checkpoint when the session has consumed
	// enough log (§3.2), and an MSP fuzzy checkpoint when the log grew
	// enough (§3.4).
	if s.cfg.Logging && s.cfg.SessionCkptThreshold > 0 && sess.logged() >= s.cfg.SessionCkptThreshold {
		if err := s.checkpointSession(sess); errors.Is(err, errOrphanDep) {
			sess.releaseToRecovery()
			s.runSessionRecovery(sess)
			return
		}
	}
	s.maybeMSPCheckpoint()
}

// sendReply transmits a reply according to the client's locality (Fig. 7):
// intra-domain replies carry the session's DV and require no flush;
// replies leaving the domain (all end-client replies) require a
// distributed log flush per the session's DV first. A non-nil return
// means the reply was NOT sent: errOrphanDep if the flush discovered
// the session to be an orphan (the caller initiates orphan recovery),
// or errUnavailable if a dependency's peer stayed unreachable within the
// flush deadline (the caller degrades to Busy; the buffered reply is
// delivered by the client's resend once the peer is reachable again).
func (s *Server) sendReply(sess *Session, to simnet.Addr, rep rpc.Reply) error {
	if s.cfg.Logging {
		if sess.intra() {
			rep.HasDV = true
			rep.DV = sess.vecWithSelf()
		} else {
			if err := s.flushSessionDV(sess); err != nil {
				return err
			}
		}
	}
	s.reply(to, rep)
	return nil
}

func (s *Server) finishEndSession(sess *Session, req rpc.Request) {
	if s.cfg.Logging {
		lsn, n := s.mustAppend(logrec.TSessionEnd, logrec.SessionEnd{Session: sess.id}.Encode())
		sess.noteOwnRecord(lsn, n)
	}
	rep := rpc.Reply{Session: sess.id, Seq: req.Seq, Status: rpc.StatusOK}
	sess.bufferReply(rep)
	sess.seq.Advance(req.Seq)
	//mspr:flushed-by sendReply
	if err := s.sendReply(sess, req.From, rep); err == nil {
		s.sessions.delete(sess.id)
		sess.markEnded()
	} else if errors.Is(err, errOrphanDep) {
		// The end-of-session flush discovered the session is an orphan:
		// recover it like any other reply flush would (§4.2). The end did
		// not complete — the session stays in the table, and the client's
		// resent End runs fresh against the recovered session.
		sess.releaseToRecovery()
		s.runSessionRecovery(sess)
	} else {
		// Unreachable dependency: the end acknowledgement could not be
		// flushed. Keep the session; the client's resend completes the
		// end once the peer is back.
		s.replyBusy(req) //mspr:shedbeforelog not a shed: the end executed and its reply is buffered; Busy only defers delivery to the dedup resend
	}
}

type sessionStatus int

const (
	sessionOK sessionStatus = iota
	sessionRejected
	sessionBusyNow
	// sessionUnrecovered: the session exists but has not been replayed
	// since the crash, and this request won the claim to replay it
	// (instant recovery's lazy-restore path). The session is held in
	// phaseRecovering by the caller.
	sessionUnrecovered
)

// lookupOrCreateSession finds the request's session, creating it for a
// NewSession request, and acquires it for exclusive processing.
//
// A created session is born acquired (phaseBusy): it exists on behalf of
// this request, so a competing delivery of the same session ID backs off
// with Busy instead of racing for a half-initialized session. The
// SessionStart append happens OUTSIDE the shard lock — the log's own
// mutex is the only serialization appends need — which opens a window
// where the session is visible to the fuzzy checkpointer without a
// start LSN. startPin (captured from the log before the session becomes
// visible) bounds the future SessionStart LSN from below, and the
// checkpointer clamps the log head at the pin, so a live session's
// records are never truncated (see writeMSPCheckpoint and shards.go).
func (s *Server) lookupOrCreateSession(req rpc.Request) (*Session, sessionStatus) {
	sh := s.sessions.shard(req.Session)
	sh.mu.Lock()
	sess, ok := sh.m[req.Session]
	if ok {
		sh.mu.Unlock()
		if sess.tryAcquire() {
			return sess, sessionOK
		}
		if sess.claimForReplay() {
			return sess, sessionUnrecovered
		}
		return nil, sessionBusyNow
	}
	if !req.NewSession && !s.cfg.StatelessSessions {
		sh.mu.Unlock()
		return nil, sessionRejected
	}
	sess = newSession(s, req.Session, req.From, req.HasDV)
	// Born acquired, published below: the session is not yet visible to
	// any other goroutine, so the phase store and pin write need neither
	// se.mu nor a declared transition.
	//mspr:phasestate fresh session, born acquired before publication
	sess.phase = phaseBusy //mspr:guardedby fresh session, not yet published
	if s.cfg.Logging {
		sess.startPin = s.log.Next() //mspr:guardedby fresh session, not yet published
	}
	sh.m[req.Session] = sess
	sh.mu.Unlock()

	if s.cfg.Logging {
		rec := logrec.SessionStart{Session: sess.id, ClientAddr: string(req.From), IntraDomain: req.HasDV}
		payload := rec.Encode()
		lsn, n, err := s.appendRec(logrec.TSessionStart, payload)
		logrec.Recycle(payload)
		if err != nil {
			// Crashing underneath us: withdraw the stillborn session so
			// no future request finds a session without a start record.
			s.sessions.delete(req.Session)
			return nil, sessionBusyNow
		}
		sess.noteStart(lsn, n)
	}
	return sess, sessionOK
}

// invoke runs a service method in normal-execution mode, converting the
// orphan/crash abort panics into an aborted flag.
func (s *Server) invoke(sess *Session, method string, seq uint64, arg []byte) (out []byte, appErr error, aborted bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r.(type) {
		case orphanAbort, crashAbort:
			aborted = true
		default:
			panic(r)
		}
	}()
	ctx := &Ctx{srv: s, sess: sess, reqSeq: seq}
	out, appErr = s.cfg.Def.Methods[method](ctx, arg)
	return out, appErr, false
}

// mustAppend writes a log record, panicking with crashAbort if the log
// has been closed by a concurrent crash. It returns the record's LSN and
// on-log size. The payload — always a freshly encoded record none of the
// callers retain — is recycled into the logrec encode-buffer pool
// (wal.Append has copied it into the log buffer by then).
func (s *Server) mustAppend(t logrec.Type, payload []byte) (wal.LSN, int) {
	lsn, err := s.log.Append(byte(t), payload)
	n := len(payload) + wal.FrameOverhead
	logrec.Recycle(payload)
	if err != nil {
		panic(crashAbort{err})
	}
	s.bytesSinceCkpt.Add(int64(n))
	return lsn, n
}

// appendRec is mustAppend without the panic, for recovery-time paths.
func (s *Server) appendRec(t logrec.Type, payload []byte) (wal.LSN, int, error) {
	lsn, err := s.log.Append(byte(t), payload)
	if err != nil {
		return 0, 0, err
	}
	n := len(payload) + wal.FrameOverhead
	s.bytesSinceCkpt.Add(int64(n))
	return lsn, n, nil
}

// selfState returns the MSP's state identifier factory values for
// building self-dependencies.
func (s *Server) selfID() dv.ProcessID { return dv.ProcessID(s.cfg.ID) }

// distributedFlush performs the distributed log flush dictated by a
// dependency vector (§3.1): the local flush and one flush request per
// peer MSP in the vector, all in parallel. It returns errOrphanDep if any
// dependency turns out to be an orphan.
func (s *Server) distributedFlush(vec dv.Vector) error {
	if !s.cfg.Logging {
		return nil
	}
	s.stats.DistFlushes.Add(1)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil || errors.Is(err, errOrphanDep) {
			firstErr = err
		}
		mu.Unlock()
	}
	for e, lsn := range vec {
		wg.Add(1)
		go func(p dv.ProcessID, sid dv.StateID) {
			defer wg.Done()
			if p == s.selfID() {
				if err := s.flushTo(sid); err != nil {
					fail(err)
				}
				return
			}
			if !s.cfg.Domain.Contains(string(p)) {
				fail(fmt.Errorf("core: dependency on %s outside service domain", p))
				return
			}
			if err := s.flushPeerWithRetry(p, sid); err != nil {
				fail(err)
			}
		}(e.Process, dv.StateID{Epoch: e.Epoch, LSN: lsn})
	}
	wg.Wait()
	return firstErr
}

// flushSessionDV performs the distributed log flush dictated by the
// session's DV plus its self-dependency — the flush every state-bearing
// reply, before-send action and session checkpoint needs (§3.1). The
// caller must hold the session (acquired or recovering): exclusive
// ownership is what makes borrowing the vector without a clone safe —
// only the owning worker ever mutates a session's vector, and it is
// busy right here.
func (s *Server) flushSessionDV(sess *Session) error {
	if !s.cfg.Logging {
		return nil
	}
	sess.mu.Lock()
	vec := sess.vec //mspr:dvalias borrow: the session is exclusively held, nothing mutates the vector during the flush
	self := dv.StateID{Epoch: s.epoch.Load(), LSN: int64(sess.stateLSN)}
	sess.mu.Unlock()
	s.stats.DistFlushes.Add(1)
	if len(vec) == 0 {
		// Dominant shape for end-client sessions with no cross-process
		// dependencies: one local flush — no vector clone, no fan-out
		// goroutines, no WaitGroup.
		return s.flushTo(self)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil || errors.Is(err, errOrphanDep) {
			firstErr = err
		}
		mu.Unlock()
	}
	selfLSN := self.LSN
	for e, lsn := range vec {
		if e.Process == s.selfID() {
			if e.Epoch == self.Epoch {
				// Folded into the local flush issued below.
				if lsn > selfLSN {
					selfLSN = lsn
				}
				continue
			}
			// A dependency on an earlier epoch of our own settles locally
			// without a goroutine (flushTo never blocks for it).
			if err := s.flushTo(dv.StateID{Epoch: e.Epoch, LSN: lsn}); err != nil {
				fail(err)
			}
			continue
		}
		wg.Add(1)
		go func(p dv.ProcessID, sid dv.StateID) {
			defer wg.Done()
			if !s.cfg.Domain.Contains(string(p)) {
				fail(fmt.Errorf("core: dependency on %s outside service domain", p))
				return
			}
			if err := s.flushPeerWithRetry(p, sid); err != nil {
				fail(err)
			}
		}(e.Process, dv.StateID{Epoch: e.Epoch, LSN: lsn})
	}
	// The local flush runs on the calling worker, overlapping the peer
	// flushes exactly as the dedicated goroutine used to.
	if err := s.flushTo(dv.StateID{Epoch: self.Epoch, LSN: selfLSN}); err != nil {
		fail(err)
	}
	wg.Wait()
	return firstErr
}

// flushPeerWithRetry asks a peer to flush over the network, bounded by
// the configured flush deadline. It converges to one of three outcomes:
// the peer flushes (nil), the dependency is an orphan (the peer said so,
// or its recovery broadcast arrived meanwhile), or the peer stays
// unreachable past the deadline (errUnavailable — the caller degrades,
// typically to a Busy reply toward the end client, instead of hanging).
// While a peer is marked down, calls fail fast except for one probe per
// probe interval.
func (s *Server) flushPeerWithRetry(p dv.ProcessID, sid dv.StateID) error {
	peer := string(p)
	// The knowledge check first: a known crashed epoch settles the
	// dependency locally — state beyond the recovered number is an orphan
	// (no amount of flushing helps); state within it survived the crash
	// and is durable forever.
	if r, ok := s.know.Lookup(p, sid.Epoch); ok {
		if sid.LSN > r {
			return errOrphanDep
		}
		return nil
	}
	if !s.health.allowCall(peer, s.probeEvery()) {
		return fmt.Errorf("core: peer %s marked down: %w", p, errUnavailable)
	}
	err := s.callFlush(peer, sid)
	if err != nil && errors.Is(err, errUnavailable) && s.know.IsOrphan(p, sid) {
		// The peer's broadcast raced the deadline: orphan beats timeout.
		return errOrphanDep
	}
	return err
}

// flushTo services a flush request for this MSP's own state (local part
// of a distributed flush, or a peer's request): state from the current
// epoch is flushed; state from an earlier epoch either already survived
// (≤ the recovered state number) or is an orphan.
func (s *Server) flushTo(sid dv.StateID) error {
	st := s.getState()
	epoch := s.epoch.Load()
	if st == stateCrashed || st == stateRecovering {
		return errUnavailable
	}
	switch {
	case sid.Epoch == epoch:
		if wal.LSN(sid.LSN) >= s.log.Next() {
			// A state number this incarnation never assigned: the
			// dependency refers to state that cannot exist (it belonged
			// to a lost incarnation). Epoch durability makes this
			// unreachable; report the dependency unsatisfiable.
			return errOrphanDep
		}
		return s.log.Flush(wal.LSN(sid.LSN))
	case sid.Epoch < epoch:
		if s.know.IsOrphan(s.selfID(), sid) {
			return errOrphanDep
		}
		return nil // survived the crash; already durable
	default:
		return errUnavailable
	}
}

// sweepOrphanSessions starts orphan recovery for every idle session whose
// DV has become an orphan. Busy sessions are caught at their next
// interception point.
func (s *Server) sweepOrphanSessions() {
	var found []*Session
	s.sessions.forEach(func(sess *Session) {
		if _, orphan := s.know.OrphanIn(sess.vecLocked()); orphan && sess.tryBeginRecovery() {
			found = append(found, sess)
		}
	})
	for _, sess := range found {
		sess := sess
		if !s.goBackground(func() { s.runSessionRecovery(sess) }) {
			sess.finishRecovery()
		}
	}
}

// maybeMSPCheckpoint takes a fuzzy MSP checkpoint if enough log has been
// written since the last one. The checkpoint runs concurrently with
// request processing ("ongoing session activities are not blocked").
func (s *Server) maybeMSPCheckpoint() {
	if !s.cfg.Logging || s.cfg.MSPCkptEvery <= 0 {
		return
	}
	if s.bytesSinceCkpt.Load() < s.cfg.MSPCkptEvery {
		return
	}
	if !s.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	if !s.goBackground(func() {
		defer s.ckptRunning.Store(false)
		if err := s.writeMSPCheckpoint(); err != nil {
			return
		}
		s.forceStaleCheckpoints()
	}) {
		s.ckptRunning.Store(false)
	}
}

// writeMSPCheckpoint takes a fuzzy MSP checkpoint (§3.4): the knowledge of
// recovered state numbers plus each session's and shared variable's most
// recent checkpoint position, then records the checkpoint's LSN in the
// log anchor.
//
// The new log head is the minimal position over every recovery starting
// point, additionally clamped at the barrier — the log's append position
// captured BEFORE the table scan. The clamp is what makes the fuzzy
// checkpoint safe against the striped table: a session inserted after
// its shard was scanned (invisible to the checkpoint) appends its
// SessionStart at an LSN ≥ its startPin ≥ the barrier, so the head never
// advances past it; a session scanned while still starting (visible but
// without a published start LSN) pins the head at its startPin and is
// left out of the checkpoint's position list — the recovery scan, which
// starts at the head, finds its SessionStart record directly.
func (s *Server) writeMSPCheckpoint() error {
	barrier := s.log.Next()
	ck := logrec.MSPCheckpoint{
		Epoch:     s.epoch.Load(),
		Knowledge: s.know.Snapshot(),
	}
	head := barrier
	lower := func(p wal.LSN) {
		if p != 0 && p < head {
			head = p
		}
	}
	s.sessions.forEach(func(sess *Session) {
		cp, start, pin := sess.ckptPositions()
		if cp == 0 && start == 0 {
			// Still starting: its SessionStart append is in flight.
			lower(pin)
			return
		}
		ck.Sessions = append(ck.Sessions, logrec.SessionPos{ID: sess.id, CkptLSN: cp, StartLSN: start})
		sess.bumpMSPCkptAge()
		if cp != 0 {
			lower(cp)
		} else {
			lower(start)
		}
	})
	for _, sv := range s.shared {
		cp, first := sv.ckptPositions()
		ck.Shared = append(ck.Shared, logrec.SharedPos{Name: sv.name, CkptLSN: cp, FirstWrite: first})
		sv.bumpMSPCkptAge()
		if cp != 0 {
			lower(cp)
		} else {
			lower(first)
		}
	}

	ckPayload := ck.Encode()
	lsn, _, err := s.appendRec(logrec.TMSPCheckpoint, ckPayload)
	if err != nil {
		return err
	}
	if err := s.log.Flush(lsn); err != nil {
		return err
	}
	if err := s.evalCrashPoint(FPCkptBeforeAnchor); err != nil {
		return err
	}
	if err := s.log.WriteAnchor(wal.Anchor{Epoch: s.epoch.Load(), CheckpointLSN: lsn, Head: head}); err != nil {
		if failpoint.IsInjected(err) {
			s.halt() // a torn anchor write means the process died mid-update
		}
		return err
	}
	if err := s.evalCrashPoint(FPCkptBeforeTruncate); err != nil {
		return err
	}
	// Only after the anchor is durable may the old records be discarded;
	// whole segments below the head are physically deleted.
	if err := s.log.TruncateHead(head); err != nil {
		if failpoint.IsInjected(err) {
			s.halt() // a crash between segment deletions; recovery re-truncates
		}
		return err
	}
	s.lastMSPCkpt = lsn
	s.bytesSinceCkpt.Store(0)
	s.stats.MSPCkpts.Add(1)
	if tap := s.cfg.Tap; tap != nil {
		tap.StateDigest(s.cfg.ID, "msp-ckpt", s.epoch.Load(), uint64(lsn), tapDigest(ckPayload))
	}
	return nil
}

// forceStaleCheckpoints forces a checkpoint for sessions and shared
// variables that have not checkpointed across several MSP checkpoints, so
// the minimal LSN (the crash-recovery scan start) keeps advancing (§3.4).
func (s *Server) forceStaleCheckpoints() {
	if s.cfg.ForceCkptAfter <= 0 {
		return
	}
	var staleSessions []*Session
	var staleVars []*SharedVar
	s.sessions.forEach(func(sess *Session) {
		if sess.mspCkptAge() >= s.cfg.ForceCkptAfter {
			staleSessions = append(staleSessions, sess)
		}
	})
	for _, sv := range s.shared {
		if sv.mspCkptAge() >= s.cfg.ForceCkptAfter && sv.written() {
			staleVars = append(staleVars, sv)
		}
	}
	for _, sess := range staleSessions {
		if !sess.tryAcquire() {
			continue // busy or recovering; it will checkpoint on its own
		}
		_ = s.checkpointSession(sess)
		sess.release()
	}
	for _, sv := range staleVars {
		sv.forceCheckpoint()
	}
}

// checkpointSession takes a session checkpoint (§3.2): a distributed log
// flush per the session's DV (so the checkpointed state can never be an
// orphan), then one record holding the complete session state. The caller
// must hold the session (acquired).
func (s *Server) checkpointSession(sess *Session) error {
	if err := s.flushSessionDV(sess); err != nil {
		return err
	}
	rec := sess.checkpointRecord()
	payload := rec.Encode()
	lsn, _, err := s.appendRec(logrec.TSessionCkpt, payload)
	if err != nil {
		return err
	}
	sess.completeCheckpoint(lsn)
	s.stats.SessionCkpts.Add(1)
	if tap := s.cfg.Tap; tap != nil {
		tap.StateDigest(s.cfg.ID, "session-ckpt/"+sess.id, s.epoch.Load(), uint64(lsn), tapDigest(payload))
	}
	return nil
}

// pendingCalls routes incoming replies to the worker goroutines blocked
// in outgoing calls, keyed by outgoing-session ID.
type pendingCalls struct {
	mu sync.Mutex
	m  map[string]chan rpc.Reply
}

func (p *pendingCalls) register(id string) chan rpc.Reply {
	ch := make(chan rpc.Reply, 16)
	p.mu.Lock()
	p.m[id] = ch
	p.mu.Unlock()
	return ch
}

func (p *pendingCalls) deregister(id string) {
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

func (p *pendingCalls) resolve(rep rpc.Reply) {
	p.mu.Lock()
	ch := p.m[rep.Session]
	p.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- rep:
	default:
	}
}
