package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"mspr/internal/dv"
	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/simtime"
	"mspr/internal/wal"
)

// This file is the server side of the intra-domain control plane: the
// distributed flush requests, recovery broadcasts and anti-entropy
// knowledge exchanges that used to be direct in-process method calls
// now travel over the simulated network as rpc envelopes, so they can
// be lost, duplicated, reordered, delayed or partitioned away — and the
// machinery here makes the protocol survive that:
//
//   - every control request carries a sender-unique ID; the sender
//     retransmits under the same ID with capped+jittered backoff, and
//     the receiver dedups by (sender, ID), answering retransmissions
//     from a bounded reply cache;
//   - each call has a deadline; a peer that stays unreachable is marked
//     down in a per-peer health table, after which flushes against it
//     fail fast (the end client sees Busy, not a hang) with periodic
//     probes until the peer answers again;
//   - recovery broadcasts are best-effort: peers missed by a broadcast
//     (partitioned, down) catch up through anti-entropy — every flush
//     reply and recovery ack piggybacks the replier's knowledge, and a
//     peer transitioning unreachable→reachable triggers an explicit
//     knowledge pull.

// Wall-clock floors applied to scaled control-plane durations: at tiny
// TimeScales a model deadline would scale to ~0 and every control call
// would give up before its first reply could arrive.
const (
	ctlRetransmitFloor = time.Millisecond
	ctlDeadlineFloor   = 25 * time.Millisecond
)

// ctlWall converts a model duration to a wall-clock one, clamped below
// by floor.
func ctlWall(d time.Duration, scale float64, floor time.Duration) time.Duration {
	s := time.Duration(float64(d) * scale)
	if s < floor {
		s = floor
	}
	return s
}

// pendingCtl routes control replies (FlushReply, RecoveryAck,
// KnowledgeReply) to the goroutines waiting on them, keyed by the
// request ID the reply echoes.
type pendingCtl struct {
	mu sync.Mutex
	m  map[uint64]chan any
}

func (p *pendingCtl) register(id uint64) chan any {
	ch := make(chan any, 4)
	p.mu.Lock()
	if p.m == nil {
		p.m = make(map[uint64]chan any)
	}
	p.m[id] = ch
	p.mu.Unlock()
	return ch
}

func (p *pendingCtl) deregister(id uint64) {
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

func (p *pendingCtl) resolve(id uint64, rep any) {
	p.mu.Lock()
	ch := p.m[id]
	p.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- rep:
	default:
	}
}

// ctlKey identifies one control request for dedup: who sent it, under
// which ID.
type ctlKey struct {
	from simnet.Addr
	id   uint64
}

// ctlCache is the bounded server-side reply cache behind control-message
// dedup: a retransmitted request is answered with the cached reply
// instead of being re-executed. Eviction is FIFO.
type ctlCache struct {
	mu    sync.Mutex
	m     map[ctlKey]any
	order []ctlKey
	cap   int
}

func newCtlCache(capacity int) *ctlCache {
	return &ctlCache{m: make(map[ctlKey]any), cap: capacity}
}

func (c *ctlCache) get(k ctlKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

func (c *ctlCache) put(k ctlKey, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; !ok {
		c.order = append(c.order, k)
		for len(c.order) > c.cap {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.m[k] = v
}

// peerHealth tracks, per domain peer, whether the peer is currently
// considered reachable. A peer goes down when a control call exhausts
// its deadline against it; while down, flushes against the peer fail
// fast except for one probe per probe interval. Any message from the
// peer — or a successful call to it — brings it back up.
type peerHealth struct {
	mu    sync.Mutex
	peers map[string]*peerStatus
}

type peerStatus struct {
	down      bool
	nextProbe time.Time
}

func newPeerHealth() *peerHealth {
	return &peerHealth{peers: make(map[string]*peerStatus)}
}

func (h *peerHealth) status(peer string) *peerStatus {
	st, ok := h.peers[peer]
	if !ok {
		st = &peerStatus{}
		h.peers[peer] = st
	}
	return st
}

// markDown records the peer unreachable; the first probe is allowed
// after probeEvery. It reports whether the peer was up before.
//
//mspr:wallclock probe scheduling is wall-clock floored by design (see file header)
func (h *peerHealth) markDown(peer string, probeEvery time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status(peer)
	wasUp := !st.down
	st.down = true
	st.nextProbe = time.Now().Add(probeEvery)
	return wasUp
}

// markUp records the peer reachable and reports whether it was down.
func (h *peerHealth) markUp(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status(peer)
	wasDown := st.down
	st.down = false
	return wasDown
}

// down reports whether the peer is currently considered unreachable.
func (h *peerHealth) isDown(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[peer]
	return ok && st.down
}

// allowCall reports whether a control call against the peer should run
// now: always for a healthy peer; for a down peer only once per probe
// interval (the probe slot is consumed).
//
//mspr:wallclock probe scheduling is wall-clock floored by design (see file header)
func (h *peerHealth) allowCall(peer string, probeEvery time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status(peer)
	if !st.down {
		return true
	}
	now := time.Now()
	if now.Before(st.nextProbe) {
		return false
	}
	st.nextProbe = now.Add(probeEvery)
	return true
}

// nextCtlID mints a control-message ID that is unique across this
// process's incarnations: the current epoch occupies the high 32 bits,
// a per-incarnation counter the low 32. Plain counters would collide in
// peers' dedup caches after a restart — the first control message of the
// new incarnation (typically its recovery broadcast) would be answered
// with a stale cached reply from the crashed incarnation's ID space and
// silently dropped.
func (s *Server) nextCtlID() uint64 {
	return uint64(s.epoch.Load())<<32 | (s.ctlID.Add(1) & 0xffffffff)
}

// ctlSeed derives a deterministic per-call jitter seed from the server
// identity and the call ID.
func (s *Server) ctlSeed(id uint64) int64 {
	h := fnv.New64a()
	h.Write([]byte(s.cfg.ID))
	return int64(h.Sum64()) ^ int64(id)
}

// ctlBackoff builds the retransmission backoff for one control call:
// base CtlRetransmit, doubling to 16×, ±20% seeded jitter.
func (s *Server) ctlBackoff(id uint64) *rpc.Backoff {
	base := ctlWall(s.cfg.CtlRetransmit, s.cfg.TimeScale, ctlRetransmitFloor)
	return rpc.NewBackoff(base, 16*base, 0.2, s.ctlSeed(id))
}

// probeEvery returns the wall-clock probe interval for down peers.
func (s *Server) probeEvery() time.Duration {
	return ctlWall(s.cfg.PeerProbeEvery, s.cfg.TimeScale, ctlDeadlineFloor)
}

// markPeerDown transitions a peer to down in the health table.
func (s *Server) markPeerDown(peer string) {
	if s.health.markDown(peer, s.probeEvery()) {
		metrics.Net.PeerDownEvents.Inc()
	}
}

// PeerDown reports whether this server currently considers the named
// domain peer unreachable. Harnesses and tests observe degradation with
// it.
func (s *Server) PeerDown(peer string) bool { return s.health.isDown(peer) }

// noteContact records evidence that the sender of a received message is
// alive. If the sender is a domain peer that was marked down, it comes
// back up and an anti-entropy knowledge pull is issued — the "healed
// peer pulls missed RecoveryInfo on next contact" half of broadcast
// convergence.
func (s *Server) noteContact(from simnet.Addr) {
	peer := string(from)
	if peer == s.cfg.ID || !s.cfg.Domain.Contains(peer) {
		return
	}
	if s.health.markUp(peer) {
		s.goBackground(func() { s.pullKnowledge(peer) })
	}
}

// callFlush performs one deadline-bounded flush call against a peer:
// send FlushRequest, retransmit with backoff under the same ID, absorb
// the piggybacked knowledge of any reply. It returns errOrphanDep,
// errUnavailable (deadline exceeded or peer recovering past deadline),
// or nil.
//
//mspr:wallclock control-plane retransmit/deadline clocks are wall-clock floored by design (see file header)
func (s *Server) callFlush(peer string, sid dv.StateID) error {
	id := s.nextCtlID()
	ch := s.ctl.register(id)
	defer s.ctl.deregister(id)
	bo := s.ctlBackoff(id)
	deadline := time.Now().Add(ctlWall(s.cfg.FlushDeadline, s.cfg.TimeScale, ctlDeadlineFloor))
	req := rpc.FlushRequest{ID: id, From: s.ep.Addr(), SID: sid}
	for {
		s.ep.Send(simnet.Addr(peer), req) //mspr:flushed-by none (flush request envelope: asks the peer to flush, carries no log state)
		wait := bo.Next()
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		if wait < 0 {
			wait = 0
		}
		timer := time.NewTimer(wait)
	waiting:
		for {
			select {
			case <-s.stop:
				timer.Stop()
				return errUnavailable
			case raw := <-ch:
				rep, ok := raw.(rpc.FlushReply)
				if !ok {
					continue
				}
				timer.Stop()
				s.absorbKnowledge(rep.Known)
				switch rep.Code {
				case rpc.CtlOK:
					s.health.markUp(peer)
					return nil
				case rpc.CtlOrphan:
					s.health.markUp(peer)
					return errOrphanDep
				default:
					// Peer reachable but recovering: short pause, then
					// retransmit until the deadline decides.
					simtime.Sleep(ctlWall(s.cfg.CtlRetransmit, s.cfg.TimeScale, ctlRetransmitFloor))
					break waiting
				}
			case <-timer.C:
				break waiting
			}
		}
		if s.getState() == stateCrashed {
			return errUnavailable
		}
		if !time.Now().Before(deadline) {
			metrics.Net.FlushDeadlinesExceeded.Inc()
			s.markPeerDown(peer)
			return fmt.Errorf("core: peer %s unreachable within flush deadline: %w", peer, errUnavailable)
		}
	}
}

// broadcastRecovery announces a recovered state number to every domain
// peer over the network, best-effort: each peer is retransmitted to with
// backoff until it acks or its share of the broadcast deadline passes.
// It returns the union of the reachable peers' knowledge snapshots.
// Peers missed here converge later via anti-entropy.
func (s *Server) broadcastRecovery(info dv.RecoveryInfo) []dv.RecoveryInfo {
	var peers []string
	for _, id := range s.cfg.Domain.Members() {
		if id != s.cfg.ID {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		learned []dv.RecoveryInfo
	)
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			known, ok := s.broadcastToPeer(peer, info)
			if !ok {
				metrics.Net.BroadcastPeersMissed.Inc()
				s.markPeerDown(peer)
				return
			}
			s.health.markUp(peer)
			mu.Lock()
			learned = append(learned, known...)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	return learned
}

// broadcastToPeer delivers one RecoveryBroadcast to one peer with
// retransmission, bounded by the broadcast deadline.
//
//mspr:wallclock control-plane retransmit/deadline clocks are wall-clock floored by design (see file header)
func (s *Server) broadcastToPeer(peer string, info dv.RecoveryInfo) ([]dv.RecoveryInfo, bool) {
	id := s.nextCtlID()
	ch := s.ctl.register(id)
	defer s.ctl.deregister(id)
	bo := s.ctlBackoff(id)
	deadline := time.Now().Add(ctlWall(s.cfg.BroadcastDeadline, s.cfg.TimeScale, ctlDeadlineFloor))
	req := rpc.RecoveryBroadcast{ID: id, From: s.ep.Addr(), Info: info}
	for {
		s.ep.Send(simnet.Addr(peer), req) //mspr:flushed-by none (the announced recovery info was made durable before recovery completed)
		wait := bo.Next()
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		if wait < 0 {
			wait = 0
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.stop:
			timer.Stop()
			return nil, false
		case raw := <-ch:
			if ack, ok := raw.(rpc.RecoveryAck); ok {
				timer.Stop()
				return ack.Known, true
			}
		case <-timer.C:
		}
		if s.getState() == stateCrashed || !time.Now().Before(deadline) {
			return nil, false
		}
	}
}

// pullKnowledge performs one anti-entropy knowledge pull against a peer
// (single request, retransmitted until the broadcast deadline) and
// absorbs whatever comes back.
//
//mspr:wallclock control-plane retransmit/deadline clocks are wall-clock floored by design (see file header)
func (s *Server) pullKnowledge(peer string) {
	metrics.Net.AntiEntropyPulls.Inc()
	id := s.nextCtlID()
	ch := s.ctl.register(id)
	defer s.ctl.deregister(id)
	bo := s.ctlBackoff(id)
	deadline := time.Now().Add(ctlWall(s.cfg.BroadcastDeadline, s.cfg.TimeScale, ctlDeadlineFloor))
	req := rpc.KnowledgePull{ID: id, From: s.ep.Addr()}
	for {
		s.ep.Send(simnet.Addr(peer), req) //mspr:flushed-by none (pull request envelope carries no log state)
		wait := bo.Next()
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		if wait < 0 {
			wait = 0
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.stop:
			timer.Stop()
			return
		case raw := <-ch:
			if rep, ok := raw.(rpc.KnowledgeReply); ok {
				timer.Stop()
				s.absorbKnowledge(rep.Known)
				return
			}
		case <-timer.C:
		}
		if s.getState() == stateCrashed || !time.Now().Before(deadline) {
			return
		}
	}
}

// antiEntropyLoop periodically pulls knowledge from domain peers in
// round-robin order — the safety net that converges orphan detection
// even when no traffic crosses a healed partition. Runs only when
// Config.AntiEntropyEvery is positive.
//
//mspr:wallclock control-plane retransmit/deadline clocks are wall-clock floored by design (see file header)
func (s *Server) antiEntropyLoop() {
	every := ctlWall(s.cfg.AntiEntropyEvery, s.cfg.TimeScale, ctlDeadlineFloor)
	next := 0
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(every):
		}
		var peers []string
		for _, id := range s.cfg.Domain.Members() {
			if id != s.cfg.ID {
				peers = append(peers, id)
			}
		}
		if len(peers) == 0 {
			continue
		}
		s.pullKnowledge(peers[next%len(peers)])
		next++
	}
}

// absorbKnowledge folds recovery information learned from any control
// exchange into the knowledge table, logging what is new and sweeping
// idle sessions for orphans. During MSP crash recovery the log append is
// skipped (the analysis scan owns the log; the post-recovery checkpoint
// snapshots the knowledge anyway) and so is the sweep (every restored
// session is about to be replayed regardless).
func (s *Server) absorbKnowledge(infos []dv.RecoveryInfo) {
	if len(infos) == 0 {
		return
	}
	changed := false
	for _, info := range infos {
		if !s.know.Record(info) {
			continue
		}
		changed = true
		if s.cfg.Logging && s.log != nil && s.getState() == stateRunning {
			rec := logrec.RecoveryInfo{Process: string(info.Process), CrashedEpoch: info.CrashedEpoch,
				Recovered: wal.LSN(info.Recovered)}
			_, _, _ = s.appendRec(logrec.TRecoveryInfo, rec.Encode())
		}
	}
	if changed && s.getState() == stateRunning {
		s.sweepOrphanSessions()
	}
}

// handleFlushRequest services a peer's flush request: dedup first, then
// the actual flush, then a reply that piggybacks this MSP's knowledge.
// Transient (unavailable) outcomes are not cached — the peer's
// retransmission should observe recovery finishing, not a stale failure.
func (s *Server) handleFlushRequest(req rpc.FlushRequest) {
	key := ctlKey{from: req.From, id: req.ID}
	if cached, ok := s.ctlDedup.get(key); ok {
		metrics.Net.CtlDuplicates.Inc()
		s.ep.Send(req.From, cached) //mspr:flushed-by flushTo (cached reply: the original was produced after its flush)
		return
	}
	code := rpc.CtlOK
	switch err := s.flushTo(req.SID); {
	case err == nil:
	case errors.Is(err, errOrphanDep):
		code = rpc.CtlOrphan
	default:
		code = rpc.CtlUnavailable
	}
	rep := rpc.FlushReply{ID: req.ID, Code: code, Known: s.know.Snapshot()}
	if code != rpc.CtlUnavailable {
		s.ctlDedup.put(key, rep)
	}
	s.ep.Send(req.From, rep)
}

// handleRecoveryBroadcast services a peer's recovery announcement:
// dedup, absorb the info (logging it and sweeping sessions for
// orphans), ack with this MSP's knowledge snapshot.
func (s *Server) handleRecoveryBroadcast(b rpc.RecoveryBroadcast) {
	key := ctlKey{from: b.From, id: b.ID}
	if cached, ok := s.ctlDedup.get(key); ok {
		metrics.Net.CtlDuplicates.Inc()
		s.ep.Send(b.From, cached) //mspr:flushed-by none (knowledge is monotone gossip, re-learnable from the recovering process itself)
		return
	}
	s.absorbKnowledge([]dv.RecoveryInfo{b.Info})
	rep := rpc.RecoveryAck{ID: b.ID, Known: s.know.Snapshot()}
	s.ctlDedup.put(key, rep)
	s.ep.Send(b.From, rep) //mspr:flushed-by none (knowledge is monotone gossip, re-learnable from the recovering process itself)
}

// handleKnowledgePull answers an anti-entropy pull with the current
// knowledge snapshot. Not cached: the snapshot should be fresh.
func (s *Server) handleKnowledgePull(p rpc.KnowledgePull) {
	//mspr:flushed-by none (knowledge is monotone gossip, re-learnable from the recovering process itself)
	s.ep.Send(p.From, rpc.KnowledgeReply{ID: p.ID, Known: s.know.Snapshot()})
}
