package core

import (
	"testing"
)

// TestLogHeadAdvancesUnderCheckpointing runs enough requests through an
// aggressively checkpointing MSP that the fuzzy checkpoints advance the
// log head and discard dead records, then verifies crash recovery still
// restores everything.
func TestLogHeadAdvancesUnderCheckpointing(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	mut := func(c *Config) {
		c.SessionCkptThreshold = 2 << 10
		c.SVCkptEvery = 4
		c.MSPCkptEvery = 4 << 10
		c.ForceCkptAfter = 2
		c.WalSegmentSize = 4 << 10
	}
	e.start("msp1", counterDef(), mut)
	cs := e.endClient().Session("msp1")
	for i := 1; i <= 200; i++ {
		mustCall(t, cs, "inc", nil)
		mustCall(t, cs, "sharedInc", nil)
	}
	srv := e.srvs["msp1"]
	if srv.log.Head() <= 512 {
		t.Fatalf("log head never advanced: %d", srv.log.Head())
	}
	// Truncation must have deleted whole segments: the first live segment
	// starts well past the log's origin.
	segs := srv.log.Segments()
	if len(segs) == 0 || segs[0].Base <= 512 {
		t.Fatalf("no log segments were reclaimed (first live segment %+v)", segs)
	}

	// Crash and recover from a truncated log.
	e.restart("msp1")
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 201 {
		t.Fatalf("after recovery from truncated log inc = %d, want 201", got)
	}
	cs2 := e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs2, "sharedGet", nil)); got != 200 {
		t.Fatalf("shared total after recovery = %d, want 200", got)
	}
}

// TestLogBoundedBySteadyCheckpointing verifies the log's live region
// stays bounded: with periodic checkpoints the head tracks the tail.
func TestLogBoundedBySteadyCheckpointing(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef(), func(c *Config) {
		c.SessionCkptThreshold = 1 << 10
		c.SVCkptEvery = 4
		c.MSPCkptEvery = 2 << 10
		c.ForceCkptAfter = 1
	})
	cs := e.endClient().Session("msp1")
	srv := e.srvs["msp1"]
	var maxLive int64
	for i := 1; i <= 400; i++ {
		mustCall(t, cs, "sharedInc", nil)
		if live := int64(srv.log.Durable() - srv.log.Head()); live > maxLive {
			maxLive = live
		}
	}
	// Live region must stay small relative to the ~100+ KB total log.
	if maxLive > 64<<10 {
		t.Fatalf("live log region grew to %d bytes despite checkpointing", maxLive)
	}
	if total := srv.log.Durable(); total < 64<<10 {
		t.Fatalf("test wrote too little log (%d bytes) to be meaningful", total)
	}
}

// TestTruncationSafeWithIdleSession: an idle session must hold the log
// head back only until it is force-checkpointed, and recovery must still
// restore it afterwards.
func TestTruncationSafeWithIdleSession(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef(), func(c *Config) {
		c.SessionCkptThreshold = 1 << 10
		c.MSPCkptEvery = 2 << 10
		c.ForceCkptAfter = 2
	})
	c := e.endClient()
	idle := c.Session("msp1")
	for i := 0; i < 3; i++ {
		mustCall(t, idle, "inc", nil)
	}
	busy := c.Session("msp1")
	for i := 0; i < 300; i++ {
		mustCall(t, busy, "inc", nil)
	}
	e.restart("msp1")
	if got := asU64(mustCall(t, idle, "inc", nil)); got != 4 {
		t.Fatalf("idle session after truncated recovery = %d, want 4", got)
	}
	if got := asU64(mustCall(t, busy, "inc", nil)); got != 301 {
		t.Fatalf("busy session after truncated recovery = %d, want 301", got)
	}
}
