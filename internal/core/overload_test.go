package core

import (
	"testing"
	"time"

	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

// blockDef is a service whose "block" method parks on gate until
// released, so tests can hold the worker pool busy deterministically.
// entered receives one value per handler entry.
func blockDef(gate chan struct{}, entered chan struct{}) Definition {
	d := counterDef()
	d.Methods["block"] = func(ctx *Ctx, arg []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return nil, nil
	}
	return d
}

// rawReply waits for the reply matching (session, seq) on a raw
// endpoint, skipping others.
func rawReply(t *testing.T, ep *simnet.Endpoint, session string, seq uint64, timeout time.Duration) rpc.Reply {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case m := <-ep.Recv():
			if rep, ok := m.Payload.(rpc.Reply); ok && rep.Session == session && rep.Seq == seq {
				return rep
			}
		case <-deadline:
			t.Fatalf("no reply for %s/%d within %v", session, seq, timeout)
		}
	}
}

// TestQueueOverflowRepliesOverloaded is the regression test for the
// silent request-queue drop: a request arriving at a full admission
// queue must be answered immediately with StatusOverloaded (carrying a
// RetryAfter hint) AND still count on RequestQueueDrops.
func TestQueueOverflowRepliesOverloaded(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := e.start("msp1", blockDef(gate, entered), func(c *Config) {
		c.Workers = 1
		c.RequestQueueDepth = 2
		c.PriorityQueueDepth = 1
	})
	_ = srv

	raw := e.net.Endpoint("raw")
	send := func(session string, seq uint64) {
		raw.Send("msp1", rpc.Request{Session: session, Seq: seq, Method: "block",
			NewSession: seq == 1, From: raw.Addr()})
	}

	drops0 := metrics.Net.RequestQueueDrops.Load()
	shed0 := metrics.Overload.ShedAtAdmission.Load()
	admitted0 := metrics.Overload.Admitted.Load()

	// Occupy the lone worker, then fill the 2-deep normal lane.
	send("ovl-a", 1)
	<-entered
	send("ovl-b", 1)
	send("ovl-c", 1)
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if cond() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor(func() bool { return metrics.Overload.Admitted.Load()-admitted0 >= 3 }, "three admissions")

	// The fourth request finds both the worker and the queue full: shed.
	send("ovl-d", 1)
	rep := rawReply(t, raw, "ovl-d", 1, 5*time.Second)
	if rep.Status != rpc.StatusOverloaded {
		t.Fatalf("overflow reply status = %v; want Overloaded", rep.Status)
	}
	if rep.RetryAfter <= 0 {
		t.Fatalf("overflow reply RetryAfter = %v; want a positive hint", rep.RetryAfter)
	}
	if got := metrics.Net.RequestQueueDrops.Load() - drops0; got < 1 {
		t.Fatalf("RequestQueueDrops delta = %d; want >= 1", got)
	}
	if got := metrics.Overload.ShedAtAdmission.Load() - shed0; got < 1 {
		t.Fatalf("ShedAtAdmission delta = %d; want >= 1", got)
	}
	close(gate) // release the parked handlers before cleanup
}

// TestExpiredDeadlineShedsBeforeAppend pins the tentpole's durability
// rule: a request whose deadline expired while queued is shed at the
// pre-append check — StatusOverloaded, ShedExpired counted, and NOT one
// byte of log growth — and a later resend under the same sequence
// number executes exactly once.
func TestExpiredDeadlineShedsBeforeAppend(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := e.start("msp1", blockDef(gate, entered), func(c *Config) {
		c.Workers = 1
	})

	raw := e.net.Endpoint("raw")
	// Establish session "b" with a normal call so the expiring request
	// needs no SessionStart append of its own.
	raw.Send("msp1", rpc.Request{Session: "b", Seq: 1, Method: "inc", NewSession: true, From: raw.Addr()})
	if rep := rawReply(t, raw, "b", 1, 5*time.Second); rep.Status != rpc.StatusOK {
		t.Fatalf("setup call status = %v", rep.Status)
	}

	// Park the lone worker, then queue the deadline-carrying request
	// behind it.
	raw.Send("msp1", rpc.Request{Session: "a", Seq: 1, Method: "block", NewSession: true, From: raw.Addr()})
	<-entered
	lsn0 := srv.Log().Next()
	shed0 := metrics.Overload.ShedExpired.Load()
	raw.Send("msp1", rpc.Request{Session: "b", Seq: 2, Method: "inc", From: raw.Addr(),
		Deadline: time.Now().Add(30 * time.Millisecond)})
	time.Sleep(60 * time.Millisecond) // let the deadline expire in the queue
	close(gate)                       // release the worker; it meets the expired request

	rep := rawReply(t, raw, "b", 2, 5*time.Second)
	if rep.Status != rpc.StatusOverloaded {
		t.Fatalf("expired request reply = %v; want Overloaded", rep.Status)
	}
	if got := metrics.Overload.ShedExpired.Load() - shed0; got != 1 {
		t.Fatalf("ShedExpired delta = %d; want 1", got)
	}
	// Not one RECORD was appended on the shed request's behalf (reply
	// flushes may still pad the log to a sector boundary, so Next() can
	// move; records cannot appear).
	records := 0
	if _, err := srv.Log().Scan(lsn0, func(lsn wal.LSN, typ byte, payload []byte) error {
		records++
		return nil
	}); err != nil {
		t.Fatalf("scanning from %d: %v", lsn0, err)
	}
	if records != 0 {
		t.Fatalf("%d records appended across an expired-deadline shed; a shed must precede any append", records)
	}

	// The shed request did not execute and did not burn the sequence
	// number: resending b/2 without a deadline executes exactly once.
	raw.Send("msp1", rpc.Request{Session: "b", Seq: 2, Method: "inc", From: raw.Addr()})
	rep = rawReply(t, raw, "b", 2, 5*time.Second)
	if rep.Status != rpc.StatusOK || asU64(rep.Payload) != 2 {
		t.Fatalf("resend after shed: status %v payload %d; want OK 2", rep.Status, asU64(rep.Payload))
	}
}

// TestAdmissionShedsExpiredDeadline covers the first shed point: a
// request already expired on arrival never reaches the queue.
func TestAdmissionShedsExpiredDeadline(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	srv := e.start("msp1", counterDef())
	raw := e.net.Endpoint("raw")
	lsn0 := srv.Log().Next()
	shed0 := metrics.Overload.ShedExpired.Load()
	raw.Send("msp1", rpc.Request{Session: "x", Seq: 1, Method: "inc", NewSession: true,
		From: raw.Addr(), Deadline: time.Now().Add(-time.Second)})
	rep := rawReply(t, raw, "x", 1, 5*time.Second)
	if rep.Status != rpc.StatusOverloaded {
		t.Fatalf("expired-on-arrival reply = %v; want Overloaded", rep.Status)
	}
	if got := metrics.Overload.ShedExpired.Load() - shed0; got != 1 {
		t.Fatalf("ShedExpired delta = %d; want 1", got)
	}
	if lsn := srv.Log().Next(); lsn != lsn0 {
		t.Fatal("an admission-time shed must not touch the log")
	}
}

// TestPriorityLaneCarriesReplayClaims: after a crash-restart, a request
// touching a not-yet-replayed session rides the priority lane.
func TestPriorityLaneCarriesReplayClaims(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef(), func(c *Config) { c.NoRecoverySweep = true })
	cs := e.endClient().Session("msp1")
	for i := 0; i < 3; i++ {
		mustCall(t, cs, "inc", nil)
	}
	e.restart("msp1")

	prio0 := metrics.Overload.AdmittedPriority.Load()
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 4 {
		t.Fatalf("post-restart inc = %d; want 4", got)
	}
	if got := metrics.Overload.AdmittedPriority.Load() - prio0; got < 1 {
		t.Fatalf("AdmittedPriority delta = %d; want >= 1 (the lazy-replay claim)", got)
	}
}

// TestPriorityOverflowFallsBackAndCounts: a priority-classified request
// that finds the priority lane full is still admitted — at the tail of
// the normal lane — and the demotion is counted on PriorityOverflow so
// storms and the chaos report can detect priority starvation.
func TestPriorityOverflowFallsBackAndCounts(t *testing.T) {
	s := &Server{
		cfg:    Config{Workers: 1},
		reqCh:  make(chan rpc.Request, 4),
		prioCh: make(chan rpc.Request), // unbuffered, no reader: always full
	}
	// The zero-value state is stateRecovering, so laneFor classifies the
	// request as priority without touching the session table.
	if s.laneFor(rpc.Request{Session: "p"}) != lanePriority {
		t.Fatal("setup: a recovering server must classify requests as priority")
	}
	over0 := metrics.Overload.PriorityOverflow.Load()
	adm0 := metrics.Overload.Admitted.Load()
	s.admit(rpc.Request{Session: "p", Seq: 1})
	if got := metrics.Overload.PriorityOverflow.Load() - over0; got != 1 {
		t.Fatalf("PriorityOverflow delta = %d; want 1", got)
	}
	if got := metrics.Overload.Admitted.Load() - adm0; got != 1 {
		t.Fatalf("Admitted delta = %d; want 1: the demoted request is admitted, not shed", got)
	}
	select {
	case req := <-s.reqCh:
		if req.Session != "p" || req.Seq != 1 {
			t.Fatalf("normal lane holds %s/%d; want the demoted request p/1", req.Session, req.Seq)
		}
	default:
		t.Fatal("the demoted request must land in the normal lane")
	}
}

// TestRetryAfterHintScalesWithBacklog exercises the hint arithmetic on a
// bare server: more backlog, larger hint, clamped at both ends.
func TestRetryAfterHintScalesWithBacklog(t *testing.T) {
	s := &Server{
		cfg:    Config{Workers: 4},
		reqCh:  make(chan rpc.Request, 256),
		prioCh: make(chan rpc.Request, 8),
	}
	if got := s.retryAfterHint(); got != retryAfterMin {
		t.Fatalf("hint with no samples = %v; want the %v floor", got, retryAfterMin)
	}
	s.noteServiceTime(20 * time.Millisecond) // first sample seeds the EWMA
	small := s.retryAfterHint()              // empty queue: floor
	if small != retryAfterMin {
		t.Fatalf("hint with empty queue = %v; want %v", small, retryAfterMin)
	}
	for i := 0; i < 10; i++ {
		s.reqCh <- rpc.Request{}
	}
	mid := s.retryAfterHint() // 20ms * 10 / 4 = 50ms
	if mid <= small {
		t.Fatalf("hint did not grow with backlog: %v then %v", small, mid)
	}
	for i := 0; i < 246; i++ {
		s.reqCh <- rpc.Request{}
	}
	large := s.retryAfterHint() // 20ms * 256 / 4 = 1.28s
	if large <= mid {
		t.Fatalf("hint did not keep growing: %v then %v", mid, large)
	}
	s.noteServiceTime(time.Hour) // absurd sample: the cap must hold
	s.noteServiceTime(time.Hour)
	if got := s.retryAfterHint(); got > retryAfterMax {
		t.Fatalf("hint %v exceeds the %v cap", got, retryAfterMax)
	}
}

// TestClientPerTargetOverloadControl: sessions toward one target share a
// budget and breaker; a different target gets its own.
func TestClientPerTargetOverloadControl(t *testing.T) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	opts := rpc.DefaultCallOptions(0)
	opts.Budget = rpc.NewRetryBudget(10, 0.1)
	opts.Breaker = rpc.NewBreaker(5, 50*time.Millisecond)
	c := NewClient("c", net, opts)
	defer c.Close()
	s1, s2, s3 := c.Session("a"), c.Session("a"), c.Session("b")
	if s1.opts.Breaker == nil || s1.opts.Budget == nil {
		t.Fatal("sessions must carry the per-target overload control")
	}
	if s1.opts.Breaker != s2.opts.Breaker || s1.opts.Budget != s2.opts.Budget {
		t.Fatal("sessions toward one target must share breaker and budget")
	}
	if s1.opts.Breaker == s3.opts.Breaker || s1.opts.Budget == s3.opts.Budget {
		t.Fatal("a different target must get its own breaker and budget")
	}
	if s1.opts.Breaker == opts.Breaker {
		t.Fatal("the configured breaker is a template; targets must get clones")
	}
}
