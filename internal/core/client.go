package core

import (
	"fmt"
	"sync"

	"mspr/internal/rpc"
	"mspr/internal/simnet"
)

// Client is an end client process (§2.1): it lives outside every service
// domain, so all of its traffic is logged pessimistically by the MSPs it
// talks to. The client resends each request — with the same sequence
// number — until the reply arrives, and ignores duplicate replies; with
// the server's receive logging and reply buffering this yields
// exactly-once execution.
type Client struct {
	id   string
	ep   *simnet.Endpoint
	opts rpc.CallOptions
	tap  ClientTap

	mu       sync.Mutex
	sessions map[string]*ClientSession
	ctl      map[string]targetControl
	counter  int
	stopped  bool
	stop     chan struct{}
}

// targetControl is the client's shared overload-control state toward one
// target server: all of this client's sessions to that server draw from
// the same retry budget and trip the same circuit breaker, so a shedding
// server throttles the whole client, not one session at a time — and
// sheds from one server never open the breaker toward another.
type targetControl struct {
	budget  *rpc.RetryBudget
	breaker *rpc.Breaker
}

// NewClient creates a client attached to the network at address id.
// When opts carries a Budget or Breaker, they are treated as per-server
// templates: each distinct target gets its own clone (see Session).
func NewClient(id string, net *simnet.Network, opts rpc.CallOptions) *Client {
	c := &Client{
		id:       id,
		ep:       net.Endpoint(simnet.Addr(id)),
		opts:     opts,
		sessions: make(map[string]*ClientSession),
		ctl:      make(map[string]targetControl),
		stop:     make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// SetTap attaches the correctness oracle's client-side observation tap
// (see internal/oracle). Call it before issuing requests; sessions share
// the client's tap. A nil tap (the default) records nothing.
func (c *Client) SetTap(t ClientTap) { c.tap = t }

// dispatch routes replies to the waiting session.
func (c *Client) dispatch() {
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.ep.Recv():
			rep, ok := m.Payload.(rpc.Reply)
			if !ok {
				continue
			}
			c.mu.Lock()
			cs := c.sessions[rep.Session]
			c.mu.Unlock()
			if cs == nil {
				continue
			}
			select {
			case cs.replies <- rep:
			default:
			}
		}
	}
}

// Session starts a new session with the MSP at target. Each Session call
// creates a distinct session. The session's call options are the
// client's, with the Budget and Breaker (if configured) replaced by the
// per-target instances shared across this client's sessions to target.
func (c *Client) Session(target string) *ClientSession {
	c.mu.Lock()
	c.counter++
	opts := c.opts
	tc, ok := c.ctl[target]
	if !ok {
		if c.opts.Budget != nil {
			tc.budget = c.opts.Budget.Clone()
		}
		if c.opts.Breaker != nil {
			tc.breaker = c.opts.Breaker.Clone()
		}
		c.ctl[target] = tc
	}
	opts.Budget = tc.budget
	opts.Breaker = tc.breaker
	cs := &ClientSession{
		id:      fmt.Sprintf("%s#%d", c.id, c.counter),
		target:  target,
		client:  c,
		opts:    opts,
		nextSeq: 1,
		replies: make(chan rpc.Reply, 16),
	}
	c.sessions[cs.id] = cs
	c.mu.Unlock()
	return cs
}

// Close stops the client's dispatcher.
func (c *Client) Close() {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		close(c.stop)
	}
	c.mu.Unlock()
}

// ClientSession is one session between an end client and an MSP. A
// session processes one request at a time: Call must not be invoked
// concurrently on the same session.
type ClientSession struct {
	id      string
	target  string
	client  *Client
	opts    rpc.CallOptions
	nextSeq uint64
	replies chan rpc.Reply
	ended   bool
}

// ID returns the session identifier.
func (cs *ClientSession) ID() string { return cs.id }

// Call invokes a service method, resending until the reply arrives.
// Application errors returned by the method surface as *rpc.AppError.
func (cs *ClientSession) Call(method string, arg []byte) ([]byte, error) {
	if cs.ended {
		return nil, fmt.Errorf("core: session %s already ended", cs.id)
	}
	seq := cs.nextSeq
	req := rpc.Request{
		Session:    cs.id,
		Seq:        seq,
		Method:     method,
		Arg:        arg,
		NewSession: seq == 1,
		From:       cs.client.ep.Addr(),
	}
	tap := cs.client.tap
	if tap != nil {
		tap.ClientInvoke(cs.id, method, seq, arg)
	}
	attempts := 0
	payload, err := rpc.Call(func(r rpc.Request) {
		if attempts++; tap != nil && attempts > 1 {
			tap.ClientRetry(cs.id, seq, attempts)
		}
		cs.client.ep.Send(simnet.Addr(cs.target), r) //mspr:flushed-by none (client request: end clients have no log and carry no recoverable state)
	}, cs.replies, req, cs.opts)
	if err != nil && !isTerminal(err) {
		// Non-terminal includes the overload-control outcomes
		// (ErrOverloaded, ErrCircuitOpen, ErrDeadlineExceeded): the
		// request may still execute server-side, so the sequence number
		// must not advance — a later Call resends the identical request
		// or fetches the buffered reply via the duplicate path.
		return nil, err
	}
	if tap != nil {
		if err == nil {
			tap.ClientReply(cs.id, seq, true, payload)
		} else if ae, ok := err.(*rpc.AppError); ok {
			tap.ClientReply(cs.id, seq, false, []byte(ae.Msg))
		}
	}
	cs.nextSeq = seq + 1
	return payload, err
}

// End terminates the session at the server.
func (cs *ClientSession) End() error {
	if cs.ended {
		return nil
	}
	seq := cs.nextSeq
	req := rpc.Request{
		Session:    cs.id,
		Seq:        seq,
		NewSession: seq == 1,
		EndSession: true,
		From:       cs.client.ep.Addr(),
	}
	_, err := rpc.Call(func(r rpc.Request) {
		cs.client.ep.Send(simnet.Addr(cs.target), r) //mspr:flushed-by none (client request: end clients have no log and carry no recoverable state)
	}, cs.replies, req, cs.opts)
	cs.ended = true
	cs.client.mu.Lock()
	delete(cs.client.sessions, cs.id)
	cs.client.mu.Unlock()
	return err
}

// isTerminal reports whether an error is a definitive outcome of the
// request (the request executed, or can never execute), after which the
// sequence number advances.
func isTerminal(err error) bool {
	if err == nil {
		return true
	}
	if _, ok := err.(*rpc.AppError); ok {
		return true
	}
	return false
}
