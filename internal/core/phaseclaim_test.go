package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMarkUnrecoveredDoesNotRevertClaim pins the bug the phasestate
// analyzer caught: markUnrecovered used to store phaseUnrecovered
// unconditionally, so a late analysis pass (or a racing sweep) could
// revert a session a request had already claimed for replay back to
// unrecovered — and a second claimer would then win, voiding
// claimForReplay's one-winner guarantee and replaying the session twice.
func TestMarkUnrecoveredDoesNotRevertClaim(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	srv := e.start("msp1", counterDef())

	sess := newSession(srv, "claimed-sess", "", false)
	sess.markUnrecovered()
	if !sess.claimForReplay() {
		t.Fatal("first claim on an unrecovered session should win")
	}
	// The racing re-mark: must be a no-op on a claimed session.
	sess.markUnrecovered()
	if sess.claimForReplay() {
		t.Fatal("markUnrecovered reverted a claimed session: a second claimer won")
	}
	if !sess.pendingReplay() {
		t.Fatal("claimed session should still owe its replay")
	}
	sess.finishRecovery()
	if sess.pendingReplay() {
		t.Fatal("session should be live after finishRecovery")
	}
}

// TestClaimForReplayOneWinnerRace hammers the unrecovered → replaying
// transition from many goroutines at once — concurrent retried requests
// plus a background-sweep claimer that also re-marks, as recovery.go's
// analysis pass does — and requires exactly one winner per session.
// Meant to run under -race (CI does).
func TestClaimForReplayOneWinnerRace(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	srv := e.start("msp1", counterDef())

	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for r := 0; r < rounds; r++ {
		sess := newSession(srv, fmt.Sprintf("raced-%d", r), "", false)
		sess.markUnrecovered()

		var wins atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ { // retried client requests
			wg.Add(1)
			go func() {
				defer wg.Done()
				if sess.claimForReplay() {
					wins.Add(1)
				}
			}()
		}
		wg.Add(1)
		go func() { // background sweep: claim, and a straggling re-mark
			defer wg.Done()
			if sess.claimForReplay() {
				wins.Add(1)
			}
			sess.markUnrecovered()
		}()
		wg.Wait()

		// After the dust settles, the re-mark must not have minted a
		// second claimable unit.
		if sess.claimForReplay() {
			wins.Add(1)
		}
		if w := wins.Load(); w != 1 {
			t.Fatalf("round %d: %d claimers won (want exactly 1)", r, w)
		}
		sess.finishRecovery()
	}
}
