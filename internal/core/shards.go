package core

import "sync"

// The session table is lock-striped (§5.5 scalability): requests for
// different sessions proceed through disjoint shard locks instead of
// funneling through one server-wide mutex, so the request hot path
// scales with cores. Shard selection hashes the session ID with FNV-1a.
//
// The striping changes the fuzzy checkpointer's visibility contract.
// With a single table lock, a session was either fully created (start
// record appended, start LSN published) or invisible; with shards, the
// SessionStart append happens OUTSIDE the shard lock, so the
// checkpointer can observe a session that exists but has no start LSN
// yet ("starting"). Two mechanisms keep the log head from advancing
// past such a session's records (see writeMSPCheckpoint):
//
//   - every starting session carries startPin, the log's append
//     position captured before the session became visible; its future
//     SessionStart LSN is ≥ startPin, so the head is clamped at the pin;
//   - the checkpointer additionally clamps the head at the log position
//     captured before its table scan (the barrier), which covers
//     sessions inserted after their shard was scanned.

// numShards is the stripe count. Power of two so shard selection is a
// mask; 64 stripes keep contention negligible for the default 32-worker
// pool without bloating the per-server footprint.
const numShards = 64

// sessionShard is one stripe: a mutex and the sessions hashed to it.
// Padding keeps adjacent shards' locks off the same cache line. The
// stripe lock sits between stateMu (10) and Session.mu (30) in the
// lattice and is noblock: the hot path must never flush, send, or
// otherwise stall while holding a stripe.
type sessionShard struct {
	mu sync.RWMutex        //mspr:lock-level 20 noblock
	m  map[string]*Session //mspr:guarded-by mu
	_  [32]byte
}

// sessionTable is the lock-striped session table.
type sessionTable struct {
	shards [numShards]sessionShard
}

// init allocates the shard maps; it runs once, before the table is
// published to any other goroutine.
//
//mspr:guardedby mount-time initialization, single-threaded
func (t *sessionTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[string]*Session)
	}
}

// fnv1a is the 32-bit FNV-1a hash of s.
func fnv1a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shard returns the stripe responsible for the given session ID.
func (t *sessionTable) shard(id string) *sessionShard {
	return &t.shards[fnv1a(id)&(numShards-1)]
}

// get returns the session with the given ID, or nil.
func (t *sessionTable) get(id string) *Session {
	sh := t.shard(id)
	sh.mu.RLock()
	sess := sh.m[id]
	sh.mu.RUnlock()
	return sess
}

// insert adds a session (overwriting any previous entry with the ID).
func (t *sessionTable) insert(sess *Session) {
	sh := t.shard(sess.id)
	sh.mu.Lock()
	sh.m[sess.id] = sess
	sh.mu.Unlock()
}

// delete removes the session with the given ID.
func (t *sessionTable) delete(id string) {
	sh := t.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// forEach calls fn for every session, holding one shard's read lock at
// a time. Sessions inserted or deleted concurrently may or may not be
// visited; fn must not call back into the table.
func (t *sessionTable) forEach(fn func(*Session)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.m {
			fn(sess)
		}
		sh.mu.RUnlock()
	}
}

// snapshot returns the sessions present at some point during the call.
func (t *sessionTable) snapshot() []*Session {
	var out []*Session
	t.forEach(func(sess *Session) { out = append(out, sess) })
	return out
}
