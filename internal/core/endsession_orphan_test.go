package core

import (
	"testing"
	"time"

	"mspr/internal/rpc"
	"mspr/internal/simnet"
)

// endSessionOrphanDefs builds the two-MSP shape used to plant an
// unflushed cross-MSP dependency in a shared variable: "seed" on msp1
// calls msp2 and then writes sv, so sv's dependency vector carries an
// entry for msp2's (unflushed, optimistic) log tail; "readShared"
// merges that dependency into whichever session reads sv.
func endSessionOrphanDefs() (def1, def2 Definition) {
	def1 = Definition{
		Methods: map[string]Handler{
			"seed": func(ctx *Ctx, arg []byte) ([]byte, error) {
				if _, err := ctx.Call("msp2", "bump", nil); err != nil {
					return nil, err
				}
				return nil, ctx.WriteShared("sv", u64(1))
			},
			"readShared": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared("sv")
			},
		},
		Shared: []SharedDef{{Name: "sv", Initial: u64(0)}},
	}
	def2 = Definition{
		Methods: map[string]Handler{
			"bump": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	return def1, def2
}

// TestEndSessionDiscoversOrphan: ending a session whose DV depends on a
// crashed peer epoch must trigger session orphan recovery, after which a
// resent End completes — the end-of-session flush is an orphan detection
// point like any reply flush (§4.2). Regression: finishEndSession used
// to swallow errOrphanDep, leaving the session an un-recovered orphan
// and the client resending End forever without an acknowledgement.
//
// The scenario needs an idle session holding an UNFLUSHED dependency on
// the crashed epoch, which a normal reply flush would have made durable.
// We get one via the optimistic intra-domain path: a fake intra-domain
// client (HasDV set) runs "seed", whose reply attaches the DV without
// flushing, leaving sv's dependency on msp2 un-durable. The end client's
// "readShared" then merges that dependency, and its own reply flush
// fails Busy behind a partition — so the session goes idle with the
// dependency still unflushed. msp2 crash-restarts behind the partition
// (its recovery broadcast is lost), the partition heals, and the End's
// flush is the first point where msp1 can discover the orphan.
func TestEndSessionDiscoversOrphan(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := endSessionOrphanDefs()
	srv1 := e.start("msp1", def1)
	e.start("msp2", def2)

	// Intra-domain seeder: plants the unflushed msp2 dependency in sv.
	seeder := e.net.Endpoint("seeder")
	seeder.Send("msp1", rpc.Request{Session: "seed#1", Seq: 1, Method: "seed",
		NewSession: true, HasDV: true, From: seeder.Addr()})
	if rep := awaitReply(t, seeder, 1); rep.Status != rpc.StatusOK {
		t.Fatalf("seed reply status = %v", rep.Status)
	}

	// Partition the domain, then let the end client pick up the
	// dependency. Its reply flush cannot reach msp2, so the request
	// degrades to Busy and the session goes idle with the dependency
	// unflushed.
	e.net.Partition([]simnet.Addr{"msp1"}, []simnet.Addr{"msp2"})
	ender := e.net.Endpoint("ender")
	ender.Send("msp1", rpc.Request{Session: "end#1", Seq: 1, Method: "readShared",
		NewSession: true, From: ender.Addr()})
	if rep := awaitReply(t, ender, 1); rep.Status != rpc.StatusBusy {
		t.Fatalf("readShared during partition: status = %v, want Busy", rep.Status)
	}

	// msp2 crash-restarts behind the partition: its buffered log tail is
	// lost (the dependency becomes an orphan) and its recovery broadcast
	// never reaches msp1.
	e.restart("msp2")
	e.net.Heal()
	time.Sleep(40 * time.Millisecond) // let msp1's peer-probe window reopen

	// End the session. The flush discovers the orphan (msp2 answers
	// CtlOrphan); recovery must run and a resent End must complete.
	endReq := rpc.Request{Session: "end#1", Seq: 2, EndSession: true, From: ender.Addr()}
	deadline := time.After(5 * time.Second)
	resend := time.NewTicker(50 * time.Millisecond)
	defer resend.Stop()
	ender.Send("msp1", endReq)
	for acked := false; !acked; {
		select {
		case m := <-ender.Recv():
			rep, ok := m.Payload.(rpc.Reply)
			if ok && rep.Seq == 2 && rep.Status == rpc.StatusOK {
				acked = true
			}
		case <-resend.C:
			ender.Send("msp1", endReq)
		case <-deadline:
			t.Fatal("end-session never acknowledged: orphan discovered during the end flush was swallowed")
		}
	}
	if srv1.Stats().OrphanRecoveries.Load() == 0 {
		t.Fatal("no session orphan recovery ran on msp1")
	}
}
