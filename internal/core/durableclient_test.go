package core

import (
	"testing"

	"mspr/internal/rpc"
	"mspr/internal/simdisk"
)

// durable client tests: exactly-once must survive crashes of the CLIENT,
// not just the servers.

func newDurableClientEnv(t *testing.T) (*testEnv, *simdisk.Disk) {
	e := newTestEnv(t)
	e.start("msp1", counterDef())
	return e, simdisk.NewDisk(simdisk.DefaultModel(0))
}

func mustDurable(t *testing.T, e *testEnv, disk *simdisk.Disk) *DurableClient {
	t.Helper()
	dc, err := NewDurableClient("dclient", e.net, disk, rpc.DefaultCallOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestDurableClientBasicCalls(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	defer dc.Close()
	ds, err := dc.Session("msp1")
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 5; want++ {
		out, err := ds.Call("inc", nil)
		if err != nil || asU64(out) != want {
			t.Fatalf("inc = (%d, %v), want %d", asU64(out), err, want)
		}
	}
}

func TestDurableClientResumesAfterCrash(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	ds, err := dc.Session("msp1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ds.Call("inc", nil); err != nil {
			t.Fatal(err)
		}
	}
	id := ds.ID()
	dc.Crash()

	dc2 := mustDurable(t, e, disk)
	defer dc2.Close()
	restored := dc2.Sessions()[id]
	if restored == nil {
		t.Fatalf("session %s not restored; have %v", id, dc2.Sessions())
	}
	if _, _, pending := restored.Pending(); pending {
		t.Fatal("completed session should have no pending request")
	}
	// Continue exactly where we left off: the counter must be 4 —
	// proving no sequence number was reused or skipped.
	out, err := restored.Call("inc", nil)
	if err != nil || asU64(out) != 4 {
		t.Fatalf("restored session inc = (%d, %v), want 4", asU64(out), err)
	}
}

func TestDurableClientResumesInFlightRequest(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	ds, err := dc.Session("msp1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ds.Call("inc", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Send the third request but crash the client before any reply can
	// be processed: the intent is on disk, the outcome unknown. (The
	// server may or may not have executed it — here it has; the resend
	// must fetch the buffered reply, not execute again.)
	reqID := ds.ID()
	ds.c.mu.Lock()
	in := &intent{seq: ds.nextSeq, method: "inc"}
	if err := ds.c.appendLocked(dcIntent, encIntent(ds.id, in)); err != nil {
		t.Fatal(err)
	}
	ds.c.mu.Unlock()
	// Actually deliver it once so the server executes it.
	e.net.Endpoint("dclient").Send("msp1", rpc.Request{
		Session: ds.id, Seq: in.seq, Method: "inc", From: "dclient",
	})
	dc.Crash()

	dc2 := mustDurable(t, e, disk)
	defer dc2.Close()
	restored := dc2.Sessions()[reqID]
	if restored == nil {
		t.Fatal("session not restored")
	}
	method, _, pending := restored.Pending()
	if !pending || method != "inc" {
		t.Fatalf("pending = (%q, %v), want inc", method, pending)
	}
	// Call before Resume must refuse.
	if _, err := restored.Call("inc", nil); err == nil {
		t.Fatal("Call with a pending request should fail")
	}
	out, err := restored.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if asU64(out) != 3 {
		t.Fatalf("resumed request returned %d, want 3 (duplicated or lost)", asU64(out))
	}
	// And the next call continues the sequence.
	out, err = restored.Call("inc", nil)
	if err != nil || asU64(out) != 4 {
		t.Fatalf("post-resume inc = (%d, %v), want 4", asU64(out), err)
	}
}

func TestDurableClientSurvivesServerAndClientCrash(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	ds, _ := dc.Session("msp1")
	for i := 0; i < 3; i++ {
		if _, err := ds.Call("inc", nil); err != nil {
			t.Fatal(err)
		}
	}
	id := ds.ID()
	dc.Crash()
	e.restart("msp1") // server crashes too

	dc2 := mustDurable(t, e, disk)
	defer dc2.Close()
	out, err := dc2.Sessions()[id].Call("inc", nil)
	if err != nil || asU64(out) != 4 {
		t.Fatalf("after double crash inc = (%d, %v), want 4", asU64(out), err)
	}
}

func TestDurableClientTornJournalTail(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	ds, _ := dc.Session("msp1")
	if _, err := ds.Call("inc", nil); err != nil {
		t.Fatal(err)
	}
	dc.Crash()
	// Corrupt the journal tail.
	f := disk.OpenFile("client/dclient")
	_, _ = f.WriteAt([]byte{9, 9, 9}, f.Size())
	dc2 := mustDurable(t, e, disk)
	defer dc2.Close()
	if len(dc2.Sessions()) != 1 {
		t.Fatalf("valid journal prefix lost: %v", dc2.Sessions())
	}
}

func TestDurableClientNewSessionsAfterRestartDontCollide(t *testing.T) {
	e, disk := newDurableClientEnv(t)
	defer e.cleanup()
	dc := mustDurable(t, e, disk)
	ds1, _ := dc.Session("msp1")
	_, _ = ds1.Call("inc", nil)
	dc.Crash()
	dc2 := mustDurable(t, e, disk)
	defer dc2.Close()
	ds2, err := dc2.Session("msp1")
	if err != nil {
		t.Fatal(err)
	}
	if ds2.ID() == ds1.ID() {
		t.Fatalf("restored client reused session ID %s", ds2.ID())
	}
	out, err := ds2.Call("inc", nil)
	if err != nil || asU64(out) != 1 {
		t.Fatalf("new session inc = (%d, %v), want 1", asU64(out), err)
	}
}
