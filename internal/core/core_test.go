package core

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// testEnv is a two-MSP service domain plus an end client, mirroring the
// paper's experimental configuration (Fig. 13) at TimeScale 0 for fast
// unit testing.
type testEnv struct {
	t      *testing.T
	net    *simnet.Network
	domain *Domain
	disks  map[string]*simdisk.Disk
	defs   map[string]Definition
	muts   map[string][]func(*Config)
	srvs   map[string]*Server
	client *Client
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// counterDef defines a little service used by most tests:
//
//	inc       — increments the session variable "n" and returns it
//	sharedInc — increments shared variable "total" and returns it
//	both      — inc + sharedInc
//	callThrough(target) in multi-MSP defs — defined separately
func counterDef() Definition {
	return Definition{
		Methods: map[string]Handler{
			"inc": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
			"get": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return ctx.GetVar("n"), nil
			},
			"sharedInc": func(ctx *Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				n := asU64(v) + 1
				if err := ctx.WriteShared("total", u64(n)); err != nil {
					return nil, err
				}
				return u64(n), nil
			},
			"sharedGet": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
			"fail": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return nil, fmt.Errorf("deliberate failure %q", arg)
			},
		},
		Shared: []SharedDef{{Name: "total", Initial: u64(0)}},
	}
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	return &testEnv{
		t:      t,
		net:    simnet.New(simnet.Config{TimeScale: 0}),
		domain: NewDomain("dom", 0, 0),
		disks:  make(map[string]*simdisk.Disk),
		defs:   make(map[string]Definition),
		muts:   make(map[string][]func(*Config)),
		srvs:   make(map[string]*Server),
	}
}

// cfgFor rebuilds the named MSP's config, reapplying its remembered
// config mutators (so a restart keeps e.g. its failpoint registry).
func (e *testEnv) cfgFor(id string) Config {
	cfg := NewConfig(id, e.domain, e.disks[id], e.net, e.defs[id])
	for _, m := range e.muts[id] {
		m(&cfg)
	}
	return cfg
}

// start launches (or restarts after Crash) the named MSP. Mutators are
// remembered per MSP; a start without mutators reuses the previous ones.
func (e *testEnv) start(id string, def Definition, mut ...func(*Config)) *Server {
	e.t.Helper()
	if _, ok := e.disks[id]; !ok {
		e.disks[id] = simdisk.NewDisk(simdisk.DefaultModel(0))
	}
	e.defs[id] = def
	if len(mut) > 0 {
		e.muts[id] = mut
	}
	s, err := Start(e.cfgFor(id))
	if err != nil {
		e.t.Fatalf("starting %s: %v", id, err)
	}
	e.srvs[id] = s
	return s
}

// restart crashes and restarts the named MSP with its previous definition.
// If an armed failpoint crashes the incarnation during its own recovery,
// restart keeps retrying: recovery must be re-enterable after a nested
// crash.
func (e *testEnv) restart(id string) *Server {
	e.t.Helper()
	e.srvs[id].Crash()
	for tries := 0; ; tries++ {
		s, err := Start(e.cfgFor(id))
		if err == nil {
			e.srvs[id] = s
			return s
		}
		if !failpoint.IsInjected(err) || tries >= 8 {
			e.t.Fatalf("restarting %s: %v", id, err)
		}
	}
}

func (e *testEnv) endClient() *Client {
	if e.client == nil {
		e.client = NewClient("client", e.net, rpc.DefaultCallOptions(0))
	}
	return e.client
}

func (e *testEnv) cleanup() {
	for _, s := range e.srvs {
		s.Crash()
	}
	if e.client != nil {
		e.client.Close()
	}
}

func mustCall(t *testing.T, cs *ClientSession, method string, arg []byte) []byte {
	t.Helper()
	out, err := cs.Call(method, arg)
	if err != nil {
		t.Fatalf("call %s: %v", method, err)
	}
	return out
}

func TestBasicRequestReply(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 5; want++ {
		got := asU64(mustCall(t, cs, "inc", nil))
		if got != want {
			t.Fatalf("inc #%d returned %d", want, got)
		}
	}
}

func TestAppErrorsAreReplies(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	_, err := cs.Call("fail", []byte("x"))
	if err == nil {
		t.Fatal("expected an application error")
	}
	if _, ok := err.(*rpc.AppError); !ok {
		t.Fatalf("expected *rpc.AppError, got %T: %v", err, err)
	}
	// The session keeps working after an application error.
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 1 {
		t.Fatalf("inc after error returned %d", got)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	_, err := cs.Call("nope", nil)
	if err != rpc.ErrRejected {
		t.Fatalf("expected ErrRejected, got %v", err)
	}
}

func TestSharedStateAcrossSessions(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	c := e.endClient()
	a, b := c.Session("msp1"), c.Session("msp1")
	mustCall(t, a, "sharedInc", nil)
	mustCall(t, b, "sharedInc", nil)
	if got := asU64(mustCall(t, a, "sharedGet", nil)); got != 2 {
		t.Fatalf("shared total = %d, want 2", got)
	}
}

func TestCrashRecoveryRestoresSessionState(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for i := 0; i < 7; i++ {
		mustCall(t, cs, "inc", nil)
	}
	e.restart("msp1")
	// The session survives the crash: the counter continues from 7.
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 8 {
		t.Fatalf("after crash recovery inc returned %d, want 8", got)
	}
}

func TestCrashRecoveryRestoresSharedState(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for i := 0; i < 5; i++ {
		mustCall(t, cs, "sharedInc", nil)
	}
	e.restart("msp1")
	cs2 := e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs2, "sharedInc", nil)); got != 6 {
		t.Fatalf("after crash recovery shared total = %d, want 6", got)
	}
}

func TestExactlyOnceAcrossManyCrashes(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	want := uint64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			want++
			got := asU64(mustCall(t, cs, "inc", nil))
			if got != want {
				t.Fatalf("round %d: inc returned %d, want %d (lost or duplicated execution)", round, got, want)
			}
		}
		e.restart("msp1")
	}
}

// twoMSPDefs wires the paper's Fig. 13 shape: method1 on msp1 reads and
// writes SV0, calls method2 on msp2 m times, reads and writes SV1, and
// updates session state; method2 reads and writes SV2 and SV3 and updates
// its session state.
func twoMSPDefs(m int) (def1, def2 Definition) {
	def1 = Definition{
		Methods: map[string]Handler{
			"method1": func(ctx *Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("sv0")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("sv0", u64(asU64(v)+1)); err != nil {
					return nil, err
				}
				var last []byte
				for i := 0; i < m; i++ {
					last, err = ctx.Call("msp2", "method2", arg)
					if err != nil {
						return nil, err
					}
				}
				v, err = ctx.ReadShared("sv1")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("sv1", u64(asU64(v)+1)); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				_ = last
				return u64(n), nil
			},
		},
		Shared: []SharedDef{{Name: "sv0", Initial: u64(0)}, {Name: "sv1", Initial: u64(0)}},
	}
	def2 = Definition{
		Methods: map[string]Handler{
			"method2": func(ctx *Ctx, arg []byte) ([]byte, error) {
				for _, name := range []string{"sv2", "sv3"} {
					v, err := ctx.ReadShared(name)
					if err != nil {
						return nil, err
					}
					if err := ctx.WriteShared(name, u64(asU64(v)+1)); err != nil {
						return nil, err
					}
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
		Shared: []SharedDef{{Name: "sv2", Initial: u64(0)}, {Name: "sv3", Initial: u64(0)}},
	}
	return def1, def2
}

func TestTwoMSPIntraDomainCalls(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	e.start("msp1", def1)
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 10; want++ {
		got := asU64(mustCall(t, cs, "method1", []byte("payload")))
		if got != want {
			t.Fatalf("method1 #%d returned %d", want, got)
		}
	}
}

func TestCalleeCrashOrphanRecovery(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	e.start("msp1", def1)
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("warmup #%d returned %d", want, got)
		}
	}
	// Crash the callee: msp1's session depends on msp2's buffered state
	// and must perform orphan recovery, then continue with exactly-once
	// semantics.
	e.restart("msp2")
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("post-crash #%d returned %d (exactly-once violated)", want, got)
		}
	}
}

func TestCallerCrashRecovery(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	e.start("msp1", def1)
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, cs, "method1", nil)
	}
	e.restart("msp1")
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("post-crash #%d returned %d", want, got)
		}
	}
}

func TestBothCrashRecovery(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(2)
	e.start("msp1", def1)
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, cs, "method1", nil)
	}
	e.srvs["msp1"].Crash()
	e.srvs["msp2"].Crash()
	e.start("msp2", e.defs["msp2"])
	e.start("msp1", e.defs["msp1"])
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("post-double-crash #%d returned %d", want, got)
		}
	}
}

func TestSessionCheckpointingKeepsWorking(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	// Tiny thresholds so checkpoints fire constantly.
	e.start("msp1", counterDef(), func(c *Config) {
		c.SessionCkptThreshold = 256
		c.SVCkptEvery = 2
		c.MSPCkptEvery = 1024
	})
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 50; want++ {
		if got := asU64(mustCall(t, cs, "inc", nil)); got != want {
			t.Fatalf("inc #%d returned %d", want, got)
		}
		mustCall(t, cs, "sharedInc", nil)
	}
	e.restart("msp1")
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 51 {
		t.Fatalf("after restart inc returned %d, want 51", got)
	}
	cs2 := e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs2, "sharedGet", nil)); got != 50 {
		t.Fatalf("after restart shared total = %d, want 50", got)
	}
}

func TestLossyNetworkExactlyOnce(t *testing.T) {
	e := newTestEnv(t)
	e.net = simnet.New(simnet.Config{TimeScale: 0, LossRate: 0.2, DupRate: 0.2, Seed: 42})
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 30; want++ {
		got := asU64(mustCall(t, cs, "inc", nil))
		if got != want {
			t.Fatalf("lossy inc #%d returned %d (exactly-once violated)", want, got)
		}
	}
}

func TestEndSession(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	mustCall(t, cs, "inc", nil)
	if err := cs.End(); err != nil {
		t.Fatalf("end session: %v", err)
	}
	// Ended sessions stay ended across a crash.
	e.restart("msp1")
	cs2 := e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs2, "inc", nil)); got != 1 {
		t.Fatalf("new session inc returned %d, want 1", got)
	}
}

func TestNoLogModeServes(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef(), func(c *Config) { c.Logging = false })
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 5; want++ {
		if got := asU64(mustCall(t, cs, "inc", nil)); got != want {
			t.Fatalf("nolog inc #%d returned %d", want, got)
		}
	}
}

func TestCleanShutdownRecoversEverything(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for i := 0; i < 4; i++ {
		mustCall(t, cs, "inc", nil)
		mustCall(t, cs, "sharedInc", nil)
	}
	if err := e.srvs["msp1"].Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	e.start("msp1", e.defs["msp1"])
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 5 {
		t.Fatalf("after shutdown inc returned %d, want 5", got)
	}
}

func TestManyParallelSessionsRecoverAfterCrash(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	c := e.endClient()
	const n = 16
	sessions := make([]*ClientSession, n)
	for i := range sessions {
		sessions[i] = c.Session("msp1")
	}
	done := make(chan error, n)
	for _, cs := range sessions {
		go func(cs *ClientSession) {
			for k := uint64(1); k <= 5; k++ {
				out, err := cs.Call("inc", nil)
				if err != nil {
					done <- err
					return
				}
				if asU64(out) != k {
					done <- fmt.Errorf("session %s: inc returned %d, want %d", cs.ID(), asU64(out), k)
					return
				}
			}
			done <- nil
		}(cs)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	e.restart("msp1")
	// All sessions recover in parallel and continue.
	for _, cs := range sessions {
		go func(cs *ClientSession) {
			out, err := cs.Call("inc", nil)
			if err != nil {
				done <- err
				return
			}
			if asU64(out) != 6 {
				done <- fmt.Errorf("session %s: post-crash inc returned %d, want 6", cs.ID(), asU64(out))
				return
			}
			done <- nil
		}(cs)
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("timed out waiting for parallel session recovery")
		}
	}
}
