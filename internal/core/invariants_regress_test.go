package core

import (
	"testing"

	"mspr/internal/dv"
	"mspr/internal/failpoint"
	"mspr/internal/logrec"
	"mspr/internal/simdisk"
)

// Regression for a dvalias violation found by mspr-vet: applyScanWrite
// stored the decoded record's vector without Clone(), so the shared
// variable's DV aliased the scan's record — a later Merge into either
// mutated both, masking or inventing orphan dependencies.
func TestApplyScanWriteClonesVector(t *testing.T) {
	e1 := dv.Entry{Process: "p1", Epoch: 1}
	e2 := dv.Entry{Process: "p2", Epoch: 3}
	sv := &SharedVar{}
	rec := logrec.SharedWrite{Var: "total", Value: u64(7), DV: dv.Vector{e1: 7}}
	sv.applyScanWrite(rec, 10)

	rec.DV[e1] = 1
	rec.DV[e2] = 99
	if got := sv.vec[e1]; got != 7 {
		t.Fatalf("shared vector aliased the scan record: entry %v = %d, want 7", e1, got)
	}
	if _, ok := sv.vec[e2]; ok {
		t.Fatalf("shared vector aliased the scan record: gained entry %v", e2)
	}
}

// Regression for a walerr violation found by mspr-vet: Shutdown
// discarded the final flush's error, reporting a clean stop even when
// the tail never reached the disk. It must surface the failure.
func TestShutdownReturnsFlushError(t *testing.T) {
	e := newTestEnv(t)
	reg := failpoint.New(1)
	e.start("msp1", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
	cs := e.endClient().Session("msp1")
	mustCall(t, cs, "inc", nil)

	// Fail the next three writes to the log file — exhausting the flush
	// path's transient-error retry budget — then leave an unflushed
	// tail: the shutdown flush must hit the injected error and report it.
	s := e.srvs["msp1"]
	reg.Enable(simdisk.FPWriteError+":msp1.log", failpoint.Times(3))
	rec := logrec.RecoveryInfo{Process: "px", CrashedEpoch: 1}
	if _, err := s.log.Append(byte(logrec.TRecoveryInfo), rec.Encode()); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Shutdown(); err == nil {
		t.Fatal("Shutdown returned nil after its final flush failed")
	}
}
