package core

import (
	"testing"

	"mspr/internal/failpoint"
	"mspr/internal/logrec"
	"mspr/internal/simdisk"
)

// (A dvalias regression test for applyScanWrite used to live here: the
// analysis scan stored a decoded record's vector without Clone(). The
// instant-recovery split removed the hazard by construction — the scan no
// longer decodes DVs at all, and materializeLocked clones the vector it
// decodes from a record nothing else retains.)

// Regression for a walerr violation found by mspr-vet: Shutdown
// discarded the final flush's error, reporting a clean stop even when
// the tail never reached the disk. It must surface the failure.
func TestShutdownReturnsFlushError(t *testing.T) {
	e := newTestEnv(t)
	reg := failpoint.New(1)
	e.start("msp1", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
	cs := e.endClient().Session("msp1")
	mustCall(t, cs, "inc", nil)

	// Fail the next three writes to the log file — exhausting the flush
	// path's transient-error retry budget — then leave an unflushed
	// tail: the shutdown flush must hit the injected error and report it.
	s := e.srvs["msp1"]
	reg.Enable(simdisk.FPWriteError+":msp1.log", failpoint.Times(3))
	rec := logrec.RecoveryInfo{Process: "px", CrashedEpoch: 1}
	if _, err := s.log.Append(byte(logrec.TRecoveryInfo), rec.Encode()); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Shutdown(); err == nil {
		t.Fatal("Shutdown returned nil after its final flush failed")
	}
}
