package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mspr/internal/rpc"
	"mspr/internal/simnet"
)

// crashySystem is a two-MSP domain whose method1 can crash msp2 at the
// paper's §5.4 injection point (after msp1 receives method2's reply but
// before the distributed flush), making msp1's session an orphan.
type crashySystem struct {
	e        *testEnv
	armCrash atomic.Bool
	crashMu  sync.Mutex
	crashWG  sync.WaitGroup
}

func newCrashySystem(t *testing.T, mut ...func(*Config)) *crashySystem {
	cs := &crashySystem{e: newTestEnv(t)}
	def1 := Definition{
		Methods: map[string]Handler{
			"method1": func(ctx *Ctx, arg []byte) ([]byte, error) {
				if _, err := ctx.Call("msp2", "method2", arg); err != nil {
					return nil, err
				}
				if cs.armCrash.CompareAndSwap(true, false) {
					// Synchronous restart makes the test deterministic:
					// msp2's buffered records (including the reply state
					// just received) are lost before the distributed
					// flush below runs, so this session is an orphan.
					cs.crashMu.Lock()
					cs.e.restart("msp2")
					cs.crashMu.Unlock()
				}
				v, err := ctx.ReadShared("sv1")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("sv1", u64(asU64(v)+1)); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
		Shared: []SharedDef{{Name: "sv1", Initial: u64(0)}},
	}
	def2 := Definition{
		Methods: map[string]Handler{
			"method2": func(ctx *Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("sv2")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("sv2", u64(asU64(v)+1)); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
		Shared: []SharedDef{{Name: "sv2", Initial: u64(0)}},
	}
	cs.e.start("msp1", def1, mut...)
	cs.e.start("msp2", def2, mut...)
	return cs
}

// TestOrphanRecoveryViaInjectedCrash reproduces the paper's §5.4
// scenario: msp2 dies holding buffered log records, the distributed
// flush before reply1 fails, and SE1 performs orphan recovery. The
// request still completes exactly once.
func TestOrphanRecoveryViaInjectedCrash(t *testing.T) {
	cs := newCrashySystem(t)
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("warmup #%d returned %d", want, got)
		}
	}
	cs.armCrash.Store(true)
	if got := asU64(mustCall(t, sess, "method1", nil)); got != 4 {
		t.Fatalf("crash-injected request returned %d, want 4", got)
	}
	cs.crashWG.Wait()
	msp1 := cs.e.srvs["msp1"]
	if msp1.Stats().OrphanRecoveries.Load() == 0 {
		t.Fatal("msp1 never performed orphan recovery — the crash was not injected at the right point")
	}
	for want := uint64(5); want <= 8; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("post-recovery #%d returned %d", want, got)
		}
	}
}

// TestEOSRecordsSurviveMSPCrash: after an orphan recovery writes an EOS
// record, crash msp1 itself. The analysis scan must prune the skipped
// records via the EOS record so replay does not double-execute them
// (Fig. 11 / §4.1 "EOS Found").
func TestEOSRecordsSurviveMSPCrash(t *testing.T) {
	cs := newCrashySystem(t)
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	for want := uint64(1); want <= 2; want++ {
		mustCall(t, sess, "method1", nil)
	}
	cs.armCrash.Store(true)
	if got := asU64(mustCall(t, sess, "method1", nil)); got != 3 {
		t.Fatalf("crash-injected request returned %d", got)
	}
	cs.crashWG.Wait()
	// A couple more requests after the orphan recovery.
	for want := uint64(4); want <= 5; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("request #%d returned %d", want, got)
		}
	}
	// Flush and crash msp1: the EOS record is durable, so scan-time
	// pruning applies. Replay must land on exactly the same state.
	if err := cs.e.srvs["msp1"].Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cs.e.start("msp1", cs.e.defs["msp1"])
	if got := asU64(mustCall(t, sess, "method1", nil)); got != 6 {
		t.Fatalf("after msp1 crash recovery request returned %d, want 6", got)
	}
}

// TestMultipleConcurrentCrashes exercises repeated crash cycles of msp2
// with activity in between — the "orphan recovery upon multiple crashes"
// scenarios of §4.1.
func TestMultipleConcurrentCrashes(t *testing.T) {
	cs := newCrashySystem(t)
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	want := uint64(0)
	for round := 0; round < 4; round++ {
		for i := 0; i < 2; i++ {
			want++
			if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
				t.Fatalf("round %d: request returned %d, want %d", round, got, want)
			}
		}
		cs.armCrash.Store(true)
		want++
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("round %d crash request returned %d, want %d", round, got, want)
		}
		cs.crashWG.Wait()
	}
}

// TestCallerCrashMidRequestCompletesExactlyOnce crashes msp1 while it is
// processing a request (after logging the receive but before replying).
// Replay reconstructs the partial execution, switches to live mode at the
// end of the log, completes the method for real and the resent request
// yields exactly one execution.
func TestCallerCrashMidRequestCompletesExactlyOnce(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	var crashNow atomic.Bool
	var restartWG sync.WaitGroup
	def2 := Definition{
		Methods: map[string]Handler{
			"method2": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	def1 := Definition{
		Methods: map[string]Handler{
			"method1": func(ctx *Ctx, arg []byte) ([]byte, error) {
				out, err := ctx.Call("msp2", "method2", arg)
				if err != nil {
					return nil, err
				}
				if crashNow.CompareAndSwap(true, false) {
					// Crash msp1 underneath its own request. The reply
					// from msp2 is already logged (buffered) — and lost.
					restartWG.Add(1)
					go func() {
						defer restartWG.Done()
						e.restart("msp1")
					}()
					// Wait so the request cannot finish before the crash.
					time.Sleep(50 * time.Millisecond)
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return append(u64(n), out...), nil
			},
		},
	}
	e.start("msp2", def2)
	e.start("msp1", def1)
	sess := e.endClient().Session("msp1")
	for want := uint64(1); want <= 2; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("warmup #%d returned %d", want, got)
		}
	}
	crashNow.Store(true)
	out := mustCall(t, sess, "method1", nil)
	restartWG.Wait()
	if got := asU64(out); got != 3 {
		t.Fatalf("mid-request crash: method1 returned %d, want 3", got)
	}
	// The nested method2 at msp2 must also have run exactly three times.
	if got := asU64(out[8:]); got != 3 {
		t.Fatalf("method2 executed %d times, want 3 (duplicate or lost nested call)", got)
	}
	if got := asU64(mustCall(t, sess, "method1", nil)); got != 4 {
		t.Fatalf("after recovery returned %d, want 4", got)
	}
}

// TestSharedVariableRollbackToCheckpoint: a shared-variable checkpoint
// breaks the backward chain; an orphaned value rolls back to the
// checkpointed value, not further.
func TestSharedVariableRollbackToCheckpoint(t *testing.T) {
	cs := newCrashySystem(t, func(c *Config) { c.SVCkptEvery = 2 })
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	for i := 0; i < 6; i++ {
		mustCall(t, sess, "method1", nil)
	}
	cs.armCrash.Store(true)
	mustCall(t, sess, "method1", nil)
	cs.crashWG.Wait()
	// Shared state at msp2 must be exactly the number of method2
	// executions, regardless of rollbacks/checkpoints.
	for want := uint64(8); want <= 10; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("request returned %d, want %d", got, want)
		}
	}
	sv := cs.e.srvs["msp2"].sharedVar("sv2")
	if got := asU64(sv.snapshotValue()); got != 10 {
		t.Fatalf("sv2 = %d after 10 method2 executions", got)
	}
}

// TestForcedCheckpointsAdvanceScanStart: an idle session is force-
// checkpointed after ForceCkptAfter MSP checkpoints (§3.4).
func TestForcedCheckpointsAdvanceScanStart(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef(), func(c *Config) {
		c.MSPCkptEvery = 512 // very frequent MSP checkpoints
		c.ForceCkptAfter = 2
		c.SessionCkptThreshold = 1 << 30 // sessions never self-checkpoint
	})
	c := e.endClient()
	idle := c.Session("msp1")
	mustCall(t, idle, "inc", nil) // one request, then idle forever
	busy := c.Session("msp1")
	for i := 0; i < 60; i++ {
		mustCall(t, busy, "inc", nil)
	}
	// Give the async checkpointer a moment.
	deadline := time.Now().Add(5 * time.Second)
	srv := e.srvs["msp1"]
	for srv.Stats().SessionCkpts.Load() == 0 && time.Now().Before(deadline) {
		mustCall(t, busy, "inc", nil)
	}
	if srv.Stats().SessionCkpts.Load() == 0 {
		t.Fatal("idle session was never force-checkpointed")
	}
	// And everything still recovers.
	e.restart("msp1")
	if got := asU64(mustCall(t, idle, "inc", nil)); got != 2 {
		t.Fatalf("idle session after recovery returned %d, want 2", got)
	}
}

// TestBusyRepliesDuringRecovery: while a session replays, its client's
// requests get StatusBusy and eventually succeed.
func TestBusyRepliesDuringRecovery(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	sess := e.endClient().Session("msp1")
	for i := 0; i < 30; i++ {
		mustCall(t, sess, "inc", nil)
	}
	e.restart("msp1")
	// The resend loop hides Busy replies; correctness is the counter.
	if got := asU64(mustCall(t, sess, "inc", nil)); got != 31 {
		t.Fatalf("inc after recovery = %d", got)
	}
}

// TestDuplicateRequestGetsBufferedReply sends the same request envelope
// twice at the RPC layer and expects the identical buffered reply rather
// than a second execution (§3.1).
func TestDuplicateRequestGetsBufferedReply(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	ep := e.net.Endpoint("raw-client")
	req := rpc.Request{Session: "raw#1", Seq: 1, Method: "inc", NewSession: true, From: ep.Addr()}
	ep.Send("msp1", req)
	first := awaitReply(t, ep, 1)
	ep.Send("msp1", req) // duplicate of an executed request
	second := awaitReply(t, ep, 1)
	if asU64(first.Payload) != 1 || asU64(second.Payload) != 1 {
		t.Fatalf("duplicate executed again: %d then %d", asU64(first.Payload), asU64(second.Payload))
	}
	// The next sequence number executes normally.
	req.Seq, req.NewSession = 2, false
	ep.Send("msp1", req)
	if rep := awaitReply(t, ep, 2); asU64(rep.Payload) != 2 {
		t.Fatalf("next request returned %d", asU64(rep.Payload))
	}
}

// TestAncientAndFutureSequencesIgnored: requests far behind or ahead of
// the expected sequence number produce no execution and no reply.
func TestAncientAndFutureSequencesIgnored(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("msp1", counterDef())
	ep := e.net.Endpoint("raw-client2")
	mk := func(seq uint64, first bool) rpc.Request {
		return rpc.Request{Session: "raw#2", Seq: seq, Method: "inc", NewSession: first, From: ep.Addr()}
	}
	ep.Send("msp1", mk(1, true))
	awaitReply(t, ep, 1)
	ep.Send("msp1", mk(2, false))
	awaitReply(t, ep, 2)
	ep.Send("msp1", mk(1, false)) // ancient: ignored
	ep.Send("msp1", mk(9, false)) // future: ignored
	select {
	case m := <-ep.Recv():
		t.Fatalf("unexpected reply %+v", m.Payload)
	case <-time.After(50 * time.Millisecond):
	}
	ep.Send("msp1", mk(3, false))
	if rep := awaitReply(t, ep, 3); asU64(rep.Payload) != 3 {
		t.Fatalf("request 3 returned %d (out-of-order damage)", asU64(rep.Payload))
	}
}

func awaitReply(t *testing.T, ep *simnet.Endpoint, seq uint64) rpc.Reply {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case m := <-ep.Recv():
			rep, ok := m.Payload.(rpc.Reply)
			if ok && rep.Seq == seq {
				return rep
			}
		case <-deadline:
			t.Fatalf("no reply for seq %d", seq)
		}
	}
}

// TestKnowledgeCatchUpAfterMissedBroadcast: msp2 crashes and recovers
// while msp1 is down; on restart msp1 learns msp2's recovered state
// number from the broadcast's knowledge exchange and still detects its
// orphan sessions.
func TestKnowledgeCatchUpAfterMissedBroadcast(t *testing.T) {
	cs := newCrashySystem(t)
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, sess, "method1", nil)
	}
	// Take msp1 down, crash-and-restart msp2 (its broadcast finds msp1
	// dead), then bring msp1 back.
	cs.e.srvs["msp1"].Crash()
	cs.e.restart("msp2")
	cs.e.start("msp1", cs.e.defs["msp1"])
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("after missed broadcast: request returned %d, want %d", got, want)
		}
	}
}

// TestRepeatedCrashStorm hammers both MSPs with alternating crashes under
// continuous load on several sessions.
func TestRepeatedCrashStorm(t *testing.T) {
	cs := newCrashySystem(t, func(c *Config) { c.SessionCkptThreshold = 8 << 10 })
	defer cs.e.cleanup()
	client := cs.e.endClient()
	const sessions = 4
	const perSession = 12
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			sess := client.Session("msp1")
			for k := uint64(1); k <= perSession; k++ {
				out, err := sess.Call("method1", nil)
				if err != nil {
					errc <- err
					return
				}
				if asU64(out) != k {
					errc <- fmt.Errorf("session %s: got %d want %d", sess.ID(), asU64(out), k)
					return
				}
			}
			errc <- nil
		}()
	}
	// Crash msp2 periodically while the storm runs.
	stop := make(chan struct{})
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
				cs.crashMu.Lock()
				cs.e.restart("msp2")
				cs.crashMu.Unlock()
			}
		}
	}()
	for i := 0; i < sessions; i++ {
		if err := <-errc; err != nil {
			close(stop)
			stormWG.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	stormWG.Wait()
}
