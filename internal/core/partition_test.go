package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mspr/internal/dv"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFlushReturnsWithinDeadlineUnderPartition is the deterministic
// degradation check: a distributed-flush peer call against a partitioned
// peer must give up at its (floored) deadline with errUnavailable and
// mark the peer down — not hang — and repeated calls against the down
// peer must fail fast. After Heal the probe path brings the peer back.
func TestFlushReturnsWithinDeadlineUnderPartition(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	s1 := e.start("msp1", def1)
	s2 := e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	mustCall(t, cs, "method1", nil) // warm the control path

	sid := dv.StateID{Epoch: s2.Epoch(), LSN: 0}
	e.net.Partition([]simnet.Addr{"msp1"}, []simnet.Addr{"msp2"})

	start := time.Now()
	err := s1.flushPeerWithRetry("msp2", sid)
	elapsed := time.Since(start)
	if !errors.Is(err, errUnavailable) {
		t.Fatalf("flush under partition: err = %v, want errUnavailable", err)
	}
	// At TimeScale 0 the deadline clamps to the wall-clock floor; well
	// under a second either way. The call must not have hung.
	if elapsed > time.Second {
		t.Fatalf("flush under partition took %v, want within its deadline", elapsed)
	}
	if !s1.PeerDown("msp2") {
		t.Fatal("peer not marked down after flush deadline")
	}

	// With the peer down, a non-probe call fails fast (no deadline wait).
	start = time.Now()
	err = s1.flushPeerWithRetry("msp2", sid)
	if !errors.Is(err, errUnavailable) {
		t.Fatalf("fast-fail flush: err = %v, want errUnavailable", err)
	}
	if fastElapsed := time.Since(start); fastElapsed > 20*time.Millisecond {
		t.Fatalf("flush against down peer took %v, want fast failure", fastElapsed)
	}

	e.net.Heal()
	waitFor(t, 5*time.Second, "flush to succeed after heal", func() bool {
		return s1.flushPeerWithRetry("msp2", sid) == nil
	})
	if s1.PeerDown("msp2") {
		t.Fatal("peer still marked down after successful flush")
	}
}

// TestPartitionDegradesToBusyNotDeadlock splits the domain while msp1
// holds a finished-but-unflushed reply whose dependency vector covers
// msp2: the reply flush must fail at its deadline and the end client
// must be degraded to Busy (request buffered, resends absorbed) instead
// of the worker deadlocking. Healing the partition releases the reply
// with exactly-once semantics.
func TestPartitionDegradesToBusyNotDeadlock(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	var arm atomic.Bool
	entered := make(chan struct{})
	hold := make(chan struct{})
	def2 := Definition{
		Methods: map[string]Handler{
			"inc": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	def1 := Definition{
		Methods: map[string]Handler{
			"dep": func(ctx *Ctx, arg []byte) ([]byte, error) {
				out, err := ctx.Call("msp2", "inc", arg)
				if err != nil {
					return nil, err
				}
				if arm.CompareAndSwap(true, false) {
					entered <- struct{}{}
					<-hold // test partitions the domain meanwhile
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return append(u64(n), out...), nil
			},
		},
	}
	e.start("msp2", def2)
	s1 := e.start("msp1", def1)
	cs := e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs, "dep", nil)); got != 1 {
		t.Fatalf("warmup returned %d, want 1", got)
	}

	deadlinesBefore := metrics.Net.FlushDeadlinesExceeded.Load()
	arm.Store(true)
	done := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		out, err := cs.Call("dep", nil)
		if err != nil {
			errc <- err
			return
		}
		done <- out
	}()
	<-entered
	e.net.Partition([]simnet.Addr{"msp1"}, []simnet.Addr{"msp2"})
	close(hold)

	// The reply flush must exhaust its deadline and degrade: peer marked
	// down, client answered Busy while the reply stays buffered.
	waitFor(t, 5*time.Second, "msp2 marked down at msp1", func() bool {
		return s1.PeerDown("msp2")
	})
	if got := metrics.Net.FlushDeadlinesExceeded.Load(); got <= deadlinesBefore {
		t.Fatalf("FlushDeadlinesExceeded did not advance (%d -> %d)", deadlinesBefore, got)
	}
	select {
	case out := <-done:
		t.Fatalf("call completed during partition: %x", out)
	case err := <-errc:
		t.Fatalf("call failed during partition: %v", err)
	default: // still degraded to Busy — the request has not finished
	}

	e.net.Heal()
	select {
	case out := <-done:
		if got := asU64(out); got != 2 {
			t.Fatalf("post-heal call returned %d, want 2 (exactly-once violated)", got)
		}
	case err := <-errc:
		t.Fatalf("post-heal call failed: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("call did not complete after heal")
	}
	if got := asU64(mustCall(t, cs, "dep", nil)); got != 3 {
		t.Fatalf("follow-up returned %d, want 3", got)
	}
}

// TestRecoveryBroadcastLostToPartitionConverges crashes and restarts
// msp2 while the domain is split: its recovery broadcast cannot reach
// msp1. After Heal, msp1 must still learn msp2's recovery info — here
// via its periodic anti-entropy pull, with no application traffic — and
// the workload must continue exactly-once.
func TestRecoveryBroadcastLostToPartitionConverges(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	s1 := e.start("msp1", def1, func(c *Config) { c.AntiEntropyEvery = 50 * time.Millisecond })
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("warmup #%d returned %d", want, got)
		}
	}

	crashedEpoch := e.srvs["msp2"].Epoch()
	missedBefore := metrics.Net.BroadcastPeersMissed.Load()
	e.net.Partition([]simnet.Addr{"msp1"}, []simnet.Addr{"msp2"})
	e.restart("msp2") // its recovery broadcast is lost to the partition
	if got := metrics.Net.BroadcastPeersMissed.Load(); got <= missedBefore {
		t.Fatalf("BroadcastPeersMissed did not advance (%d -> %d)", missedBefore, got)
	}
	if _, ok := s1.know.Lookup("msp2", crashedEpoch); ok {
		t.Fatal("msp1 learned the recovery info through the partition")
	}

	e.net.Heal()
	// No application traffic: convergence must come from anti-entropy.
	waitFor(t, 5*time.Second, "msp1 to learn msp2's recovery info", func() bool {
		_, ok := s1.know.Lookup("msp2", crashedEpoch)
		return ok
	})
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("post-heal #%d returned %d (exactly-once violated)", want, got)
		}
	}
}

// TestControlDedupAnswersRetransmissionFromCache retransmits a flush
// request under one control ID and expects the second answer to come
// from the server's reply cache.
func TestControlDedupAnswersRetransmissionFromCache(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	def1, _ := twoMSPDefs(0)
	s1 := e.start("msp1", def1)
	probe := e.net.Endpoint("probe")
	dupsBefore := metrics.Net.CtlDuplicates.Load()
	req := rpc.FlushRequest{ID: 77, From: "probe", SID: dv.StateID{Epoch: s1.Epoch(), LSN: 0}}
	for i := 0; i < 2; i++ {
		probe.Send("msp1", req)
		select {
		case m := <-probe.Recv():
			rep, ok := m.Payload.(rpc.FlushReply)
			if !ok || rep.ID != req.ID || rep.Code != rpc.CtlOK {
				t.Fatalf("send #%d: unexpected reply %+v", i, m.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("send #%d: no flush reply", i)
		}
	}
	if got := metrics.Net.CtlDuplicates.Load(); got != dupsBefore+1 {
		t.Fatalf("CtlDuplicates advanced by %d, want 1", got-dupsBefore)
	}
}

// TestExactlyOnceUnderLossDupReorder drives the client↔MSP edge and the
// intra-domain control plane through a network that loses, duplicates
// and reorders: every operation must still execute exactly once.
func TestExactlyOnceUnderLossDupReorder(t *testing.T) {
	e := newTestEnv(t)
	e.net = simnet.New(simnet.Config{
		OneWay: 200 * time.Microsecond, TimeScale: 0.05,
		LossRate: 0.15, DupRate: 0.15, ReorderJitter: 2 * time.Millisecond,
		Seed: 7,
	})
	defer e.cleanup()
	def1, def2 := twoMSPDefs(1)
	e.start("msp1", def1)
	e.start("msp2", def2)
	cs := e.endClient().Session("msp1")
	for want := uint64(1); want <= 25; want++ {
		if got := asU64(mustCall(t, cs, "method1", nil)); got != want {
			t.Fatalf("op #%d returned %d (exactly-once violated)", want, got)
		}
	}
}
