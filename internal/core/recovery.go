package core

import (
	"errors"
	"fmt"

	"mspr/internal/dv"
	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/wal"
)

// recoverFromCrash performs MSP crash recovery (Fig. 12):
//
//  1. re-initialize from the most recent MSP checkpoint (via the anchor);
//  2. run a single-threaded analysis scan of the physical log that
//     reconstructs every session's position stream, notes each shared
//     variable's backward-chain head, and rebuilds the knowledge of
//     recovered state numbers — WITHOUT materializing any session or
//     variable state (instant recovery: the scan is O(log records), not
//     O(state size));
//  3. broadcast a recovery message with the recovered state number;
//  4. take a fresh MSP checkpoint;
//  5. mark every surviving session and written shared variable
//     unrecovered and return the sessions: the server serves immediately,
//     a request touching an unrecovered unit blocks only on that unit's
//     replay, and the background sweep (recoverySweep) drains the rest.
func (s *Server) recoverFromCrash(anchor wal.Anchor) ([]*Session, error) {
	crashedEpoch := anchor.Epoch
	// Restore the log head recorded by the last checkpoint; the records
	// below it were discarded by the previous incarnation. This also
	// idempotently finishes a truncation the crash interrupted: segments
	// wholly below the head that escaped deletion are deleted now.
	if err := s.log.TruncateHead(anchor.Head); err != nil {
		return nil, fmt.Errorf("restoring log head %d: %w", anchor.Head, err)
	}

	typ, payload, err := s.log.ReadRecord(anchor.CheckpointLSN)
	if err != nil {
		return nil, fmt.Errorf("reading MSP checkpoint at %d: %w", anchor.CheckpointLSN, err)
	}
	if logrec.Type(typ) != logrec.TMSPCheckpoint {
		return nil, fmt.Errorf("anchor points at %v, not an MSP checkpoint", logrec.Type(typ))
	}
	ck, err := logrec.DecodeMSPCheckpoint(payload)
	if err != nil {
		return nil, err
	}
	s.know.Restore(ck.Knowledge)

	// The scan starts from the log head the checkpointer recorded in the
	// anchor: the minimal LSN over every session's and shared variable's
	// recovery starting point (§3.4) — including sessions that were still
	// starting when the checkpoint scanned the tables. Such a session
	// appears in no position list (its SessionStart was still being
	// appended, possibly below the checkpoint record), but the
	// checkpointer pinned the head at or below its start, so the scan
	// finds the SessionStart record itself. Records the scan visits below
	// another session's checkpoint are discarded again by
	// scanCheckpointReset when that checkpoint is reached.
	if err := s.evalCrashPoint(FPRecoveryBeforeScan); err != nil {
		return nil, err
	}
	last, err := s.analysisScan(anchor.Head)
	if err != nil {
		return nil, err
	}
	// A torn log tail (a flush interrupted by the crash) holds only
	// records that were never acknowledged durable; truncate it so the
	// records recovery appends below are not stranded behind garbage.
	s.log.RepairTail()
	s.log.InvalidateCache()
	if err := s.evalCrashPoint(FPRecoveryAfterScan); err != nil {
		return nil, err
	}

	// The largest persistent LSN is the recovered state number; the epoch
	// advances to a new failure-free period. An epoch's recovered state
	// number is determined exactly once: if a previous, interrupted run
	// of this recovery already recorded (and possibly broadcast) a number
	// for the crashed epoch, that number stands — records that became
	// durable after it belong to the interrupted incarnation's epoch.
	recovered := int64(last)
	if prior, ok := s.know.Lookup(s.selfID(), crashedEpoch); ok {
		recovered = prior
	}
	s.epoch.Store(crashedEpoch + 1)
	info := dv.RecoveryInfo{Process: s.selfID(), CrashedEpoch: crashedEpoch, Recovered: recovered}
	s.know.Record(info)
	rec := logrec.RecoveryInfo{Process: string(info.Process), CrashedEpoch: info.CrashedEpoch,
		Recovered: wal.LSN(info.Recovered)}
	riLSN, _, err := s.appendRec(logrec.TRecoveryInfo, rec.Encode())
	if err != nil {
		return nil, err
	}
	// The new epoch and the recovered state number must be durable BEFORE
	// the broadcast: if we crash mid-recovery after peers have heard the
	// announcement, the next incarnation must neither reuse this epoch
	// (its LSNs would collide with ours) nor announce a different number
	// for the crashed epoch.
	if err := s.log.Flush(riLSN); err != nil {
		return nil, err
	}
	if err := s.log.WriteAnchor(wal.Anchor{Epoch: crashedEpoch + 1,
		CheckpointLSN: anchor.CheckpointLSN, Head: s.log.Head()}); err != nil {
		return nil, err
	}

	if err := s.evalCrashPoint(FPRecoveryBeforeBroadcast); err != nil {
		return nil, err
	}
	// Broadcast within the service domain, over the network: peers ack
	// with their knowledge, so we also learn about crashes broadcast
	// while we were down. Delivery is best-effort — a peer unreachable
	// within the broadcast deadline (down, partitioned away) is skipped
	// and catches up via anti-entropy on next contact; recovery must not
	// block on a split domain.
	//
	// Every epoch of OURS recorded in knowledge is re-announced, not just
	// the one that just crashed: an earlier incarnation may have made its
	// recovered state number durable and then died before its broadcast
	// went out. Peers holding dependencies on that epoch would otherwise
	// wait forever to learn whether they are orphans. Re-announcing is
	// idempotent — a peer keeps the first number it heard for an epoch.
	var learned []dv.RecoveryInfo
	for _, own := range s.know.Snapshot() {
		if own.Process != s.selfID() {
			continue
		}
		learned = append(learned, s.broadcastRecovery(own)...)
	}
	for _, l := range learned {
		if s.know.Record(l) {
			lr := logrec.RecoveryInfo{Process: string(l.Process), CrashedEpoch: l.CrashedEpoch,
				Recovered: wal.LSN(l.Recovered)}
			if _, _, err := s.appendRec(logrec.TRecoveryInfo, lr.Encode()); err != nil {
				return nil, err
			}
		}
	}

	if err := s.evalCrashPoint(FPRecoveryAfterBroadcast); err != nil {
		return nil, err
	}

	if err := s.writeMSPCheckpoint(); err != nil {
		return nil, err
	}

	// Publish the unrecovered set: from here on a request that touches one
	// of these units claims and replays it on demand; the sweep drains the
	// remainder. The gauges are retired unit by unit (or wholesale by
	// releasePendingUnits if this incarnation dies first).
	sessions := s.sessions.snapshot()
	for _, sess := range sessions {
		sess.markUnrecovered()
	}
	for _, sv := range s.shared {
		sv.markPending()
	}
	// Crash window between analysis and the first reply: state is durable
	// (recovery info flushed, post-recovery checkpoint written) but no
	// request has been served by this incarnation yet.
	if err := s.evalCrashPoint(FPRecoveryBeforeServe); err != nil {
		return nil, err
	}
	metrics.Recovery.RecoveriesCompleted.Inc()
	if tap := s.cfg.Tap; tap != nil {
		// Every own crashed epoch is reported, not just the one that just
		// crashed: an earlier run of this recovery may have made its
		// recovered state number durable and died before reaching this
		// tap, and the oracle must still learn what that epoch lost.
		for _, own := range s.know.Snapshot() {
			if own.Process == s.selfID() {
				tap.ServerRecovered(s.cfg.ID, own.CrashedEpoch, uint64(own.Recovered), s.epoch.Load())
			}
		}
	}
	return sessions, nil
}

// analysisScan is the single-threaded scan of Fig. 12's step 2. It
// returns the LSN of the last valid (persistent) record.
func (s *Server) analysisScan(from wal.LSN) (wal.LSN, error) {
	shell := func(id string) *Session {
		sess := s.sessions.get(id)
		if sess == nil {
			sess = newSession(s, id, "", false)
			s.sessions.insert(sess)
		}
		return sess
	}
	return s.log.Scan(from, func(lsn wal.LSN, typ byte, payload []byte) error {
		if err := s.evalCrashPoint(FPRecoveryMidScan); err != nil {
			return err
		}
		n := len(payload) + wal.FrameOverhead
		switch logrec.Type(typ) {
		case logrec.TSessionStart:
			rec, err := logrec.DecodeSessionStart(payload)
			if err != nil {
				return err
			}
			shell(rec.Session).scanStart(rec, lsn, n)
		case logrec.TSessionCkpt:
			// Analysis only: record the checkpoint LSN as the session's
			// replay starting point without decoding the checkpointed
			// state. Materialization happens if and when the session's
			// replay is claimed.
			id, err := logrec.PeekSession(payload)
			if err != nil {
				return err
			}
			shell(id).scanCheckpointNote(lsn)
		case logrec.TReqReceive, logrec.TReplyReceive, logrec.TSharedRead:
			id, err := logrec.PeekSession(payload)
			if err != nil {
				return err
			}
			shell(id).scanNote(lsn, n)
		case logrec.TSharedWrite:
			id, name, err := logrec.PeekSessionVar(payload)
			if err != nil {
				return err
			}
			shell(id).scanNote(lsn, n)
			if sv := s.shared[name]; sv != nil {
				sv.scanNoteWrite(lsn)
			}
		case logrec.TSVCheckpoint:
			name, err := logrec.PeekVar(payload)
			if err != nil {
				return err
			}
			if sv := s.shared[name]; sv != nil {
				sv.scanNoteCheckpoint(lsn)
			}
		case logrec.TEOS:
			rec, err := logrec.DecodeEOS(payload)
			if err != nil {
				return err
			}
			// Records between the orphan record and this EOS were skipped
			// by a past orphan recovery: make them invisible (§4.1).
			if sess := s.sessions.get(rec.Session); sess != nil {
				sess.removePosRange(rec.Orphan, lsn)
			}
		case logrec.TSessionEnd:
			rec, err := logrec.DecodeSessionEnd(payload)
			if err != nil {
				return err
			}
			s.sessions.delete(rec.Session)
		case logrec.TRecoveryInfo:
			rec, err := logrec.DecodeRecoveryInfo(payload)
			if err != nil {
				return err
			}
			s.know.Record(dv.RecoveryInfo{Process: dv.ProcessID(rec.Process),
				CrashedEpoch: rec.CrashedEpoch, Recovered: int64(rec.Recovered)})
		case logrec.TMSPCheckpoint:
			rec, err := logrec.DecodeMSPCheckpoint(payload)
			if err != nil {
				return err
			}
			s.know.Restore(rec.Knowledge)
		}
		return nil
	})
}

// runSessionRecovery replays a session to its most recent non-orphan
// state (§4.1). The loop restarts replay from the checkpoint when another
// MSP crash mid-recovery retroactively orphans an already-replayed record
// (multiple concurrent crashes, Fig. 11).
func (s *Server) runSessionRecovery(sess *Session) {
	if !s.cfg.Logging {
		sess.finishRecovery()
		return
	}
	s.stats.OrphanRecoveries.Add(1)
	for {
		restart, err := s.replaySessionOnce(sess)
		if err == nil && !restart {
			metrics.Recovery.SessionsReplayed.Inc()
		}
		if err != nil || !restart {
			break
		}
		// A crash underneath us must not leave this loop spinning (the
		// crashed server's Crash() waits for its workers).
		if s.getState() == stateCrashed {
			break
		}
	}
	sess.finishRecovery()
}

// replaySessionOnce re-initializes the session from its most recent
// checkpoint and replays the logged requests along its position stream.
// It reports restart=true if replay must start over due to a concurrent
// crash.
func (s *Server) replaySessionOnce(sess *Session) (restart bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r.(type) {
		case replayRestart:
			restart = true
		case orphanAbort:
			// An interception point during live completion found the
			// session newly orphaned (a recovery broadcast arrived while a
			// live call was in flight). Start replay over; the re-run
			// truncates at the record carrying the orphan dependency.
			restart = true
		case crashAbort:
			err = errUnavailable
		default:
			panic(r)
		}
	}()

	if ckpt := sess.lastCkpt(); ckpt != 0 {
		typ, payload, rerr := s.log.ReadRecord(ckpt)
		if rerr != nil {
			return false, fmt.Errorf("core: reading session checkpoint at %d: %w", ckpt, rerr)
		}
		if logrec.Type(typ) != logrec.TSessionCkpt {
			return false, fmt.Errorf("core: %d is %v, not a session checkpoint", ckpt, logrec.Type(typ))
		}
		rec, derr := logrec.DecodeSessionCheckpoint(payload)
		if derr != nil {
			return false, derr
		}
		sess.restoreFromCheckpoint(rec, ckpt)
	} else {
		sess.resetToInitial()
	}

	rp := &replayState{positions: sess.posSnapshot()}
	ctx := &Ctx{srv: s, sess: sess, mode: modeReplay, rp: rp}

	for rp.idx < len(rp.positions) && !rp.switched {
		if cerr := s.evalCrashPoint(FPReplayMidSession); cerr != nil {
			panic(crashAbort{cerr})
		}
		// Retroactive orphan check: a recovery message that arrived since
		// we merged a DV may have orphaned the session mid-replay.
		if _, orphan := s.know.OrphanIn(sess.vecLocked()); orphan {
			return true, nil
		}
		lsn := rp.positions[rp.idx]
		typ, payload, rerr := s.log.ReadRecord(lsn)
		if rerr != nil {
			return false, fmt.Errorf("core: replay read at %d: %w", lsn, rerr)
		}
		switch logrec.Type(typ) {
		case logrec.TSessionStart:
			rp.idx++
			sess.replayAdvance(lsn)
		case logrec.TReqReceive:
			rec, derr := logrec.DecodeReqReceive(payload)
			if derr != nil {
				return false, derr
			}
			if rec.HasDV {
				if _, orphan := s.know.OrphanIn(rec.DV); orphan {
					// Orphan log record at a request boundary: skip it and
					// everything after; the session then waits for new
					// requests (the intra-domain client recovers too and
					// resends).
					ctx.switchToLive(lsn, true)
					return false, nil
				}
			}
			rp.idx++
			sess.replayReceive(lsn, rec.DV)
			s.replayRequest(ctx, sess, rec, lsn)
			if rp.switched {
				return false, nil
			}
		case logrec.TSessionEnd, logrec.TEOS:
			rp.idx++ // defensive: these never drive replay
		default:
			// A bare shared access or reply at top level belongs to a
			// request aborted by the recovery machinery; skip it.
			rp.idx++
		}
	}
	return false, nil
}

// replayRequest re-executes one logged request from its receive record
// at lsn. If replay switches to live execution mid-method (orphan found
// or log exhausted), the method completes for real and its reply is
// sent; otherwise the regenerated reply is only buffered — the client's
// resend will fetch it.
func (s *Server) replayRequest(ctx *Ctx, sess *Session, rec logrec.ReqReceive, lsn wal.LSN) {
	if rec.Method == "" {
		return
	}
	ctx.reqSeq = rec.Seq
	h := s.cfg.Def.Methods[rec.Method]
	if h == nil {
		// The method disappeared from the definition between incarnations;
		// nothing can be replayed deterministically.
		panic(fmt.Errorf("core: replay of unknown method %q", rec.Method))
	}
	out, appErr := h(ctx, rec.Arg)
	rep := rpc.Reply{Session: sess.id, Seq: rec.Seq, Status: rpc.StatusOK, Payload: out}
	if appErr != nil {
		rep.Status = rpc.StatusAppError
		rep.Payload = []byte(appErr.Error())
	}
	sess.bufferReply(rep)
	sess.seq.Advance(rec.Seq)
	if tap := s.cfg.Tap; tap != nil {
		// Always a replayed execution, even when the method completed
		// live: the receive record at lsn was already reported by the
		// incarnation that first executed it, and a live completion only
		// finishes that same execution.
		tap.RequestExecuted(s.cfg.ID, sess.id, rec.Seq, s.epoch.Load(), uint64(lsn), rep.Payload, true)
	}
	if ctx.rp.switched {
		// Live completion: deliver the reply through the normal path.
		//mspr:flushed-by sendReply
		if err := s.sendReply(sess, sess.clientAddress(), rep); err != nil {
			if errors.Is(err, errOrphanDep) {
				panic(replayRestart{})
			}
			// Unreachable dependency: the reply stays buffered; the
			// client's resend delivers it once the peer is back.
		}
	} else {
		s.stats.RequestsReplayed.Add(1)
	}
}
