package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mspr/internal/rpc"
	"mspr/internal/simnet"
)

// rollbackEnv builds the §4.2 scenario: a session on msp1 calls msp2 and
// then writes shared variable "board", so the board's value carries a
// dependency on msp2's state. msp2 crashes holding unflushed records
// *after* the write but before any flush — the board's value becomes an
// orphan.
//
// The recovery machinery is aggressive about repairing this: the writer
// session's orphan recovery re-executes the in-flight request and its
// live continuation re-writes the board with clean dependencies. To
// observe the shared-state rollback itself — a clean reader walking the
// backward chain of write records (§4.2) — the environment gates the
// re-execution: the doomed request's second execution blocks before its
// write until the test releases it. In production the same window exists
// whenever the writer's recovery is slower than a reader's access; the
// gate just makes it deterministic.
type rollbackEnv struct {
	e           *testEnv
	armCrash    atomic.Bool
	restartDone chan struct{}

	doomedArg   string
	doomedExecs atomic.Int32
	gate        chan struct{}
	gateOnce    sync.Once
}

// openGate releases any parked re-execution; safe to call repeatedly.
func (re *rollbackEnv) openGate() {
	re.gateOnce.Do(func() { close(re.gate) })
}

// crashMSP2DelayedRestart kills msp2 immediately — so no recovery
// broadcast arrives yet and the subsequent shared write proceeds with the
// doomed dependency — and restarts it shortly after. The restart's
// broadcast then reveals the orphan.
func (re *rollbackEnv) crashMSP2DelayedRestart() {
	re.e.srvs["msp2"].Crash()
	def := re.e.defs["msp2"]
	go func() {
		defer close(re.restartDone)
		time.Sleep(10 * time.Millisecond)
		re.e.start("msp2", def)
	}()
}

func newRollbackEnv(t *testing.T, mut ...func(*Config)) *rollbackEnv {
	re := &rollbackEnv{
		e:           newTestEnv(t),
		restartDone: make(chan struct{}),
		gate:        make(chan struct{}),
	}
	def2 := Definition{
		Methods: map[string]Handler{
			"ping": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	def1 := Definition{
		Methods: map[string]Handler{
			// postWithCall: call msp2, then write the board. The crash (if
			// armed) fires between the call and the write, so the write's
			// DV carries the soon-to-be-lost msp2 dependency. Re-executions
			// of the doomed request block on the gate before writing.
			"postWithCall": func(ctx *Ctx, arg []byte) ([]byte, error) {
				if _, err := ctx.Call("msp2", "ping", nil); err != nil {
					return nil, err
				}
				if re.armCrash.CompareAndSwap(true, false) {
					re.crashMSP2DelayedRestart()
				}
				if string(arg) == re.doomedArg && re.doomedExecs.Add(1) > 1 {
					<-re.gate
				}
				if err := ctx.WriteShared("board", arg); err != nil {
					return nil, err
				}
				return []byte("ok"), nil
			},
			// post: plain write, no foreign dependencies.
			"post": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return nil, ctx.WriteShared("board", arg)
			},
			// readBoard: plain read by a clean session.
			"readBoard": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared("board")
			},
		},
		Shared: []SharedDef{{Name: "board", Initial: []byte("initial")}},
	}
	re.e.start("msp1", def1, mut...)
	re.e.start("msp2", def2, mut...)
	return re
}

// cleanup releases any gated re-execution before tearing the system down.
func (re *rollbackEnv) cleanup() {
	re.openGate()
	re.e.cleanup()
}

// doomedPost issues postWithCall from a one-shot client that never
// resends: the request's shared write lands with the doomed dependency,
// msp2 crash-restarts, and the writer session's recovery parks at the
// gate — leaving the orphan value on the board for readers to trip over.
func (re *rollbackEnv) doomedPost(t *testing.T, value string) {
	t.Helper()
	re.doomedArg = value
	re.armCrash.Store(true)
	ep := re.e.net.Endpoint(simnet.Addr("one-shot-" + value))
	ep.Send("msp1", rpc.Request{
		Session: "doomed-" + value, Seq: 1, Method: "postWithCall",
		Arg: []byte(value), NewSession: true, From: ep.Addr(),
	})
	<-re.restartDone
	// Wait until the re-execution reaches the gate: the orphan value is
	// now on the board and the writer is parked.
	deadline := time.Now().Add(5 * time.Second)
	for re.doomedExecs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if re.doomedExecs.Load() < 2 {
		t.Fatal("the doomed request's recovery never re-executed it")
	}
}

// TestSharedStateOrphanRollback: the clean reader rolls the board back to
// the most recent non-orphan value (the previous write) while the writer
// is still recovering — independence between reader and writer.
func TestSharedStateOrphanRollback(t *testing.T) {
	re := newRollbackEnv(t)
	defer re.cleanup()
	writer := re.e.endClient().Session("msp1")
	reader := re.e.endClient().Session("msp1")

	mustCall(t, writer, "post", []byte("good-value"))
	re.doomedPost(t, "orphan-value")

	got := mustCall(t, reader, "readBoard", nil)
	if string(got) != "good-value" {
		t.Fatalf("board = %q, want the rolled-back %q", got, "good-value")
	}
	if re.e.srvs["msp1"].Stats().SVRollbacks.Load() == 0 {
		t.Fatal("no shared-variable rollback recorded")
	}
}

// TestSharedStateRollbackToInitial: when every write in the chain is an
// orphan, the variable rolls back to its declared initial value.
func TestSharedStateRollbackToInitial(t *testing.T) {
	re := newRollbackEnv(t)
	defer re.cleanup()
	reader := re.e.endClient().Session("msp1")
	re.doomedPost(t, "doomed")
	got := mustCall(t, reader, "readBoard", nil)
	if string(got) != "initial" {
		t.Fatalf("board = %q, want the initial value", got)
	}
}

// TestSharedStateRollbackWalksChain: clean writes below, one orphan write
// on top; the reader walks the backward chain exactly one step.
func TestSharedStateRollbackWalksChain(t *testing.T) {
	re := newRollbackEnv(t)
	defer re.cleanup()
	writer := re.e.endClient().Session("msp1")
	reader := re.e.endClient().Session("msp1")
	mustCall(t, writer, "post", []byte("anchor"))
	mustCall(t, writer, "postWithCall", []byte("dep-1"))
	mustCall(t, writer, "postWithCall", []byte("dep-2"))
	re.doomedPost(t, "dep-3")
	got := mustCall(t, reader, "readBoard", nil)
	// dep-1 and dep-2 completed: their dependencies were flushed by the
	// end-client reply flushes, so only dep-3 is an orphan.
	if string(got) != "dep-2" {
		t.Fatalf("board = %q, want dep-2 (chain walked too far or not far enough)", got)
	}
}

// TestDoomedRequestCompletesExactlyOnce: once the gate opens, the parked
// recovery finishes the in-flight request for real — the write lands
// exactly once with clean dependencies, even though the client is gone.
func TestDoomedRequestCompletesExactlyOnce(t *testing.T) {
	re := newRollbackEnv(t)
	defer re.cleanup()
	writer := re.e.endClient().Session("msp1")
	reader := re.e.endClient().Session("msp1")
	mustCall(t, writer, "post", []byte("before"))
	re.doomedPost(t, "finally")
	// Rolled back while parked...
	if got := mustCall(t, reader, "readBoard", nil); string(got) != "before" {
		t.Fatalf("board = %q while writer parked, want %q", got, "before")
	}
	// ...completed once released.
	re.openGate()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := mustCall(t, reader, "readBoard", nil); string(got) == "finally" {
			if n := re.doomedExecs.Load(); n != 2 {
				t.Fatalf("doomed request executed %d times, want 2 (original + recovery)", n)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("the doomed request never completed after the gate opened")
}
