package core

import (
	"fmt"
	"testing"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
)

// noSweep is the config mutator for deterministic lazy-restore tests:
// with the background sweep off, a unit is restored only on first touch,
// so the test controls exactly when each replay happens.
func noSweep(cfg *Config) { cfg.NoRecoverySweep = true }

// TestLazySessionRestoreOnFirstTouch is the instant-recovery contract at
// unit scale: after a crash the session is pending (analysis only), the
// first request replays exactly that session, and the pending gauge
// retires it.
func TestLazySessionRestoreOnFirstTouch(t *testing.T) {
	pendBefore := metrics.Recovery.PendingSessions.Load()
	lazyBefore := metrics.Recovery.LazyReplays.Load()
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef(), noSweep)
	cs := e.endClient().Session("m")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, cs, "inc", nil)
	}
	e.restart("m")

	// Analysis published the session but nothing replayed it yet.
	if got := e.srvs["m"].RecoveringSessions(); got != 1 {
		t.Fatalf("RecoveringSessions after analysis = %d, want 1", got)
	}
	if d := metrics.Recovery.PendingSessions.Load() - pendBefore; d != 1 {
		t.Fatalf("PendingSessions delta after analysis = %d, want 1", d)
	}

	// First touch replays the session and serves against restored state.
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 4 {
		t.Fatalf("first post-crash inc returned %d, want 4 (exactly-once violated)", got)
	}
	if d := metrics.Recovery.LazyReplays.Load() - lazyBefore; d < 1 {
		t.Fatalf("LazyReplays delta = %d, want >= 1", d)
	}
	if got := e.srvs["m"].RecoveringSessions(); got != 0 {
		t.Fatalf("RecoveringSessions after first touch = %d, want 0", got)
	}
	if d := metrics.Recovery.PendingSessions.Load() - pendBefore; d != 0 {
		t.Fatalf("PendingSessions delta after first touch = %d, want 0 (gauge leaked)", d)
	}
}

// TestSharedVariableLazyMaterializationOnRead checks the shared-variable
// half of lazy restore: the analysis scan leaves only the chain-head LSN,
// and the first read re-materializes the value from that one record.
func TestSharedVariableLazyMaterializationOnRead(t *testing.T) {
	pendBefore := metrics.Recovery.PendingShared.Load()
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef(), noSweep)
	cs := e.endClient().Session("m")
	for want := uint64(1); want <= 5; want++ {
		mustCall(t, cs, "sharedInc", nil)
	}
	e.restart("m")
	if d := metrics.Recovery.PendingShared.Load() - pendBefore; d != 1 {
		t.Fatalf("PendingShared delta after analysis = %d, want 1", d)
	}
	// A fresh session's read must see the value materialized from the log.
	cs2 := e.endClient().Session("m")
	if got := asU64(mustCall(t, cs2, "sharedGet", nil)); got != 5 {
		t.Fatalf("post-crash sharedGet returned %d, want 5", got)
	}
	if d := metrics.Recovery.PendingShared.Load() - pendBefore; d != 0 {
		t.Fatalf("PendingShared delta after read = %d, want 0 (gauge leaked)", d)
	}
}

// TestSharedVariableLazyWriteSkipsMaterialization: a write replaces the
// value wholesale, so an unrecovered variable goes live without reading
// the log — but its backward chain must stay intact: a later crash and
// read must see the new value, and the chain must still resolve.
func TestSharedVariableLazyWriteSkipsMaterialization(t *testing.T) {
	def := Definition{
		Methods: map[string]Handler{
			"put": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return nil, ctx.WriteShared("v", arg)
			},
			"peek": func(ctx *Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared("v")
			},
		},
		Shared: []SharedDef{{Name: "v", Initial: u64(0)}},
	}
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", def, noSweep)
	cs := e.endClient().Session("m")
	mustCall(t, cs, "put", u64(7))
	e.restart("m")
	// Blind write against the unrecovered variable: no materialization.
	cs2 := e.endClient().Session("m")
	mustCall(t, cs2, "put", u64(9))
	// Crash again: the analysis scan walks the chain the blind write
	// extended; the read must materialize the latest value.
	e.restart("m")
	cs3 := e.endClient().Session("m")
	if got := asU64(mustCall(t, cs3, "peek", nil)); got != 9 {
		t.Fatalf("peek after blind write and crash returned %d, want 9", got)
	}
}

// TestCrashDuringLazyReplay arms FPLazyReplay: the first post-crash
// request claims the session and the incarnation dies before replaying
// it. The next incarnation must serve the retried request exactly once.
func TestCrashDuringLazyReplay(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	reg := failpoint.New(23)
	e.start("m", counterDef(), noSweep, func(cfg *Config) { cfg.Failpoints = reg })
	cs := e.endClient().Session("m")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, cs, "inc", nil)
	}
	e.restart("m")
	reg.Enable(FPLazyReplay, failpoint.Times(1))

	// The client's request touches the unrecovered session, wins the
	// claim, and the armed point kills the incarnation before replay. The
	// client keeps resending; the restarted incarnation serves it.
	done := make(chan uint64, 1)
	go func() {
		out, err := cs.Call("inc", nil)
		if err != nil {
			done <- 0
			return
		}
		done <- asU64(out)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Armed(FPLazyReplay) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if reg.Armed(FPLazyReplay) {
		t.Fatal("lazy replay never reached the armed point")
	}
	e.restart("m")
	if got := <-done; got != 4 {
		t.Fatalf("inc across lazy-replay crash returned %d, want 4 (exactly-once violated)", got)
	}
}

// TestPendingGaugesReleasedByTeardown: an incarnation that dies with
// unrecovered units still pending must retire them from the gauges —
// they belong to the dead incarnation, and the next one republishes its
// own set.
func TestPendingGaugesReleasedByTeardown(t *testing.T) {
	sessBefore := metrics.Recovery.PendingSessions.Load()
	sharedBefore := metrics.Recovery.PendingShared.Load()
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef(), noSweep)
	cs := e.endClient().Session("m")
	mustCall(t, cs, "inc", nil)
	mustCall(t, cs, "sharedInc", nil)
	e.restart("m")
	if metrics.Recovery.PendingSessions.Load() == sessBefore &&
		metrics.Recovery.PendingShared.Load() == sharedBefore {
		t.Fatal("analysis published nothing on the pending gauges")
	}
	// Crash with everything still pending: teardown must retire the units.
	e.srvs["m"].Crash()
	if d := metrics.Recovery.PendingSessions.Load() - sessBefore; d != 0 {
		t.Fatalf("PendingSessions delta after teardown = %d, want 0", d)
	}
	if d := metrics.Recovery.PendingShared.Load() - sharedBefore; d != 0 {
		t.Fatalf("PendingShared delta after teardown = %d, want 0", d)
	}
	// And the next incarnation still recovers everything exactly once.
	e.start("m", e.defs["m"])
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 2 {
		t.Fatalf("inc after double crash returned %d, want 2", got)
	}
}

// TestSweepDrainsAllUnits: with the background sweep on (the default),
// every pending unit drains to live without any traffic, and the gauges
// return to their pre-crash level.
func TestSweepDrainsAllUnits(t *testing.T) {
	sessBefore := metrics.Recovery.PendingSessions.Load()
	sharedBefore := metrics.Recovery.PendingShared.Load()
	sweepBefore := metrics.Recovery.SweepReplays.Load()
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef())
	c := e.endClient()
	const n = 8
	sessions := make([]*ClientSession, n)
	for i := range sessions {
		sessions[i] = c.Session("m")
		mustCall(t, sessions[i], "inc", nil)
		mustCall(t, sessions[i], "sharedInc", nil)
	}
	e.restart("m")
	deadline := time.Now().Add(10 * time.Second)
	for e.srvs["m"].RecoveringSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.srvs["m"].RecoveringSessions(); got != 0 {
		t.Fatalf("sweep left %d sessions pending", got)
	}
	if d := metrics.Recovery.SweepReplays.Load() - sweepBefore; d < 1 {
		t.Fatalf("SweepReplays delta = %d, want >= 1", d)
	}
	// The shared variable drains too (it may take one more sweep step).
	for (metrics.Recovery.PendingShared.Load() != sharedBefore ||
		metrics.Recovery.PendingSessions.Load() != sessBefore) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := metrics.Recovery.PendingSessions.Load() - sessBefore; d != 0 {
		t.Fatalf("PendingSessions delta after sweep = %d, want 0", d)
	}
	if d := metrics.Recovery.PendingShared.Load() - sharedBefore; d != 0 {
		t.Fatalf("PendingShared delta after sweep = %d, want 0", d)
	}
	// Everything is live: each session continues exactly-once.
	for i, cs := range sessions {
		if got := asU64(mustCall(t, cs, "inc", nil)); got != 2 {
			t.Fatalf("session %d post-sweep inc returned %d, want 2", i, got)
		}
	}
}

// TestRequestsInterleavedWithSweep races live traffic against the
// background sweep right after a crash: whichever side claims a session
// first, every counter must advance exactly once.
func TestRequestsInterleavedWithSweep(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef())
	c := e.endClient()
	const n = 12
	sessions := make([]*ClientSession, n)
	for i := range sessions {
		sessions[i] = c.Session("m")
		for k := 0; k < 2; k++ {
			mustCall(t, sessions[i], "inc", nil)
		}
	}
	e.restart("m")
	// Fire all sessions concurrently while the sweep is draining.
	done := make(chan error, n)
	for _, cs := range sessions {
		go func(cs *ClientSession) {
			out, err := cs.Call("inc", nil)
			if err != nil {
				done <- err
				return
			}
			if asU64(out) != 3 {
				done <- fmt.Errorf("session %s: inc during sweep returned %d, want 3", cs.ID(), asU64(out))
				return
			}
			done <- nil
		}(cs)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTimeToFirstReplyMeasured: a crash-recovered incarnation reports a
// nonzero time-to-first-reply once it serves; a fresh incarnation
// reports zero.
func TestTimeToFirstReplyMeasured(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	s := e.start("m", counterDef())
	cs := e.endClient().Session("m")
	mustCall(t, cs, "inc", nil)
	if d := s.TimeToFirstReply(); d != 0 {
		t.Fatalf("fresh incarnation reports TTFR %v, want 0", d)
	}
	s2 := e.restart("m")
	if got := asU64(mustCall(t, cs, "inc", nil)); got != 2 {
		t.Fatalf("post-crash inc returned %d, want 2", got)
	}
	if d := s2.TimeToFirstReply(); d <= 0 {
		t.Fatalf("recovered incarnation reports TTFR %v, want > 0", d)
	}
}
