package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// DurableClient is an end client whose session progress survives its own
// crashes. The paper's exactly-once argument (§3.1) assumes the client
// resends a request — with the same sequence number — until the reply
// arrives; a client that forgets its sequence numbers in a crash breaks
// that chain. DurableClient writes an intent record (session, sequence,
// method, argument) to stable storage before each send and a completion
// record after each reply, so a restarted client resumes every session
// exactly where it stopped: completed requests are never re-issued with
// a fresh sequence number (which would duplicate them), and an in-flight
// request can be re-driven to fetch the server's buffered reply.
type DurableClient struct {
	id   string
	ep   *simnet.Endpoint
	opts rpc.CallOptions
	file *simdisk.File
	tap  ClientTap

	mu       sync.Mutex
	sessions map[string]*DurableSession
	counter  uint64
	off      int64
	stopped  bool
	stop     chan struct{}
}

// DurableSession is one durable session with an MSP.
type DurableSession struct {
	c       *DurableClient
	id      string
	target  string
	nextSeq uint64
	pending *intent
	replies chan rpc.Reply
}

// intent is a persisted in-flight request.
type intent struct {
	seq    uint64
	method string
	arg    []byte
}

// journal record types.
const (
	dcBegin  byte = 1 // session created: id, target
	dcIntent byte = 2 // about to send: session, seq, method, arg
	dcDone   byte = 3 // reply received: session, seq
)

// NewDurableClient opens (or re-opens after a crash) the durable client
// persisted on file. Restored sessions are available via Sessions.
func NewDurableClient(id string, net *simnet.Network, disk *simdisk.Disk, opts rpc.CallOptions) (*DurableClient, error) {
	c := &DurableClient{
		id:       id,
		ep:       net.Endpoint(simnet.Addr(id)),
		opts:     opts,
		file:     disk.OpenFile("client/" + id),
		sessions: make(map[string]*DurableSession),
		stop:     make(chan struct{}),
	}
	c.ep.SetDown(false)
	if err := c.load(); err != nil {
		return nil, err
	}
	go c.dispatch()
	return c, nil
}

// SetTap attaches the correctness oracle's client-side observation tap
// (see internal/oracle); re-attach it after reopening the client so a
// resumed in-flight request's re-drive is recorded too. A nil tap (the
// default) records nothing.
func (c *DurableClient) SetTap(t ClientTap) { c.tap = t }

func (c *DurableClient) dispatch() {
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.ep.Recv():
			rep, ok := m.Payload.(rpc.Reply)
			if !ok {
				continue
			}
			c.mu.Lock()
			ds := c.sessions[rep.Session]
			c.mu.Unlock()
			if ds == nil {
				continue
			}
			select {
			case ds.replies <- rep:
			default:
			}
		}
	}
}

// Close stops the client's dispatcher (its state stays on disk).
func (c *DurableClient) Close() {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		close(c.stop)
	}
	c.mu.Unlock()
}

// Crash simulates a client crash: like Close, but also drops in-flight
// deliveries (callers then construct a fresh DurableClient on the same
// disk).
func (c *DurableClient) Crash() {
	c.Close()
	c.ep.SetDown(true)
}

// Session starts a new durable session with the MSP at target.
func (c *DurableClient) Session(target string) (*DurableSession, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counter++
	ds := &DurableSession{
		c:       c,
		id:      fmt.Sprintf("%s#%d", c.id, c.counter),
		target:  target,
		nextSeq: 1,
		replies: make(chan rpc.Reply, 16),
	}
	if err := c.appendLocked(dcBegin, encBegin(ds.id, target)); err != nil {
		return nil, err
	}
	c.sessions[ds.id] = ds
	return ds, nil
}

// Sessions returns every session known to the client, including ones
// restored from stable storage after a crash, keyed by session ID.
func (c *DurableClient) Sessions() map[string]*DurableSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*DurableSession, len(c.sessions))
	for k, v := range c.sessions {
		out[k] = v
	}
	return out
}

// ID returns the session identifier.
func (ds *DurableSession) ID() string { return ds.id }

// Target returns the MSP the session talks to.
func (ds *DurableSession) Target() string { return ds.target }

// Pending returns the in-flight request restored from stable storage, if
// any: the request was sent before the client crashed and its outcome is
// unknown. Call Resume to drive it to completion.
func (ds *DurableSession) Pending() (method string, arg []byte, ok bool) {
	ds.c.mu.Lock()
	defer ds.c.mu.Unlock()
	if ds.pending == nil {
		return "", nil, false
	}
	return ds.pending.method, append([]byte(nil), ds.pending.arg...), true
}

// Call invokes a service method with exactly-once semantics that survive
// client crashes. It returns an error if a restored in-flight request is
// still pending (Resume it first).
func (ds *DurableSession) Call(method string, arg []byte) ([]byte, error) {
	ds.c.mu.Lock()
	if ds.pending != nil {
		ds.c.mu.Unlock()
		return nil, errors.New("core: session has a pending request; Resume it first")
	}
	seq := ds.nextSeq
	in := &intent{seq: seq, method: method, arg: append([]byte(nil), arg...)}
	if err := ds.c.appendLocked(dcIntent, encIntent(ds.id, in)); err != nil {
		ds.c.mu.Unlock()
		return nil, err
	}
	ds.pending = in
	ds.c.mu.Unlock()
	if tap := ds.c.tap; tap != nil {
		tap.ClientInvoke(ds.id, method, seq, arg)
	}
	return ds.drive(in, false)
}

// Resume re-drives a restored in-flight request to completion, returning
// its reply. The server's sequence-number discipline guarantees the
// request executes exactly once no matter how many times it was sent.
func (ds *DurableSession) Resume() ([]byte, error) {
	ds.c.mu.Lock()
	in := ds.pending
	ds.c.mu.Unlock()
	if in == nil {
		return nil, errors.New("core: nothing to resume")
	}
	return ds.drive(in, true)
}

// drive sends the intent until a terminal reply arrives, then persists
// completion. resumed marks a re-driven restored intent: every send of
// it — including the first — is a retry of the original, possibly
// pre-crash, invocation.
func (ds *DurableSession) drive(in *intent, resumed bool) ([]byte, error) {
	req := rpc.Request{
		Session:    ds.id,
		Seq:        in.seq,
		Method:     in.method,
		Arg:        in.arg,
		NewSession: in.seq == 1,
		From:       ds.c.ep.Addr(),
	}
	tap := ds.c.tap
	attempts := 0
	payload, err := rpc.Call(func(r rpc.Request) {
		if attempts++; tap != nil && (resumed || attempts > 1) {
			tap.ClientRetry(ds.id, in.seq, attempts)
		}
		ds.c.ep.Send(simnet.Addr(ds.target), r) //mspr:flushed-by none (client request: the intent was journaled by the caller before drive)
	}, ds.replies, req, ds.c.opts)
	if err != nil {
		if _, ok := err.(*rpc.AppError); !ok {
			return nil, err // transport-level failure: intent stays pending
		}
	}
	if tap != nil {
		if err == nil {
			tap.ClientReply(ds.id, in.seq, true, payload)
		} else if ae, ok := err.(*rpc.AppError); ok {
			tap.ClientReply(ds.id, in.seq, false, []byte(ae.Msg))
		}
	}
	ds.c.mu.Lock()
	werr := ds.c.appendLocked(dcDone, encDone(ds.id, in.seq))
	if werr == nil {
		ds.pending = nil
		ds.nextSeq = in.seq + 1
	}
	ds.c.mu.Unlock()
	if werr != nil {
		return nil, werr
	}
	return payload, err
}

// --- journal encoding ---

func encBegin(id, target string) []byte {
	var b []byte
	b = appendStr(b, id)
	b = appendStr(b, target)
	return b
}

func encIntent(id string, in *intent) []byte {
	var b []byte
	b = appendStr(b, id)
	b = binary.AppendUvarint(b, in.seq)
	b = appendStr(b, in.method)
	b = binary.AppendUvarint(b, uint64(len(in.arg)))
	b = append(b, in.arg...)
	return b
}

func encDone(id string, seq uint64) []byte {
	var b []byte
	b = appendStr(b, id)
	b = binary.AppendUvarint(b, seq)
	return b
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeStr(b []byte) (string, []byte, bool) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return "", nil, false
	}
	return string(b[k : k+int(n)]), b[k+int(n):], true
}

// appendLocked writes one framed journal record durably and charges the
// disk. Caller holds c.mu.
func (c *DurableClient) appendLocked(typ byte, payload []byte) error {
	frame := make([]byte, 0, len(payload)+10)
	frame = append(frame, typ)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := c.file.WriteAt(frame, c.off); err != nil {
		return err
	}
	c.off += int64(len(frame))
	sectors := (len(frame) + simdisk.SectorSize - 1) / simdisk.SectorSize
	c.file.Disk().ChargeWrite(sectors, sectors*simdisk.SectorSize-len(frame))
	return nil
}

// load replays the journal's valid prefix.
func (c *DurableClient) load() error {
	size := c.file.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := c.file.ReadAt(buf, 0); err != nil {
		return err
	}
	c.file.Disk().ChargeRead(int((size + simdisk.SectorSize - 1) / simdisk.SectorSize))
	off := int64(0)
	for int(off)+9 <= len(buf) {
		typ := buf[off]
		if typ == 0 {
			break
		}
		n := int(binary.LittleEndian.Uint32(buf[off+1:]))
		if int(off)+9+n > len(buf) {
			break
		}
		payload := buf[off+5 : off+5+int64(n)]
		want := binary.LittleEndian.Uint32(buf[off+5+int64(n):])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn tail
		}
		c.applyJournal(typ, payload)
		off += int64(9 + n)
	}
	c.off = off
	return nil
}

func (c *DurableClient) applyJournal(typ byte, p []byte) {
	switch typ {
	case dcBegin:
		id, rest, ok := takeStr(p)
		if !ok {
			return
		}
		target, _, ok := takeStr(rest)
		if !ok {
			return
		}
		c.sessions[id] = &DurableSession{
			c: c, id: id, target: target, nextSeq: 1,
			replies: make(chan rpc.Reply, 16),
		}
		// Track the counter so new sessions never collide with restored
		// IDs.
		var n uint64
		if _, err := fmt.Sscanf(id, c.id+"#%d", &n); err == nil && n > c.counter {
			c.counter = n
		}
	case dcIntent:
		id, rest, ok := takeStr(p)
		if !ok {
			return
		}
		ds := c.sessions[id]
		if ds == nil {
			return
		}
		seq, k := binary.Uvarint(rest)
		if k <= 0 {
			return
		}
		rest = rest[k:]
		method, rest, ok := takeStr(rest)
		if !ok {
			return
		}
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return
		}
		ds.pending = &intent{seq: seq, method: method,
			arg: append([]byte(nil), rest[k:k+int(n)]...)}
	case dcDone:
		id, rest, ok := takeStr(p)
		if !ok {
			return
		}
		ds := c.sessions[id]
		if ds == nil {
			return
		}
		seq, k := binary.Uvarint(rest)
		if k <= 0 {
			return
		}
		if ds.pending != nil && ds.pending.seq == seq {
			ds.pending = nil
		}
		if seq+1 > ds.nextSeq {
			ds.nextSeq = seq + 1
		}
	}
}
