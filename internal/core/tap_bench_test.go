package core

import (
	"testing"

	"mspr/internal/oracle"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// benchRequests measures the end-to-end request path — client Call
// through the logged server and back — with the given taps attached.
// Comparing the NoTap variant against a tree without the tap sites (or
// against WithRecorder) shows what the observation hooks cost when no
// oracle is attached: the guard is a single nil check, so allocs/op must
// not move.
func benchRequests(b *testing.B, tap Tap, ctap ClientTap) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	dom := NewDomain("bench", 0, 0)
	cfg := NewConfig("sut", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), net, counterDef())
	cfg.Tap = tap
	srv, err := Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Crash()
	client := NewClient("bench-client", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	if ctap != nil {
		client.SetTap(ctap)
	}
	sess := client.Session("sut")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Call("inc", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestNoTap(b *testing.B) {
	benchRequests(b, nil, nil)
}

func BenchmarkRequestRecorderTap(b *testing.B) {
	rec := oracle.NewRecorder()
	benchRequests(b, rec, rec)
}
