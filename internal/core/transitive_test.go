package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// chainEnv wires the paper's Fig. 5 topology: a three-MSP chain inside
// one service domain. The client calls msp1.relay, which calls
// msp2.relay, which calls msp3.leaf. Dependency vectors propagate
// transitively: msp1's session ends up depending on msp3's state it
// never talked to directly.
type chainEnv struct {
	e         *testEnv
	crashLeaf atomic.Bool // crash msp3 after msp2 has its reply
	restarted chan struct{}
}

func newChainEnv(t *testing.T) *chainEnv {
	ce := &chainEnv{e: newTestEnv(t), restarted: make(chan struct{})}
	leafDef := Definition{
		Methods: map[string]Handler{
			"leaf": func(ctx *Ctx, arg []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return u64(n), nil
			},
		},
	}
	midDef := Definition{
		Methods: map[string]Handler{
			"relay": func(ctx *Ctx, arg []byte) ([]byte, error) {
				out, err := ctx.Call("msp3", "leaf", arg)
				if err != nil {
					return nil, err
				}
				if ce.crashLeaf.CompareAndSwap(true, false) {
					// Fig. 5's p1 crash, at the transitive position: msp3
					// dies right after msp2 received its reply; msp2's and
					// (transitively) msp1's states become orphans.
					ce.e.srvs["msp3"].Crash()
					def := ce.e.defs["msp3"]
					go func() {
						defer close(ce.restarted)
						time.Sleep(5 * time.Millisecond)
						ce.e.start("msp3", def)
					}()
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return out, nil
			},
		},
	}
	headDef := Definition{
		Methods: map[string]Handler{
			"relay": func(ctx *Ctx, arg []byte) ([]byte, error) {
				out, err := ctx.Call("msp2", "relay", arg)
				if err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				return out, nil
			},
		},
	}
	ce.e.start("msp3", leafDef)
	ce.e.start("msp2", midDef)
	ce.e.start("msp1", headDef)
	return ce
}

// TestTransitiveDependencyPropagation: after one request, msp1's session
// must transitively depend on msp3 even though it never messaged msp3.
func TestTransitiveDependencyPropagation(t *testing.T) {
	ce := newChainEnv(t)
	defer ce.e.cleanup()
	cs := ce.e.endClient().Session("msp1")
	if got := asU64(mustCall(t, cs, "relay", nil)); got != 1 {
		t.Fatalf("relay returned %d", got)
	}
	// Inspect msp1's only session's DV.
	srv := ce.e.srvs["msp1"]
	var vec map[string]bool
	srv.sessions.forEach(func(sess *Session) {
		vec = map[string]bool{}
		for e := range sess.vecSnapshot() {
			vec[string(e.Process)] = true
		}
	})
	if !vec["msp2"] || !vec["msp3"] {
		t.Fatalf("msp1 session DV lacks transitive dependencies: %v", vec)
	}
}

// TestTransitiveOrphanRecovery: msp3 crashes losing its buffered state;
// both msp2's and msp1's sessions are (transitively) orphans, recover,
// and the chain keeps exactly-once semantics end to end.
func TestTransitiveOrphanRecovery(t *testing.T) {
	ce := newChainEnv(t)
	defer ce.e.cleanup()
	cs := ce.e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		if got := asU64(mustCall(t, cs, "relay", nil)); got != want {
			t.Fatalf("warmup #%d returned %d", want, got)
		}
	}
	ce.crashLeaf.Store(true)
	// The crash-injected request must still complete exactly once: the
	// end-client reply requires a distributed flush across all three
	// MSPs, which fails, orphan-recovers the whole chain and re-executes
	// with deduplication at every hop.
	if got := asU64(mustCall(t, cs, "relay", nil)); got != 4 {
		t.Fatalf("crash-injected relay returned %d, want 4", got)
	}
	<-ce.restarted
	for want := uint64(5); want <= 7; want++ {
		if got := asU64(mustCall(t, cs, "relay", nil)); got != want {
			t.Fatalf("post-recovery #%d returned %d", want, got)
		}
	}
}

// TestMiddleCrashRecoversBothSides: crash the middle MSP; the head's
// session orphan-recovers (it depends on msp2) while the leaf is
// unaffected except for duplicate-request deduplication.
func TestMiddleCrashRecoversBothSides(t *testing.T) {
	ce := newChainEnv(t)
	defer ce.e.cleanup()
	cs := ce.e.endClient().Session("msp1")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, cs, "relay", nil)
	}
	ce.e.restart("msp2")
	for want := uint64(4); want <= 6; want++ {
		if got := asU64(mustCall(t, cs, "relay", nil)); got != want {
			t.Fatalf("after middle crash relay #%d returned %d", want, got)
		}
	}
}

// TestRollingCrashesAcrossChain: crash each MSP in turn with traffic in
// between; the chain's counters stay perfectly sequential.
func TestRollingCrashesAcrossChain(t *testing.T) {
	ce := newChainEnv(t)
	defer ce.e.cleanup()
	cs := ce.e.endClient().Session("msp1")
	want := uint64(0)
	for _, victim := range []string{"msp3", "msp2", "msp1", "msp2", "msp3"} {
		for i := 0; i < 2; i++ {
			want++
			if got := asU64(mustCall(t, cs, "relay", nil)); got != want {
				t.Fatalf("before crashing %s: relay returned %d, want %d", victim, got, want)
			}
		}
		ce.e.restart(victim)
	}
	want++
	if got := asU64(mustCall(t, cs, "relay", nil)); got != want {
		t.Fatalf("after rolling crashes relay returned %d, want %d", got, want)
	}
}
