package core

import "hash/fnv"

// Tap is the server-side observation surface of the correctness oracle
// (see internal/oracle). An MSP with a non-nil Config.Tap reports every
// request execution, every recovery, every session rollback and a state
// digest at each checkpoint boundary; with the default nil Tap every
// call site is a single guarded nil check, so the request hot path is
// unaffected when no oracle is attached.
//
// Implementations must be safe for concurrent use and must not retain
// the reply slice beyond the call (digest it immediately).
type Tap interface {
	// RequestExecuted reports that the request (session, seq) produced
	// the given reply on server. For a fresh execution (replayed=false)
	// epoch and lsn identify the request's receive record — the state
	// the execution depends on; a later recovery of that epoch whose
	// recovered state number is below lsn, or a session rollback at or
	// below lsn, means the execution was rolled back. Replayed
	// executions (replayed=true) regenerate an execution already
	// reported and never add to execution counts. Servers without a log
	// (txmsp-style stateless dedup over durable state) report epoch 0,
	// lsn 0: their committed executions are never rolled back.
	RequestExecuted(server, session string, seq uint64, epoch uint32, lsn uint64, reply []byte, replayed bool)
	// SessionRolledBack reports that orphan recovery discarded session's
	// log suffix from lsn on (the EOS truncation, §4.1): executions of
	// that session at or above lsn reported before this call are undone.
	SessionRolledBack(server, session string, lsn uint64)
	// ServerRecovered reports a completed MSP crash recovery: state of
	// crashedEpoch beyond the recovered state number is lost forever.
	// Recovery re-announces every crashed epoch it knows about, so a
	// crash between making the number durable and reporting it is
	// repaired by the next incarnation's report.
	ServerRecovered(server string, crashedEpoch uint32, recovered uint64, newEpoch uint32)
	// StateDigest reports a digest of durable state at a checkpoint or
	// recovery boundary (scope names which one).
	StateDigest(server, scope string, epoch uint32, lsn uint64, digest uint64)
}

// ClientTap is the client-side observation surface of the correctness
// oracle: the append-only Invoke/Retry/Reply history of end-client
// requests. A nil ClientTap costs a single nil check per call.
//
// Implementations must be safe for concurrent use and must not retain
// the payload slices beyond the call.
type ClientTap interface {
	// ClientInvoke reports that the client is about to issue (session,
	// seq) for the first time.
	ClientInvoke(session, method string, seq uint64, arg []byte)
	// ClientRetry reports a resend of (session, seq); attempt counts all
	// sends including the first, so the first retry reports attempt 2.
	ClientRetry(session string, seq uint64, attempt int)
	// ClientReply reports the terminal reply the client accepted for
	// (session, seq): ok is true for StatusOK, false for an application
	// error; reply is the payload (the error text for application
	// errors). Transport-level failures produce no reply event.
	ClientReply(session string, seq uint64, ok bool, reply []byte)
}

// tapDigest is the 64-bit FNV-1a digest tap call sites attach to
// StateDigest events; it matches oracle.Digest.
func tapDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
