package core

import (
	"errors"
	"fmt"
	"time"

	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/simtime"
	"mspr/internal/wal"
)

// ctxMode distinguishes normal execution from logged-request replay.
type ctxMode int

const (
	modeNormal ctxMode = iota
	modeReplay
)

// replayState is the per-recovery cursor over a session's position
// stream. Replay consumes the stream's records in order; when the stream
// runs out — or an orphan log record is found — the context switches to
// live execution mid-method and the method simply continues for real
// ("the session continues the action occurring at recovery end", §4.1).
type replayState struct {
	positions []wal.LSN
	idx       int
	switched  bool
}

// next returns the next logged record of the session, or ok=false when
// the stream is exhausted.
func (rp *replayState) next(s *Server) (lsn wal.LSN, typ logrec.Type, payload []byte, ok bool) {
	if rp.idx >= len(rp.positions) {
		return 0, 0, nil, false
	}
	lsn = rp.positions[rp.idx]
	t, p, err := s.log.ReadRecord(lsn)
	if err != nil {
		panic(fmt.Errorf("core: replay of %s: reading %d: %w", s.cfg.ID, lsn, err))
	}
	rp.idx++
	return lsn, logrec.Type(t), p, true
}

// Ctx is the execution context handed to service methods. It provides
// access to session variables (private state, not logged), shared
// variables (value-logged), and synchronous calls to other MSPs. The same
// Ctx type drives both normal execution and recovery replay; service
// methods cannot tell the difference — which is precisely what makes the
// recovery infrastructure transparent.
type Ctx struct {
	srv    *Server
	sess   *Session
	mode   ctxMode
	rp     *replayState
	reqSeq uint64 // sequence number of the request being served
}

// SessionID returns the identifier of the session serving this request.
func (c *Ctx) SessionID() string { return c.sess.id }

// ServerID returns the identifier of the MSP executing this request.
func (c *Ctx) ServerID() string { return c.srv.cfg.ID }

// RequestSeq returns the sequence number of the request being served.
// (SessionID, RequestSeq) uniquely identifies a request execution and is
// stable across replay — methods use it as an idempotency key when
// talking to external transactional systems (testable transactions).
func (c *Ctx) RequestSeq() uint64 { return c.reqSeq }

// AbortNoReply abandons the current request as if the server crashed at
// this instant, without killing the whole MSP's request processing: no
// reply is sent (the client resends) and no further handler code runs.
// Service methods that detect a partial lower-layer failure — e.g. a
// journalled store that crashed between its journal write and commit
// sync — call this instead of returning an application error, because
// an application error would be delivered to the client as a final
// answer and break exactly-once semantics. The resent request must be
// deduplicated below this layer (testable transactions).
func (c *Ctx) AbortNoReply(err error) {
	panic(crashAbort{fmt.Errorf("core: %s/%s request aborted without reply: %w", c.srv.cfg.ID, c.sess.id, err)})
}

// intercept is the recovery infrastructure's interception point (§4.1):
// executed whenever the method sends or receives a message or accesses a
// variable, it checks whether the session has become an orphan. During
// normal execution an orphan aborts the request and triggers session
// orphan recovery; during replay it restarts the replay from the
// checkpoint (the orphan record will be found and skipped).
func (c *Ctx) intercept() {
	if !c.srv.cfg.Logging {
		return
	}
	if _, orphan := c.srv.know.OrphanIn(c.sess.vecLocked()); !orphan {
		return
	}
	if c.mode == modeReplay {
		panic(replayRestart{})
	}
	panic(orphanAbort{})
}

// GetVar returns the value of a session variable (nil if unset). Session-
// variable access is not logged: re-execution reconstructs private state
// (§3.2).
func (c *Ctx) GetVar(name string) []byte {
	c.sess.mu.Lock()
	defer c.sess.mu.Unlock()
	v, ok := c.sess.vars[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), v...)
}

// SetVar sets a session variable.
func (c *Ctx) SetVar(name string, value []byte) {
	c.sess.mu.Lock()
	c.sess.vars[name] = append([]byte(nil), value...)
	c.sess.mu.Unlock()
}

// DelVar removes a session variable.
func (c *Ctx) DelVar(name string) {
	c.sess.mu.Lock()
	delete(c.sess.vars, name)
	c.sess.mu.Unlock()
}

// VarsSnapshot returns a copy of every session variable. Baseline
// configurations (Psession, StateServer in §5.2) use it to externalize
// session state; applications normally use GetVar/SetVar.
func (c *Ctx) VarsSnapshot() map[string][]byte {
	c.sess.mu.Lock()
	defer c.sess.mu.Unlock()
	out := make(map[string][]byte, len(c.sess.vars))
	for k, v := range c.sess.vars {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// ReplaceVars replaces the entire session-variable map (baseline hook,
// counterpart of VarsSnapshot).
func (c *Ctx) ReplaceVars(vars map[string][]byte) {
	m := make(map[string][]byte, len(vars))
	for k, v := range vars {
		m[k] = append([]byte(nil), v...)
	}
	c.sess.mu.Lock()
	c.sess.vars = m
	c.sess.mu.Unlock()
}

// Work simulates business-logic CPU time. Replay re-executes it (§5.4:
// replay "requires the same amount of CPU time for the method execution").
func (c *Ctx) Work(d time.Duration) {
	simtime.Sleep(time.Duration(float64(d) * c.srv.cfg.TimeScale))
}

// ReadShared reads a shared variable (Fig. 8 read action). During replay
// the value comes from the log, so the reader never depends on the
// writer's recovery (value logging, §3.3).
func (c *Ctx) ReadShared(name string) ([]byte, error) {
	c.intercept()
	sv := c.srv.sharedVar(name)
	if sv == nil {
		return nil, fmt.Errorf("%w: %s", errUnknownShared, name)
	}
	if c.mode == modeReplay {
		lsn, typ, payload, ok := c.rp.next(c.srv)
		if !ok {
			c.switchToLive(0, false)
			return sv.read(c.sess)
		}
		if typ != logrec.TSharedRead {
			panic(fmt.Errorf("core: replay mismatch in %s/%s: expected SharedRead(%s), log has %v at %d",
				c.srv.cfg.ID, c.sess.id, name, typ, lsn))
		}
		rec, err := logrec.DecodeSharedRead(payload)
		if err != nil {
			panic(err)
		}
		if rec.Var != name {
			panic(fmt.Errorf("core: replay mismatch: read of %s, log has read of %s", name, rec.Var))
		}
		if _, orphan := c.srv.know.OrphanIn(rec.DV); orphan {
			// Orphan log record found: recovery ends here; the read
			// continues as normal execution (§4.1).
			c.switchToLive(lsn, true)
			return sv.read(c.sess)
		}
		c.sess.mergeVec(rec.DV)
		c.sess.replayAdvance(lsn)
		return append([]byte(nil), rec.Value...), nil
	}
	return sv.read(c.sess)
}

// WriteShared writes a shared variable (Fig. 8 write action). Replay
// skips the write: the variable has its own separate recovery (§4.1).
func (c *Ctx) WriteShared(name string, value []byte) error {
	c.intercept()
	sv := c.srv.sharedVar(name)
	if sv == nil {
		return fmt.Errorf("%w: %s", errUnknownShared, name)
	}
	if c.mode == modeReplay {
		lsn, typ, payload, ok := c.rp.next(c.srv)
		if !ok {
			c.switchToLive(0, false)
			return sv.write(c.sess, value)
		}
		if typ != logrec.TSharedWrite {
			panic(fmt.Errorf("core: replay mismatch in %s/%s: expected SharedWrite(%s), log has %v at %d",
				c.srv.cfg.ID, c.sess.id, name, typ, lsn))
		}
		rec, err := logrec.DecodeSharedWrite(payload)
		if err != nil {
			panic(err)
		}
		if rec.Var != name {
			panic(fmt.Errorf("core: replay mismatch: write of %s, log has write of %s", name, rec.Var))
		}
		return nil // skipped: shared state recovers separately
	}
	return sv.write(c.sess, value)
}

// Call synchronously invokes a service method of another MSP over this
// session's outgoing session to that MSP. During replay the request is
// not sent; the reply comes from the log (§4.1).
func (c *Ctx) Call(target, method string, arg []byte) ([]byte, error) {
	c.intercept()
	out := c.sess.outSession(target)
	if c.mode == modeReplay {
		seq := out.nextSeq
		lsn, typ, payload, ok := c.rp.next(c.srv)
		if !ok {
			c.switchToLive(0, false)
			return c.liveCall(out, method, arg)
		}
		if typ != logrec.TReplyReceive {
			panic(fmt.Errorf("core: replay mismatch in %s/%s: expected ReplyReceive, log has %v at %d",
				c.srv.cfg.ID, c.sess.id, typ, lsn))
		}
		rec, err := logrec.DecodeReplyReceive(payload)
		if err != nil {
			panic(err)
		}
		if rec.OutSession != out.id || rec.Seq != seq {
			panic(fmt.Errorf("core: replay mismatch: call %s/%d, log has %s/%d",
				out.id, seq, rec.OutSession, rec.Seq))
		}
		if rec.HasDV {
			if _, orphan := c.srv.know.OrphanIn(rec.DV); orphan {
				// Orphan reply found: recovery ends; re-issue the call
				// live. The target deduplicates by sequence number, so
				// the request still executes exactly once.
				c.switchToLive(lsn, true)
				return c.liveCall(out, method, arg)
			}
			c.sess.mergeVec(rec.DV)
		}
		c.sess.replayAdvance(lsn)
		out.nextSeq = seq + 1
		return replyToResult(rpc.Status(rec.Status), rec.Reply)
	}
	return c.liveCall(out, method, arg)
}

// switchToLive ends replay mid-method. If an orphan log record was found
// (haveOrphan), the positions of the skipped records are removed from the
// stream and an EOS record pointing back at the orphan record is written
// (§4.1); either way the context becomes a normal-execution context and
// the method continues live.
func (c *Ctx) switchToLive(orphanLSN wal.LSN, haveOrphan bool) {
	c.rp.switched = true
	c.mode = modeNormal
	if haveOrphan {
		if tap := c.srv.cfg.Tap; tap != nil {
			tap.SessionRolledBack(c.srv.cfg.ID, c.sess.id, uint64(orphanLSN))
		}
		skipped := c.sess.truncatePositions(orphanLSN)
		rec := logrec.EOS{Session: c.sess.id, Orphan: orphanLSN}
		// The EOS record needs no immediate flush and its position is not
		// added to the stream — it must be invisible to future replays.
		_, _, _ = c.srv.appendRec(logrec.TEOS, rec.Encode())
		metrics.Recovery.EOSWritten.Inc()
		metrics.Recovery.OrphanRecordsSkipped.Add(int64(skipped))
	}
}

// liveCall performs a real outgoing call: locally optimistic logging
// attaches the session's DV inside the domain; a distributed log flush
// precedes any request leaving the domain (Fig. 7 before-send actions).
func (c *Ctx) liveCall(out *outSession, method string, arg []byte) ([]byte, error) {
	s := c.srv
	sess := c.sess
	seq := out.nextSeq
	intra := s.cfg.Domain.Contains(out.target)
	req := rpc.Request{
		Session:    out.id,
		Seq:        seq,
		Method:     method,
		Arg:        arg,
		NewSession: seq == 1,
		From:       s.ep.Addr(),
	}
	if s.cfg.Logging {
		if intra {
			req.HasDV = true
			req.DV = sess.vecWithSelf()
		} else {
			// The before-send distributed flush. An unreachable peer is a
			// transient condition (partition, crash under repair), not an
			// outcome the method may observe: retry with backoff until
			// the dependency flushes or turns out to be an orphan. The
			// blocked worker is the degradation — the end client gets
			// Busy from the session dispatcher meanwhile.
			bo := s.ctlBackoff(s.ctlID.Add(1))
			for {
				err := s.flushSessionDV(sess)
				if err == nil {
					break
				}
				if errors.Is(err, errOrphanDep) {
					panic(orphanAbort{})
				}
				if !errors.Is(err, errUnavailable) {
					return nil, err
				}
				if s.getState() == stateCrashed {
					panic(crashAbort{err})
				}
				simtime.Sleep(bo.Next())
				c.intercept()
			}
		}
	}

	ch := s.pending.register(out.id)
	defer s.pending.deregister(out.id)
	opts := rpc.DefaultCallOptions(s.cfg.TimeScale)
	target := simnet.Addr(out.target)

	resend := time.Duration(float64(opts.ResendAfter) * opts.TimeScale)
	if resend <= 0 {
		resend = time.Millisecond
	}
	for {
		// The path-sensitive flushed-by pass sees two unflushed paths
		// here, both deliberate: intra-domain requests piggyback the DV
		// instead of flushing (locally optimistic logging, paper §3.2),
		// and Logging=false disables recovery entirely.
		s.ep.Send(target, req) //mspr:flushed-by flushSessionDV (inter-domain; intra-domain piggybacks the DV, Logging=false has no recovery)
		timer := simtime.NewTimer(resend)
	waiting:
		for {
			select {
			case <-s.stop:
				timer.Stop()
				panic(crashAbort{errors.New("server crashed during outgoing call")})
			case rep := <-ch:
				if rep.Seq != seq {
					continue
				}
				if rep.Status == rpc.StatusBusy {
					timer.Stop()
					sleepScaled(opts.BusyBackoff, opts.TimeScale)
					break waiting
				}
				if rep.HasDV {
					// Fig. 7: discard an orphan message. The sender will
					// itself recover; our resend fetches a clean reply.
					if _, orphan := s.know.OrphanIn(rep.DV); orphan {
						continue
					}
				}
				timer.Stop()
				c.intercept()
				if s.cfg.Logging {
					rec := logrec.ReplyReceive{Session: sess.id, OutSession: out.id, Seq: seq,
						Status: byte(rep.Status), Reply: rep.Payload, HasDV: rep.HasDV, DV: rep.DV}
					lsn, n := s.mustAppend(logrec.TReplyReceive, rec.Encode())
					sess.noteReceive(lsn, n, rep.DV)
				}
				out.nextSeq = seq + 1
				return replyToResult(rep.Status, rep.Payload)
			case <-timer.C:
				c.intercept()
				break waiting // resend the same request
			}
		}
	}
}

func replyToResult(status rpc.Status, payload []byte) ([]byte, error) {
	switch status {
	case rpc.StatusOK:
		return payload, nil
	case rpc.StatusAppError:
		return nil, &rpc.AppError{Msg: string(payload)}
	case rpc.StatusRejected:
		return nil, rpc.ErrRejected
	default:
		return nil, fmt.Errorf("core: unexpected reply status %v", status)
	}
}

func sleepScaled(d time.Duration, scale float64) {
	s := time.Duration(float64(d) * scale)
	if s <= 0 {
		s = 200 * time.Microsecond // keep retry loops polite at TimeScale 0
	}
	simtime.Sleep(s)
}

// sharedVar looks up a declared shared variable. The shared map is built
// once in Start from the service definition and never mutated afterwards,
// so the lookup needs no lock.
func (s *Server) sharedVar(name string) *SharedVar {
	return s.shared[name]
}
