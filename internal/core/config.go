// Package core implements the paper's contribution: a log-based recovery
// infrastructure for Middleware Server Processes (MSPs).
//
// An MSP (Server) serves client-initiated requests with a thread pool,
// keeps private in-memory session state per client and shared in-memory
// state across clients, and may call other MSPs while serving a request
// (§2). The recovery infrastructure is transparent to service methods: it
// logs every source of nondeterminism (message receipts and shared-state
// accesses) to a single physical log, checkpoints sessions, shared
// variables and the MSP itself, and after a crash replays logged requests
// to restore all business state — guaranteeing exactly-once execution
// semantics and inter-MSP consistency (no orphans).
//
// Logging is locally optimistic (§3.1): message exchanges within a
// service domain attach dependency vectors and defer log flushes, while
// exchanges across domain boundaries (including all end-client traffic)
// are logged pessimistically via a distributed log flush before send.
package core

import (
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// Handler is a service method. It runs with at most one request per
// session in flight and must be deterministic given its argument, the
// session variables, and the values returned by Ctx.ReadShared and
// Ctx.Call — recovery re-executes it, feeding those values from the log.
type Handler func(ctx *Ctx, arg []byte) ([]byte, error)

// SharedDef declares a shared variable and its initial value.
type SharedDef struct {
	Name    string
	Initial []byte
}

// Definition is the application-level content of an MSP: its service
// methods and shared variables. A Definition is immutable once the server
// starts and is reused verbatim when restarting after a crash (program
// code survives crashes; only in-memory state is lost).
type Definition struct {
	Methods map[string]Handler
	Shared  []SharedDef
}

// Config assembles an MSP. The zero value is not runnable; use NewConfig
// for experiment-ready defaults.
type Config struct {
	// ID is the MSP's process identifier and network address.
	ID string
	// Domain is the service domain this MSP belongs to. Every MSP must be
	// in exactly one domain; an MSP alone in its domain does pure
	// pessimistic logging (the paper's Pessimistic configuration).
	Domain *Domain
	// Disk hosts the MSP's physical log (a dedicated disk, per §5.2).
	Disk *simdisk.Disk
	// Net is the simulated network.
	Net *simnet.Network
	// Def supplies methods and shared variables.
	Def Definition

	// Workers is the thread-pool size.
	Workers int
	// Logging enables the recovery infrastructure. False reproduces the
	// paper's NoLog configuration: no logging, no recovery.
	Logging bool
	// SessionCkptThreshold is the amount of log (bytes) a session consumes
	// between session checkpoints (1 MB in most of §5). Zero disables
	// session checkpointing (the paper's NoCp configuration).
	SessionCkptThreshold int64
	// SVCkptEvery is the number of writes to a shared variable between its
	// checkpoints (§3.3).
	SVCkptEvery int
	// MSPCkptEvery is the amount of log (bytes) between fuzzy MSP
	// checkpoints (§3.4).
	MSPCkptEvery int64
	// ForceCkptAfter forces a session or shared-variable checkpoint if
	// this many MSP checkpoints were taken since its last one, keeping the
	// analysis-scan start point fresh (§3.4).
	ForceCkptAfter int
	// BatchFlushTimeout enables batch flushing (group commit) with the
	// given model timeout (§5.5); zero flushes immediately.
	BatchFlushTimeout time.Duration
	// WalSegmentSize is the data capacity (bytes) of one physical log
	// segment file: the log rotates to a new segment when a flush would
	// exceed it, and checkpoint-anchored truncation deletes whole
	// segments below the anchor head, bounding disk usage under
	// sustained traffic. Zero selects the log layer's 4 MB default.
	WalSegmentSize int64
	// TimeScale converts model latencies to wall-clock sleeps.
	TimeScale float64
	// SerialRecovery disables parallel session recovery: the background
	// sweep replays the sessions it claims one after another. It exists
	// only for the ablation benchmark of the paper's parallel-recovery
	// claim (§1.3, §4.3); keep it false in real use.
	SerialRecovery bool
	// NoRecoverySweep disables the background sweep that drains
	// unrecovered units after crash recovery's analysis pass: every
	// session and shared variable is then restored only on first touch.
	// For deterministic lazy-restore tests and time-to-first-reply
	// benches; keep it false in real use (the sweep is what guarantees
	// the process eventually returns to a fully materialized state).
	NoRecoverySweep bool
	// FlushDeadline bounds one distributed-flush peer call end to end
	// (model time): transmission, retransmissions with backoff, and the
	// wait for the peer to finish recovering. A peer unreachable past
	// the deadline is marked down and the caller degrades (the end
	// client sees Busy) instead of hanging. Zero selects the 2 s
	// default. Scaled durations are clamped to small wall-clock floors
	// so tiny TimeScales keep working.
	FlushDeadline time.Duration
	// CtlRetransmit is the base retransmission interval for control
	// calls (flush requests, recovery broadcasts, knowledge pulls); it
	// grows with capped exponential backoff and ±20% seeded jitter.
	// Zero selects the 20 ms default.
	CtlRetransmit time.Duration
	// BroadcastDeadline bounds the wait for each peer's recovery-
	// broadcast ack and each anti-entropy pull. Peers missed within it
	// converge later via anti-entropy. Zero selects the 500 ms default.
	BroadcastDeadline time.Duration
	// AntiEntropyEvery, when positive, runs a periodic knowledge pull
	// against domain peers in round-robin order, converging orphan
	// detection after a partition heals even without traffic. Zero (the
	// default) relies on piggybacked knowledge and on-contact pulls.
	AntiEntropyEvery time.Duration
	// PeerProbeEvery is how often a peer marked down is probed by an
	// otherwise fast-failing flush call. Zero selects the 100 ms
	// default.
	PeerProbeEvery time.Duration
	// RequestQueueDepth bounds the normal admission lane: new client work
	// beyond this backlog is shed at enqueue time with StatusOverloaded
	// and a RetryAfter hint instead of waiting out the client's resend
	// timer. Zero selects the 4096 default (the pre-admission-gate queue
	// capacity).
	RequestQueueDepth int
	// PriorityQueueDepth bounds the priority admission lane reserved for
	// recovery-critical traffic: lazy-replay claims (requests touching
	// sessions not yet replayed since a crash) and requests arriving
	// while the server is still recovering. Workers drain this lane
	// first, so pending-replay work keeps making progress under a
	// saturation flood. A full priority lane falls back to the normal
	// lane before shedding. Zero selects the 256 default.
	PriorityQueueDepth int
	// StatelessSessions makes the server accept any request sequence on
	// any session, creating sessions on demand and executing every
	// delivery. It is for services that deduplicate at a lower layer —
	// e.g. a transactional resource manager whose testable transactions
	// detect duplicates against durable state (see internal/txmsp). Such
	// services must make their handlers idempotent themselves.
	StatelessSessions bool
	// Failpoints, when non-nil, is the fault-injection registry for this
	// MSP: Start attaches it to the Disk (so the WAL and journalled
	// stores share it) and the server evaluates its named crash points
	// (core.recovery.*, core.ckpt.*, core.replay.*) against it. Nil — the
	// default — disables injection entirely with no behavioural change.
	Failpoints *failpoint.Registry
	// Tap, when non-nil, attaches the correctness oracle's server-side
	// observation tap (see internal/oracle): request executions,
	// recoveries, session rollbacks and checkpoint state digests are
	// reported to it. Nil — the default — reduces every tap site to one
	// guarded nil check, adding no work and no allocations to the
	// request hot path.
	Tap Tap
}

// NewConfig returns a Config with the defaults used by the experiments:
// logging on, 1 MB session-checkpoint threshold, shared-variable
// checkpoints every 64 writes, 4 MB between MSP checkpoints, forced
// checkpoints after 3 MSP checkpoints.
func NewConfig(id string, domain *Domain, disk *simdisk.Disk, net *simnet.Network, def Definition) Config {
	var timeScale float64
	if disk != nil {
		timeScale = disk.Model().TimeScale
	}
	return Config{
		ID:                   id,
		Domain:               domain,
		Disk:                 disk,
		Net:                  net,
		Def:                  def,
		Workers:              32,
		Logging:              true,
		SessionCkptThreshold: 1 << 20,
		SVCkptEvery:          64,
		MSPCkptEvery:         4 << 20,
		ForceCkptAfter:       3,
		TimeScale:            timeScale,
		FlushDeadline:        2 * time.Second,
		CtlRetransmit:        20 * time.Millisecond,
		BroadcastDeadline:    500 * time.Millisecond,
		PeerProbeEvery:       100 * time.Millisecond,
	}
}
