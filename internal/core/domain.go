package core

import (
	"sync"
	"time"
)

// Domain is a service domain (§1.3): a set of tightly associated MSPs
// with fast communication. Message exchanges within a domain use
// optimistic logging; exchanges across domains use pessimistic logging.
// The domain is the boundary for dependency-vector propagation,
// distributed log flushes and recovery-message broadcasts.
//
// The domain itself is only a membership registry. All intra-domain
// control traffic — flush requests, recovery broadcasts, anti-entropy
// knowledge pulls — travels over the simulated network (internal/simnet)
// as rpc envelopes, and is therefore subject to the network's full fault
// plane: loss, duplication, reordering, per-link faults and partitions.
//
// Domain membership is registry-based: a restarted Server re-registers
// under the same ID, replacing its crashed incarnation.
type Domain struct {
	name   string
	oneWay time.Duration

	mu      sync.RWMutex
	members map[string]struct{}
}

// NewDomain creates a service domain. oneWay is the model one-way latency
// of intra-domain links (control traffic and MSP↔MSP requests); the paper
// measures an MSP↔MSP round trip of ≈3.6 ms, i.e. 1.8 ms one way. The
// timeScale parameter is retained for call-site compatibility; latency
// scaling is applied by the network.
func NewDomain(name string, oneWay time.Duration, timeScale float64) *Domain {
	_ = timeScale
	return &Domain{
		name:    name,
		oneWay:  oneWay,
		members: make(map[string]struct{}),
	}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// OneWay returns the model one-way latency of intra-domain links.
func (d *Domain) OneWay() time.Duration { return d.oneWay }

// Contains reports whether the MSP with the given ID is a member.
func (d *Domain) Contains(id string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.members[id]
	return ok
}

// Members returns the IDs of all member MSPs.
func (d *Domain) Members() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.members))
	for id := range d.members {
		out = append(out, id)
	}
	return out
}

func (d *Domain) register(id string) {
	d.mu.Lock()
	d.members[id] = struct{}{}
	d.mu.Unlock()
}
