package core

import (
	"sync"
	"time"

	"mspr/internal/dv"
	"mspr/internal/simtime"
)

// Domain is a service domain (§1.3): a set of tightly associated MSPs
// with fast, reliable communication. Message exchanges within a domain
// use optimistic logging; exchanges across domains use pessimistic
// logging. The domain is the boundary for dependency-vector propagation,
// distributed log flushes and recovery-message broadcasts.
//
// Domain membership is registry-based: a restarted Server re-registers
// under the same ID, replacing its crashed incarnation.
type Domain struct {
	name      string
	oneWay    time.Duration
	timeScale float64

	mu      sync.RWMutex
	members map[string]*Server
}

// NewDomain creates a service domain. oneWay is the model one-way latency
// of intra-domain control traffic (flush requests, recovery broadcasts);
// the paper measures an MSP↔MSP round trip of ≈3.6 ms, i.e. 1.8 ms one
// way.
func NewDomain(name string, oneWay time.Duration, timeScale float64) *Domain {
	return &Domain{
		name:      name,
		oneWay:    oneWay,
		timeScale: timeScale,
		members:   make(map[string]*Server),
	}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Contains reports whether the MSP with the given ID is a member.
func (d *Domain) Contains(id string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.members[id]
	return ok
}

// Members returns the IDs of all member MSPs.
func (d *Domain) Members() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.members))
	for id := range d.members {
		out = append(out, id)
	}
	return out
}

func (d *Domain) register(s *Server) {
	d.mu.Lock()
	d.members[s.cfg.ID] = s
	d.mu.Unlock()
}

func (d *Domain) lookup(id string) *Server {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.members[id]
}

// sleepLatency models one-way intra-domain control-message latency.
func (d *Domain) sleepLatency() {
	simtime.Sleep(time.Duration(float64(d.oneWay) * d.timeScale))
}

// flushPeer asks the member MSP id to make the state identified by sid
// durable, charging a message round trip. It returns errOrphanDep if the
// peer has lost that state in a crash, and errUnavailable if the peer is
// down or unknown (the caller retries; either the peer comes back or its
// recovery broadcast reveals the caller to be an orphan).
func (d *Domain) flushPeer(id string, sid dv.StateID) error {
	peer := d.lookup(id)
	if peer == nil {
		return errUnavailable
	}
	d.sleepLatency()
	err := peer.flushTo(sid)
	d.sleepLatency()
	return err
}

// broadcast delivers a recovery message to every member except the
// sender, returning each reachable peer's knowledge snapshot so the
// recovering MSP can learn about crashes it slept through. Delivery to
// each peer is concurrent; the call returns when all are notified.
func (d *Domain) broadcast(from string, info dv.RecoveryInfo) []dv.RecoveryInfo {
	d.mu.RLock()
	peers := make([]*Server, 0, len(d.members))
	for id, s := range d.members {
		if id != from {
			peers = append(peers, s)
		}
	}
	d.mu.RUnlock()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		learned []dv.RecoveryInfo
	)
	for _, p := range peers {
		wg.Add(1)
		go func(p *Server) {
			defer wg.Done()
			d.sleepLatency()
			snap := p.onRecoveryInfo(info)
			mu.Lock()
			learned = append(learned, snap...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return learned
}
