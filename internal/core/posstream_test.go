package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

func newTestStream() *posStream {
	return newPosStream(simdisk.NewDisk(simdisk.DefaultModel(0)), "s1")
}

func TestPosStreamAppendSnapshot(t *testing.T) {
	p := newTestStream()
	for i := 1; i <= 10; i++ {
		p.append(wal.LSN(i * 100))
	}
	snap := p.snapshot()
	if len(snap) != 10 || snap[0] != 100 || snap[9] != 1000 {
		t.Fatalf("snapshot = %v", snap)
	}
	if p.length() != 10 {
		t.Fatalf("length = %d", p.length())
	}
	// Snapshot is a copy.
	snap[0] = 999999
	if p.snapshot()[0] != 100 {
		t.Fatal("snapshot aliases internal storage")
	}
}

func TestPosStreamSpillOnFullBuffer(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	p := newPosStream(disk, "s1")
	for i := 0; i < posBufferEntries+10; i++ {
		p.append(wal.LSN(i))
	}
	if disk.Stats().Writes == 0 {
		t.Fatal("full position buffer never spilled to disk")
	}
	if p.stable < posBufferEntries {
		t.Fatalf("stable prefix %d after spill", p.stable)
	}
}

func TestPosStreamTruncateAll(t *testing.T) {
	p := newTestStream()
	for i := 0; i < 500; i++ {
		p.append(wal.LSN(i))
	}
	p.truncateAll()
	if p.length() != 0 || p.stable != 0 {
		t.Fatalf("after truncateAll: len=%d stable=%d", p.length(), p.stable)
	}
	if p.file.Size() != 0 {
		t.Fatalf("stable file not truncated: %d bytes", p.file.Size())
	}
}

func TestPosStreamTruncateFrom(t *testing.T) {
	p := newTestStream()
	for i := 1; i <= 10; i++ {
		p.append(wal.LSN(i * 10))
	}
	p.truncateFrom(55) // removes 60..100
	snap := p.snapshot()
	if len(snap) != 5 || snap[4] != 50 {
		t.Fatalf("truncateFrom(55) left %v", snap)
	}
	p.truncateFrom(10) // removes everything
	if p.length() != 0 {
		t.Fatalf("truncateFrom(10) left %v", p.snapshot())
	}
}

func TestPosStreamTruncateFromAdjustsStable(t *testing.T) {
	p := newTestStream()
	for i := 0; i < posBufferEntries+50; i++ {
		p.append(wal.LSN(i))
	}
	p.truncateFrom(10)
	if p.stable > p.length() {
		t.Fatalf("stable %d exceeds length %d", p.stable, p.length())
	}
	if got := p.file.Size(); got != int64(8*p.stable) {
		t.Fatalf("stable file %d bytes for %d stable entries", got, p.stable)
	}
}

func TestPosStreamRemoveRange(t *testing.T) {
	p := newTestStream()
	for i := 1; i <= 10; i++ {
		p.append(wal.LSN(i * 10))
	}
	p.removeRange(30, 70) // removes 30,40,50,60,70
	snap := p.snapshot()
	want := []wal.LSN{10, 20, 80, 90, 100}
	if len(snap) != len(want) {
		t.Fatalf("removeRange left %v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("removeRange left %v, want %v", snap, want)
		}
	}
}

// TestPosStreamPropertyVsReference compares the stream against a plain
// slice implementation under random operation sequences.
func TestPosStreamPropertyVsReference(t *testing.T) {
	prop := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newTestStream()
		var ref []wal.LSN
		next := wal.LSN(1)
		for _, op := range ops {
			switch op % 5 {
			case 0, 1, 2: // append (keep LSNs increasing, as real logs do)
				next += wal.LSN(rng.Intn(100) + 1)
				p.append(next)
				ref = append(ref, next)
			case 3: // truncateFrom a random point
				if len(ref) == 0 {
					continue
				}
				cut := ref[rng.Intn(len(ref))]
				p.truncateFrom(cut)
				i := len(ref)
				for i > 0 && ref[i-1] >= cut {
					i--
				}
				ref = ref[:i]
			case 4: // removeRange over a random window
				if len(ref) == 0 {
					continue
				}
				a := ref[rng.Intn(len(ref))]
				b := a + wal.LSN(rng.Intn(200))
				p.removeRange(a, b)
				kept := ref[:0]
				for _, l := range ref {
					if l < a || l > b {
						kept = append(kept, l)
					}
				}
				ref = kept
			}
		}
		snap := p.snapshot()
		if len(snap) != len(ref) {
			return false
		}
		for i := range ref {
			if snap[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPosStreamNilDisk(t *testing.T) {
	p := newPosStream(nil, "s")
	for i := 0; i < posBufferEntries*2; i++ {
		p.append(wal.LSN(i))
	}
	p.truncateAll() // must not panic without a backing file
	if p.length() != 0 {
		t.Fatal("truncateAll with nil disk failed")
	}
}
