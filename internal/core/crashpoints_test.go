package core

import (
	"testing"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/metrics"
	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

// TestNestedCrashDuringRecoveryAtEveryPoint arms each crash point of the
// recovery machinery in turn, crashes the MSP, and verifies that (a) the
// recovering incarnation dies at the armed point, and (b) the *next*
// incarnation — recovering from a crash that happened during recovery —
// comes up clean with exactly-once state intact.
//
// Most points fire synchronously inside Start; FPReplayMidSession fires
// in the background session replay after Start has returned, killing an
// apparently healthy incarnation.
func TestNestedCrashDuringRecoveryAtEveryPoint(t *testing.T) {
	points := []struct {
		name  string
		point string
		async bool
	}{
		{"before-scan", FPRecoveryBeforeScan, false},
		{"mid-scan", FPRecoveryMidScan, false},
		{"after-scan", FPRecoveryAfterScan, false},
		{"before-broadcast", FPRecoveryBeforeBroadcast, false},
		{"after-broadcast", FPRecoveryAfterBroadcast, false},
		{"ckpt-before-anchor", FPCkptBeforeAnchor, false},
		{"ckpt-before-truncate", FPCkptBeforeTruncate, false},
		{"before-serve", FPRecoveryBeforeServe, false},
		{"replay-mid-session", FPReplayMidSession, true},
		{"mid-sweep", FPSweepMid, true},
	}
	for _, tc := range points {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := newTestEnv(t)
			defer e.cleanup()
			reg := failpoint.New(5)
			e.start("m", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
			sess := e.endClient().Session("m")
			for want := uint64(1); want <= 3; want++ {
				if got := asU64(mustCall(t, sess, "inc", nil)); got != want {
					t.Fatalf("warmup #%d returned %d", want, got)
				}
			}

			e.srvs["m"].Crash()
			reg.Enable(tc.point, failpoint.Times(1))
			s, err := Start(e.cfgFor("m"))
			if tc.async {
				// Start succeeds; the armed point kills the incarnation
				// during its background session replay.
				if err != nil {
					t.Fatalf("start: %v", err)
				}
				e.srvs["m"] = s
				deadline := time.Now().Add(2 * time.Second)
				for reg.Armed(tc.point) && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if reg.Armed(tc.point) {
					t.Fatal("background replay never reached the armed point")
				}
				s.Crash()
			} else {
				if err == nil {
					s.Crash()
					t.Fatal("recovery survived its armed crash point")
				}
				if !failpoint.IsInjected(err) {
					t.Fatalf("recovery failed with a non-injected error: %v", err)
				}
			}
			if reg.Hits(tc.point) == 0 {
				t.Fatal("armed point was never hit")
			}

			// The nested crash left a half-recovered carcass on disk; a
			// fresh Start must recover from *that*.
			s2, err := Start(e.cfgFor("m"))
			if err != nil {
				t.Fatalf("recovery after nested crash: %v", err)
			}
			e.srvs["m"] = s2
			if got := asU64(mustCall(t, sess, "inc", nil)); got != 4 {
				t.Fatalf("after nested crash recovery inc returned %d, want 4 (exactly-once violated)", got)
			}
		})
	}
}

// TestRepeatedNestedRecoveryCrashes chains nested crashes: every restart
// dies at a different recovery point before one is finally allowed to
// finish. State must come through exactly once.
func TestRepeatedNestedRecoveryCrashes(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	reg := failpoint.New(6)
	e.start("m", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
	sess := e.endClient().Session("m")
	for want := uint64(1); want <= 5; want++ {
		mustCall(t, sess, "inc", nil)
	}
	e.srvs["m"].Crash()
	chain := []string{FPRecoveryBeforeScan, FPRecoveryMidScan, FPRecoveryBeforeBroadcast, FPCkptBeforeAnchor}
	for _, p := range chain {
		reg.Enable(p, failpoint.Times(1))
		if _, err := Start(e.cfgFor("m")); !failpoint.IsInjected(err) {
			t.Fatalf("start with %s armed: err = %v, want injected", p, err)
		}
	}
	s, err := Start(e.cfgFor("m"))
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	e.srvs["m"] = s
	if got := asU64(mustCall(t, sess, "inc", nil)); got != 6 {
		t.Fatalf("after %d nested recovery crashes inc returned %d, want 6", len(chain), got)
	}
}

// TestRecoveryCountersAdvance checks the observability counters recorded
// by the recovery path (process-wide, so deltas are asserted).
func TestRecoveryCountersAdvance(t *testing.T) {
	recBefore := metrics.Recovery.RecoveriesCompleted.Load()
	repBefore := metrics.Recovery.SessionsReplayed.Load()
	e := newTestEnv(t)
	defer e.cleanup()
	e.start("m", counterDef())
	sess := e.endClient().Session("m")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, sess, "inc", nil)
	}
	e.restart("m")
	if got := asU64(mustCall(t, sess, "inc", nil)); got != 4 {
		t.Fatalf("inc after restart returned %d, want 4", got)
	}
	if d := metrics.Recovery.RecoveriesCompleted.Load() - recBefore; d < 1 {
		t.Fatalf("RecoveriesCompleted advanced by %d, want >= 1", d)
	}
	if d := metrics.Recovery.SessionsReplayed.Load() - repBefore; d < 1 {
		t.Fatalf("SessionsReplayed advanced by %d, want >= 1", d)
	}
}

// TestOrphanRecoveryWithNestedMSP2RecoveryCrash is the §5.4 orphan
// scenario compounded: msp2 dies holding buffered records AND its
// replacement incarnation dies again in the middle of its own recovery
// (the testEnv restart retries until one survives). The orphaned caller
// session must still complete exactly once.
func TestOrphanRecoveryWithNestedMSP2RecoveryCrash(t *testing.T) {
	points := []struct{ name, point string }{
		{"mid-scan", FPRecoveryMidScan},
		{"before-broadcast", FPRecoveryBeforeBroadcast},
		{"ckpt-before-anchor", FPCkptBeforeAnchor},
	}
	for _, tc := range points {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reg2 := failpoint.New(9)
			cs := newCrashySystem(t, func(cfg *Config) {
				if cfg.ID == "msp2" {
					cfg.Failpoints = reg2
				}
			})
			defer cs.e.cleanup()
			sess := cs.e.endClient().Session("msp1")
			for want := uint64(1); want <= 3; want++ {
				if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
					t.Fatalf("warmup #%d returned %d", want, got)
				}
			}
			// msp2's next recovery dies at the armed point before the
			// retried recovery succeeds.
			reg2.Enable(tc.point, failpoint.Times(1))
			cs.armCrash.Store(true)
			if got := asU64(mustCall(t, sess, "method1", nil)); got != 4 {
				t.Fatalf("crash-injected request returned %d, want 4", got)
			}
			cs.crashWG.Wait()
			if reg2.Hits(tc.point) == 0 {
				t.Fatal("msp2's recovery never hit the armed point")
			}
			if cs.e.srvs["msp1"].Stats().OrphanRecoveries.Load() == 0 {
				t.Fatal("msp1 never performed orphan recovery")
			}
			for want := uint64(5); want <= 7; want++ {
				if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
					t.Fatalf("post-recovery #%d returned %d", want, got)
				}
			}
		})
	}
}

// TestDisjointEOSRegionsSurviveCallerCrashes drives two separated orphan
// episodes (two disjoint EOS-pruned regions in msp1's log, Fig. 11
// "disjoint" case), then crashes msp1 repeatedly — once with a nested
// crash planted in its own recovery — and verifies scan-time pruning
// keeps execution exactly-once.
func TestDisjointEOSRegionsSurviveCallerCrashes(t *testing.T) {
	reg1 := failpoint.New(13)
	cs := newCrashySystem(t, func(cfg *Config) {
		if cfg.ID == "msp1" {
			cfg.Failpoints = reg1
		}
	})
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	want := uint64(0)
	eosBefore := metrics.Recovery.EOSWritten.Load()
	for episode := 0; episode < 2; episode++ {
		for i := 0; i < 2; i++ {
			want++
			if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
				t.Fatalf("episode %d: request returned %d, want %d", episode, got, want)
			}
		}
		cs.armCrash.Store(true)
		want++
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("episode %d crash request returned %d, want %d", episode, got, want)
		}
		cs.crashWG.Wait()
		// One more request after the orphan recovery so the EOS record is
		// carried to disk by the reply's flush.
		want++
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("episode %d post-orphan request returned %d, want %d", episode, got, want)
		}
	}
	if d := metrics.Recovery.EOSWritten.Load() - eosBefore; d < 2 {
		t.Fatalf("EOSWritten advanced by %d, want >= 2 (two orphan episodes)", d)
	}

	// Crash msp1 with a nested crash planted mid-scan: the scan that
	// prunes both EOS regions is itself interrupted and rerun.
	reg1.Enable(FPRecoveryMidScan, failpoint.Times(1))
	cs.e.restart("msp1")
	if reg1.Hits(FPRecoveryMidScan) == 0 {
		t.Fatal("msp1's recovery never hit the armed mid-scan point")
	}
	want++
	if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
		t.Fatalf("after EOS-pruned recovery request returned %d, want %d", got, want)
	}

	// And once more without injection, for good measure.
	cs.e.restart("msp1")
	want++
	if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
		t.Fatalf("after second recovery request returned %d, want %d", got, want)
	}
}

// TestEmbeddedEOSRegionsSurviveCallerCrash drives the Fig. 11 "embedded"
// shape: an orphan episode, then — before any checkpoint moves the scan
// start past it — msp1 crashes and recovers (writing nothing new), and a
// *second* orphan episode lands in the same log region. The rescan sees
// both EOS records, the second nested inside the span the first already
// prunes partially.
func TestEmbeddedEOSRegionsSurviveCallerCrash(t *testing.T) {
	cs := newCrashySystem(t, func(cfg *Config) {
		// A huge checkpoint threshold keeps both episodes inside one
		// scan region.
		cfg.SessionCkptThreshold = 1 << 30
	})
	defer cs.e.cleanup()
	sess := cs.e.endClient().Session("msp1")
	want := uint64(0)
	for episode := 0; episode < 2; episode++ {
		cs.armCrash.Store(true)
		want++
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("episode %d crash request returned %d, want %d", episode, got, want)
		}
		cs.crashWG.Wait()
		want++
		if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
			t.Fatalf("episode %d post-orphan request returned %d, want %d", episode, got, want)
		}
		// msp1 crashes between the episodes (and after the second): its
		// analysis scan replays the accumulated region each time.
		cs.e.restart("msp1")
	}
	want++
	if got := asU64(mustCall(t, sess, "method1", nil)); got != want {
		t.Fatalf("final request returned %d, want %d", got, want)
	}
}

// TestTornLogTailRecoveredByCore crashes the MSP with a torn WAL write
// planted in its next flush: the flush fails (never acknowledged), the
// incarnation wedges and is crashed, and the next recovery's analysis
// scan must truncate the torn tail and continue. The tear point within
// the write is random: a cut inside the rewritten (already durable)
// prefix or the trailing sector padding leaves no visible damage, so the
// tear is re-armed until a scan actually finds and truncates a corrupt
// tail — exactly-once must hold in every round either way.
func TestTornLogTailRecoveredByCore(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	reg := failpoint.New(17)
	e.start("m", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
	sess := e.endClient().Session("m")
	want := uint64(0)
	for want < 3 {
		want++
		if got := asU64(mustCall(t, sess, "inc", nil)); got != want {
			t.Fatalf("inc returned %d, want %d", got, want)
		}
	}
	truncBefore := metrics.Recovery.CorruptTailTruncations.Load()
	point := simdisk.FPWriteTorn + ":m.log"

	truncated := false
	for round := 0; round < 10 && !truncated; round++ {
		// The next flush tears 20 bytes in — inside the sector's first
		// frame, so the tear is CRC-visible (a random cut usually lands in
		// the sector's zero padding, where it destroys nothing). The reply
		// for this request is never sent, the client keeps resending, and
		// the restarted incarnation repairs the tail and re-executes
		// exactly once.
		reg.Enable(point, failpoint.Times(1), failpoint.Arg(20))
		want++
		done := make(chan uint64, 1)
		go func() {
			out, err := sess.Call("inc", nil)
			if err != nil {
				done <- 0
				return
			}
			done <- asU64(out)
		}()
		deadline := time.Now().Add(2 * time.Second)
		for reg.Armed(point) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if reg.Armed(point) {
			t.Fatal("torn-write point never hit")
		}
		e.restart("m")
		if got := <-done; got != want {
			t.Fatalf("inc across torn-tail crash returned %d, want %d", got, want)
		}
		truncated = metrics.Recovery.CorruptTailTruncations.Load() > truncBefore
	}
	if !truncated {
		t.Fatal("no torn write produced a corrupt-tail truncation in 10 rounds")
	}
	want++
	if got := asU64(mustCall(t, sess, "inc", nil)); got != want {
		t.Fatalf("inc after repair returned %d, want %d", got, want)
	}
}

// TestAnchorFallbackRecoveredByCore plants a torn anchor write in the
// MSP's next checkpoint; recovery must fall back to the surviving anchor
// slot and still come up exactly-once.
func TestAnchorFallbackRecoveredByCore(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	reg := failpoint.New(19)
	e.start("m", counterDef(), func(cfg *Config) { cfg.Failpoints = reg })
	sess := e.endClient().Session("m")
	for want := uint64(1); want <= 3; want++ {
		mustCall(t, sess, "inc", nil)
	}
	fbBefore := metrics.Recovery.AnchorFallbacks.Load()

	// The next anchor write — recovery's own checkpoint — tears, killing
	// that incarnation; the retry reads the surviving slot.
	e.srvs["m"].Crash()
	reg.Enable(wal.FPAnchorCrash, failpoint.Times(1))
	if _, err := Start(e.cfgFor("m")); !failpoint.IsInjected(err) {
		t.Fatalf("start with torn anchor: err = %v, want injected", err)
	}
	s, err := Start(e.cfgFor("m"))
	if err != nil {
		t.Fatalf("recovery after torn anchor: %v", err)
	}
	e.srvs["m"] = s
	if got := asU64(mustCall(t, sess, "inc", nil)); got != 4 {
		t.Fatalf("inc after anchor fallback returned %d, want 4", got)
	}
	if d := metrics.Recovery.AnchorFallbacks.Load() - fbBefore; d < 1 {
		t.Fatalf("AnchorFallbacks advanced by %d, want >= 1", d)
	}
}
