package core

import (
	"time"

	"mspr/internal/metrics"
	"mspr/internal/rpc"
)

// Admission control: the bounded two-lane gate between the network and
// the worker pool. The paper assumes the server eventually gets to every
// logged interaction; under saturation "eventually" needs defending.
// The gate sheds excess work at enqueue time — before any durable
// effect — with an explicit StatusOverloaded reply carrying a RetryAfter
// hint, instead of the old silent counted drop that left the client
// waiting out its resend timer.
//
// Two lanes, because a flood of new client work must not starve the
// traffic recovery depends on: requests that touch sessions still owed
// a replay since the last crash (instant recovery's lazy-replay claims)
// and requests arriving while the server itself is still recovering go
// to the small priority lane, which workers drain first. Everything
// else is new work and rides the normal lane. Domain control traffic
// (flush requests, recovery broadcasts, knowledge pulls) never queues
// here at all — receiveLoop dispatches it to dedicated goroutines — so
// the control plane is effectively a third, unbounded-by-this-gate lane.

// Default admission-lane capacities (see Config.RequestQueueDepth and
// Config.PriorityQueueDepth). Exported so harnesses that bound one lane
// explicitly can compute the combined capacity ceiling.
const (
	DefaultRequestQueueDepth  = 4096
	DefaultPriorityQueueDepth = 256
)

// Bounds on the RetryAfter hint attached to StatusOverloaded replies.
const (
	retryAfterMin = time.Millisecond
	retryAfterMax = 2 * time.Second
)

// admit routes an incoming request into an admission lane or sheds it.
// Shed points, in order: the propagated deadline (expired work is
// dropped before it can occupy queue space), then lane capacity. Both
// sheds answer immediately (best-effort) with StatusOverloaded so the
// client's retry budget — not its resend timer — decides what happens
// next.
func (s *Server) admit(req rpc.Request) {
	if s.shedIfExpired(req) {
		return
	}
	if s.laneFor(req) == lanePriority {
		select {
		case s.prioCh <- req:
			metrics.Overload.Admitted.Inc()
			metrics.Overload.AdmittedPriority.Inc()
			s.observeQueueDepth()
			return
		default:
			// Priority lane full: recovery traffic still rides the normal
			// lane rather than being shed outright — executing late beats
			// a shed that spends the client's retry budget on work the
			// server WILL get to. But the fallback queues at the tail
			// behind up to a full normal lane of new work, so the demotion
			// is counted: priorityOverflow rising under load is the
			// starvation signal storms and the chaos report watch for.
			metrics.Overload.PriorityOverflow.Inc()
		}
	}
	select {
	case s.reqCh <- req:
		metrics.Overload.Admitted.Inc()
		s.observeQueueDepth()
	default:
		// Both lanes full: shed. RequestQueueDrops keeps counting what
		// the pre-gate server counted (queue-full discards), but the
		// client now learns immediately instead of timing out.
		metrics.Net.RequestQueueDrops.Inc()
		metrics.Overload.ShedAtAdmission.Inc()
		s.replyOverloaded(req)
	}
}

// admissionLane classifies a request's queue.
type admissionLane int

const (
	laneNormal admissionLane = iota
	lanePriority
)

// laneFor picks the admission lane: priority while the server is still
// recovering (those requests resolve quickly — mostly to Busy — and
// unblock clients), and for requests addressed to a session that still
// owes a replay, whose first touch IS the lazy-replay claim instant
// recovery depends on.
func (s *Server) laneFor(req rpc.Request) admissionLane {
	if s.getState() != stateRunning {
		return lanePriority
	}
	if sess := s.sessions.get(req.Session); sess != nil && sess.pendingReplay() {
		return lanePriority
	}
	return laneNormal
}

// shedIfExpired sheds a request whose propagated deadline has already
// passed. Called at admission and again immediately before the receive
// log append: a request shed here has had NO durable effect, so a shed
// can never mint a logged execution the client never learns about (the
// shedbeforelog vet analyzer pins the ordering statically).
func (s *Server) shedIfExpired(req rpc.Request) bool {
	if req.Deadline.IsZero() {
		return false
	}
	if !time.Now().After(req.Deadline) { //mspr:wallclock deadlines bound real (scaled) work; see rpc.Request.Deadline
		return false
	}
	metrics.Overload.ShedExpired.Inc()
	s.replyOverloaded(req)
	return true
}

// replyOverloaded answers a shed request, best-effort, with the current
// RetryAfter hint.
func (s *Server) replyOverloaded(req rpc.Request) {
	s.stats.OverloadedReplies.Add(1)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq,
		Status: rpc.StatusOverloaded, RetryAfter: s.retryAfterHint()})
}

// observeQueueDepth records the combined and priority backlogs on the
// peak gauges at enqueue time.
func (s *Server) observeQueueDepth() {
	metrics.Overload.QueueDepthPeak.Observe(int64(len(s.reqCh) + len(s.prioCh)))
	metrics.Overload.PriorityDepthPeak.Observe(int64(len(s.prioCh)))
}

// noteServiceTime folds one request's wall-clock service duration into
// the exponentially weighted moving average the RetryAfter hint is
// derived from (α = 1/8, the TCP RTT estimator's classic weight).
func (s *Server) noteServiceTime(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := s.svcEWMA.Load()
		nw := old + (int64(d)-old)/8
		if old == 0 {
			nw = int64(d) // first sample seeds the average
		}
		if s.svcEWMA.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterHint estimates when queue space frees up: the backlog ahead
// of a newly shed request divided by the pool's drain rate, i.e.
// backlog × (EWMA service time) / workers, clamped to sane wall-clock
// bounds. With no samples yet it falls back to the minimum hint.
func (s *Server) retryAfterHint() time.Duration {
	ewma := time.Duration(s.svcEWMA.Load())
	if ewma <= 0 {
		return retryAfterMin
	}
	backlog := len(s.reqCh) + len(s.prioCh)
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	hint := ewma * time.Duration(backlog) / time.Duration(workers)
	if hint < retryAfterMin {
		hint = retryAfterMin
	}
	if hint > retryAfterMax {
		hint = retryAfterMax
	}
	return hint
}
