package core

import (
	"fmt"
	"sync"
	"testing"

	"mspr/internal/logrec"
)

// TestCheckpointPinsStartingSession: a session that is visible in the
// striped table but has not yet published its SessionStart LSN (the
// append happens outside the shard lock) must pin the fuzzy checkpoint's
// log head at its startPin. Without the pin the checkpointer would
// truncate the log past the in-flight SessionStart and the session would
// be unrecoverable.
func TestCheckpointPinsStartingSession(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	srv := e.start("msp1", counterDef())
	cs := e.endClient().Session("msp1")
	for i := 0; i < 3; i++ {
		mustCall(t, cs, "inc", nil)
	}

	// Freeze a session mid-creation, exactly as lookupOrCreateSession
	// publishes it: born acquired, pin captured, no start LSN yet.
	pin := srv.log.Next()
	sess := newSession(srv, "starting-sess", "", false)
	sess.phase = phaseBusy
	sess.startPin = pin
	srv.sessions.insert(sess)

	// More logged traffic, so the checkpoint has records it could (but
	// must not) truncate past the pin.
	for i := 0; i < 3; i++ {
		mustCall(t, cs, "inc", nil)
	}

	if err := srv.writeMSPCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if h := srv.log.Head(); h > pin {
		t.Fatalf("checkpoint advanced log head to %d, past the starting session's pin %d", h, pin)
	}

	// The delayed append lands (necessarily at an LSN ≥ pin), completing
	// the start; flush it and crash. The recovery scan starts at the
	// anchored head ≤ pin, so it must find the SessionStart and rebuild
	// the session.
	rec := logrec.SessionStart{Session: sess.id}
	lsn, n, err := srv.appendRec(logrec.TSessionStart, rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if lsn < pin {
		t.Fatalf("SessionStart landed at %d, below its pin %d", lsn, pin)
	}
	sess.noteStart(lsn, n)
	if err := srv.log.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	e.restart("msp1")
	if e.srvs["msp1"].sessions.get("starting-sess") == nil {
		t.Fatal("session created during a checkpoint was lost across a crash")
	}
}

// TestShardedSessionTableStress hammers the striped session table from
// many goroutines — session creation, request processing, session end —
// while a checkpointer loop concurrently scans the shards, truncates the
// log head, and forces stale checkpoints. Run under -race, this is the
// regression net for the lock-striping refactor; correctness of each
// reply is also asserted.
func TestShardedSessionTableStress(t *testing.T) {
	e := newTestEnv(t)
	defer e.cleanup()
	srv := e.start("msp1", counterDef())
	c := e.endClient()

	const (
		goroutines = 8
		rounds     = 20
	)
	stop := make(chan struct{})
	errc := make(chan error, goroutines+1)
	var workers, ckpt sync.WaitGroup

	ckpt.Add(1)
	go func() { // checkpoint storm against the live table
		defer ckpt.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.writeMSPCheckpoint(); err != nil {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			srv.forceStaleCheckpoints()
		}
	}()

	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < rounds; i++ {
				cs := c.Session("msp1")
				for want := uint64(1); want <= 3; want++ {
					out, err := cs.Call("inc", nil)
					if err != nil {
						errc <- fmt.Errorf("inc: %w", err)
						return
					}
					if got := asU64(out); got != want {
						errc <- fmt.Errorf("inc returned %d, want %d", got, want)
						return
					}
				}
				if _, err := cs.Call("sharedInc", nil); err != nil {
					errc <- fmt.Errorf("sharedInc: %w", err)
					return
				}
				if err := cs.End(); err != nil {
					errc <- fmt.Errorf("end: %w", err)
					return
				}
			}
		}()
	}

	workers.Wait()
	close(stop)
	ckpt.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Every session was ended; only the empty table remains.
	if left := len(srv.sessions.snapshot()); left != 0 {
		t.Fatalf("%d sessions left in the table after all were ended", left)
	}
}
