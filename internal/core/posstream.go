package core

import (
	"encoding/binary"

	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

// posBufferEntries is the capacity of a position stream's in-memory
// buffer; only when it fills are positions flushed to disk (§3.2: "the
// cost of writing positions is low").
const posBufferEntries = 256

// posStream is a session's position stream (§3.2): the positions, inside
// the shared physical log, of the session's log records since its latest
// checkpoint. Replay follows the stream so each session can be recovered
// independently and in parallel from the single shared log.
//
// Positions are buffered in memory and spilled to a per-session disk file
// when the buffer fills. After an MSP crash the in-memory state is lost
// and the stream is reconstructed by the analysis scan; the stable file
// exists for cost fidelity (position writes are charged to the disk) and
// is rewritten by recovery.
type posStream struct {
	file   *simdisk.File
	all    []wal.LSN // full stream since the last session checkpoint
	stable int       // prefix of all that has been spilled to the file
}

func newPosStream(disk *simdisk.Disk, session string) *posStream {
	if disk == nil {
		return &posStream{}
	}
	return &posStream{file: disk.OpenFile("pos/" + session)}
}

// append adds a record position to the stream, spilling the buffer when
// full.
func (p *posStream) append(lsn wal.LSN) {
	p.all = append(p.all, lsn)
	if len(p.all)-p.stable >= posBufferEntries {
		p.spill()
	}
}

// spill writes the buffered positions to the stable file.
func (p *posStream) spill() {
	n := len(p.all) - p.stable
	if n <= 0 || p.file == nil {
		p.stable = len(p.all)
		return
	}
	buf := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(p.all[p.stable+i]))
	}
	off := int64(8 * p.stable)
	_, _ = p.file.WriteAt(buf, off) //mspr:walerr position stream models the paper's cost only; recovery rebuilds it from the analysis scan
	sectors := (len(buf) + simdisk.SectorSize - 1) / simdisk.SectorSize
	p.file.Disk().ChargeWrite(sectors, 0)
	p.stable = len(p.all)
}

// snapshot returns the stream's positions for replay.
func (p *posStream) snapshot() []wal.LSN {
	out := make([]wal.LSN, len(p.all))
	copy(out, p.all)
	return out
}

// length returns the number of positions in the stream.
func (p *posStream) length() int { return len(p.all) }

// truncateAll discards the whole stream (session checkpoint taken or
// session ended).
func (p *posStream) truncateAll() {
	p.all = p.all[:0]
	p.stable = 0
	if p.file != nil {
		_ = p.file.Truncate(0) //mspr:walerr position stream models the paper's cost only; recovery rebuilds it from the analysis scan
	}
}

// truncateFrom removes every position ≥ lsn (orphan recovery end: the
// skipped records' positions are removed so they are invisible to any
// future recovery of the session, §4.1).
func (p *posStream) truncateFrom(lsn wal.LSN) {
	i := len(p.all)
	for i > 0 && p.all[i-1] >= lsn {
		i--
	}
	p.all = p.all[:i]
	if p.stable > i {
		p.stable = i
		if p.file != nil {
			_ = p.file.Truncate(int64(8 * i)) //mspr:walerr position stream models the paper's cost only; recovery rebuilds it from the analysis scan
		}
	}
}

// removeRange removes positions in [from, to] (crash-recovery scan
// pruning between an orphan record and its EOS record).
func (p *posStream) removeRange(from, to wal.LSN) {
	kept := p.all[:0]
	for _, l := range p.all {
		if l < from || l > to {
			kept = append(kept, l)
		}
	}
	p.all = kept
	if p.stable > len(p.all) {
		p.stable = len(p.all)
	}
}
