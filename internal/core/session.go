package core

import (
	"sort"
	"sync"

	"mspr/internal/dv"
	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

// sessionPhase tracks what a session is doing. Phases matter for recovery
// scheduling: orphan recovery starts immediately for idle sessions and at
// the next interception point for busy ones (§4.1).
type sessionPhase int

// The //mspr:phase-next directives declare the legal transitions; the
// phasestate analyzer proves every store in the tree follows them (the
// self-transition is implicitly allowed, and any state may be torn down
// to phaseEnded).
const (
	phaseIdle       sessionPhase = iota //mspr:phase-next phaseBusy phaseRecovering phaseUnrecovered phaseEnded
	phaseBusy                           //mspr:phase-next phaseIdle phaseRecovering phaseEnded
	phaseRecovering                     //mspr:phase-next phaseIdle phaseEnded
	phaseEnded                          //mspr:phase-next none
	// phaseUnrecovered marks a session known from the crash-recovery
	// analysis scan whose state has not been re-materialized yet (instant
	// recovery). The unit state machine is
	// unrecovered → replaying (phaseRecovering) → live (phaseIdle);
	// orphans discovered later re-enter phaseRecovering from idle/busy
	// exactly as before the instant-recovery split. Nothing moves a unit
	// BACK to unrecovered: once claimed, the one-winner guarantee of
	// claimForReplay depends on the phase never reverting.
	phaseUnrecovered //mspr:phase-next phaseRecovering phaseEnded
)

// Session is a recovery unit (§3.2): the private state an MSP keeps for
// one client, together with the dependency-tracking and position-stream
// bookkeeping that lets the session be recovered independently of every
// other session.
type Session struct {
	id  string
	srv *Server

	// mu is last in the acquisition lattice: stateMu (10) before a
	// shard stripe (20) before a session. It is NOT noblock — the
	// position stream writes to disk under it by design.
	mu          sync.Mutex   //mspr:lock-level 30
	phase       sessionPhase //mspr:guarded-by mu
	clientAddr  simnet.Addr  //mspr:guarded-by mu
	intraDomain bool         //mspr:guarded-by mu

	vars map[string][]byte //mspr:guarded-by mu
	// vec: dependencies on other states (self added on demand).
	vec dv.Vector //mspr:guarded-by mu
	// stateLSN: state number — LSN of this session's most recent record.
	stateLSN wal.LSN //mspr:guarded-by mu

	seq      *rpc.SeqTracker
	reply    rpc.Reply //mspr:guarded-by mu
	hasReply bool      //mspr:guarded-by mu

	// outgoing is keyed by target MSP ID.
	outgoing map[string]*outSession //mspr:guarded-by mu

	pos *posStream //mspr:guarded-by mu
	// bytesLogged: log consumed since the last session checkpoint.
	bytesLogged int64 //mspr:guarded-by mu
	// startLSN: LSN of the session's first log record.
	startLSN wal.LSN //mspr:guarded-by mu
	// lastCkptLSN: LSN of the most recent session checkpoint (0 = none).
	lastCkptLSN wal.LSN //mspr:guarded-by mu
	// mspCkptsPast: MSP checkpoints since the last session checkpoint.
	mspCkptsPast int //mspr:guarded-by mu

	// startPin is the log's append position captured before the session
	// became visible in the (striped) session table, written once before
	// publication. Until noteStart publishes the real start LSN, the
	// fuzzy checkpointer clamps the log head at the pin: the SessionStart
	// record, appended outside the shard lock, can only land at an LSN ≥
	// startPin (see lookupOrCreateSession and writeMSPCheckpoint).
	//
	//mspr:guarded-by mu
	startPin wal.LSN

	// gaugePending mirrors whether this session is counted in
	// metrics.Recovery.PendingSessions, making gauge retirement
	// idempotent across the replay path, the sweep, and incarnation
	// teardown (releasePendingUnits).
	//
	//mspr:guarded-by mu
	gaugePending bool
}

// outSession is the client side of a session this session started with
// another MSP (Fig. 3): the recovery-relevant state is the next available
// request sequence number.
type outSession struct {
	id      string
	target  string
	nextSeq uint64
}

func newSession(s *Server, id string, client simnet.Addr, intra bool) *Session {
	return &Session{
		id:          id,
		srv:         s,
		clientAddr:  client,
		intraDomain: intra,
		vars:        make(map[string][]byte),
		seq:         rpc.NewSeqTracker(1),
		outgoing:    make(map[string]*outSession),
		pos:         newPosStream(s.cfg.Disk, s.cfg.ID+"/"+id),
	}
}

// ID returns the session identifier.
func (se *Session) ID() string { return se.id }

// tryAcquire claims the session for exclusive request processing.
func (se *Session) tryAcquire() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.phase != phaseIdle {
		return false
	}
	se.phase = phaseBusy
	return true
}

// release returns the session to idle after processing a request. It is a
// no-op if the session moved to recovering or ended in the meantime.
func (se *Session) release() {
	se.mu.Lock()
	if se.phase == phaseBusy {
		se.phase = phaseIdle
	}
	se.mu.Unlock()
}

// releaseToRecovery transitions a busy session into recovery (orphan
// found at an interception point mid-request).
func (se *Session) releaseToRecovery() {
	se.mu.Lock()
	if se.phase == phaseBusy {
		se.phase = phaseRecovering
	}
	se.mu.Unlock()
}

// tryBeginRecovery transitions an idle session into recovery (orphan
// found by the recovery-message sweep).
func (se *Session) tryBeginRecovery() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.phase != phaseIdle {
		return false
	}
	se.phase = phaseRecovering
	return true
}

// finishRecovery returns the session to idle after replay completes. A
// session coming out of replay is live: it leaves the pending gauge if it
// was counted there.
func (se *Session) finishRecovery() {
	se.mu.Lock()
	if se.phase == phaseRecovering {
		se.phase = phaseIdle
	}
	se.clearPendingLocked()
	se.mu.Unlock()
}

// markUnrecovered publishes the session as a pending recovery unit at the
// end of the analysis pass: known to the directory, not yet materialized.
// Only an idle (scan-created, never claimed) session may enter
// phaseUnrecovered: an unconditional store here could revert a unit that
// a racing request or the background sweep already claimed for replay,
// voiding claimForReplay's one-winner guarantee (the bug the phasestate
// analyzer caught; see TestMarkUnrecoveredDoesNotRevertClaim).
func (se *Session) markUnrecovered() {
	se.mu.Lock()
	if se.phase == phaseIdle {
		se.phase = phaseUnrecovered
		if !se.gaugePending {
			se.gaugePending = true
			metrics.Recovery.PendingSessions.Add(1)
		}
	}
	se.mu.Unlock()
}

// claimForReplay transitions unrecovered → replaying. Exactly one claimer
// (the first request to touch the session, or the background sweep) wins;
// the loser waits (requests) or skips (sweep).
func (se *Session) claimForReplay() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.phase != phaseUnrecovered {
		return false
	}
	se.phase = phaseRecovering
	return true
}

// pendingReplay reports whether the session still owes a replay — either
// actively replaying or not yet claimed after a crash.
func (se *Session) pendingReplay() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.phase == phaseRecovering || se.phase == phaseUnrecovered
}

// clearPendingLocked retires the session from the pending gauge; callers
// hold se.mu. Idempotent: the gauge moves once per crash no matter how
// many paths (replay, sweep, teardown) race to retire the unit.
//
//mspr:holds mu
func (se *Session) clearPendingLocked() {
	if se.gaugePending {
		se.gaugePending = false
		metrics.Recovery.PendingSessions.Add(-1)
	}
}

// clearPending retires the session from the pending gauge without a phase
// change (incarnation teardown with replay still owed).
func (se *Session) clearPending() {
	se.mu.Lock()
	se.clearPendingLocked()
	se.mu.Unlock()
}

func (se *Session) markEnded() {
	se.mu.Lock()
	se.phase = phaseEnded
	se.pos.truncateAll()
	se.clearPendingLocked()
	se.mu.Unlock()
}

// vecSnapshot returns a copy of the session's dependency vector.
func (se *Session) vecSnapshot() dv.Vector {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.vec.Clone()
}

// vecLocked returns the vector without copying; callers must not retain
// or mutate it. Used under the server lock for the orphan sweep.
func (se *Session) vecLocked() dv.Vector {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.vec //mspr:dvalias documented borrow: callers read it immediately and must not retain or mutate
}

// vecWithSelf returns the session's DV extended with the self-dependency
// at the session's current state identifier ("a process always depends on
// itself at its current state identifier").
func (se *Session) vecWithSelf() dv.Vector {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.vec.CloneWith(dv.Entry{Process: se.srv.selfID(), Epoch: se.srv.epoch.Load()}, int64(se.stateLSN))
}

// state returns the session's current state identifier.
func (se *Session) state() dv.StateID {
	se.mu.Lock()
	defer se.mu.Unlock()
	return dv.StateID{Epoch: se.srv.epoch.Load(), LSN: int64(se.stateLSN)}
}

// noteStart records the session's SessionStart log record.
func (se *Session) noteStart(lsn wal.LSN, n int) {
	se.mu.Lock()
	se.startLSN = lsn
	se.stateLSN = lsn
	se.pos.append(lsn)
	se.bytesLogged += int64(n)
	se.mu.Unlock()
}

// noteOwnRecord advances the session state number to a freshly written
// log record and accounts it in the position stream.
func (se *Session) noteOwnRecord(lsn wal.LSN, n int) {
	se.mu.Lock()
	se.stateLSN = lsn
	se.pos.append(lsn)
	se.bytesLogged += int64(n)
	se.mu.Unlock()
}

// notePosOnly appends a record position without advancing the state
// number (shared-variable writes change the variable's state number, not
// the session's — Fig. 8).
func (se *Session) notePosOnly(lsn wal.LSN, n int) {
	se.mu.Lock()
	se.pos.append(lsn)
	se.bytesLogged += int64(n)
	se.mu.Unlock()
}

// noteReceive logs the receipt of a message: advance the state number and
// merge the attached DV (Fig. 7 after-receive actions).
func (se *Session) noteReceive(lsn wal.LSN, n int, attached dv.Vector) {
	se.mu.Lock()
	se.stateLSN = lsn
	se.pos.append(lsn)
	se.bytesLogged += int64(n)
	se.vec = se.vec.Merge(attached)
	se.mu.Unlock()
}

// mergeVec folds a DV into the session's DV (shared-variable reads).
func (se *Session) mergeVec(v dv.Vector) {
	se.mu.Lock()
	se.vec = se.vec.Merge(v)
	se.mu.Unlock()
}

// logged returns the log consumed since the last session checkpoint.
func (se *Session) logged() int64 {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.bytesLogged
}

// bufferReply stores the latest reply so it can be resent if lost (§3.1).
func (se *Session) bufferReply(rep rpc.Reply) {
	se.mu.Lock()
	rep.HasDV = false
	rep.DV = nil
	se.reply = rep
	se.hasReply = true
	se.mu.Unlock()
}

// bufferedReplyEnvelope returns the buffered reply for resending.
func (se *Session) bufferedReplyEnvelope() (rpc.Reply, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.reply, se.hasReply
}

// outSession returns (creating deterministically if needed) the outgoing
// session to target. Creation order is deterministic in the method's
// execution, so replay recreates identical outgoing-session IDs.
func (se *Session) outSession(target string) *outSession {
	se.mu.Lock()
	defer se.mu.Unlock()
	o, ok := se.outgoing[target]
	if !ok {
		o = &outSession{
			id:      se.id + "~" + se.srv.cfg.ID + "~" + target,
			target:  target,
			nextSeq: 1,
		}
		se.outgoing[target] = o
	}
	return o
}

// ckptPositions returns the session's recovery starting points for
// inclusion in an MSP checkpoint, plus the pre-publication pin the
// checkpointer falls back to while the session is still starting
// (ckpt and start both zero).
func (se *Session) ckptPositions() (ckpt, start, pin wal.LSN) {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastCkptLSN, se.startLSN, se.startPin
}

func (se *Session) bumpMSPCkptAge() {
	se.mu.Lock()
	se.mspCkptsPast++
	se.mu.Unlock()
}

func (se *Session) mspCkptAge() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.mspCkptsPast
}

// checkpointRecord snapshots the session state for a session checkpoint
// (§3.2): session variables, buffered reply, sequence numbers of the
// inbound session and of every outgoing session, and the session's DV —
// no control state.
func (se *Session) checkpointRecord() logrec.SessionCheckpoint {
	se.mu.Lock()
	defer se.mu.Unlock()
	rec := logrec.SessionCheckpoint{
		Session:      se.id,
		ClientAddr:   string(se.clientAddr),
		IntraDomain:  se.intraDomain,
		Vars:         make(map[string][]byte, len(se.vars)),
		NextExpected: se.seq.Next(),
		DV:           se.vec.Clone(),
	}
	for k, v := range se.vars {
		rec.Vars[k] = append([]byte(nil), v...)
	}
	if se.hasReply {
		rec.HasReply = true
		rec.ReplySeq = se.reply.Seq
		rec.ReplyStatus = byte(se.reply.Status)
		rec.Reply = append([]byte(nil), se.reply.Payload...)
	}
	targets := make([]string, 0, len(se.outgoing))
	for t := range se.outgoing {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		o := se.outgoing[t]
		rec.Outgoing = append(rec.Outgoing, logrec.OutSessionState{ID: o.id, Target: o.target, NextSeq: o.nextSeq})
	}
	return rec
}

// completeCheckpoint finishes a session checkpoint: the previous log
// records are discarded from the position stream and the thresholds
// reset.
func (se *Session) completeCheckpoint(lsn wal.LSN) {
	se.mu.Lock()
	se.lastCkptLSN = lsn
	se.stateLSN = lsn
	se.pos.truncateAll()
	se.bytesLogged = 0
	se.mspCkptsPast = 0
	se.mu.Unlock()
}

// restoreFromCheckpoint re-initializes the session from a checkpoint
// record (start of session recovery, §4.1, or crash-recovery scan).
func (se *Session) restoreFromCheckpoint(rec logrec.SessionCheckpoint, ckptLSN wal.LSN) {
	se.mu.Lock()
	se.clientAddr = simnet.Addr(rec.ClientAddr)
	se.intraDomain = rec.IntraDomain
	se.vars = make(map[string][]byte, len(rec.Vars))
	for k, v := range rec.Vars {
		se.vars[k] = append([]byte(nil), v...)
	}
	se.vec = rec.DV.Clone()
	se.stateLSN = ckptLSN
	se.seq.SetNext(rec.NextExpected)
	se.hasReply = rec.HasReply
	se.reply = rpc.Reply{}
	if rec.HasReply {
		se.reply = rpc.Reply{Session: se.id, Seq: rec.ReplySeq, Status: rpc.Status(rec.ReplyStatus),
			Payload: append([]byte(nil), rec.Reply...)}
	}
	se.outgoing = make(map[string]*outSession, len(rec.Outgoing))
	for _, o := range rec.Outgoing {
		se.outgoing[o.Target] = &outSession{id: o.ID, target: o.Target, nextSeq: o.NextSeq}
	}
	se.lastCkptLSN = ckptLSN
	se.mu.Unlock()
}

// replayAdvance moves the session's state number to a replayed record's
// LSN ("the session's state number and DV are updated in the same way as
// they were during normal execution", §4.1) without touching the position
// stream — the record is already in it.
func (se *Session) replayAdvance(lsn wal.LSN) {
	se.mu.Lock()
	se.stateLSN = lsn
	se.mu.Unlock()
}

// replayReceive is replayAdvance plus the DV merge of a received message.
func (se *Session) replayReceive(lsn wal.LSN, attached dv.Vector) {
	se.mu.Lock()
	se.stateLSN = lsn
	se.vec = se.vec.Merge(attached)
	se.mu.Unlock()
}

// truncatePositions removes positions ≥ lsn from the stream (orphan
// recovery end) and returns how many records were skipped.
func (se *Session) truncatePositions(lsn wal.LSN) int {
	se.mu.Lock()
	before := len(se.pos.all)
	se.pos.truncateFrom(lsn)
	removed := before - len(se.pos.all)
	se.mu.Unlock()
	return removed
}

// lastCkpt returns the LSN of the session's most recent checkpoint.
func (se *Session) lastCkpt() wal.LSN {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.lastCkptLSN
}

// clientAddress returns the address replies are sent to.
func (se *Session) clientAddress() simnet.Addr {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.clientAddr
}

// intra reports whether the session's client is inside the domain (the
// guardedby analyzer caught the previous direct field read in
// sendReply, which raced with restoreFromCheckpoint).
func (se *Session) intra() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.intraDomain
}

// posSnapshot returns a copy of the session's record positions for
// replay.
func (se *Session) posSnapshot() []wal.LSN {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.pos.snapshot()
}

// removePosRange drops positions in [from, to) from the stream (EOS
// records found by the analysis scan make skipped records invisible).
func (se *Session) removePosRange(from, to wal.LSN) {
	se.mu.Lock()
	se.pos.removeRange(from, to)
	se.mu.Unlock()
}

// scanNote appends a position during the crash-recovery analysis scan.
//
//mspr:guardedby single-threaded analysis scan, before the session is published
func (se *Session) scanNote(lsn wal.LSN, n int) {
	se.pos.append(lsn)
	se.bytesLogged += int64(n)
}

// scanStart applies a SessionStart record during the scan.
//
//mspr:guardedby single-threaded analysis scan, before the session is published
func (se *Session) scanStart(rec logrec.SessionStart, lsn wal.LSN, n int) {
	se.clientAddr = simnet.Addr(rec.ClientAddr)
	se.intraDomain = rec.IntraDomain
	se.startLSN = lsn
	se.scanNote(lsn, n)
}

// scanCheckpointNote applies a session checkpoint during the analysis
// scan without materializing its state: positions before the checkpoint
// are discarded and the recovery starting point recorded. The checkpoint
// record is re-read and fully decoded only if and when the session's
// replay is claimed (replaySessionOnce).
//
//mspr:guardedby single-threaded analysis scan, before the session is published
func (se *Session) scanCheckpointNote(ckptLSN wal.LSN) {
	se.pos.truncateAll()
	se.bytesLogged = 0
	se.lastCkptLSN = ckptLSN
	se.stateLSN = ckptLSN
}

// resetToInitial re-initializes a session that has never checkpointed to
// its creation state (replay will rebuild everything from the log).
func (se *Session) resetToInitial() {
	se.mu.Lock()
	se.vars = make(map[string][]byte)
	se.vec = nil
	se.stateLSN = 0
	se.seq.SetNext(1)
	se.hasReply = false
	se.reply = rpc.Reply{}
	se.outgoing = make(map[string]*outSession)
	se.mu.Unlock()
}
