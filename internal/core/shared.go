package core

import (
	"errors"
	"fmt"

	"mspr/internal/dv"
	"mspr/internal/logrec"
	"mspr/internal/metrics"
	"mspr/internal/wal"

	"sync"
)

// SharedVar is a shared variable: a passive recovery unit accessed by all
// sessions of an MSP (§2.2, §3.3). Access is protected by a per-variable
// lock held only for the duration of the access, so no deadlocks are
// possible; reads and writes are value-logged (Fig. 8) so that sessions
// recover without depending on one another, and writes are chained
// backward so an orphan value can be rolled back independently (§4.2).
type SharedVar struct {
	name    string
	srv     *Server
	initial []byte

	mu        sync.Mutex
	value     []byte
	vec       dv.Vector // the current value's DV
	stateLSN  wal.LSN   // state number: LSN of the most recent write (or checkpoint)
	lastWrite wal.LSN   // backward-chain head (write or checkpoint record; 0 = virgin)

	writesSince  int     // writes since the last checkpoint
	firstWrite   wal.LSN // first write record ever (scan-start bookkeeping)
	lastCkptLSN  wal.LSN
	mspCkptsPast int

	// unrecovered marks a variable whose chain-head LSN is known from
	// the crash-recovery analysis scan but whose value has not been
	// re-read from the log yet. materializeLocked clears it on the first
	// post-crash access (or when the background sweep gets there first).
	unrecovered bool
	// gaugePending mirrors membership in metrics.Recovery.PendingShared
	// so gauge retirement is idempotent across access, sweep and
	// teardown.
	gaugePending bool
}

func newSharedVar(s *Server, def SharedDef) *SharedVar {
	return &SharedVar{
		name:    def.Name,
		srv:     s,
		initial: append([]byte(nil), def.Initial...),
		value:   append([]byte(nil), def.Initial...),
	}
}

// errUnknownShared reports access to an undeclared shared variable.
var errUnknownShared = errors.New("core: unknown shared variable")

// read implements the Fig. 8 read action on behalf of sess: roll the
// variable back if its value is an orphan, log the value with the
// variable's DV, merge the variable's DV into the reader's DV and advance
// the reader's state number to the new record.
func (sv *SharedVar) read(sess *Session) ([]byte, error) {
	s := sv.srv
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if !s.cfg.Logging {
		return append([]byte(nil), sv.value...), nil
	}
	if restored, err := sv.materializeLocked(); err != nil {
		return nil, err
	} else if restored {
		metrics.Recovery.LazyReplays.Inc()
	}
	if _, orphan := s.know.OrphanIn(sv.vec); orphan {
		if err := sv.rollbackLocked(); err != nil {
			return nil, err
		}
	}
	rec := logrec.SharedRead{Session: sess.id, Var: sv.name, Value: sv.value, DV: sv.vec}
	lsn, n := s.mustAppend(logrec.TSharedRead, rec.Encode())
	sess.mergeVec(sv.vec)
	sess.noteOwnRecord(lsn, n)
	return append([]byte(nil), sv.value...), nil
}

// write implements the Fig. 8 write action on behalf of sess: log the
// writer's DV, the new value and the previous write record's LSN (the
// backward chain); replace the variable's DV with the writer's and
// advance the variable's state number. The writer need not check the
// variable for orphanhood — the value is replaced wholesale.
func (sv *SharedVar) write(sess *Session, value []byte) error {
	s := sv.srv
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if !s.cfg.Logging {
		sv.value = append([]byte(nil), value...)
		return nil
	}
	if sv.unrecovered {
		// A write replaces the value wholesale, so there is nothing to
		// materialize: the unit is live the moment the write lands. The
		// backward chain stays intact — PrevWrite points at the
		// analysis-tracked chain head.
		sv.unrecovered = false
		sv.clearPendingLocked()
		metrics.Recovery.LazyReplays.Inc()
	}
	wvec := sess.vecWithSelf()
	rec := logrec.SharedWrite{Session: sess.id, Var: sv.name, Value: value, DV: wvec, PrevWrite: sv.lastWrite}
	lsn, n := s.mustAppend(logrec.TSharedWrite, rec.Encode())
	sess.notePosOnly(lsn, n)
	sv.vec = wvec
	sv.stateLSN = lsn
	sv.lastWrite = lsn
	sv.value = append([]byte(nil), value...)
	sv.writesSince++
	if sv.firstWrite == 0 {
		sv.firstWrite = lsn
	}
	if s.cfg.SVCkptEvery > 0 && sv.writesSince >= s.cfg.SVCkptEvery {
		return sv.checkpointLocked()
	}
	return nil
}

// rollbackLocked is shared-state orphan recovery (§4.2): follow the
// backward chain of write records to the most recent non-orphan value. A
// checkpoint record terminates the walk (its value can never be an
// orphan); a fully orphaned, never-checkpointed variable rolls back to
// its declared initial value.
func (sv *SharedVar) rollbackLocked() error {
	s := sv.srv
	s.stats.SVRollbacks.Add(1)
	cur := sv.lastWrite
	for cur != 0 {
		typ, payload, err := s.log.ReadRecord(cur)
		if err != nil {
			return fmt.Errorf("core: rollback of %s at %d: %w", sv.name, cur, err)
		}
		switch logrec.Type(typ) {
		case logrec.TSVCheckpoint:
			rec, err := logrec.DecodeSVCheckpoint(payload)
			if err != nil {
				return err
			}
			sv.value = append([]byte(nil), rec.Value...)
			sv.vec = nil
			sv.stateLSN = cur
			sv.lastWrite = cur
			return nil
		case logrec.TSharedWrite:
			rec, err := logrec.DecodeSharedWrite(payload)
			if err != nil {
				return err
			}
			if _, orphan := s.know.OrphanIn(rec.DV); orphan {
				cur = rec.PrevWrite
				continue
			}
			sv.value = append([]byte(nil), rec.Value...)
			sv.vec = rec.DV
			sv.stateLSN = cur
			sv.lastWrite = cur
			return nil
		default:
			return fmt.Errorf("core: rollback of %s: unexpected %v at %d", sv.name, logrec.Type(typ), cur)
		}
	}
	// Chain exhausted: every write since creation is an orphan.
	sv.value = append([]byte(nil), sv.initial...)
	sv.vec = nil
	sv.stateLSN = 0
	sv.lastWrite = 0
	return nil
}

// checkpointLocked takes a shared-variable checkpoint (§3.3): a
// distributed log flush per the variable's DV (during which the variable
// may be found an orphan and rolled back first), then a checkpoint record
// whose value can never become an orphan. The backward chain breaks here.
func (sv *SharedVar) checkpointLocked() error {
	s := sv.srv
	for {
		err := s.distributedFlush(sv.vec)
		if err == nil {
			break
		}
		if errors.Is(err, errOrphanDep) {
			if rbErr := sv.rollbackLocked(); rbErr != nil {
				return rbErr
			}
			continue // flush the rolled-back value's dependencies instead
		}
		if errors.Is(err, errUnavailable) {
			// A dependency's peer is unreachable past the flush deadline.
			// The checkpoint is only an optimization (it breaks the
			// backward chain), so defer it rather than failing the write
			// that triggered it: writesSince stays over threshold and the
			// next write retries.
			return nil
		}
		return err
	}
	rec := logrec.SVCheckpoint{Var: sv.name, Value: sv.value}
	lsn, _ := s.mustAppend(logrec.TSVCheckpoint, rec.Encode())
	sv.vec = nil
	sv.stateLSN = lsn
	sv.lastWrite = lsn
	sv.writesSince = 0
	sv.lastCkptLSN = lsn
	sv.mspCkptsPast = 0
	s.stats.SVCkpts.Add(1)
	return nil
}

// forceCheckpoint checkpoints the variable outside the write path (stale
// variables are forced so the analysis-scan start point advances, §3.4).
// A still-unrecovered variable is materialized first — the checkpoint
// record must carry the real value.
func (sv *SharedVar) forceCheckpoint() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if restored, err := sv.materializeLocked(); err != nil {
		return // leave the unit pending; the next access or sweep retries
	} else if restored {
		metrics.Recovery.SweepReplays.Inc()
	}
	_ = sv.checkpointLocked()
}

// ckptPositions returns the variable's recovery starting points for the
// MSP checkpoint.
func (sv *SharedVar) ckptPositions() (ckpt, firstWrite wal.LSN) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.lastCkptLSN, sv.firstWrite
}

func (sv *SharedVar) bumpMSPCkptAge() {
	sv.mu.Lock()
	sv.mspCkptsPast++
	sv.mu.Unlock()
}

func (sv *SharedVar) mspCkptAge() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.mspCkptsPast
}

func (sv *SharedVar) written() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.lastWrite != 0 && sv.writesSince > 0
}

// scanNoteWrite tracks a TSharedWrite during the analysis scan without
// decoding its value or DV: only the chain head advances. The value is
// re-materialized from the record on first post-crash access.
func (sv *SharedVar) scanNoteWrite(lsn wal.LSN) {
	sv.mu.Lock()
	sv.stateLSN = lsn
	sv.lastWrite = lsn
	if sv.firstWrite == 0 {
		sv.firstWrite = lsn
	}
	sv.writesSince++
	sv.unrecovered = true
	sv.mu.Unlock()
}

// scanNoteCheckpoint tracks a TSVCheckpoint during the analysis scan,
// value unread.
func (sv *SharedVar) scanNoteCheckpoint(lsn wal.LSN) {
	sv.mu.Lock()
	sv.stateLSN = lsn
	sv.lastWrite = lsn
	sv.lastCkptLSN = lsn
	sv.writesSince = 0
	sv.unrecovered = true
	sv.mu.Unlock()
}

// markPending publishes the variable on the PendingShared gauge at the
// end of the analysis pass if the scan left it unmaterialized.
func (sv *SharedVar) markPending() {
	sv.mu.Lock()
	if sv.unrecovered && !sv.gaugePending {
		sv.gaugePending = true
		metrics.Recovery.PendingShared.Add(1)
	}
	sv.mu.Unlock()
}

// clearPendingLocked retires the variable from the PendingShared gauge;
// callers hold sv.mu. Idempotent.
func (sv *SharedVar) clearPendingLocked() {
	if sv.gaugePending {
		sv.gaugePending = false
		metrics.Recovery.PendingShared.Add(-1)
	}
}

// clearPending retires the variable from the gauge without materializing
// (incarnation teardown).
func (sv *SharedVar) clearPending() {
	sv.mu.Lock()
	sv.clearPendingLocked()
	sv.mu.Unlock()
}

// materializeLocked restores the variable's value and DV from the log on
// first post-crash access (instant recovery's lazy restore): the analysis
// scan left only the chain-head LSN; read that one record. It reports
// whether a restore actually ran so callers can attribute it to the lazy
// or sweep counter. Orphan checking is NOT done here — the read path
// re-checks OrphanIn on the materialized DV immediately after, exactly as
// it does for values that survived in memory.
func (sv *SharedVar) materializeLocked() (bool, error) {
	if !sv.unrecovered {
		return false, nil
	}
	s := sv.srv
	// unrecovered is only ever set alongside a nonzero chain head.
	typ, payload, err := s.log.ReadRecord(sv.lastWrite)
	if err != nil {
		return false, fmt.Errorf("core: materialize %s at %d: %w", sv.name, sv.lastWrite, err)
	}
	switch logrec.Type(typ) {
	case logrec.TSharedWrite:
		rec, err := logrec.DecodeSharedWrite(payload)
		if err != nil {
			return false, err
		}
		sv.value = append([]byte(nil), rec.Value...)
		sv.vec = rec.DV.Clone()
	case logrec.TSVCheckpoint:
		rec, err := logrec.DecodeSVCheckpoint(payload)
		if err != nil {
			return false, err
		}
		sv.value = append([]byte(nil), rec.Value...)
		sv.vec = nil
	default:
		return false, fmt.Errorf("core: materialize %s: unexpected %v at %d", sv.name, logrec.Type(typ), sv.lastWrite)
	}
	sv.unrecovered = false
	sv.clearPendingLocked()
	return true, nil
}

// sweepRestore materializes the variable on behalf of the background
// sweep. It reports whether a restore ran.
func (sv *SharedVar) sweepRestore() (bool, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.materializeLocked()
}

// snapshotValue returns the current value without logging (test hook).
// It materializes first so post-crash inspection sees the logged value.
func (sv *SharedVar) snapshotValue() []byte {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	_, _ = sv.materializeLocked()
	return append([]byte(nil), sv.value...)
}
