package invariants

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PhaseState checks that stores to a declared state-machine type only
// perform allowed transitions. The session lifecycle is the motivating
// machine: PR 7's instant recovery added phaseUnrecovered and the
// claimForReplay one-winner protocol, and its exactly-once argument is
// precisely "no store moves a session along an undeclared edge" —
// unrecovered may only become recovering (the claim) or ended, never
// idle or busy directly, or a request could run against
// unmaterialized state.
//
// The machine is declared on the constants themselves:
//
//	phaseIdle sessionPhase = iota //mspr:phase-next phaseBusy ...
//
// names the allowed successors ("none" for terminal states; the
// self-transition is always allowed). The analyzer then runs a forward
// dataflow tracking, per spelled field path (`se.phase`), the SET of
// constants the value may hold — narrowed along branch and switch
// edges (`if se.phase != phaseIdle { return }` leaves {phaseIdle} on
// the fall-through), widened to everything at joins, calls and
// non-constant stores. A store must be an allowed transition from
// EVERY constant still in the set; guarded transition helpers
// (tryAcquire, claimForReplay) therefore pass, and an unguarded store
// is a finding unless every state reaches the target.
var PhaseState = &Analyzer{
	Name: "phasestate",
	Doc:  "require stores to declared phase types to follow the //mspr:phase-next machine",
	Run:  runPhaseState,
}

// phaseMachine is one declared state machine: the constants of a named
// type, each with a successor set.
type phaseMachine struct {
	typ      *types.Named
	consts   []*types.Const // declaration order
	index    map[*types.Const]int
	next     map[*types.Const]map[*types.Const]bool
	universe uint64 // bitmask of all constants
}

func (m *phaseMachine) mask(c *types.Const) uint64 { return 1 << m.index[c] }

func (m *phaseMachine) names(set uint64) string {
	var out []string
	for i, c := range m.consts {
		if set&(1<<i) != 0 {
			out = append(out, c.Name())
		}
	}
	return strings.Join(out, ", ")
}

// phaseMachines resolves every //mspr:phase-next declaration in the
// loaded packages. A type with any annotated constant must have every
// constant annotated (an incomplete machine silently allows anything),
// and successor names must resolve to constants of the same type; both
// are hygiene findings.
func phaseMachines(ctx *Context) map[*types.Named]*phaseMachine {
	machines := make(map[*types.Named]*phaseMachine)
	type constDecl struct {
		c    *types.Const
		pkg  *Package
		spec *ast.ValueSpec
	}
	byType := make(map[*types.Named][]constDecl)
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						named, ok := c.Type().(*types.Named)
						if !ok {
							continue
						}
						byType[named] = append(byType[named], constDecl{c, pkg, vs})
					}
				}
			}
		}
	}
	for named, decls := range byType {
		type annotated struct {
			constDecl
			d Directive
		}
		var anns []annotated
		var missing []constDecl
		for _, cd := range decls {
			pos := ctx.Fset.Position(cd.spec.Pos())
			var dir *Directive
			for _, d := range cd.pkg.dirs.byLine[pos.Filename][pos.Line] {
				if d.Verb == "phase-next" {
					dir = &d
					break
				}
			}
			if dir == nil && cd.spec.Doc != nil {
				for _, c := range cd.spec.Doc.List {
					if d, ok := parseDirective(c.Text); ok && d.Verb == "phase-next" {
						dir = &d
						break
					}
				}
			}
			if dir != nil {
				anns = append(anns, annotated{cd, *dir})
			} else {
				missing = append(missing, cd)
			}
		}
		if len(anns) == 0 {
			continue
		}
		for _, cd := range missing {
			ctx.reportAs(directivesName, cd.pkg, cd.spec.Pos(),
				"constant %s of %s has no //mspr:phase-next, but other constants of the type do: the machine must be total",
				cd.c.Name(), named.Obj().Name())
		}
		m := &phaseMachine{
			typ:   named,
			index: make(map[*types.Const]int),
			next:  make(map[*types.Const]map[*types.Const]bool),
		}
		byName := make(map[string]*types.Const)
		sort.Slice(decls, func(i, j int) bool { return decls[i].c.Pos() < decls[j].c.Pos() })
		for _, cd := range decls {
			m.index[cd.c] = len(m.consts)
			m.consts = append(m.consts, cd.c)
			byName[cd.c.Name()] = cd.c
		}
		m.universe = (1 << len(m.consts)) - 1
		for _, a := range anns {
			succs := make(map[*types.Const]bool)
			if a.d.Arg != "none" {
				for _, name := range strings.Fields(a.d.Arg) {
					succ, ok := byName[name]
					if !ok {
						ctx.reportAs(directivesName, a.pkg, a.spec.Pos(),
							"//mspr:phase-next %s: %q is not a constant of %s",
							a.d.Arg, name, named.Obj().Name())
						continue
					}
					succs[succ] = true
				}
			}
			m.next[a.c] = succs
		}
		machines[named] = m
	}
	return machines
}

// phaseFact maps a spelled expression path ("se.phase") to the bitmask
// of constants the value may hold; an absent key means anything.
type phaseFact map[string]uint64

func (f phaseFact) clone() phaseFact {
	n := make(phaseFact, len(f))
	for k, v := range f {
		n[k] = v
	}
	return n
}

func phaseMerge(a, b phaseFact) phaseFact {
	n := make(phaseFact)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			n[k] = va | vb
		}
	}
	return n
}

func phaseEqual(a, b phaseFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runPhaseState(ctx *Context) {
	machines := phaseMachines(ctx)
	if len(machines) == 0 {
		return
	}
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkPhaseState(ctx, machines, pkg, fs)
			})
		}
	}
}

// machineOf returns the machine for an expression's type, if any.
func machineOf(machines map[*types.Named]*phaseMachine, pkg *Package, e ast.Expr) *phaseMachine {
	t := pkg.Info.TypeOf(e)
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return machines[named]
}

// phaseKey renders a trackable path for an expression: a chain of
// identifiers and field selections. Anything else (an index, a call in
// the chain) is untrackable and returns "".
func phaseKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := phaseKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// constOf resolves an expression to a machine constant.
func constOf(pkg *Package, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := pkg.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pkg.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

func checkPhaseState(ctx *Context, machines map[*types.Named]*phaseMachine, pkg *Package, fs funcScope) {
	// Pre-scan: only analyze functions that store to a machine type.
	stores := false
	inspectNoFuncLit(fs.body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if machineOf(machines, pkg, lhs) != nil {
					stores = true
				}
			}
		}
		return !stores
	})
	if !stores {
		return
	}

	g := buildCFG(fs.body)
	refine := func(f phaseFact, e *cfgEdge) phaseFact {
		switch {
		case e.cond != nil:
			return refineCond(machines, pkg, f, e.cond, !e.negate)
		case e.tag != nil && (len(e.cases) > 0 || len(e.notCases) > 0):
			m := machineOf(machines, pkg, e.tag)
			key := phaseKey(e.tag)
			if m == nil || key == "" {
				return f
			}
			if len(e.cases) > 0 {
				var mask uint64
				for _, ce := range e.cases {
					if c := constOf(pkg, ce); c != nil {
						mask |= m.mask(c)
					} else {
						return f // a non-constant case defeats refinement
					}
				}
				return constrain(f, key, m, mask)
			}
			mask := m.universe
			for _, ce := range e.notCases {
				if c := constOf(pkg, ce); c != nil {
					mask &^= m.mask(c)
				}
			}
			return constrain(f, key, m, mask)
		}
		return f
	}
	spec := flowSpec[phaseFact]{
		entry: make(phaseFact),
		transfer: func(f phaseFact, n ast.Node) phaseFact {
			return phaseTransfer(nil, machines, pkg, f, n)
		},
		merge:  phaseMerge,
		refine: refine,
		equal:  phaseEqual,
	}
	in := solve(g, spec)

	eachNodeFact(g, spec, in, func(f phaseFact, n ast.Node) {
		phaseTransfer(&reporter{ctx, pkg}, machines, pkg, f, n)
	})
}

type reporter struct {
	ctx *Context
	pkg *Package
}

// phaseTransfer applies one node: calls invalidate every tracked path
// (any callee may mutate any phase field), constant stores are checked
// (when rep is non-nil) and narrow the path to the stored constant,
// non-constant stores widen to unknown.
func phaseTransfer(rep *reporter, machines map[*types.Named]*phaseMachine, pkg *Package, f phaseFact, n ast.Node) phaseFact {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return f
	}
	out := f
	owned := false // lazily clone-on-write
	mutate := func() phaseFact {
		if !owned {
			out = out.clone()
			owned = true
		}
		return out
	}
	inspectNode(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.CallExpr:
			if len(out) > 0 {
				if _, _, _, isLock := lockOp(pkg.Info, sub); !isLock {
					out = make(phaseFact)
					owned = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range sub.Lhs {
				m := machineOf(machines, pkg, lhs)
				if m == nil {
					continue
				}
				key := phaseKey(lhs)
				var rhs ast.Expr
				if len(sub.Rhs) == len(sub.Lhs) {
					rhs = sub.Rhs[i]
				}
				var c *types.Const
				if rhs != nil {
					c = constOf(pkg, rhs)
				}
				if c == nil || m.index[c] == 0 && m.consts[0] != c {
					if key != "" {
						delete(mutate(), key)
					}
					continue
				}
				cur := m.universe
				if key != "" {
					if v, ok := out[key]; ok {
						cur = v
					}
				}
				if rep != nil {
					bad := cur &^ (m.mask(c) | succMask(m, c))
					if bad != 0 {
						rep.ctx.report(rep.pkg, sub.Pos(),
							"store of %s to a %s that may be %s: not an allowed //mspr:phase-next transition (allowed predecessors: %s)",
							c.Name(), m.typ.Obj().Name(), m.names(bad), m.names(predMask(m, c)|m.mask(c)))
					}
				}
				if key != "" {
					mutate()[key] = m.mask(c)
				}
			}
		}
		return true
	})
	return out
}

// succMask is the set of states FROM which c is reachable in one step.
func succMask(m *phaseMachine, c *types.Const) uint64 {
	var mask uint64
	for from, succs := range m.next {
		if succs[c] {
			mask |= m.mask(from)
		}
	}
	return mask
}

// predMask is an alias of succMask with the reporting-friendly name:
// the constants allowed to precede a store of c.
func predMask(m *phaseMachine, c *types.Const) uint64 { return succMask(m, c) }

// constrain narrows key's possible set to mask (intersecting with the
// current set, universe when untracked).
func constrain(f phaseFact, key string, m *phaseMachine, mask uint64) phaseFact {
	cur := m.universe
	if v, ok := f[key]; ok {
		cur = v
	}
	nv := cur & mask
	if nv == cur {
		return f
	}
	n := f.clone()
	n[key] = nv
	return n
}

// refineCond structurally interprets a branch condition: equality and
// inequality against machine constants narrow the tracked path on the
// corresponding edge; && and || distribute when sound; everything else
// leaves the fact unchanged (refinement may only shrink sets, so
// skipping is safe).
func refineCond(machines map[*types.Named]*phaseMachine, pkg *Package, f phaseFact, cond ast.Expr, want bool) phaseFact {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return refineCond(machines, pkg, f, e.X, !want)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if want { // both true
				return refineCond(machines, pkg, refineCond(machines, pkg, f, e.X, true), e.Y, true)
			}
		case token.LOR:
			if !want { // both false
				return refineCond(machines, pkg, refineCond(machines, pkg, f, e.X, false), e.Y, false)
			}
		case token.EQL, token.NEQ:
			x, y := e.X, e.Y
			if constOf(pkg, x) != nil {
				x, y = y, x
			}
			m := machineOf(machines, pkg, x)
			key := phaseKey(x)
			c := constOf(pkg, y)
			if m == nil || key == "" || c == nil {
				return f
			}
			equalEdge := (e.Op == token.EQL) == want
			if equalEdge {
				return constrain(f, key, m, m.mask(c))
			}
			return constrain(f, key, m, m.universe&^m.mask(c))
		}
	}
	return f
}
