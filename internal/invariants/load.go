package invariants

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File // production files (type-checked)
	TestFiles  []*ast.File // _test.go files (parsed only, never type-checked)
	Types      *types.Package
	Info       *types.Info

	dirs *dirIndex // lazily built directive index
}

// Loader loads and type-checks packages of the enclosing module using
// only the standard library: go/build for file selection (so build
// constraints like the bench package's race/!race pair are honoured),
// go/parser for syntax, go/types for checking, and the source importer
// for the standard library. Module-local imports are resolved against
// the module root, recursively.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory (holds go.mod)
	modPath string // module path from go.mod

	std     types.Importer
	pkgs    map[string]*Package // by import path; nil value = load in progress
	src     map[string][]byte   // file name -> source (directive classification)
	bctx    build.Context
	loading map[string]bool
}

// NewLoader locates the enclosing module starting at dir (walking up to
// the go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("invariants: no go.mod above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    root,
		modPath: mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		src:     make(map[string][]byte),
		bctx:    build.Default,
		loading: make(map[string]bool),
	}
	return l, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("invariants: no module line in %s", gomod)
}

// Load resolves the given patterns ("./...", "./internal/core",
// "internal/invariants/testdata/wallclock") relative to base and returns
// the matched packages, type-checked. "..." walks subdirectories,
// skipping testdata, vendor and hidden directories — but a pattern that
// names a testdata directory explicitly is loaded.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		walk := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			walk = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(base, pat)
		}
		start = filepath.Clean(start)
		if !walk {
			add(start)
			continue
		}
		err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // directory without Go files under a ... pattern
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("invariants: %s is outside module root %s", dir, l.root)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads, parses and type-checks the package in dir (cached).
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("invariants: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.bctx.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			fn := filepath.Join(abs, name)
			src, err := os.ReadFile(fn)
			if err != nil {
				return nil, err
			}
			l.src[fn] = src
			f, err := parser.ParseFile(l.Fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(bp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...))
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("invariants: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Dir:        abs,
		ImportPath: path,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths load recursively
// from the module tree, everything else comes from the standard library's
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
