package invariants

import (
	"go/ast"
	"go/types"
)

// DVAlias enforces the ownership rule behind dependency-vector
// correctness: dv.Vector is a map, Vector.Merge mutates in place, and
// sessions/shared variables guard their vectors with their own locks —
// so a vector reaching a function as (part of) a parameter must never
// be stored into a struct field or package-level variable, or returned,
// without .Clone(). An aliased vector lets two recovery units mutate
// each other's dependency history, which silently corrupts orphan
// detection. The dv package itself (whose API is deliberately
// in-place) is exempt; deliberate non-retaining exceptions carry
// //mspr:dvalias <reason>.
var DVAlias = &Analyzer{
	Name: "dvalias",
	Doc:  "forbid storing or returning a parameter-reachable dv.Vector without Clone()",
	Run:  runDVAlias,
}

func runDVAlias(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		if pkg.ImportPath == "mspr/internal/dv" {
			continue
		}
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkDVScope(ctx, pkg, fs)
			})
		}
	}
}

// checkDVScope flags aliasing stores and returns of vectors reachable
// from the function's parameters or receiver.
func checkDVScope(ctx *Context, pkg *Package, fs funcScope) {
	rooted := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	addFields(fs.typ.Params)
	if fs.decl != nil && fs.body == fs.decl.Body {
		addFields(fs.decl.Recv)
	}
	if len(rooted) == 0 {
		return
	}

	// source returns the root object when e is a dv.Vector reachable
	// from a rooted parameter: the parameter itself or a selector chain
	// hanging off it (req.DV, rec.DV).
	source := func(e ast.Expr) (types.Object, bool) {
		e = ast.Unparen(e)
		if !isNamedType(pkg.Info.TypeOf(e), "mspr/internal/dv", "Vector") {
			return nil, false
		}
		for {
			switch x := e.(type) {
			case *ast.Ident:
				obj := pkg.Info.Uses[x]
				return obj, obj != nil && rooted[obj]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return nil, false
			}
		}
	}
	aliasingLHS := func(lhs ast.Expr) bool {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			return true // a struct-field store outlives the call
		case *ast.IndexExpr:
			return true // a map/slice store outlives the call
		case *ast.Ident:
			obj := pkg.Info.Uses[l]
			if obj == nil {
				obj = pkg.Info.Defs[l]
			}
			return obj != nil && obj.Parent() == pkg.Types.Scope()
		}
		return false
	}

	ast.Inspect(fs.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are checked as their own scope
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				obj, ok := source(rhs)
				if !ok || !aliasingLHS(n.Lhs[i]) {
					continue
				}
				ctx.report(pkg, rhs.Pos(),
					"dv.Vector reachable from parameter %q stored without Clone(); aliased vectors corrupt orphan detection (merge mutates in place)",
					obj.Name())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				obj, ok := source(res)
				if !ok {
					continue
				}
				ctx.report(pkg, res.Pos(),
					"dv.Vector reachable from parameter %q returned without Clone(); the caller may retain and mutate it",
					obj.Name())
			}
		}
		return true
	})
}
