package invariants

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces the declared lock lattice on the sharded hot path.
// PR 5 striped the session table and PR 7 made recovery concurrent with
// service; the code now nests three mutex families — Server.stateMu,
// sessionShard.mu, Session.mu — and the protocol is deadlock-free only
// if they are always acquired in that order, and only if nothing blocks
// (a wal flush, a simnet send, an unbounded wait) while a hot-path
// stripe lock is held. Both rules come from //mspr: declarations:
//
//   - //mspr:lock-level <n> [noblock] ranks a mutex field; acquiring a
//     lock while holding one of equal or higher rank (on ANY path — the
//     held-set analysis is a may-analysis, merge = union) is a finding,
//     including re-acquiring the same class (self-deadlock);
//   - while a lock marked noblock is held, any operation that may block
//     is a finding: a call to an //mspr:blocking root (wal.Log.Flush,
//     simnet.Endpoint.Send, simtime.Sleep, ...), a call whose
//     TRANSITIVE summary may block (annotations.go propagates over the
//     static call graph), sync.WaitGroup.Wait / sync.Cond.Wait, a
//     channel operation, or a select without a default.
//
// Calls through function values and interfaces are unresolvable and not
// tracked (the documented limit — sessionTable.forEach's callback runs
// under a stripe lock the literal's analysis cannot see); //mspr:holds
// seeds the entry held-set for *Locked-style helpers.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the declared mutex lattice and no-blocking-under-lock on every path",
	Run:  runLockOrder,
}

// heldSet is an immutable set of held lock classes.
type heldSet map[*types.Var]bool

func (h heldSet) with(v *types.Var) heldSet {
	if h[v] {
		return h
	}
	n := make(heldSet, len(h)+1)
	for k := range h {
		n[k] = true
	}
	n[v] = true
	return n
}

func (h heldSet) without(v *types.Var) heldSet {
	if !h[v] {
		return h
	}
	n := make(heldSet, len(h))
	for k := range h {
		if k != v {
			n[k] = true
		}
	}
	return n
}

func heldUnion(a, b heldSet) heldSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	n := make(heldSet, len(a)+len(b))
	for k := range a {
		n[k] = true
	}
	for k := range b {
		n[k] = true
	}
	return n
}

func heldIntersect(a, b heldSet) heldSet {
	n := make(heldSet)
	for k := range a {
		if b[k] {
			n[k] = true
		}
	}
	return n
}

func heldEqual(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func entryHeldSet(anns *annotations, pkg *Package, fs funcScope) heldSet {
	h := make(heldSet)
	for _, mu := range anns.entryHeld(pkg, fs) {
		h[mu] = true
	}
	return h
}

// heldTransfer is the shared lock-tracking transfer function: acquires
// add a class, releases remove it — unless the release is deferred, in
// which case it runs at return and the lock stays held through the
// body. Used by both lockorder (may) and guardedby (must).
func heldTransfer(pkg *Package, held heldSet, n ast.Node) heldSet {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return held
	}
	inspectNode(n, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, acquire, release, ok := lockOp(pkg.Info, call); ok {
			if acquire {
				held = held.with(class)
			} else if release {
				held = held.without(class)
			}
		}
		return true
	})
	return held
}

func runLockOrder(ctx *Context) {
	anns := ctx.anns()
	if len(anns.lockLevels) == 0 {
		return // no lattice declared in the loaded packages
	}
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkLockOrder(ctx, anns, pkg, fs)
			})
		}
	}
}

func checkLockOrder(ctx *Context, anns *annotations, pkg *Package, fs funcScope) {
	// Comm statements of select clauses are judged as part of their
	// select (which is the blocking point, and only when it has no
	// default), not as standalone channel operations.
	commStmts := make(map[ast.Node]bool)
	inspectNoFuncLit(fs.body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cc := range sel.Body.List {
				if c, ok := cc.(*ast.CommClause); ok && c.Comm != nil {
					commStmts[c.Comm] = true
				}
			}
		}
		return true
	})

	g := buildCFG(fs.body)
	spec := flowSpec[heldSet]{
		entry:    entryHeldSet(anns, pkg, fs),
		transfer: func(h heldSet, n ast.Node) heldSet { return heldTransfer(pkg, h, n) },
		merge:    heldUnion,
		equal:    heldEqual,
	}
	in := solve(g, spec)

	eachNodeFact(g, spec, in, func(held heldSet, n ast.Node) {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return // runs at exit; the Unlock there is the release, not a use
		}
		// maxRanked: the highest-ranked held lock, for ordering checks;
		// noblockHeld: any held lock forbidding blocking operations.
		var noblockHeld *types.Var
		maxLevel, haveRanked := 0, false
		for class := range held {
			if ll, ok := anns.lockLevels[class]; ok {
				if !haveRanked || ll.level > maxLevel {
					maxLevel = ll.level
				}
				haveRanked = true
				if ll.noblock && noblockHeld == nil {
					noblockHeld = class
				}
			}
		}
		isComm := commStmts[n]
		inspectNode(n, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.SendStmt:
				if noblockHeld != nil && !isComm {
					ctx.report(pkg, sub.Pos(),
						"channel send while holding noblock lock %s", lockName(noblockHeld))
				}
			case *ast.UnaryExpr:
				if sub.Op == token.ARROW && noblockHeld != nil && !isComm {
					ctx.report(pkg, sub.Pos(),
						"channel receive while holding noblock lock %s", lockName(noblockHeld))
				}
			case *ast.SelectStmt:
				if noblockHeld != nil && !hasDefaultCommClause(sub) {
					ctx.report(pkg, sub.Pos(),
						"blocking select while holding noblock lock %s", lockName(noblockHeld))
				}
				// The clause bodies are separate CFG blocks; don't
				// re-inspect them here.
				return false
			case *ast.CallExpr:
				if class, acquire, _, ok := lockOp(pkg.Info, sub); ok {
					if acquire {
						if ll, ranked := anns.lockLevels[class]; ranked && haveRanked && ll.level <= maxLevel {
							ctx.report(pkg, sub.Pos(),
								"acquiring %s (level %d) while holding a lock of level >= %d: %s",
								lockName(class), ll.level, ll.level, orderHint(anns, held, class))
						}
					}
					return true
				}
				callee := calleeFunc(pkg.Info, sub)
				if callee == nil {
					return true
				}
				if noblockHeld != nil && (isStdlibBlocking(callee) || anns.mayBlock[callee]) {
					ctx.report(pkg, sub.Pos(),
						"call to %s, which may block, while holding noblock lock %s",
						callee.Name(), lockName(noblockHeld))
				}
				if haveRanked {
					for class := range anns.mayAcquire[callee] {
						if ll := anns.lockLevels[class]; ll.level <= maxLevel {
							ctx.report(pkg, sub.Pos(),
								"call to %s may acquire %s (level %d) while holding a lock of level >= %d: %s",
								callee.Name(), lockName(class), ll.level, ll.level,
								orderHint(anns, held, class))
						}
					}
				}
			}
			return true
		})
	})
}

// lockName renders a mutex class as Type.field (or just the variable
// name for non-field mutexes).
func lockName(v *types.Var) string {
	if v.IsField() {
		if owner := fieldOwnerName(v); owner != "" {
			return owner + "." + v.Name()
		}
	}
	return v.Name()
}

// fieldOwnerName finds the named type whose struct holds the field, by
// scanning the field's package scope.
func fieldOwnerName(f *types.Var) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return ""
}

// orderHint names the held ranked locks, worst first, so the finding
// reads as a concrete ordering violation.
func orderHint(anns *annotations, held heldSet, acquiring *types.Var) string {
	var names []string
	for class := range held {
		if ll, ok := anns.lockLevels[class]; ok && ll.level >= anns.lockLevels[acquiring].level {
			names = append(names, lockName(class))
		}
	}
	sort.Strings(names)
	return "the lattice orders it before " + strings.Join(names, ", ")
}
