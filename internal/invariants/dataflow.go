package invariants

import "go/ast"

// A forward dataflow problem over a cfg. Facts flow from the entry
// block through every edge to a fixpoint; the solver is generic over
// the fact type, so each analyzer supplies its own lattice:
//
//   - flushed-by: F = bool "a flush dominates", merge = AND (a send is
//     safe only if EVERY incoming path flushed);
//   - guardedby:  F = set of mutex classes held on all paths,
//     merge = intersection (must-held);
//   - lockorder:  F = set of mutex classes held on some path,
//     merge = union (a violation on any interleaving is a violation);
//   - phasestate: F = per-expression sets of possible phase constants,
//     merge = union, refined along condition edges.
//
// Facts must be treated as immutable: transfer and refine return new
// values (or the input unchanged), never mutate in place.
type flowSpec[F any] struct {
	entry    F                   // fact at function entry
	transfer func(F, ast.Node) F // effect of one block node
	merge    func(F, F) F        // join at control-flow merges
	refine   func(F, *cfgEdge) F // optional per-edge narrowing (nil = identity)
	equal    func(F, F) bool     // fixpoint termination test
}

// solve runs the worklist fixpoint and returns each reachable block's
// ENTRY fact. Unreachable blocks (dead code, detached break targets)
// are absent from the map; analyzers skip them. Analyzers that need
// facts at a specific node re-run transfer over the block's node
// prefix, which solveBlocks' callers do inline.
func solve[F any](g *cfg, spec flowSpec[F]) map[*cfgBlock]F {
	in := make(map[*cfgBlock]F)
	entry := g.entry()
	in[entry] = spec.entry
	work := []*cfgBlock{entry}
	queued := map[*cfgBlock]bool{entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		f := in[blk]
		for _, n := range blk.nodes {
			f = spec.transfer(f, n)
		}
		for i := range blk.succs {
			e := &blk.succs[i]
			ef := f
			if spec.refine != nil {
				ef = spec.refine(ef, e)
			}
			old, seen := in[e.to]
			nf := ef
			if seen {
				nf = spec.merge(old, ef)
			}
			if !seen || !spec.equal(old, nf) {
				in[e.to] = nf
				if !queued[e.to] {
					queued[e.to] = true
					work = append(work, e.to)
				}
			}
		}
	}
	return in
}

// eachNodeFact walks every reachable block of g, calling visit with the
// fact holding immediately BEFORE each node executes, in order. This is
// the reporting pass analyzers run after solve: the fixpoint gives
// block-entry facts, the re-applied transfers give node-level facts.
func eachNodeFact[F any](g *cfg, spec flowSpec[F], in map[*cfgBlock]F, visit func(F, ast.Node)) {
	for _, blk := range g.blocks {
		f, ok := in[blk]
		if !ok {
			continue
		}
		for _, n := range blk.nodes {
			visit(f, n)
			f = spec.transfer(f, n)
		}
	}
}
