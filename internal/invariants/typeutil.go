package invariants

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method object a call invokes, or
// nil for calls through function values, type conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isMethod reports whether fn is the named method on the named type of
// the package with the given import path (receiver may be a pointer).
func isMethod(fn *types.Func, pkgPath, typeName, method string) bool {
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// isNamedType reports whether t (after stripping pointers) is the named
// type pkgPath.typeName.
func isNamedType(t types.Type, pkgPath, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// funcScope is one function body under analysis: a declaration or a
// literal, with the declaration it is nested in (for doc directives).
type funcScope struct {
	decl *ast.FuncDecl // nil for a literal at file scope (impossible in practice)
	body *ast.BlockStmt
	typ  *ast.FuncType
}

// eachFunc invokes fn for every function declaration and function
// literal in the file. Literals report the enclosing declaration.
func eachFunc(file *ast.File, fn func(fs funcScope)) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(funcScope{decl: fd, body: fd.Body, typ: fd.Type})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(funcScope{decl: fd, body: lit.Body, typ: lit.Type})
			}
			return true
		})
	}
}

// hasPathPrefix reports whether the import path equals prefix or is
// nested under it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
