package invariants

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FailpointNames keeps the crash surface auditable. Deterministic
// crash-injection only works if every failpoint is (a) declared as an
// `FP*` string constant in its package's single registry const block —
// so the full crash surface is greppable in one place, (b) referenced
// at a production inject site — a failpoint nobody evaluates is dead
// weight that suggests a crash window lost its coverage, and (c)
// exercised by a test, the chaos package or a cmd/ harness — an
// unexercised failpoint means a crash window nobody ever fires. String
// literals at Registry call sites are forbidden: a typo in a literal
// silently arms nothing.
var FailpointNames = &Analyzer{
	Name: "failpointnames",
	Doc:  "failpoints: one registry block, no literal names at call sites, each const injected and exercised",
	Run:  runFailpointNames,
}

// registryNameMethods are the failpoint.Registry methods whose first
// argument is a failpoint name.
var registryNameMethods = map[string]bool{
	"Eval":    true,
	"Enable":  true,
	"Disable": true,
	"Armed":   true,
	"Hits":    true,
}

type fpConst struct {
	pkg  *Package
	obj  types.Object
	name string
	pos  token.Pos
}

func runFailpointNames(ctx *Context) {
	var consts []fpConst
	objs := make(map[types.Object]bool)
	names := make(map[string]bool)

	// Pass 1: collect FP constants and check registry-block unity and
	// literal-free call sites, per package.
	for _, pkg := range ctx.Pkgs {
		var firstBlock *ast.GenDecl
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil || !isFPName(name.Name) || !isStringConst(obj) {
							continue
						}
						if firstBlock == nil {
							firstBlock = gd
						} else if gd != firstBlock {
							ctx.report(pkg, name.Pos(),
								"failpoint constant %s declared outside the package's registry const block; keep the whole crash surface in one block",
								name.Name)
						}
						consts = append(consts, fpConst{pkg: pkg, obj: obj, name: name.Name, pos: name.Pos()})
						objs[obj] = true
						names[name.Name] = true
					}
				}
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || !registryNameMethods[fn.Name()] ||
					!isMethod(fn, "mspr/internal/failpoint", "Registry", fn.Name()) {
					return true
				}
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					ctx.report(pkg, lit.Pos(),
						"failpoint name passed to Registry.%s as a string literal; use a registered FP constant (a typo here silently arms nothing)",
						fn.Name())
				}
				return true
			})
		}
	}
	if len(consts) == 0 {
		return
	}

	// Pass 2: classify references. Production uses in chaos/cmd count as
	// exercise, everywhere else as an inject site. Test files are parsed
	// but not type-checked, so they are matched by identifier name.
	injected := make(map[types.Object]bool)
	exercised := make(map[types.Object]bool)
	exercisedName := make(map[string]bool)
	for _, pkg := range ctx.Pkgs {
		harness := pkg.ImportPath == "mspr/internal/chaos" || hasPathPrefix(pkg.ImportPath, "mspr/cmd")
		for _, obj := range pkg.Info.Uses {
			if !objs[obj] {
				continue
			}
			if harness {
				exercised[obj] = true
			} else {
				injected[obj] = true
			}
		}
		for _, file := range pkg.TestFiles {
			ast.Inspect(file, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && names[id.Name] {
					exercisedName[id.Name] = true
				}
				return true
			})
		}
	}

	for i := range consts {
		c := &consts[i]
		if !injected[c.obj] {
			ctx.report(c.pkg, c.pos,
				"failpoint %s is never referenced at a production inject site; a failpoint nobody evaluates covers no crash window",
				c.name)
		}
		if !exercised[c.obj] && !exercisedName[c.name] {
			ctx.report(c.pkg, c.pos,
				"failpoint %s is not exercised by any test, chaos storm or cmd/ harness",
				c.name)
		}
	}
}

// isFPName reports whether the identifier follows the FP* registry
// naming convention (FPWriteTorn, not FPS or Fprintf-alikes).
func isFPName(name string) bool {
	return len(name) > 2 && name[:2] == "FP" && name[2] >= 'A' && name[2] <= 'Z'
}

// isStringConst reports whether obj is a constant of string kind.
func isStringConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	b, ok := c.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
