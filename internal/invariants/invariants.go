// Package invariants is a zero-dependency static analysis framework
// that turns the paper's recovery-correctness rules into compile-time
// checks. Each Analyzer encodes one protocol invariant the Go compiler
// cannot see — pessimistic flush-before-send at domain boundaries,
// no aliasing of dependency vectors, encoder/decoder parity for log
// records, registered-and-exercised failpoint names, no wall-clock
// reads outside the simulated time plane, and no dropped errors from
// the durability layer. The cmd/mspr-vet driver loads ./... and runs
// the suite; CI gates on a clean run.
//
// Findings can be suppressed — and deliberate exceptions documented —
// with //mspr: directives in the source:
//
//	//mspr:wallclock <reason>       exempt a wall-clock use
//	//mspr:flushed-by <func>        name the wrapper that performs the
//	                                dominating flush (or "none <reason>"
//	                                for messages carrying no state)
//	//mspr:dvalias <reason>         exempt a vector alias
//	//mspr:codecparity <reason>     exempt a record field
//	//mspr:failpointnames <reason>  exempt a failpoint name
//	//mspr:walerr <reason>          exempt a dropped durability error
//	//mspr:lockorder <reason>       exempt a lock-ordering site
//	//mspr:guardedby <reason>       exempt an unguarded field access
//	//mspr:phasestate <reason>      exempt a phase-constant store
//	//mspr:shedbeforelog <reason>   exempt a Busy/Overloaded reply after an append
//
// A second directive family DECLARES the concurrency model the
// flow-sensitive analyzers check against (see annotations.go):
// //mspr:guarded-by <mu> and //mspr:lock-level <n> [noblock] on struct
// fields, //mspr:blocking <reason> and //mspr:holds <mu> on function
// declarations, //mspr:phase-next <consts|none> on phase constants.
//
// A directive trailing a statement applies to that line; a directive
// alone on a line applies to the next line; a directive in a top-level
// declaration's doc comment applies to the whole declaration. A
// directive with an unknown verb or a missing argument is itself a
// finding.
package invariants

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one invariant check over a set of packages.
type Analyzer struct {
	Name string // also the //mspr: directive verb that suppresses it
	Doc  string
	Run  func(ctx *Context)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock,
		FlushBeforeSend,
		DVAlias,
		CodecParity,
		FailpointNames,
		WALErr,
		LockOrder,
		GuardedBy,
		PhaseState,
		ShedBeforeLog,
	}
}

// directivesName attributes findings of the always-on hygiene pass
// (malformed directives, mis-resolved annotation arguments). It is a
// pseudo-analyzer: ByName accepts it (selecting no analyzers, so a run
// checks hygiene alone) but All() does not list it.
const directivesName = "directives"

// ByName resolves a comma-separated analyzer list; empty selects all.
// The pseudo-name "directives" selects the always-on hygiene pass
// alone. An unknown name is an error naming the known analyzers.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	known := []string{directivesName}
	for _, a := range All() {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	out := []*Analyzer{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == directivesName {
			continue // hygiene always runs; selecting it adds no analyzer
		}
		a, ok := byName[n]
		if !ok {
			sort.Strings(known)
			return nil, fmt.Errorf("invariants: unknown analyzer %q (known: %s)",
				n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Context is the state shared by one suite run: the loaded packages and
// the accumulated findings.
type Context struct {
	Fset *token.FileSet
	Pkgs []*Package

	loader   *Loader
	current  *Analyzer
	findings []Finding

	annCache   *annotations // lazily resolved //mspr: declarations
	noSuppress bool         // test hook: report through directives
}

// Run executes the analyzers over the packages and returns all findings
// sorted by position. Directive hygiene (unknown verbs, missing
// arguments) is always checked.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Finding {
	return run(l, pkgs, analyzers, false)
}

// runNoSuppress is Run with //mspr: suppression directives ignored: the
// meta-test runs each fixture both ways and requires the no-suppression
// pass to surface strictly more findings, proving every analyzer ships
// a demonstrated suppressed case alongside its caught cases.
func runNoSuppress(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Finding {
	return run(l, pkgs, analyzers, true)
}

func run(l *Loader, pkgs []*Package, analyzers []*Analyzer, noSuppress bool) []Finding {
	ctx := &Context{Fset: l.Fset, Pkgs: pkgs, loader: l, noSuppress: noSuppress}
	ctx.checkDirectives()
	for _, a := range analyzers {
		ctx.current = a
		a.Run(ctx)
	}
	sort.Slice(ctx.findings, func(i, j int) bool {
		a, b := ctx.findings[i], ctx.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Full tiebreak: two findings from one analyzer at one position
		// (a path-sensitive pass can report several paths) still diff
		// deterministically in -json output.
		return a.Message < b.Message
	})
	return ctx.findings
}

// report files a finding at pos unless a matching directive suppresses
// it. The directive verb is the analyzer name (FlushBeforeSend uses
// "flushed-by").
func (ctx *Context) report(pkg *Package, pos token.Pos, format string, args ...any) {
	if !ctx.noSuppress {
		if _, ok := pkg.suppressed(ctx.Fset, pos, ctx.current.Name); ok {
			return
		}
	}
	p := ctx.Fset.Position(pos)
	ctx.findings = append(ctx.findings, Finding{
		Analyzer: ctx.current.Name,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAs files a finding under an explicit analyzer name, bypassing
// suppression — used for annotation-hygiene errors (a guarded-by naming
// a missing field), which, like malformed directives, must not be
// silenceable.
func (ctx *Context) reportAs(analyzer string, pkg *Package, pos token.Pos, format string, args ...any) {
	p := ctx.Fset.Position(pos)
	ctx.findings = append(ctx.findings, Finding{
		Analyzer: analyzer,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is one parsed //mspr: comment.
type Directive struct {
	Verb string
	Arg  string
}

// knownVerbs are the accepted directive verbs: the analyzer names
// (suppressions) plus the declaration verbs resolved in annotations.go.
var knownVerbs = map[string]bool{
	"wallclock":      true,
	"flushed-by":     true,
	"dvalias":        true,
	"codecparity":    true,
	"failpointnames": true,
	"walerr":         true,
	"lockorder":      true,
	"guardedby":      true,
	"phasestate":     true,
	"shedbeforelog":  true,
	"guarded-by":     true,
	"lock-level":     true,
	"blocking":       true,
	"holds":          true,
	"phase-next":     true,
}

// dirIndex is a package's directive lookup structure.
type dirIndex struct {
	// byLine maps file -> line -> directives applying to that line.
	byLine map[string]map[int][]Directive
	// decls are doc-comment directives covering a line range.
	decls []declDirective
	// malformed directives (unknown verb / missing argument).
	malformed []Finding
}

type declDirective struct {
	file     string
	from, to int
	d        Directive
}

const directivePrefix = "//mspr:"

// directives builds (once) and returns the package's directive index.
func (p *Package) directives(l *Loader) *dirIndex {
	if p.dirs != nil {
		return p.dirs
	}
	idx := &dirIndex{byLine: make(map[string]map[int][]Directive)}
	for _, f := range p.Files {
		p.indexFile(l, f, idx)
	}
	p.dirs = idx
	return idx
}

func (p *Package) indexFile(l *Loader, f *ast.File, idx *dirIndex) {
	fset := l.Fset
	// Doc-comment directives cover their whole declaration.
	docDirs := func(doc *ast.CommentGroup, from, to token.Pos) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if bad := validateDirective(d, pos); bad != nil {
				idx.malformed = append(idx.malformed, *bad)
				continue
			}
			idx.decls = append(idx.decls, declDirective{
				file: pos.Filename,
				from: fset.Position(from).Line,
				to:   fset.Position(to).Line,
				d:    d,
			})
		}
	}
	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			docDirs(decl.Doc, decl.Pos(), decl.End())
		case *ast.GenDecl:
			docDirs(decl.Doc, decl.Pos(), decl.End())
			for _, spec := range decl.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					docDirs(spec.Doc, spec.Pos(), spec.End())
				case *ast.ValueSpec:
					docDirs(spec.Doc, spec.Pos(), spec.End())
				}
			}
		}
	}
	// Line directives: trailing -> same line, standalone -> next line.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if bad := validateDirective(d, pos); bad != nil {
				idx.malformed = append(idx.malformed, *bad)
				continue
			}
			line := pos.Line
			if p.standaloneComment(l, c) {
				line++
			}
			m := idx.byLine[pos.Filename]
			if m == nil {
				m = make(map[int][]Directive)
				idx.byLine[pos.Filename] = m
			}
			m[line] = append(m[line], d)
		}
	}
}

// standaloneComment reports whether only whitespace precedes the comment
// on its line.
func (p *Package) standaloneComment(l *Loader, c *ast.Comment) bool {
	tf := l.Fset.File(c.Pos())
	if tf == nil {
		return false
	}
	pos := l.Fset.Position(c.Pos())
	src, ok := l.src[pos.Filename]
	if !ok {
		return false
	}
	lineStart := tf.Offset(tf.LineStart(pos.Line))
	off := tf.Offset(c.Pos())
	if lineStart < 0 || off > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:off])) == ""
}

func parseDirective(text string) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	verb, arg, _ := strings.Cut(rest, " ")
	return Directive{Verb: strings.TrimSpace(verb), Arg: strings.TrimSpace(arg)}, true
}

func validateDirective(d Directive, pos token.Position) *Finding {
	if !knownVerbs[d.Verb] {
		return &Finding{Analyzer: "directives", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("unknown //mspr: directive verb %q", d.Verb)}
	}
	if d.Arg == "" {
		return &Finding{Analyzer: "directives", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("//mspr:%s needs an argument (a reason, or the flushing wrapper's name)", d.Verb)}
	}
	return nil
}

// suppressed reports whether a directive with the given verb covers pos.
func (p *Package) suppressed(fset *token.FileSet, pos token.Pos, verb string) (Directive, bool) {
	if p.dirs == nil {
		return Directive{}, false // index is built in Run via checkDirectives
	}
	pp := fset.Position(pos)
	for _, d := range p.dirs.byLine[pp.Filename][pp.Line] {
		if d.Verb == verb {
			return d, true
		}
	}
	for _, dd := range p.dirs.decls {
		if dd.d.Verb == verb && dd.file == pp.Filename && dd.from <= pp.Line && pp.Line <= dd.to {
			return dd.d, true
		}
	}
	return Directive{}, false
}

// checkDirectives builds every package's directive index and reports
// malformed directives.
func (ctx *Context) checkDirectives() {
	for _, pkg := range ctx.Pkgs {
		idx := pkg.directives(ctx.loader)
		ctx.findings = append(ctx.findings, idx.malformed...)
	}
}
