package invariants

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ShedBeforeLog is the overload plane's durability-ordering rule as a
// lint: a request may only be shed — answered StatusOverloaded or
// StatusBusy without executing — BEFORE any log append on its behalf.
// Once the server appends (a receive record, a session end, any durable
// effect), recovery will replay that work, so telling the client
// "overloaded, nothing happened" would manufacture an execution the
// client was promised never happened — an exactly-once violation the
// runtime oracle can only catch if a storm happens to hit the window.
//
// Concretely: within one function, no call that emits a Busy/Overloaded
// outcome (Server.replyBusy, Server.replyOverloaded, Server.shedIfExpired,
// or any call whose arguments mention rpc.StatusBusy/rpc.StatusOverloaded)
// may be reachable AFTER a log append (wal.Log.Append, Server.mustAppend,
// Server.appendRec) on ANY control-flow path. This is a may-analysis —
// the mirror image of flushed-by's must-analysis: one branch that
// appends before the shed is a finding even when the common path sheds
// first. A deferred append runs at function exit, after every shed in
// the body, and therefore taints nothing. Deliberate exceptions — the
// two reply-buffer Busy paths, where the request DID execute and Busy
// merely defers delivery to the duplicate resend — carry an
// //mspr:shedbeforelog <reason> directive.
var ShedBeforeLog = &Analyzer{
	Name: "shedbeforelog",
	Doc:  "forbid Busy/Overloaded shed replies reachable after a log append (path-sensitive)",
	Run:  runShedBeforeLog,
}

func runShedBeforeLog(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkShedScope(ctx, pkg, fs)
			})
		}
	}
}

// isAppendCall matches the durable-effect producers: the raw WAL append
// and the server wrappers every logging site goes through.
func isAppendCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	return isMethod(fn, "mspr/internal/wal", "Log", "Append") ||
		isMethod(fn, "mspr/internal/core", "Server", "mustAppend") ||
		isMethod(fn, "mspr/internal/core", "Server", "appendRec")
}

// isShedCall matches the overload-outcome emitters: the server's shed
// helpers, and any call whose ARGUMENTS reference the StatusBusy or
// StatusOverloaded constants (a reply literal built inline). Comparisons
// against the constants (`rep.Status == rpc.StatusBusy`) are reads of an
// outcome, not emissions, and do not match.
func isShedCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	if isMethod(fn, "mspr/internal/core", "Server", "replyBusy") ||
		isMethod(fn, "mspr/internal/core", "Server", "replyOverloaded") ||
		isMethod(fn, "mspr/internal/core", "Server", "shedIfExpired") {
		return true
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok && isShedStatusConst(c) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isShedStatusConst(c *types.Const) bool {
	if c.Pkg() == nil || c.Pkg().Path() != "mspr/internal/rpc" {
		return false
	}
	return c.Name() == "StatusBusy" || c.Name() == "StatusOverloaded"
}

// checkShedScope solves may-have-appended over one function body and
// reports shed calls reachable on an appended path.
func checkShedScope(ctx *Context, pkg *Package, fs funcScope) {
	// Cheap pre-scan: a finding needs both an append and a shed in the
	// same scope, and most functions have neither.
	appends, sheds := false, false
	inspectNoFuncLit(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isAppendCall(pkg, call) {
				appends = true
			}
			if isShedCall(pkg, call) {
				sheds = true
			}
		}
		return !(appends && sheds)
	})
	if !appends || !sheds {
		return
	}

	g := buildCFG(fs.body)
	spec := flowSpec[bool]{
		entry: false,
		transfer: func(appended bool, n ast.Node) bool {
			if appended {
				return true
			}
			// A defer'd append runs at exit, after every shed in the body.
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return appended
			}
			inspectNode(n, func(sub ast.Node) bool {
				if call, ok := sub.(*ast.CallExpr); ok && isAppendCall(pkg, call) {
					appended = true
				}
				return true
			})
			return appended
		},
		merge: func(a, b bool) bool { return a || b },
		equal: func(a, b bool) bool { return a == b },
	}
	in := solve(g, spec)

	eachNodeFact(g, spec, in, func(appended bool, n ast.Node) {
		if !appended {
			return
		}
		inspectNode(n, func(sub ast.Node) bool {
			call, ok := sub.(*ast.CallExpr)
			if !ok || !isShedCall(pkg, call) {
				return true
			}
			name := "shed reply"
			if fn := calleeFunc(pkg.Info, call); fn != nil {
				name = fn.Name()
			}
			ctx.report(pkg, call.Pos(),
				"%s follows a log append on some path%s: a shed must precede any durable effect — after the append, recovery replays work the client was told never happened; move the shed before the append or annotate //mspr:shedbeforelog <reason>",
				name, appendWitness(ctx.Fset, pkg, g, in, call))
			return true
		})
	})
}

// appendWitness names one append site that may precede the offending
// shed: the nearest append found walking predecessor blocks back from
// the shed (or earlier in the shed's own block). Best-effort — an empty
// string when the graph walk finds nothing nameable.
func appendWitness(fset *token.FileSet, pkg *Package, g *cfg, in map[*cfgBlock]bool, shed *ast.CallExpr) string {
	containsShed := func(n ast.Node) bool {
		found := false
		inspectNode(n, func(sub ast.Node) bool {
			if sub == shed {
				found = true
			}
			return !found
		})
		return found
	}
	lastAppend := func(nodes []ast.Node) *ast.CallExpr {
		var last *ast.CallExpr
		for _, n := range nodes {
			inspectNode(n, func(sub ast.Node) bool {
				if call, ok := sub.(*ast.CallExpr); ok && isAppendCall(pkg, call) {
					last = call
				}
				return true
			})
		}
		return last
	}

	var target *cfgBlock
	shedIdx := -1
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			if containsShed(n) {
				target, shedIdx = blk, i
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		return ""
	}
	// An append earlier in the shed's own block is the closest witness.
	if call := lastAppend(target.nodes[:shedIdx]); call != nil {
		return fmt.Sprintf(" (append at line %d)", fset.Position(call.Pos()).Line)
	}
	// Otherwise BFS backwards over reachable predecessors.
	preds := make(map[*cfgBlock][]*cfgBlock)
	for _, blk := range g.blocks {
		if _, ok := in[blk]; !ok {
			continue // unreachable
		}
		for _, e := range blk.succs {
			preds[e.to] = append(preds[e.to], blk)
		}
	}
	queue := []*cfgBlock{target}
	seen := map[*cfgBlock]bool{target: true}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, p := range preds[blk] {
			if seen[p] {
				continue
			}
			seen[p] = true
			if call := lastAppend(p.nodes); call != nil {
				return fmt.Sprintf(" (append at line %d)", fset.Position(call.Pos()).Line)
			}
			queue = append(queue, p)
		}
	}
	return ""
}
