package invariants

import (
	"go/ast"
	"go/types"
)

// walErrMethods are the durability-layer calls whose error results must
// not be dropped: (pkgPath, typeName) -> method set.
var walErrMethods = map[[2]string]map[string]bool{
	{"mspr/internal/wal", "Log"}: {
		"Append":       true,
		"Flush":        true,
		"WriteAnchor":  true,
		"TruncateHead": true,
		"Close":        true,
	},
	{"mspr/internal/simdisk", "File"}: {
		"WriteAt":  true,
		"Truncate": true,
	},
}

// WALErr flags discarded errors from the durability layer. The whole
// recovery protocol rests on "if the log said it flushed, the bytes are
// on disk" — an ignored error from wal.Log.Append/Flush/WriteAnchor or
// the simdisk write path converts an injected (or real) disk fault into
// silent state divergence that only surfaces as a wrong answer after
// the next crash. Deliberate discards (best-effort paths whose loss is
// recovered by the analysis scan) carry //mspr:walerr <reason>.
var WALErr = &Analyzer{
	Name: "walerr",
	Doc:  "forbid discarding errors from wal/simdisk append, flush, anchor and truncate calls",
	Run:  runWALErr,
}

func runWALErr(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					checkDiscardedCall(ctx, pkg, n.X, "result ignored")
				case *ast.GoStmt:
					checkDiscardedCall(ctx, pkg, n.Call, "result ignored (go statement)")
				case *ast.DeferStmt:
					checkDiscardedCall(ctx, pkg, n.Call, "result ignored (deferred)")
				case *ast.AssignStmt:
					checkBlankAssign(ctx, pkg, n)
				}
				return true
			})
		}
	}
}

// watchedCall returns the method a call invokes when it is in the
// durability set.
func watchedCall(pkg *Package, e ast.Expr) (*types.Func, *ast.CallExpr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil, nil
	}
	for key, methods := range walErrMethods {
		if methods[fn.Name()] && isMethod(fn, key[0], key[1], fn.Name()) {
			return fn, call
		}
	}
	return nil, nil
}

func checkDiscardedCall(ctx *Context, pkg *Package, e ast.Expr, how string) {
	fn, call := watchedCall(pkg, e)
	if fn == nil {
		return
	}
	ctx.report(pkg, call.Pos(),
		"error from %s %s; a dropped durability error becomes silent divergence after the next crash — handle it or annotate //mspr:walerr <reason>",
		durCallName(fn), how)
}

// checkBlankAssign flags assignments that send a watched call's error
// result to the blank identifier.
func checkBlankAssign(ctx *Context, pkg *Package, as *ast.AssignStmt) {
	flag := func(call *ast.CallExpr, fn *types.Func) {
		ctx.report(pkg, call.Pos(),
			"error from %s assigned to _; a dropped durability error becomes silent divergence after the next crash — handle it or annotate //mspr:walerr <reason>",
			durCallName(fn))
	}
	// Sole multi-result call: lsn, err := l.Append(...).
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		fn, call := watchedCall(pkg, as.Rhs[0])
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len() && i < len(as.Lhs); i++ {
			if !isErrorType(sig.Results().At(i).Type()) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				flag(call, fn)
			}
		}
		return
	}
	// 1:1 assignments: _ = l.Flush(x).
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		fn, call := watchedCall(pkg, rhs)
		if fn == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
			continue
		}
		if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			flag(call, fn)
		}
	}
}

func durCallName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	return rt.(*types.Named).Obj().Name() + "." + fn.Name()
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
