package invariants

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The concurrency analyzers are driven by declarations in the source,
// not hardcoded tables, so the same passes check both the production
// tree and self-contained golden fixtures:
//
//	//mspr:guarded-by <mu>          on a struct field: the field may only
//	                                be accessed while the sibling mutex
//	                                field <mu> is held
//	//mspr:lock-level <n> [noblock] on a mutex field: its rank in the
//	                                acquisition lattice (locks must be
//	                                taken in strictly increasing rank);
//	                                noblock additionally forbids blocking
//	                                calls while the lock is held
//	//mspr:blocking <reason>        on a function declaration: calling it
//	                                may block (a blocking root; blocking
//	                                propagates to transitive callers)
//	//mspr:holds <mu>               on a method declaration: the caller
//	                                holds the receiver's mutex field <mu>
//	                                on entry (the *Locked helper idiom)
//	//mspr:phase-next <c...|none>   on a constant: the allowed successor
//	                                states of this phase constant
//
// This file resolves those directives into typed objects (the mutex
// class of a lock is its *types.Var field object — class-level, any
// instance) and computes the interprocedural may-block / may-acquire
// summaries over the loaded packages' static call graph.

// lockLevel is one lattice entry for a mutex field.
type lockLevel struct {
	level   int
	noblock bool
}

// annotations is the resolved directive-driven model, built once per
// Run and shared by the concurrency analyzers via Context.
type annotations struct {
	// guardedBy maps an annotated struct field to the sibling mutex
	// field that guards it.
	guardedBy map[*types.Var]*types.Var
	// lockLevels maps a mutex field to its declared lattice rank.
	lockLevels map[*types.Var]lockLevel
	// blockingRoots are function declarations annotated //mspr:blocking.
	blockingRoots map[*types.Func]bool
	// holds maps a function to the mutex classes its caller must hold.
	holds map[*types.Func][]*types.Var

	// mayBlock and mayAcquire are the transitive call-graph summaries:
	// whether calling fn may reach a blocking operation, and which
	// lattice-ranked mutex classes it may acquire.
	mayBlock   map[*types.Func]bool
	mayAcquire map[*types.Func]map[*types.Var]bool
}

// anns builds (once) and returns the resolved annotation model for the
// loaded packages.
func (ctx *Context) anns() *annotations {
	if ctx.annCache != nil {
		return ctx.annCache
	}
	a := &annotations{
		guardedBy:     make(map[*types.Var]*types.Var),
		lockLevels:    make(map[*types.Var]lockLevel),
		blockingRoots: make(map[*types.Func]bool),
		holds:         make(map[*types.Func][]*types.Var),
	}
	for _, pkg := range ctx.Pkgs {
		a.collectFields(ctx, pkg)
		a.collectFuncs(ctx, pkg)
	}
	a.summarize(ctx)
	ctx.annCache = a
	return a
}

// fieldDirective returns the directive with the given verb attached to
// a struct field: trailing on the field's line, standalone on the line
// above, or in the field's doc comment.
func fieldDirective(pkg *Package, ctx *Context, field *ast.Field, verb string) (Directive, bool) {
	pos := ctx.Fset.Position(field.Pos())
	for _, d := range pkg.dirs.byLine[pos.Filename][pos.Line] {
		if d.Verb == verb {
			return d, true
		}
	}
	if field.Doc != nil {
		for _, c := range field.Doc.List {
			if d, ok := parseDirective(c.Text); ok && d.Verb == verb {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// collectFields resolves guarded-by and lock-level directives on struct
// fields. Mis-resolved arguments (no such sibling field, a non-mutex
// lock-level target, a malformed rank) are findings: a guard that names
// nothing protects nothing.
func (a *annotations) collectFields(ctx *Context, pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Sibling lookup: field name -> object, for resolving mutex args.
			byName := make(map[string]*types.Var)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						byName[name.Name] = v
					}
				}
			}
			for _, f := range st.Fields.List {
				if d, ok := fieldDirective(pkg, ctx, f, "guarded-by"); ok {
					mu := byName[d.Arg]
					if mu == nil {
						ctx.reportAs(directivesName, pkg, f.Pos(),
							"//mspr:guarded-by %s: no such sibling field", d.Arg)
						continue
					}
					for _, name := range f.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							a.guardedBy[v] = mu
						}
					}
				}
				if d, ok := fieldDirective(pkg, ctx, f, "lock-level"); ok {
					args := strings.Fields(d.Arg)
					lvl, err := strconv.Atoi(args[0])
					if err != nil || (len(args) > 1 && args[1] != "noblock") || len(args) > 2 {
						ctx.reportAs(directivesName, pkg, f.Pos(),
							"//mspr:lock-level wants \"<rank> [noblock]\", got %q", d.Arg)
						continue
					}
					for _, name := range f.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if !isMutexType(v.Type()) {
							ctx.reportAs(directivesName, pkg, f.Pos(),
								"//mspr:lock-level on %s, which is not a sync.Mutex/RWMutex", v.Name())
							continue
						}
						a.lockLevels[v] = lockLevel{level: lvl, noblock: len(args) > 1}
					}
				}
			}
			return true
		})
	}
}

// collectFuncs resolves blocking and holds directives on function
// declarations.
func (a *annotations) collectFuncs(ctx *Context, pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch d.Verb {
				case "blocking":
					a.blockingRoots[fn] = true
				case "holds":
					mu := receiverField(fn, d.Arg)
					if mu == nil {
						ctx.reportAs(directivesName, pkg, fd.Pos(),
							"//mspr:holds %s: receiver has no such field", d.Arg)
						continue
					}
					a.holds[fn] = append(a.holds[fn], mu)
				}
			}
		}
	}
}

// receiverField resolves a field name against fn's receiver struct.
func receiverField(fn *types.Func, name string) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockOp classifies a call as a mutex operation on a trackable lock
// class: x.mu.Lock() / Unlock() / RLock() / RUnlock() / TryLock /
// TryRLock, where mu resolves to a variable object (a struct field —
// the class covers every instance — or a package-level/local mutex).
func lockOp(info *types.Info, call *ast.CallExpr) (class *types.Var, acquire, release, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return nil, false, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		release = true
	default:
		return nil, false, false, false
	}
	sel, sok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !sok {
		return nil, false, false, false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if v, vok := info.Uses[x.Sel].(*types.Var); vok {
			return v, acquire, release, true
		}
	case *ast.Ident:
		if v, vok := info.Uses[x].(*types.Var); vok {
			return v, acquire, release, true
		}
	}
	return nil, false, false, false
}

// isStdlibBlocking reports stdlib waits that cannot carry a directive:
// sync.WaitGroup.Wait and sync.Cond.Wait.
func isStdlibBlocking(fn *types.Func) bool {
	return isMethod(fn, "sync", "WaitGroup", "Wait") || isMethod(fn, "sync", "Cond", "Wait")
}

// summarize computes the transitive may-block / may-acquire summaries
// over the static call graph of the loaded packages. Function literals
// are excluded from their enclosing function's summary (a literal's
// body runs when the value is called, not where it is written); calls
// through function values and interfaces are unresolvable and treated
// as non-blocking — the analyzers' documented soundness limit.
func (a *annotations) summarize(ctx *Context) {
	type funcBody struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	decls := make(map[*types.Func]funcBody)
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = funcBody{pkg, fd.Body}
				}
			}
		}
	}

	a.mayBlock = make(map[*types.Func]bool)
	a.mayAcquire = make(map[*types.Func]map[*types.Var]bool)
	calls := make(map[*types.Func][]*types.Func)
	for fn, fb := range decls {
		if a.blockingRoots[fn] {
			a.mayBlock[fn] = true
		}
		info := fb.pkg.Info
		// A select's comm operations block only as part of the select,
		// which is non-blocking when it has a default clause.
		comms := make(map[ast.Node]bool)
		inspectNoFuncLit(fb.body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, cc := range sel.Body.List {
					if c, ok := cc.(*ast.CommClause); ok && c.Comm != nil {
						comms[c.Comm] = true
					}
				}
			}
			return true
		})
		inspectNoFuncLit(fb.body, func(n ast.Node) bool {
			if comms[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				a.mayBlock[fn] = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					a.mayBlock[fn] = true
				}
			case *ast.SelectStmt:
				if !hasDefaultCommClause(n) {
					a.mayBlock[fn] = true
				}
			case *ast.CallExpr:
				if class, acquire, _, ok := lockOp(info, n); ok {
					if acquire {
						if _, ranked := a.lockLevels[class]; ranked {
							if a.mayAcquire[fn] == nil {
								a.mayAcquire[fn] = make(map[*types.Var]bool)
							}
							a.mayAcquire[fn][class] = true
						}
					}
					return true
				}
				callee := calleeFunc(info, n)
				if callee == nil {
					return true
				}
				if isStdlibBlocking(callee) || a.blockingRoots[callee] {
					a.mayBlock[fn] = true
				}
				if _, local := decls[callee]; local {
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
	}

	// Propagate to a fixpoint (the graph is small; simple iteration).
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, c := range callees {
				if a.mayBlock[c] && !a.mayBlock[fn] {
					a.mayBlock[fn] = true
					changed = true
				}
				for class := range a.mayAcquire[c] {
					if !a.mayAcquire[fn][class] {
						if a.mayAcquire[fn] == nil {
							a.mayAcquire[fn] = make(map[*types.Var]bool)
						}
						a.mayAcquire[fn][class] = true
						changed = true
					}
				}
			}
		}
	}
}

func hasDefaultCommClause(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// entryHeld returns the lock classes a function's caller holds on entry
// (//mspr:holds declarations). Literals have no declaration and start
// with nothing held.
func (a *annotations) entryHeld(pkg *Package, fs funcScope) []*types.Var {
	if fs.decl == nil || fs.body != fs.decl.Body {
		return nil
	}
	fn, _ := pkg.Info.Defs[fs.decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return a.holds[fn]
}
