package invariants

import (
	"go/ast"
	"go/types"
)

// CodecParity guards log-record format stability: replay reads back
// exactly what normal execution wrote, so a record struct whose encoder
// and decoder disagree — a field added to the struct but forgotten in
// one path — silently corrupts recovery (every later field shifts, or
// the field replays as zero). For every struct with an
// `Encode() []byte` method and a matching `Decode<Name>` function in
// the same package, every exported field must be referenced by both
// bodies. Deliberately un-encoded fields carry //mspr:codecparity.
//
// Pairs whose bodies both go through encoding/json are exempt: a
// reflective codec walks every field by construction, so per-field
// drift between the two paths cannot happen there.
var CodecParity = &Analyzer{
	Name: "codecparity",
	Doc:  "every exported field of a log-record struct must appear in both its Encode and Decode paths",
	Run:  runCodecParity,
}

func runCodecParity(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		encoders := make(map[string]*ast.FuncDecl) // type name -> Encode method
		decoders := make(map[string]*ast.FuncDecl) // type name -> Decode<Name> func
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Recv != nil && fd.Name.Name == "Encode" {
					if tn := recvTypeName(pkg.Info, fd); tn != "" {
						encoders[tn] = fd
					}
				}
				if fd.Recv == nil {
					if tn, ok := cutPrefixName(fd.Name.Name); ok {
						decoders[tn] = fd
					}
				}
			}
		}
		for tn, enc := range encoders {
			dec, ok := decoders[tn]
			if !ok {
				continue // not a codec pair (e.g. a different Encode)
			}
			obj, ok := pkg.Types.Scope().Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if usesEncodingJSON(pkg.Info, enc.Body) && usesEncodingJSON(pkg.Info, dec.Body) {
				continue // reflective codec: fields cannot drift between paths
			}
			encRefs := fieldRefs(pkg.Info, enc.Body)
			decRefs := fieldRefs(pkg.Info, dec.Body)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() || f.Anonymous() {
					continue
				}
				missEnc := !encRefs[f]
				missDec := !decRefs[f]
				if !missEnc && !missDec {
					continue
				}
				side := ""
				switch {
				case missEnc && missDec:
					side = "Encode and " + dec.Name.Name
				case missEnc:
					side = "Encode"
				default:
					side = dec.Name.Name
				}
				ctx.report(pkg, f.Pos(),
					"exported field %s.%s is not referenced by %s; encoder/decoder drift silently corrupts replay",
					tn, f.Name(), side)
			}
		}
	}
}

// recvTypeName returns the receiver's named type, or "".
func recvTypeName(info *types.Info, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// cutPrefixName extracts T from a Decode<T> function name.
func cutPrefixName(name string) (string, bool) {
	const p = "Decode"
	if len(name) <= len(p) || name[:len(p)] != p {
		return "", false
	}
	return name[len(p):], true
}

// usesEncodingJSON reports whether the body calls into encoding/json
// (json.Marshal, json.NewEncoder, ...).
func usesEncodingJSON(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "encoding/json" {
			found = true
		}
		return !found
	})
	return found
}

// fieldRefs collects every struct field object selected in the body.
func fieldRefs(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := info.Selections[sel]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				refs[v] = true
			}
		}
		return true
	})
	return refs
}
