package invariants

import (
	"go/ast"
)

// wallclockFuncs are the package time functions that read or schedule
// against the wall clock. Duration arithmetic (time.Duration and the
// unit constants) is deliberately not listed — modelling latencies is
// fine, observing real time is not.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Wallclock forbids wall-clock time outside the simulated time plane.
// The determinism of the simulation layers (simdisk latency charging,
// simnet delivery, the chaos storms' reproducibility) depends on every
// wait being routed through internal/simtime, which gives
// microsecond-precise scaled sleeps. internal/simtime itself, _test.go
// files and the cmd/ harnesses are exempt; any other use needs an
// //mspr:wallclock <reason> directive.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Sleep/After/... outside internal/simtime, tests and cmd/ harnesses",
	Run:  runWallclock,
}

func runWallclock(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		if pkg.ImportPath == "mspr/internal/simtime" || hasPathPrefix(pkg.ImportPath, "mspr/cmd") {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
					return true
				}
				ctx.report(pkg, call.Pos(),
					"wall-clock time.%s outside internal/simtime breaks sim determinism; use simtime or annotate //mspr:wallclock <reason>",
					fn.Name())
				return true
			})
		}
	}
}
