package invariants

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden marks in fixture sources: want "substring".
// Both trailing line comments and /* */ comments carry marks.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// runFixture loads testdata/<fixture>, runs the given analyzers (plus
// the always-on directive hygiene check) and asserts that the findings
// and the fixture's want-marks agree exactly, in both directions.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", fixture)
	pkgs, err := l.Load(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings := Run(l, pkgs, analyzers)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				k := key{abs, i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
	}

	for _, f := range findings {
		k := key{f.File, f.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no finding matching %q", k.file, k.line, w)
		}
	}
}

func TestWallclockFixture(t *testing.T)       { runFixture(t, "wallclock", Wallclock) }
func TestFlushBeforeSendFixture(t *testing.T) { runFixture(t, "flushsend", FlushBeforeSend) }
func TestDVAliasFixture(t *testing.T)         { runFixture(t, "dvalias", DVAlias) }
func TestCodecParityFixture(t *testing.T)     { runFixture(t, "codecparity", CodecParity) }
func TestFailpointNamesFixture(t *testing.T)  { runFixture(t, "failpointnames", FailpointNames) }
func TestWALErrFixture(t *testing.T)          { runFixture(t, "walerr", WALErr) }

// TestDirectivesFixture runs no analyzers at all: the malformed-directive
// findings come from the always-on hygiene pass.
func TestDirectivesFixture(t *testing.T) { runFixture(t, "directives") }

// TestTreeIsClean runs the full suite over the whole module, the same
// gate CI applies: the production tree must have zero findings.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.Root(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(l, pkgs, All()) {
		t.Errorf("%s", f)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("wallclock, walerr")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(\"wallclock, walerr\") = %v, err %v", two, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName(\"nonesuch\") did not fail")
	}
}
