package invariants

import (
	"go/ast"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden marks in fixture sources: want "substring".
// Both trailing line comments and /* */ comments carry marks.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// runFixture loads testdata/<fixture>, runs the given analyzers (plus
// the always-on directive hygiene check) and asserts that the findings
// and the fixture's want-marks agree exactly, in both directions.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", fixture)
	pkgs, err := l.Load(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings := Run(l, pkgs, analyzers)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				k := key{abs, i + 1}
				wants[k] = append(wants[k], m[1])
			}
		}
	}

	for _, f := range findings {
		k := key{f.File, f.Line}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no finding matching %q", k.file, k.line, w)
		}
	}
}

func TestWallclockFixture(t *testing.T)       { runFixture(t, "wallclock", Wallclock) }
func TestFlushBeforeSendFixture(t *testing.T) { runFixture(t, "flushsend", FlushBeforeSend) }
func TestDVAliasFixture(t *testing.T)         { runFixture(t, "dvalias", DVAlias) }
func TestCodecParityFixture(t *testing.T)     { runFixture(t, "codecparity", CodecParity) }
func TestFailpointNamesFixture(t *testing.T)  { runFixture(t, "failpointnames", FailpointNames) }
func TestWALErrFixture(t *testing.T)          { runFixture(t, "walerr", WALErr) }
func TestLockOrderFixture(t *testing.T)       { runFixture(t, "lockorder", LockOrder) }
func TestGuardedByFixture(t *testing.T)       { runFixture(t, "guardedby", GuardedBy) }
func TestPhaseStateFixture(t *testing.T)      { runFixture(t, "phasestate", PhaseState) }
func TestShedBeforeLogFixture(t *testing.T)   { runFixture(t, "shedbeforelog", ShedBeforeLog) }

// TestDirectivesFixture runs no analyzers at all: the malformed-directive
// findings come from the always-on hygiene pass.
func TestDirectivesFixture(t *testing.T) { runFixture(t, "directives") }

// TestTreeIsClean runs the full suite over the whole module, the same
// gate CI applies: the production tree must have zero findings.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(l.Root(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(l, pkgs, All()) {
		t.Errorf("%s", f)
	}
}

// fixtureFor maps an analyzer to its golden-fixture directory; the
// coverage meta-test fails when a newly registered analyzer has no
// entry here (i.e. ships without fixtures).
var fixtureFor = map[string]string{
	"wallclock":      "wallclock",
	"flushed-by":     "flushsend",
	"dvalias":        "dvalias",
	"codecparity":    "codecparity",
	"failpointnames": "failpointnames",
	"walerr":         "walerr",
	"lockorder":      "lockorder",
	"guardedby":      "guardedby",
	"phasestate":     "phasestate",
	"shedbeforelog":  "shedbeforelog",
}

// TestEveryAnalyzerHasCaughtAndSuppressedCases is the fixture-coverage
// gate: every registered analyzer must demonstrate at least one caught
// violation AND at least one //mspr:-suppressed case in its fixture.
// The suppressed case is proven by re-running with suppression disabled
// and requiring strictly more findings from that analyzer.
func TestEveryAnalyzerHasCaughtAndSuppressedCases(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			fixture, ok := fixtureFor[a.Name]
			if !ok {
				t.Fatalf("analyzer %q has no fixture directory registered in fixtureFor", a.Name)
			}
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := l.Load(".", filepath.Join("testdata", fixture))
			if err != nil {
				t.Fatal(err)
			}
			count := func(fs []Finding) int {
				n := 0
				for _, f := range fs {
					if f.Analyzer == a.Name {
						n++
					}
				}
				return n
			}
			caught := count(Run(l, pkgs, []*Analyzer{a}))
			if caught == 0 {
				t.Errorf("fixture %s has no caught case for %s", fixture, a.Name)
			}
			unsuppressed := count(runNoSuppress(l, pkgs, []*Analyzer{a}))
			if unsuppressed <= caught {
				t.Errorf("fixture %s has no suppressed case for %s: %d findings with suppression, %d without",
					fixture, a.Name, caught, unsuppressed)
			}
		})
	}
}

// TestFindingsDeterministic runs the full suite twice over the same
// fixture and requires byte-identical, fully-ordered output: findings
// carry column numbers and sort by (file, line, col, analyzer, message)
// so -json diffs are stable across runs.
func TestFindingsDeterministic(t *testing.T) {
	load := func() (*Loader, []*Package) {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.Load(".", filepath.Join("testdata", "flushsend"))
		if err != nil {
			t.Fatal(err)
		}
		return l, pkgs
	}
	l1, p1 := load()
	l2, p2 := load()
	a := Run(l1, p1, All())
	b := Run(l2, p2, All())
	if len(a) == 0 {
		t.Fatal("fixture produced no findings")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs disagree:\n%v\nvs\n%v", a, b)
	}
	for i, f := range a {
		if f.Col == 0 {
			t.Errorf("finding %d has no column: %s", i, f)
		}
		if i == 0 {
			continue
		}
		p := a[i-1]
		if p.File > f.File ||
			(p.File == f.File && (p.Line > f.Line ||
				(p.Line == f.Line && (p.Col > f.Col ||
					(p.Col == f.Col && (p.Analyzer > f.Analyzer ||
						(p.Analyzer == f.Analyzer && p.Message > f.Message))))))) {
			t.Errorf("findings out of order at %d: %s after %s", i, f, p)
		}
	}
}

// TestLexicalDominanceMissesBranch pins down why the pass went
// path-sensitive: PR 3's lexical check accepts sendMaybeFlushed (a
// flush DOES appear earlier in the source), while the dataflow pass
// reports the branch that skips it.
func TestLexicalDominanceMissesBranch(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(".", filepath.Join("testdata", "flushsend"))
	if err != nil {
		t.Fatal(err)
	}
	var pkg *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, "flushsend") {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("fixture package not loaded")
	}
	var body *ast.BlockStmt
	var emit *ast.CallExpr
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "sendMaybeFlushed" {
				continue
			}
			body = fd.Body
			ast.Inspect(body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isEmitCall(pkg, call) {
					emit = call
				}
				return true
			})
		}
	}
	if body == nil || emit == nil {
		t.Fatal("sendMaybeFlushed emit call not found in fixture")
	}
	if !lexicallyDominated(pkg, body, emit) {
		t.Error("lexical pass should accept sendMaybeFlushed (flush earlier in source)")
	}
	emitLine := l.Fset.Position(emit.Pos()).Line
	found := false
	for _, f := range Run(l, pkgs, []*Analyzer{FlushBeforeSend}) {
		if f.Line == emitLine && strings.Contains(f.Message, "reachable without a flush") {
			found = true
		}
	}
	if !found {
		t.Errorf("path-sensitive pass missed the unflushed branch at line %d", emitLine)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("wallclock, walerr")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(\"wallclock, walerr\") = %v, err %v", two, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName(\"nonesuch\") did not fail")
	}
}
