// Package fixture exercises the dvalias analyzer: a dv.Vector reachable
// from a parameter must be Clone()d before being stored or returned.
package fixture

import "mspr/internal/dv"

type holder struct {
	vec dv.Vector
}

type record struct {
	DV dv.Vector
}

// absorbClean clones before storing: the safe pattern.
func (h *holder) absorbClean(rec record) {
	h.vec = rec.DV.Clone()
}

// absorbAliased stores the caller's vector directly.
func (h *holder) absorbAliased(rec record) {
	h.vec = rec.DV // want "stored without Clone"
}

// passThrough returns a parameter vector to the caller.
func passThrough(v dv.Vector) dv.Vector {
	return v // want "returned without Clone"
}

// borrow is a documented non-retaining exception.
func borrow(v dv.Vector) dv.Vector {
	return v //mspr:dvalias fixture caller reads immediately and must not retain
}

// ownLocal stores a vector the function itself owns: fine.
func (h *holder) ownLocal() {
	own := dv.Vector{}
	h.vec = own
}

var _ = passThrough
var _ = borrow
