// Package fixture exercises directive hygiene: unknown verbs and
// missing arguments are findings in their own right.
package fixture

var ok = 0 //mspr:walerr a well-formed directive parses silently

var bad = 1 /* want "unknown //mspr: directive verb" */ //mspr:frobnicate whatever

var empty = 2 /* want "needs an argument" */ //mspr:walerr
