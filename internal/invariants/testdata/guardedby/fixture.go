// Package fixture exercises the guardedby analyzer: fields annotated
// //mspr:guarded-by <mu> may only be accessed on paths where that mutex
// is held — a must-analysis, so a lock taken on only one branch does
// not bless the access after the join.
package fixture

import "sync"

type account struct {
	mu  sync.Mutex
	bal int //mspr:guarded-by mu
	id  int // unguarded: construction-time constant
}

// deposit holds the lock around the access: clean.
func (a *account) deposit(n int) {
	a.mu.Lock()
	a.bal += n
	a.mu.Unlock()
}

// withdraw uses the deferred-unlock idiom: the lock stays held through
// the body — clean.
func (a *account) withdraw(n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bal -= n
	return a.bal
}

// peek reads without the lock.
func (a *account) peek() int {
	return a.bal // want "account.bal is accessed without holding account.mu"
}

// halfLocked locks on only one branch: the access after the join is not
// protected on every path.
func (a *account) halfLocked(n int, careful bool) {
	if careful {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
	a.bal += n // want "account.bal is accessed without holding account.mu"
}

// releasedTooSoon unlocks before the access.
func (a *account) releasedTooSoon() int {
	a.mu.Lock()
	a.mu.Unlock()
	return a.bal // want "account.bal is accessed without holding account.mu"
}

// balLocked documents that its caller owns the lock: clean.
//
//mspr:holds mu
func (a *account) balLocked() int {
	return a.bal
}

// newAccount touches the field before the object is published — the
// deliberate-exception directive documents why.
func newAccount(id int) *account {
	a := &account{id: id}
	a.bal = 0 //mspr:guardedby fresh object, not yet visible to any other goroutine
	return a
}

// ident reads the unguarded sibling with no lock: clean.
func (a *account) ident() int {
	return a.id
}
