// Package fixture exercises the phasestate analyzer: constants carrying
// //mspr:phase-next form a state machine, and every store must be an
// allowed transition from EVERY state the value may still hold at that
// point — branch and switch conditions narrow the possible set.
package fixture

type phase int

const (
	phaseIdle  phase = iota //mspr:phase-next phaseBusy phaseEnded
	phaseBusy               //mspr:phase-next phaseIdle phaseEnded
	phaseEnded              //mspr:phase-next none
)

type sess struct {
	phase phase
}

// begin guards the store: on the fall-through of the != check the value
// is known phaseIdle, and idle -> busy is declared — clean.
func (s *sess) begin() bool {
	if s.phase != phaseIdle {
		return false
	}
	s.phase = phaseBusy
	return true
}

// finish stores idle with no guard: the value may be phaseEnded, and
// ended is terminal.
func (s *sess) finish() {
	s.phase = phaseIdle // want "store of phaseIdle to a phase that may be phaseEnded"
}

// end is total: every state may legally move to phaseEnded — clean.
func (s *sess) end() {
	s.phase = phaseEnded
}

// switchStep narrows per arm: busy -> idle is declared, and the ended
// arm stores nothing — clean.
func (s *sess) switchStep() {
	switch s.phase {
	case phaseBusy:
		s.phase = phaseIdle
	case phaseEnded:
		// terminal; leave it
	}
}

// resurrect stores busy when the switch arm proves the value is ended.
func (s *sess) resurrect() {
	switch s.phase {
	case phaseEnded:
		s.phase = phaseBusy // want "store of phaseBusy to a phase that may be phaseEnded"
	}
}

// eqGuard uses == with an else: the else path may hold idle or ended,
// and ended -> idle is not declared.
func (s *sess) eqGuard() {
	if s.phase == phaseBusy {
		s.phase = phaseIdle
	} else {
		s.phase = phaseIdle // want "store of phaseIdle to a phase that may be phaseEnded"
	}
}

// callInvalidates: the guard's knowledge dies at a call (the callee may
// store any phase), so the later store is checked against everything.
func (s *sess) callInvalidates() {
	if s.phase != phaseIdle {
		return
	}
	s.mutate()
	s.phase = phaseBusy // want "store of phaseBusy to a phase that may be phaseEnded"
}

func (s *sess) mutate() {
	s.phase = phaseEnded
}

// testReset is a deliberate exception, documented in place.
func (s *sess) testReset() {
	s.phase = phaseIdle //mspr:phasestate fixture: test-only hard reset
}
