// Package fixture exercises the flushed-by analyzer: every message
// emission needs a lexically dominating log flush or an
// //mspr:flushed-by directive, and a function literal is its own scope.
package fixture

import (
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

type node struct {
	log *wal.Log
	ep  *simnet.Endpoint
}

// sendDurable flushes before emitting: the clean path.
func (n *node) sendDurable(to simnet.Addr, msg any, upTo wal.LSN) error {
	if err := n.log.Flush(upTo); err != nil {
		return err
	}
	n.ep.Send(to, msg)
	return nil
}

// sendRaw emits without any flush.
func (n *node) sendRaw(to simnet.Addr, msg any) {
	n.ep.Send(to, msg) // want "Send without a dominating log flush"
}

// sendAsync flushes, but the send runs in a goroutine: the flush does
// not dominate the literal's body.
func (n *node) sendAsync(to simnet.Addr, msg any, upTo wal.LSN) error {
	if err := n.log.Flush(upTo); err != nil {
		return err
	}
	go func() {
		n.ep.Send(to, msg) // want "Send without a dominating log flush"
	}()
	return nil
}

// sendControl is a documented exception: the envelope carries no state.
func (n *node) sendControl(to simnet.Addr, msg any) {
	n.ep.Send(to, msg) //mspr:flushed-by none (fixture control envelope carries no log state)
}
