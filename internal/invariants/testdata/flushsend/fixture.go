// Package fixture exercises the path-sensitive flushed-by analyzer:
// every message emission needs a flush on EVERY control-flow path
// reaching it, or an //mspr:flushed-by directive, and a function
// literal is its own scope.
package fixture

import (
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

type node struct {
	log *wal.Log
	ep  *simnet.Endpoint
}

// sendDurable flushes before emitting: the clean path.
func (n *node) sendDurable(to simnet.Addr, msg any, upTo wal.LSN) error {
	if err := n.log.Flush(upTo); err != nil {
		return err
	}
	n.ep.Send(to, msg)
	return nil
}

// sendRaw emits without any flush.
func (n *node) sendRaw(to simnet.Addr, msg any) {
	n.ep.Send(to, msg) // want "reachable without a flush"
}

// sendAsync flushes, but the send runs in a goroutine: the flush does
// not dominate the literal's body.
func (n *node) sendAsync(to simnet.Addr, msg any, upTo wal.LSN) error {
	if err := n.log.Flush(upTo); err != nil {
		return err
	}
	go func() {
		n.ep.Send(to, msg) // want "reachable without a flush"
	}()
	return nil
}

// sendControl is a documented exception: the envelope carries no state.
func (n *node) sendControl(to simnet.Addr, msg any) {
	n.ep.Send(to, msg) //mspr:flushed-by none (fixture control envelope carries no log state)
}

// sendMaybeFlushed flushes on only one branch. PR 3's lexical pass
// accepted this (a flush appears earlier in the source); the
// path-sensitive pass reports the urgent=false path that reaches the
// send unflushed.
func (n *node) sendMaybeFlushed(to simnet.Addr, msg any, upTo wal.LSN, urgent bool) {
	if urgent {
		_ = n.log.Flush(upTo)
	}
	n.ep.Send(to, msg) // want "reachable without a flush"
}

// sendEitherWay flushes on BOTH branches: no single flush dominates
// lexically-structurally, but every path is covered — clean.
func (n *node) sendEitherWay(to simnet.Addr, msg any, upTo wal.LSN, fast bool) {
	if fast {
		_ = n.log.Flush(upTo)
	} else {
		_ = n.log.Flush(0)
	}
	n.ep.Send(to, msg)
}

// sendDeferredFlush defers the flush: defers run AFTER the body, so the
// send still leaves unflushed state.
func (n *node) sendDeferredFlush(to simnet.Addr, msg any, upTo wal.LSN) {
	defer n.log.Flush(upTo)
	n.ep.Send(to, msg) // want "reachable without a flush"
}

// sendLoop flushes once before a retry loop: the back edge does not
// lose the fact — clean.
func (n *node) sendLoop(to simnet.Addr, msg any, upTo wal.LSN) error {
	if err := n.log.Flush(upTo); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		n.ep.Send(to, msg)
	}
	return nil
}

// sendSwitchGap flushes in all but one switch arm: only the gap is
// reported.
func (n *node) sendSwitchGap(to simnet.Addr, msg any, upTo wal.LSN, kind int) {
	switch kind {
	case 0:
		_ = n.log.Flush(upTo)
	case 1:
		_ = n.log.Flush(upTo)
	default:
	}
	n.ep.Send(to, msg) // want "reachable without a flush"
}
