package fixture

import (
	"testing"
	"time"
)

// Test files are exempt: no finding for this wall-clock read.
func TestExempt(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("clock broken")
	}
}
