// Package fixture exercises the wallclock analyzer: wall-clock reads
// are findings, simtime is the clean path, and //mspr:wallclock
// documents deliberate exceptions.
package fixture

import (
	"time"

	"mspr/internal/simtime"
)

// delays models a latency through the sim plane, then observes real
// time three forbidden ways.
func delays(d time.Duration) time.Duration {
	simtime.Sleep(d)
	start := time.Now()      // want "wall-clock time.Now"
	time.Sleep(d)            // want "wall-clock time.Sleep"
	return time.Since(start) // want "wall-clock time.Since"
}

// annotated is a deliberate, documented exception.
func annotated() time.Time {
	return time.Now() //mspr:wallclock fixture demonstrates a documented exemption
}

var _ = delays
var _ = annotated
