// Package fixture exercises the path-sensitive shedbeforelog analyzer:
// no Busy/Overloaded shed reply may be reachable after a log append in
// the same function — once the receive is durable, recovery replays the
// work, so "overloaded, nothing happened" would be a lie. The analyzer
// is a may-analysis: one branch that appends before the shed is a
// finding even when the common path sheds first.
package fixture

import (
	"mspr/internal/rpc"
	"mspr/internal/simnet"
	"mspr/internal/wal"
)

type srv struct {
	log *wal.Log
	ep  *simnet.Endpoint
}

func (s *srv) reply(to simnet.Addr, rep rpc.Reply) {
	s.ep.Send(to, rep)
}

// shedThenAppend is the clean ordering: the overloaded path answers and
// returns before anything becomes durable.
func (s *srv) shedThenAppend(req rpc.Request, full bool) {
	if full {
		s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq,
			Status: rpc.StatusOverloaded})
		return
	}
	_, _ = s.log.Append(1, req.Arg)
}

// appendThenShed sheds after the receive append: the straight-line
// violation.
func (s *srv) appendThenShed(req rpc.Request) {
	_, _ = s.log.Append(1, req.Arg)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, // want "follows a log append"
		Status: rpc.StatusBusy})
}

// appendMaybeThenShed appends on only one branch; the shed at the join
// is still a finding — SOME path reaches it with durable state behind
// it, which is exactly the window a lexical pass would bless.
func (s *srv) appendMaybeThenShed(req rpc.Request, logged bool) {
	if logged {
		_, _ = s.log.Append(1, req.Arg)
	}
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, // want "follows a log append"
		Status: rpc.StatusOverloaded})
}

// shedEachBranch sheds first on every path that also appends: clean.
func (s *srv) shedEachBranch(req rpc.Request, full bool) {
	if full {
		s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq,
			Status: rpc.StatusOverloaded})
		return
	}
	_, _ = s.log.Append(1, req.Arg)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq,
		Status: rpc.StatusOK, Payload: req.Arg})
}

// deferredAppendThenShed defers the append: defers run at exit, after
// every shed in the body, so the Busy reply precedes the durable effect
// — clean.
func (s *srv) deferredAppendThenShed(req rpc.Request) {
	defer s.log.Append(1, req.Arg)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq,
		Status: rpc.StatusBusy})
}

// bufferedReplyBusy is the documented exception: the request DID execute
// and its reply is buffered; Busy only defers delivery to the duplicate
// resend, so the append behind it is the truth, not a lie.
func (s *srv) bufferedReplyBusy(req rpc.Request) {
	_, _ = s.log.Append(1, req.Arg)
	s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, //mspr:shedbeforelog fixture: the request executed and its reply is buffered; Busy only defers delivery
		Status: rpc.StatusBusy})
}

// statusReadIsNotAShed compares against the constants without emitting
// them: reads of an outcome are not shed sites — clean.
func (s *srv) statusReadIsNotAShed(req rpc.Request, rep rpc.Reply) bool {
	_, _ = s.log.Append(1, req.Arg)
	return rep.Status == rpc.StatusBusy || rep.Status == rpc.StatusOverloaded
}

// shedInLoopAfterAppend: the back edge carries the appended fact into
// the next iteration's shed — a retry loop that appends then sheds on a
// later pass is still a violation.
func (s *srv) shedInLoopAfterAppend(req rpc.Request, tries int) {
	for i := 0; i < tries; i++ {
		if i > 0 {
			s.reply(req.From, rpc.Reply{Session: req.Session, Seq: req.Seq, // want "follows a log append"
				Status: rpc.StatusOverloaded})
			return
		}
		_, _ = s.log.Append(1, req.Arg)
	}
}
