// Package fixture exercises the walerr analyzer: errors from the
// durability layer must be handled or carry //mspr:walerr.
package fixture

import (
	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

type store struct {
	log  *wal.Log
	file *simdisk.File
}

// checked handles every durability error: the clean path.
func (s *store) checked(payload []byte) error {
	lsn, err := s.log.Append(1, payload)
	if err != nil {
		return err
	}
	return s.log.Flush(lsn)
}

// sloppy drops durability errors in every shape the analyzer knows.
func (s *store) sloppy(payload []byte) {
	lsn, _ := s.log.Append(1, payload) // want "error from Log.Append assigned to _"
	_ = s.log.Flush(lsn)               // want "error from Log.Flush assigned to _"
	s.log.WriteAnchor(wal.Anchor{})    // want "error from Log.WriteAnchor result ignored"
	s.log.TruncateHead(0)              // want "error from Log.TruncateHead result ignored"
	defer s.log.Close()                // want "error from Log.Close result ignored"
	s.file.Truncate(0)                 // want "error from File.Truncate result ignored"
}

// bestEffort documents a deliberate discard.
func (s *store) bestEffort() {
	_ = s.file.Truncate(0) //mspr:walerr fixture file is rebuilt from the log on recovery
}
