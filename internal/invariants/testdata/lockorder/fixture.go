// Package fixture exercises the lockorder analyzer: the //mspr:lock-level
// lattice orders acquisitions, and noblock locks forbid blocking
// operations — channel ops, blocking selects, //mspr:blocking roots and
// their transitive callers — while held.
package fixture

import "sync"

type server struct {
	stateMu sync.Mutex //mspr:lock-level 10 noblock
	tableMu sync.Mutex //mspr:lock-level 20
	ch      chan int
}

// ordered acquires in increasing rank: clean.
func (s *server) ordered() {
	s.stateMu.Lock()
	s.tableMu.Lock()
	s.tableMu.Unlock()
	s.stateMu.Unlock()
}

// inverted takes the table lock first, then the state lock: the lattice
// orders stateMu before tableMu.
func (s *server) inverted() {
	s.tableMu.Lock()
	s.stateMu.Lock() // want "acquiring server.stateMu (level 10) while holding a lock of level >= 10"
	s.stateMu.Unlock()
	s.tableMu.Unlock()
}

// reentrant re-acquires the same class: self-deadlock.
func (s *server) reentrant() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.stateMu.Lock() // want "acquiring server.stateMu (level 10) while holding a lock of level >= 10"
	s.stateMu.Unlock()
}

// onePathHolds locks on only one branch: lockorder is a may-analysis,
// so the acquisition after the join is still a finding.
func (s *server) onePathHolds(cond bool) {
	if cond {
		s.tableMu.Lock()
		defer s.tableMu.Unlock()
	}
	s.stateMu.Lock() // want "acquiring server.stateMu"
	s.stateMu.Unlock()
}

// sendUnderLock blocks on a channel while holding the noblock lock.
func (s *server) sendUnderLock(v int) {
	s.stateMu.Lock()
	s.ch <- v // want "channel send while holding noblock lock server.stateMu"
	s.stateMu.Unlock()
}

// recvAfterUnlock releases first: clean.
func (s *server) recvAfterUnlock() int {
	s.stateMu.Lock()
	s.stateMu.Unlock()
	return <-s.ch
}

// waitForever is a declared blocking root.
//
//mspr:blocking fixture stand-in for a log flush
func (s *server) waitForever() {
	<-s.ch
}

// callsBlockingDirect calls the root under the noblock lock.
func (s *server) callsBlockingDirect() {
	s.stateMu.Lock()
	s.waitForever() // want "call to waitForever, which may block, while holding noblock lock"
	s.stateMu.Unlock()
}

// indirection only forwards; it may block transitively.
func (s *server) indirection() {
	s.waitForever()
}

// callsBlockingTransitively reaches the root through a local wrapper:
// the call-graph summary propagates may-block.
func (s *server) callsBlockingTransitively() {
	s.stateMu.Lock()
	s.indirection() // want "call to indirection, which may block, while holding noblock lock"
	s.stateMu.Unlock()
}

// callsAcquirer calls a helper that takes tableMu while already holding
// it: the may-acquire summary catches the indirect re-acquisition.
func (s *server) callsAcquirer() {
	s.tableMu.Lock()
	s.lockedHelper() // want "call to lockedHelper may acquire server.tableMu (level 20)"
	s.tableMu.Unlock()
}

func (s *server) lockedHelper() {
	s.tableMu.Lock()
	s.tableMu.Unlock()
}

// underTable documents that its caller already holds tableMu: acquiring
// the lower-ranked state lock inside is an inversion even though no
// Lock call appears in this body.
//
//mspr:holds tableMu
func (s *server) underTable() {
	s.stateMu.Lock() // want "acquiring server.stateMu (level 10)"
	s.stateMu.Unlock()
}

// selectUnderLock parks on a select with no default while holding the
// noblock lock.
func (s *server) selectUnderLock() {
	s.stateMu.Lock()
	select { // want "blocking select while holding noblock lock server.stateMu"
	case <-s.ch:
	case s.ch <- 0:
	}
	s.stateMu.Unlock()
}

// pollUnderLock uses a default clause: never parks — clean.
func (s *server) pollUnderLock() (v int, ok bool) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	select {
	case v = <-s.ch:
		return v, true
	default:
		return 0, false
	}
}

// shutdownSend is a deliberate exception, documented in place.
func (s *server) shutdownSend(v int) {
	s.stateMu.Lock()
	s.ch <- v //mspr:lockorder fixture: buffered shutdown channel, never contended
	s.stateMu.Unlock()
}
