// Package fixture exercises the codecparity analyzer: every exported
// field of an Encode/Decode record pair must appear in both bodies.
package fixture

import (
	"encoding/binary"
	"encoding/json"
)

// GoodRec round-trips both exported fields: clean.
type GoodRec struct {
	A uint32
	B uint32
}

func (r GoodRec) Encode() []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf, r.A)
	binary.LittleEndian.PutUint32(buf[4:], r.B)
	return buf
}

// DecodeGoodRec parses a GoodRec payload.
func DecodeGoodRec(p []byte) (GoodRec, error) {
	var r GoodRec
	r.A = binary.LittleEndian.Uint32(p)
	r.B = binary.LittleEndian.Uint32(p[4:])
	return r, nil
}

// DriftRec's decoder forgot B: replay would silently zero it.
type DriftRec struct {
	A uint32
	B uint32 // want "not referenced by DecodeDriftRec"
}

func (r DriftRec) Encode() []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf, r.A)
	binary.LittleEndian.PutUint32(buf[4:], r.B)
	return buf
}

// DecodeDriftRec parses a DriftRec payload (incompletely).
func DecodeDriftRec(p []byte) (DriftRec, error) {
	var r DriftRec
	r.A = binary.LittleEndian.Uint32(p)
	return r, nil
}

// CacheRec.Hot is volatile and deliberately kept out of the codec.
type CacheRec struct {
	A   uint32
	Hot bool //mspr:codecparity volatile flag, rebuilt on first access after replay
}

func (r CacheRec) Encode() []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, r.A)
	return buf
}

// DecodeCacheRec parses a CacheRec payload.
func DecodeCacheRec(p []byte) (CacheRec, error) {
	var r CacheRec
	r.A = binary.LittleEndian.Uint32(p)
	return r, nil
}

// ReflectRec goes through encoding/json on both sides: reflection walks
// every field, so the pair is exempt even though no field is named.
type ReflectRec struct {
	A uint32 `json:"a"`
	B string `json:"b"`
}

func (r ReflectRec) Encode() []byte {
	b, _ := json.Marshal(r)
	return b
}

// DecodeReflectRec parses a ReflectRec payload.
func DecodeReflectRec(p []byte) (ReflectRec, error) {
	var r ReflectRec
	err := json.Unmarshal(p, &r)
	return r, err
}
