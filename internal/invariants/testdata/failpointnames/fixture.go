// Package fixture exercises the failpointnames analyzer: one registry
// const block, no literal names at Registry call sites, every constant
// both injected in production and exercised by a test or harness.
package fixture

import "mspr/internal/failpoint"

// The registry block: the package's whole crash surface.
const (
	// FPInjected fires in production and is exercised by the fixture test.
	FPInjected = "fixture.injected"
	// FPDead is declared but no production code ever evaluates it.
	FPDead = "fixture.dead" // want "never referenced at a production inject site"
	// FPQuiet fires in production but nothing exercises it.
	FPQuiet = "fixture.quiet" //mspr:failpointnames fixture demonstrates a suppressed unexercised point
	// FPTapSkip mirrors a behavior-altering tap point (à la
	// core.FPDedupSkip): it never crashes, it reroutes a decision while
	// armed, and it obeys the same registry rules as the crash points.
	FPTapSkip = "fixture.tap.skip"
	// FPTapDead is a tap point that lost its inject site.
	FPTapDead = "fixture.tap.dead" // want "never referenced at a production inject site"
	// FPRotateUntested mirrors a segment-rotation crash point that is
	// injected in production but exercised by no test, storm or harness —
	// a rotation crash window nobody ever drives must trip the analyzer.
	FPRotateUntested = "fixture.rotate.untested" // want "not exercised by any test, chaos storm or cmd/ harness"
)

// FPStray lives outside the registry block.
const FPStray = "fixture.stray" // want "outside the package's registry const block"

func hit(r *failpoint.Registry) {
	r.Eval(FPInjected)
	r.Eval(FPQuiet)
	r.Eval(FPRotateUntested)
	r.Eval(FPStray)
	r.Eval(FPTapSkip)
	r.Eval("fixture.literal") // want "string literal"
}

var _ = hit
