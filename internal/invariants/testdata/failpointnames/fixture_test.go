package fixture

import "testing"

// TestArm exercises the failpoints (referenced here, they count as
// covered by a test; FPQuiet is deliberately absent).
func TestArm(t *testing.T) {
	for _, name := range []string{FPInjected, FPDead, FPStray, FPTapSkip, FPTapDead} {
		if name == "" {
			t.Fatal("empty failpoint name")
		}
	}
}
