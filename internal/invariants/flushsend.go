package invariants

import (
	"go/ast"
	"go/token"
)

// FlushBeforeSend is the paper's pessimism-at-the-boundary rule (§3.1,
// Fig. 7) as a lint: a message that leaves the process — a reply toward
// a client or a cross-domain message — must not be sent before the log
// state it depends on is durable. Concretely, every call that emits a
// message (simnet.Endpoint.Send, core.Server.sendReply) must be
// intra-procedurally preceded by a dominating flush (wal.Log.Flush,
// Server.distributedFlush, Server.flushSessionDV or Server.flushTo) or
// carry an
// //mspr:flushed-by <func> directive naming the wrapper that performs
// (or deliberately omits, "none <reason>") the flush. Function literals
// are separate scopes: a flush before `go func(){ send }()` does not
// dominate the send inside the goroutine.
var FlushBeforeSend = &Analyzer{
	Name: "flushed-by",
	Doc:  "require a dominating log flush (or //mspr:flushed-by) before every message emission",
	Run:  runFlushBeforeSend,
}

func runFlushBeforeSend(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		if pkg.ImportPath == "mspr/internal/simnet" {
			continue // the transport itself; Send's definition, loopbacks
		}
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkFlushScope(ctx, pkg, fs)
			})
		}
	}
}

// checkFlushScope walks one function body (not descending into nested
// literals) and reports emitter calls with no lexically preceding flush.
func checkFlushScope(ctx *Context, pkg *Package, fs funcScope) {
	var flushes []token.Pos
	var emits []*ast.CallExpr
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested literal is its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		switch {
		case isMethod(fn, "mspr/internal/wal", "Log", "Flush"),
			isMethod(fn, "mspr/internal/core", "Server", "distributedFlush"),
			isMethod(fn, "mspr/internal/core", "Server", "flushSessionDV"),
			isMethod(fn, "mspr/internal/core", "Server", "flushTo"):
			flushes = append(flushes, call.Pos())
		case isMethod(fn, "mspr/internal/simnet", "Endpoint", "Send"),
			isMethod(fn, "mspr/internal/core", "Server", "sendReply"):
			emits = append(emits, call)
		}
		return true
	})
	for _, emit := range emits {
		dominated := false
		for _, fp := range flushes {
			if fp < emit.Pos() {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		name := "Send"
		if fn := calleeFunc(pkg.Info, emit); fn != nil {
			name = fn.Name()
		}
		ctx.report(pkg, emit.Pos(),
			"%s without a dominating log flush: flush-before-send pessimism (paper §3.1) requires wal.Log.Flush/distributedFlush first, or //mspr:flushed-by <func>",
			name)
	}
}
