package invariants

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FlushBeforeSend is the paper's pessimism-at-the-boundary rule (§3.1,
// Fig. 7) as a lint: a message that leaves the process — a reply toward
// a client or a cross-domain message — must not be sent before the log
// state it depends on is durable. Concretely, EVERY control-flow path
// reaching a call that emits a message (simnet.Endpoint.Send,
// core.Server.sendReply) must pass through a flush (wal.Log.Flush,
// Server.distributedFlush, Server.flushSessionDV or Server.flushTo), or
// the call must carry an //mspr:flushed-by <func> directive naming the
// wrapper that performs (or deliberately omits, "none <reason>") the
// flush.
//
// PR 3's pass checked this lexically: any flush EARLIER IN THE SOURCE
// blessed the send, so `if cond { flush() }; send()` passed even though
// the cond=false path sends unflushed state. This version runs a
// must-flush forward dataflow over the function's CFG (merge = AND at
// joins), so a branch that skips the flush is a finding, and the
// finding names the unflushed path. A deferred flush does not cover a
// send (defers run after the body). Function literals are separate
// scopes: a flush before `go func(){ send }()` does not dominate the
// send inside the goroutine.
var FlushBeforeSend = &Analyzer{
	Name: "flushed-by",
	Doc:  "require a flush on every path to a message emission (path-sensitive)",
	Run:  runFlushBeforeSend,
}

func runFlushBeforeSend(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		if pkg.ImportPath == "mspr/internal/simnet" {
			continue // the transport itself; Send's definition, loopbacks
		}
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkFlushScope(ctx, pkg, fs)
			})
		}
	}
}

func isFlushCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	return isMethod(fn, "mspr/internal/wal", "Log", "Flush") ||
		isMethod(fn, "mspr/internal/core", "Server", "distributedFlush") ||
		isMethod(fn, "mspr/internal/core", "Server", "flushSessionDV") ||
		isMethod(fn, "mspr/internal/core", "Server", "flushTo")
}

func isEmitCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg.Info, call)
	return isMethod(fn, "mspr/internal/simnet", "Endpoint", "Send") ||
		isMethod(fn, "mspr/internal/core", "Server", "sendReply")
}

// checkFlushScope solves must-flushed over one function body and
// reports emitter calls reachable on an unflushed path.
func checkFlushScope(ctx *Context, pkg *Package, fs funcScope) {
	// Cheap pre-scan: most functions emit nothing.
	emits := false
	inspectNoFuncLit(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEmitCall(pkg, call) {
			emits = true
		}
		return !emits
	})
	if !emits {
		return
	}

	g := buildCFG(fs.body)
	spec := flowSpec[bool]{
		entry: false,
		transfer: func(flushed bool, n ast.Node) bool {
			if flushed {
				return true
			}
			// A defer'd flush runs at return, after any send in the body.
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return flushed
			}
			inspectNode(n, func(sub ast.Node) bool {
				if call, ok := sub.(*ast.CallExpr); ok && isFlushCall(pkg, call) {
					flushed = true
				}
				return true
			})
			return flushed
		},
		merge: func(a, b bool) bool { return a && b },
		equal: func(a, b bool) bool { return a == b },
	}
	in := solve(g, spec)

	eachNodeFact(g, spec, in, func(flushed bool, n ast.Node) {
		if flushed {
			return
		}
		// A deferred emit is still checked, at the defer's position: it
		// runs at exit, so a flush dominating the defer statement is the
		// conservative requirement.
		inspectNode(n, func(sub ast.Node) bool {
			call, ok := sub.(*ast.CallExpr)
			if !ok || !isEmitCall(pkg, call) {
				return true
			}
			name := "Send"
			if fn := calleeFunc(pkg.Info, call); fn != nil {
				name = fn.Name()
			}
			ctx.report(pkg, call.Pos(),
				"%s reachable without a flush%s: flush-before-send pessimism (paper §3.1) requires a flush on every path, or //mspr:flushed-by <func>",
				name, unflushedPath(ctx.Fset, g, in, call))
			return true
		})
	})
}

// unflushedPath reconstructs one witness path from the function entry
// to the offending emit along which no flush executes, rendered as the
// line numbers of the blocks traversed. BFS over blocks whose entry
// fact is still unflushed finds the shortest such path; the emit block
// itself qualifies because the reporting pass saw the fact still false
// at the emit node.
func unflushedPath(fset *token.FileSet, g *cfg, in map[*cfgBlock]bool, emit *ast.CallExpr) string {
	var target *cfgBlock
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			found := false
			inspectNode(n, func(sub ast.Node) bool {
				if sub == emit {
					found = true
				}
				return !found
			})
			if found {
				target = blk
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		return ""
	}
	// Blocks traversable without flushing: entry fact false, and (except
	// for the target, where the emit precedes any later flush) exit fact
	// also false — i.e. the block contains no flush.
	prev := make(map[*cfgBlock]*cfgBlock)
	entry := g.entry()
	queue := []*cfgBlock{entry}
	seen := map[*cfgBlock]bool{entry: true}
	for len(queue) > 0 && prev[target] == nil && target != entry {
		blk := queue[0]
		queue = queue[1:]
		for _, e := range blk.succs {
			if seen[e.to] {
				continue
			}
			if flushed, ok := in[e.to]; !ok || flushed {
				continue
			}
			seen[e.to] = true
			prev[e.to] = blk
			queue = append(queue, e.to)
		}
	}
	if target != entry && prev[target] == nil {
		return ""
	}
	var lines []int
	for blk := target; blk != nil; blk = prev[blk] {
		if len(blk.nodes) > 0 {
			l := fset.Position(blk.nodes[0].Pos()).Line
			if len(lines) == 0 || lines[len(lines)-1] != l {
				lines = append(lines, l)
			}
		}
		if blk == entry {
			break
		}
	}
	if len(lines) == 0 {
		return ""
	}
	parts := make([]string, 0, len(lines))
	for i := len(lines) - 1; i >= 0; i-- {
		parts = append(parts, fmt.Sprintf("%d", lines[i]))
	}
	return " (unflushed path: line " + strings.Join(parts, " -> ") + ")"
}

// lexicallyDominated is PR 3's check, kept as the reference the
// path-sensitive pass is tested against: it reports whether ANY flush
// appears earlier in the source than the emit — blind to branches that
// skip the flush (see TestLexicalDominanceMissesBranch).
func lexicallyDominated(pkg *Package, body *ast.BlockStmt, emit *ast.CallExpr) bool {
	dominated := false
	inspectNoFuncLit(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isFlushCall(pkg, call) && call.Pos() < emit.Pos() {
			dominated = true
		}
		return !dominated
	})
	return dominated
}
