package invariants

import (
	"go/ast"
	"go/types"
)

// GuardedBy checks that struct fields annotated //mspr:guarded-by <mu>
// are only touched on paths where that mutex is held. The recovery
// protocol keeps almost all mutable state behind per-object locks —
// Session.mu over the phase/DV/position bookkeeping, sessionShard.mu
// over the stripe map, wal.Log's five mutexes over disjoint field
// families — and a single unlocked access is a torn read the race
// detector only catches if a test happens to interleave it.
//
// The analysis is a must-held forward dataflow (merge = intersection:
// a field access is safe only if the lock is held on EVERY path to
// it). Lock classes are class-level — x.mu.Lock() proves mu held for
// any instance, which matches the one-owner discipline here and avoids
// alias tracking. A deferred Unlock keeps the lock held through the
// body; //mspr:holds <mu> seeds the entry fact for *Locked-style
// helpers whose caller owns the lock. Composite literals (construction
// before publication) do not select fields and are naturally exempt;
// deliberate unlocked access — the single-threaded analysis scan, a
// freshly created object not yet visible — carries //mspr:guardedby
// <reason>.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "require annotated struct fields to be accessed only under their declared mutex",
	Run:  runGuardedBy,
}

func runGuardedBy(ctx *Context) {
	anns := ctx.anns()
	if len(anns.guardedBy) == 0 {
		return
	}
	for _, pkg := range ctx.Pkgs {
		for _, file := range pkg.Files {
			eachFunc(file, func(fs funcScope) {
				checkGuardedBy(ctx, anns, pkg, fs)
			})
		}
	}
}

func checkGuardedBy(ctx *Context, anns *annotations, pkg *Package, fs funcScope) {
	// Pre-scan: skip functions that never select an annotated field.
	touches := false
	inspectNoFuncLit(fs.body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok {
				if _, guarded := anns.guardedBy[v]; guarded {
					touches = true
				}
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	g := buildCFG(fs.body)
	spec := flowSpec[heldSet]{
		entry:    entryHeldSet(anns, pkg, fs),
		transfer: func(h heldSet, n ast.Node) heldSet { return heldTransfer(pkg, h, n) },
		merge:    heldIntersect,
		equal:    heldEqual,
	}
	in := solve(g, spec)

	reported := make(map[*ast.SelectorExpr]bool)
	eachNodeFact(g, spec, in, func(held heldSet, n ast.Node) {
		inspectNode(n, func(sub ast.Node) bool {
			sel, ok := sub.(*ast.SelectorExpr)
			if !ok || reported[sel] {
				return true
			}
			v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			mu, guarded := anns.guardedBy[v]
			if !guarded || held[mu] {
				return true
			}
			reported[sel] = true
			ctx.report(pkg, sel.Sel.Pos(),
				"%s is accessed without holding %s (//mspr:guarded-by), and the lock is not held on every path here",
				lockName(v), lockName(mu))
			return true
		})
	})
}
