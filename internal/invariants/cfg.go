package invariants

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs over go/ast. The
// flow-sensitive analyzers (flushed-by, lockorder, guardedby,
// phasestate) need path information the lexical passes of PR 3 could
// not see: whether EVERY path to a send passes a flush, which locks are
// held ALONG a path, which phase values can reach a store. Blocks hold
// the statements (and branch conditions) in evaluation order; edges
// carry the condition under which they are taken, so analyzers can
// refine facts per branch (`if se.phase != phaseIdle { return }`
// narrows the false edge to phaseIdle).
//
// The graph is intentionally modest — basic blocks over statements,
// conditions re-checked structurally by the analyzers — but it handles
// the full statement grammar: if/for/range/switch/type-switch/select,
// labeled break/continue/goto, fallthrough, return and panic (both end
// a path without reaching the join, which is what a must-analysis
// wants). Function literals are NOT inlined: each literal is its own
// graph via eachFunc, matching the "a literal is its own scope" rule
// the lexical flushed-by already enforced.

// cfgEdge is one control transfer. cond/negate describe a boolean
// branch (the edge is taken when cond is true, or false if negate).
// tag/cases/notCases describe a switch dispatch: the edge is taken
// when tag equals one of cases (a case clause) or none of notCases
// (the default clause, or the fall-to-join edge of a switch with no
// default). All three are nil for unconditional edges.
type cfgEdge struct {
	to       *cfgBlock
	cond     ast.Expr
	negate   bool
	tag      ast.Expr
	cases    []ast.Expr
	notCases []ast.Expr
}

// cfgBlock is a basic block: statements (or branch-condition
// expressions) in evaluation order, then the outgoing edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []cfgEdge
}

// cfg is one function body's control-flow graph. blocks[0] is the
// entry; exit is the single synthetic exit block (returns, panics and
// falling off the end all reach it). defers collects every deferred
// call in the body — they run at exit, which analyzers treat specially
// (a deferred Unlock keeps the lock held through the body; a deferred
// flush does NOT cover an earlier send).
type cfg struct {
	blocks []*cfgBlock
	exit   *cfgBlock
	defers []*ast.CallExpr
}

func (g *cfg) entry() *cfgBlock { return g.blocks[0] }

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.exit = &cfgBlock{}
	entry := b.newBlock()
	b.cur = entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, cfgEdge{to: b.g.exit})
	}
	b.resolveGotos()
	b.g.blocks = append(b.g.blocks, b.g.exit)
	return b.g
}

// loopFrame tracks the jump targets of one enclosing loop, switch or
// select for break/continue resolution. post is nil for non-loops
// (break-only frames).
type loopFrame struct {
	label      string
	brk, post  *cfgBlock
	isLoop     bool
	switchNext *cfgBlock // fallthrough target inside a switch clause
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g      *cfg
	cur    *cfgBlock // nil after a terminating statement (return, panic, branch)
	frames []loopFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// nextLabel is set by a LabeledStmt so the following loop/switch
	// registers it as its frame label.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from *cfgBlock, e cfgEdge) {
	from.succs = append(from.succs, e)
}

// here returns the current block, starting a fresh unreachable block
// for statements after a terminator (dead code still gets nodes, it
// just has no incoming edges and therefore no facts).
func (b *cfgBuilder) here() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.here()
	blk.nodes = append(blk.nodes, n)
}

func (b *cfgBuilder) resolveGotos() {
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, cfgEdge{to: target})
		} else {
			b.edge(pg.from, cfgEdge{to: b.g.exit}) // broken label: be safe
		}
	}
}

// isPanicCall reports whether the statement is a call to the builtin
// panic (treated as a path terminator, like return).
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.here()
		thenBlk := b.newBlock()
		b.edge(condBlk, cfgEdge{to: thenBlk, cond: s.Cond})
		join := b.newBlock()
		b.cur = thenBlk
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cfgEdge{to: join})
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, cfgEdge{to: elseBlk, cond: s.Cond, negate: true})
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, cfgEdge{to: join})
			}
		} else {
			b.edge(condBlk, cfgEdge{to: join, cond: s.Cond, negate: true})
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		b.edge(b.here(), cfgEdge{to: header})
		if s.Cond != nil {
			header.nodes = append(header.nodes, s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(header, cfgEdge{to: body, cond: s.Cond})
			b.edge(header, cfgEdge{to: exit, cond: s.Cond, negate: true})
		} else {
			b.edge(header, cfgEdge{to: body})
			// No exit edge: `for {}` leaves the loop only via break.
		}
		post := b.newBlock()
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		b.edge(post, cfgEdge{to: header})
		b.labels = ensureLabel(b.labels, label, header)
		b.frames = append(b.frames, loopFrame{label: label, brk: exit, post: post, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cfgEdge{to: post})
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // only the range expression evaluates here; the body
		// gets its own blocks (adding the whole statement would make
		// analyzers re-visit body nodes with the header block's facts)
		header := b.newBlock()
		b.edge(b.here(), cfgEdge{to: header})
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(header, cfgEdge{to: body})
		b.edge(header, cfgEdge{to: exit})
		b.labels = ensureLabel(b.labels, label, header)
		b.frames = append(b.frames, loopFrame{label: label, brk: exit, post: header, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, cfgEdge{to: header})
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		disp := b.here()
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: join})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			blk := b.newBlock()
			b.edge(disp, cfgEdge{to: blk})
			b.cur = blk
			for _, st := range clause.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, cfgEdge{to: join})
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !hasDefaultClause(s.Body) {
			b.edge(disp, cfgEdge{to: join})
		}
		b.cur = join
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // the statement itself is a node (a blocking point);
		// analyzers walk nodes with inspectNode, which does not descend
		// into the comm clauses — those run in their own blocks
		disp := b.here()
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: join})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			if clause.Comm != nil {
				blk.nodes = append(blk.nodes, clause.Comm)
			}
			b.edge(disp, cfgEdge{to: blk})
			b.cur = blk
			for _, st := range clause.Body {
				b.stmt(st)
			}
			if b.cur != nil {
				b.edge(b.cur, cfgEdge{to: join})
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join
	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.nextLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			// A plain goto target: start a new block so the label has a
			// definite entry point.
			target := b.newBlock()
			if b.cur != nil {
				b.edge(b.cur, cfgEdge{to: target})
			}
			b.cur = target
			b.labels = ensureLabel(b.labels, s.Label.Name, target)
			b.stmt(s.Stmt)
		}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.here(), cfgEdge{to: f.brk})
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.here(), cfgEdge{to: f.post})
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.here(), label: s.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			if f := b.topSwitchFrame(); f != nil && f.switchNext != nil {
				b.edge(b.here(), cfgEdge{to: f.switchNext})
			}
			b.cur = nil
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.here(), cfgEdge{to: b.g.exit})
		b.cur = nil
	case *ast.DeferStmt:
		b.add(s)
		b.g.defers = append(b.g.defers, s.Call)
	default:
		b.add(s)
		if isPanicCall(s) {
			b.edge(b.here(), cfgEdge{to: b.g.exit})
			b.cur = nil
		}
	}
}

// buildSwitch handles expression switches, with and without a tag. A
// tagged switch yields refinable edges (tag ∈ cases / tag ∉ notCases);
// a tagless switch treats each single case expression as a boolean
// condition.
func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	disp := b.here()
	join := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cc := range body.List {
		clauses = append(clauses, cc.(*ast.CaseClause))
	}
	// Pre-create the clause bodies so fallthrough can target the next one.
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	var allCases []ast.Expr
	for _, c := range clauses {
		allCases = append(allCases, c.List...)
	}
	hasDefault := false
	for i, c := range clauses {
		if c.List == nil { // default clause
			hasDefault = true
			b.edge(disp, cfgEdge{to: blocks[i], tag: tag, notCases: allCases})
			continue
		}
		if tag != nil {
			b.edge(disp, cfgEdge{to: blocks[i], tag: tag, cases: c.List})
		} else {
			// Tagless: a single case expression is a refinable condition.
			var cond ast.Expr
			if len(c.List) == 1 {
				cond = c.List[0]
			}
			b.edge(disp, cfgEdge{to: blocks[i], cond: cond})
		}
	}
	if !hasDefault {
		b.edge(disp, cfgEdge{to: join, tag: tag, notCases: allCases})
	}
	for i, c := range clauses {
		var next *cfgBlock
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.frames = append(b.frames, loopFrame{label: label, brk: join, switchNext: next})
		b.cur = blocks[i]
		for _, st := range c.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, cfgEdge{to: join})
		}
		b.frames = b.frames[:len(b.frames)-1]
	}
	b.cur = join
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func ensureLabel(m map[string]*cfgBlock, label string, blk *cfgBlock) map[string]*cfgBlock {
	if label == "" {
		return m
	}
	if m == nil {
		m = make(map[string]*cfgBlock)
	}
	m[label] = blk
	return m
}

// topSwitchFrame finds the innermost switch frame (the only kind with
// a fallthrough target), for resolving a fallthrough statement.
func (b *cfgBuilder) topSwitchFrame() *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].switchNext != nil {
			return &b.frames[i]
		}
	}
	return nil
}

// findFrame resolves a break (needLoop=false) or continue
// (needLoop=true) to its enclosing frame, innermost first.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// inspectNoFuncLit walks n in evaluation order without descending into
// function literals (each literal is analyzed as its own scope).
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// inspectNode walks one CFG node the way the dataflow analyzers must:
// skipping function literals AND the comm-clause bodies of a select
// statement, which the CFG has already split into their own blocks (the
// select node itself stays visible as the blocking point).
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(sub ast.Node) bool {
		switch sub.(type) {
		case *ast.FuncLit, *ast.CommClause:
			return false
		}
		return fn(sub)
	})
}
