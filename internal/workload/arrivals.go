package workload

import (
	"math/rand"
	"time"
)

// Open-loop arrival and skewed key-selection generators for saturation
// storms. The paper's experiments (and the closed-loop chaos storms) are
// closed-loop: each actor waits for its reply before issuing the next
// request, so offered load can never exceed capacity and overload never
// happens. An overload storm needs the opposite — an arrival process
// that keeps offering work regardless of completions — plus the skewed
// key popularity (Zipf) under which shared-variable contention and
// adaptive-logging questions actually show up.

// ArrivalParams configures an open-loop bursty arrival process.
type ArrivalParams struct {
	// Rate is the long-run mean arrival rate in arrivals per wall-clock
	// second, independent of Burst.
	Rate float64
	// Burst is the number of arrivals delivered back-to-back per burst;
	// 1 yields a plain Poisson process. Bursts are separated by
	// exponential gaps with mean Burst/Rate, so the long-run rate stays
	// Rate while short windows see Burst-deep spikes.
	Burst int
	// Seed makes the process deterministic.
	Seed int64
}

// Arrivals generates inter-arrival gaps for an open-loop bursty arrival
// process. Not safe for concurrent use: one generator drives one
// arrival loop.
type Arrivals struct {
	p         ArrivalParams
	rng       *rand.Rand
	remaining int // arrivals left in the current burst
}

// NewArrivals returns a deterministic arrival-gap generator. Rate must
// be positive; a Burst below 1 is treated as 1.
func NewArrivals(p ArrivalParams) *Arrivals {
	if p.Rate <= 0 {
		p.Rate = 1
	}
	if p.Burst < 1 {
		p.Burst = 1
	}
	return &Arrivals{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Next returns the wall-clock gap to wait before the next arrival: zero
// within a burst, an exponential inter-burst gap (mean Burst/Rate)
// otherwise.
func (a *Arrivals) Next() time.Duration {
	if a.remaining > 0 {
		a.remaining--
		return 0
	}
	a.remaining = a.p.Burst - 1
	meanGap := float64(a.p.Burst) / a.p.Rate // seconds between bursts
	return time.Duration(a.rng.ExpFloat64() * meanGap * float64(time.Second))
}

// Rate returns the configured long-run arrival rate (arrivals/second).
func (a *Arrivals) Rate() float64 { return a.p.Rate }

// ZipfParams configures skewed key selection.
type ZipfParams struct {
	// Keys is the size of the key space; Next returns values in [0, Keys).
	Keys int
	// Skew is the Zipf exponent s (must exceed 1; larger is more skewed).
	// Values at or below 1 select the 1.2 default, a conventional
	// moderate skew for storage benchmarks.
	Skew float64
	// Seed makes the selection deterministic.
	Seed int64
}

// ZipfKeys selects keys with Zipf-distributed popularity: key 0 is the
// hottest, key Keys-1 the coldest. Not safe for concurrent use.
type ZipfKeys struct {
	z *rand.Zipf
}

// NewZipfKeys returns a deterministic Zipf key selector.
func NewZipfKeys(p ZipfParams) *ZipfKeys {
	if p.Keys < 1 {
		p.Keys = 1
	}
	if p.Skew <= 1 {
		p.Skew = 1.2
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return &ZipfKeys{z: rand.NewZipf(rng, p.Skew, 1, uint64(p.Keys-1))}
}

// Next returns the next key in [0, Keys).
func (k *ZipfKeys) Next() int { return int(k.z.Uint64()) }
