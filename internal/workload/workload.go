// Package workload reproduces the paper's experimental configuration
// (§5.1, Fig. 13) as a reusable system: one end client, MSP1 and MSP2
// hosted on separate simulated machines with dedicated log disks, and the
// two service methods
//
//	ServiceMethod1: read+write SV0; call ServiceMethod2 m times;
//	                read+write SV1; modify 512 B of 8 KB session state
//	ServiceMethod2: read+write SV2; read+write SV3; modify session state
//
// with 100 B request parameters and return values and 128 B shared
// variables. The system can be built in any of the five configurations
// the paper compares (§5.2) and can inject the paper's forced crash: MSP2
// kills itself when MSP1 receives the reply from ServiceMethod2 (§5.4).
package workload

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mspr/internal/baselines"
	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/sdb"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// Mode selects one of the paper's five system configurations (§5.2).
type Mode int

// The five configurations of Fig. 14.
const (
	// LoOptimistic: both MSPs in one service domain; optimistic logging
	// inside, pessimistic logging to the end client.
	LoOptimistic Mode = iota
	// Pessimistic: each MSP in its own service domain; every message
	// exchange logged pessimistically.
	Pessimistic
	// NoLog: no logging or recovery infrastructure.
	NoLog
	// Psession: session state persisted in a local DBMS (two database
	// transactions per request per MSP).
	Psession
	// StateServer: session state held by a state server on another
	// computer (two extra message round trips per request per MSP).
	StateServer
)

// String names the configuration as the paper does.
func (m Mode) String() string {
	switch m {
	case LoOptimistic:
		return "LoOptimistic"
	case Pessimistic:
		return "Pessimistic"
	case NoLog:
		return "NoLog"
	case Psession:
		return "Psession"
	case StateServer:
		return "StateServer"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Params configures a System. NewParams supplies the paper's defaults.
type Params struct {
	Mode      Mode
	TimeScale float64
	// Calls is m: the number of calls to ServiceMethod2 inside
	// ServiceMethod1 (1 in the base experiment, swept in Fig. 14).
	Calls int
	// SessionCkptThreshold is the session checkpointing threshold in log
	// bytes (1 MB default; 0 disables — the NoCp configuration).
	SessionCkptThreshold int64
	// SVCkptEvery is the shared-variable checkpoint threshold in writes.
	SVCkptEvery int
	// BatchFlushTimeout enables batch flushing with this model timeout.
	BatchFlushTimeout time.Duration
	// CrashEvery injects one MSP2 crash per this many end-client requests
	// (0 = none). The crash fires while MSP1 holds ServiceMethod2's
	// reply, exactly as in §5.4, making SE1 an orphan under LoOptimistic.
	CrashEvery int
	// Sizes (paper defaults: 100 B, 8 KB, 512 B, 128 B).
	RequestSize      int
	SessionStateSize int
	SessionWriteSize int
	SharedSize       int
	// Workers is each MSP's thread-pool size.
	Workers int
	// Latencies: client↔MSP1 round trip 3.9 ms, MSP1↔MSP2 3.596 ms.
	ClientRTT time.Duration
	MSPRTT    time.Duration
	// Tap / ClientTap, when non-nil, attach the correctness oracle's
	// observation taps to both MSPs and to the end client (see
	// internal/oracle). Nil (the default) records nothing and costs one
	// nil check per tap site.
	Tap       core.Tap
	ClientTap core.ClientTap
}

// NewParams returns the paper's experimental parameters at the given
// time scale.
func NewParams(mode Mode, timeScale float64) Params {
	return Params{
		Mode:                 mode,
		TimeScale:            timeScale,
		Calls:                1,
		SessionCkptThreshold: 1 << 20,
		SVCkptEvery:          64,
		RequestSize:          100,
		SessionStateSize:     8 << 10,
		SessionWriteSize:     512,
		SharedSize:           128,
		Workers:              32,
		ClientRTT:            3900 * time.Microsecond,
		MSPRTT:               3596 * time.Microsecond,
	}
}

// System is a running instance of the experimental configuration.
type System struct {
	P      Params
	Net    *simnet.Network
	Client *core.Client

	disk1, disk2 *simdisk.Disk
	dom1, dom2   *core.Domain
	cfg1, cfg2   core.Config

	mu   sync.Mutex
	msp1 *core.Server
	msp2 *core.Server

	stateServer *baselines.StateServer
	stateCli1   *baselines.StateClient
	stateCli2   *baselines.StateClient

	requests   atomic.Int64
	crashArmed atomic.Bool
	crashMu    sync.Mutex
	crashes    atomic.Int64
	crashWG    sync.WaitGroup
}

// New builds and starts the system.
func New(p Params) (*System, error) {
	if p.Calls <= 0 {
		p.Calls = 1
	}
	s := &System{P: p}
	s.Net = simnet.New(simnet.Config{OneWay: p.MSPRTT / 2, TimeScale: p.TimeScale})
	s.Net.SetLinkLatency("client", "msp1", p.ClientRTT/2)
	s.Net.SetLinkLatency("msp1", "msp2", p.MSPRTT/2)
	s.disk1 = simdisk.NewDisk(simdisk.DefaultModel(p.TimeScale))
	s.disk2 = simdisk.NewDisk(simdisk.DefaultModel(p.TimeScale))

	switch p.Mode {
	case LoOptimistic:
		s.dom1 = core.NewDomain("dom", p.MSPRTT/2, p.TimeScale)
		s.dom2 = s.dom1
	default:
		s.dom1 = core.NewDomain("dom-msp1", p.MSPRTT/2, p.TimeScale)
		s.dom2 = core.NewDomain("dom-msp2", p.MSPRTT/2, p.TimeScale)
	}

	def1 := s.def1()
	def2 := s.def2()
	switch p.Mode {
	case Psession:
		db1, err := sdb.Open(simdisk.NewDisk(simdisk.DefaultModel(p.TimeScale)), "db1", sdb.Options{})
		if err != nil {
			return nil, err
		}
		db2, err := sdb.Open(simdisk.NewDisk(simdisk.DefaultModel(p.TimeScale)), "db2", sdb.Options{})
		if err != nil {
			return nil, err
		}
		def1 = baselines.WrapPsession(def1, db1)
		def2 = baselines.WrapPsession(def2, db2)
	case StateServer:
		s.stateServer = baselines.NewStateServer("stateserver", s.Net)
		s.stateCli1 = baselines.NewStateClient("msp1-sscli", "stateserver", s.Net, p.TimeScale)
		s.stateCli2 = baselines.NewStateClient("msp2-sscli", "stateserver", s.Net, p.TimeScale)
		def1 = baselines.WrapStateServer(def1, s.stateCli1)
		def2 = baselines.WrapStateServer(def2, s.stateCli2)
	}

	logging := p.Mode == LoOptimistic || p.Mode == Pessimistic
	mkCfg := func(id string, dom *core.Domain, disk *simdisk.Disk, def core.Definition) core.Config {
		cfg := core.NewConfig(id, dom, disk, s.Net, def)
		cfg.Logging = logging
		cfg.SessionCkptThreshold = p.SessionCkptThreshold
		if p.SVCkptEvery > 0 {
			cfg.SVCkptEvery = p.SVCkptEvery
		}
		cfg.BatchFlushTimeout = p.BatchFlushTimeout
		cfg.Workers = p.Workers
		cfg.TimeScale = p.TimeScale
		cfg.Tap = p.Tap
		return cfg
	}
	s.cfg1 = mkCfg("msp1", s.dom1, s.disk1, def1)
	s.cfg2 = mkCfg("msp2", s.dom2, s.disk2, def2)

	var err error
	s.msp2, err = core.Start(s.cfg2)
	if err != nil {
		return nil, err
	}
	s.msp1, err = core.Start(s.cfg1)
	if err != nil {
		return nil, err
	}
	s.Client = core.NewClient("client", s.Net, rpc.DefaultCallOptions(p.TimeScale))
	if p.ClientTap != nil {
		s.Client.SetTap(p.ClientTap)
	}
	return s, nil
}

// pad returns an n-byte value whose first 8 bytes hold v.
func pad(v uint64, n int) []byte {
	b := make([]byte, n)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func val(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// bumpShared reads a shared variable and writes back an incremented
// value of the configured shared size — the "read and write SVx" step.
func (s *System) bumpShared(ctx *core.Ctx, name string) error {
	v, err := ctx.ReadShared(name)
	if err != nil {
		return err
	}
	return ctx.WriteShared(name, pad(val(v)+1, s.P.SharedSize))
}

// touchSessionState modifies SessionWriteSize bytes of the 8 KB session
// state deterministically.
func (s *System) touchSessionState(ctx *core.Ctx) uint64 {
	state := ctx.GetVar("state")
	if len(state) != s.P.SessionStateSize {
		state = make([]byte, s.P.SessionStateSize)
	}
	n := val(ctx.GetVar("reqs")) + 1
	ctx.SetVar("reqs", pad(n, 8))
	off := int((n * uint64(s.P.SessionWriteSize))) % (s.P.SessionStateSize - s.P.SessionWriteSize)
	for i := 0; i < s.P.SessionWriteSize; i++ {
		state[off+i] = byte(n)
	}
	ctx.SetVar("state", state)
	return n
}

// def1 builds MSP1's definition: ServiceMethod1 per Fig. 13.
func (s *System) def1() core.Definition {
	return core.Definition{
		Methods: map[string]core.Handler{
			"method1": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				if err := s.bumpShared(ctx, "sv0"); err != nil {
					return nil, err
				}
				for i := 0; i < s.P.Calls; i++ {
					if _, err := ctx.Call("msp2", "method2", pad(uint64(i), s.P.RequestSize)); err != nil {
						return nil, err
					}
				}
				// §5.4 crash injection point: MSP1 has ServiceMethod2's
				// reply; MSP2 now kills itself, losing its buffered log
				// records — the distributed log flush before reply1 will
				// fail and SE1 becomes an orphan.
				if s.crashArmed.CompareAndSwap(true, false) {
					s.crashWG.Add(1)
					go s.crashAndRestartMSP2()
				}
				if err := s.bumpShared(ctx, "sv1"); err != nil {
					return nil, err
				}
				n := s.touchSessionState(ctx)
				return pad(n, s.P.RequestSize), nil
			},
		},
		Shared: []core.SharedDef{
			{Name: "sv0", Initial: pad(0, s.P.SharedSize)},
			{Name: "sv1", Initial: pad(0, s.P.SharedSize)},
		},
	}
}

// def2 builds MSP2's definition: ServiceMethod2 per Fig. 13.
func (s *System) def2() core.Definition {
	return core.Definition{
		Methods: map[string]core.Handler{
			"method2": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				if err := s.bumpShared(ctx, "sv2"); err != nil {
					return nil, err
				}
				if err := s.bumpShared(ctx, "sv3"); err != nil {
					return nil, err
				}
				n := s.touchSessionState(ctx)
				return pad(n, s.P.RequestSize), nil
			},
		},
		Shared: []core.SharedDef{
			{Name: "sv2", Initial: pad(0, s.P.SharedSize)},
			{Name: "sv3", Initial: pad(0, s.P.SharedSize)},
		},
	}
}

// crashAndRestartMSP2 kills MSP2 (losing its volatile state and buffered
// log records) and restarts it, running full crash recovery.
func (s *System) crashAndRestartMSP2() {
	defer s.crashWG.Done()
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	s.mu.Lock()
	cur := s.msp2
	s.mu.Unlock()
	cur.Crash()
	ns, err := core.Start(s.cfg2)
	if err != nil {
		panic(fmt.Sprintf("workload: restarting msp2: %v", err))
	}
	s.mu.Lock()
	s.msp2 = ns
	s.mu.Unlock()
	s.crashes.Add(1)
}

// NewSession opens a new end-client session with MSP1.
func (s *System) NewSession() *core.ClientSession {
	return s.Client.Session("msp1")
}

// Do issues one end-client request on the session and returns its
// measured wall-clock latency. Crash injection is armed here so the
// crash fires during this request's processing.
func (s *System) Do(cs *core.ClientSession) (time.Duration, error) {
	n := s.requests.Add(1)
	if s.P.CrashEvery > 0 && n%int64(s.P.CrashEvery) == 0 {
		s.crashArmed.Store(true)
	}
	start := time.Now() //mspr:wallclock experiment latencies are measured in real time and rescaled to model time
	_, err := cs.Call("method1", pad(uint64(n), s.P.RequestSize))
	return time.Since(start), err //mspr:wallclock experiment latencies are measured in real time
}

// Crashes returns the number of injected crashes completed.
func (s *System) Crashes() int64 { return s.crashes.Load() }

// MSP1 returns the current MSP1 instance.
func (s *System) MSP1() *core.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.msp1
}

// MSP2 returns the current MSP2 instance (it changes across injected
// crashes).
func (s *System) MSP2() *core.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.msp2
}

// Disks returns the two MSP log disks for I/O statistics.
func (s *System) Disks() (*simdisk.Disk, *simdisk.Disk) { return s.disk1, s.disk2 }

// Close shuts the system down.
func (s *System) Close() {
	s.crashWG.Wait()
	s.mu.Lock()
	m1, m2 := s.msp1, s.msp2
	s.mu.Unlock()
	m1.Crash()
	m2.Crash()
	s.Client.Close()
	if s.stateServer != nil {
		s.stateServer.Close()
	}
	if s.stateCli1 != nil {
		s.stateCli1.Close()
	}
	if s.stateCli2 != nil {
		s.stateCli2.Close()
	}
}
