package workload

import (
	"testing"
	"time"

	"mspr/internal/oracle"
)

func runSystem(t *testing.T, p Params, requests int) *System {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.NewSession()
	for i := 1; i <= requests; i++ {
		lat, err := s.Do(cs)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		_ = lat
	}
	return s
}

func TestAllModesServeRequests(t *testing.T) {
	for _, mode := range []Mode{LoOptimistic, Pessimistic, NoLog, Psession, StateServer} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			s := runSystem(t, NewParams(mode, 0), 10)
			defer s.Close()
		})
	}
}

func TestSessionCounterMonotonic(t *testing.T) {
	s, err := New(NewParams(LoOptimistic, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cs := s.NewSession()
	for i := 1; i <= 20; i++ {
		if _, err := s.Do(cs); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// The 21st request's reply carries the session's request counter.
	lat21Start := time.Now()
	_ = lat21Start
	out, err := cs.Call("method1", pad(0, s.P.RequestSize))
	if err != nil {
		t.Fatal(err)
	}
	if got := val(out); got != 21 {
		t.Fatalf("session counter = %d, want 21 (exactly-once violated)", got)
	}
}

func TestMultipleCallsPerRequest(t *testing.T) {
	p := NewParams(LoOptimistic, 0)
	p.Calls = 4
	s := runSystem(t, p, 5)
	defer s.Close()
}

func TestCrashInjectionLoOptimisticExactlyOnce(t *testing.T) {
	p := NewParams(LoOptimistic, 0)
	p.CrashEvery = 5
	p.SessionCkptThreshold = 16 << 10
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cs := s.NewSession()
	for i := 1; i <= 25; i++ {
		out, err := cs.Call("method1", pad(uint64(i), s.P.RequestSize))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		s.requests.Add(1) // keep Do-equivalent accounting
		if got := val(out); got != uint64(i) {
			t.Fatalf("request %d returned counter %d (exactly-once violated)", i, got)
		}
		if i%5 == 0 {
			s.crashArmed.Store(true)
		}
	}
	s.crashWG.Wait()
	if s.Crashes() == 0 {
		t.Fatal("no crashes were injected")
	}
}

func TestCrashInjectionPessimisticExactlyOnce(t *testing.T) {
	p := NewParams(Pessimistic, 0)
	p.CrashEvery = 6
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cs := s.NewSession()
	for i := 1; i <= 18; i++ {
		lat, err := s.Do(cs)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		_ = lat
	}
	s.crashWG.Wait()
	if s.Crashes() == 0 {
		t.Fatal("no crashes were injected")
	}
	out, err := cs.Call("method1", pad(0, s.P.RequestSize))
	if err != nil {
		t.Fatal(err)
	}
	if got := val(out); got != 19 {
		t.Fatalf("session counter = %d, want 19", got)
	}
}

func TestSharedStateConsistentAfterCrashes(t *testing.T) {
	p := NewParams(LoOptimistic, 0)
	p.CrashEvery = 7
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cs := s.NewSession()
	const n = 21
	for i := 1; i <= n; i++ {
		if _, err := s.Do(cs); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	s.crashWG.Wait()
}

func TestPessimisticUsesMoreFlushesThanLoOptimistic(t *testing.T) {
	lo := runSystem(t, NewParams(LoOptimistic, 0), 20)
	defer lo.Close()
	pe := runSystem(t, NewParams(Pessimistic, 0), 20)
	defer pe.Close()
	d1lo, d2lo := lo.Disks()
	d1pe, d2pe := pe.Disks()
	loWrites := d1lo.Stats().Writes + d2lo.Stats().Writes
	peWrites := d1pe.Stats().Writes + d2pe.Stats().Writes
	if peWrites <= loWrites {
		t.Fatalf("pessimistic flushes (%d) should exceed locally optimistic (%d)", peWrites, loWrites)
	}
	// The paper's count: pessimistic needs 3 flushes per request, locally
	// optimistic 2 (in parallel). Ratio should be roughly 3:2.
	ratio := float64(peWrites) / float64(loWrites)
	if ratio < 1.2 || ratio > 2.0 {
		t.Fatalf("flush ratio %0.2f outside the expected ~1.5 range (lo=%d, pe=%d)", ratio, loWrites, peWrites)
	}
}

func TestNoLogWritesNothing(t *testing.T) {
	s := runSystem(t, NewParams(NoLog, 0), 10)
	defer s.Close()
	d1, d2 := s.Disks()
	if d1.Stats().Writes != 0 || d2.Stats().Writes != 0 {
		t.Fatalf("NoLog wrote to disk: %+v %+v", d1.Stats(), d2.Stats())
	}
}

func TestPsessionSurvivesRestartOfMSP(t *testing.T) {
	// Psession recovers session state from the DB, but provides no
	// exactly-once guarantee — this test only verifies the system keeps
	// serving after requests flow.
	s := runSystem(t, NewParams(Psession, 0), 10)
	defer s.Close()
}

func TestStateServerStoresState(t *testing.T) {
	s := runSystem(t, NewParams(StateServer, 0), 5)
	defer s.Close()
	if s.stateServer.Len() == 0 {
		t.Fatal("state server holds no session state")
	}
}

func TestConcurrentSessions(t *testing.T) {
	p := NewParams(LoOptimistic, 0)
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const sessions = 8
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			cs := s.NewSession()
			for j := 0; j < 10; j++ {
				if _, err := s.Do(cs); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentSessionsWithCrashes(t *testing.T) {
	p := NewParams(LoOptimistic, 0)
	p.CrashEvery = 20
	p.SessionCkptThreshold = 32 << 10
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const sessions = 6
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			cs := s.NewSession()
			for j := 0; j < 15; j++ {
				if _, err := s.Do(cs); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	s.crashWG.Wait()
	if s.Crashes() == 0 {
		t.Fatal("no crashes injected")
	}
}

func TestBatchFlushingServes(t *testing.T) {
	p := NewParams(Pessimistic, 0)
	p.BatchFlushTimeout = 8 * time.Millisecond
	s := runSystem(t, p, 10)
	defer s.Close()
}

// TestOracleCleanUnderCrashes attaches the correctness oracle to the
// paper's experimental system and verifies that a crash-riddled run
// leaves a history all four checkers accept: the recovery
// infrastructure really does hide the injected MSP2 crashes.
func TestOracleCleanUnderCrashes(t *testing.T) {
	rec := oracle.NewRecorder()
	p := NewParams(LoOptimistic, 0)
	p.CrashEvery = 5
	p.SessionCkptThreshold = 16 << 10
	p.Tap = rec
	p.ClientTap = rec
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cs := s.NewSession()
	for i := 1; i <= 25; i++ {
		if _, err := s.Do(cs); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	s.crashWG.Wait()
	if s.Crashes() == 0 {
		t.Fatal("no crashes were injected")
	}
	if rec.Len() == 0 {
		t.Fatal("oracle recorded nothing")
	}
	if vs := rec.Check(); len(vs) != 0 {
		t.Fatalf("oracle violations on a correct system:\n%v", vs)
	}
}
