package workload

import (
	"testing"
	"time"
)

func TestArrivalsDeterministic(t *testing.T) {
	p := ArrivalParams{Rate: 500, Burst: 4, Seed: 42}
	a, b := NewArrivals(p), NewArrivals(p)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("gap %d diverged: %v vs %v", i, ga, gb)
		}
	}
	c := NewArrivals(ArrivalParams{Rate: 500, Burst: 4, Seed: 43})
	same := true
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap sequences")
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	const n = 100000
	a := NewArrivals(ArrivalParams{Rate: 1000, Burst: 8, Seed: 7})
	var total time.Duration
	for i := 0; i < n; i++ {
		total += a.Next()
	}
	// n arrivals at 1000/s should span ~100 s of generated gaps.
	got := total.Seconds()
	if got < 80 || got > 120 {
		t.Fatalf("100k arrivals at rate 1000 spanned %.1fs of gaps; want ~100s", got)
	}
}

func TestArrivalsBurstShape(t *testing.T) {
	const n = 8000
	burst := 8
	a := NewArrivals(ArrivalParams{Rate: 1000, Burst: burst, Seed: 1})
	zeros, positives := 0, 0
	for i := 0; i < n; i++ {
		if g := a.Next(); g == 0 {
			zeros++
		} else {
			positives++
		}
	}
	// Each burst is one positive gap followed by burst-1 zero gaps.
	if want := n / burst; positives != want {
		t.Fatalf("got %d inter-burst gaps, want %d", positives, want)
	}
	if want := n - n/burst; zeros != want {
		t.Fatalf("got %d intra-burst (zero) gaps, want %d", zeros, want)
	}

	// Burst=1 degenerates to a gap before every arrival.
	p := NewArrivals(ArrivalParams{Rate: 1000, Burst: 1, Seed: 1})
	for i := 0; i < 100; i++ {
		if p.Next() == 0 {
			t.Fatal("Burst=1 produced a zero gap")
		}
	}
}

func TestZipfKeysSkewAndDeterminism(t *testing.T) {
	const keys, draws = 64, 20000
	p := ZipfParams{Keys: keys, Skew: 1.2, Seed: 9}
	za, zb := NewZipfKeys(p), NewZipfKeys(p)
	counts := make([]int, keys)
	for i := 0; i < draws; i++ {
		ka, kb := za.Next(), zb.Next()
		if ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
		if ka < 0 || ka >= keys {
			t.Fatalf("key %d out of range [0,%d)", ka, keys)
		}
		counts[ka]++
	}
	// Key 0 must be far hotter than the uniform share, and hotter than
	// the tail key.
	uniform := draws / keys
	if counts[0] < 3*uniform {
		t.Fatalf("key 0 drawn %d times; want > %d (3x uniform share) for a skewed distribution", counts[0], 3*uniform)
	}
	if counts[0] <= counts[keys-1] {
		t.Fatalf("key 0 (%d draws) not hotter than key %d (%d draws)", counts[0], keys-1, counts[keys-1])
	}
}
