// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed. Each experiment has a
// structured result type (asserted on by tests and printed by
// cmd/mspr-bench) and a runner that executes the §5.1 workload in the
// relevant configurations.
//
// Absolute numbers are simulator-scaled; what must (and does) reproduce
// is the paper's shape: orderings, ratios and crossovers. Results are
// reported in model milliseconds (wall time divided by TimeScale).
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mspr/internal/metrics"
	"mspr/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// TimeScale is the model-to-wall-clock factor (default 0.02: the
	// paper's milliseconds become 20 µs ticks).
	TimeScale float64
	// Requests is the number of end-client requests per configuration.
	Requests int
	// Clients is the number of concurrent end-client sessions (most
	// experiments use 1, as the paper does before §5.5).
	Clients int
	// W, when non-nil, receives the paper-style table as text.
	W io.Writer
}

func (o Options) withDefaults() Options {
	if o.TimeScale <= 0 {
		o.TimeScale = 0.02
	}
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.Clients <= 0 {
		o.Clients = 1
	}
	return o
}

func (o Options) printf(format string, args ...any) {
	if o.W != nil {
		fmt.Fprintf(o.W, format, args...)
	}
}

// RunStats summarizes one configuration run.
type RunStats struct {
	MeanMS     float64 // mean response time, model ms
	MaxMS      float64 // maximum response time, model ms
	P95MS      float64
	Throughput float64 // requests per model second
	Crashes    int64
}

// runOne executes the workload with the given parameters and measures
// response time and throughput over o.Requests requests spread across
// o.Clients concurrent sessions.
func runOne(o Options, p workload.Params) (RunStats, error) {
	sys, err := workload.New(p)
	if err != nil {
		return RunStats{}, err
	}
	defer sys.Close()

	var series metrics.Series
	var mu sync.Mutex
	var firstErr error
	perClient := o.Requests / o.Clients
	if perClient == 0 {
		perClient = 1
	}
	start := time.Now() //mspr:wallclock benchmark measures real elapsed time, rescaled to model time for the report
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := sys.NewSession()
			for i := 0; i < perClient; i++ {
				lat, err := sys.Do(cs)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				series.Record(lat)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //mspr:wallclock benchmark measures real elapsed time, rescaled to model time for the report
	if firstErr != nil {
		return RunStats{}, firstErr
	}
	return RunStats{
		MeanMS:     metrics.ModelMS(series.Mean(), p.TimeScale),
		MaxMS:      metrics.ModelMS(series.Max(), p.TimeScale),
		P95MS:      metrics.ModelMS(series.Percentile(95), p.TimeScale),
		Throughput: metrics.ThroughputPerModelSecond(series.Count(), elapsed, p.TimeScale),
		Crashes:    sys.Crashes(),
	}, nil
}

// AllModes lists the five configurations in the paper's Fig. 14 order.
var AllModes = []workload.Mode{
	workload.NoLog,
	workload.LoOptimistic,
	workload.Pessimistic,
	workload.Psession,
	workload.StateServer,
}

// E1Result is one row of the Fig. 14 table.
type E1Result struct {
	Mode  workload.Mode
	Stats RunStats
}

// RunE1 reproduces the Fig. 14 table: average response time of an
// end-client request in each of the five configurations (m = 1).
func RunE1(o Options) ([]E1Result, error) {
	o = o.withDefaults()
	o.printf("E1 — Fig. 14 (table): average response time, m=1, %d requests (model ms)\n", o.Requests)
	o.printf("%-14s %10s %10s %10s\n", "config", "mean", "p95", "max")
	var out []E1Result
	for _, mode := range AllModes {
		p := workload.NewParams(mode, o.TimeScale)
		st, err := runOne(o, p)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", mode, err)
		}
		out = append(out, E1Result{Mode: mode, Stats: st})
		o.printf("%-14s %10.3f %10.3f %10.3f\n", mode, st.MeanMS, st.P95MS, st.MaxMS)
	}
	return out, nil
}

// E2Result is one series of the Fig. 14 chart: response time versus the
// number of calls to ServiceMethod2 inside ServiceMethod1.
type E2Result struct {
	Mode   workload.Mode
	Calls  []int
	MeanMS []float64
}

// RunE2 reproduces the Fig. 14 chart: response time versus number of
// intra-service-domain calls per request for all five configurations.
func RunE2(o Options, calls []int) ([]E2Result, error) {
	o = o.withDefaults()
	if len(calls) == 0 {
		calls = []int{1, 2, 3, 4}
	}
	o.printf("E2 — Fig. 14 (chart): mean response time (model ms) vs calls to ServiceMethod2\n")
	o.printf("%-14s", "config")
	for _, m := range calls {
		o.printf(" %9s", fmt.Sprintf("m=%d", m))
	}
	o.printf("\n")
	var out []E2Result
	for _, mode := range AllModes {
		res := E2Result{Mode: mode, Calls: calls}
		o.printf("%-14s", mode)
		for _, m := range calls {
			p := workload.NewParams(mode, o.TimeScale)
			p.Calls = m
			st, err := runOne(o, p)
			if err != nil {
				return nil, fmt.Errorf("E2 %s m=%d: %w", mode, m, err)
			}
			res.MeanMS = append(res.MeanMS, st.MeanMS)
			o.printf(" %9.3f", st.MeanMS)
		}
		o.printf("\n")
		out = append(out, res)
	}
	return out, nil
}

// E3Result is one point of Fig. 15(a): throughput at a session-
// checkpointing threshold (0 = checkpointing disabled).
type E3Result struct {
	ThresholdBytes int64
	Throughput     float64
}

// RunE3 reproduces Fig. 15(a): throughput versus session checkpointing
// threshold for locally optimistic logging.
func RunE3(o Options, thresholds []int64) ([]E3Result, error) {
	o = o.withDefaults()
	if len(thresholds) == 0 {
		thresholds = []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 0}
	}
	o.printf("E3 — Fig. 15(a): throughput (req/model-s) vs checkpointing threshold, LoOptimistic\n")
	o.printf("%-12s %12s\n", "threshold", "throughput")
	var out []E3Result
	for _, th := range thresholds {
		p := workload.NewParams(workload.LoOptimistic, o.TimeScale)
		p.SessionCkptThreshold = th
		st, err := runOne(o, p)
		if err != nil {
			return nil, fmt.Errorf("E3 threshold=%d: %w", th, err)
		}
		out = append(out, E3Result{ThresholdBytes: th, Throughput: st.Throughput})
		o.printf("%-12s %12.1f\n", thresholdName(th), st.Throughput)
	}
	return out, nil
}

func thresholdName(th int64) string {
	switch {
	case th == 0:
		return "none"
	case th >= 1<<20:
		return fmt.Sprintf("%dMB", th>>20)
	default:
		return fmt.Sprintf("%dKB", th>>10)
	}
}

// E4Result is one point of Fig. 15(b): throughput at a crash rate.
type E4Result struct {
	Mode       workload.Mode
	CrashEvery int // 0 = no crashes
	Throughput float64
	Crashes    int64
}

// RunE4 reproduces Fig. 15(b): throughput versus crash rate (one crash
// per crashEvery requests) for both logging methods, 1 MB threshold.
func RunE4(o Options, crashEvery []int) ([]E4Result, error) {
	o = o.withDefaults()
	if len(crashEvery) == 0 {
		crashEvery = []int{0, 2000, 1500, 1000}
	}
	o.printf("E4 — Fig. 15(b): throughput (req/model-s) vs crash rate, threshold 1MB\n")
	o.printf("%-14s %12s %12s %8s\n", "config", "crash rate", "throughput", "crashes")
	var out []E4Result
	for _, mode := range []workload.Mode{workload.LoOptimistic, workload.Pessimistic} {
		for _, ce := range crashEvery {
			p := workload.NewParams(mode, o.TimeScale)
			p.CrashEvery = ce
			st, err := runOne(o, p)
			if err != nil {
				return nil, fmt.Errorf("E4 %s crashEvery=%d: %w", mode, ce, err)
			}
			out = append(out, E4Result{Mode: mode, CrashEvery: ce, Throughput: st.Throughput, Crashes: st.Crashes})
			o.printf("%-14s %12s %12.1f %8d\n", mode, rateName(ce), st.Throughput, st.Crashes)
		}
	}
	return out, nil
}

func rateName(ce int) string {
	if ce == 0 {
		return "none"
	}
	return fmt.Sprintf("1/%d", ce)
}

// E5Result is the Fig. 16 table: maximum response times.
type E5Result struct {
	// Crash, NoCrash, NoCp for LoOptimistic and Pessimistic (model ms).
	LoCrash, LoNoCrash, LoNoCp float64
	PeCrash, PeNoCrash, PeNoCp float64
	// The three reference configurations without crashes.
	NoLogMax, StateServerMax, PsessionMax float64
}

// RunE5 reproduces the Fig. 16 table: maximum response time with crashes
// (rate as configured), without crashes (1 MB threshold), and without
// checkpointing, plus the three non-logging references.
func RunE5(o Options, crashEvery int) (E5Result, error) {
	o = o.withDefaults()
	if crashEvery <= 0 {
		crashEvery = 1000
	}
	var res E5Result
	type cell struct {
		out        *float64
		mode       workload.Mode
		crashEvery int
		threshold  int64
	}
	cells := []cell{
		{&res.LoCrash, workload.LoOptimistic, crashEvery, 1 << 20},
		{&res.LoNoCrash, workload.LoOptimistic, 0, 1 << 20},
		{&res.LoNoCp, workload.LoOptimistic, 0, 0},
		{&res.PeCrash, workload.Pessimistic, crashEvery, 1 << 20},
		{&res.PeNoCrash, workload.Pessimistic, 0, 1 << 20},
		{&res.PeNoCp, workload.Pessimistic, 0, 0},
		{&res.NoLogMax, workload.NoLog, 0, 0},
		{&res.StateServerMax, workload.StateServer, 0, 0},
		{&res.PsessionMax, workload.Psession, 0, 0},
	}
	for _, c := range cells {
		p := workload.NewParams(c.mode, o.TimeScale)
		p.CrashEvery = c.crashEvery
		p.SessionCkptThreshold = c.threshold
		st, err := runOne(o, p)
		if err != nil {
			return res, fmt.Errorf("E5 %s: %w", c.mode, err)
		}
		*c.out = st.MaxMS
	}
	o.printf("E5 — Fig. 16 (table): maximum response time (model ms)\n")
	o.printf("%-14s %10s %10s %10s\n", "config", "Crash", "NoCrash", "NoCp")
	o.printf("%-14s %10.1f %10.1f %10.1f\n", "LoOptimistic", res.LoCrash, res.LoNoCrash, res.LoNoCp)
	o.printf("%-14s %10.1f %10.1f %10.1f\n", "Pessimistic", res.PeCrash, res.PeNoCrash, res.PeNoCp)
	o.printf("NoLog: %.1f   StateServer: %.1f   Psession: %.1f\n",
		res.NoLogMax, res.StateServerMax, res.PsessionMax)
	return res, nil
}

// E6Result is one point of the Fig. 16 chart: throughput under a fixed
// crash rate at a checkpointing threshold.
type E6Result struct {
	ThresholdBytes int64
	Throughput     float64
}

// RunE6 reproduces the Fig. 16 chart: throughput for a fixed crash rate
// versus checkpointing threshold (LoOptimistic). The paper finds an
// interior optimum (≈512 KB at crash rate 1/1000): low thresholds pay
// checkpoint overhead, high thresholds pay long orphan-recovery replays.
func RunE6(o Options, crashEvery int, thresholds []int64) ([]E6Result, error) {
	o = o.withDefaults()
	if crashEvery <= 0 {
		crashEvery = 1000
	}
	if len(thresholds) == 0 {
		thresholds = []int64{64 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20}
	}
	o.printf("E6 — Fig. 16 (chart): throughput (req/model-s) at crash rate %s vs threshold, LoOptimistic\n",
		rateName(crashEvery))
	o.printf("%-12s %12s\n", "threshold", "throughput")
	var out []E6Result
	for _, th := range thresholds {
		p := workload.NewParams(workload.LoOptimistic, o.TimeScale)
		p.CrashEvery = crashEvery
		p.SessionCkptThreshold = th
		st, err := runOne(o, p)
		if err != nil {
			return nil, fmt.Errorf("E6 threshold=%d: %w", th, err)
		}
		out = append(out, E6Result{ThresholdBytes: th, Throughput: st.Throughput})
		o.printf("%-12s %12.1f\n", thresholdName(th), st.Throughput)
	}
	return out, nil
}

// E7Result is one point of Fig. 17: performance versus number of
// concurrent end clients, with and without batch flushing.
type E7Result struct {
	Mode       workload.Mode
	Batch      bool
	Clients    int
	Throughput float64
	MeanMS     float64
}

// RunE7 reproduces Fig. 17: throughput (left) and response time (right)
// versus the number of end clients for both logging methods, with and
// without batch flushing (timeout ≈ 8 ms, the paper's choice).
func RunE7(o Options, clients []int) ([]E7Result, error) {
	o = o.withDefaults()
	if len(clients) == 0 {
		clients = []int{1, 2, 3, 4, 6, 8}
	}
	o.printf("E7 — Fig. 17: throughput (req/model-s) and mean response time (model ms) vs clients\n")
	o.printf("%-26s", "config")
	for _, c := range clients {
		o.printf(" %15s", fmt.Sprintf("c=%d", c))
	}
	o.printf("\n")
	var out []E7Result
	for _, mode := range []workload.Mode{workload.Pessimistic, workload.LoOptimistic} {
		for _, batch := range []bool{false, true} {
			name := mode.String()
			if batch {
				name += "+Batch"
			} else {
				name += "-NoBatch"
			}
			o.printf("%-26s", name)
			for _, c := range clients {
				p := workload.NewParams(mode, o.TimeScale)
				if batch {
					p.BatchFlushTimeout = 8 * time.Millisecond
				}
				ro := o
				ro.Clients = c
				st, err := runOne(ro, p)
				if err != nil {
					return nil, fmt.Errorf("E7 %s c=%d: %w", name, c, err)
				}
				out = append(out, E7Result{Mode: mode, Batch: batch, Clients: c,
					Throughput: st.Throughput, MeanMS: st.MeanMS})
				o.printf(" %7.1f/%-7.2f", st.Throughput, st.MeanMS)
			}
			o.printf("\n")
		}
	}
	return out, nil
}
