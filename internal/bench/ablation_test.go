package bench

import "testing"

func TestAblationParallelRecoveryBeatsSerial(t *testing.T) {
	skipUnderRace(t)
	// Wall-clock ratios get noisy when the host is also compiling other
	// test binaries, and on a single-CPU host the parallel sweep's only
	// edge is overlapping scaled model-time sleeps, so individual runs
	// land under the threshold a quarter of the time. The property holds
	// in distribution; retry until one clean measurement shows it.
	o := Options{TimeScale: 0.02, Requests: 1}
	var par, ser AblationRecoveryResult
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		par, ser, err = RunAblationParallelRecovery(o, 8, 10)
		if err != nil {
			t.Fatal(err)
		}
		if par.RecoveryMS <= 0 || ser.RecoveryMS <= 0 {
			t.Fatalf("recovery times must be positive: %+v %+v", par, ser)
		}
		// With per-request CPU re-executed during replay, parallel
		// recovery overlaps the sessions and must be clearly faster
		// (§1.3).
		if ser.RecoveryMS >= par.RecoveryMS*1.5 {
			return
		}
	}
	t.Fatalf("parallel recovery (%0.1f ms) should be well under serial (%0.1f ms)",
		par.RecoveryMS, ser.RecoveryMS)
}

func TestAblationSharedSizeGrowsLogVolume(t *testing.T) {
	o := Options{TimeScale: 0.02, Requests: 60}
	rows, err := RunAblationSharedSize(o, []int{128, 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].LogBytesPerOp <= rows[0].LogBytesPerOp {
		t.Fatalf("larger shared values must log more: %0.0f vs %0.0f B/req",
			rows[0].LogBytesPerOp, rows[1].LogBytesPerOp)
	}
}

func TestAblationDomainSizeGrowsCost(t *testing.T) {
	o := Options{TimeScale: 0.02, Requests: 40}
	rows, err := RunAblationDomainSize(o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].MeanMS <= rows[0].MeanMS {
		t.Fatalf("deeper chains must cost more: %0.1f vs %0.1f ms", rows[0].MeanMS, rows[1].MeanMS)
	}
	if rows[1].LogBytesPerOp <= rows[0].LogBytesPerOp {
		t.Fatalf("deeper chains must log more: %0.0f vs %0.0f B/req",
			rows[0].LogBytesPerOp, rows[1].LogBytesPerOp)
	}
}
