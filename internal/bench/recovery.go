package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// The instant-recovery experiment quantifies what the analysis/replay
// split buys: after a crash with N live sessions of unreplayed work, the
// server accepts traffic as soon as the analysis scan finishes, so
// time-to-first-reply costs one log scan plus one on-demand session
// replay and stays roughly flat in N, while the time to drain every
// session back to live is the background sweep's job and grows with N.

// RecoveryPoint is one measured point: latency after a crash at a given
// session count, in model milliseconds.
type RecoveryPoint struct {
	Sessions    int     `json:"sessions"`
	TTFRMS      float64 `json:"ttfr_ms"`       // restart → first served reply
	FullDrainMS float64 `json:"full_drain_ms"` // restart → every session live
}

// RunRecoveryLatency measures TTFR and full-drain time versus session
// count. Every session has requestsPer logged (never-checkpointed)
// requests carrying simulated method CPU, so replay cost is dominated by
// re-execution and the sweep's growth with N is visible.
func RunRecoveryLatency(o Options, counts []int) ([]RecoveryPoint, error) {
	o = o.withDefaults()
	if len(counts) == 0 {
		counts = []int{100, 1000, 10000}
	}
	const (
		requestsPer = 2
		workPer     = 5 * time.Millisecond // model CPU per replayed request
	)
	o.printf("Instant recovery — time-to-first-reply vs session count (%d logged requests/session, model ms)\n", requestsPer)
	o.printf("%-10s %12s %14s\n", "sessions", "TTFR", "full drain")
	var out []RecoveryPoint
	for _, n := range counts {
		p, err := runRecoveryOnce(o, n, requestsPer, workPer)
		if err != nil {
			return nil, fmt.Errorf("recovery sessions=%d: %w", n, err)
		}
		out = append(out, p)
		o.printf("%-10d %12.2f %14.1f\n", p.Sessions, p.TTFRMS, p.FullDrainMS)
	}
	return out, nil
}

func runRecoveryOnce(o Options, sessions, requestsPer int, workPer time.Duration) (RecoveryPoint, error) {
	net := simnet.New(simnet.Config{TimeScale: o.TimeScale})
	disk := simdisk.NewDisk(simdisk.DefaultModel(o.TimeScale))
	dom := core.NewDomain("rec", 0, o.TimeScale)
	def := core.Definition{
		Methods: map[string]core.Handler{
			"step": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				ctx.Work(workPer)
				var n uint64
				if v := ctx.GetVar("n"); len(v) == 8 {
					n = binary.BigEndian.Uint64(v)
				}
				n++
				b := make([]byte, 8)
				binary.BigEndian.PutUint64(b, n)
				ctx.SetVar("n", b)
				return b, nil
			},
		},
	}
	cfg := core.NewConfig("rec-msp", dom, disk, net, def)
	cfg.TimeScale = o.TimeScale
	cfg.SessionCkptThreshold = 1 << 40 // never checkpoint: replay everything
	srv, err := core.Start(cfg)
	if err != nil {
		return RecoveryPoint{}, err
	}
	client := core.NewClient("rec-client", net, rpc.DefaultCallOptions(o.TimeScale))
	defer client.Close()

	probes := make([]*core.ClientSession, sessions)
	errc := make(chan error, sessions)
	for i := range probes {
		probes[i] = client.Session("rec-msp")
		go func(cs *core.ClientSession) {
			for j := 0; j < requestsPer; j++ {
				if _, err := cs.Call("step", nil); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(probes[i])
	}
	for range probes {
		if err := <-errc; err != nil {
			return RecoveryPoint{}, err
		}
	}

	// Clean shutdown keeps all records durable; recovery replays them all.
	if err := srv.Shutdown(); err != nil {
		return RecoveryPoint{}, err
	}
	start := time.Now() //mspr:wallclock benchmark measures real recovery latency, rescaled to model time for the report
	srv, err = core.Start(cfg)
	if err != nil {
		return RecoveryPoint{}, err
	}
	// One request against a pre-crash session: it blocks only on that
	// session's lazy replay; the server reports TTFR from restart.
	if _, err := probes[len(probes)/2].Call("step", nil); err != nil {
		srv.Crash()
		return RecoveryPoint{}, err
	}
	ttfr := srv.TimeToFirstReply()
	for srv.RecoveringSessions() > 0 {
		time.Sleep(100 * time.Microsecond) //mspr:wallclock polling the background sweep, which runs on OS scheduling
	}
	drain := time.Since(start) //mspr:wallclock benchmark measures real recovery latency, rescaled to model time for the report
	srv.Crash()
	return RecoveryPoint{
		Sessions:    sessions,
		TTFRMS:      metrics.ModelMS(ttfr, o.TimeScale),
		FullDrainMS: metrics.ModelMS(drain, o.TimeScale),
	}, nil
}
