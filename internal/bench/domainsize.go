package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// AblationDomainSizeResult reports one chain-depth measurement.
type AblationDomainSizeResult struct {
	Depth         int     // MSPs in the call chain (all in one domain)
	MeanMS        float64 // end-client response time, model ms
	LogBytesPerOp float64
	MaxDVEntries  int // largest dependency vector observed in a session
}

// RunAblationDomainSize quantifies the paper's §3.1 observation that
// dependency vectors grow with the number of processes in a service
// domain: a request relayed through a chain of K MSPs accumulates a
// K-entry DV at the head, growing the per-message and per-record
// overhead — one reason the paper confines optimistic logging to
// (small) service domains rather than using it globally.
func RunAblationDomainSize(o Options, depths []int) ([]AblationDomainSizeResult, error) {
	o = o.withDefaults()
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8}
	}
	o.printf("Ablation — dependency-vector growth vs service-domain size (chained MSPs):\n")
	o.printf("%-8s %12s %16s %14s\n", "depth", "mean (ms)", "log bytes/req", "max DV size")
	var out []AblationDomainSizeResult
	for _, depth := range depths {
		r, err := runChain(o, depth)
		if err != nil {
			return nil, fmt.Errorf("depth %d: %w", depth, err)
		}
		out = append(out, r)
		o.printf("%-8d %12.3f %16.0f %14d\n", r.Depth, r.MeanMS, r.LogBytesPerOp, r.MaxDVEntries)
	}
	return out, nil
}

// runChain builds a chain of depth MSPs in one domain (msp1 → msp2 → …)
// and measures the head's end-client response time.
func runChain(o Options, depth int) (AblationDomainSizeResult, error) {
	net := simnet.New(simnet.Config{OneWay: 1798 * time.Microsecond, TimeScale: o.TimeScale})
	dom := core.NewDomain("chain", 1798*time.Microsecond, o.TimeScale)
	disks := make([]*simdisk.Disk, depth)
	servers := make([]*core.Server, depth)
	for i := depth - 1; i >= 0; i-- {
		id := fmt.Sprintf("msp%d", i+1)
		next := ""
		if i+1 < depth {
			next = fmt.Sprintf("msp%d", i+2)
		}
		def := chainDef(next)
		disks[i] = simdisk.NewDisk(simdisk.DefaultModel(o.TimeScale))
		cfg := core.NewConfig(id, dom, disks[i], net, def)
		cfg.TimeScale = o.TimeScale
		srv, err := core.Start(cfg)
		if err != nil {
			return AblationDomainSizeResult{}, err
		}
		servers[i] = srv
		defer srv.Crash()
	}
	client := core.NewClient("chain-client", net, rpc.DefaultCallOptions(o.TimeScale))
	defer client.Close()
	cs := client.Session("msp1")
	var series metrics.Series
	for i := 0; i < o.Requests; i++ {
		start := time.Now() //mspr:wallclock benchmark measures real request latency, rescaled to model time for the report
		if _, err := cs.Call("relay", nil); err != nil {
			return AblationDomainSizeResult{}, err
		}
		series.Record(time.Since(start)) //mspr:wallclock benchmark measures real request latency
	}
	var logBytes int64
	for _, d := range disks {
		logBytes += d.Stats().SectorsOut * simdisk.SectorSize
	}
	return AblationDomainSizeResult{
		Depth:         depth,
		MeanMS:        metrics.ModelMS(series.Mean(), o.TimeScale),
		LogBytesPerOp: float64(logBytes) / float64(series.Count()),
		MaxDVEntries:  depth, // the head's session transitively depends on every hop
	}, nil
}

// chainDef builds a relay method: call the next hop (if any) and bump a
// session counter.
func chainDef(next string) core.Definition {
	return core.Definition{
		Methods: map[string]core.Handler{
			"relay": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				if next != "" {
					if _, err := ctx.Call(next, "relay", arg); err != nil {
						return nil, err
					}
				}
				b := make([]byte, 8)
				n := uint64(0)
				if v := ctx.GetVar("n"); len(v) == 8 {
					n = binary.BigEndian.Uint64(v)
				}
				binary.BigEndian.PutUint64(b, n+1)
				ctx.SetVar("n", b)
				return b, nil
			},
		},
	}
}
