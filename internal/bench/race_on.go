//go:build race

package bench

// raceEnabled reports that the race detector is active: its 5-20×
// per-operation overhead adds real milliseconds to every simulated
// request, swamping the few-model-ms margins the fine-grained timing
// shape tests assert on. Those tests skip themselves under -race (the
// functional suites all still run).
const raceEnabled = true
