package bench

import (
	"strings"
	"testing"

	"mspr/internal/workload"
)

// Shape tests: run each experiment small and assert the paper's
// qualitative results (orderings and trends), which must hold at any
// scale. Margins are generous — the simulator shares one CPU with the
// test harness.

func opts() Options {
	return Options{TimeScale: 0.02, Requests: 150}
}

func modeStats(t *testing.T, rows []E1Result, mode workload.Mode) RunStats {
	t.Helper()
	for _, r := range rows {
		if r.Mode == mode {
			return r.Stats
		}
	}
	t.Fatalf("mode %v missing from results", mode)
	return RunStats{}
}

// skipUnderRace skips timing-shape assertions whose margins are smaller
// than the race detector's per-request overhead.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("fine-grained timing shapes are unreliable under -race")
	}
}

func TestE1Ordering(t *testing.T) {
	skipUnderRace(t)
	var sb strings.Builder
	o := opts()
	o.W = &sb
	rows, err := RunE1(o)
	if err != nil {
		t.Fatal(err)
	}
	nolog := modeStats(t, rows, workload.NoLog).MeanMS
	lo := modeStats(t, rows, workload.LoOptimistic).MeanMS
	pe := modeStats(t, rows, workload.Pessimistic).MeanMS
	ps := modeStats(t, rows, workload.Psession).MeanMS
	ss := modeStats(t, rows, workload.StateServer).MeanMS
	if !(nolog < lo && nolog < pe && nolog < ps && nolog < ss) {
		t.Fatalf("NoLog (%0.1f) must be fastest: lo=%0.1f pe=%0.1f ps=%0.1f ss=%0.1f", nolog, lo, pe, ps, ss)
	}
	if lo >= pe {
		t.Fatalf("LoOptimistic (%0.1f) must beat Pessimistic (%0.1f) — the paper's headline result", lo, pe)
	}
	if pe >= ps {
		t.Fatalf("Pessimistic (%0.1f) must beat Psession (%0.1f) at m=1", pe, ps)
	}
	if ss >= lo {
		t.Fatalf("StateServer (%0.1f) must beat LoOptimistic (%0.1f) at m=1 (paper Fig. 14)", ss, lo)
	}
	if !strings.Contains(sb.String(), "LoOptimistic") {
		t.Fatal("table output missing")
	}
}

func TestE2Slopes(t *testing.T) {
	skipUnderRace(t)
	o := opts()
	o.Requests = 100
	rows, err := RunE2(o, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	slope := func(mode workload.Mode) float64 {
		for _, r := range rows {
			if r.Mode == mode {
				return (r.MeanMS[1] - r.MeanMS[0]) / 2
			}
		}
		t.Fatalf("mode %v missing", mode)
		return 0
	}
	loSlope := slope(workload.LoOptimistic)
	peSlope := slope(workload.Pessimistic)
	// Pessimistic pays two extra flushes (≈16 model ms) per call; locally
	// optimistic only the round trip (≈4 ms).
	if peSlope < loSlope*1.5 {
		t.Fatalf("pessimistic slope %0.1f must far exceed locally optimistic slope %0.1f", peSlope, loSlope)
	}
}

func TestE3CheckpointingCostsLittle(t *testing.T) {
	o := opts()
	rows, err := RunE3(o, []int64{64 << 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	small, none := rows[0].Throughput, rows[1].Throughput
	if small <= 0 || none <= 0 {
		t.Fatalf("throughputs must be positive: %0.1f, %0.1f", small, none)
	}
	// Even an aggressive 64 KB threshold costs only a modest fraction.
	if small < none*0.6 {
		t.Fatalf("64KB checkpointing too costly: %0.1f vs %0.1f without", small, none)
	}
}

func TestE4CrashesInjected(t *testing.T) {
	o := opts()
	o.Requests = 120
	rows, err := RunE4(o, []int{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("%v crashEvery=%d: zero throughput", r.Mode, r.CrashEvery)
		}
		if r.CrashEvery > 0 && r.Crashes == 0 {
			t.Fatalf("%v: no crashes injected at rate 1/%d", r.Mode, r.CrashEvery)
		}
	}
	// LoOptimistic beats Pessimistic with and without crashes.
	if rows[0].Throughput <= rows[2].Throughput {
		t.Fatalf("LoOptimistic (%0.1f) must out-throughput Pessimistic (%0.1f)",
			rows[0].Throughput, rows[2].Throughput)
	}
}

func TestE5CrashDominatesMax(t *testing.T) {
	// Maximum response time is inherently noisy on a shared host (a
	// single OS scheduling hiccup lands in the max); allow one retry.
	o := opts()
	o.Requests = 120
	var lastErr string
	for attempt := 0; attempt < 2; attempt++ {
		res, err := RunE5(o, 40)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case res.LoCrash <= res.LoNoCrash:
			lastErr = "crash max must exceed no-crash max (LoOptimistic)"
		case res.PeCrash <= res.PeNoCrash:
			lastErr = "crash max must exceed no-crash max (Pessimistic)"
		default:
			return
		}
	}
	t.Fatal(lastErr)
}

func TestE6RunsAllThresholds(t *testing.T) {
	o := opts()
	o.Requests = 100
	rows, err := RunE6(o, 25, []int64{64 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Throughput <= 0 || rows[1].Throughput <= 0 {
		t.Fatalf("unexpected results: %+v", rows)
	}
}

func TestE7MultiClientScales(t *testing.T) {
	// Concurrency scaling needs spare CPU; the race detector consumes it.
	skipUnderRace(t)
	o := opts()
	o.Requests = 160
	rows, err := RunE7(o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	find := func(mode workload.Mode, batch bool, clients int) E7Result {
		for _, r := range rows {
			if r.Mode == mode && r.Batch == batch && r.Clients == clients {
				return r
			}
		}
		t.Fatalf("missing result %v batch=%v c=%d", mode, batch, clients)
		return E7Result{}
	}
	// More clients must increase throughput for both logging methods.
	lo1 := find(workload.LoOptimistic, false, 1)
	lo4 := find(workload.LoOptimistic, false, 4)
	if lo4.Throughput <= lo1.Throughput {
		t.Fatalf("LoOptimistic throughput did not scale: %0.1f → %0.1f", lo1.Throughput, lo4.Throughput)
	}
	pe1 := find(workload.Pessimistic, false, 1)
	pe4 := find(workload.Pessimistic, false, 4)
	if pe4.Throughput <= pe1.Throughput {
		t.Fatalf("Pessimistic throughput did not scale: %0.1f → %0.1f", pe1.Throughput, pe4.Throughput)
	}
	// LoOptimistic stays ahead at 4 clients.
	if lo4.Throughput <= pe4.Throughput {
		t.Fatalf("LoOptimistic (%0.1f) must out-throughput Pessimistic (%0.1f) at 4 clients",
			lo4.Throughput, pe4.Throughput)
	}
}
