package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out beyond the
// paper's own tables: parallel session recovery (§1.3 "recovery
// parallelism") and the value-logging overhead's dependence on shared-
// state size (§3.3 assumes shared state is small and infrequently
// accessed).

// AblationRecoveryResult reports one recovery-time measurement.
type AblationRecoveryResult struct {
	Serial     bool
	Sessions   int
	RecoveryMS float64 // model ms from restart until every session is live
}

// RunAblationRecovery measures crash-recovery time for an MSP with many
// active sessions, comparing parallel session replay against a serial
// ablation. Each session has logged (unreplayed) work consisting of
// shared-variable reads and simulated method CPU, so parallel replay can
// overlap the re-execution of different sessions.
func RunAblationRecovery(o Options, sessions, requestsPer int, workPerRequest time.Duration, serial bool) (AblationRecoveryResult, error) {
	o = o.withDefaults()
	net := simnet.New(simnet.Config{TimeScale: o.TimeScale})
	disk := simdisk.NewDisk(simdisk.DefaultModel(o.TimeScale))
	dom := core.NewDomain("abl", 0, o.TimeScale)
	def := core.Definition{
		Methods: map[string]core.Handler{
			"step": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				v, err := ctx.ReadShared("sv")
				if err != nil {
					return nil, err
				}
				ctx.Work(workPerRequest)
				n := binary.BigEndian.Uint64(v) + 1
				b := make([]byte, 8)
				binary.BigEndian.PutUint64(b, n)
				if err := ctx.WriteShared("sv", b); err != nil {
					return nil, err
				}
				ctx.SetVar("n", b)
				return b, nil
			},
		},
		Shared: []core.SharedDef{{Name: "sv", Initial: make([]byte, 8)}},
	}
	cfg := core.NewConfig("abl-msp", dom, disk, net, def)
	cfg.TimeScale = o.TimeScale
	cfg.SessionCkptThreshold = 1 << 40 // never checkpoint: replay everything
	cfg.SerialRecovery = serial
	srv, err := core.Start(cfg)
	if err != nil {
		return AblationRecoveryResult{}, err
	}
	client := core.NewClient("abl-client", net, rpc.DefaultCallOptions(o.TimeScale))
	defer client.Close()

	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			cs := client.Session("abl-msp")
			for j := 0; j < requestsPer; j++ {
				if _, err := cs.Call("step", nil); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errc; err != nil {
			return AblationRecoveryResult{}, err
		}
	}

	// Clean shutdown keeps all records durable; recovery replays them all.
	if err := srv.Shutdown(); err != nil {
		return AblationRecoveryResult{}, err
	}
	start := time.Now() //mspr:wallclock benchmark measures real recovery time, rescaled to model time for the report
	srv, err = core.Start(cfg)
	if err != nil {
		return AblationRecoveryResult{}, err
	}
	for srv.RecoveringSessions() > 0 {
		time.Sleep(100 * time.Microsecond) //mspr:wallclock polling the background replay, which runs on OS scheduling
	}
	elapsed := time.Since(start) //mspr:wallclock benchmark measures real recovery time, rescaled to model time for the report
	srv.Crash()
	return AblationRecoveryResult{
		Serial:     serial,
		Sessions:   sessions,
		RecoveryMS: metrics.ModelMS(elapsed, o.TimeScale),
	}, nil
}

// RunAblationParallelRecovery runs the parallel-vs-serial comparison and
// prints both recovery times.
func RunAblationParallelRecovery(o Options, sessions, requestsPer int) (parallel, serial AblationRecoveryResult, err error) {
	o = o.withDefaults()
	const work = 2 * time.Millisecond
	parallel, err = RunAblationRecovery(o, sessions, requestsPer, work, false)
	if err != nil {
		return
	}
	serial, err = RunAblationRecovery(o, sessions, requestsPer, work, true)
	if err != nil {
		return
	}
	o.printf("Ablation — parallel session recovery (%d sessions × %d logged requests):\n", sessions, requestsPer)
	o.printf("  parallel recovery: %10.1f model ms\n", parallel.RecoveryMS)
	o.printf("  serial recovery:   %10.1f model ms (%.1fx slower)\n",
		serial.RecoveryMS, serial.RecoveryMS/parallel.RecoveryMS)
	return parallel, serial, nil
}

// AblationSharedSizeResult reports value-logging cost at one shared-
// variable size.
type AblationSharedSizeResult struct {
	SharedBytes   int
	MeanMS        float64
	LogBytesPerOp float64
}

// RunAblationSharedSize sweeps the shared-variable size to show the
// value-logging trade-off: with the paper's small shared state the
// overhead is modest; as values grow, logging every read and write by
// value becomes expensive — which is why value logging suits the
// middleware regime (§3.3).
func RunAblationSharedSize(o Options, sizes []int) ([]AblationSharedSizeResult, error) {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{128, 1 << 10, 8 << 10, 32 << 10}
	}
	o.printf("Ablation — value logging vs shared-state size (LoOptimistic):\n")
	o.printf("%-12s %12s %16s\n", "shared size", "mean (ms)", "log bytes/req")
	var out []AblationSharedSizeResult
	for _, size := range sizes {
		p := workload.NewParams(workload.LoOptimistic, o.TimeScale)
		p.SharedSize = size
		sys, err := workload.New(p)
		if err != nil {
			return nil, err
		}
		d1, d2 := sys.Disks()
		cs := sys.NewSession()
		var mean time.Duration
		for i := 0; i < o.Requests; i++ {
			lat, err := sys.Do(cs)
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("shared size %d: %w", size, err)
			}
			mean += lat
		}
		mean /= time.Duration(o.Requests)
		bytesPerOp := float64((d1.Stats().SectorsOut+d2.Stats().SectorsOut)*simdisk.SectorSize) / float64(o.Requests)
		sys.Close()
		r := AblationSharedSizeResult{
			SharedBytes:   size,
			MeanMS:        metrics.ModelMS(mean, o.TimeScale),
			LogBytesPerOp: bytesPerOp,
		}
		out = append(out, r)
		o.printf("%-12d %12.3f %16.0f\n", size, r.MeanMS, r.LogBytesPerOp)
	}
	return out, nil
}
