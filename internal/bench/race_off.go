//go:build !race

package bench

// raceEnabled is false without the race detector; see race_on.go.
const raceEnabled = false
