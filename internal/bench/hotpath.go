package bench

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/workload"
)

// HotpathPoint is one measurement of the request serve path: a logging
// configuration at a worker-pool size, driven by one concurrent client
// per worker. Alongside throughput and latency it reports allocations
// per request — the whole process's allocation delta (client, server and
// simulator combined) divided by the requests served, so it tracks the
// serve path's allocation diet across PRs as long as the harness itself
// stays put.
type HotpathPoint struct {
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Throughput  float64 `json:"throughput_req_per_model_s"`
	P50MS       float64 `json:"p50_model_ms"`
	P95MS       float64 `json:"p95_model_ms"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// HotpathModes are the configurations tracked by the hot-path trajectory:
// the no-recovery floor and the paper's two logging methods.
var HotpathModes = []workload.Mode{workload.NoLog, workload.LoOptimistic, workload.Pessimistic}

// RunHotpath measures every hot-path configuration at each worker-pool
// size (default 8 and 32) and returns the points for BENCH_hotpath.json.
func RunHotpath(o Options, workers []int) ([]HotpathPoint, error) {
	o = o.withDefaults()
	if len(workers) == 0 {
		workers = []int{8, 32}
	}
	o.printf("Hotpath — serve-path throughput/latency/allocations, %d requests per point\n", o.Requests)
	o.printf("%-14s %8s %12s %10s %10s %12s %12s\n",
		"config", "workers", "throughput", "p50", "p95", "allocs/op", "bytes/op")
	var out []HotpathPoint
	for _, mode := range HotpathModes {
		for _, w := range workers {
			p := workload.NewParams(mode, o.TimeScale)
			p.Workers = w
			pt, err := runHotpathPoint(o, p, w)
			if err != nil {
				return nil, fmt.Errorf("hotpath %s w=%d: %w", mode, w, err)
			}
			pt.Mode = mode.String()
			out = append(out, pt)
			o.printf("%-14s %8d %12.1f %10.3f %10.3f %12.1f %12.1f\n",
				mode, w, pt.Throughput, pt.P50MS, pt.P95MS, pt.AllocsPerOp, pt.BytesPerOp)
		}
	}
	return out, nil
}

// ServePathAllocs isolates the allocation cost of the request serve path
// itself: one MSP, one serial end client, TimeScale 0, a trivial
// session-variable method — the same environment as the core package's
// request benchmarks, so the numbers line up with `go test -bench
// BenchmarkRequestNoTap ./internal/core`. This is the figure the
// allocation diet is judged against; the workload-level points above
// include the full two-MSP §5.1 request and the simulator around it.
type ServePathAllocs struct {
	Mode        string  `json:"mode"` // NoLog or LoOptimistic (logging on)
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// RunServePathAllocs measures serve-path allocations per request with
// logging off (NoLog) and on (LoOptimistic single-MSP serve path: logged
// receive, group-commit flush before the end-client reply).
func RunServePathAllocs(o Options) ([]ServePathAllocs, error) {
	o = o.withDefaults()
	o.printf("Serve path — single-MSP per-request allocations (serial client, TimeScale 0)\n")
	o.printf("%-14s %12s %12s\n", "config", "allocs/op", "bytes/op")
	var out []ServePathAllocs
	for _, mode := range []struct {
		name    string
		logging bool
	}{{"NoLog", false}, {"LoOptimistic", true}} {
		sp, err := runServePath(o, mode.logging)
		if err != nil {
			return nil, fmt.Errorf("serve path %s: %w", mode.name, err)
		}
		sp.Mode = mode.name
		out = append(out, sp)
		o.printf("%-14s %12.1f %12.1f\n", sp.Mode, sp.AllocsPerOp, sp.BytesPerOp)
	}
	return out, nil
}

func runServePath(o Options, logging bool) (ServePathAllocs, error) {
	net := simnet.New(simnet.Config{TimeScale: 0})
	dom := core.NewDomain("bench", 0, 0)
	def := core.Definition{Methods: map[string]core.Handler{
		"inc": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
			b := make([]byte, 8)
			n := uint64(0)
			if v := ctx.GetVar("n"); len(v) == 8 {
				n = binary.BigEndian.Uint64(v)
			}
			binary.BigEndian.PutUint64(b, n+1)
			ctx.SetVar("n", b)
			return b, nil
		},
	}}
	cfg := core.NewConfig("sut", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), net, def)
	cfg.Logging = logging
	srv, err := core.Start(cfg)
	if err != nil {
		return ServePathAllocs{}, err
	}
	defer srv.Crash()
	client := core.NewClient("bench-client", net, rpc.DefaultCallOptions(0))
	defer client.Close()
	sess := client.Session("sut")

	for i := 0; i < 64; i++ { // warm pools and per-session structures
		if _, err := sess.Call("inc", nil); err != nil {
			return ServePathAllocs{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < o.Requests; i++ {
		if _, err := sess.Call("inc", nil); err != nil {
			return ServePathAllocs{}, err
		}
	}
	runtime.ReadMemStats(&after)
	return ServePathAllocs{
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(o.Requests),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(o.Requests),
	}, nil
}

// runHotpathPoint drives one configuration with as many concurrent client
// sessions as the server has workers, bracketing the request loop with
// memory-statistics reads for the allocation figures.
func runHotpathPoint(o Options, p workload.Params, w int) (HotpathPoint, error) {
	sys, err := workload.New(p)
	if err != nil {
		return HotpathPoint{}, err
	}
	defer sys.Close()
	clients := w
	perClient := o.Requests / clients
	if perClient == 0 {
		perClient = 1
	}
	total := perClient * clients

	// Warm-up: fill the buffer pools and grow the per-session structures
	// so the bracket below measures steady state, not first-touch growth.
	warm := sys.NewSession()
	for i := 0; i < 32; i++ {
		if _, err := sys.Do(warm); err != nil {
			return HotpathPoint{}, err
		}
	}

	var series metrics.Series
	var mu sync.Mutex
	var firstErr error
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //mspr:wallclock benchmark measures real elapsed time, rescaled to model time for the report
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := sys.NewSession()
			for i := 0; i < perClient; i++ {
				lat, err := sys.Do(cs)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				series.Record(lat)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) //mspr:wallclock benchmark measures real elapsed time, rescaled to model time for the report
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		return HotpathPoint{}, firstErr
	}
	return HotpathPoint{
		Workers:     w,
		Clients:     clients,
		Requests:    total,
		Throughput:  metrics.ThroughputPerModelSecond(series.Count(), elapsed, p.TimeScale),
		P50MS:       metrics.ModelMS(series.Percentile(50), p.TimeScale),
		P95MS:       metrics.ModelMS(series.Percentile(95), p.TimeScale),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(total),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(total),
	}, nil
}
