// Package sdb is a small durable key-value store with journalled
// transactions. It stands in for the "local DBMS" of the paper's
// Psession baseline configuration (§5.2), in which the web server
// persists session state in a database with one read transaction and one
// write transaction per request — the cost structure the experiments
// compare log-based recovery against.
//
// Commits journal their writes and sync before returning; the journal is
// replayed on open, and compacted into a snapshot when it grows large.
// Disk costs are charged to the backing simulated disk: a read
// transaction charges the sectors it reads, a commit charges a synced
// journal write (which, on the paper's disk model, includes the expected
// random-seek component — the dominant cost of Psession).
package sdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sync"

	"mspr/internal/failpoint"
	"mspr/internal/simdisk"
)

// FPCommitCrash crashes a commit between the journal write and the
// moment the committing process learns of its success: the journal
// record is durable (Open finds the transaction committed after a
// restart), but Commit reports failpoint.ErrInjected and the store
// wedges until reopened. Callers must treat such a transaction as
// UNACKNOWLEDGED, never as failed — with testable transactions the
// retry finds the idempotency record and returns the recorded reply.
const FPCommitCrash = "sdb.commit.crash"

// ErrWedged is returned by operations on a store whose simulated
// process died mid-commit; only reopening (a new incarnation) helps.
var ErrWedged = errors.New("sdb: store wedged by injected crash")

// Store is a durable transactional KV store. Write transactions are
// serialized (single-writer two-phase locking degenerate case): Begin
// with writable=true blocks until the previous writer commits or aborts,
// so read-modify-write sequences inside a transaction are isolated.
type Store struct {
	disk     *simdisk.Disk
	journal  *simdisk.File
	snapshot *simdisk.File

	writer sync.Mutex // serializes writable transactions

	mu         sync.Mutex
	data       map[string][]byte
	journalOff int64
	compactAt  int64
	wedged     bool
}

// Options tunes the store.
type Options struct {
	// CompactAt compacts the journal into a snapshot once it exceeds this
	// many bytes (default 1 MB).
	CompactAt int64
}

// Open opens (creating if necessary) the named store on disk, replaying
// the snapshot and journal.
func Open(disk *simdisk.Disk, name string, opts Options) (*Store, error) {
	if opts.CompactAt <= 0 {
		opts.CompactAt = 1 << 20
	}
	s := &Store{
		disk:      disk,
		journal:   disk.OpenFile(name + ".journal"),
		snapshot:  disk.OpenFile(name + ".snap"),
		data:      make(map[string][]byte),
		compactAt: opts.CompactAt,
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load replays the snapshot then the journal's valid prefix.
func (s *Store) load() error {
	if size := s.snapshot.Size(); size > 0 {
		buf := make([]byte, size)
		if _, err := s.snapshot.ReadAt(buf, 0); err != nil {
			return err
		}
		s.disk.ChargeRead(int((size + simdisk.SectorSize - 1) / simdisk.SectorSize))
		m, _, err := decodeKVBlock(buf)
		if err != nil {
			return fmt.Errorf("sdb: corrupt snapshot: %w", err)
		}
		s.data = m
	}
	size := s.journal.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := s.journal.ReadAt(buf, 0); err != nil {
		return err
	}
	s.disk.ChargeRead(int((size + simdisk.SectorSize - 1) / simdisk.SectorSize))
	off := int64(0)
	for off < size {
		m, n, err := decodeKVBlock(buf[off:])
		if err != nil {
			break // torn tail: the valid prefix is the committed history
		}
		for k, v := range m {
			if v == nil {
				delete(s.data, k)
			} else {
				s.data[k] = v
			}
		}
		off += int64(n)
	}
	s.journalOff = off
	return nil
}

// Get reads a key outside any transaction, charging a read. It returns a
// copy of the value.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.data[key]
	out := append([]byte(nil), v...)
	s.mu.Unlock()
	sectors := (len(out) + simdisk.SectorSize - 1) / simdisk.SectorSize
	if sectors == 0 {
		sectors = 1
	}
	s.disk.ChargeRead(sectors)
	return out, ok
}

// Tx is a transaction. Read transactions see a consistent snapshot of the
// keys they touch; write transactions buffer updates until Commit.
type Tx struct {
	store    *Store
	writable bool
	writes   map[string][]byte // nil value = delete
	done     bool
}

// Begin starts a transaction. A writable transaction holds the store's
// writer lock until Commit or Abort; hold it briefly.
func (s *Store) Begin(writable bool) *Tx {
	if writable {
		s.writer.Lock()
	}
	return &Tx{store: s, writable: writable, writes: make(map[string][]byte)}
}

// errTxDone is returned when using a finished transaction.
var errTxDone = errors.New("sdb: transaction already finished")

// Get reads a key within the transaction (its own writes win).
func (tx *Tx) Get(key string) ([]byte, bool, error) {
	if tx.done {
		return nil, false, errTxDone
	}
	if v, ok := tx.writes[key]; ok {
		if v == nil {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	tx.store.mu.Lock()
	if tx.store.wedged {
		tx.store.mu.Unlock()
		return nil, false, ErrWedged
	}
	v, ok := tx.store.data[key]
	out := append([]byte(nil), v...)
	tx.store.mu.Unlock()
	sectors := (len(out) + simdisk.SectorSize - 1) / simdisk.SectorSize
	if sectors == 0 {
		sectors = 1
	}
	tx.store.disk.ChargeRead(sectors)
	if !ok {
		return nil, false, nil
	}
	return out, true, nil
}

// Put stages a write.
func (tx *Tx) Put(key string, value []byte) error {
	if tx.done {
		return errTxDone
	}
	if !tx.writable {
		return errors.New("sdb: Put on read-only transaction")
	}
	tx.writes[key] = append([]byte(nil), value...)
	return nil
}

// Delete stages a deletion.
func (tx *Tx) Delete(key string) error {
	if tx.done {
		return errTxDone
	}
	if !tx.writable {
		return errors.New("sdb: Delete on read-only transaction")
	}
	tx.writes[key] = nil
	return nil
}

// Commit makes the transaction's writes durable: one synced journal
// append. Read-only transactions commit for free.
func (tx *Tx) Commit() error {
	if tx.done {
		return errTxDone
	}
	tx.done = true
	if !tx.writable {
		return nil
	}
	defer tx.store.writer.Unlock()
	if len(tx.writes) == 0 {
		return nil
	}
	s := tx.store
	block := encodeKVBlock(tx.writes)
	s.mu.Lock()
	if s.wedged {
		s.mu.Unlock()
		return ErrWedged
	}
	if _, err := s.journal.WriteAt(block, s.journalOff); err != nil {
		if failpoint.IsInjected(err) {
			s.wedged = true // torn/corrupt journal write: the process died mid-commit
		}
		s.mu.Unlock()
		return err
	}
	if _, ok := s.disk.Failpoints().Eval(FPCommitCrash); ok {
		// The journal record is fully durable, but this incarnation dies
		// before observing the commit: in-memory state is NOT updated and
		// every further operation fails until the store is reopened.
		s.wedged = true
		s.mu.Unlock()
		return fmt.Errorf("sdb: commit crashed after journal write: %w", failpoint.ErrInjected)
	}
	s.journalOff += int64(len(block))
	for k, v := range tx.writes {
		if v == nil {
			delete(s.data, k)
		} else {
			s.data[k] = v
		}
	}
	needCompact := s.journalOff >= s.compactAt
	s.mu.Unlock()
	sectors := (len(block) + simdisk.SectorSize - 1) / simdisk.SectorSize
	s.disk.ChargeWrite(sectors, sectors*simdisk.SectorSize-len(block))
	if needCompact {
		return s.compact()
	}
	return nil
}

// Abort discards the transaction.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	if tx.writable {
		tx.store.writer.Unlock()
	}
}

// compact folds the journal into a snapshot and truncates it. The whole
// operation holds the store lock: a commit interleaving between the
// snapshot write and the journal truncation would be destroyed (its
// journal record truncated, its data missing from the snapshot). Replay
// after a crash between the two file writes is safe because journal
// records carry absolute values — re-applying them over the snapshot is
// idempotent. The caller holds the writer lock (compaction runs from
// Commit), so no writable transaction is in flight.
func (s *Store) compact() error {
	s.mu.Lock()
	snap := encodeKVBlock(s.data)
	if _, err := s.snapshot.WriteAt(snap, 0); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := s.snapshot.Truncate(int64(len(snap))); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		s.mu.Unlock()
		return err
	}
	s.journalOff = 0
	s.mu.Unlock()
	sectors := (len(snap) + simdisk.SectorSize - 1) / simdisk.SectorSize
	s.disk.ChargeWrite(sectors, 0)
	s.disk.ChargeWrite(1, 0)
	return nil
}

// Wedged reports whether the store's simulated process died mid-commit
// (injected crash); a wedged store must be reopened.
func (s *Store) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wedged
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Digest returns an order-independent digest of the committed state:
// the XOR of per-entry FNV-1a hashes over key and value. Two stores
// hold identical data iff their digests match (up to hash collisions);
// the correctness oracle records it at storm boundaries to compare a
// recovered store against the state the history predicts.
func (s *Store) Digest() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var d uint64
	for k, v := range s.data {
		h := fnv.New64a()
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write(v)
		d ^= h.Sum64()
	}
	return d
}

// encodeKVBlock serializes a map as [payloadLen u32][count u32][entries...][crc u32]
// where each entry is [keyLen u32][key][hasValue u8][valLen u32][val].
func encodeKVBlock(m map[string][]byte) []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint32(body, uint32(len(m)))
	for k, v := range m {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(k)))
		body = append(body, k...)
		if v == nil {
			body = append(body, 0)
			continue
		}
		body = append(body, 1)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(v)))
		body = append(body, v...)
	}
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out
}

// decodeKVBlock parses one block, returning the map and bytes consumed.
func decodeKVBlock(buf []byte) (map[string][]byte, int, error) {
	if len(buf) < 8 {
		return nil, 0, errors.New("sdb: short block")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n+4 {
		return nil, 0, errors.New("sdb: truncated block")
	}
	body := buf[4 : 4+n]
	want := binary.LittleEndian.Uint32(buf[4+n:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, 0, errors.New("sdb: bad block crc")
	}
	if len(body) < 4 {
		return nil, 0, errors.New("sdb: bad block body")
	}
	count := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	m := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		if len(body) < 4 {
			return nil, 0, errors.New("sdb: bad entry")
		}
		kl := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) < kl+1 {
			return nil, 0, errors.New("sdb: bad key")
		}
		k := string(body[:kl])
		has := body[kl]
		body = body[kl+1:]
		if has == 0 {
			m[k] = nil
			continue
		}
		if len(body) < 4 {
			return nil, 0, errors.New("sdb: bad value length")
		}
		vl := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) < vl {
			return nil, 0, errors.New("sdb: bad value")
		}
		v := make([]byte, vl) // non-nil even when empty: nil means deletion
		copy(v, body[:vl])
		m[k] = v
		body = body[vl:]
	}
	return m, 4 + n + 4, nil
}
