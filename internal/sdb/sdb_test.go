package sdb

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mspr/internal/simdisk"
)

func newStore(t *testing.T) (*Store, *simdisk.Disk) {
	t.Helper()
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	s, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, disk
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin(true)
	if err := tx.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("got (%q, %v)", v, ok)
	}
}

func TestTxSeesOwnWrites(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin(true)
	_ = tx.Put("k", []byte("staged"))
	v, ok, err := tx.Get("k")
	if err != nil || !ok || string(v) != "staged" {
		t.Fatalf("(%q, %v, %v)", v, ok, err)
	}
	// Not visible outside before commit.
	if _, ok := s.Get("k"); ok {
		t.Fatal("uncommitted write visible")
	}
	_ = tx.Commit()
	if _, ok := s.Get("k"); !ok {
		t.Fatal("committed write invisible")
	}
}

func TestAbortDiscards(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin(true)
	_ = tx.Put("k", []byte("v"))
	tx.Abort()
	if _, ok := s.Get("k"); ok {
		t.Fatal("aborted write visible")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after abort should fail")
	}
}

func TestReadOnlyTxRejectsWrites(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin(false)
	if err := tx.Put("k", nil); err == nil {
		t.Fatal("read-only Put accepted")
	}
	if err := tx.Delete("k"); err == nil {
		t.Fatal("read-only Delete accepted")
	}
}

func TestDelete(t *testing.T) {
	s, _ := newStore(t)
	tx := s.Begin(true)
	_ = tx.Put("k", []byte("v"))
	_ = tx.Commit()
	tx = s.Begin(true)
	_ = tx.Delete("k")
	_ = tx.Commit()
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	s, _ := Open(disk, "db", Options{})
	for i := 0; i < 20; i++ {
		tx := s.Begin(true)
		_ = tx.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("k%d lost: (%v, %v)", i, v, ok)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	s, _ := Open(disk, "db", Options{CompactAt: 256})
	for i := 0; i < 50; i++ {
		tx := s.Begin(true)
		_ = tx.Put("hot", []byte(fmt.Sprintf("v%d", i)))
		_ = tx.Put(fmt.Sprintf("cold%d", i), []byte("x"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(disk, "db", Options{CompactAt: 256})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get("hot")
	if !ok || string(v) != "v49" {
		t.Fatalf("hot = (%q, %v)", v, ok)
	}
	if s2.Len() != 51 {
		t.Fatalf("len = %d, want 51", s2.Len())
	}
}

func TestCommitChargesDisk(t *testing.T) {
	s, disk := newStore(t)
	tx := s.Begin(true)
	_ = tx.Put("k", bytes.Repeat([]byte("x"), 8192))
	_ = tx.Commit()
	st := disk.Stats()
	if st.Writes == 0 || st.SectorsOut < 16 {
		t.Fatalf("8 KB commit charged %+v", st)
	}
}

func TestKVBlockRoundTripProperty(t *testing.T) {
	prop := func(keys []string, vals [][]byte) bool {
		m := make(map[string][]byte)
		for i, k := range keys {
			if i < len(vals) {
				m[k] = vals[i]
			} else {
				m[k] = nil
			}
		}
		block := encodeKVBlock(m)
		got, n, err := decodeKVBlock(block)
		if err != nil || n != len(block) || len(got) != len(m) {
			return false
		}
		for k, v := range m {
			gv, ok := got[k]
			if !ok && v != nil {
				return false
			}
			if (v == nil) != (gv == nil) {
				return false
			}
			if !bytes.Equal(gv, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTornJournalTailIgnored(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	s, _ := Open(disk, "db", Options{})
	tx := s.Begin(true)
	_ = tx.Put("good", []byte("v"))
	_ = tx.Commit()
	// Corrupt the journal tail, simulating a torn write.
	j := disk.OpenFile("db.journal")
	_, _ = j.WriteAt([]byte{1, 2, 3}, j.Size())
	s2, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("good"); !ok {
		t.Fatal("valid prefix lost")
	}
}
