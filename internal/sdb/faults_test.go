package sdb

import (
	"bytes"
	"errors"
	"testing"

	"mspr/internal/failpoint"
	"mspr/internal/simdisk"
)

// A commit that crashes after its journal write is durable: the next
// incarnation finds the transaction committed even though this one
// never heard the acknowledgement.
func TestCommitCrashIsDurableButUnacknowledged(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	fp := failpoint.New(21)
	disk.SetFailpoints(fp)
	s, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	fp.Enable(FPCommitCrash)
	tx := s.Begin(true)
	tx.Put("k", []byte("v1"))
	if err := tx.Commit(); !failpoint.IsInjected(err) {
		t.Fatalf("commit err = %v, want injected crash", err)
	}
	if !s.Wedged() {
		t.Fatal("store not wedged after mid-commit crash")
	}

	// The dead incarnation refuses everything.
	tx2 := s.Begin(true)
	if _, _, err := tx2.Get("k"); !errors.Is(err, ErrWedged) {
		t.Fatalf("get on wedged store: %v, want ErrWedged", err)
	}
	tx2.Put("k", []byte("v2"))
	if err := tx2.Commit(); !errors.Is(err, ErrWedged) {
		t.Fatalf("commit on wedged store: %v, want ErrWedged", err)
	}

	// The next incarnation replays the journal: the crashed commit is in.
	s2, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	v, ok := s2.Get("k")
	if !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("after reopen k = %q ok=%v, want the crashed commit's value", v, ok)
	}
}

// A torn journal write (simdisk-level fault) loses the uncommitted
// transaction cleanly: the valid journal prefix still replays.
func TestTornJournalWriteLosesOnlyThatCommit(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	fp := failpoint.New(22)
	disk.SetFailpoints(fp)
	s, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tx := s.Begin(true)
	tx.Put("a", []byte("committed"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	fp.Enable(simdisk.FPWriteTorn + ":db.journal")
	tx2 := s.Begin(true)
	tx2.Put("b", []byte("torn"))
	if err := tx2.Commit(); !failpoint.IsInjected(err) {
		t.Fatalf("torn commit err = %v, want injected", err)
	}
	if !s.Wedged() {
		t.Fatal("store not wedged after torn journal write")
	}

	s2, err := Open(disk, "db", Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if v, ok := s2.Get("a"); !ok || !bytes.Equal(v, []byte("committed")) {
		t.Fatalf("committed key lost: %q ok=%v", v, ok)
	}
	if _, ok := s2.Get("b"); ok {
		t.Fatal("torn transaction resurrected")
	}
}
