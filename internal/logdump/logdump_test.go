package logdump

import (
	"strings"
	"testing"

	"mspr/internal/dv"
	"mspr/internal/logrec"
	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

func TestDumpDecodesEveryRecordType(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	lg, err := wal.Open(disk, "x.log", wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vec := dv.Vector{{Process: "peer", Epoch: 1}: 42}
	records := []struct {
		typ logrec.Type
		pay []byte
	}{
		{logrec.TSessionStart, logrec.SessionStart{Session: "s1", ClientAddr: "c"}.Encode()},
		{logrec.TReqReceive, logrec.ReqReceive{Session: "s1", Seq: 1, Method: "m", HasDV: true, DV: vec}.Encode()},
		{logrec.TReplyReceive, logrec.ReplyReceive{Session: "s1", OutSession: "o", Seq: 1}.Encode()},
		{logrec.TSharedRead, logrec.SharedRead{Session: "s1", Var: "v", Value: []byte("x"), DV: vec}.Encode()},
		{logrec.TSharedWrite, logrec.SharedWrite{Session: "s1", Var: "v", Value: []byte("y"), DV: vec, PrevWrite: 7}.Encode()},
		{logrec.TSVCheckpoint, logrec.SVCheckpoint{Var: "v", Value: []byte("z")}.Encode()},
		{logrec.TSessionCkpt, logrec.SessionCheckpoint{Session: "s1", Vars: map[string][]byte{"a": nil}, NextExpected: 2}.Encode()},
		{logrec.TSessionEnd, logrec.SessionEnd{Session: "s1"}.Encode()},
		{logrec.TEOS, logrec.EOS{Session: "s1", Orphan: 99}.Encode()},
		{logrec.TRecoveryInfo, logrec.RecoveryInfo{Process: "p", CrashedEpoch: 1, Recovered: 10}.Encode()},
		{logrec.TMSPCheckpoint, logrec.MSPCheckpoint{Epoch: 2}.Encode()},
	}
	var last wal.LSN
	for _, r := range records {
		last, err = lg.Append(byte(r.typ), r.pay)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Flush(last); err != nil {
		t.Fatal(err)
	}
	_ = lg.WriteAnchor(wal.Anchor{Epoch: 2, CheckpointLSN: last})
	lg.Close()

	var sb strings.Builder
	sum, err := Dump(disk, "x.log", &sb)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != len(records) {
		t.Fatalf("dumped %d records, want %d", sum.Records, len(records))
	}
	if !sum.HasAnchor || sum.Anchor.Epoch != 2 {
		t.Fatalf("anchor missing from summary: %+v", sum)
	}
	out := sb.String()
	for _, want := range []string{
		"SessionStart", "ReqReceive", "ReplyReceive", "SharedRead", "SharedWrite",
		"SVCheckpoint", "SessionCkpt", "SessionEnd", "EOS", "RecoveryInfo", "MSPCheckpoint",
		"peer:1:42", "orphan@99", "prev@7", "crashedEpoch=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNDECODABLE") {
		t.Fatalf("dump failed to decode a record:\n%s", out)
	}
	if len(sum.Segments) != 1 || sum.Segments[0].Records != len(records) || !sum.Segments[0].Active {
		t.Fatalf("single-segment summary wrong: %+v", sum.Segments)
	}
}

func TestDumpEnumeratesSegments(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	lg, err := wal.Open(disk, "x.log", wal.Config{SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	var lsns []wal.LSN
	for i := 0; i < 24; i++ {
		lsn, err := lg.Append(byte(logrec.TSessionEnd), logrec.SessionEnd{Session: "s"}.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := lg.Flush(lsn); err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	head := lsns[12]
	if err := lg.WriteAnchor(wal.Anchor{Epoch: 1, CheckpointLSN: head, Head: head}); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	var sb strings.Builder
	sum, err := Dump(disk, "x.log", &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Segments) < 3 {
		t.Fatalf("dump saw %d segments, want several: %+v", len(sum.Segments), sum.Segments)
	}
	var reclaimable, counted int
	for i, sd := range sum.Segments {
		if sd.Reclaimable {
			reclaimable++
		}
		if sd.Active != (i == len(sum.Segments)-1) {
			t.Fatalf("segment %d active flag wrong: %+v", i, sd)
		}
		counted += sd.Records
	}
	if reclaimable == 0 {
		t.Fatalf("no segment marked reclaimable below head %d: %+v", head, sum.Segments)
	}
	if counted != sum.Records || sum.Records != 12 {
		t.Fatalf("per-segment records %d, total %d, want 12 (records at or above head)", counted, sum.Records)
	}
	out := sb.String()
	for _, want := range []string{"segment 000001", "reclaimable", "active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
	// The dump is read-only: every segment file survives it.
	if got := len(disk.List("x.log.0")); got != len(sum.Segments) {
		t.Fatalf("dump deleted segment files: %d on disk, %d dumped", got, len(sum.Segments))
	}
}

func TestDescribeCorruptPayload(t *testing.T) {
	if got := Describe(logrec.TReqReceive, []byte{0xFF}); !strings.Contains(got, "UNDECODABLE") {
		t.Fatalf("corrupt payload described as %q", got)
	}
}

func TestDumpEmptyLog(t *testing.T) {
	disk := simdisk.NewDisk(simdisk.DefaultModel(0))
	var sb strings.Builder
	sum, err := Dump(disk, "empty.log", &sb)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 0 || sum.HasAnchor {
		t.Fatalf("empty log summary: %+v", sum)
	}
}
