// Package logdump renders an MSP's physical log in human-readable form:
// every record decoded with its type, session, dependency vector and
// payload summary, plus the anchor. It is the debugging companion of the
// recovery infrastructure — the paper's protocols (orphan detection, EOS
// skipping, checkpoint positions) are all directly visible in a dump.
package logdump

import (
	"fmt"
	"io"

	"mspr/internal/logrec"
	"mspr/internal/simdisk"
	"mspr/internal/wal"
)

// Summary aggregates a dump's statistics.
type Summary struct {
	Records   int
	ByType    map[logrec.Type]int
	FirstLSN  wal.LSN
	LastLSN   wal.LSN
	Anchor    wal.Anchor
	HasAnchor bool
	Segments  []SegmentDump
}

// SegmentDump describes one physical segment file of the dumped log.
type SegmentDump struct {
	Index    uint64
	Name     string
	FirstLSN wal.LSN // first record at or above the log head; 0 if none
	LastLSN  wal.LSN // last record; 0 if none
	Bytes    int64   // file size including the header sector
	Records  int     // records dumped from this segment
	Active   bool    // still appended to (the final segment)
	// Reclaimable marks a sealed segment wholly below the anchor head:
	// the next checkpoint truncation will physically delete it.
	Reclaimable bool
}

// Dump prints every record of the named log on disk to w and returns a
// summary. The log is opened read-only (a fresh handle; concurrent
// writers' unflushed records are invisible, exactly like a crash): the
// scan starts at the anchor head but never truncates — truncation now
// physically deletes segment files, which a dump must never do.
func Dump(disk *simdisk.Disk, name string, w io.Writer) (Summary, error) {
	lg, err := wal.Open(disk, name, wal.Config{})
	if err != nil {
		return Summary{}, err
	}
	defer lg.Close() //mspr:walerr read-only dump handle: nothing was appended, close failure cannot lose data
	sum := Summary{ByType: make(map[logrec.Type]int)}
	var from wal.LSN
	if a, ok, err := lg.ReadAnchor(); err == nil && ok {
		sum.Anchor, sum.HasAnchor = a, true
		fmt.Fprintf(w, "anchor: epoch=%d checkpoint@%d head@%d\n", a.Epoch, a.CheckpointLSN, a.Head)
		from = a.Head
	}
	segs := lg.Segments()
	for _, s := range segs {
		sum.Segments = append(sum.Segments, SegmentDump{
			Index:       s.Index,
			Name:        s.Name,
			Bytes:       s.Bytes,
			Active:      s.End == 0,
			Reclaimable: sum.HasAnchor && s.End != 0 && s.End <= sum.Anchor.Head,
		})
	}
	si := 0
	_, err = lg.Scan(from, func(lsn wal.LSN, typ byte, payload []byte) error {
		t := logrec.Type(typ)
		sum.Records++
		sum.ByType[t]++
		if sum.FirstLSN == 0 {
			sum.FirstLSN = lsn
		}
		sum.LastLSN = lsn
		// Records arrive in ascending LSN order; advance to the segment
		// covering this one (sealed ends are exclusive).
		for si < len(segs)-1 && segs[si].End != 0 && lsn >= segs[si].End {
			si++
		}
		sd := &sum.Segments[si]
		sd.Records++
		if sd.FirstLSN == 0 {
			sd.FirstLSN = lsn
		}
		sd.LastLSN = lsn
		fmt.Fprintf(w, "%10d %-13s %s\n", lsn, t, Describe(t, payload))
		return nil
	})
	if err != nil {
		return sum, err
	}
	for _, sd := range sum.Segments {
		state := "sealed"
		switch {
		case sd.Active:
			state = "active"
		case sd.Reclaimable:
			state = "reclaimable"
		}
		span := "no records at or above head"
		if sd.Records > 0 {
			span = fmt.Sprintf("records %d..%d (%d)", sd.FirstLSN, sd.LastLSN, sd.Records)
		}
		fmt.Fprintf(w, "segment %06d %-12s %8dB %-11s %s\n", sd.Index, sd.Name, sd.Bytes, state, span)
	}
	return sum, nil
}

// Describe returns a one-line description of a record's payload.
func Describe(t logrec.Type, payload []byte) string {
	switch t {
	case logrec.TReqReceive:
		r, err := logrec.DecodeReqReceive(payload)
		if err != nil {
			return badRecord(err)
		}
		dv := ""
		if r.HasDV {
			dv = " dv=" + r.DV.String()
		}
		return fmt.Sprintf("session=%s seq=%d method=%s arg=%dB%s", r.Session, r.Seq, r.Method, len(r.Arg), dv)
	case logrec.TReplyReceive:
		r, err := logrec.DecodeReplyReceive(payload)
		if err != nil {
			return badRecord(err)
		}
		dv := ""
		if r.HasDV {
			dv = " dv=" + r.DV.String()
		}
		return fmt.Sprintf("session=%s out=%s seq=%d status=%d reply=%dB%s",
			r.Session, r.OutSession, r.Seq, r.Status, len(r.Reply), dv)
	case logrec.TSharedRead:
		r, err := logrec.DecodeSharedRead(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("session=%s var=%s value=%dB dv=%s", r.Session, r.Var, len(r.Value), r.DV)
	case logrec.TSharedWrite:
		r, err := logrec.DecodeSharedWrite(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("session=%s var=%s value=%dB prev@%d dv=%s",
			r.Session, r.Var, len(r.Value), r.PrevWrite, r.DV)
	case logrec.TSVCheckpoint:
		r, err := logrec.DecodeSVCheckpoint(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("var=%s value=%dB (chain break)", r.Var, len(r.Value))
	case logrec.TSessionCkpt:
		r, err := logrec.DecodeSessionCheckpoint(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("session=%s vars=%d nextSeq=%d outgoing=%d dv=%s",
			r.Session, len(r.Vars), r.NextExpected, len(r.Outgoing), r.DV)
	case logrec.TSessionStart:
		r, err := logrec.DecodeSessionStart(payload)
		if err != nil {
			return badRecord(err)
		}
		kind := "end-client"
		if r.IntraDomain {
			kind = "intra-domain"
		}
		return fmt.Sprintf("session=%s client=%s (%s)", r.Session, r.ClientAddr, kind)
	case logrec.TSessionEnd:
		r, err := logrec.DecodeSessionEnd(payload)
		if err != nil {
			return badRecord(err)
		}
		return "session=" + r.Session
	case logrec.TEOS:
		r, err := logrec.DecodeEOS(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("session=%s orphan@%d (skipped records invisible)", r.Session, r.Orphan)
	case logrec.TRecoveryInfo:
		r, err := logrec.DecodeRecoveryInfo(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("process=%s crashedEpoch=%d recovered@%d", r.Process, r.CrashedEpoch, r.Recovered)
	case logrec.TMSPCheckpoint:
		r, err := logrec.DecodeMSPCheckpoint(payload)
		if err != nil {
			return badRecord(err)
		}
		return fmt.Sprintf("epoch=%d knowledge=%d sessions=%d shared=%d",
			r.Epoch, len(r.Knowledge), len(r.Sessions), len(r.Shared))
	}
	return fmt.Sprintf("%d payload bytes", len(payload))
}

func badRecord(err error) string { return "UNDECODABLE: " + err.Error() }
