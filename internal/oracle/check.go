package oracle

import (
	"fmt"
	"sort"
)

// Checker names, as reported in Violation.Checker.
const (
	CheckExactlyOnce   = "exactly-once"
	CheckMonotonic     = "session-monotonic"
	CheckExplainable   = "explainable-state"
	CheckNoOrphanReply = "no-orphan-reply"
)

// Violation is one checker finding.
type Violation struct {
	Checker string `json:"checker"`
	Message string `json:"message"`
}

func (v Violation) String() string { return v.Checker + ": " + v.Message }

// Check runs the four history checkers and returns every violation
// found, grouped by checker. An empty result means the history is
// consistent with the paper's exactly-once, session-monotonicity,
// explainable-state and no-orphan-reply guarantees.
func Check(events []Event) []Violation {
	h := buildHistory(events)
	var out []Violation
	out = append(out, checkExactlyOnce(h)...)
	out = append(out, checkMonotonic(h)...)
	out = append(out, checkExplainable(h)...)
	out = append(out, checkNoOrphanReply(h)...)
	return out
}

// history is the indexed form of an event slice that the checkers share.
type history struct {
	events []Event
	// recoversByServer / rollbacksByServer index the death-causing
	// events, in recording order, for the dead-execution rule.
	recoversByServer  map[string][]Event
	rollbacksByServer map[string][]Event
	// executes groups KindExecute events by server-scoped request ID.
	executes map[string][]Event
	// executesBySession groups executions by (session, seq) across
	// servers — the client does not know which server name executed it.
	executesBySession map[string][]Event
	// repliesBySession groups client replies per session in recording
	// order; invokes likewise.
	repliesBySession map[string][]Event
	invokes          map[string][]Event
}

func clientID(session string, seq uint64) string {
	return fmt.Sprintf("%s/%d", session, seq)
}

func buildHistory(events []Event) *history {
	h := &history{
		events:            events,
		recoversByServer:  map[string][]Event{},
		rollbacksByServer: map[string][]Event{},
		executes:          map[string][]Event{},
		executesBySession: map[string][]Event{},
		repliesBySession:  map[string][]Event{},
		invokes:           map[string][]Event{},
	}
	for _, e := range events {
		switch e.Kind {
		case KindRecover:
			h.recoversByServer[e.Server] = append(h.recoversByServer[e.Server], e)
		case KindRollback:
			h.rollbacksByServer[e.Server] = append(h.rollbacksByServer[e.Server], e)
		case KindExecute:
			h.executes[e.reqID()] = append(h.executes[e.reqID()], e)
			k := clientID(e.Session, e.Seq)
			h.executesBySession[k] = append(h.executesBySession[k], e)
		case KindReply:
			k := clientID(e.Session, e.Seq)
			h.repliesBySession[k] = append(h.repliesBySession[k], e)
		case KindInvoke:
			k := clientID(e.Session, e.Seq)
			h.invokes[k] = append(h.invokes[k], e)
		}
	}
	return h
}

// dead reports whether execution e was undone by a later recovery or
// session rollback. An execution dies when, later in the history, either
//
//   - its server recovered from e's epoch to a point before e's LSN
//     (the execution was beyond the recovered state number and is lost),
//     or
//   - its session was rolled back from an LSN at or below e's LSN (the
//     orphan-truncation path undid it).
//
// Executions with epoch 0 and LSN 0 come from stateless/transactional
// servers whose effects commit atomically outside the session log; they
// never die here. Replayed executions regenerate state that recovery
// itself chose to keep, so the rule only applies to fresh ones — the
// callers filter.
func (h *history) dead(e Event) bool {
	if e.Epoch == 0 && e.LSN == 0 {
		return false
	}
	for _, rec := range h.recoversByServer[e.Server] {
		if rec.Idx > e.Idx && rec.CrashedEpoch == e.Epoch && rec.RecoveredLSN < e.LSN {
			return true
		}
	}
	for _, rb := range h.rollbacksByServer[e.Server] {
		if rb.Idx > e.Idx && rb.Session == e.Session && rb.FromLSN != 0 && rb.FromLSN <= e.LSN {
			return true
		}
	}
	return false
}

// checkExactlyOnce verifies that each request ID has at most one
// surviving fresh execution, and that every reply the client accepted
// for one request ID carries the same payload digest.
func checkExactlyOnce(h *history) []Violation {
	var out []Violation
	ids := make([]string, 0, len(h.executes))
	for id := range h.executes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		live := 0
		for _, e := range h.executes[id] {
			if e.Replayed || h.dead(e) {
				continue
			}
			live++
		}
		if live > 1 {
			out = append(out, Violation{CheckExactlyOnce, fmt.Sprintf(
				"request %s executed %d times (surviving fresh executions; duplicates were not deduplicated)", id, live)})
		}
	}
	keys := make([]string, 0, len(h.repliesBySession))
	for k := range h.repliesBySession {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Group by OK flag: an accepted application error and an
		// accepted OK reply never coexist for one seq, but be safe.
		var okDig, errDig *uint64
		for _, rep := range h.repliesBySession[k] {
			d := rep.Digest
			p := &okDig
			if !rep.OK {
				p = &errDig
			}
			if *p == nil {
				*p = &d
			} else if **p != d {
				out = append(out, Violation{CheckExactlyOnce, fmt.Sprintf(
					"request %s: client accepted replies with diverging payload digests (%#x vs %#x)", k, **p, d)})
				break
			}
		}
	}
	return out
}

// checkMonotonic verifies that each session's accepted OK-reply sequence
// never regresses. Equal sequence numbers are allowed: a durable client
// that resumes after its own crash legitimately re-drives the same seq
// and accepts the buffered reply again.
func checkMonotonic(h *history) []Violation {
	var out []Violation
	prevMax := map[string]uint64{}
	for _, e := range h.events {
		if e.Kind != KindReply || !e.OK {
			continue
		}
		if max, seen := prevMax[e.Session]; seen && e.Seq < max {
			out = append(out, Violation{CheckMonotonic, fmt.Sprintf(
				"session %s: accepted reply for seq %d after seq %d (reply sequence regressed across recovery)",
				e.Session, e.Seq, max)})
			continue
		}
		if e.Seq > prevMax[e.Session] {
			prevMax[e.Session] = e.Seq
		}
	}
	return out
}

// effectKey dedupes effect declarations: a retried request's effect
// counts once, and redeclaring replaces the delta (last wins).
func effectKey(e Event) string { return fmt.Sprintf("%s/%d/%s", e.Session, e.Seq, e.Var) }

// checkExplainable verifies that each audited shared counter's final
// value lies in the window producible by some serialization of the
// declared writes: every acknowledged write (OK reply accepted) must be
// included exactly once, and each unresolved write (invoked, never OK)
// may be included or not. Below the window is a lost update; above it is
// a leaked write from a request that was never acknowledged.
func checkExplainable(h *history) []Violation {
	type window struct{ acked, lostMin, leakMax int64 }
	// Last declaration wins per (session, seq, var).
	lastEffect := map[string]Event{}
	var order []string
	for _, e := range h.events {
		if e.Kind != KindEffect {
			continue
		}
		k := effectKey(e)
		if _, seen := lastEffect[k]; !seen {
			order = append(order, k)
		}
		lastEffect[k] = e
	}
	acked := func(session string, seq uint64) bool {
		for _, rep := range h.repliesBySession[clientID(session, seq)] {
			if rep.OK {
				return true
			}
		}
		return false
	}
	windows := map[string]*window{}
	for _, k := range order {
		e := lastEffect[k]
		w := windows[e.Var]
		if w == nil {
			w = &window{}
			windows[e.Var] = w
		}
		if acked(e.Session, e.Seq) {
			w.acked += e.Delta
		} else {
			// Outcome unknown: the write may or may not have landed.
			if e.Delta < 0 {
				w.lostMin += e.Delta
			} else {
				w.leakMax += e.Delta
			}
		}
	}
	// Final values: check each against its variable's window, in
	// recording order.
	var out []Violation
	for _, e := range h.events {
		if e.Kind != KindFinal {
			continue
		}
		w := windows[e.Var]
		if w == nil {
			w = &window{}
		}
		lo, hi := w.acked+w.lostMin, w.acked+w.leakMax
		if e.Value < lo {
			out = append(out, Violation{CheckExplainable, fmt.Sprintf(
				"var %s: final value %d below minimum explainable %d (acknowledged writes sum to %d; a lost update)",
				e.Var, e.Value, lo, w.acked)})
		} else if e.Value > hi {
			out = append(out, Violation{CheckExplainable, fmt.Sprintf(
				"var %s: final value %d above maximum explainable %d (acknowledged writes sum to %d; a leaked unacknowledged write)",
				e.Var, e.Value, hi, w.acked)})
		}
	}
	return out
}

// checkNoOrphanReply verifies that every OK reply the client accepted is
// backed by at least one execution that survived all later recoveries —
// fresh-and-surviving, or regenerated by replay. A reply whose every
// backing execution died reflects rolled-back (orphan) state.
func checkNoOrphanReply(h *history) []Violation {
	var out []Violation
	keys := make([]string, 0, len(h.repliesBySession))
	for k := range h.repliesBySession {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, rep := range h.repliesBySession[k] {
			if !rep.OK {
				continue
			}
			execs := h.executesBySession[k]
			if len(execs) == 0 {
				out = append(out, Violation{CheckNoOrphanReply, fmt.Sprintf(
					"request %s: client accepted a reply but no server reported executing it", k)})
				break
			}
			backed := false
			for _, e := range execs {
				if e.Digest != rep.Digest {
					continue
				}
				if e.Replayed || !h.dead(e) {
					backed = true
					break
				}
			}
			if !backed {
				out = append(out, Violation{CheckNoOrphanReply, fmt.Sprintf(
					"request %s: accepted reply digest %#x is backed only by executions a later recovery rolled back (orphan reply)",
					k, rep.Digest)})
			}
			// One verdict per request ID.
			break
		}
	}
	return out
}
