package oracle_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mspr/internal/chaos"
	"mspr/internal/core"
	"mspr/internal/failpoint"
	"mspr/internal/oracle"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// sut is one recoverable MSP under oracle observation, reached over a
// network that duplicates messages — the environment in which broken
// request deduplication becomes visible.
type sut struct {
	net    *simnet.Network
	cfg    core.Config
	mu     sync.Mutex
	srv    *core.Server
	client *core.Client
	rec    *oracle.Recorder
}

// newSUT builds the system. brokenDedup arms core.FPDedupSkip for every
// hit, so a network-duplicated request re-executes instead of being
// absorbed by the receive log.
func newSUT(t *testing.T, seed int64, brokenDedup bool) *sut {
	t.Helper()
	s := &sut{
		net: simnet.New(simnet.Config{TimeScale: 0, DupRate: 0.4, Seed: seed}),
		rec: oracle.NewRecorder(),
	}
	def := core.Definition{
		Methods: map[string]core.Handler{
			"bump": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				n := asU64(ctx.GetVar("n")) + 1
				ctx.SetVar("n", u64(n))
				tot, err := ctx.ReadShared("total")
				if err != nil {
					return nil, err
				}
				if err := ctx.WriteShared("total", u64(asU64(tot)+1)); err != nil {
					return nil, err
				}
				return u64(n), nil
			},
			"total": func(ctx *core.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("total")
			},
		},
		Shared: []core.SharedDef{{Name: "total", Initial: u64(0)}},
	}
	dom := core.NewDomain("oracle-e2e", 0, 0)
	s.cfg = core.NewConfig("sut", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), s.net, def)
	s.cfg.SessionCkptThreshold = 16 << 10
	s.cfg.Failpoints = failpoint.New(seed)
	s.cfg.Tap = s.rec
	if brokenDedup {
		s.cfg.Failpoints.Enable(core.FPDedupSkip, failpoint.Times(-1))
	}
	srv, err := core.Start(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.srv = srv
	s.client = core.NewClient("oracle-client", s.net, rpc.DefaultCallOptions(0))
	s.client.SetTap(s.rec)
	return s
}

func (s *sut) restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.Crash()
	srv, err := core.Start(s.cfg)
	if err != nil {
		return err
	}
	s.srv = srv
	return nil
}

func (s *sut) close() {
	s.mu.Lock()
	s.srv.Crash()
	s.mu.Unlock()
	s.client.Close()
}

// workload drives bump ops and audits the shared total through the
// oracle: each op declares its increment, and the final check records
// the observed total and folds the checkers' verdict into the storm.
func (s *sut) workload(actors, ops int) chaos.Workload {
	return chaos.Workload{
		Actors:      actors,
		OpsPerActor: ops,
		NewActor: func(i int) (func(int) error, func()) {
			sess := s.client.Session("sut")
			return func(n int) error {
				s.rec.DeclareEffect(sess.ID(), uint64(n), "total", 1)
				_, err := sess.Call("bump", nil)
				return err
			}, nil
		},
		FinalCheck: func() error {
			sess := s.client.Session("sut")
			out, err := sess.Call("total", nil)
			if err != nil {
				return err
			}
			s.rec.FinalState("total", int64(asU64(out)))
			if vs := s.rec.Check(); len(vs) != 0 {
				msgs := make([]string, len(vs))
				for i, v := range vs {
					msgs[i] = v.String()
				}
				return fmt.Errorf("oracle: %d violations:\n%s", len(vs), strings.Join(msgs, "\n"))
			}
			return nil
		},
	}
}

func (s *sut) faults(mu *sync.Mutex) []chaos.Fault {
	return []chaos.Fault{chaos.RestartFault("crash-sut", mu, s.restart)}
}

// TestOracleCleanStormPasses: with dedup intact, a storm over a lossy,
// duplicating network with crash-restart faults must satisfy all four
// checkers — resends, duplicate deliveries and recoveries included.
func TestOracleCleanStormPasses(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		name := "no-faults"
		if faulty {
			name = "crash-faults"
		}
		t.Run(name, func(t *testing.T) {
			s := newSUT(t, 11, false)
			defer s.close()
			var faultMu sync.Mutex
			var faults []chaos.Fault
			o := chaos.Options{Seed: 11}
			if faulty {
				faults = s.faults(&faultMu)
				o.FaultEvery = 15
			}
			rep := chaos.Run(s.workload(4, 20), faults, o)
			if rep.Failed() {
				t.Fatalf("%s\n%v", rep, rep.Errors)
			}
			if s.rec.Len() == 0 {
				t.Fatal("oracle recorded nothing")
			}
		})
	}
}

// TestOracleInstantRecoveryStorm verifies exactly-once across the
// concurrent-recovery window: crash-point faults kill the SUT between
// analysis and first reply (FPRecoveryBeforeServe), during an on-demand
// session replay (FPLazyReplay), and inside the background sweep
// (FPSweepMid), while clients keep retrying into sessions that have not
// been replayed yet. The oracle's full-history checkers must stay clean.
// Runs under -race via the CI race step, putting the recovery-unit state
// machine (unrecovered → replaying → live) under the race detector.
func TestOracleInstantRecoveryStorm(t *testing.T) {
	const seed = 29
	s := newSUT(t, seed, false)
	defer s.close()
	var faultMu sync.Mutex
	fp := s.cfg.Failpoints
	faults := []chaos.Fault{
		chaos.RestartFault("crash-sut", &faultMu, s.restart),
		chaos.CrashPointFault("crash-before-serve", &faultMu, fp,
			core.FPRecoveryBeforeServe, s.restart),
		chaos.CrashPointFault("crash-lazy-replay", &faultMu, fp,
			core.FPLazyReplay, s.restart),
		chaos.CrashPointFault("crash-mid-sweep", &faultMu, fp,
			core.FPSweepMid, s.restart),
	}
	rep := chaos.Run(s.workload(6, 25), faults, chaos.Options{Seed: seed, FaultEvery: 12})
	if rep.Failed() {
		t.Fatalf("%s\n%v", rep, rep.Errors)
	}
	if s.rec.Len() == 0 {
		t.Fatal("oracle recorded nothing")
	}
}

// TestOracleCatchesBrokenDedup is the end-to-end acceptance test: with
// deduplication deliberately broken, the exactly-once checker must fail
// the storm, and Minimize must shrink the failure to a replayable JSON
// trace with at most 3 faults that still reproduces on a fresh system.
func TestOracleCatchesBrokenDedup(t *testing.T) {
	const seed = 3
	s := newSUT(t, seed, true)
	var faultMu sync.Mutex
	rep := chaos.Run(s.workload(4, 20), s.faults(&faultMu), chaos.Options{
		Seed: seed, FaultEvery: 15, MaxFaults: 3,
	})
	s.close()
	if !rep.Failed() {
		t.Fatal("broken dedup was not detected")
	}
	found := false
	for _, err := range rep.Errors {
		if strings.Contains(err.Error(), oracle.CheckExactlyOnce) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no exactly-once violation among: %v", rep.Errors)
	}

	// Minimize against fresh broken systems; every candidate storm gets
	// pristine state, its own recorder, and the candidate's shape.
	build := func(tr chaos.Trace) (chaos.Workload, []chaos.Fault, func()) {
		sys := newSUT(t, seed, true)
		return sys.workload(tr.Actors, tr.OpsPerActor), sys.faults(&faultMu), sys.close
	}
	orig := chaos.NewTrace(chaos.Workload{Actors: 4, OpsPerActor: 20},
		chaos.Options{Seed: seed, FaultEvery: 15}, rep)
	min, stats := chaos.Minimize(build, orig)
	if !stats.Reproduced {
		t.Fatal("original failing trace did not reproduce")
	}
	if len(min.Schedule) > 3 {
		t.Fatalf("minimized schedule has %d faults, want <= 3: %v", len(min.Schedule), min.Schedule)
	}

	// The minimized trace must survive a JSON round trip and still fail.
	var buf bytes.Buffer
	if err := min.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := chaos.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, faults, done := build(back)
	defer done()
	if rep := chaos.Replay(w, faults, back); !rep.Failed() {
		t.Fatalf("replayed minimized trace no longer fails: %s", rep)
	}
}
