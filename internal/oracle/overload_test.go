package oracle_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mspr/internal/core"
	"mspr/internal/metrics"
	"mspr/internal/oracle"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
	"mspr/internal/workload"
)

// TestOverloadStormOracleClean is the in-tree saturation storm: an
// open-loop bursty flood at several times the server's capacity, with
// Zipf-skewed keys, per-call deadlines, a shared retry budget and a
// circuit breaker on the client, and crash-restarts mid-saturation. The
// oracle records the full history; the test requires zero correctness
// violations — shedding must never manufacture or lose an execution —
// plus evidence the storm actually shed, and a queue depth bounded by
// the configured admission-lane capacities.
func TestOverloadStormOracleClean(t *testing.T) {
	const (
		keys       = 4
		queueDepth = 32
		prioDepth  = 8
		floodFor   = 600 * time.Millisecond
		floodRate  = 4000 // arrivals/s, several times the ~1ms-per-op capacity
	)
	net := simnet.New(simnet.Config{TimeScale: 0, DupRate: 0.2, Seed: 7})
	rec := oracle.NewRecorder()

	keyName := func(k int) string { return fmt.Sprintf("key-%d", k) }
	shared := make([]core.SharedDef, keys)
	for i := range shared {
		shared[i] = core.SharedDef{Name: keyName(i), Initial: u64(0)}
	}
	def := core.Definition{
		Methods: map[string]core.Handler{
			"mark": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				time.Sleep(time.Millisecond) // calibrated service time: ~1k ops/s/worker
				name := keyName(int(asU64(arg)))
				v, err := ctx.ReadShared(name)
				if err != nil {
					return nil, err
				}
				n := asU64(v) + 1
				return u64(n), ctx.WriteShared(name, u64(n))
			},
			"get": func(ctx *core.Ctx, arg []byte) ([]byte, error) {
				return ctx.ReadShared(keyName(int(asU64(arg))))
			},
		},
		Shared: shared,
	}
	dom := core.NewDomain("overload-e2e", 0, 0)
	cfg := core.NewConfig("ovl", dom, simdisk.NewDisk(simdisk.DefaultModel(0)), net, def)
	cfg.Workers = 2
	cfg.RequestQueueDepth = queueDepth
	cfg.PriorityQueueDepth = prioDepth
	cfg.Tap = rec
	srv, err := core.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var procMu sync.Mutex
	defer func() {
		procMu.Lock()
		srv.Crash()
		procMu.Unlock()
	}()

	peak0 := metrics.Overload.QueueDepthPeak.Load()
	shedAdm0 := metrics.Overload.ShedAtAdmission.Load()
	shedExp0 := metrics.Overload.ShedExpired.Load()

	floodOpts := rpc.DefaultCallOptions(0)
	floodOpts.TimeScale = 1
	floodOpts.Timeout = 150 * time.Millisecond
	floodOpts.Budget = rpc.NewRetryBudget(2, 0.5)
	floodOpts.Breaker = rpc.NewBreaker(8, 10*time.Millisecond)
	floodClient := core.NewClient("flood-client", net, floodOpts)
	defer floodClient.Close()
	floodClient.SetTap(rec)

	// Two crash-restarts while the flood is saturating the gate.
	restartDone := make(chan error, 2)
	go func() {
		for i := 0; i < 2; i++ {
			time.Sleep(floodFor / 3)
			procMu.Lock()
			srv.Crash()
			s, err := core.Start(cfg)
			if err == nil {
				srv = s
			}
			procMu.Unlock()
			restartDone <- err
		}
	}()

	arrivals := workload.NewArrivals(workload.ArrivalParams{Rate: floodRate, Burst: 8, Seed: 1})
	zipf := workload.NewZipfKeys(workload.ZipfParams{Keys: keys, Skew: 1.2, Seed: 2})
	var wg sync.WaitGroup
	var okOps, shedOps, otherErrs atomic.Int64
	start := time.Now()
	next := start
	for time.Now().Before(start.Add(floodFor)) {
		next = next.Add(arrivals.Next())
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		k := zipf.Next()
		wg.Add(1)
		// One call per session, abandoned on any non-terminal outcome: a
		// shed request's sequence number is never reused with different
		// arguments, so the duplicate path stays well-defined.
		go func(k int) {
			defer wg.Done()
			sess := floodClient.Session("ovl")
			rec.DeclareEffect(sess.ID(), 1, "ovl/"+keyName(k), 1)
			_, err := sess.Call("mark", u64(uint64(k)))
			switch err {
			case nil:
				okOps.Add(1)
			case rpc.ErrOverloaded, rpc.ErrCircuitOpen, rpc.ErrDeadlineExceeded:
				shedOps.Add(1)
			default:
				if _, ok := err.(*rpc.AppError); !ok {
					otherErrs.Add(1)
				}
			}
		}(k)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-restartDone; err != nil {
			t.Fatalf("crash-restart mid-saturation failed: %v", err)
		}
	}

	// Drain and audit with a patient closed-loop client, then run the
	// checkers over the whole recorded history.
	auditClient := core.NewClient("audit-client", net, rpc.DefaultCallOptions(0))
	defer auditClient.Close()
	auditClient.SetTap(rec)
	audit := auditClient.Session("ovl")
	for k := 0; k < keys; k++ {
		v, err := audit.Call("get", u64(uint64(k)))
		if err != nil {
			t.Fatalf("audit read %s: %v", keyName(k), err)
		}
		rec.FinalState("ovl/"+keyName(k), int64(asU64(v)))
	}

	if vs := rec.Check(); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("oracle: %v", v)
		}
		t.Fatalf("oracle: %d violations under saturation (%d events)", len(vs), rec.Len())
	}
	if otherErrs.Load() > 0 {
		t.Fatalf("%d flooded calls failed with non-overload errors", otherErrs.Load())
	}
	serverSheds := (metrics.Overload.ShedAtAdmission.Load() - shedAdm0) +
		(metrics.Overload.ShedExpired.Load() - shedExp0)
	if serverSheds == 0 || shedOps.Load() == 0 {
		t.Fatalf("storm never saturated: serverSheds=%d clientSheds=%d ok=%d",
			serverSheds, shedOps.Load(), okOps.Load())
	}
	// The bounded-queue promise: the peak gauge is process-wide and
	// monotonic, so only assert when this storm's bound was not already
	// exceeded by an earlier (bigger) storm in the same process.
	bound := int64(queueDepth + prioDepth)
	if peak := metrics.Overload.QueueDepthPeak.Load(); peak0 <= bound && peak > bound {
		t.Fatalf("queue depth peaked at %d, above the %d lane capacity", peak, bound)
	}
	t.Logf("overload storm: ok=%d clientSheds=%d serverSheds=%d events=%d",
		okOps.Load(), shedOps.Load(), serverSheds, rec.Len())
}
