package oracle

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// checkers returns the sorted, deduplicated set of checker names that
// fired.
func checkers(vs []Violation) []string {
	set := map[string]bool{}
	for _, v := range vs {
		set[v.Checker] = true
	}
	var out []string
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// expectOnly asserts that exactly the named checker fired (or none).
func expectOnly(t *testing.T, rec *Recorder, want ...string) {
	t.Helper()
	vs := rec.Check()
	got := checkers(vs)
	sort.Strings(want)
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkers fired = %v, want %v; violations:\n%v", got, want, vs)
	}
}

// TestHealthyHistory plants no violation: resends, a replayed execution,
// a recovery that loses nothing, and a matching audited counter must all
// pass every checker.
func TestHealthyHistory(t *testing.T) {
	r := NewRecorder()
	// seq 1: clean round trip with a resend and a network duplicate that
	// the server deduplicated (no second execute event).
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.DeclareEffect("c#1", 1, "x", 1)
	r.ClientRetry("c#1", 1, 2)
	r.RequestExecuted("srv", "c#1", 1, 1, 10, []byte("r1"), false)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	// Crash: seq 1's execution is at LSN 10, the recovery keeps it.
	r.ServerRecovered("srv", 1, 10, 2)
	// seq 2 executed during replay of the recovered session log and then
	// fresh in the new epoch.
	r.RequestExecuted("srv", "c#1", 2, 2, 11, []byte("r2"), true)
	r.ClientInvoke("c#1", "op", 2, []byte("a2"))
	r.DeclareEffect("c#1", 2, "x", 1)
	r.RequestExecuted("srv", "c#1", 2, 2, 12, []byte("r2"), false)
	r.ClientReply("c#1", 2, true, []byte("r2"))
	// An application error is a terminal outcome too.
	r.ClientInvoke("c#1", "op", 3, []byte("a3"))
	r.RequestExecuted("srv", "c#1", 3, 2, 13, []byte("boom"), false)
	r.ClientReply("c#1", 3, false, []byte("boom"))
	r.StateDigest("srv", "msp-ckpt", 2, 13, 42)
	r.FinalState("x", 2)
	expectOnly(t, r)
}

// TestDuplicateExecution plants the exactly-once violation: broken
// deduplication lets a resend execute the same request twice, and both
// executions survive.
func TestDuplicateExecution(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("srv", "c#1", 1, 1, 10, []byte("r1"), false)
	r.ClientRetry("c#1", 1, 2)
	r.RequestExecuted("srv", "c#1", 1, 1, 11, []byte("r1"), false)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	expectOnly(t, r, CheckExactlyOnce)
}

// TestDivergingReplyDigests plants the other exactly-once violation: the
// client accepted two replies for one request ID with different
// payloads. The second reply is backed by a replayed execution so the
// no-orphan checker stays silent — the defect is purely the divergence.
func TestDivergingReplyDigests(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("srv", "c#1", 1, 1, 10, []byte("r1"), false)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	r.RequestExecuted("srv", "c#1", 1, 2, 10, []byte("r1-prime"), true)
	r.ClientReply("c#1", 1, true, []byte("r1-prime"))
	expectOnly(t, r, CheckExactlyOnce)
}

// TestSessionRegression plants the monotonicity violation: after
// accepting seq 2's reply the session accepts seq 1's again — the
// recovered server forgot how far the session had advanced.
func TestSessionRegression(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("srv", "c#1", 1, 1, 10, []byte("r1"), false)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	r.ClientInvoke("c#1", "op", 2, []byte("a2"))
	r.RequestExecuted("srv", "c#1", 2, 1, 11, []byte("r2"), false)
	r.ClientReply("c#1", 2, true, []byte("r2"))
	r.ClientReply("c#1", 1, true, []byte("r1"))
	expectOnly(t, r, CheckMonotonic)
}

// TestLostUpdate plants the explainability violation: three
// acknowledged increments but the final counter shows two — one
// acknowledged write vanished.
func TestLostUpdate(t *testing.T) {
	r := NewRecorder()
	for seq := uint64(1); seq <= 3; seq++ {
		arg := []byte{byte('a'), byte('0' + seq)}
		rep := []byte{byte('r'), byte('0' + seq)}
		r.ClientInvoke("c#1", "op", seq, arg)
		r.DeclareEffect("c#1", seq, "x", 1)
		r.RequestExecuted("srv", "c#1", seq, 1, 10+seq, rep, false)
		r.ClientReply("c#1", seq, true, rep)
	}
	r.FinalState("x", 2)
	expectOnly(t, r, CheckExplainable)
}

// TestLeakedWrite plants the explainability violation from the other
// side: the final counter exceeds everything the acknowledged and
// in-flight writes can explain.
func TestLeakedWrite(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.DeclareEffect("c#1", 1, "x", 1)
	r.RequestExecuted("srv", "c#1", 1, 1, 11, []byte("r1"), false)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	// An in-flight request that never got its reply may or may not have
	// landed: final 1 or 2 would be explainable, 3 is not.
	r.ClientInvoke("c#1", "op", 2, []byte("a2"))
	r.DeclareEffect("c#1", 2, "x", 1)
	r.FinalState("x", 3)
	expectOnly(t, r, CheckExplainable)
}

// TestOrphanReply plants the no-orphan-reply violation: the client
// accepted a reply whose only backing execution was beyond the LSN the
// server later recovered to.
func TestOrphanReply(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("srv", "c#1", 1, 1, 20, []byte("r1"), false)
	r.ServerRecovered("srv", 1, 10, 2)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	expectOnly(t, r, CheckNoOrphanReply)
}

// TestRollbackKillsExecution checks the session-rollback arm of the
// dead-execution rule: an orphan truncation from an LSN at or below the
// execution's kills it, so the accepted reply it backed is an orphan.
func TestRollbackKillsExecution(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("srv", "c#1", 1, 1, 20, []byte("r1"), false)
	r.SessionRolledBack("srv", "c#1", 15)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	expectOnly(t, r, CheckNoOrphanReply)
}

// TestStatelessExecutionsNeverDie checks the epoch-0/LSN-0 convention:
// transactional servers commit atomically outside the session log, so a
// recovery event for the same server name must not orphan them.
func TestStatelessExecutionsNeverDie(t *testing.T) {
	r := NewRecorder()
	r.ClientInvoke("c#1", "op", 1, []byte("a1"))
	r.RequestExecuted("rm", "c#1", 1, 0, 0, []byte("r1"), false)
	r.ServerRecovered("rm", 1, 0, 2)
	r.ClientReply("c#1", 1, true, []byte("r1"))
	expectOnly(t, r)
}

// TestEventsJSONRoundTrip keeps the on-disk trace format honest: an
// event survives JSON encoding bit-for-bit.
func TestEventsJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.RequestExecuted("srv", "c#1", 7, 3, 99, []byte("r"), true)
	r.ServerRecovered("srv", 3, 80, 4)
	evs := r.Events()
	b, err := json.Marshal(evs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(evs, back) {
		t.Fatalf("round trip mismatch:\n%v\n%v", evs, back)
	}
}

// TestRecorderConcurrency exercises the recorder under parallel writers;
// run with -race this is the data-race check for the tap hot path.
func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				r.RequestExecuted("srv", "c", uint64(i), 1, uint64(i), nil, false)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := r.Len(); got != 800 {
		t.Fatalf("len = %d, want 800", got)
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Idx != int64(i) {
			t.Fatalf("event %d has idx %d", i, e.Idx)
		}
	}
}
