package simdisk

import (
	"bytes"
	"errors"
	"testing"

	"mspr/internal/failpoint"
)

func TestWriteFaultsDisabledByDefault(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("plain")
	data := bytes.Repeat([]byte{0xAB}, 1024)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("write with nil registry: %v", err)
	}
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("data damaged without any failpoint armed")
	}
}

func TestTransientWriteError(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	fp := failpoint.New(1)
	d.SetFailpoints(fp)
	f := d.OpenFile("j")
	fp.Enable(FPWriteError)
	if _, err := f.WriteAt([]byte("hello"), 0); !errors.Is(err, ErrTransientWrite) {
		t.Fatalf("err = %v, want ErrTransientWrite", err)
	}
	if f.Size() != 0 {
		t.Fatalf("transient error persisted %d bytes", f.Size())
	}
	// One-shot: the retry succeeds.
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	fp := failpoint.New(2)
	d.SetFailpoints(fp)
	f := d.OpenFile("log")
	data := bytes.Repeat([]byte{0xCD}, 2048)
	fp.Enable(FPWriteTorn)
	_, err := f.WriteAt(data, 0)
	if !failpoint.IsInjected(err) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	n := f.Size()
	if n <= 0 || n >= int64(len(data)) {
		t.Fatalf("torn write persisted %d bytes of %d, want a strict prefix", n, len(data))
	}
	got := make([]byte, n)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data[:n]) {
		t.Fatal("surviving prefix does not match the original data")
	}
}

func TestTornWritePinnedLength(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	fp := failpoint.New(3)
	d.SetFailpoints(fp)
	f := d.OpenFile("log")
	fp.Enable(FPWriteTorn, failpoint.Arg(7))
	_, err := f.WriteAt(bytes.Repeat([]byte{1}, 100), 0)
	if !failpoint.IsInjected(err) {
		t.Fatalf("err = %v", err)
	}
	if f.Size() != 7 {
		t.Fatalf("pinned torn length persisted %d bytes, want 7", f.Size())
	}
}

func TestCorruptWriteFlipsOneBit(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	fp := failpoint.New(4)
	d.SetFailpoints(fp)
	f := d.OpenFile("log")
	data := bytes.Repeat([]byte{0x00}, 512)
	fp.Enable(FPWriteCorrupt)
	_, err := f.WriteAt(data, 0)
	if !failpoint.IsInjected(err) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("corrupt write persisted %d bytes, want full %d", f.Size(), len(data))
	}
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	flipped := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
}

func TestFileTargetedFaultLeavesOtherFilesAlone(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	fp := failpoint.New(5)
	d.SetFailpoints(fp)
	victim := d.OpenFile("victim")
	bystander := d.OpenFile("bystander")
	fp.Enable(FPWriteTorn + ":victim")
	if _, err := bystander.WriteAt([]byte("safe data"), 0); err != nil {
		t.Fatalf("bystander write hit a targeted fault: %v", err)
	}
	if _, err := victim.WriteAt(bytes.Repeat([]byte{9}, 64), 0); !failpoint.IsInjected(err) {
		t.Fatalf("victim write err = %v, want injected", err)
	}
	if fp.Armed(FPWriteTorn + ":victim") {
		t.Fatal("one-shot targeted fault still armed")
	}
}

func TestDeterministicTornLengthAcrossRuns(t *testing.T) {
	run := func() int64 {
		d := NewDisk(DefaultModel(0))
		fp := failpoint.New(42)
		d.SetFailpoints(fp)
		f := d.OpenFile("log")
		fp.Enable(FPWriteTorn)
		f.WriteAt(bytes.Repeat([]byte{1}, 4096), 0)
		return f.Size()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different torn lengths: %d vs %d", a, b)
	}
}
