// Package simdisk simulates the dedicated log disks used in the paper's
// evaluation (SIGMOD 2007, §5.1-§5.2).
//
// The paper's response-time analysis is driven entirely by a simple disk
// latency formula for flushing n sectors on a 7200 RPM disk with 63
// sectors per track:
//
//	TFn = rot/2 + n/63·rot + n/63·trackSeek
//
// plus an occasional random seek caused by operating-system interference
// (the paper estimates TF2 ≈ 4.5 ms + 10.5 ms/3 = 8 ms). This package
// charges exactly that formula, scaled by a configurable TimeScale so that
// experiments preserving every latency ratio can run quickly.
//
// A Disk serializes its I/O charges: two concurrent flushes on the same
// disk queue behind one another, while flushes on different Disks proceed
// in parallel — matching the paper's observation that the local flushes of
// a distributed log flush run in parallel "unless the physical logs of
// MSPs in the service domain share a disk controller".
//
// Durability semantics: data written to a File survives a crash; anything
// a client of this package buffers in its own memory does not. The WAL and
// position-stream layers build their volatile buffers on top of this rule.
package simdisk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mspr/internal/failpoint"
	"mspr/internal/simtime"
)

// SectorSize is the disk sector size in bytes. Log blocks are aligned to
// sector boundaries, as in the paper (§5.2).
const SectorSize = 512

// Model holds the physical parameters of a simulated disk. The zero value
// is not useful; use DefaultModel (the paper's server disks) as a base.
type Model struct {
	// RPM is the rotational speed (7200 in the paper).
	RPM int
	// SectorsPerTrack is the number of sectors per track (63 in the paper).
	SectorsPerTrack int
	// TrackSeekWrite and TrackSeekRead are track-to-track seek times
	// (1.2 ms / 1.0 ms in the paper).
	TrackSeekWrite time.Duration
	TrackSeekRead  time.Duration
	// AvgSeekWrite and AvgSeekRead are average random-seek times
	// (10.5 ms / 9.5 ms in the paper).
	AvgSeekWrite time.Duration
	AvgSeekRead  time.Duration
	// OSSeekFraction is the fraction of flushes that incur a random seek
	// because the operating system also uses the disk. The paper's crude
	// estimate charges AvgSeek/3 per flush, i.e. a fraction of 1/3.
	OSSeekFraction float64
	// TimeScale multiplies every charged latency. 1.0 reproduces the
	// paper's wall-clock model; small values (e.g. 0.02) preserve all
	// ratios while letting experiments finish quickly; 0 disables
	// sleeping entirely (useful in unit tests).
	TimeScale float64
}

// DefaultModel returns the disk model of the paper's server computers
// (Fig. 13) at the given time scale.
func DefaultModel(timeScale float64) Model {
	return Model{
		RPM:             7200,
		SectorsPerTrack: 63,
		TrackSeekWrite:  1200 * time.Microsecond,
		TrackSeekRead:   1000 * time.Microsecond,
		AvgSeekWrite:    10500 * time.Microsecond,
		AvgSeekRead:     9500 * time.Microsecond,
		OSSeekFraction:  1.0 / 3.0,
		TimeScale:       timeScale,
	}
}

// rotation returns the time of one full disk rotation.
func (m Model) rotation() time.Duration {
	if m.RPM == 0 {
		return 0
	}
	return time.Duration(60_000_000_000 / int64(m.RPM))
}

// WriteTime returns the model (unscaled) time to flush n sectors:
// half a rotation of latency, plus transfer and track-to-track seeks
// proportional to n, plus the expected OS-interference seek.
func (m Model) WriteTime(n int) time.Duration {
	if n <= 0 || m.SectorsPerTrack == 0 {
		return 0
	}
	rot := m.rotation()
	d := rot / 2
	d += time.Duration(n) * (rot + m.TrackSeekWrite) / time.Duration(m.SectorsPerTrack)
	d += time.Duration(float64(m.AvgSeekWrite) * m.OSSeekFraction)
	return d
}

// ReadTime returns the model (unscaled) time to read n sectors. Recovery
// reads are mostly sequential (§5.4), so no OS-interference seek is
// charged; the formula matches the paper's 1 MB-log-read estimate.
func (m Model) ReadTime(n int) time.Duration {
	if n <= 0 || m.SectorsPerTrack == 0 {
		return 0
	}
	rot := m.rotation()
	d := rot / 2
	d += time.Duration(n) * (rot + m.TrackSeekRead) / time.Duration(m.SectorsPerTrack)
	return d
}

// Stats accumulates the I/O activity of a Disk. All counters are totals
// since the Disk was created; times are in model (unscaled) duration.
type Stats struct {
	Writes      int64         // number of write charges (flushes)
	SectorsOut  int64         // sectors written
	WastedBytes int64         // partial-sector padding written (bytes carrying no payload)
	Reads       int64         // number of read charges
	SectorsIn   int64         // sectors read
	WriteTime   time.Duration // model time spent writing
	ReadTime    time.Duration // model time spent reading
}

// ErrTransientWrite is the error injected by the FPWriteError failpoint:
// a write that failed without destroying anything and may be retried.
var ErrTransientWrite = errors.New("simdisk: transient write error (injected)")

// Failpoint names evaluated by File.WriteAt. Each name is also evaluated
// with a ":<file name>" suffix first, so faults can target a single file
// (e.g. "simdisk.write.torn:msp1.log"). See package failpoint.
const (
	// FPWriteTorn persists only a prefix of the write (a torn write, as a
	// power failure mid-write leaves) and reports an injected crash. The
	// prefix length is derived from the hit's seeded random value.
	FPWriteTorn = "simdisk.write.torn"
	// FPWriteCorrupt persists the write with a single flipped bit (a
	// crash-time scribble) and reports an injected crash.
	FPWriteCorrupt = "simdisk.write.corrupt"
	// FPWriteError fails the write with ErrTransientWrite, persisting
	// nothing; the caller may retry.
	FPWriteError = "simdisk.write.error"
)

// Disk is a simulated disk: a latency domain plus a set of named Files.
// All I/O charges on one Disk are serialized.
type Disk struct {
	model Model

	io sync.Mutex // serializes latency charges (a disk has one head)

	mu    sync.Mutex // guards files, stats and fp
	files map[string]*File
	stats Stats
	fp    *failpoint.Registry
}

// NewDisk creates an empty simulated disk with the given model.
func NewDisk(model Model) *Disk {
	return &Disk{model: model, files: make(map[string]*File)}
}

// Model returns the disk's latency model.
func (d *Disk) Model() Model { return d.model }

// SetFailpoints attaches a fault-injection registry to the disk. All
// layers stacked on this disk (WAL, journalled stores) share it. A nil
// registry disables injection entirely.
func (d *Disk) SetFailpoints(r *failpoint.Registry) {
	d.mu.Lock()
	d.fp = r
	d.mu.Unlock()
}

// Failpoints returns the disk's fault-injection registry (nil when fault
// injection is off — safe to Eval either way).
func (d *Disk) Failpoints() *failpoint.Registry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fp
}

// Stats returns a snapshot of the disk's accumulated I/O statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// OpenFile returns the named File, creating it empty if absent. Files are
// durable: their contents survive process "crashes" (which only discard
// state clients keep outside this package).
func (d *Disk) OpenFile(name string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		f = &File{disk: d, name: name}
		d.files[name] = f
	}
	return f
}

// Remove deletes the named file from the disk and reports whether it
// existed. Handles obtained earlier keep their data in memory but are
// detached: a later OpenFile of the same name returns a fresh empty
// file. Removal is durable immediately (the directory update rides on
// the caller's next charged write).
func (d *Disk) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return false
	}
	delete(d.files, name)
	return true
}

// List returns the names of all files starting with prefix, sorted.
// A mount-time enumeration, not a modelled I/O.
func (d *Disk) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var names []string
	for name := range d.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ChargeWrite blocks for the (scaled) time to flush n sectors and records
// the activity. wastedBytes counts padding bytes included in the n sectors
// that carry no payload (the paper's "half a sector wasted on every flush").
func (d *Disk) ChargeWrite(n, wastedBytes int) {
	if n <= 0 {
		return
	}
	t := d.model.WriteTime(n)
	d.mu.Lock()
	d.stats.Writes++
	d.stats.SectorsOut += int64(n)
	d.stats.WastedBytes += int64(wastedBytes)
	d.stats.WriteTime += t
	d.mu.Unlock()
	d.sleep(t)
}

// ChargeRead blocks for the (scaled) time to read n sectors and records
// the activity.
func (d *Disk) ChargeRead(n int) {
	if n <= 0 {
		return
	}
	t := d.model.ReadTime(n)
	d.mu.Lock()
	d.stats.Reads++
	d.stats.SectorsIn += int64(n)
	d.stats.ReadTime += t
	d.mu.Unlock()
	d.sleep(t)
}

func (d *Disk) sleep(t time.Duration) {
	scaled := time.Duration(float64(t) * d.model.TimeScale)
	if scaled <= 0 {
		return
	}
	d.io.Lock()
	simtime.Sleep(scaled)
	d.io.Unlock()
}

// File is a named durable byte region on a Disk. The zero value is not
// usable; obtain Files from Disk.OpenFile. File methods do not charge
// latency themselves — callers charge the Disk according to the I/O they
// model (e.g. a WAL flush of several buffered records is one block write).
type File struct {
	disk *Disk
	name string

	mu   sync.RWMutex
	base int64 // bytes discarded from the front (log-head truncation)
	data []byte
}

// Name returns the file's name on its disk.
func (f *File) Name() string { return f.name }

// Size returns the current length of the file in bytes (including any
// discarded prefix).
func (f *File) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.base + int64(len(f.data))
}

// evalWriteFault checks the disk's write failpoints for this file,
// trying the file-targeted name ("<mode>:<file>"), then the family
// name ("<mode>:<base>" for a segment file "<base>.NNNNNN"), then the
// generic one. It returns the first armed mode that fires.
func (f *File) evalWriteFault() (mode string, hit failpoint.Hit, ok bool) {
	fp := f.disk.Failpoints()
	if fp == nil {
		return "", failpoint.Hit{}, false
	}
	family := familyName(f.name)
	for _, m := range [...]string{FPWriteError, FPWriteTorn, FPWriteCorrupt} {
		if h, fired := fp.Eval(m + ":" + f.name); fired {
			return m, h, true
		}
		if family != "" {
			if h, fired := fp.Eval(m + ":" + family); fired {
				return m, h, true
			}
		}
		if h, fired := fp.Eval(m); fired {
			return m, h, true
		}
	}
	return "", failpoint.Hit{}, false
}

// familyName strips a trailing ".NNN…" all-digit segment suffix, so a
// fault targeting "msp1.log" also hits "msp1.log.000003". Returns ""
// when the name has no such suffix.
func familyName(name string) string {
	i := strings.LastIndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return ""
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return name[:i]
}

// WriteAt writes p at offset off, growing the file (zero-filled) as
// needed. The write is durable when WriteAt returns. Writing into a
// discarded prefix is an error.
//
// Fault injection: when the disk's registry arms a write failpoint for
// this file, the write is failed transiently (nothing persisted), torn
// (only a seeded-random prefix persisted) or corrupted (one flipped
// bit persisted). Torn and corrupt writes return failpoint.ErrInjected:
// the simulated process is considered crashed mid-write and only the
// damaged data survives into the next incarnation.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d writing %q", off, f.name)
	}
	var injected error
	if mode, hit, ok := f.evalWriteFault(); ok {
		switch mode {
		case FPWriteError:
			return 0, fmt.Errorf("simdisk: writing %q at %d: %w", f.name, off, ErrTransientWrite)
		case FPWriteTorn:
			keep := tornLength(len(p), hit)
			p = p[:keep]
			injected = fmt.Errorf("simdisk: torn write of %q at %d (%d bytes persisted): %w",
				f.name, off, keep, failpoint.ErrInjected)
		case FPWriteCorrupt:
			if len(p) > 0 {
				damaged := append([]byte(nil), p...)
				bit := hit.R % int64(len(damaged)*8)
				damaged[bit/8] ^= 1 << (bit % 8)
				p = damaged
			}
			injected = fmt.Errorf("simdisk: corrupt write of %q at %d: %w",
				f.name, off, failpoint.ErrInjected)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < f.base {
		return 0, fmt.Errorf("simdisk: write at %d below discarded prefix %d of %q", off, f.base, f.name)
	}
	rel := off - f.base
	end := rel + int64(len(p))
	if end > int64(len(f.data)) {
		if end > int64(cap(f.data)) {
			// Grow geometrically: appends are the common case (logs,
			// journals) and a linear reallocation per write would make
			// file growth quadratic.
			newCap := int64(cap(f.data)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.data)
			f.data = grown
		} else {
			f.data = f.data[:end]
		}
	}
	copy(f.data[rel:end], p)
	return len(p), injected
}

// tornLength picks how many bytes of an n-byte write survive a torn
// write: at least 1 and at most n-1 when possible, preferring a cut
// inside the final sector so the tear is visible to CRC checks. The
// hit's Arg, when positive, pins the length exactly (clamped to n).
func tornLength(n int, hit failpoint.Hit) int {
	if n <= 1 {
		return 0
	}
	if hit.Arg > 0 {
		if hit.Arg >= int64(n) {
			return n - 1
		}
		return int(hit.Arg)
	}
	return 1 + int(hit.R%int64(n-1))
}

// ReadAt reads into p from offset off. Reads past the end of the file or
// inside a discarded prefix return zero bytes for those regions and no
// error, mimicking a sparse preallocated log.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("simdisk: negative offset %d reading %q", off, f.name)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i := range p {
		p[i] = 0
	}
	skip := int64(0)
	if off < f.base {
		skip = f.base - off
		if skip >= int64(len(p)) {
			return 0, nil
		}
	}
	rel := off + skip - f.base
	if rel >= int64(len(f.data)) {
		return 0, nil
	}
	n := copy(p[skip:], f.data[rel:])
	return int(skip) + n, nil
}

// Truncate sets the file's length, discarding data beyond size.
func (f *File) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("simdisk: negative size %d truncating %q", size, f.name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < f.base {
		f.base = size
		f.data = nil
		return nil
	}
	rel := size - f.base
	if rel <= int64(len(f.data)) {
		f.data = f.data[:rel]
	} else {
		grown := make([]byte, rel)
		copy(grown, f.data)
		f.data = grown
	}
	return nil
}

// Discard releases the prefix of the file before off (log-head
// truncation, §3.2 "the session's previous log records can be
// discarded"). Subsequent reads of the region return zeros; the memory
// is freed.
func (f *File) Discard(before int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if before <= f.base {
		return
	}
	if before >= f.base+int64(len(f.data)) {
		f.base += int64(len(f.data))
		f.data = nil
		if before > f.base {
			f.base = before
		}
		return
	}
	n := before - f.base
	remaining := make([]byte, int64(len(f.data))-n)
	copy(remaining, f.data[n:])
	f.data = remaining
	f.base = before
}

// DiscardedPrefix returns how many leading bytes have been discarded.
func (f *File) DiscardedPrefix() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.base
}

// Disk returns the disk this file lives on.
func (f *File) Disk() *Disk { return f.disk }
