package simdisk

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteTimeMatchesPaperFormula(t *testing.T) {
	m := DefaultModel(0)
	// The paper computes TFn = 60000/7200/2 + n/63·60000/7200 + n/63·1.2 ms
	// and estimates TF2 ≈ 4.5 ms before OS interference, ≈ 8 ms with the
	// AvgSeek/3 correction.
	tf2 := m.WriteTime(2)
	if tf2 < 7500*time.Microsecond || tf2 > 8500*time.Microsecond {
		t.Fatalf("TF2 = %v, want ≈8 ms", tf2)
	}
	noOS := m
	noOS.OSSeekFraction = 0
	raw := noOS.WriteTime(2)
	if raw < 4300*time.Microsecond || raw > 4800*time.Microsecond {
		t.Fatalf("raw TF2 = %v, want ≈4.5 ms", raw)
	}
}

func TestReadTimeForRecoveryRead(t *testing.T) {
	m := DefaultModel(0)
	// §5.4: a 64 KB (128-sector) read costs ≈ 60000/7200/2 + 128/63·(rot+1ms)
	// ≈ 4.17 + 128/63·9.33 ≈ 23.1 ms.
	tr := m.ReadTime(128)
	if tr < 22*time.Millisecond || tr > 25*time.Millisecond {
		t.Fatalf("128-sector read = %v, want ≈23 ms", tr)
	}
}

func TestWriteTimeMonotonicInSectors(t *testing.T) {
	m := DefaultModel(0)
	prop := func(a, b uint8) bool {
		x, y := int(a%100)+1, int(b%100)+1
		if x > y {
			x, y = y, x
		}
		return m.WriteTime(x) <= m.WriteTime(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSectorsZeroTime(t *testing.T) {
	m := DefaultModel(0)
	if m.WriteTime(0) != 0 || m.ReadTime(0) != 0 {
		t.Fatal("zero sectors should cost nothing")
	}
}

func TestFileReadWriteRoundTrip(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	if _, err := f.WriteAt([]byte("hello"), 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	if f.Size() != 15 {
		t.Fatalf("size %d", f.Size())
	}
}

func TestFileZeroFill(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	_, _ = f.WriteAt([]byte("abc"), 100)
	buf := make([]byte, 10)
	_, _ = f.ReadAt(buf, 0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	// Reads past the end zero-fill the buffer.
	buf = bytes.Repeat([]byte{0xFF}, 8)
	_, _ = f.ReadAt(buf, 1000)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("past-end byte %d = %d", i, b)
		}
	}
}

func TestFileTruncate(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	_, _ = f.WriteAt([]byte("abcdef"), 0)
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 {
		t.Fatalf("size %d", f.Size())
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	_, _ = f.ReadAt(buf, 0)
	if string(buf[:3]) != "abc" || buf[5] != 0 {
		t.Fatalf("truncate-grow content %q", buf)
	}
}

func TestOpenFileIdentity(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	a := d.OpenFile("same")
	b := d.OpenFile("same")
	if a != b {
		t.Fatal("OpenFile should return the same File for the same name")
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	if _, err := f.WriteAt([]byte("a"), -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read offset accepted")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	d.ChargeWrite(3, 100)
	d.ChargeWrite(2, 50)
	d.ChargeRead(128)
	st := d.Stats()
	if st.Writes != 2 || st.SectorsOut != 5 || st.WastedBytes != 150 {
		t.Fatalf("write stats %+v", st)
	}
	if st.Reads != 1 || st.SectorsIn != 128 {
		t.Fatalf("read stats %+v", st)
	}
	if st.WriteTime <= 0 || st.ReadTime <= 0 {
		t.Fatalf("times not accounted: %+v", st)
	}
}

func TestTimeScaleSleeps(t *testing.T) {
	// At scale 1e-3 a TF2 of ~8 ms should sleep ~8 µs; mainly we check it
	// does not sleep unscaled.
	d := NewDisk(DefaultModel(1e-3))
	start := time.Now()
	for i := 0; i < 10; i++ {
		d.ChargeWrite(2, 0)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("scaled charges took %v", elapsed)
	}
}

func TestDiscardFreesPrefix(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	_, _ = f.WriteAt(bytes.Repeat([]byte{7}, 4096), 0)
	f.Discard(1024)
	if f.DiscardedPrefix() != 1024 {
		t.Fatalf("prefix = %d", f.DiscardedPrefix())
	}
	if f.Size() != 4096 {
		t.Fatalf("size changed: %d", f.Size())
	}
	buf := make([]byte, 8)
	_, _ = f.ReadAt(buf, 0) // inside the discarded prefix: zeros
	if buf[0] != 0 {
		t.Fatal("discarded region should read as zeros")
	}
	_, _ = f.ReadAt(buf, 2048)
	if buf[0] != 7 {
		t.Fatal("retained region lost")
	}
	// Writes below the prefix are rejected.
	if _, err := f.WriteAt([]byte{1}, 100); err == nil {
		t.Fatal("write into discarded prefix accepted")
	}
	// Discard never regresses.
	f.Discard(512)
	if f.DiscardedPrefix() != 1024 {
		t.Fatal("Discard regressed")
	}
	// Discard past the end clamps cleanly.
	f.Discard(10_000)
	if f.DiscardedPrefix() != 10_000 || f.Size() != 10_000 {
		t.Fatalf("discard-all: prefix=%d size=%d", f.DiscardedPrefix(), f.Size())
	}
}

func TestReadAtStraddlingDiscardBoundary(t *testing.T) {
	d := NewDisk(DefaultModel(0))
	f := d.OpenFile("x")
	_, _ = f.WriteAt([]byte("abcdefgh"), 0)
	f.Discard(4)
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || string(buf[4:]) != "efgh" || buf[0] != 0 {
		t.Fatalf("straddling read: n=%d buf=%q", n, buf)
	}
}

func TestModelAccessor(t *testing.T) {
	m := DefaultModel(0.5)
	d := NewDisk(m)
	if d.Model().TimeScale != 0.5 || d.Model().RPM != 7200 {
		t.Fatalf("Model() = %+v", d.Model())
	}
	if d.OpenFile("n").Name() != "n" {
		t.Fatal("Name()")
	}
}
